// Package gdeltmine is a high-performance in-memory mining system for
// GDELT 2.0 news event data, a from-scratch Go reproduction of "A System
// for High Performance Mining on GDELT Data" (IPDPS Workshops 2020).
//
// The pipeline has three stages, mirroring the paper's architecture:
//
//  1. Acquire a raw dataset: either real-format GDELT chunk files on disk
//     or a synthetic corpus from the built-in world generator
//     (GenerateCorpus / WriteRawDataset).
//  2. Convert once: the preprocessing step parses, cleans and validates the
//     raw tab-separated files and produces an indexed binary database
//     (ConvertRaw + SaveBinary), tallying the defects of the paper's
//     Table II on the way.
//  3. Analyze: load the binary database fully into memory (OpenBinary) and
//     run parallel aggregated queries against the read-only columnar store
//     — co-reporting, follow-reporting, country cross-reporting, publishing
//     delay statistics and quarterly trend series.
//
// The Dataset type is the analysis handle; its methods implement every
// experiment in the paper's evaluation.
package gdeltmine

import (
	"context"

	"gdeltmine/internal/baseline"
	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/convert"
	"gdeltmine/internal/dist"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/graph"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/mcl"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/store"
)

// Re-exported configuration and result types. The aliases let applications
// use the full data model through the public package.
type (
	// CorpusConfig parameterizes the synthetic GDELT world generator.
	CorpusConfig = gen.Config
	// Corpus is a generated synthetic dataset.
	Corpus = gen.Corpus
	// WriteResult summarizes a raw dataset written to disk.
	WriteResult = gen.WriteResult
	// BuildStats reports ingestion statistics from a conversion.
	BuildStats = store.BuildStats
	// ValidationReport tallies the Table II defect classes.
	ValidationReport = gdelt.ValidationReport
	// DatasetStats is the Table I summary.
	DatasetStats = queries.DatasetStats
	// TopEvent is one row of Table III.
	TopEvent = queries.TopEvent
	// EventSizeDistribution is the Figure 2 result.
	EventSizeDistribution = queries.EventSizeDistribution
	// QuarterlySeries is a per-quarter series (Figures 3-5, 11).
	QuarterlySeries = queries.QuarterlySeries
	// PublisherSeries is the Figure 6 result.
	PublisherSeries = queries.PublisherSeries
	// CoReporting is the Jaccard co-reporting result (Section VI-B).
	CoReporting = queries.CoReporting
	// FollowReporting is the Table IV / Figure 7 result.
	FollowReporting = queries.FollowReporting
	// CountryReport is the aggregated country query result (Tables V-VII).
	CountryReport = queries.CountryReport
	// SourceDelayStats is one publisher's row of Table VIII.
	SourceDelayStats = queries.SourceDelayStats
	// DelayDistribution is the Figure 9 result.
	DelayDistribution = queries.DelayDistribution
	// QuarterlyDelay is the Figure 10 result.
	QuarterlyDelay = queries.QuarterlyDelay
	// Wildfire is a fast-spreading event candidate.
	Wildfire = queries.Wildfire
	// MCLOptions tunes Markov clustering.
	MCLOptions = mcl.Options
	// MCLResult is a Markov clustering of a similarity matrix.
	MCLResult = mcl.Result
	// Matrix is a dense float64 matrix.
	Matrix = matrix.Dense
	// CountMatrix is a dense int64 matrix.
	CountMatrix = matrix.Int64
)

// Timestamp is a GDELT timestamp in YYYYMMDDHHMMSS form.
type Timestamp = gdelt.Timestamp

// ParseTimestamp parses a 14-digit YYYYMMDDHHMMSS string.
func ParseTimestamp(s string) (Timestamp, error) { return gdelt.ParseTimestamp(s) }

// Country describes one country: FIPS code, display name and the TLD used
// for source attribution.
type Country = gdelt.Country

// Countries is the country table; CountryReport matrices are indexed by
// position in this slice.
var Countries = gdelt.Countries

// CountryIndex returns the position of a FIPS code in Countries, or -1.
func CountryIndex(fips string) int { return gdelt.CountryIndex(fips) }

// CountryFromDomain attributes a news source domain to a country by its
// top-level domain (the paper's Section VI-C heuristic), returning an index
// into Countries or -1.
func CountryFromDomain(domain string) int { return gdelt.CountryFromDomain(domain) }

// Preset corpus configurations.
var (
	// SmallCorpus is a test-sized synthetic corpus (~45k articles).
	SmallCorpus = gen.Small
	// BenchCorpus is the benchmark corpus (~440k articles).
	BenchCorpus = gen.Bench
	// StandardCorpus is the full experiment corpus (~4M articles), the
	// scaled-down analogue of the paper's five-year archive.
	StandardCorpus = gen.Standard
)

// GenerateCorpus deterministically generates a synthetic GDELT world.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) { return gen.Generate(cfg) }

// WriteRawDataset writes a corpus as raw GDELT-format chunk files plus
// master file list under dir, injecting the configured Table II defects.
func WriteRawDataset(c *Corpus, dir string) (*WriteResult, error) { return gen.WriteRaw(c, dir) }

// Dataset is the loaded in-memory database plus its query engine: the
// analysis handle every experiment runs through.
type Dataset struct {
	db  *store.DB
	eng *engine.Engine
	// Build reports what conversion ingested and dropped.
	Build BuildStats
	// Quarantined lists master-listed chunks the conversion completed
	// without (permanent read failures past the retry budget).
	Quarantined []QuarantinedChunk
}

func newDataset(db *store.DB, stats BuildStats) *Dataset {
	return &Dataset{db: db, eng: engine.New(db), Build: stats}
}

// Engine exposes the dataset's engine view (workers, kind and window
// already applied) for callers that dispatch through the query registry —
// the CLI's registry-driven subcommands and the benchmark harness.
func (d *Dataset) Engine() *engine.Engine { return d.eng }

// ConvertRaw reads a raw GDELT dataset directory (master file list plus
// chunk files), cleans and validates it, and builds the in-memory store.
func ConvertRaw(dir string) (*Dataset, error) {
	return ConvertRawOpts(context.Background(), dir, ConvertOptions{})
}

// ConvertOptions configures a resilient conversion: the chunk source, the
// transient-failure retry schedule, and the quarantine budget.
type ConvertOptions = convert.Options

// QuarantinedChunk records a chunk the conversion completed without.
type QuarantinedChunk = convert.QuarantinedChunk

// ErrTooManyQuarantined is returned (wrapped) when the quarantined chunk
// fraction exceeds ConvertOptions.MaxQuarantineFrac.
var ErrTooManyQuarantined = convert.ErrTooManyQuarantined

// ConvertRawOpts is ConvertRaw with explicit failure handling: transient
// chunk-read errors are retried, permanent ones quarantine the chunk and
// the build degrades gracefully unless the damage exceeds
// opts.MaxQuarantineFrac. Cancelling ctx stops the conversion.
func ConvertRawOpts(ctx context.Context, dir string, opts ConvertOptions) (*Dataset, error) {
	res, err := convert.FromRawDirOpts(ctx, dir, opts)
	if err != nil {
		return nil, err
	}
	ds := newDataset(res.DB, res.Stats)
	ds.Quarantined = res.Quarantined
	return ds, nil
}

// BuildDataset builds the in-memory store directly from a synthetic corpus,
// bypassing the raw-file round trip.
func BuildDataset(c *Corpus) (*Dataset, error) {
	res, err := convert.FromCorpus(c)
	if err != nil {
		return nil, err
	}
	return newDataset(res.DB, res.Stats), nil
}

// SaveBinary writes the dataset in the indexed binary format.
func (d *Dataset) SaveBinary(path string) error { return binfmt.WriteFile(path, d.db) }

// OpenBinary loads a dataset from the indexed binary format.
func OpenBinary(path string) (*Dataset, error) {
	db, err := binfmt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newDataset(db, BuildStats{}), nil
}

// WithWorkers returns a view of the dataset whose queries use exactly n
// workers (n <= 0 restores the default of GOMAXPROCS). The strong-scaling
// experiment of Figure 12 sweeps this.
func (d *Dataset) WithWorkers(n int) *Dataset {
	cp := *d
	cp.eng = d.eng.WithWorkers(n)
	return &cp
}

// WithQueryKind returns a view of the dataset whose engine scans are
// attributed to kind in the obs metrics (engine_scans_total{kind=...} and
// friends). Purely observational; query results are unchanged.
func (d *Dataset) WithQueryKind(kind string) *Dataset {
	cp := *d
	cp.eng = d.eng.WithKind(kind)
	return &cp
}

// Window returns a view of the dataset whose mention-scan queries (counts,
// quarterly series, cross-reporting, slow-article counts) cover only
// articles captured in [from, to). Timestamps clamp to the archive span.
// Postings-based queries (co-/follow-reporting, per-source delays) are not
// windowed; use quarterly slicing for those.
func (d *Dataset) Window(from, to Timestamp) *Dataset {
	base := d.db.Meta.Start.IntervalIndex()
	lo := from.IntervalIndex() - base
	hi := to.IntervalIndex() - base
	if lo < 0 {
		lo = 0
	}
	if hi > int64(d.db.Meta.Intervals) {
		hi = int64(d.db.Meta.Intervals)
	}
	cp := *d
	cp.eng = d.eng.WithInterval(int32(lo), int32(hi))
	return &cp
}

// WindowArticles returns the number of articles visible to this view's
// mention-scan queries (the full dataset unless Window was applied).
func (d *Dataset) WindowArticles() int { return d.eng.WindowSize() }

// Report returns the validation report accumulated while converting
// (Table II).
func (d *Dataset) Report() *ValidationReport { return d.db.Report }

// Events returns the number of events in the dataset.
func (d *Dataset) Events() int { return d.db.Events.Len() }

// Articles returns the number of articles (mentions) in the dataset.
func (d *Dataset) Articles() int { return d.db.Mentions.Len() }

// Sources returns the number of distinct news sources.
func (d *Dataset) Sources() int { return d.db.Sources.Len() }

// SourceName returns the domain of a source id.
func (d *Dataset) SourceName(id int32) string { return d.db.Sources.Name(id) }

// SourceID returns the id of a source domain, or -1.
func (d *Dataset) SourceID(name string) int32 { return d.db.Sources.Lookup(name) }

// Quarters returns the number of calendar quarters covered.
func (d *Dataset) Quarters() int { return d.db.NumQuarters() }

// Stats computes the Table I dataset statistics.
func (d *Dataset) Stats() DatasetStats { return queries.Dataset(d.eng) }

// TopEvents returns the k most reported events (Table III).
func (d *Dataset) TopEvents(k int) []TopEvent { return queries.TopEvents(d.eng, k) }

// EventSizes computes the Figure 2 articles-per-event distribution with a
// power-law fit of the tail starting at xmin.
func (d *Dataset) EventSizes(xmin int) EventSizeDistribution { return queries.EventSizes(d.eng, xmin) }

// TopPublishers returns the ids and article counts of the k most productive
// sources (Section VI-A).
func (d *Dataset) TopPublishers(k int) (ids []int32, counts []int64) {
	return queries.TopPublishers(d.eng, k)
}

// ActiveSourcesPerQuarter computes Figure 3.
func (d *Dataset) ActiveSourcesPerQuarter() QuarterlySeries {
	return queries.ActiveSourcesPerQuarter(d.eng)
}

// EventsPerQuarter computes Figure 4.
func (d *Dataset) EventsPerQuarter() QuarterlySeries { return queries.EventsPerQuarter(d.eng) }

// ArticlesPerQuarter computes Figure 5.
func (d *Dataset) ArticlesPerQuarter() QuarterlySeries { return queries.ArticlesPerQuarter(d.eng) }

// TopPublisherSeries computes Figure 6 for the k most productive sources.
func (d *Dataset) TopPublisherSeries(k int) PublisherSeries {
	return queries.TopPublisherSeries(d.eng, k)
}

// CoReport computes the Jaccard co-reporting matrix among the given
// sources (Section VI-B).
func (d *Dataset) CoReport(sources []int32) (*CoReporting, error) {
	return queries.CoReport(d.eng, sources)
}

// SliceStats describes a time-sliced co-reporting computation.
type SliceStats = queries.SliceStats

// CoReportSliced computes the same result as CoReport via the Section VI-B
// strategy: per-quarter compressed sparse pair matrices assembled into the
// global co-reporting matrix. The assembly is exact because each event is
// assigned to exactly one time slice.
func (d *Dataset) CoReportSliced(sources []int32) (*CoReporting, *SliceStats, error) {
	return queries.CoReportSliced(d.eng, sources)
}

// FollowReport computes the follow-reporting matrix among the given sources
// (Table IV, Figure 7).
func (d *Dataset) FollowReport(sources []int32) *FollowReporting {
	return queries.FollowReport(d.eng, sources)
}

// CountryReport runs the aggregated country query (Tables V, VI, VII; the
// query whose scaling Figure 12 measures).
func (d *Dataset) CountryReport() (*CountryReport, error) { return queries.CountryQuery(d.eng) }

// PublisherDelays computes per-source delay statistics (Table VIII).
func (d *Dataset) PublisherDelays(sources []int32) []SourceDelayStats {
	return queries.PublisherDelays(d.eng, sources)
}

// DelayDistribution computes the Figure 9 per-source delay distributions.
func (d *Dataset) DelayDistribution() *DelayDistribution {
	return queries.DelayDistributionAll(d.eng)
}

// QuarterlyDelays computes Figure 10.
func (d *Dataset) QuarterlyDelays() QuarterlyDelay { return queries.QuarterlyDelays(d.eng) }

// SlowArticlesPerQuarter computes Figure 11 (articles delayed over 24h).
func (d *Dataset) SlowArticlesPerQuarter() QuarterlySeries {
	return queries.SlowArticlesPerQuarter(d.eng)
}

// GKG query result types.
type (
	// ThemeCount pairs a GKG theme with its article count.
	ThemeCount = queries.ThemeCount
	// ThemeTrend is a quarterly article-count series for one theme.
	ThemeTrend = queries.ThemeTrend
	// ThemeCooccurrence is the theme co-occurrence matrix result.
	ThemeCooccurrence = queries.ThemeCooccurrence
	// EntityCount pairs a person or organization with its article count.
	EntityCount = queries.EntityCount
)

// ErrNoGKG is returned by theme queries on datasets converted without
// Global Knowledge Graph files.
var ErrNoGKG = queries.ErrNoGKG

// HasGKG reports whether the dataset carries Global Knowledge Graph
// annotations.
func (d *Dataset) HasGKG() bool { return d.db.GKG != nil }

// TopThemes returns the k most frequent GKG themes.
func (d *Dataset) TopThemes(k int) ([]ThemeCount, error) { return queries.TopThemes(d.eng, k) }

// ThemeTrends computes quarterly coverage for the named themes.
func (d *Dataset) ThemeTrends(themes []string) ([]ThemeTrend, error) {
	return queries.ThemeTrends(d.eng, themes)
}

// ThemeCooccurrences computes co-occurrence among the top-k themes.
func (d *Dataset) ThemeCooccurrences(k int) (*ThemeCooccurrence, error) {
	return queries.ThemeCooccurrences(d.eng, k)
}

// PersonsForTheme returns the people most often mentioned alongside a theme.
func (d *Dataset) PersonsForTheme(theme string, k int) ([]EntityCount, error) {
	return queries.PersonsForTheme(d.eng, theme, k)
}

// TranslatedShare computes the per-quarter fraction of machine-translated
// articles (the Section III translingual feed).
func (d *Dataset) TranslatedShare() (labels []string, share []float64, err error) {
	return queries.TranslatedShare(d.eng)
}

// ToneSeries is a per-quarter average-tone series for one publishing
// country.
type ToneSeries = queries.ToneSeries

// ToneByCountry computes the quarterly average document tone of each listed
// publishing country's press (FIPS codes) — the GCAM-style sentiment view.
func (d *Dataset) ToneByCountry(fips []string) []ToneSeries {
	return queries.ToneByCountry(d.eng, fips)
}

// Follow-up analysis types (the Section VI-E research directions).
type (
	// FirstReportLatency is the distribution of each event's first-article
	// delay.
	FirstReportLatency = queries.FirstReportLatency
	// RepeatedCoverage quantifies same-source repeat articles per event.
	RepeatedCoverage = queries.RepeatedCoverage
	// SpeedGroupBreakdown decomposes sources by publishing speed.
	SpeedGroupBreakdown = queries.SpeedGroupBreakdown
)

// CountWhere counts articles matching a filter expression in the query
// language, e.g. "sourcecountry=UK and delay>96 and quarter>=2016Q1".
// See internal/qlang for the grammar and field list.
func (d *Dataset) CountWhere(expr string) (int64, error) {
	return queries.CountWhere(d.eng, expr)
}

// ArticlesPerQuarterWhere computes the quarterly article series restricted
// to a filter expression.
func (d *Dataset) ArticlesPerQuarterWhere(expr string) (QuarterlySeries, error) {
	return queries.ArticlesPerQuarterWhere(d.eng, expr)
}

// TopPublishersWhere ranks sources by article count within a filter
// expression.
func (d *Dataset) TopPublishersWhere(expr string, k int) (ids []int32, counts []int64, err error) {
	return queries.TopPublishersWhere(d.eng, expr, k)
}

// FirstReports computes the first-report latency distribution — how fast
// the world's quickest source was on each event.
func (d *Dataset) FirstReports() FirstReportLatency { return queries.FirstReports(d.eng) }

// Repeats computes repeated same-source coverage statistics; k bounds the
// top-repeater list.
func (d *Dataset) Repeats(k int) RepeatedCoverage { return queries.Repeats(d.eng, k) }

// SpeedGroups classifies every source into the fast / average / slow groups
// of Section VI-E by median delay.
func (d *Dataset) SpeedGroups() SpeedGroupBreakdown { return queries.SpeedGroups(d.eng) }

// FastSpreadingEvents ranks events by distinct early coverage: the top k
// events reported by at least minSources distinct sources within window
// capture intervals (15 minutes each) of the event — candidate digital
// wildfires, the paper's motivating phenomenon.
func (d *Dataset) FastSpreadingEvents(window int32, minSources, k int) []Wildfire {
	return queries.FastSpreadingEvents(d.eng, window, minSources, k)
}

// ClusterSources runs Markov clustering over the co-reporting matrix of the
// given sources and returns clusters of source ids — the paper's suggested
// method for discovering co-owned media groups.
func (d *Dataset) ClusterSources(sources []int32, opt MCLOptions) (*MCLResult, error) {
	co, err := d.CoReport(sources)
	if err != nil {
		return nil, err
	}
	return mcl.Cluster(co.Jaccard, opt)
}

// Graph is an undirected weighted graph over news sources.
type Graph = graph.Graph

// PageRankOptions tunes PageRank centrality.
type PageRankOptions = graph.PageRankOptions

// SourceGraph builds the co-reporting graph of the given sources, keeping
// edges with Jaccard above threshold — the substrate for the network
// analyses (components, centrality) that Section II faults SQL services for
// not supporting.
func (d *Dataset) SourceGraph(sources []int32, threshold float64) (*Graph, error) {
	co, err := d.CoReport(sources)
	if err != nil {
		return nil, err
	}
	return graph.FromSimilarity(co.Jaccard, threshold)
}

// DistCluster is a simulated distributed-memory deployment of the dataset
// (the paper's MPI future work): row-sharded nodes answering queries
// through serialized scatter/gather messages.
type DistCluster = dist.Cluster

// NewDistCluster partitions the dataset across n simulated nodes. Close the
// cluster when done.
func (d *Dataset) NewDistCluster(n int) *DistCluster { return dist.NewCluster(d.db, n) }

// RowStoreBaseline materializes the generic row-store comparison system
// over this dataset.
func (d *Dataset) RowStoreBaseline() *RowStore { return baseline.NewRowStore(d.db) }

// RowStore is the generic record-at-a-time baseline.
type RowStore = baseline.RowStore

// RawRescan is the re-parse-the-archive baseline.
type RawRescan = baseline.RawRescan

// OpenRawRescan opens a raw dataset directory for re-scan baseline queries.
func OpenRawRescan(dir string) (*RawRescan, error) { return baseline.NewRawRescan(dir) }
