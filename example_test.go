package gdeltmine_test

import (
	"fmt"
	"log"

	"gdeltmine"
)

// exampleDataset builds the deterministic small corpus once for the godoc
// examples.
func exampleDataset() *gdeltmine.Dataset {
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

// The basic pipeline: build a dataset and read its Table I statistics.
func Example() {
	ds := exampleDataset()
	st := ds.Stats()
	fmt.Println("sources:", st.Sources)
	fmt.Println("min articles per event:", st.MinArticles)
	// Output:
	// sources: 120
	// min articles per event: 1
}

// Counting with the filter expression language.
func ExampleDataset_CountWhere() {
	ds := exampleDataset()
	all, _ := ds.CountWhere("")
	slow, _ := ds.CountWhere("delay>96")
	fmt.Println("slow articles are a minority:", slow < all/4)
	// Output:
	// slow articles are a minority: true
}

// Publishing-delay structure of the top publishers (Table VIII shape).
func ExampleDataset_PublisherDelays() {
	ds := exampleDataset()
	ids, _ := ds.TopPublishers(3)
	for _, st := range ds.PublisherDelays(ids) {
		fmt.Println(st.Min == 1, st.Median >= 8 && st.Median <= 32, st.Average > float64(st.Median))
	}
	// Output:
	// true true true
	// true true true
	// true true true
}

// Restricting queries to a capture-time window.
func ExampleDataset_Window() {
	ds := exampleDataset()
	y2017 := ds.Window(20170101000000, 20180101000000)
	fmt.Println("window smaller than whole:", y2017.WindowArticles() < ds.Articles())
	fmt.Println("window non-empty:", y2017.WindowArticles() > 0)
	// Output:
	// window smaller than whole: true
	// window non-empty: true
}
