#!/bin/sh
# CI gate: build, vet, tests, then the full suite under the race detector
# (exercises the serve shutdown drain, the scan-cancellation paths, and the
# concurrent /metrics-scrape-while-querying test in internal/serve).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Benchmark regression gate: regenerate Table VI on the small preset and
# compare step timings against the checked-in baseline. The baseline values
# are deliberately generous and the threshold is 2x, so only an order-of-
# magnitude regression (accidental serialization, quadratic blowup) trips it.
go run ./cmd/gdeltbench -table 6 -stats -json /tmp/gdeltbench-timings.json \
  -baseline results/bench_baseline.json -threshold 2 >/dev/null
