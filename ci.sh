#!/bin/sh
# CI gate: build, vet, tests, then the full suite under the race detector
# (exercises the serve shutdown drain, the scan-cancellation paths, and the
# concurrent /metrics-scrape-while-querying test in internal/serve).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Registry differential gate: every registered query kind runs uncached and
# through the result cache (cold and warm, at different worker counts) and
# all three answers must agree — exact for integers, 1e-9 relative for
# floats. Catches cache-key instability and reduction-order bugs.
go test ./internal/baseline -run TestRegistryDifferentialCachedVsUncached -count=1

# Shard differential + metamorphic battery, under the race detector: every
# kind sharded at K in {1,3,5} x workers {1,4} must equal the monolith
# bit-exactly (1e-9 for floats), and the answers must be invariant under
# shard-boundary moves, shard permutation, and window split/merge. The
# battery includes the skewed-shard sweep (80/20 splits at K in {3,5}),
# which forces the work-stealing executor's steal path: workers finishing
# tiny shards must pick up grains from the big shard's kernels with the
# race detector watching. The fan-out path runs every shard's kernels
# concurrently, so -race here guards the remap-and-reduce merge code and
# the cross-shard atomics.
go test -race ./internal/baseline -run 'TestShardDifferential|TestShardMetamorphic|TestShardCancellation' -count=1

# Executor pool smoke: the process-default work-stealing pool must be built
# exactly once no matter how many parallel loops run (asserted through the
# parallel_pool_starts_total obs counter), and cancelled fan-outs must
# drain without leaking goroutines.
go test -race ./internal/parallel -run 'TestDefaultPoolIsSingleton|TestPoolNoGoroutineLeakAcrossLoops|TestFanOut' -count=1

# Qlang differential battery, under the race detector: randomized qlang
# expressions x 2 seeded worlds x {monolith, K in {1,4}} x workers {1,4} x
# all three plan modes must agree with an independent naive evaluator —
# exact for counts, 1e-9 relative for float aggregates — and explain=1
# must report a plan without executing. Guards the bitmap pushdown path
# against the closure fallback it replaces (DESIGN.md §13).
go test -race ./internal/baseline -run 'TestQlangDifferential|TestQlangExplain' -count=1

# Benchmark regression gate: regenerate Table VI on the small preset and
# compare step timings against the checked-in baseline. The baseline values
# are deliberately generous and the threshold is 2x, so only an order-of-
# magnitude regression (accidental serialization, quadratic blowup) trips it.
go run ./cmd/gdeltbench -table 6 -stats -json /tmp/gdeltbench-timings.json \
  -baseline results/bench_baseline.json -threshold 2 >/dev/null

# Cache benchmark gate: repeated identical queries must answer from the
# result cache (cold run misses, every warm run hits, warm == cold) at a
# >=10x per-request speedup. Artifact lands in results/cache_bench.json.
go run ./cmd/gdeltbench -cache-bench \
  -cache-json results/cache_bench.json -cache-min-speedup 10

# Kernel benchmark gate: the vectorized cross-count kernel must stay >=2x
# over the closure fallback at workers=4, the bitmap-pruned co-report over
# a 16-source mid-spectrum panel >=3x over the full event scan, and the
# cost-based planner must never lose to the closure scan on ANY report
# kernel — including the dense top-16 panels where row pruning cannot pay
# and the planner must fall back to the candidate-events plan. Samples of
# the slow and fast paths are interleaved so machine-wide noise cancels in
# the ratio. Artifact lands in results/kernel_bench.json.
go run ./cmd/gdeltbench -kernel-bench -kernel-workers 4 \
  -kernel-json results/kernel_bench.json \
  -kernel-min-typed 2 -kernel-min-pruned 3 -kernel-min-planner 1

# Qlang pushdown benchmark gate: a selective sourcecountry clause (<=5% of
# rows, chosen from the corpus) must answer >=2x faster through the bitmap
# rows plan than through the closure scan; both paths are asserted
# byte-equal before timing. The broad head-country panel rides along
# informationally. Artifact lands in results/qlang_bench.json.
go run ./cmd/gdeltbench -qlang-bench -qlang-workers 4 \
  -qlang-json results/qlang_bench.json -qlang-min-selective 2

# Shard benchmark gate: every BenchPanel query kind at K=4 shards vs the
# K=1 monolith on the standard world, through the persistent work-stealing
# executor. The panel's geomean K1/K4 speedup must clear 2x scaled by
# min(1, cpus/shards) with a 0.9x floor — on hosts with >= 4 cores that is
# the full 2x bar; on a single-core host the fan-out machinery must cost
# no more than ~11% over the monolith (no parallelism exists to win with,
# so the gate checks overhead, not speedup; the JSON records cpus so the
# artifact is honest about which bar applied). The run also asserts
# parallel_pool_starts_total == 1 across the whole panel — the executor
# pool is a process singleton, never rebuilt per query. A CPU profile of
# the bench lands next to the JSON for kernel-level inspection.
go run ./cmd/gdeltbench -preset standard -shard-bench -shard-k 4 \
  -shard-json results/shard_bench.json -shard-min-speedup 2 \
  -cpuprofile results/shard_bench.cpuprofile

# Router chaos smoke, under the race detector: a real 4-replica 2-group
# fleet behind the scatter/gather router, with deterministic replica faults
# (internal/faults.ReplicaChaos). Kill one replica per group and every
# query kind must still answer bit-identical to the monolith with full
# coverage; kill a whole group and every kind must degrade to an explicit
# partial-coverage 200 (never a 5xx), with the partial result kept out of
# the full-coverage cache entry. Hedging, per-try timeouts, breakers and
# per-tenant admission run under the same -race battery.
go test -race ./internal/router -run 'TestChaos' -count=1

# Router overhead row (informational): warm-cache latency of a query served
# direct by a replica vs through the router (one extra hop + affinity
# hashing + coverage accounting). Artifact lands in results/router_bench.json.
go run ./cmd/gdeltbench -router-bench -router-json results/router_bench.json

# Compaction-differential battery, under the race detector: a world grown
# the streaming way — batch prefix, feed ticks appended into the log's
# mutable tail, compactor seals interleaved — must answer every registered
# query kind exactly like the same rows batch-built in one shot, at
# K in {1,4} x workers {1,4} on two seeded worlds. Pins the append-log
# lifecycle end to end: COW clone depths, seal slicing, version
# carry-forward, and the derived-index rebuild of sealed parts.
go test -race ./internal/baseline -run TestCompactionDifferential -count=1

# Append-log crash-safety battery, under the race detector: the snapshot
# isolation, seal, persist-roundtrip and cache-key-safety pins, plus the
# crash harness that kills the compactor's persist protocol at every
# write/sync/rename step and requires the reloaded manifest to be fully-old
# or fully-new — never torn. The live-feed end-to-end test (outage,
# duplicate tick, reordered drop against a local feed server) and the
# checkpoint-resume test (a restarted poller must drop checkpointed ticks
# as duplicates and re-skip gaps too old for the grace window, never
# re-folding them) ride along.
go test -race ./internal/shard -run 'TestLog' -count=1
go test -race ./internal/stream -run 'TestLiveFeedEndToEnd|TestLiveResumeFromCheckpoint|TestCheckpoint' -count=1

# Streaming benchmark gate: the back half of a bench corpus arrives as
# real-time feed ticks against a durable append log while querier
# goroutines hammer the log's snapshots. Sustained append throughput and
# the concurrent-query latency distribution land in
# results/stream_bench.json; the hard gate is that no query is ever held
# up longer than one feed tick, scaled by the host's oversubscription
# factor when there are fewer cores than runnable goroutines (readers run
# on copy-on-write snapshots and never take the writer's lock, so the only
# legitimate delay is CPU contention).
go run ./cmd/gdeltbench -stream-bench -stream-json results/stream_bench.json \
  -stream-tick 200ms
