// Benchmarks regenerating every table and figure of the paper's evaluation
// over the Bench corpus (~400 sources, ~440k articles), plus the baseline
// and ablation comparisons DESIGN.md indexes (X1-X3). Run with:
//
//	go test -bench=. -benchmem
package gdeltmine

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"gdeltmine/internal/matrix"
	"gdeltmine/internal/mcl"
)

var (
	benchOnce   sync.Once
	benchDS     *Dataset
	benchCorpus *Corpus
	benchRawDir string
	benchErr    error
)

// benchSetup generates the bench corpus, writes it as a raw dataset (for
// the conversion and re-scan benches), and builds the in-memory store.
func benchSetup(b *testing.B) *Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = GenerateCorpus(BenchCorpus())
		if benchErr != nil {
			return
		}
		benchRawDir, benchErr = os.MkdirTemp("", "gdeltmine-bench-raw-")
		if benchErr != nil {
			return
		}
		if _, benchErr = WriteRawDataset(benchCorpus, benchRawDir); benchErr != nil {
			return
		}
		benchDS, benchErr = BuildDataset(benchCorpus)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

func reportRows(b *testing.B, ds *Dataset) {
	b.ReportMetric(float64(ds.Articles()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- Tables ---

func BenchmarkTable1DatasetStats(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := ds.Stats(); st.Articles == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkTable2Conversion(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := ConvertRaw(benchRawDir)
		if err != nil {
			b.Fatal(err)
		}
		if ds.Report().Total() == 0 {
			b.Fatal("no defects found")
		}
	}
}

func BenchmarkTable3TopEvents(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if top := ds.TopEvents(10); len(top) != 10 {
			b.Fatal("top events")
		}
	}
}

func BenchmarkTable4FollowReporting(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fr := ds.FollowReport(ids); len(fr.ColSums) != 10 {
			b.Fatal("follow report")
		}
	}
	reportRows(b, ds)
}

func BenchmarkTable5CountryCoReporting(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := ds.CountryReport()
		if err != nil || cr.CoReporting.Sum() == 0 {
			b.Fatalf("country query: %v", err)
		}
	}
	reportRows(b, ds)
}

func BenchmarkTable6CrossReporting(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := ds.CountryReport()
		if err != nil || cr.Cross.Sum() == 0 {
			b.Fatalf("country query: %v", err)
		}
	}
	reportRows(b, ds)
}

func BenchmarkTable7CrossReportingPct(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := ds.CountryReport()
		if err != nil || cr.Fractions.Sum() == 0 {
			b.Fatalf("country query: %v", err)
		}
	}
}

func BenchmarkTable8PublisherDelay(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ds.PublisherDelays(ids); len(rows) != 10 {
			b.Fatal("delays")
		}
	}
}

// --- Figures ---

func BenchmarkFigure2EventSizeHistogram(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := ds.EventSizes(2); d.FitErr != nil {
			b.Fatal(d.FitErr)
		}
	}
}

func BenchmarkFigure3ActiveSources(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ds.ActiveSourcesPerQuarter(); len(s.Values) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure4Events(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ds.EventsPerQuarter(); len(s.Values) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure5Articles(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ds.ArticlesPerQuarter(); len(s.Values) == 0 {
			b.Fatal("empty")
		}
	}
	reportRows(b, ds)
}

func BenchmarkFigure6TopPublisherSeries(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := ds.TopPublisherSeries(10); len(ps.Values) != 10 {
			b.Fatal("series")
		}
	}
}

func BenchmarkFigure7Follow50(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fr := ds.FollowReport(ids); len(fr.ColSums) != 50 {
			b.Fatal("follow 50")
		}
	}
}

func BenchmarkFigure8Cross50(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := ds.CountryReport()
		if err != nil || len(cr.TopReported) < 50 {
			b.Fatalf("cross 50: %v", err)
		}
	}
}

func BenchmarkFigure9DelayDistribution(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dd := ds.DelayDistribution(); len(dd.PerSource) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure10QuarterlyDelay(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if qd := ds.QuarterlyDelays(); len(qd.Average) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure11SlowArticles(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ds.SlowArticlesPerQuarter(); len(s.Values) == 0 {
			b.Fatal("empty")
		}
	}
	reportRows(b, ds)
}

// BenchmarkFigure12Scaling sweeps the worker count of the aggregated
// country query — the strong-scaling experiment. On a multicore host the
// per-op time drops with workers; past the core count it flattens.
func BenchmarkFigure12Scaling(b *testing.B) {
	ds := benchSetup(b)
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 8 {
		maxW = 8
	}
	for w := 1; ; w *= 2 {
		if w > maxW {
			w = maxW
		}
		pinned := ds.WithWorkers(w)
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pinned.CountryReport(); err != nil {
					b.Fatal(err)
				}
			}
			reportRows(b, ds)
		})
		if w == maxW {
			break
		}
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[pos:])
}

// --- Baselines and ablations (X1-X3) ---

// BenchmarkEngineColumnScan and BenchmarkBaselineRowScan /
// BenchmarkBaselineRawRescan reproduce the Section II claim: the
// specialized binary in-memory system outruns generic row-at-a-time and
// re-parse-the-archive access by large factors.
func BenchmarkEngineColumnScan(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.CountryReport(); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, ds)
}

func BenchmarkBaselineRowScan(b *testing.B) {
	ds := benchSetup(b)
	rs := ds.RowStoreBaseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := rs.CrossCountry(); m.Sum() == 0 {
			b.Fatal("empty")
		}
	}
	reportRows(b, ds)
}

func BenchmarkBaselineRawRescan(b *testing.B) {
	ds := benchSetup(b)
	rr, err := OpenRawRescan(benchRawDir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rr.CrossCountry(); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, ds)
}

// BenchmarkSparseAssembly measures the Section VI-B alternative strategy:
// assembling a global co-reporting matrix from per-time-span sparse pieces.
func BenchmarkSparseAssembly(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	// Build one CSR piece per year from per-year co-reporting runs.
	var pieces []*matrix.CSR
	co, err := ds.CoReport(ids)
	if err != nil {
		b.Fatal(err)
	}
	full := matrix.FromDense(co.Jaccard, 0)
	for i := 0; i < 5; i++ {
		pieces = append(pieces, full)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := matrix.AssembleCSR(pieces)
		if err != nil || sum.NNZ() == 0 {
			b.Fatalf("assembly: %v", err)
		}
	}
}

// BenchmarkMCL measures Markov clustering over the top-50 co-reporting
// matrix (the media-group discovery of Section VI-B).
func BenchmarkMCL(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	co, err := ds.CoReport(ids)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mcl.Cluster(co.Jaccard, mcl.Options{Inflation: 1.6})
		if err != nil || len(res.Clusters) == 0 {
			b.Fatalf("mcl: %v", err)
		}
	}
}

// --- Extensions: GKG, sliced co-reporting, graph analytics, windowed scans ---

func BenchmarkGKGTopThemes(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := ds.TopThemes(10)
		if err != nil || len(top) == 0 {
			b.Fatalf("themes: %v", err)
		}
	}
}

func BenchmarkGKGThemeCooccurrence(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, err := ds.ThemeCooccurrences(10)
		if err != nil || co.Counts.Sum() == 0 {
			b.Fatalf("cooccurrence: %v", err)
		}
	}
}

func BenchmarkCoReportDense(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.CoReport(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoReportSliced(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.CoReportSliced(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSourceGraphPageRank(b *testing.B) {
	ds := benchSetup(b)
	ids, _ := ds.TopPublishers(50)
	g, err := ds.SourceGraph(ids, 0.005)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := g.PageRank(PageRankOptions{})
		if len(pr) != g.N {
			b.Fatal("rank size")
		}
	}
}

func BenchmarkWildfireScan(b *testing.B) {
	ds := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fires := ds.FastSpreadingEvents(8, 5, 10); len(fires) == 0 {
			b.Fatal("no wildfires in bench corpus")
		}
	}
	reportRows(b, ds)
}

func BenchmarkWindowedQuarterScan(b *testing.B) {
	ds := benchSetup(b)
	// One year's window.
	win := ds.Window(20160101000000, 20170101000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := win.ArticlesPerQuarter(); len(s.Values) == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(float64(win.WindowArticles()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- Pipeline throughput ---

func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := GenerateCorpus(SmallCorpus())
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Mentions) == 0 {
			b.Fatal("empty corpus")
		}
	}
}

func BenchmarkBinarySaveLoad(b *testing.B) {
	ds := benchSetup(b)
	path := filepath.Join(b.TempDir(), "bench.gdmb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.SaveBinary(path); err != nil {
			b.Fatal(err)
		}
		loaded, err := OpenBinary(path)
		if err != nil {
			b.Fatal(err)
		}
		if loaded.Articles() != ds.Articles() {
			b.Fatal("row loss")
		}
	}
	reportRows(b, ds)
}
