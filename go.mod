module gdeltmine

go 1.23
