module gdeltmine

go 1.22
