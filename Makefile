GO ?= go

.PHONY: build test vet race check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the serve shutdown
# hammer and the parallel/engine cancellation tests are the main targets.
race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
