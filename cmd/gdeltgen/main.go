// Command gdeltgen generates a synthetic GDELT 2.0 raw dataset: per-chunk
// Events and Mentions files in the real tab-separated format plus a master
// file list, with the paper's Table II defect classes injected.
//
// Usage:
//
//	gdeltgen -out ./dataset [-preset small|bench|standard] [-seed N]
//	         [-sources N] [-events-per-day F]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltgen: ")
	var (
		out          = flag.String("out", "", "output dataset directory (required)")
		preset       = flag.String("preset", "small", "corpus preset: small, bench, or standard")
		seed         = flag.Int64("seed", 0, "override the preset's random seed")
		sources      = flag.Int("sources", 0, "override the number of news sources")
		eventsPerDay = flag.Float64("events-per-day", 0, "override the base event arrival rate")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var cfg gdeltmine.CorpusConfig
	switch *preset {
	case "small":
		cfg = gdeltmine.SmallCorpus()
	case "bench":
		cfg = gdeltmine.BenchCorpus()
	case "standard":
		cfg = gdeltmine.StandardCorpus()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *sources != 0 {
		cfg.Sources = *sources
	}
	if *eventsPerDay != 0 {
		cfg.EventsPerDay = *eventsPerDay
	}

	start := time.Now()
	corpus, err := gdeltmine.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	genTime := time.Since(start)

	start = time.Now()
	res, err := gdeltmine.WriteRawDataset(corpus, *out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d events, %d articles from %d sources in %v\n",
		len(corpus.Events), len(corpus.Mentions), len(corpus.World.Sources), genTime.Round(time.Millisecond))
	fmt.Printf("wrote %d of %d chunk files (%.1f MB) to %s in %v\n",
		res.FilesWritten, 2*res.Chunks, float64(res.Bytes)/1e6, res.Dir, time.Since(start).Round(time.Millisecond))
	fmt.Printf("injected defects: %d malformed master lines, %d withheld archives\n",
		res.MalformedLines, len(res.MissingFiles))
}
