// Command gdeltrouter fronts a fleet of gdeltserve replicas with the
// replicated scatter/gather tier from internal/router. Shards are tiled
// into contiguous groups, each group placed on R replicas by consistent
// hashing; queries route to one healthy replica by affinity hashing with
// per-try timeouts, jittered hedged retries, per-replica circuit breakers
// fed by background /readyz probing, graceful degradation to partial
// coverage when a whole group is down, and per-tenant admission control.
//
// Usage:
//
//	gdeltrouter -replicas http://h1:8321,http://h2:8321 -shards 4
//	            [-addr :8322] [-groups 2] [-replication 2]
//	            [-per-try-timeout 5s] [-hedge-delay 30ms] [-max-attempts 3]
//	            [-breaker-failures 3] [-breaker-cooldown 5s]
//	            [-probe-interval 2s] [-rate 0] [-burst 0] [-max-concurrent 0]
//
// With -shards 0 the router discovers the shard count from the first
// replica whose /readyz answers with shard status. Responses carry
// X-Gdelt-Coverage (full|partial), X-Gdelt-Shards (answered/total),
// X-Gdelt-Missing-Shards and X-Gdelt-Replica headers; /routez dumps the
// live topology and breaker states.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gdeltmine/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltrouter: ")
	var (
		addr        = flag.String("addr", ":8322", "listen address")
		replicasRaw = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		shards      = flag.Int("shards", 0, "shard count of the dataset; 0 discovers it from a replica's /readyz")
		groups      = flag.Int("groups", 1, "contiguous shard groups (availability domains)")
		replication = flag.Int("replication", 2, "replicas per group")
		perTry      = flag.Duration("per-try-timeout", 5*time.Second, "deadline for each upstream attempt")
		hedgeDelay  = flag.Duration("hedge-delay", 30*time.Millisecond, "delay before duplicating a slow request; 0 disables hedging")
		maxAttempts = flag.Int("max-attempts", 3, "total attempts per query (first try + hedges + retries)")
		brkFails    = flag.Int("breaker-failures", 3, "consecutive failures that trip a replica's circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open -> half-open delay")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "replica /readyz polling period; 0 disables probing")
		rate        = flag.Float64("rate", 0, "per-tenant sustained requests/sec; 0 disables rate limiting")
		burst       = flag.Int("burst", 0, "per-tenant token bucket capacity; 0 derives from -rate")
		maxConc     = flag.Int("max-concurrent", 0, "per-tenant concurrent query cap; 0 disables")
		seed        = flag.Int64("seed", 1, "hedge jitter seed")
		grace       = flag.Duration("shutdown-grace", 15*time.Second, "time allowed for in-flight requests to drain on SIGTERM")
	)
	flag.Parse()
	if *replicasRaw == "" {
		flag.Usage()
		os.Exit(2)
	}
	var replicas []router.Replica
	for i, u := range strings.Split(*replicasRaw, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		replicas = append(replicas, router.Replica{ID: fmt.Sprintf("r%d", i), URL: u})
	}
	if *shards == 0 {
		k, err := discoverShards(replicas)
		if err != nil {
			log.Fatalf("shard discovery: %v (pass -shards explicitly)", err)
		}
		*shards = k
		fmt.Printf("discovered %d shards\n", k)
	}
	rt, err := router.New(router.Config{
		Replicas:         replicas,
		Shards:           *shards,
		Groups:           *groups,
		Replication:      *replication,
		PerTryTimeout:    *perTry,
		HedgeDelay:       *hedgeDelay,
		MaxAttempts:      *maxAttempts,
		BreakerThreshold: *brkFails,
		BreakerCooldown:  *brkCooldown,
		ProbeInterval:    *probeEvery,
		Admission: router.AdmissionConfig{
			RatePerSec:    *rate,
			Burst:         *burst,
			MaxConcurrent: *maxConc,
		},
		Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("routing %d replicas on %s (%d shards, %d groups)\n",
		len(replicas), *addr, *shards, *groups)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutdown signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete after %v: %v", *grace, err)
		os.Exit(1)
	}
	log.Print("drained cleanly")
}

// discoverShards asks each replica's /readyz for its shard count until one
// answers — the shard-aware readyz body carries {"shards": {"count": K}}.
func discoverShards(replicas []router.Replica) (int, error) {
	client := &http.Client{Timeout: 3 * time.Second}
	var lastErr error
	for _, rep := range replicas {
		resp, err := client.Get(strings.TrimRight(rep.URL, "/") + "/readyz")
		if err != nil {
			lastErr = err
			continue
		}
		var st struct {
			Shards *struct {
				Count int `json:"count"`
			} `json:"shards"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if st.Shards != nil && st.Shards.Count > 0 {
			return st.Shards.Count, nil
		}
		lastErr = fmt.Errorf("%s: /readyz reports no shard status (monolith replica?)", rep.URL)
	}
	return 0, lastErr
}
