// Command gdeltserve loads a converted binary GDELT database into memory
// and serves the analysis engine over HTTP/JSON — the language-agnostic
// counterpart of the paper's planned Python interface. All endpoints are
// read-only and safe for concurrent use.
//
// The server is hardened for unattended operation: per-request timeouts
// cancel the engine scans of abandoned queries, a max-in-flight cap sheds
// excess load with 503 instead of queueing it, panics surface as JSON 500s,
// and SIGTERM/SIGINT drains in-flight requests before exiting (flipping
// /readyz to 503 so load balancers stop routing first).
//
// Query results are memoized in a snapshot-keyed cache with single-flight
// execution (-cache-bytes sets its memory budget): repeated or concurrent
// identical queries cost one scan, and the X-Cache response header reports
// hit/miss/coalesced per request.
//
// Usage:
//
//	gdeltserve -db ./gdelt.gdmb -addr :8321 [-request-timeout 30s]
//	           [-max-inflight 64] [-shutdown-grace 15s] [-cache-bytes 268435456]
//	           [-shards 4]
//
// With -shards K > 1 the loaded store is re-sliced into K time-range
// shards (internal/shard) and every query fans out per shard, reducing
// through a shared global dictionary; results are identical to the
// monolith. Cache keys then embed the per-shard version vector, so a
// tail-shard append invalidates only entries whose window touches the
// tail.
//
// The query surface is registry-driven: every kind known to
// internal/registry is served under /api/v1/<kind> (run `gdeltquery list`
// for the inventory and per-kind parameters). All endpoints are GET and
// accept workers=N, from=YYYYMMDDHHMMSS, to=YYYYMMDDHHMMSS:
//
//	/healthz               liveness probe
//	/readyz                readiness probe (503 while draining)
//	/metrics               Prometheus text exposition (obs registry)
//	/debug/pprof/          profiling handlers (only with -pprof)
//	/api/v1/<kind>         any registered query kind
//
// The pre-versioning /api/... endpoints (e.g. /api/stats, /api/country,
// /api/series/articles) remain as deprecated aliases of their /api/v1
// successors; they answer identically but add a Deprecation header.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/report"
	"gdeltmine/internal/serve"
	"gdeltmine/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltserve: ")
	var (
		dbPath     = flag.String("db", "", "binary database path (required)")
		addr       = flag.String("addr", ":8321", "listen address")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline; 0 disables")
		maxFlight  = flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503; 0 disables")
		grace      = flag.Duration("shutdown-grace", 15*time.Second, "time allowed for in-flight requests to drain on SIGTERM")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		cacheBytes = flag.Int64("cache-bytes", qcache.DefaultMaxBytes,
			"approximate memory budget of the query result cache; 0 disables caching")
		shards = flag.Int("shards", 0,
			"partition the store into K time-range shards and fan queries out per shard; 0/1 serves the monolith")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Flag semantics: 0 disables caching; Config uses negative for "off".
	cacheBudget := *cacheBytes
	if cacheBudget == 0 {
		cacheBudget = -1
	}
	cfg := serve.Config{
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxFlight,
		EnablePprof:    *pprofOn,
		CacheBytes:     cacheBudget,
	}
	start := time.Now()
	var srv *serve.Server
	if strings.HasSuffix(*dbPath, ".shards") {
		// A sharded layout written by `gdeltconvert -shards` or
		// shard.WriteFiles: manifest plus one store file per shard.
		sdb, err := shard.LoadFile(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s articles (%d shards) from %s in %v\n",
			report.Int(sdb.View().Dataset().Articles), sdb.K(), *dbPath,
			time.Since(start).Round(time.Millisecond))
		srv = serve.NewSharded(sdb, cfg)
	} else {
		db, err := binfmt.ReadFile(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s articles from %s in %v\n",
			report.Int(int64(db.Mentions.Len())), *dbPath, time.Since(start).Round(time.Millisecond))
		if *shards > 1 {
			sdb, err := shard.Split(db, *shards)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("sharded into %d time partitions\n", sdb.K())
			srv = serve.NewSharded(sdb, cfg)
		} else {
			srv = serve.NewWithConfig(db, cfg)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, then give in-flight
	// requests up to -shutdown-grace to complete.
	log.Print("shutdown signal received, draining")
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete after %v: %v (%d requests still in flight)",
			*grace, err, srv.InFlight())
		os.Exit(1)
	}
	log.Print("drained cleanly")
}
