// Command gdeltserve loads a converted binary GDELT database into memory
// and serves the analysis engine over HTTP/JSON — the language-agnostic
// counterpart of the paper's planned Python interface. All endpoints are
// read-only and safe for concurrent use.
//
// The server is hardened for unattended operation: per-request timeouts
// cancel the engine scans of abandoned queries, a max-in-flight cap sheds
// excess load with 503 instead of queueing it, panics surface as JSON 500s,
// and SIGTERM/SIGINT drains in-flight requests before exiting (flipping
// /readyz to 503 so load balancers stop routing first).
//
// Usage:
//
//	gdeltserve -db ./gdelt.gdmb -addr :8321 [-request-timeout 30s]
//	           [-max-inflight 64] [-shutdown-grace 15s]
//
// Endpoints (all GET, all accept workers=N, from=YYYYMMDDHHMMSS,
// to=YYYYMMDDHHMMSS):
//
//	/healthz               liveness probe
//	/readyz                readiness probe (503 while draining)
//	/metrics               Prometheus text exposition (obs registry)
//	/debug/pprof/          profiling handlers (only with -pprof)
//	/api/stats             Table I dataset statistics
//	/api/defects           Table II defect counts
//	/api/top-publishers    most productive sources       ?k=10
//	/api/top-events        Table III                     ?k=10
//	/api/event-sizes       Figure 2 distribution + fit
//	/api/country           Tables V/VI/VII               ?k=10
//	/api/follow            Table IV                      ?k=10
//	/api/coreport          co-reporting Jaccard          ?k=10
//	/api/delays            Table VIII                    ?k=10
//	/api/quarterly-delay   Figure 10
//	/api/series/articles | events | active-sources | slow-articles
//	/api/wildfires         fast-spreading events         ?window=8&min=5&k=10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/report"
	"gdeltmine/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltserve: ")
	var (
		dbPath     = flag.String("db", "", "binary database path (required)")
		addr       = flag.String("addr", ":8321", "listen address")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline; 0 disables")
		maxFlight  = flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503; 0 disables")
		grace      = flag.Duration("shutdown-grace", 15*time.Second, "time allowed for in-flight requests to drain on SIGTERM")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	db, err := binfmt.ReadFile(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s articles from %s in %v\n",
		report.Int(int64(db.Mentions.Len())), *dbPath, time.Since(start).Round(time.Millisecond))

	srv := serve.NewWithConfig(db, serve.Config{
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxFlight,
		EnablePprof:    *pprofOn,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, then give in-flight
	// requests up to -shutdown-grace to complete.
	log.Print("shutdown signal received, draining")
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete after %v: %v (%d requests still in flight)",
			*grace, err, srv.InFlight())
		os.Exit(1)
	}
	log.Print("drained cleanly")
}
