// Command gdeltserve loads a converted binary GDELT database into memory
// and serves the analysis engine over HTTP/JSON — the language-agnostic
// counterpart of the paper's planned Python interface. All endpoints are
// read-only and safe for concurrent use.
//
// Usage:
//
//	gdeltserve -db ./gdelt.gdmb -addr :8321
//
// Endpoints (all GET, all accept workers=N, from=YYYYMMDDHHMMSS,
// to=YYYYMMDDHHMMSS):
//
//	/api/stats             Table I dataset statistics
//	/api/defects           Table II defect counts
//	/api/top-publishers    most productive sources       ?k=10
//	/api/top-events        Table III                     ?k=10
//	/api/event-sizes       Figure 2 distribution + fit
//	/api/country           Tables V/VI/VII               ?k=10
//	/api/follow            Table IV                      ?k=10
//	/api/coreport          co-reporting Jaccard          ?k=10
//	/api/delays            Table VIII                    ?k=10
//	/api/quarterly-delay   Figure 10
//	/api/series/articles | events | active-sources | slow-articles
//	/api/wildfires         fast-spreading events         ?window=8&min=5&k=10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/report"
	"gdeltmine/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltserve: ")
	var (
		dbPath = flag.String("db", "", "binary database path (required)")
		addr   = flag.String("addr", ":8321", "listen address")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	db, err := binfmt.ReadFile(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s articles from %s in %v\n",
		report.Int(int64(db.Mentions.Len())), *dbPath, time.Since(start).Round(time.Millisecond))
	fmt.Printf("serving on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, serve.New(db)))
}
