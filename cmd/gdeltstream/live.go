package main

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"time"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/report"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
	"gdeltmine/internal/stream"
)

// runLive polls a live feed endpoint (the real GDELT lastupdate/masterfile
// convention, or this command's own -serve-feed) and folds every tick into
// the monitor and a partitioned append log, with the background compactor
// sealing the tail as it grows. Exit codes match the replay path: 0 clean,
// 1 fatal/interrupted, 3 finished with unresolved gaps.
func runLive(ctx context.Context, base string, mcfg stream.Config, lcfg stream.LiveConfig,
	ccfg stream.CompactorConfig, poll time.Duration, maxPolls int, ckptPath string) {
	cl := &stream.FeedClient{Base: base}

	// The feed's master list bounds the world the append log spans.
	ml, err := cl.MasterList(ctx)
	if err != nil {
		log.Fatalf("reading feed master list: %v", err)
	}
	var lo, hi gdelt.Timestamp
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err != nil {
			continue
		}
		if lo == 0 || iv < lo {
			lo = iv
		}
		if iv > hi {
			hi = iv
		}
	}
	if lo == 0 {
		log.Fatal("feed master list advertises no parseable chunks")
	}
	// The master list is cumulative: observed mid-archive it under-advertises
	// what the feed will eventually serve, and even a fully-caught-up list
	// says nothing about tomorrow. Size the world generously past the newest
	// advertised tick — the cost is 2 bytes per capture interval — so a
	// live-started client doesn't outrun its own archive span: a year, or 64
	// feed ticks, whichever is longer.
	headroom := 64 * lcfg.TickIntervals
	if yr := int32(366 * gdelt.IntervalsPerDay); headroom < yr {
		headroom = yr
	}
	intervals := int32(hi.IntervalIndex()-lo.IntervalIndex()) + headroom
	b, err := store.NewBuilder(lo, intervals)
	if err != nil {
		log.Fatal(err)
	}
	db, _, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	sdb, err := shard.Split(db, 1)
	if err != nil {
		log.Fatal(err)
	}
	lg := shard.NewLog(sdb)

	mon := stream.NewMonitor(lo, mcfg)
	start := lo
	if ckptPath != "" {
		cp, err := stream.ReadCheckpointFile(ckptPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
		case err != nil:
			log.Fatal(err)
		default:
			if mon, err = stream.FromCheckpoint(cp); err != nil {
				log.Fatal(err)
			}
			start = stream.ResumePoint(mon, lo, lcfg.TickIntervals)
			log.Printf("resuming live feed at %s", start)
		}
	}

	runner := stream.NewLiveRunner(cl, mon, lg, start, lcfg)
	comp := stream.NewCompactor(lg, ccfg)
	t := time.NewTicker(poll)
	defer t.Stop()
	interrupted := false
	for polls := 0; maxPolls <= 0 || polls < maxPolls; polls++ {
		// Poll errors are feed weather (outage beyond the protocol's 503,
		// unfetchable chunk): log and keep polling — the runner retries and
		// eventually skips a tick the feed never serves, leaving a ledger
		// gap that the exit code reports.
		if err := runner.PollOnce(ctx); err != nil {
			log.Printf("poll: %v", err)
		}
		if _, err := comp.RunOnce(); err != nil {
			log.Fatalf("compactor: %v", err)
		}
		select {
		case <-ctx.Done():
			interrupted = true
		case <-t.C:
		}
		if interrupted {
			break
		}
	}
	// Seal whatever the tail still holds so the final world is compacted.
	if _, err := lg.Seal(); err != nil {
		log.Fatalf("final seal: %v", err)
	}

	if ckptPath != "" {
		if err := mon.Checkpoint().WriteFile(ckptPath); err != nil {
			log.Fatal(err)
		}
	}

	st := runner.Stats()
	snap := mon.Snapshot()
	fmt.Printf("\nlive: %d polls, %d ticks folded (%s events, %s mentions), %d duplicates, %d outages, %d catch-ups\n",
		st.Polls, st.Ticks, report.Int(int64(st.Events)), report.Int(int64(st.Mentions)),
		st.Duplicates, st.Outages, st.CatchUps)
	fmt.Printf("log: %d shards, tail holds %d rows; %s articles observed, %d wildfire alerts\n",
		lg.Snapshot().K(), lg.TailRows(), report.Int(snap.Articles), len(snap.Alerts))
	if len(st.Skipped) > 0 {
		fmt.Printf("WARNING: %d ticks skipped after repeated stalls: %v\n", len(st.Skipped), st.Skipped)
	}
	if interrupted {
		log.Print("interrupted")
		os.Exit(1)
	}
	if gaps := mon.Gaps(); len(gaps) > 0 {
		fmt.Printf("WARNING: %d unresolved missing intervals\n", len(gaps))
		os.Exit(3)
	}
}

// runFeedServer serves a raw dataset directory over the live feed protocol,
// advancing one tick per -feed-tick period — a local stand-in for the real
// GDELT feed, with optional fault injection for drills: outages, duplicate
// advertisements, reordered drops.
func runFeedServer(ctx context.Context, addr, dir string, tick time.Duration, chaos *faults.FeedChaos) {
	fs, err := stream.NewFeedServer(dir, chaos)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Addr: addr, Handler: fs}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if !fs.Advance() {
					log.Printf("feed exhausted at tick %d/%d; still serving", fs.Pos()+1, fs.Ticks())
					return
				}
			}
		}
	}()
	log.Printf("serving %d feed ticks from %s on %s (one tick per %v)", fs.Ticks(), dir, addr, tick)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
