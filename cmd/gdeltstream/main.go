// Command gdeltstream replays a raw GDELT dataset through the real-time
// monitoring engine: chunks are consumed in feed order (as a live
// deployment would consume each 15-minute update), incremental statistics
// are maintained, and digital-wildfire alerts print the moment their
// distinct-source threshold is crossed — within one capture interval of
// ignition, the latency that matters when tracking fast-spreading
// misinformation.
//
// The replay is fault-tolerant: transient chunk reads are retried with
// backoff, chunks that stay unreadable are reported as gaps, and late
// mentions inside -grace intervals are folded in without breaking feed
// order. With -checkpoint the monitor state is persisted so a restarted
// replay resumes from where it stopped, consuming only unseen chunks.
//
// Beyond replay, two production-cadence modes cover the live loop end to
// end. -live polls a feed endpoint speaking the real GDELT convention
// (lastupdate.txt for the newest tick, masterfilelist.txt for catch-up)
// and folds every tick into a partitioned append log whose background
// compactor seals the mutable tail into immutable indexed shards.
// -serve-feed turns a raw dataset directory into such an endpoint locally,
// advancing one tick per -feed-tick with optional fault injection
// (outages, duplicate advertisements, reordered drops) for resilience
// drills.
//
// Usage:
//
//	gdeltstream -in ./dataset [-window 8] [-min 5] [-grace 8] [-retries 5]
//	            [-checkpoint state.json] [-progress 10000]
//	gdeltstream -live http://host:8090 [-poll 2s] [-max-polls N]
//	            [-seal-rows N] [-seal-span N] [-checkpoint state.json]
//	gdeltstream -in ./dataset -serve-feed :8090 [-feed-tick 2s]
//	            [-feed-outage 0.05] [-feed-dup 0.05] [-feed-drop 0.05]
//
// Exit codes: 0 success, 1 fatal error (or interrupted), 2 usage,
// 3 replay finished with unresolved missing intervals.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/ingest"
	"gdeltmine/internal/report"
	"gdeltmine/internal/retry"
	"gdeltmine/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltstream: ")
	var (
		in       = flag.String("in", "", "raw dataset directory (required)")
		window   = flag.Int("window", 8, "wildfire window in 15-minute intervals")
		minSrc   = flag.Int("min", 5, "distinct sources that trigger an alert")
		grace    = flag.Int("grace", 8, "intervals of clock regression tolerated for late chunks")
		retries  = flag.Int("retries", 5, "chunk read attempts before declaring a gap")
		ckptPath = flag.String("checkpoint", "", "persist monitor state here and resume from it if present")
		progress = flag.Int("progress", 100000, "print a snapshot every N articles (0 disables)")

		// Live-feed mode: poll a lastupdate/masterfile endpoint instead of
		// replaying a local directory.
		live     = flag.String("live", "", "live feed base URL; poll it instead of replaying -in")
		poll     = flag.Duration("poll", 2*time.Second, "live mode: poll period")
		maxPolls = flag.Int("max-polls", 0, "live mode: stop after N polls (0 = until interrupted)")
		tickIv   = flag.Int("tick-intervals", 1, "live mode: capture intervals per feed tick")
		sealRows = flag.Int("seal-rows", 0, "live mode: compactor row threshold (0 = default)")
		sealSpan = flag.Int("seal-span", 0, "live mode: compactor age threshold in intervals (0 = default)")

		// Feed-server mode: serve -in over the live protocol for local drills.
		serveFeed = flag.String("serve-feed", "", "serve -in as a live feed on this address (e.g. :8090)")
		feedTick  = flag.Duration("feed-tick", 2*time.Second, "feed server: wall time per feed tick")
		feedSeed  = flag.Int64("feed-seed", 1, "feed server: fault-injection seed")
		feedOut   = flag.Float64("feed-outage", 0, "feed server: per-tick outage probability")
		feedDup   = flag.Float64("feed-dup", 0, "feed server: per-tick duplicate-advertisement probability")
		feedDrop  = flag.Float64("feed-drop", 0, "feed server: per-tick reordered-drop probability")
	)
	flag.Parse()
	if *in == "" && *live == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *serveFeed != "" {
		runFeedServer(ctx, *serveFeed, *in, *feedTick, &faults.FeedChaos{
			Seed: *feedSeed, OutageProb: *feedOut, DuplicateProb: *feedDup, DropProb: *feedDrop,
		})
		return
	}
	if *live != "" {
		runLive(ctx, *live,
			stream.Config{Window: int32(*window), MinSources: *minSrc,
				GraceIntervals: int32(*grace), ChunkIntervals: int32(*tickIv)},
			stream.LiveConfig{TickIntervals: int32(*tickIv)},
			stream.CompactorConfig{MaxTailRows: *sealRows, MaxTailSpan: int32(*sealSpan)},
			*poll, *maxPolls, *ckptPath)
		return
	}

	f, err := os.Open(filepath.Join(*in, gen.MasterFileName))
	if err != nil {
		log.Fatal(err)
	}
	ml, err := gdelt.ReadMasterList(bufio.NewReader(f))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	// Feed order: mentions chunks by interval.
	type feedChunk struct {
		entry gdelt.MasterEntry
		ts    gdelt.Timestamp
	}
	var chunks []feedChunk
	var first gdelt.Timestamp
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err != nil {
			continue
		}
		if first == 0 || iv < first {
			first = iv
		}
		if e.Kind() == "mentions" {
			chunks = append(chunks, feedChunk{entry: e, ts: iv})
		}
	}
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].entry.Path < chunks[b].entry.Path })

	cfg := stream.Config{
		Window:         int32(*window),
		MinSources:     *minSrc,
		GraceIntervals: int32(*grace),
	}
	mon := stream.NewMonitor(first, cfg)
	resumed := 0
	if *ckptPath != "" {
		cp, err := stream.ReadCheckpointFile(*ckptPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First run: nothing to resume.
		case err != nil:
			log.Fatal(err)
		default:
			mon, err = stream.FromCheckpoint(cp)
			if err != nil {
				log.Fatal(err)
			}
			resumed = 1
		}
	}

	pol := retry.DefaultPolicy()
	pol.MaxAttempts = *retries
	reader := &ingest.Reader{Src: ingest.Dir(*in), Retry: pol}

	start := time.Now()
	var fields [][]byte
	alertsSeen := len(mon.Snapshot().Alerts)
	skipped, unreadable := 0, 0
	interrupted := false
feed:
	for _, chunk := range chunks {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if resumed > 0 && mon.SeenChunk(chunk.ts) {
			skipped++
			continue
		}
		data, err := reader.Read(ctx, chunk.entry)
		var ce *ingest.ChecksumError
		switch {
		case errors.As(err, &ce):
			// Damaged but present: parse what survived, the gap is closed.
		case errors.Is(err, context.Canceled):
			interrupted = true
			break feed
		case err != nil:
			unreadable++
			log.Printf("chunk %s unreadable after %d attempts: %v", chunk.entry.Path, *retries, err)
			continue // the interval stays unmarked and shows up as a gap
		}
		mon.MarkChunk(chunk.ts)
		for len(data) > 0 {
			var line []byte
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				line, data = data[:i], data[i+1:]
			} else {
				line, data = data, nil
			}
			if len(line) == 0 {
				continue
			}
			fields = gdelt.SplitTabs(line, fields)
			mn, err := gdelt.ParseMentionFields(fields)
			if err != nil {
				continue
			}
			if err := mon.ObserveMention(&mn); err != nil {
				log.Fatalf("feed order violated: %v", err)
			}
			snap := mon.Snapshot()
			for _, a := range snap.Alerts[alertsSeen:] {
				fmt.Printf("ALERT interval=%d event=%d sources=%d\n", a.FiredAt, a.EventID, a.Sources)
				alertsSeen++
			}
			if *progress > 0 && snap.Articles%int64(*progress) == 0 {
				fmt.Printf("... %s articles, %s slow, %d tracked events, %d alerts\n",
					report.Int(snap.Articles), report.Int(snap.SlowArticles),
					snap.TrackedEvents, len(snap.Alerts))
			}
		}
	}

	if *ckptPath != "" {
		if err := mon.Checkpoint().WriteFile(*ckptPath); err != nil {
			log.Fatal(err)
		}
	}
	if interrupted {
		if *ckptPath != "" {
			log.Printf("interrupted; state saved to %s — rerun to resume", *ckptPath)
		} else {
			log.Print("interrupted")
		}
		os.Exit(1)
	}

	snap := mon.Snapshot()
	top := mon.TopPublishers(5)
	fmt.Printf("\nreplayed %s articles in %v: %s slow (>24h), %s late, %d wildfire alerts\n",
		report.Int(snap.Articles), time.Since(start).Round(time.Millisecond),
		report.Int(snap.SlowArticles), report.Int(snap.LateArticles), len(snap.Alerts))
	if skipped > 0 {
		fmt.Printf("resumed from checkpoint: %d chunks already consumed\n", skipped)
	}
	fmt.Println("most productive sources so far:")
	for i, p := range top {
		fmt.Printf("  %d. %-32s %s articles\n", i+1, p.Source, report.Int(p.Articles))
	}

	if gaps := mon.Gaps(); len(gaps) > 0 {
		fmt.Printf("\nWARNING: replay ended with %d unresolved missing intervals (%d chunks unreadable):\n",
			len(gaps), unreadable)
		for i, g := range gaps {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(gaps)-10)
				break
			}
			fmt.Printf("  %s\n", g)
		}
		os.Exit(3)
	}
}
