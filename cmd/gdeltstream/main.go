// Command gdeltstream replays a raw GDELT dataset through the real-time
// monitoring engine: chunks are consumed in feed order (as a live
// deployment would consume each 15-minute update), incremental statistics
// are maintained, and digital-wildfire alerts print the moment their
// distinct-source threshold is crossed — within one capture interval of
// ignition, the latency that matters when tracking fast-spreading
// misinformation.
//
// Usage:
//
//	gdeltstream -in ./dataset [-window 8] [-min 5] [-progress 10000]
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/report"
	"gdeltmine/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltstream: ")
	var (
		in       = flag.String("in", "", "raw dataset directory (required)")
		window   = flag.Int("window", 8, "wildfire window in 15-minute intervals")
		minSrc   = flag.Int("min", 5, "distinct sources that trigger an alert")
		progress = flag.Int("progress", 100000, "print a snapshot every N articles (0 disables)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(filepath.Join(*in, gen.MasterFileName))
	if err != nil {
		log.Fatal(err)
	}
	ml, err := gdelt.ReadMasterList(bufio.NewReader(f))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	// Feed order: mentions chunks by interval.
	var chunks []gdelt.MasterEntry
	var first gdelt.Timestamp
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err != nil {
			continue
		}
		if first == 0 || iv < first {
			first = iv
		}
		if e.Kind() == "mentions" {
			chunks = append(chunks, e)
		}
	}
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].Path < chunks[b].Path })

	mon := stream.NewMonitor(first, stream.Config{Window: int32(*window), MinSources: *minSrc})
	start := time.Now()
	var fields [][]byte
	alertsSeen := 0
	for _, chunk := range chunks {
		data, err := os.ReadFile(filepath.Join(*in, chunk.Path))
		if err != nil {
			continue // missing archives are part of life
		}
		for len(data) > 0 {
			var line []byte
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				line, data = data[:i], data[i+1:]
			} else {
				line, data = data, nil
			}
			if len(line) == 0 {
				continue
			}
			fields = gdelt.SplitTabs(line, fields)
			mn, err := gdelt.ParseMentionFields(fields)
			if err != nil {
				continue
			}
			if err := mon.ObserveMention(&mn); err != nil {
				log.Fatalf("feed order violated: %v", err)
			}
			snap := mon.Snapshot()
			for _, a := range snap.Alerts[alertsSeen:] {
				fmt.Printf("ALERT interval=%d event=%d sources=%d\n", a.FiredAt, a.EventID, a.Sources)
				alertsSeen++
			}
			if *progress > 0 && snap.Articles%int64(*progress) == 0 {
				fmt.Printf("... %s articles, %s slow, %d tracked events, %d alerts\n",
					report.Int(snap.Articles), report.Int(snap.SlowArticles),
					snap.TrackedEvents, len(snap.Alerts))
			}
		}
	}
	snap := mon.Snapshot()
	top := mon.TopPublishers(5)
	fmt.Printf("\nreplayed %s articles in %v: %s slow (>24h), %d wildfire alerts\n",
		report.Int(snap.Articles), time.Since(start).Round(time.Millisecond),
		report.Int(snap.SlowArticles), len(snap.Alerts))
	fmt.Println("most productive sources so far:")
	for i, p := range top {
		fmt.Printf("  %d. %-32s %s articles\n", i+1, p.Source, report.Int(p.Articles))
	}
}
