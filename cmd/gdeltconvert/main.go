// Command gdeltconvert is the preprocessing tool of Section IV: it reads a
// raw GDELT dataset (master file list plus chunk files), cleans and
// validates the data, and writes the indexed binary database. The defect
// tally it prints reproduces Table II.
//
// The conversion is fault-tolerant: transient chunk-read failures are
// retried with capped exponential backoff, permanently unreadable chunks
// are quarantined (the build completes partially and reports the loss),
// and a damage level above -max-quarantine-frac aborts.
//
// Usage:
//
//	gdeltconvert -in ./dataset -out ./gdelt.gdmb [-retries 5] [-max-quarantine-frac 1.0]
//	             [-shards 4]
//
// With -shards K > 1 the converted store is additionally split on
// capture-interval boundaries into K time-range shards written next to
// -out (one <out>.shard<i> per shard plus a <out>.shards manifest), ready
// for `gdeltserve -db <out>.shards`.
//
// Exit codes: 0 success, 1 fatal error, 2 usage,
// 3 quarantine threshold exceeded (dataset too damaged).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdeltmine"
	"gdeltmine/internal/report"
	"gdeltmine/internal/retry"
	"gdeltmine/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltconvert: ")
	var (
		in      = flag.String("in", "", "raw dataset directory (required)")
		out     = flag.String("out", "", "output binary database path (required)")
		retries = flag.Int("retries", 5, "chunk read attempts before quarantining (transient failures only)")
		maxQuar = flag.Float64("max-quarantine-frac", 1.0, "abort when more than this fraction of chunks quarantine")
		shards  = flag.Int("shards", 0, "also write a K-shard layout next to -out (manifest <out>.shards + one file per shard); 0 disables")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	pol := retry.DefaultPolicy()
	pol.MaxAttempts = *retries

	start := time.Now()
	ds, err := gdeltmine.ConvertRawOpts(ctx, *in, gdeltmine.ConvertOptions{
		Retry:             pol,
		MaxQuarantineFrac: *maxQuar,
	})
	if err != nil {
		if errors.Is(err, gdeltmine.ErrTooManyQuarantined) {
			log.Print(err)
			os.Exit(3)
		}
		log.Fatal(err)
	}
	convTime := time.Since(start)

	start = time.Now()
	if err := ds.SaveBinary(*out); err != nil {
		log.Fatal(err)
	}
	saveTime := time.Since(start)

	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %s articles, %s events, %s sources in %v\n",
		report.Int(int64(ds.Articles())), report.Int(int64(ds.Events())),
		report.Int(int64(ds.Sources())), convTime.Round(time.Millisecond))
	fmt.Printf("ingestion: %d duplicate events, %d dangling mentions, %d dropped mentions\n",
		ds.Build.DuplicateEvents, ds.Build.DanglingMentions, ds.Build.DroppedMentions)
	if n := len(ds.Quarantined); n > 0 {
		fmt.Printf("quarantined %d chunks (build completed without them):\n", n)
		for i, q := range ds.Quarantined {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", n-10)
				break
			}
			fmt.Printf("  %s: %s\n", q.Path, q.Reason)
		}
	}
	fmt.Printf("wrote %s (%.1f MB) in %v\n", *out, float64(info.Size())/1e6, saveTime.Round(time.Millisecond))
	if *shards > 1 {
		start = time.Now()
		sdb, err := shard.Split(ds.Engine().DB(), *shards)
		if err != nil {
			log.Fatal(err)
		}
		manifest := *out + ".shards"
		if err := shard.WriteFiles(manifest, sdb); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-shard layout (manifest %s) in %v\n",
			sdb.K(), manifest, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Print(report.TableII(ds.Report()))
}
