// Command gdeltconvert is the preprocessing tool of Section IV: it reads a
// raw GDELT dataset (master file list plus chunk files), cleans and
// validates the data, and writes the indexed binary database. The defect
// tally it prints reproduces Table II.
//
// Usage:
//
//	gdeltconvert -in ./dataset -out ./gdelt.gdmb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gdeltmine"
	"gdeltmine/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltconvert: ")
	var (
		in  = flag.String("in", "", "raw dataset directory (required)")
		out = flag.String("out", "", "output binary database path (required)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	ds, err := gdeltmine.ConvertRaw(*in)
	if err != nil {
		log.Fatal(err)
	}
	convTime := time.Since(start)

	start = time.Now()
	if err := ds.SaveBinary(*out); err != nil {
		log.Fatal(err)
	}
	saveTime := time.Since(start)

	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %s articles, %s events, %s sources in %v\n",
		report.Int(int64(ds.Articles())), report.Int(int64(ds.Events())),
		report.Int(int64(ds.Sources())), convTime.Round(time.Millisecond))
	fmt.Printf("ingestion: %d duplicate events, %d dangling mentions, %d dropped mentions\n",
		ds.Build.DuplicateEvents, ds.Build.DanglingMentions, ds.Build.DroppedMentions)
	fmt.Printf("wrote %s (%.1f MB) in %v\n", *out, float64(info.Size())/1e6, saveTime.Round(time.Millisecond))
	fmt.Println()
	fmt.Print(report.TableII(ds.Report()))
}
