package main

import (
	"encoding/json"
	"fmt"
	"os"

	"gdeltmine"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/queries"
)

// qlangBenchResult is one panel's pushdown-vs-closure measurement as written
// to -qlang-json. Times are milliseconds per run; Speedup is the closure
// scan time over the bitmap-pushdown time.
type qlangBenchResult struct {
	Panel      string  `json:"panel"`
	Where      string  `json:"where"`
	Group      string  `json:"group"`
	Agg        string  `json:"agg"`
	Workers    int     `json:"workers"`
	Rows       int     `json:"rows"`
	MatchShare float64 `json:"match_share"`
	Path       string  `json:"path"`
	ClosureMS  float64 `json:"closure_ms"`
	PushdownMS float64 `json:"pushdown_ms"`
	Speedup    float64 `json:"speedup"`
}

// runQlangBench measures qlang predicate pushdown against the closure scan
// it replaces, on two panel shapes chosen from the loaded corpus:
//
//   - selective: a sourcecountry clause matching at most a few percent of
//     the mention rows, where the planner resolves to the bitmap rows plan.
//     This is the acceptance panel — minSelective gates its speedup, since
//     skipping the scan is the whole point of the postings.
//   - broad: the head country owning the largest share of rows, where row
//     extraction cannot pay. Informational: it pins the cost of forcing the
//     rows plan onto the shape the planner would refuse, documenting why
//     the selectivity threshold exists.
//
// Both sides compute the same grouped count and the results are asserted
// byte-equal before timing, so the benchmark doubles as an end-to-end
// equivalence check on the dataset it runs on.
func runQlangBench(ds *gdeltmine.Dataset, workers int, jsonPath string, minSelective float64) error {
	e := ds.Engine().WithWorkers(workers).WithKind("qlang-bench")
	db := e.DB()
	nm := db.Mentions.Len()
	if nm == 0 {
		return fmt.Errorf("qlang-bench: empty corpus")
	}

	// Pick the panels from the source-country postings: the largest country
	// at or below 5% of rows is the selective shape, the largest overall is
	// the broad one.
	const selectiveShare = 0.05
	selIdx, selCard := -1, int64(0)
	broadIdx, broadCard := -1, int64(0)
	for c := range gdelt.Countries {
		card := db.CountryRowBitmap(c).Cardinality()
		if card == 0 {
			continue
		}
		if card > broadCard {
			broadIdx, broadCard = c, card
		}
		if float64(card) <= selectiveShare*float64(nm) && card > selCard {
			selIdx, selCard = c, card
		}
	}
	if broadIdx < 0 {
		return fmt.Errorf("qlang-bench: no attributed source countries in corpus")
	}
	if selIdx < 0 {
		// Degenerate corpus where every present country is head-sized; fall
		// back to the smallest present country so the benchmark still runs.
		for c := range gdelt.Countries {
			if card := db.CountryRowBitmap(c).Cardinality(); card > 0 && (selIdx < 0 || card < selCard) {
				selIdx, selCard = c, card
			}
		}
	}

	panels := []struct {
		name  string
		where string
		card  int64
	}{
		{"selective", fmt.Sprintf("sourcecountry=%s and delay>2", gdelt.Countries[selIdx].FIPS), selCard},
		{"broad", fmt.Sprintf("sourcecountry=%s and delay>2", gdelt.Countries[broadIdx].FIPS), broadCard},
	}

	var results []qlangBenchResult
	for _, p := range panels {
		spec, err := queries.ParseAdhocSpec(p.where, "quarter", "count", 0)
		if err != nil {
			return fmt.Errorf("qlang-bench: %s: %w", p.name, err)
		}
		pushE := e.WithPlan(engine.PlanRows)
		scanE := e.WithPlan(engine.PlanScan)

		// Equivalence first: a grouped count is exact regardless of worker
		// scheduling, so the two paths must agree byte-for-byte.
		pushRes, err := queries.AdhocQuery(pushE, spec)
		if err != nil {
			return fmt.Errorf("qlang-bench: %s pushdown: %w", p.name, err)
		}
		scanRes, err := queries.AdhocQuery(scanE, spec)
		if err != nil {
			return fmt.Errorf("qlang-bench: %s closure: %w", p.name, err)
		}
		pushJSON, _ := json.Marshal(pushRes)
		scanJSON, _ := json.Marshal(scanRes)
		if string(pushJSON) != string(scanJSON) {
			return fmt.Errorf("qlang-bench: %s: pushdown result diverges from closure scan:\n%s\nvs\n%s",
				p.name, pushJSON, scanJSON)
		}

		r := qlangBenchResult{
			Panel:      p.name,
			Where:      spec.Where,
			Group:      spec.Group,
			Agg:        spec.Agg.String(),
			Workers:    workers,
			Rows:       nm,
			MatchShare: float64(p.card) / float64(nm),
			Path:       queries.ExplainAdhoc(pushE, spec).Path,
		}
		r.ClosureMS, r.PushdownMS = measurePair(
			func() {
				if _, err := queries.AdhocQuery(scanE, spec); err != nil {
					panic(err)
				}
			},
			func() {
				if _, err := queries.AdhocQuery(pushE, spec); err != nil {
					panic(err)
				}
			},
		)
		if r.PushdownMS > 0 {
			r.Speedup = r.ClosureMS / r.PushdownMS
		}
		results = append(results, r)
		fmt.Printf("qlang-bench %-10s %-36s share %5.1f%%  closure %9.4fms  pushdown %9.4fms  speedup %6.2fx\n",
			r.Panel, r.Where, 100*r.MatchShare, r.ClosureMS, r.PushdownMS, r.Speedup)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if minSelective > 0 {
		for _, r := range results {
			if r.Panel == "selective" && r.Speedup < minSelective {
				return fmt.Errorf("qlang-bench: selective pushdown speedup %.2fx below required %.1fx", r.Speedup, minSelective)
			}
		}
		fmt.Printf("selective qlang pushdown at or above %.1fx\n", minSelective)
	}
	return nil
}
