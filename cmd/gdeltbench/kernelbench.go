package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gdeltmine"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/queries"
)

// kernelBenchResult is one kernel's closure-vs-typed (and, where a pruned
// path exists, vs-pruned) measurement as written to -kernel-json. Times are
// milliseconds per run; speedups are closure time over the fast path.
type kernelBenchResult struct {
	Kernel        string  `json:"kernel"`
	Workers       int     `json:"workers"`
	Rows          int     `json:"rows"`
	ClosureMS     float64 `json:"closure_ms"`
	TypedMS       float64 `json:"typed_ms,omitempty"`
	PrunedMS      float64 `json:"pruned_ms,omitempty"`
	TypedSpeedup  float64 `json:"typed_speedup,omitempty"`
	PrunedSpeedup float64 `json:"pruned_speedup,omitempty"`
}

// calibrateReps picks a repetition count so one sample of f lasts ~25ms,
// amortizing timer noise on fast kernels.
func calibrateReps(f func()) int {
	f() // warm up: page in columns, fill the accumulator pools
	start := time.Now()
	f()
	once := time.Since(start)
	reps := 1
	if target := 25 * time.Millisecond; once < target {
		reps = int(target / max(once, time.Microsecond))
		if reps > 1000 {
			reps = 1000
		}
		if reps < 1 {
			reps = 1
		}
	}
	return reps
}

func sampleKernel(f func(), reps int) time.Duration {
	start := time.Now()
	for r := 0; r < reps; r++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// measurePair times two implementations of the same kernel with interleaved
// samples — slow/fast, slow/fast, … — so a machine-wide slowdown (another
// process stealing cores mid-benchmark) degrades both sides rather than
// skewing the ratio. Best of five samples per side, the standard
// floor-of-noise estimator for throughput benchmarks; returns milliseconds.
func measurePair(slow, fast func()) (float64, float64) {
	slowReps := calibrateReps(slow)
	fastReps := calibrateReps(fast)
	bestSlow := time.Duration(1<<62 - 1)
	bestFast := time.Duration(1<<62 - 1)
	for sample := 0; sample < 5; sample++ {
		if d := sampleKernel(slow, slowReps); d < bestSlow {
			bestSlow = d
		}
		if d := sampleKernel(fast, fastReps); d < bestFast {
			bestFast = d
		}
	}
	return float64(bestSlow) / float64(time.Millisecond), float64(bestFast) / float64(time.Millisecond)
}

// runKernelBench measures the vectorized scan kernels against the generic
// closure kernels they replace, and the planner-driven report paths
// against their full scans, on the loaded dataset. minTyped gates the
// cross-count kernel (the acceptance kernel for typed execution),
// minPruned gates coreport-16 (the acceptance kernel for pruning), and
// minPlanner gates every planner-driven report row — the cost-based
// planner must never be slower than the closure scan it replaces,
// regardless of panel shape. The bitmap-* rows are informational: they
// pin each forced plan's cost on the panel shape it was NOT built for.
func runKernelBench(ds *gdeltmine.Dataset, workers int, jsonPath string, minTyped, minPruned, minPlanner float64) error {
	e := ds.Engine().WithWorkers(workers).WithKind("kernel-bench")
	db := e.DB()
	nm := db.Mentions.Len()
	nq := db.NumQuarters()
	ns := db.Sources.Len()
	nc := len(gdelt.Countries)
	var results []kernelBenchResult

	addTyped := func(kernel string, rows int, closure, typed func()) {
		r := kernelBenchResult{Kernel: kernel, Workers: workers, Rows: rows}
		r.ClosureMS, r.TypedMS = measurePair(closure, typed)
		if r.TypedMS > 0 {
			r.TypedSpeedup = r.ClosureMS / r.TypedMS
		}
		results = append(results, r)
		fmt.Printf("kernel-bench %-20s closure %9.4fms  typed  %9.4fms  speedup %6.2fx\n",
			kernel, r.ClosureMS, r.TypedMS, r.TypedSpeedup)
	}

	addTyped("group-count", nm,
		func() { e.GroupCount(ns, func(row int) int { return int(db.Mentions.Source[row]) }) },
		func() { e.GroupCountCol(ns, db.Mentions.Source, nil) },
	)
	addTyped("cross-count", nm,
		func() {
			e.CrossCount(nc, nc, func(row int) (int, int) {
				ev := db.Mentions.EventRow[row]
				return int(db.Events.Country[ev]), int(db.SourceCountry[db.Mentions.Source[row]])
			})
		},
		func() {
			engine.CrossCountRemap(e, nc, nc, db.Mentions.EventRow, db.Events.Country,
				db.Mentions.Source, db.SourceCountry)
		},
	)
	addTyped("sum-by-group", nm,
		func() {
			e.SumByGroup(ns, func(row int) (int, float64) {
				return int(db.Mentions.Source[row]), float64(db.Mentions.Tone[row])
			})
		},
		func() { e.SumByGroupCol(ns, db.Mentions.Source, nil, db.Mentions.Tone) },
	)
	addTyped("group-count-filtered", nm,
		func() {
			e.GroupCount(nq, func(row int) int {
				if db.Mentions.Delay[row] <= gdelt.IntervalsPerDay {
					return -1
				}
				return db.QuarterOfInterval(db.Mentions.Interval[row])
			})
		},
		func() {
			e.GroupCountColSel(nq, db.Mentions.Interval, db.QuarterLUT(),
				engine.PredGT(db.Mentions.Delay, gdelt.IntervalsPerDay))
		},
	)

	addPruned := func(kernel string, panel []int32, scan, pruned func(sources []int32)) {
		r := kernelBenchResult{Kernel: kernel, Workers: workers, Rows: db.Events.Len()}
		r.ClosureMS, r.PrunedMS = measurePair(func() { scan(panel) }, func() { pruned(panel) })
		if r.PrunedMS > 0 {
			r.PrunedSpeedup = r.ClosureMS / r.PrunedMS
		}
		results = append(results, r)
		fmt.Printf("kernel-bench %-20s fullscan %8.4fms  pruned %9.4fms  speedup %6.2fx\n",
			kernel, r.ClosureMS, r.PrunedMS, r.PrunedSpeedup)
	}
	coScan := func(s []int32) {
		if _, err := queries.CoReportScan(e, s); err != nil {
			panic(err)
		}
	}
	coPruned := func(s []int32) {
		if _, err := queries.CoReport(e, s); err != nil {
			panic(err)
		}
	}
	followScan := func(s []int32) { queries.FollowReportScan(e, s) }
	followPruned := func(s []int32) { queries.FollowReport(e, s) }

	// Planner acceptance kernels: co- and follow-reporting over two panel
	// shapes. The 16-source mid-spectrum panel (rank ≥ ns/8) is a typical
	// ad-hoc selection touching a few percent of the corpus — the planner
	// resolves it to the bitmap-pruned rows plan. The top-16 panel is the
	// adversarial shape: on a generated corpus the head publishers own most
	// mentions, so row extraction cannot pay and the planner resolves to
	// the candidate-events plan, which scans strictly fewer rows than the
	// closure. Both shapes therefore gate at >= minPlanner: the planner's
	// job is to never lose to the scan, whichever plan it picks.
	ranked, _ := ds.TopPublishers(ns)
	base := len(ranked) / 8
	panel := make([]int32, 0, 16)
	for i := 0; i < 16 && base+i*(len(ranked)-base)/16 < len(ranked); i++ {
		panel = append(panel, ranked[base+i*(len(ranked)-base)/16])
	}
	top := ranked[:min(16, len(ranked))]
	addPruned("coreport-16", panel, coScan, coPruned)
	addPruned("follow-16", panel, followScan, followPruned)
	addPruned("coreport-top16", top, coScan, coPruned)
	addPruned("follow-top16", top, followScan, followPruned)

	// Informational: each plan forced onto the panel shape the planner
	// would NOT pick for it, showing the cost of a wrong choice (and why
	// the threshold sits where it does).
	rowsE := e.WithPlan(engine.PlanRows)
	eventsE := e.WithPlan(engine.PlanEvents)
	addPruned("bitmap-rows-top16", top, coScan,
		func(s []int32) {
			if _, err := queries.CoReport(rowsE, s); err != nil {
				panic(err)
			}
		})
	addPruned("bitmap-events-16", panel, coScan,
		func(s []int32) {
			if _, err := queries.CoReport(eventsE, s); err != nil {
				panic(err)
			}
		})

	if jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	// Gates: the two acceptance kernels of the vectorization work.
	if minTyped > 0 {
		for _, r := range results {
			if r.Kernel == "cross-count" && r.TypedSpeedup < minTyped {
				return fmt.Errorf("kernel-bench: cross-count typed speedup %.2fx below required %.1fx", r.TypedSpeedup, minTyped)
			}
		}
		fmt.Printf("typed cross-count at or above %.1fx\n", minTyped)
	}
	if minPruned > 0 {
		for _, r := range results {
			if r.Kernel == "coreport-16" && r.PrunedSpeedup < minPruned {
				return fmt.Errorf("kernel-bench: coreport-16 pruned speedup %.2fx below required %.1fx", r.PrunedSpeedup, minPruned)
			}
		}
		fmt.Printf("pruned coreport-16 at or above %.1fx\n", minPruned)
	}
	if minPlanner > 0 {
		plannerKernels := map[string]bool{
			"coreport-16": true, "follow-16": true,
			"coreport-top16": true, "follow-top16": true,
		}
		for _, r := range results {
			if plannerKernels[r.Kernel] && r.PrunedSpeedup < minPlanner {
				return fmt.Errorf("kernel-bench: %s planner speedup %.2fx below required %.1fx (planner lost to the closure scan)",
					r.Kernel, r.PrunedSpeedup, minPlanner)
			}
		}
		fmt.Printf("planner report kernels at or above %.1fx\n", minPlanner)
	}
	return nil
}
