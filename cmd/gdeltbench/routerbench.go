package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"gdeltmine"
	"gdeltmine/internal/router"
	"gdeltmine/internal/serve"
	"gdeltmine/internal/shard"
)

// routerBenchResult is the routed-vs-direct measurement written to
// -router-json: warm-cache latency of a query served straight by a replica
// versus the same query through the scatter/gather router (one extra HTTP
// hop plus affinity hashing and coverage accounting). Informational — the
// router buys failover, not speed; this pins what that costs.
type routerBenchResult struct {
	Requests      int     `json:"requests"`
	DirectSeconds float64 `json:"direct_seconds"`
	RoutedSeconds float64 `json:"routed_seconds"`
	OverheadRatio float64 `json:"overhead_ratio"`
}

// runRouterBench stands up a 2-replica, 1-group fleet over the dataset and
// times min-of-rounds warm-cache latency of the country query direct versus
// routed.
func runRouterBench(ds *gdeltmine.Dataset, jsonPath string) error {
	const requests = 50
	db := ds.Engine().DB()
	sdb, err := shard.Split(db, 2)
	if err != nil {
		return fmt.Errorf("router-bench: %w", err)
	}
	var replicas []router.Replica
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(serve.NewSharded(sdb, serve.Config{}))
		defer srv.Close()
		replicas = append(replicas, router.Replica{ID: fmt.Sprintf("r%d", i), URL: srv.URL})
	}
	rt, err := router.New(router.Config{Replicas: replicas, Shards: 2})
	if err != nil {
		return fmt.Errorf("router-bench: %w", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	const path = "/api/v1/country"
	fetch := func(base string) (time.Duration, error) {
		start := time.Now()
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(start), nil
	}

	// Warm both paths so the replica-side result cache is hot and the
	// measurement isolates routing overhead, not query compute.
	if _, err := fetch(replicas[0].URL); err != nil {
		return fmt.Errorf("router-bench: direct warmup: %w", err)
	}
	if _, err := fetch(front.URL); err != nil {
		return fmt.Errorf("router-bench: routed warmup: %w", err)
	}

	direct := time.Duration(1<<62 - 1)
	routed := direct
	for i := 0; i < requests; i++ {
		d, err := fetch(replicas[0].URL)
		if err != nil {
			return fmt.Errorf("router-bench: direct: %w", err)
		}
		if d < direct {
			direct = d
		}
		r, err := fetch(front.URL)
		if err != nil {
			return fmt.Errorf("router-bench: routed: %w", err)
		}
		if r < routed {
			routed = r
		}
	}

	res := routerBenchResult{
		Requests:      requests,
		DirectSeconds: direct.Seconds(),
		RoutedSeconds: routed.Seconds(),
		OverheadRatio: routed.Seconds() / direct.Seconds(),
	}
	fmt.Printf("router-bench country  direct %8.4fms  routed %8.4fms  overhead %.2fx\n",
		res.DirectSeconds*1e3, res.RoutedSeconds*1e3, res.OverheadRatio)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
