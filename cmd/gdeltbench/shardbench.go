package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"gdeltmine"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
)

// shardKindResult is one panel kind's monolith-vs-sharded measurement:
// min-of-rounds wall clock of the registry Run path (K=1) against the
// RunSharded fan-out over the same data split into K time shards. Speedup
// is K1Seconds / KNSeconds, so >1 means the sharded executor won.
type shardKindResult struct {
	Kind      string  `json:"kind"`
	K1Seconds float64 `json:"k1_seconds"`
	KNSeconds float64 `json:"kn_seconds"`
	Speedup   float64 `json:"speedup"`
}

// shardBenchResult is the panel measurement written to -shard-json. The
// host's core count is recorded because the achievable speedup is bounded
// by it: the gate scales the requested minimum by min(1, cpus/shards), so
// the full bar applies only where the parallelism physically exists.
type shardBenchResult struct {
	Shards          int               `json:"shards"`
	Rounds          int               `json:"rounds"`
	CPUs            int               `json:"cpus"`
	GoMaxProcs      int               `json:"gomaxprocs"`
	MinSpeedup      float64           `json:"min_speedup"`
	RequiredSpeedup float64           `json:"required_speedup"`
	GeomeanSpeedup  float64           `json:"geomean_speedup"`
	PoolStarts      int64             `json:"pool_starts"`
	Kinds           []shardKindResult `json:"kinds"`
}

// requiredShardSpeedup scales the requested minimum speedup to the cores
// actually available: K shard kernels cannot run faster than the core
// count allows, so on a host with fewer cores than shards the bar drops
// proportionally, with a floor of 0.9 — even with zero available
// parallelism the fan-out machinery must cost no more than ~11% over the
// monolith. With cpus >= shards the full minimum applies unscaled.
func requiredShardSpeedup(min float64, shards, cpus int) float64 {
	if min <= 0 {
		return 0
	}
	scale := float64(cpus) / float64(shards)
	if scale > 1 {
		scale = 1
	}
	eff := min * scale
	if eff < 0.9 {
		eff = 0.9
	}
	return eff
}

// runShardBench times every registry kind marked BenchPanel on the
// monolith engine against the sharded fan-out path over the same data.
// Rounds interleave the two paths and each takes its minimum, so scheduler
// noise and cache-warming asymmetry cancel. When minSpeedup > 0 the run
// fails if the panel's geometric-mean speedup falls below the core-scaled
// requirement — the promotion of this benchmark from informational to a
// ci.sh gate. The run also asserts the executor-pool singleton: however
// many kinds and rounds execute, parallel_pool_starts_total must read 1.
func runShardBench(ds *gdeltmine.Dataset, k int, jsonPath string, minSpeedup float64) error {
	const rounds = 3
	db := ds.Engine().DB()
	sdb, err := shard.Split(db, k)
	if err != nil {
		return fmt.Errorf("shard-bench: %w", err)
	}
	// Both paths run the same worker budget. On a single-core host the
	// default would be one worker — every loop inlines and the pool is never
	// touched — so the bench floors the budget at two logical workers: both
	// sides pay identical scheduling overhead, and the executor machinery
	// (pool build, fan-out, stealing) is actually exercised so the
	// singleton assertion below measures something real.
	bw := runtime.GOMAXPROCS(0)
	if bw < 2 {
		bw = 2
	}
	mono := ds.Engine().WithWorkers(bw)
	view := sdb.View().WithWorkers(bw)

	panel := registry.Panel()
	if len(panel) == 0 {
		return fmt.Errorf("shard-bench: no kinds marked BenchPanel")
	}

	res := shardBenchResult{
		Shards:     sdb.K(),
		Rounds:     rounds,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		MinSpeedup: minSpeedup,
	}
	res.RequiredSpeedup = requiredShardSpeedup(minSpeedup, sdb.K(), res.CPUs)

	logGeomean := 0.0
	for _, d := range panel {
		p, err := d.ParseParams(func(string) []string { return nil })
		if err != nil {
			return fmt.Errorf("shard-bench: %s: %w", d.Kind, err)
		}
		e := mono.WithKind(d.Kind)
		sv := view.WithKind(d.Kind)

		// One untimed warmup per path, with a cheap cross-check that the
		// encoded results agree (the full bit-exactness across K and worker
		// counts is pinned by the differential battery in internal/baseline).
		mr, err := d.Run(e, p)
		if err != nil {
			return fmt.Errorf("shard-bench: %s monolith: %w", d.Kind, err)
		}
		sr, err := d.RunSharded(sv, p)
		if err != nil {
			return fmt.Errorf("shard-bench: %s sharded: %w", d.Kind, err)
		}
		mj, _ := json.Marshal(mr)
		sj, _ := json.Marshal(sr)
		if string(mj) != string(sj) {
			return fmt.Errorf("shard-bench: %s sharded result diverges from monolith", d.Kind)
		}

		k1 := time.Duration(1<<62 - 1)
		kn := k1
		for r := 0; r < rounds; r++ {
			start := time.Now()
			if _, err := d.Run(e, p); err != nil {
				return err
			}
			if dur := time.Since(start); dur < k1 {
				k1 = dur
			}
			start = time.Now()
			if _, err := d.RunSharded(sv, p); err != nil {
				return err
			}
			if dur := time.Since(start); dur < kn {
				kn = dur
			}
		}
		knSec := kn.Seconds()
		if knSec <= 0 {
			knSec = 1e-9
		}
		row := shardKindResult{
			Kind:      d.Kind,
			K1Seconds: k1.Seconds(),
			KNSeconds: knSec,
			Speedup:   k1.Seconds() / knSec,
		}
		res.Kinds = append(res.Kinds, row)
		logGeomean += math.Log(row.Speedup)
		fmt.Printf("shard-bench %-22s K=1 %9.4fms  K=%d %9.4fms  speedup %5.2fx\n",
			row.Kind, row.K1Seconds*1e3, res.Shards, row.KNSeconds*1e3, row.Speedup)
	}
	res.GeomeanSpeedup = math.Exp(logGeomean / float64(len(res.Kinds)))
	res.PoolStarts = obs.Default.Counter("parallel_pool_starts_total",
		"times the process-default worker pool was started").Value()
	fmt.Printf("shard-bench panel geomean speedup %.2fx (cpus=%d, shards=%d, pool starts=%d)\n",
		res.GeomeanSpeedup, res.CPUs, res.Shards, res.PoolStarts)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	// The bench ran dozens of fan-outs across many kinds; the persistent
	// pool must have been built exactly once for the whole process.
	if res.PoolStarts != 1 {
		return fmt.Errorf("shard-bench: parallel_pool_starts_total = %d, want 1 (pool not a singleton)", res.PoolStarts)
	}
	if minSpeedup > 0 {
		if res.GeomeanSpeedup < res.RequiredSpeedup {
			return fmt.Errorf("shard-bench: geomean speedup %.2fx below required %.2fx (min %.2fx scaled to %d cpus / %d shards)",
				res.GeomeanSpeedup, res.RequiredSpeedup, minSpeedup, res.CPUs, res.Shards)
		}
		fmt.Printf("sharded fan-out at or above the required %.2fx speedup\n", res.RequiredSpeedup)
	}
	return nil
}
