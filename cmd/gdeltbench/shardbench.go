package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gdeltmine"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/shard"
)

// shardBenchResult is the sharded fan-out measurement written to
// -shard-json: wall-clock of the aggregated country query on the monolith
// (K=1) versus the same store split into K time shards, interleaved and
// min-of-rounds so scheduler noise cancels.
type shardBenchResult struct {
	Shards    int     `json:"shards"`
	Rounds    int     `json:"rounds"`
	K1Seconds float64 `json:"k1_seconds"`
	KNSeconds float64 `json:"kn_seconds"`
	Ratio     float64 `json:"ratio"`
}

// runShardBench times the cross-count (aggregated country) query on the
// monolith against the sharded fan-out path over the same data. The gate
// is informational: a ratio above maxRatio prints a warning but does not
// fail the run, because fan-out overhead on small presets is noise-bound —
// the hard correctness gate is the differential battery, not this timer.
func runShardBench(ds *gdeltmine.Dataset, k int, jsonPath string, maxRatio float64) error {
	const rounds = 3
	db := ds.Engine().DB()
	sdb, err := shard.Split(db, k)
	if err != nil {
		return fmt.Errorf("shard-bench: %w", err)
	}
	mono := ds.Engine()
	view := sdb.View()

	// One untimed warmup each, with a cheap cross-check that both paths
	// agree on the ranking (the full bit-exactness is pinned by the
	// differential battery in internal/baseline).
	mr, err := queries.CountryQuery(mono)
	if err != nil {
		return fmt.Errorf("shard-bench: monolith country query: %w", err)
	}
	sr, err := view.CountryQuery()
	if err != nil {
		return fmt.Errorf("shard-bench: sharded country query: %w", err)
	}
	if fmt.Sprint(mr.TopReported) != fmt.Sprint(sr.TopReported) ||
		fmt.Sprint(mr.TopPublishing) != fmt.Sprint(sr.TopPublishing) {
		return fmt.Errorf("shard-bench: sharded country ranking diverges from monolith")
	}

	k1 := time.Duration(1<<62 - 1)
	kn := k1
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, err := queries.CountryQuery(mono); err != nil {
			return err
		}
		if d := time.Since(start); d < k1 {
			k1 = d
		}
		start = time.Now()
		if _, err := view.CountryQuery(); err != nil {
			return err
		}
		if d := time.Since(start); d < kn {
			kn = d
		}
	}

	res := shardBenchResult{
		Shards:    sdb.K(),
		Rounds:    rounds,
		K1Seconds: k1.Seconds(),
		KNSeconds: kn.Seconds(),
		Ratio:     kn.Seconds() / k1.Seconds(),
	}
	fmt.Printf("shard-bench cross-count  K=1 %8.4fms  K=%d %8.4fms  ratio %.2fx\n",
		res.K1Seconds*1e3, res.Shards, res.KNSeconds*1e3, res.Ratio)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if maxRatio > 0 && res.Ratio > maxRatio {
		fmt.Fprintf(os.Stderr, "shard-bench: WARNING: K=%d ran %.2fx the K=1 wall time (informational limit %.2fx)\n",
			res.Shards, res.Ratio, maxRatio)
	} else if maxRatio > 0 {
		fmt.Printf("sharded fan-out within %.2fx of the monolith\n", maxRatio)
	}
	return nil
}
