package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// streamBenchResult is the artifact written to -stream-json: sustained
// append-path throughput with a durable compactor sealing along the way,
// and the latency distribution of queries running concurrently against the
// log's snapshots. The hard gate is MaxQuerySeconds <= TickSeconds —
// appends and seals must never block a query for longer than one feed
// tick, which holds structurally because the log publishes copy-on-write
// snapshots and readers never take the writer's lock.
type streamBenchResult struct {
	Ticks           int     `json:"ticks"`
	AppendedRows    int     `json:"appended_rows"`
	Seals           int     `json:"seals"`
	FinalShards     int     `json:"final_shards"`
	AppendSeconds   float64 `json:"append_seconds"` // summed time inside Append, not ticker waits
	SealSeconds     float64 `json:"seal_seconds"`   // summed time inside durable seals
	RowsPerSecond   float64 `json:"rows_per_second"`
	Queriers        int     `json:"queriers"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Queries         int     `json:"queries"`
	QueryP50Seconds float64 `json:"query_p50_seconds"`
	QueryP99Seconds float64 `json:"query_p99_seconds"`
	MaxQuerySeconds float64 `json:"max_query_seconds"`
	TickSeconds     float64 `json:"tick_seconds"`
	AllowedSeconds  float64 `json:"allowed_seconds"`
	GatePassed      bool    `json:"gate_passed"`
}

// streamBenchKinds is the concurrent query panel: cheap enough to loop
// while appends land, varied enough to touch events, mentions and the
// per-source postings.
var streamBenchKinds = []string{"top-publishers", "country", "series-articles"}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runStreamBench replays the production cadence against a durable append
// log: the back half of a bench corpus arrives as real-time feed ticks
// (one append per tick period) with the compactor sealing the tail every
// few days of data, while querier goroutines hammer the log's snapshots
// the whole time. Reported: sustained append throughput and the
// concurrent-query latency distribution; gated: no query may ever take
// longer than one tick.
func runStreamBench(jsonPath string, tick time.Duration) error {
	cfg := gen.Bench()
	cfg.End = 20170101000000 // two years: parts stay seal-sized
	c, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := intervals - 40*gdelt.IntervalsPerDay
	step := 2 * int32(gdelt.IntervalsPerDay)

	b, err := store.NewBuilder(gdelt.Timestamp(cfg.Start), intervals)
	if err != nil {
		return err
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	held := 0
	for j := range c.Mentions {
		if c.Mentions[j].Interval >= cut {
			held++
			continue
		}
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
	}
	db, _, err := b.Finish()
	if err != nil {
		return err
	}
	sdb, err := shard.Split(db, 6)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "gdeltbench-streamlog-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Durable log: seals pay the real write+fsync+rename cost.
	lg, err := shard.CreateLog(dir, sdb)
	if err != nil {
		return err
	}
	fmt.Printf("stream bench: %d withheld mention rows over %d ticks of %v (seal every 6 days of data)\n",
		held, (intervals-cut+step-1)/step, tick)

	// Queriers: loop the panel against whatever snapshot is current until
	// the appender finishes. One worker per kind execution keeps each query
	// serial so its latency is comparable across the run; the querier count
	// is capped at the core count so the measurement is of blocking, not of
	// deliberate CPU oversubscription.
	queriers := runtime.GOMAXPROCS(0)
	if queriers > 4 {
		queriers = 4
	}
	done := make(chan struct{})
	var qmu sync.Mutex
	var latencies []float64
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				kind := streamBenchKinds[(q+i)%len(streamBenchKinds)]
				d := registry.MustLookup(kind)
				p, err := d.ParseParams(func(string) []string { return nil })
				if err != nil {
					panic(err)
				}
				t0 := time.Now()
				if _, err := d.RunSharded(lg.Snapshot().View().WithWorkers(1).WithKind(kind), p); err != nil {
					panic(fmt.Sprintf("stream bench query %s: %v", kind, err))
				}
				qmu.Lock()
				latencies = append(latencies, time.Since(t0).Seconds())
				qmu.Unlock()
			}
		}(q)
	}

	// Appender: one tick per period, sealing once the tail holds 6 days.
	res := streamBenchResult{TickSeconds: tick.Seconds(),
		Queriers: queriers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	ticker := time.NewTicker(tick)
	var appendTime, sealTime time.Duration
	for lo := cut; lo < intervals; lo += step {
		hi := lo + step
		var ch []gdelt.Mention
		for j := range c.Mentions {
			if iv := c.Mentions[j].Interval; iv >= lo && iv < hi {
				ch = append(ch, c.MentionRecord(j))
			}
		}
		<-ticker.C
		t0 := time.Now()
		if len(ch) > 0 {
			if _, err := lg.Append(nil, ch); err != nil {
				return err
			}
		}
		appendTime += time.Since(t0)
		if lg.TailSpan() >= 6*gdelt.IntervalsPerDay {
			t0 = time.Now()
			sealed, err := lg.Seal()
			if err != nil {
				return err
			}
			sealTime += time.Since(t0)
			if sealed {
				res.Seals++
			}
		}
		res.Ticks++
		res.AppendedRows += len(ch)
	}
	ticker.Stop()
	close(done)
	wg.Wait()

	res.FinalShards = lg.Snapshot().K()
	res.AppendSeconds = appendTime.Seconds()
	res.SealSeconds = sealTime.Seconds()
	if res.AppendSeconds > 0 {
		res.RowsPerSecond = float64(res.AppendedRows) / res.AppendSeconds
	}
	sort.Float64s(latencies)
	res.Queries = len(latencies)
	res.QueryP50Seconds = quantile(latencies, 0.50)
	res.QueryP99Seconds = quantile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxQuerySeconds = latencies[n-1]
	}
	// The gate: no query may be held up longer than one feed tick by
	// concurrent append/seal work. Readers run on copy-on-write snapshots
	// and never take the writer's lock, so the only delay is CPU
	// contention — on a host with fewer cores than runnable goroutines the
	// bound scales by the oversubscription factor (appender + queriers
	// sharing GOMAXPROCS cores), mirroring the shard bench's core-scaled
	// requirement.
	oversub := float64(queriers+1) / float64(runtime.GOMAXPROCS(0))
	if oversub < 1 {
		oversub = 1
	}
	res.AllowedSeconds = res.TickSeconds * oversub
	res.GatePassed = res.MaxQuerySeconds <= res.AllowedSeconds

	fmt.Printf("appended %d rows over %d ticks: %.3fs appending (%.0f rows/s), %.3fs in %d durable seals, %d final shards\n",
		res.AppendedRows, res.Ticks, res.AppendSeconds, res.RowsPerSecond, res.SealSeconds, res.Seals, res.FinalShards)
	fmt.Printf("concurrent queries (%d queriers on %d cores): %d, p50 %.1fms, p99 %.1fms, max %.1fms (bound %.0fms = tick %v x oversubscription)\n",
		res.Queriers, res.GoMaxProcs, res.Queries, res.QueryP50Seconds*1e3,
		res.QueryP99Seconds*1e3, res.MaxQuerySeconds*1e3, res.AllowedSeconds*1e3, tick)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if !res.GatePassed {
		return fmt.Errorf("stream bench gate: max concurrent query latency %.1fms exceeds the core-scaled tick bound %.1fms — appends are blocking readers",
			res.MaxQuerySeconds*1e3, res.AllowedSeconds*1e3)
	}
	return nil
}
