// Command gdeltbench regenerates every table and figure of the paper's
// evaluation from a synthetic corpus: Tables I-VIII, Figures 2-11, the
// Figure 12 strong-scaling sweep of the aggregated country query, and the
// baseline comparisons the paper motivates in Section II.
//
// Usage:
//
//	gdeltbench                      # everything, small preset
//	gdeltbench -preset standard     # the full-scale run
//	gdeltbench -table 4             # only Table IV
//	gdeltbench -figure 12           # only the scaling sweep
//	gdeltbench -db ./gdelt.gdmb     # reuse a converted database
//	gdeltbench -stats               # append the obs metrics snapshot (JSON)
//	gdeltbench -json t.json -baseline results/bench_baseline.json -threshold 2
//	                                # regression gate: fail past 2x baseline
//	gdeltbench -cache-bench -cache-json results/cache_bench.json -cache-min-speedup 10
//	                                # repeated-query benchmark through the
//	                                # result cache; fail below 10x warm speedup
//
// Without -db, the harness generates the preset corpus, writes it as a raw
// GDELT dataset into a temporary directory, and converts it — exercising
// the full pipeline and reproducing the Table II defect accounting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"gdeltmine"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltbench: ")
	var (
		preset  = flag.String("preset", "small", "corpus preset: small, bench, or standard")
		dbPath  = flag.String("db", "", "reuse an existing binary database instead of generating")
		table   = flag.Int("table", 0, "regenerate only this table (1-8)")
		figure  = flag.Int("figure", 0, "regenerate only this figure (2-12)")
		keepRaw = flag.String("keep-raw", "", "write the raw dataset here instead of a temp dir")
		workers = flag.Int("workers", 0, "default worker count for queries (0 = GOMAXPROCS)")
		stats   = flag.Bool("stats", false, "print the engine-internal metrics snapshot as JSON after the run")
		jsonOut = flag.String("json", "", "write per-step wall-clock timings (seconds) as JSON to this file")
		basePth = flag.String("baseline", "", "compare timings against this baseline JSON; exit nonzero past -threshold")
		thresh  = flag.Float64("threshold", 2.0, "regression factor: fail when a step exceeds threshold x baseline")

		cacheBench = flag.Bool("cache-bench", false, "run the repeated-query cache benchmark instead of the paper artifacts")
		cacheJSON  = flag.String("cache-json", "", "write cache benchmark results as JSON to this file")
		minSpeedup = flag.Float64("cache-min-speedup", 0, "fail when any kind's warm-cache speedup falls below this factor (0 disables)")

		shardBench    = flag.Bool("shard-bench", false, "run the sharded-vs-monolith query panel benchmark instead of the paper artifacts")
		shardK        = flag.Int("shard-k", 4, "shard count for the shard benchmark")
		shardJSON     = flag.String("shard-json", "", "write shard benchmark results as JSON to this file")
		shardSpeedup  = flag.Float64("shard-min-speedup", 0, "fail when the panel's geomean K=1/K=n speedup falls below this factor, scaled by min(1, cpus/shards) with a 0.9 floor (0 disables)")

		routerBench = flag.Bool("router-bench", false, "run the routed-vs-direct serving benchmark instead of the paper artifacts")
		routerJSON  = flag.String("router-json", "", "write router benchmark results as JSON to this file")

		streamBench = flag.Bool("stream-bench", false, "run the streaming append+compaction benchmark with concurrent queries instead of the paper artifacts")
		streamJSON  = flag.String("stream-json", "", "write stream benchmark results as JSON to this file")
		streamTick  = flag.Duration("stream-tick", 200*time.Millisecond, "stream benchmark: wall time per feed tick; also the hard latency bound on concurrent queries")

		kernelBench   = flag.Bool("kernel-bench", false, "run the scan-kernel micro-benchmark (closure vs typed vs pruned) instead of the paper artifacts")
		kernelJSON    = flag.String("kernel-json", "", "write kernel benchmark results as JSON to this file")
		kernelWorkers = flag.Int("kernel-workers", 4, "worker count for the kernel benchmark")
		kernelTyped   = flag.Float64("kernel-min-typed", 0, "fail when the typed cross-count speedup falls below this factor (0 disables)")
		kernelPruned  = flag.Float64("kernel-min-pruned", 0, "fail when the pruned coreport-16 speedup falls below this factor (0 disables)")
		kernelPlanner = flag.Float64("kernel-min-planner", 0, "fail when any planner-driven report kernel falls below this speedup vs the closure scan (0 disables)")

		qlangBench   = flag.Bool("qlang-bench", false, "run the qlang pushdown-vs-closure benchmark instead of the paper artifacts")
		qlangJSON    = flag.String("qlang-json", "", "write qlang benchmark results as JSON to this file")
		qlangWorkers = flag.Int("qlang-workers", 4, "worker count for the qlang benchmark")
		qlangMinSel  = flag.Float64("qlang-min-selective", 0, "fail when the selective-panel pushdown speedup falls below this factor (0 disables)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// The stream bench builds its own world (it needs the raw corpus
	// records as feed ticks, not a converted dataset), so it dispatches
	// before the shared corpus pipeline.
	if *streamBench {
		if err := runStreamBench(*streamJSON, *streamTick); err != nil {
			log.Fatal(err)
		}
		return
	}

	h := &harness{only: selection{table: *table, figure: *figure}, timings: map[string]float64{}}
	var err error
	switch {
	case *dbPath != "":
		start := time.Now()
		h.ds, err = gdeltmine.OpenBinary(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s in %v\n", *dbPath, time.Since(start).Round(time.Millisecond))
	default:
		var cfg gdeltmine.CorpusConfig
		switch *preset {
		case "small":
			cfg = gdeltmine.SmallCorpus()
		case "bench":
			cfg = gdeltmine.BenchCorpus()
		case "standard":
			cfg = gdeltmine.StandardCorpus()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		dir := *keepRaw
		if dir == "" {
			dir, err = os.MkdirTemp("", "gdeltbench-raw-")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
		}
		start := time.Now()
		corpus, err := gdeltmine.GenerateCorpus(cfg)
		if err != nil {
			log.Fatal(err)
		}
		h.timings["generate"] = time.Since(start).Seconds()
		fmt.Printf("generated corpus (%s articles) in %v\n",
			report.Int(int64(len(corpus.Mentions))), time.Since(start).Round(time.Millisecond))
		start = time.Now()
		if _, err := gdeltmine.WriteRawDataset(corpus, dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote raw dataset to %s in %v\n", dir, time.Since(start).Round(time.Millisecond))
		start = time.Now()
		h.ds, err = gdeltmine.ConvertRaw(dir)
		if err != nil {
			log.Fatal(err)
		}
		h.timings["convert"] = time.Since(start).Seconds()
		fmt.Printf("converted in %v\n", time.Since(start).Round(time.Millisecond))
		h.rawDir = dir
	}
	h.ds = h.ds.WithWorkers(*workers)
	fmt.Println()
	if *cacheBench {
		if err := runCacheBench(h.ds, *cacheJSON, *minSpeedup); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *kernelBench {
		if err := runKernelBench(h.ds, *kernelWorkers, *kernelJSON, *kernelTyped, *kernelPruned, *kernelPlanner); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *qlangBench {
		if err := runQlangBench(h.ds, *qlangWorkers, *qlangJSON, *qlangMinSel); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardBench {
		if err := runShardBench(h.ds, *shardK, *shardJSON, *shardSpeedup); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *routerBench {
		if err := runRouterBench(h.ds, *routerJSON); err != nil {
			log.Fatal(err)
		}
		return
	}
	h.run()

	if *stats {
		data, err := obs.Default.Snapshot().MarshalJSONIndent()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- metrics snapshot ---\n%s\n", data)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(h.timings, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *basePth != "" {
		if err := checkRegressions(h.timings, *basePth, *thresh); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timings within %.1fx of baseline %s\n", *thresh, *basePth)
	}
}

// checkRegressions compares the run's timings against a checked-in baseline:
// any step present in both that ran slower than threshold x its baseline
// value fails the gate. Steps only in one of the two maps are ignored, so
// the baseline file stays valid across partial runs (-table N).
func checkRegressions(timings map[string]float64, path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var failures []string
	for name, base := range baseline {
		cur, ok := timings[name]
		if !ok || base <= 0 {
			continue
		}
		if cur > threshold*base {
			failures = append(failures, fmt.Sprintf("%s: %.4fs > %.1fx baseline %.4fs", name, cur, threshold, base))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "regression: %s\n", f)
		}
		return fmt.Errorf("%d step(s) regressed past %.1fx baseline", len(failures), threshold)
	}
	return nil
}

// cacheBenchResult is one kind's cold-vs-warm measurement as written to
// -cache-json. Times are seconds; Speedup is MissSeconds / HitSeconds.
type cacheBenchResult struct {
	Kind        string  `json:"kind"`
	MissSeconds float64 `json:"miss_seconds"`
	HitSeconds  float64 `json:"hit_seconds"`
	Speedup     float64 `json:"speedup"`
	WarmIters   int     `json:"warm_iters"`
}

// runCacheBench measures the result cache on repeated identical queries: for
// each representative kind it executes once cold (a miss that runs the full
// scan) and then many times warm (hits served from the cache), and reports
// the per-request speedup. The outcomes are asserted, not assumed — a warm
// request that misses fails the benchmark, so this doubles as an end-to-end
// check that cache keys are stable across identical requests.
func runCacheBench(ds *gdeltmine.Dataset, jsonPath string, minSpeedup float64) error {
	const warmIters = 200
	ex := &registry.Executor{Cache: qcache.New(0)}
	eng := ds.Engine()

	var results []cacheBenchResult
	for _, name := range []string{"country", "top-publishers"} {
		d, ok := registry.Lookup(name)
		if !ok {
			return fmt.Errorf("cache-bench: unknown kind %q", name)
		}
		p, err := d.ParseParams(func(string) []string { return nil })
		if err != nil {
			return fmt.Errorf("cache-bench: %s: %w", name, err)
		}
		e := eng.WithKind(d.Kind)

		start := time.Now()
		cold, outcome, err := ex.Execute(d, e, p)
		if err != nil {
			return fmt.Errorf("cache-bench: %s cold run: %w", name, err)
		}
		if outcome != qcache.Miss {
			return fmt.Errorf("cache-bench: %s cold run was %v, want miss", name, outcome)
		}
		missSec := time.Since(start).Seconds()

		start = time.Now()
		for i := 0; i < warmIters; i++ {
			warm, outcome, err := ex.Execute(d, e, p)
			if err != nil {
				return fmt.Errorf("cache-bench: %s warm run %d: %w", name, i, err)
			}
			if outcome != qcache.Hit {
				return fmt.Errorf("cache-bench: %s warm run %d was %v, want hit", name, i, outcome)
			}
			if i == 0 {
				coldJSON, _ := json.Marshal(cold)
				warmJSON, _ := json.Marshal(warm)
				if string(coldJSON) != string(warmJSON) {
					return fmt.Errorf("cache-bench: %s warm result diverges from cold result", name)
				}
			}
		}
		hitSec := time.Since(start).Seconds() / warmIters
		if hitSec <= 0 {
			hitSec = 1e-9 // sub-resolution timer; avoid dividing by zero
		}
		r := cacheBenchResult{
			Kind:        name,
			MissSeconds: missSec,
			HitSeconds:  hitSec,
			Speedup:     missSec / hitSec,
			WarmIters:   warmIters,
		}
		results = append(results, r)
		fmt.Printf("cache-bench %-16s miss %8.4fms  hit %8.4fms  speedup %8.1fx\n",
			r.Kind, r.MissSeconds*1e3, r.HitSeconds*1e3, r.Speedup)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if minSpeedup > 0 {
		for _, r := range results {
			if r.Speedup < minSpeedup {
				return fmt.Errorf("cache-bench: %s speedup %.1fx below required %.1fx", r.Kind, r.Speedup, minSpeedup)
			}
		}
		fmt.Printf("all kinds at or above %.1fx warm-cache speedup\n", minSpeedup)
	}
	return nil
}

type selection struct{ table, figure int }

func (s selection) wantTable(n int) bool {
	return (s.table == 0 && s.figure == 0) || s.table == n
}

func (s selection) wantFigure(n int) bool {
	return (s.table == 0 && s.figure == 0) || s.figure == n
}

type harness struct {
	ds      *gdeltmine.Dataset
	rawDir  string
	only    selection
	timings map[string]float64
}

func (h *harness) artifact(name string, body func() string) {
	start := time.Now()
	out := body()
	elapsed := time.Since(start)
	h.timings[name] = elapsed.Seconds()
	fmt.Print(out)
	fmt.Printf("[%s regenerated in %v]\n\n", name, elapsed.Round(time.Microsecond))
}

func (h *harness) run() {
	ds := h.ds
	if h.only.wantTable(1) {
		h.artifact("Table I", func() string { return report.TableI(ds.Stats()) })
	}
	if h.only.wantTable(2) {
		h.artifact("Table II", func() string { return report.TableII(ds.Report()) })
	}
	if h.only.wantTable(3) {
		h.artifact("Table III", func() string { return report.TableIII(ds.TopEvents(10)) })
	}

	var top10 []int32
	needTop10 := h.only.wantTable(4) || h.only.wantTable(8) || h.only.wantFigure(6)
	if needTop10 {
		top10, _ = ds.TopPublishers(10)
	}
	if h.only.wantTable(4) {
		h.artifact("Table IV", func() string { return report.TableIV(ds.FollowReport(top10)) })
	}

	var country *gdeltmine.CountryReport
	needCountry := h.only.wantTable(5) || h.only.wantTable(6) || h.only.wantTable(7) || h.only.wantFigure(8)
	if needCountry {
		var err error
		start := time.Now()
		country, err = ds.CountryReport()
		if err != nil {
			log.Fatal(err)
		}
		h.timings["country-query"] = time.Since(start).Seconds()
		fmt.Printf("[aggregated country query (Section VI-G) ran in %v]\n\n", time.Since(start).Round(time.Microsecond))
	}
	if h.only.wantTable(5) {
		h.artifact("Table V", func() string { return report.TableV(country, 10) })
	}
	if h.only.wantTable(6) {
		h.artifact("Table VI", func() string { return report.TableVI(country, 10) })
	}
	if h.only.wantTable(7) {
		h.artifact("Table VII", func() string { return report.TableVII(country, 10) })
	}
	if h.only.wantTable(8) {
		h.artifact("Table VIII", func() string { return report.TableVIII(ds.PublisherDelays(top10)) })
	}

	if h.only.wantFigure(2) {
		h.artifact("Figure 2", func() string { return report.Figure2(ds.EventSizes(2)) })
	}
	if h.only.wantFigure(3) {
		h.artifact("Figure 3", func() string {
			return report.FigureSeries("Figure 3: sources active per quarter", ds.ActiveSourcesPerQuarter())
		})
	}
	if h.only.wantFigure(4) {
		h.artifact("Figure 4", func() string {
			return report.FigureSeries("Figure 4: events observed per quarter", ds.EventsPerQuarter())
		})
	}
	if h.only.wantFigure(5) {
		h.artifact("Figure 5", func() string {
			return report.FigureSeries("Figure 5: articles observed per quarter", ds.ArticlesPerQuarter())
		})
	}
	if h.only.wantFigure(6) {
		h.artifact("Figure 6", func() string { return report.Figure6(ds.TopPublisherSeries(10)) })
	}
	if h.only.wantFigure(7) {
		h.artifact("Figure 7", func() string {
			ids, _ := ds.TopPublishers(50)
			return report.Figure7(ds.FollowReport(ids))
		})
	}
	if h.only.wantFigure(8) {
		h.artifact("Figure 8", func() string { return report.Figure8(country, 50) })
	}
	if h.only.wantFigure(9) {
		h.artifact("Figure 9", func() string { return report.Figure9(ds.DelayDistribution()) })
	}
	if h.only.wantFigure(10) {
		h.artifact("Figure 10", func() string { return report.Figure10(ds.QuarterlyDelays()) })
	}
	if h.only.wantFigure(11) {
		h.artifact("Figure 11", func() string {
			return report.FigureSeries("Figure 11: articles with publishing delay greater than 24 hours", ds.SlowArticlesPerQuarter())
		})
	}
	if h.only.wantFigure(12) {
		h.scalingSweep()
	}
	if h.only.table == 0 && h.only.figure == 0 {
		h.baselines()
		h.extensions()
	}
}

// extensions prints the artifacts beyond the paper's evaluation: the GKG
// analyses, the Section VI-E follow-ups, and the distributed-memory
// comparison.
func (h *harness) extensions() {
	ds := h.ds
	fmt.Println("--- extensions beyond the paper's evaluation ---")
	fmt.Println()

	if ds.HasGKG() {
		h.artifact("GKG top themes", func() string {
			top, err := ds.TopThemes(10)
			if err != nil {
				return err.Error() + "\n"
			}
			rows := make([][]string, len(top))
			for i, tc := range top {
				rows[i] = []string{fmt.Sprintf("%d", i+1), tc.Theme, report.Int(tc.Articles)}
			}
			return report.Table("GKG: dominant themes", []string{"Rank", "Theme", "Articles"}, rows)
		})
		h.artifact("GKG translated share", func() string {
			labels, share, err := ds.TranslatedShare()
			if err != nil {
				return err.Error() + "\n"
			}
			return report.Series("GKG: machine-translated share of the feed per quarter",
				labels, map[string][]float64{"share": share}, []string{"share"})
		})
	}

	h.artifact("Speed groups (Section VI-E)", func() string {
		sg := ds.SpeedGroups()
		rows := make([][]string, 3)
		names := [3]string{"fast (<2h median)", "average (24h cycle)", "slow (>24h median)"}
		for g := 0; g < 3; g++ {
			rows[g] = []string{names[g], report.Int(sg.Sources[g]),
				report.Int(sg.Articles[g]), report.Int(sg.MedianDelay[g])}
		}
		return report.Table("Speed-group decomposition of the news sphere",
			[]string{"Group", "Sources", "Articles", "Group median (intervals)"}, rows)
	})

	h.artifact("First-report latency", func() string {
		fr := ds.FirstReports()
		return fmt.Sprintf("first article per event: median %d intervals, P90 %d, %.1f%% within one interval (%s events)\n",
			fr.Median, fr.P90, 100*fr.WithinOneInterval, report.Int(fr.Events))
	})

	h.artifact("Repeat coverage", func() string {
		rc := ds.Repeats(3)
		out := fmt.Sprintf("events with same-source repeats: %s of %s (%s repeat articles)\n",
			report.Int(rc.EventsWithRepeats), report.Int(rc.Events), report.Int(rc.RepeatArticles))
		for _, p := range rc.TopRepeaters {
			out += fmt.Sprintf("  top repeater: %s (%s repeat articles)\n", p.Name, report.Int(p.Articles))
			break
		}
		return out
	})

	// Distributed-memory comparison (the §IV design-choice ablation).
	var rows [][]string
	for _, nodes := range []int{2, 4, 8} {
		cl := ds.NewDistCluster(nodes)
		start := time.Now()
		if _, err := cl.CrossCountry(); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		rows = append(rows, []string{fmt.Sprintf("%d", nodes),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f KB", float64(cl.BytesTransferred())/1024)})
		cl.Close()
	}
	fmt.Print(report.Table("Distributed-memory simulation: cross-country query (vs the shared-memory engine above)",
		[]string{"Nodes", "Time", "Gathered message volume"}, rows))
	fmt.Println()
}

// scalingSweep reproduces Figure 12: wall-clock time of the aggregated
// country query at increasing worker counts. The sweep always reaches at
// least 8 workers so the scheduling machinery is exercised even on small
// hosts; worker counts beyond the core count oversubscribe and the curve
// flattens, exactly as the paper's Figure 12 flattens past the point where
// I/O and memory bandwidth saturate.
func (h *harness) scalingSweep() {
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 8 {
		maxW = 8
	}
	var rows [][]string
	var t1 time.Duration
	for w := 1; ; w *= 2 {
		if w > maxW {
			w = maxW
		}
		ds := h.ds.WithWorkers(w)
		start := time.Now()
		if _, err := ds.CountryReport(); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if w == 1 {
			t1 = elapsed
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", w),
			elapsed.Round(time.Microsecond).String(),
			report.F(float64(t1)/float64(elapsed), 2),
		})
		if w == maxW {
			break
		}
	}
	fmt.Print(report.Table("Figure 12: strong scaling of the aggregated country query",
		[]string{"Workers", "Time", "Speedup"}, rows))
	fmt.Println()
}

// baselines reproduces the Section II comparison: the specialized in-memory
// engine against a generic row store and (when the raw files are available)
// a re-parse-everything scan.
func (h *harness) baselines() {
	start := time.Now()
	if _, err := h.ds.CountryReport(); err != nil {
		log.Fatal(err)
	}
	engineTime := time.Since(start)

	rs := h.ds.RowStoreBaseline()
	start = time.Now()
	rs.CrossCountry()
	rowTime := time.Since(start)

	rows := [][]string{
		{"columnar in-memory engine (parallel)", engineTime.Round(time.Microsecond).String(), "1.00"},
		{"generic row store (single-threaded)", rowTime.Round(time.Microsecond).String(),
			report.F(float64(rowTime)/float64(engineTime), 2)},
	}
	if h.rawDir != "" {
		rr, err := gdeltmine.OpenRawRescan(h.rawDir)
		if err == nil {
			start = time.Now()
			if _, err := rr.CrossCountry(); err == nil {
				rescanTime := time.Since(start)
				rows = append(rows, []string{"raw TSV re-scan (single-threaded)",
					rescanTime.Round(time.Microsecond).String(),
					report.F(float64(rescanTime)/float64(engineTime), 2)})
			}
		}
	}
	fmt.Print(report.Table("Baseline comparison: the aggregated country query",
		[]string{"System", "Time", "Slowdown vs engine"}, rows))
	fmt.Println()
}
