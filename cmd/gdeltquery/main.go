// Command gdeltquery runs ad-hoc analysis queries against a converted
// binary GDELT database, loading it fully into memory first (the paper's
// read-only query workflow).
//
// The query surface is registry-driven: every kind registered in
// internal/registry — the same inventory gdeltserve exposes under
// /api/v1/ — is available as a subcommand, with parameters passed as
// repeated -param name=value pairs:
//
//	gdeltquery list
//	gdeltquery -db ./gdelt.gdmb stats
//	gdeltquery -db ./gdelt.gdmb top-publishers -param k=10
//	gdeltquery -db ./gdelt.gdmb wildfires -param window=8 -param min=5
//	gdeltquery -db ./gdelt.gdmb count -param "where=sourcecountry=UK and delay>96"
//	gdeltquery -db ./gdelt.gdmb country -json
//
// `gdeltquery list` prints the full inventory with each kind's parameter
// schema. Every kind also accepts the common engine parameters workers,
// from and to (e.g. -param from=20160101000000).
//
// The pre-registry spellings stay as aliases: -query <kind> selects the
// kind as a flag, legacy names (delay, series, ...) resolve to their
// registered successors, and the -k/-where/-workers flags feed the
// matching parameters. The graph and cluster subcommands (not part of the
// servable registry) keep their original behavior.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gdeltmine"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/report"
)

// paramList collects repeated -param name=value flags.
type paramList struct {
	vals  map[string][]string
	names []string
}

func (p *paramList) String() string { return "" }

func (p *paramList) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = make(map[string][]string)
	}
	if _, seen := p.vals[name]; !seen {
		p.names = append(p.names, name)
	}
	p.vals[name] = append(p.vals[name], value)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltquery: ")
	var (
		dbPath  = flag.String("db", "", "binary database path (required)")
		query   = flag.String("query", "", "query kind (legacy spelling of the positional argument; see `gdeltquery list`)")
		k       = flag.Int("k", 0, "result size for top-k style queries (legacy; same as -param k=N)")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS; same as -param workers=N)")
		where   = flag.String("where", "", "filter expression (legacy; same as -param where=...)")
		stats   = flag.Bool("stats", false, "print the engine-internal metrics snapshot as JSON after the query")
		jsonOut = flag.Bool("json", false, "print the raw query result as JSON (the /api/v1 response body)")
		params  paramList
	)
	flag.Var(&params, "param", "query parameter as name=value; repeatable (see `gdeltquery list`)")
	flag.Parse()

	// Positional form: gdeltquery [flags] <kind> [-param n=v ...]. The
	// global flag set stops at the kind; a sub flag set picks up the rest.
	kind := *query
	if rest := flag.Args(); len(rest) > 0 {
		kind = rest[0]
		sub := flag.NewFlagSet(kind, flag.ExitOnError)
		sub.Var(&params, "param", "query parameter as name=value; repeatable")
		subJSON := sub.Bool("json", false, "print the raw query result as JSON")
		subStats := sub.Bool("stats", false, "print the metrics snapshot after the query")
		if err := sub.Parse(rest[1:]); err != nil {
			log.Fatal(err)
		}
		*jsonOut = *jsonOut || *subJSON
		*stats = *stats || *subStats
	}
	if kind == "" {
		kind = "stats"
	}
	if kind == "list" {
		printKindList()
		return
	}
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	ds, err := gdeltmine.OpenBinary(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s articles in %v\n\n", report.Int(int64(ds.Articles())), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	switch kind {
	case "series":
		// Legacy umbrella: the one -query that fanned out to several
		// registered kinds. Kept as a spelling, not a registry entry.
		runRegistry(ds, "series-active-sources", &params, *k, *workers, *where, *jsonOut)
		runRegistry(ds, "series-events", &params, *k, *workers, *where, *jsonOut)
		runRegistry(ds, "series-articles", &params, *k, *workers, *where, *jsonOut)
	case "graph":
		runGraph(ds.WithWorkers(*workers).WithQueryKind(kind), orDefault(*k, 10))
	case "cluster":
		runCluster(ds.WithWorkers(*workers).WithQueryKind(kind), orDefault(*k, 10))
	default:
		runRegistry(ds, kind, &params, *k, *workers, *where, *jsonOut)
	}
	fmt.Printf("\nquery time: %v (workers=%d)\n", time.Since(start).Round(time.Millisecond), workersOrDefault(*workers))
	if *stats {
		data, err := obs.Default.Snapshot().MarshalJSONIndent()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", data)
	}
}

// runRegistry resolves kind against the registry, executes it, and renders
// the result (human tables by default, raw JSON with -json).
func runRegistry(ds *gdeltmine.Dataset, kind string, params *paramList, k, workers int, where string, jsonOut bool) {
	d, ok := registry.Lookup(kind)
	if !ok {
		log.Fatalf("unknown query %q (run `gdeltquery list` for the inventory)", kind)
	}
	if err := d.CheckKnown(params.names); err != nil {
		log.Fatal(err)
	}
	// The legacy -k/-where/-workers flags backfill parameters that were
	// not given explicitly via -param.
	get := func(name string) []string {
		if vs, ok := params.vals[name]; ok {
			return vs
		}
		switch {
		case name == "k" && k > 0:
			return []string{strconv.Itoa(k)}
		case name == "where" && where != "":
			return []string{where}
		case name == registry.ParamWorkers && workers > 0:
			return []string{strconv.Itoa(workers)}
		}
		return nil
	}
	e := ds.Engine().WithKind(d.Kind)
	e, err := registry.DeriveEngine(e, get)
	if err != nil {
		log.Fatal(err)
	}
	p, err := d.ParseParams(get)
	if err != nil {
		log.Fatal(err)
	}
	var ex *registry.Executor // nil: one-shot CLI queries bypass the cache
	v, _, err := ex.Execute(d, e, p)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	render(ds, d.Kind, v)
}

// render prints a registry result as the human-readable tables and figures
// the CLI always produced; kinds without a bespoke renderer fall back to
// indented JSON.
func render(ds *gdeltmine.Dataset, kind string, v any) {
	switch res := v.(type) {
	case queries.DatasetStats:
		fmt.Print(report.TableI(res))
		fmt.Println()
		fmt.Print(report.TableII(ds.Report()))
	case []queries.TopEvent:
		fmt.Print(report.TableIII(res))
	case []registry.PublisherRow:
		rows := make([][]string, len(res))
		for i, r := range res {
			rows[i] = []string{strconv.Itoa(r.Rank), r.Source, report.Int(r.Articles)}
		}
		fmt.Print(report.Table("Most productive news websites", []string{"Rank", "Source", "Articles"}, rows))
	case registry.CountryResult:
		fmt.Print(report.Matrix("Co-reporting among countries (Jaccard)", res.Publishing, res.Publishing,
			func(i, j int) string {
				if i == j {
					return ""
				}
				return report.F(res.CoReporting[i][j], 3)
			}))
		fmt.Println()
		fmt.Print(report.Matrix("Cross-reporting (articles)", res.Reported, res.Publishing,
			func(i, j int) string { return report.Int(res.Cross[i][j]) }))
		fmt.Println()
		fmt.Print(report.Matrix("Cross-reporting (percent of publishing country)", res.Reported, res.Publishing,
			func(i, j int) string { return report.F(res.Percent[i][j], 1) }))
	case registry.FollowResult:
		fmt.Print(report.Matrix("Follow-reporting fractions", res.Names, res.Names,
			func(i, j int) string { return report.F(res.F[i][j], 3) }))
	case registry.CoReportResult:
		fmt.Print(report.Matrix("Co-reporting (Jaccard) among top publishers", res.Names, res.Names,
			func(i, j int) string {
				if i == j {
					return ""
				}
				return report.F(res.Jaccard[i][j], 3)
			}))
	case []queries.SourceDelayStats:
		fmt.Print(report.TableVIII(res))
	case queries.QuarterlyDelay:
		fmt.Print(report.Figure10(res))
	case queries.QuarterlySeries:
		fmt.Print(report.FigureSeries(seriesTitle(kind), res))
	case registry.CountResult:
		fmt.Printf("articles matching %q: %s\n", res.Where, report.Int(res.Articles))
	case []queries.ThemeCount:
		rows := make([][]string, len(res))
		for i, tc := range res {
			rows[i] = []string{strconv.Itoa(i + 1), tc.Theme, report.Int(tc.Articles)}
		}
		fmt.Print(report.Table("Dominant GKG themes", []string{"Rank", "Theme", "Articles"}, rows))
	case []queries.ThemeTrend:
		for _, tr := range res {
			fmt.Print(report.FigureSeries("Theme "+tr.Theme, queries.QuarterlySeries{Labels: tr.Labels, Values: tr.Values}))
		}
	case []queries.Wildfire:
		rows := make([][]string, len(res))
		for i, w := range res {
			rows[i] = []string{fmt.Sprintf("%d", w.EventID), fmt.Sprintf("%d", w.EarlySources),
				fmt.Sprintf("%d", w.EarlyArticles), fmt.Sprintf("%d", w.TotalArticles), report.F(w.Velocity, 2)}
		}
		fmt.Print(report.Table("Fast-spreading events",
			[]string{"Event", "EarlySources", "EarlyArticles", "Total", "Velocity"}, rows))
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
	}
}

func seriesTitle(kind string) string {
	switch kind {
	case "series-articles":
		return "Articles per quarter"
	case "series-events":
		return "Events per quarter"
	case "series-active-sources":
		return "Active sources per quarter"
	case "series-slow-articles":
		return "Slow articles per quarter"
	case "filtered-series":
		return "Articles per quarter (filtered)"
	}
	return kind
}

// printKindList renders the registry inventory: every kind, its help line,
// and its parameter schema — the CLI face of `/api/v1/`.
func printKindList() {
	fmt.Println("Registered query kinds (run as `gdeltquery -db DB <kind> [-param name=value]...`):")
	fmt.Println()
	for _, d := range registry.All() {
		gkg := ""
		if d.NeedsGKG {
			gkg = "  [needs GKG data]"
		}
		fmt.Printf("  %-24s %s%s\n", d.Kind, d.Help, gkg)
		for _, ps := range d.Params {
			req := fmt.Sprintf("default %s", strconv.Quote(ps.Default))
			if ps.Required {
				req = "required"
			}
			fmt.Printf("      -param %s=<%s>  %s (%s)\n", ps.Name, ps.Type, ps.Help, req)
		}
	}
	fmt.Println()
	fmt.Println("Common parameters accepted by every kind:")
	fmt.Println("      -param workers=<int>  pin the engine's parallel worker count")
	fmt.Println("      -param from=<YYYYMMDDHHMMSS>  restrict to captures at or after this time")
	fmt.Println("      -param to=<YYYYMMDDHHMMSS>    restrict to captures before this time")
	fmt.Println()
	fmt.Println("Extra subcommands: list, graph, cluster, series (legacy umbrella for the series-* kinds)")
}

func runGraph(ds *gdeltmine.Dataset, k int) {
	ids, _ := ds.TopPublishers(k)
	g, err := ds.SourceGraph(ids, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	pr := g.PageRank(gdeltmine.PageRankOptions{})
	comps := g.Components()
	fmt.Printf("co-reporting graph over top %d publishers: %d edges, %d components (largest %d)\n",
		g.N, g.Edges(), len(comps), len(comps[0]))
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pr[order[a]] > pr[order[b]] })
	fmt.Println("most central sources (PageRank):")
	for i := 0; i < 10 && i < len(order); i++ {
		v := order[i]
		fmt.Printf("  %2d. %-34s %.4f (degree %d)\n", i+1, ds.SourceName(ids[v]), pr[v], g.Degree(v))
	}
}

func runCluster(ds *gdeltmine.Dataset, k int) {
	ids, _ := ds.TopPublishers(k)
	res, err := ds.ClusterSources(ids, gdeltmine.MCLOptions{Inflation: 1.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCL over the co-reporting matrix of the top %d publishers (%d iterations, converged=%v):\n",
		len(ids), res.Iterations, res.Converged)
	for c, cl := range res.Clusters {
		names := make([]string, len(cl))
		for i, pos := range cl {
			names[i] = ds.SourceName(ids[pos])
		}
		fmt.Printf("  cluster %d (%d members): %s\n", c+1, len(cl), strings.Join(names, ", "))
	}
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func workersOrDefault(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
