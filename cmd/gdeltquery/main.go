// Command gdeltquery runs ad-hoc analysis queries against a converted
// binary GDELT database, loading it fully into memory first (the paper's
// read-only query workflow).
//
// Usage:
//
//	gdeltquery -db ./gdelt.gdmb -query stats
//	gdeltquery -db ./gdelt.gdmb -query top-events -k 10
//	gdeltquery -db ./gdelt.gdmb -query top-publishers -k 10
//	gdeltquery -db ./gdelt.gdmb -query follow -k 10
//	gdeltquery -db ./gdelt.gdmb -query coreport -k 10
//	gdeltquery -db ./gdelt.gdmb -query country
//	gdeltquery -db ./gdelt.gdmb -query delay -k 10
//	gdeltquery -db ./gdelt.gdmb -query series
//	gdeltquery -db ./gdelt.gdmb -query cluster -k 30
//
// The -workers flag pins the engine's parallelism.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"gdeltmine"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdeltquery: ")
	var (
		dbPath  = flag.String("db", "", "binary database path (required)")
		query   = flag.String("query", "stats", "query: stats, top-events, top-publishers, follow, coreport, country, delay, series, cluster, themes, wildfires, graph")
		k       = flag.Int("k", 10, "result size for top-k style queries")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		where   = flag.String("where", "", "filter expression for count/filtered-publishers/filtered-series, e.g. \"sourcecountry=UK and delay>96\"")
		stats   = flag.Bool("stats", false, "print the engine-internal metrics snapshot as JSON after the query")
	)
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	ds, err := gdeltmine.OpenBinary(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s articles in %v\n\n", report.Int(int64(ds.Articles())), time.Since(start).Round(time.Millisecond))
	ds = ds.WithWorkers(*workers).WithQueryKind(*query)

	start = time.Now()
	switch *query {
	case "stats":
		fmt.Print(report.TableI(ds.Stats()))
		fmt.Println()
		fmt.Print(report.TableII(ds.Report()))
	case "top-events":
		fmt.Print(report.TableIII(ds.TopEvents(*k)))
	case "top-publishers":
		ids, counts := ds.TopPublishers(*k)
		rows := make([][]string, len(ids))
		for i := range ids {
			rows[i] = []string{fmt.Sprintf("%d", i+1), ds.SourceName(ids[i]), report.Int(counts[i])}
		}
		fmt.Print(report.Table("Most productive news websites", []string{"Rank", "Source", "Articles"}, rows))
	case "follow":
		ids, _ := ds.TopPublishers(*k)
		fmt.Print(report.TableIV(ds.FollowReport(ids)))
	case "coreport":
		ids, _ := ds.TopPublishers(*k)
		co, err := ds.CoReport(ids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.Matrix("Co-reporting (Jaccard) among top publishers", co.Names, co.Names,
			func(i, j int) string {
				if i == j {
					return ""
				}
				return report.F(co.Jaccard.At(i, j), 3)
			}))
	case "country":
		cr, err := ds.CountryReport()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.TableV(cr, 10))
		fmt.Println()
		fmt.Print(report.TableVI(cr, 10))
		fmt.Println()
		fmt.Print(report.TableVII(cr, 10))
	case "delay":
		ids, _ := ds.TopPublishers(*k)
		fmt.Print(report.TableVIII(ds.PublisherDelays(ids)))
	case "series":
		fmt.Print(report.FigureSeries("Active sources per quarter", ds.ActiveSourcesPerQuarter()))
		fmt.Print(report.FigureSeries("Events per quarter", ds.EventsPerQuarter()))
		fmt.Print(report.FigureSeries("Articles per quarter", ds.ArticlesPerQuarter()))
	case "count":
		n, err := ds.CountWhere(*where)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("articles matching %q: %s\n", *where, report.Int(n))
	case "filtered-publishers":
		ids, counts, err := ds.TopPublishersWhere(*where, *k)
		if err != nil {
			log.Fatal(err)
		}
		rows := make([][]string, len(ids))
		for i := range ids {
			rows[i] = []string{fmt.Sprintf("%d", i+1), ds.SourceName(ids[i]), report.Int(counts[i])}
		}
		fmt.Print(report.Table(fmt.Sprintf("Most productive sources where %q", *where),
			[]string{"Rank", "Source", "Articles"}, rows))
	case "filtered-series":
		s, err := ds.ArticlesPerQuarterWhere(*where)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.FigureSeries(fmt.Sprintf("Articles per quarter where %q", *where), s))
	case "themes":
		top, err := ds.TopThemes(*k)
		if err != nil {
			log.Fatal(err)
		}
		rows := make([][]string, len(top))
		for i, tc := range top {
			rows[i] = []string{fmt.Sprintf("%d", i+1), tc.Theme, report.Int(tc.Articles)}
		}
		fmt.Print(report.Table("Dominant GKG themes", []string{"Rank", "Theme", "Articles"}, rows))
	case "wildfires":
		fires := ds.FastSpreadingEvents(8, 5, *k)
		rows := make([][]string, len(fires))
		for i, w := range fires {
			rows[i] = []string{fmt.Sprintf("%d", w.EventID), fmt.Sprintf("%d", w.EarlySources),
				fmt.Sprintf("%d", w.EarlyArticles), fmt.Sprintf("%d", w.TotalArticles),
				report.F(w.Velocity, 2)}
		}
		fmt.Print(report.Table("Fast-spreading events (window 2h, >=5 sources)",
			[]string{"Event", "EarlySources", "EarlyArticles", "Total", "Velocity"}, rows))
	case "graph":
		ids, _ := ds.TopPublishers(*k)
		g, err := ds.SourceGraph(ids, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		pr := g.PageRank(gdeltmine.PageRankOptions{})
		comps := g.Components()
		fmt.Printf("co-reporting graph over top %d publishers: %d edges, %d components (largest %d)\n",
			g.N, g.Edges(), len(comps), len(comps[0]))
		order := make([]int, g.N)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return pr[order[a]] > pr[order[b]] })
		fmt.Println("most central sources (PageRank):")
		for i := 0; i < 10 && i < len(order); i++ {
			v := order[i]
			fmt.Printf("  %2d. %-34s %.4f (degree %d)\n", i+1, ds.SourceName(ids[v]), pr[v], g.Degree(v))
		}
	case "cluster":
		ids, _ := ds.TopPublishers(*k)
		res, err := ds.ClusterSources(ids, gdeltmine.MCLOptions{Inflation: 1.6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MCL over the co-reporting matrix of the top %d publishers (%d iterations, converged=%v):\n",
			len(ids), res.Iterations, res.Converged)
		for c, cl := range res.Clusters {
			names := make([]string, len(cl))
			for i, pos := range cl {
				names[i] = ds.SourceName(ids[pos])
			}
			fmt.Printf("  cluster %d (%d members): %s\n", c+1, len(cl), strings.Join(names, ", "))
		}
	default:
		log.Fatalf("unknown query %q", *query)
	}
	fmt.Printf("\nquery time: %v (workers=%d)\n", time.Since(start).Round(time.Millisecond), workersOrDefault(*workers))
	if *stats {
		data, err := obs.Default.Snapshot().MarshalJSONIndent()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", data)
	}
}

func workersOrDefault(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
