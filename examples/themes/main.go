// Themes: mining the Global Knowledge Graph.
//
// GDELT 2.0 annotates every article with themes, people, organizations and
// tone (Section III). This example exercises the GKG side of the system:
// it surfaces the dominant themes, tracks their quarterly trends, shows the
// theme co-occurrence structure, names the people attached to the top
// theme, and measures the footprint of the machine-translated
// (non-English) feed.
//
// Run with:
//
//	go run ./examples/themes
package main

import (
	"fmt"
	"log"
)

import "gdeltmine"

func main() {
	log.SetFlags(0)
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}
	if !ds.HasGKG() {
		log.Fatal("corpus has no GKG annotations")
	}

	top, err := ds.TopThemes(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dominant themes:")
	for i, tc := range top {
		fmt.Printf("  %2d. %-22s %7d articles\n", i+1, tc.Theme, tc.Articles)
	}

	trends, err := ds.ThemeTrends([]string{top[0].Theme, "TERROR"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquarterly trend of %s vs TERROR (first/last 4 quarters):\n", top[0].Theme)
	n := len(trends[0].Values)
	for _, tr := range trends {
		fmt.Printf("  %-22s %v ... %v\n", tr.Theme, tr.Values[:4], tr.Values[n-4:])
	}

	co, err := ds.ThemeCooccurrences(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntheme co-occurrence (Jaccard) among the top six:")
	for i, a := range co.Themes {
		for j, b := range co.Themes {
			if j <= i {
				continue
			}
			if v := co.Jaccard.At(i, j); v > 0.02 {
				fmt.Printf("  %-22s <-> %-22s %.3f\n", a, b, v)
			}
		}
	}

	people, err := ds.PersonsForTheme(top[0].Theme, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeople most attached to %s:\n", top[0].Theme)
	for _, p := range people {
		fmt.Printf("  %-24s %6d articles\n", p.Name, p.Articles)
	}

	labels, share, err := ds.TranslatedShare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmachine-translated share of the feed (Section III's 65-language pipeline):")
	fmt.Printf("  %s: %.1f%%   %s: %.1f%%\n",
		labels[1], 100*share[1], labels[len(labels)-1], 100*share[len(share)-1])
}
