// Mediagroups: discovering co-owned news outlets.
//
// The paper observes that 8 of its 10 most productive websites are regional
// British newspapers owned by the same media group, and suggests Markov
// clustering over the symmetric co-reporting matrix to find such clusters
// (Section VI-B). This example reproduces that workflow: rank publishers,
// build their co-reporting Jaccard matrix, cluster it with MCL, and report
// the discovered groups.
//
// Run with:
//
//	go run ./examples/mediagroups
package main

import (
	"fmt"
	"log"
	"strings"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}

	const k = 30
	ids, counts := ds.TopPublishers(k)
	fmt.Printf("top %d publishers by article count:\n", k)
	for i := 0; i < 10; i++ {
		fmt.Printf("  %2d. %-34s %7d articles\n", i+1, ds.SourceName(ids[i]), counts[i])
	}
	fmt.Println("  ...")

	co, err := ds.CoReport(ids)
	if err != nil {
		log.Fatal(err)
	}
	// The strongest co-reporting pair.
	bi, bj, best := 0, 1, 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if v := co.Jaccard.At(i, j); v > best {
				bi, bj, best = i, j, v
			}
		}
	}
	fmt.Printf("\nstrongest co-reporting pair: %s <-> %s (Jaccard %.3f)\n",
		co.Names[bi], co.Names[bj], best)

	res, err := ds.ClusterSources(ids, gdeltmine.MCLOptions{Inflation: 1.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMarkov clustering (%d iterations, converged=%v) found %d clusters:\n",
		res.Iterations, res.Converged, len(res.Clusters))
	for c, cl := range res.Clusters {
		names := make([]string, len(cl))
		for i, pos := range cl {
			names[i] = ds.SourceName(ids[pos])
		}
		kind := "independents"
		if len(cl) >= 4 {
			kind = "likely co-owned group"
		}
		fmt.Printf("  cluster %d (%d members, %s):\n    %s\n", c+1, len(cl), kind, strings.Join(names, ", "))
	}

	// Ground truth check (possible only because this corpus is synthetic):
	// how much of the injected media group landed in one cluster?
	groupNames := map[string]bool{}
	for i := 0; i < corpus.World.Cfg.MediaGroupSize; i++ {
		groupNames[corpus.World.Sources[i].Name] = true
	}
	bestOverlap := 0
	for _, cl := range res.Clusters {
		n := 0
		for _, pos := range cl {
			if groupNames[ds.SourceName(ids[pos])] {
				n++
			}
		}
		if n > bestOverlap {
			bestOverlap = n
		}
	}
	fmt.Printf("\nground truth: %d of the %d injected co-owned outlets share one cluster\n",
		bestOverlap, corpus.World.Cfg.MediaGroupSize)
}
