// Delayprofile: is the news getting faster?
//
// The paper's "primary question about today's online news world" (Section
// VI-E/F): how quickly do articles follow the events they report, and is
// that speed increasing? This example reproduces the delay investigation
// through the public API — per-source delay profiles, the quarterly trend,
// the >24h article decline — and then uses the time-window and filter-
// expression features to drill into a single year and a single country's
// press.
//
// Run with:
//
//	go run ./examples/delayprofile
package main

import (
	"fmt"
	"log"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 10 trend.
	qd := ds.QuarterlyDelays()
	year := func(q0 int) (avg float64, med float64) {
		for q := q0; q < q0+4; q++ {
			avg += qd.Average[q] / 4
			med += float64(qd.Median[q]) / 4
		}
		return
	}
	a16, m16 := year(4)
	a19, m19 := year(16)
	fmt.Printf("quarterly delay trend: 2016 avg %.0f -> 2019 avg %.0f intervals (%.0f%% decline)\n",
		a16, a19, 100*(1-a19/a16))
	fmt.Printf("medians stay flat: 2016 %.1f -> 2019 %.1f intervals\n", m16, m19)

	// The Figure 11 explanation: slow articles are disappearing.
	slow := ds.SlowArticlesPerQuarter()
	arts := ds.ArticlesPerQuarter()
	f := func(q int) float64 { return float64(slow.Values[q]) / float64(arts.Values[q]) }
	fmt.Printf(">24h article share: 2016Q1 %.1f%% -> 2019Q4 %.1f%%\n", 100*f(4), 100*f(19))

	// Drill-down 1: a single year through the time-window API.
	y2017 := ds.Window(20170101000000, 20180101000000)
	fmt.Printf("\n2017 window: %d articles visible to windowed scans\n", y2017.WindowArticles())
	ids, counts := y2017.TopPublishers(3)
	fmt.Println("most productive publishers in 2017 alone:")
	for i, id := range ids {
		fmt.Printf("  %d. %-34s %6d articles\n", i+1, ds.SourceName(id), counts[i])
	}

	// Drill-down 2: filter expressions over delay and geography.
	for _, expr := range []string{
		"delay<=8",
		"delay>96",
		"sourcecountry=UK and delay>96",
		"eventcountry=US and delay<=4 and quarter>=2019Q1",
	} {
		n, err := ds.CountWhere(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("articles where %-48q %8d\n", expr, n)
	}

	// Per-source extremes from the full Figure 9 sweep.
	dd := ds.DelayDistribution()
	var fastest, slowest *gdeltmine.SourceDelayStats
	for i := range dd.PerSource {
		st := &dd.PerSource[i]
		if st.Articles < 20 {
			continue
		}
		if fastest == nil || st.Median < fastest.Median {
			fastest = st
		}
		if slowest == nil || st.Median > slowest.Median {
			slowest = st
		}
	}
	if fastest != nil && slowest != nil {
		fmt.Printf("\nfastest outlet: %s (median %d intervals over %d articles)\n",
			fastest.Name, fastest.Median, fastest.Articles)
		fmt.Printf("slowest outlet: %s (median %d intervals over %d articles)\n",
			slowest.Name, slowest.Median, slowest.Articles)
	}
}
