// Wildfire: hunting fast-spreading news events.
//
// Digital wildfires — fast-spreading (mis)information with real-world
// impact — are the paper's motivating phenomenon. This example finds the
// events that ignited fastest (most distinct sources within two hours),
// then profiles the publishers that carried them: the near-real-time "fast
// core" of the news sphere that Section VI-E identifies as the pool to
// watch when tracking wildfires.
//
// Run with:
//
//	go run ./examples/wildfire
package main

import (
	"fmt"
	"log"
	"sort"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}

	// Events covered by at least 5 distinct sources within 8 capture
	// intervals (two hours) of happening.
	const window, minSources = 8, 5
	fires := ds.FastSpreadingEvents(window, minSources, 10)
	fmt.Printf("top %d fast-spreading events (>=%d distinct sources within %d intervals):\n",
		len(fires), minSources, window)
	for i, w := range fires {
		fmt.Printf("  %2d. event %-8d %3d early sources, %3d early articles, %4d total, velocity %.2f src/interval\n",
			i+1, w.EventID, w.EarlySources, w.EarlyArticles, w.TotalArticles, w.Velocity)
	}

	// Profile the fast core: sources whose median delay is under two hours.
	dd := ds.DelayDistribution()
	type fastSource struct {
		name     string
		median   int64
		articles int64
	}
	var fast []fastSource
	for _, st := range dd.PerSource {
		if st.Median <= window && st.Articles >= 20 {
			fast = append(fast, fastSource{st.Name, st.Median, st.Articles})
		}
	}
	sort.Slice(fast, func(a, b int) bool { return fast[a].articles > fast[b].articles })
	fmt.Printf("\nfast-core sources (median delay <= 2h, >= 20 articles): %d\n", len(fast))
	for i, f := range fast {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(fast)-10)
			break
		}
		fmt.Printf("  %-34s median %2d intervals, %6d articles\n", f.name, f.median, f.articles)
	}

	// First-report latency: how fast was the world's quickest source on
	// each event? (The Section VI-E follow-up most relevant to wildfires.)
	fr := ds.FirstReports()
	fmt.Printf("\nfirst-report latency over %d events: median %d intervals, P90 %d, %.1f%% within 15 minutes\n",
		fr.Events, fr.Median, fr.P90, 100*fr.WithinOneInterval)

	// The speed-group decomposition of Section VI-E.
	sg := ds.SpeedGroups()
	fmt.Println("\nspeed groups (by per-source median delay):")
	for g := 0; g < 3; g++ {
		fmt.Printf("  %-8s %4d sources, %6d articles, group median %d intervals\n",
			[3]string{"fast", "average", "slow"}[g], sg.Sources[g], sg.Articles[g], sg.MedianDelay[g])
	}

	// Repeat coverage: amplification or thoroughness (Section VI-E).
	rc := ds.Repeats(3)
	fmt.Printf("\nrepeat coverage: %d of %d events had same-source repeat articles (%d repeats total)\n",
		rc.EventsWithRepeats, rc.Events, rc.RepeatArticles)
	for _, p := range rc.TopRepeaters {
		fmt.Printf("  heaviest repeater: %-34s %d repeat articles\n", p.Name, p.Articles)
		break
	}

	if len(fires) > 0 && len(fast) > 0 {
		fmt.Println("\nwildfires are carried disproportionately by the fast core —")
		fmt.Println("these are the sources to monitor for near-real-time misinformation tracking.")
	}
}
