// Quickstart: the full gdeltmine pipeline in one program.
//
// It generates a small synthetic GDELT dataset in the real raw format,
// converts it to the indexed binary database, loads that database fully
// into memory, and runs a first round of analyses — the workflow a study
// over the real archive follows, minus the download.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	workDir, err := os.MkdirTemp("", "gdeltmine-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	// 1. Generate a synthetic five-year archive in raw GDELT 2.0 format.
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	rawDir := filepath.Join(workDir, "raw")
	if _, err := gdeltmine.WriteRawDataset(corpus, rawDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw dataset: %d events, %d articles under %s\n",
		len(corpus.Events), len(corpus.Mentions), rawDir)

	// 2. Convert once: parse, clean, validate, index.
	start := time.Now()
	ds, err := gdeltmine.ConvertRaw(rawDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted in %v; defects found: %d\n", time.Since(start).Round(time.Millisecond), ds.Report().Total())

	binPath := filepath.Join(workDir, "gdelt.gdmb")
	if err := ds.SaveBinary(binPath); err != nil {
		log.Fatal(err)
	}

	// 3. Every later session loads the binary database in one shot.
	start = time.Now()
	ds, err = gdeltmine.OpenBinary(binPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded binary database in %v\n\n", time.Since(start).Round(time.Millisecond))

	// 4. Analyze.
	st := ds.Stats()
	fmt.Printf("dataset: %d sources, %d events, %d articles, %.2f articles/event\n",
		st.Sources, st.Events, st.Articles, st.WeightedAvg)

	ids, counts := ds.TopPublishers(5)
	fmt.Println("\nmost productive news websites:")
	for i, id := range ids {
		fmt.Printf("  %d. %-32s %8d articles\n", i+1, ds.SourceName(id), counts[i])
	}

	top := ds.TopEvents(3)
	fmt.Println("\nmost reported events:")
	for _, ev := range top {
		fmt.Printf("  %5d mentions  %s\n", ev.Mentions, ev.SourceURL)
	}

	// Compare full years (the first year is truncation-biased: long delays
	// cannot be observed until the archive is old enough to contain them).
	qd := ds.QuarterlyDelays()
	year := func(first int) (avg float64, med int64) {
		for q := first; q < first+4; q++ {
			avg += qd.Average[q] / 4
			med += qd.Median[q] / 4
		}
		return avg, med
	}
	a16, m16 := year(4)  // 2016
	a19, m19 := year(16) // 2019
	fmt.Printf("\npublishing delay, 2016 vs 2019: average %.0f -> %.0f intervals, median %d -> %d\n",
		a16, a19, m16, m19)
}
