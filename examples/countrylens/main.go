// Countrylens: how the world's press looks at the world.
//
// This example reproduces the paper's country-level analyses (Sections VI-C
// and VI-D) through the public API: it runs the single aggregated country
// query and then asks three questions — which national news spheres overlap
// (Table V), whose events dominate global attention (Tables VI/VII), and
// how the engine's wall-clock time responds to the worker count (the
// Figure 12 strong-scaling experiment).
//
// Run with:
//
//	go run ./examples/countrylens
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"gdeltmine"
)

func main() {
	log.SetFlags(0)
	corpus, err := gdeltmine.GenerateCorpus(gdeltmine.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gdeltmine.BuildDataset(corpus)
	if err != nil {
		log.Fatal(err)
	}

	cr, err := ds.CountryReport()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strongest national news-sphere overlaps (co-reporting Jaccard):")
	type pair struct {
		a, b int
		v    float64
	}
	var bestPairs []pair
	top := cr.TopPublishing[:10]
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			bestPairs = append(bestPairs, pair{top[i], top[j], cr.CoReporting.At(top[i], top[j])})
		}
	}
	for k := 0; k < 5; k++ {
		bi := k
		for m := k + 1; m < len(bestPairs); m++ {
			if bestPairs[m].v > bestPairs[bi].v {
				bi = m
			}
		}
		bestPairs[k], bestPairs[bi] = bestPairs[bi], bestPairs[k]
		p := bestPairs[k]
		fmt.Printf("  %-14s <-> %-14s %.3f\n",
			gdeltmine.Countries[p.a].Name, gdeltmine.Countries[p.b].Name, p.v)
	}

	fmt.Println("\nshare of each press's attention going to the United States:")
	us := gdeltmine.CountryIndex("US")
	for _, pub := range top {
		fmt.Printf("  %-14s %5.1f%%\n", gdeltmine.Countries[pub].Name, cr.Fractions.At(us, pub))
	}

	fmt.Println("\nmost reported countries (by events):")
	for i, c := range cr.TopReported[:5] {
		fmt.Printf("  %d. %-14s %d events\n", i+1, gdeltmine.Countries[c].Name, cr.EventCounts[c])
	}

	// The Figure 12 experiment: the same aggregated query at 1..P workers.
	fmt.Printf("\nstrong scaling of the aggregated query (GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	var t1 time.Duration
	for w := 1; w <= 8; w *= 2 {
		start := time.Now()
		if _, err := ds.WithWorkers(w).CountryReport(); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if w == 1 {
			t1 = elapsed
		}
		fmt.Printf("  workers=%d  %10v  speedup %.2fx\n", w, elapsed.Round(time.Microsecond), float64(t1)/float64(elapsed))
	}
}
