package gdeltmine

import (
	"path/filepath"
	"testing"
)

// TestEndToEndPipeline drives the full public workflow: generate a raw
// dataset, convert it, persist the binary format, reload it, and run every
// experiment query through the facade.
func TestEndToEndPipeline(t *testing.T) {
	cfg := SmallCorpus()
	corpus, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wr, err := WriteRawDataset(corpus, dir)
	if err != nil {
		t.Fatal(err)
	}
	if wr.FilesWritten == 0 {
		t.Fatal("no files written")
	}

	ds, err := ConvertRaw(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Articles() == 0 || ds.Events() == 0 || ds.Sources() == 0 {
		t.Fatal("empty dataset")
	}

	binPath := filepath.Join(dir, "gdelt.gdmb")
	if err := ds.SaveBinary(binPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Articles() != ds.Articles() || loaded.Events() != ds.Events() {
		t.Fatal("binary round trip lost rows")
	}

	// Run every experiment once on the loaded dataset.
	st := loaded.Stats()
	if st.MinArticles < 1 && st.ZeroMentionEvents == 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := loaded.TopEvents(10); len(got) != 10 {
		t.Fatalf("top events %d", len(got))
	}
	if d := loaded.EventSizes(1); d.FitErr != nil {
		t.Fatal(d.FitErr)
	}
	ids, counts := loaded.TopPublishers(10)
	if len(ids) != 10 || counts[0] == 0 {
		t.Fatal("top publishers")
	}
	if s := loaded.ActiveSourcesPerQuarter(); len(s.Values) != loaded.Quarters() {
		t.Fatal("figure 3")
	}
	if s := loaded.EventsPerQuarter(); len(s.Values) != loaded.Quarters() {
		t.Fatal("figure 4")
	}
	if s := loaded.ArticlesPerQuarter(); len(s.Values) != loaded.Quarters() {
		t.Fatal("figure 5")
	}
	if ps := loaded.TopPublisherSeries(10); len(ps.Values) != 10 {
		t.Fatal("figure 6")
	}
	co, err := loaded.CoReport(ids)
	if err != nil || !co.Jaccard.IsSymmetric(1e-12) {
		t.Fatalf("co-report: %v", err)
	}
	if fr := loaded.FollowReport(ids); len(fr.ColSums) != 10 {
		t.Fatal("follow report")
	}
	cr, err := loaded.CountryReport()
	if err != nil || cr.Cross.Sum() == 0 {
		t.Fatalf("country report: %v", err)
	}
	if rows := loaded.PublisherDelays(ids); len(rows) != 10 {
		t.Fatal("table VIII")
	}
	if dd := loaded.DelayDistribution(); len(dd.PerSource) == 0 {
		t.Fatal("figure 9")
	}
	if qd := loaded.QuarterlyDelays(); len(qd.Average) != loaded.Quarters() {
		t.Fatal("figure 10")
	}
	if s := loaded.SlowArticlesPerQuarter(); len(s.Values) != loaded.Quarters() {
		t.Fatal("figure 11")
	}

	// Table II defects surfaced through the report.
	if loaded.Report().Total() == 0 {
		t.Fatal("no defects recorded")
	}

	// Worker pinning is observable and does not change results.
	one, err := loaded.WithWorkers(1).CountryReport()
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Cross.Data {
		if one.Cross.Data[i] != cr.Cross.Data[i] {
			t.Fatal("worker count changed results")
		}
	}
}

func TestClusterSourcesFindsMediaGroup(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := ds.TopPublishers(30)
	res, err := ds.ClusterSources(ids, MCLOptions{Inflation: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	// The co-owned media group members should mostly land in one cluster.
	groupNames := map[string]bool{}
	for i := 0; i < corpus.World.Cfg.MediaGroupSize; i++ {
		groupNames[corpus.World.Sources[i].Name] = true
	}
	best := 0
	for _, cl := range res.Clusters {
		n := 0
		for _, pos := range cl {
			if groupNames[ds.SourceName(ids[pos])] {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	if best < corpus.World.Cfg.MediaGroupSize/2 {
		t.Fatalf("largest group overlap %d of %d", best, corpus.World.Cfg.MediaGroupSize)
	}
}

func TestSourceGraphAnalysis(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := ds.TopPublishers(30)
	g, err := ds.SourceGraph(ids, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 30 || g.Edges() == 0 {
		t.Fatalf("graph n=%d edges=%d", g.N, g.Edges())
	}
	comps := g.Components()
	if len(comps) == 0 || len(comps[0]) < 8 {
		t.Fatalf("no big component: %v", comps)
	}
	pr := g.PageRank(PageRankOptions{})
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("pagerank sum %v", sum)
	}
	// The most central source should be a co-owned group member (they
	// co-report with everything).
	best := 0
	for i := range pr {
		if pr[i] > pr[best] {
			best = i
		}
	}
	groupNames := map[string]bool{}
	for i := 0; i < corpus.World.Cfg.MediaGroupSize; i++ {
		groupNames[corpus.World.Sources[i].Name] = true
	}
	if !groupNames[ds.SourceName(ids[best])] {
		t.Logf("most central source %s is not a group member (acceptable but unusual)", ds.SourceName(ids[best]))
	}
}

func TestGKGFacade(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.HasGKG() {
		t.Fatal("small corpus should carry GKG")
	}
	top, err := ds.TopThemes(5)
	if err != nil || len(top) != 5 {
		t.Fatalf("top themes: %v %v", top, err)
	}
	trends, err := ds.ThemeTrends([]string{top[0].Theme})
	if err != nil || len(trends) != 1 {
		t.Fatalf("trends: %v", err)
	}
	co, err := ds.ThemeCooccurrences(4)
	if err != nil || len(co.Themes) != 4 {
		t.Fatalf("cooccurrence: %v", err)
	}
	if _, err := ds.PersonsForTheme(top[0].Theme, 3); err != nil {
		t.Fatal(err)
	}
	labels, share, err := ds.TranslatedShare()
	if err != nil || len(labels) != len(share) {
		t.Fatalf("translated share: %v", err)
	}
	tone := ds.ToneByCountry([]string{"UK", "US"})
	if len(tone) != 2 {
		t.Fatal("tone series")
	}
}

func TestBaselinesAgreeWithEngine(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := ds.CountryReport()
	if err != nil {
		t.Fatal(err)
	}
	rs := ds.RowStoreBaseline()
	got := rs.CrossCountry()
	for i := range got.Data {
		if got.Data[i] != cr.Cross.Data[i] {
			t.Fatal("row-store baseline disagrees")
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := OpenBinary(filepath.Join(t.TempDir(), "missing.gdmb")); err == nil {
		t.Fatal("opening a missing binary should fail")
	}
	if _, err := ConvertRaw(t.TempDir()); err == nil {
		t.Fatal("converting an empty directory should fail")
	}
	bad := SmallCorpus()
	bad.Sources = 1
	if _, err := GenerateCorpus(bad); err == nil {
		t.Fatal("invalid config should fail")
	}
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveBinary(filepath.Join(t.TempDir(), "no", "such", "dir", "x.gdmb")); err == nil {
		t.Fatal("saving into a missing directory should fail")
	}
	// Empty and inverted windows behave sanely.
	if w := ds.Window(20300101000000, 20310101000000); w.WindowArticles() != 0 {
		t.Fatal("post-archive window should be empty")
	}
	if w := ds.Window(20150218000000, 20150218000000); w.WindowArticles() != 0 {
		t.Fatal("zero-width window should be empty")
	}
}

func TestWhereQueries(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ds.CountWhere("")
	if err != nil || all != int64(ds.Articles()) {
		t.Fatalf("count all: %d %v", all, err)
	}
	slowUK, err := ds.CountWhere("sourcecountry=UK and delay>96")
	if err != nil {
		t.Fatal(err)
	}
	if slowUK == 0 || slowUK >= all {
		t.Fatalf("filtered count %d of %d", slowUK, all)
	}
	if _, err := ds.CountWhere("bogus=1"); err == nil {
		t.Fatal("bad expression accepted")
	}
	series, err := ds.ArticlesPerQuarterWhere("delay>96")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range series.Values {
		sum += v
	}
	slow, _ := ds.CountWhere("delay>96")
	if sum != slow {
		t.Fatalf("series sums to %d want %d", sum, slow)
	}
	ids, counts, err := ds.TopPublishersWhere("sourcecountry=UK", 5)
	if err != nil || len(ids) == 0 {
		t.Fatalf("filtered publishers: %v", err)
	}
	for i, id := range ids {
		if CountryFromDomain(ds.SourceName(id)) != CountryIndex("UK") {
			t.Fatalf("publisher %d not UK", i)
		}
		if i > 0 && counts[i] > counts[i-1] {
			t.Fatal("not descending")
		}
	}
}

func TestFollowupQueries(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	fr := ds.FirstReports()
	if fr.Events == 0 || fr.Median < 1 {
		t.Fatalf("first reports %+v", fr)
	}
	rc := ds.Repeats(5)
	if rc.RepeatArticles == 0 {
		t.Fatal("no repeats")
	}
	sg := ds.SpeedGroups()
	if sg.Sources[1] == 0 {
		t.Fatal("no average-speed sources")
	}
}

func TestSourceNameLookupRoundTrip(t *testing.T) {
	corpus, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := ds.TopPublishers(3)
	for _, id := range ids {
		name := ds.SourceName(id)
		if ds.SourceID(name) != id {
			t.Fatalf("lookup round trip failed for %q", name)
		}
	}
	if ds.SourceID("no-such-domain.example") != -1 {
		t.Fatal("unknown domain should be -1")
	}
}
