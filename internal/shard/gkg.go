package shard

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/queries"
)

// Sharded GKG queries. GKG scans ignore the mention window (like the
// monolith); theme ids remap through l2gTheme into the global theme
// dictionary, which preserves the monolith's id order so top-k tie-breaks
// agree.

// TopThemes returns the k most frequent GKG themes across all shards.
func (v *View) TopThemes(k int) ([]queries.ThemeCount, error) {
	s := v.s
	if !s.hasGKG {
		return nil, queries.ErrNoGKG
	}
	nt := s.themes.Len()
	// One fan-out job per shard, each an internally parallel count in the
	// global theme space; shard partials fold through a merge tree (exact
	// integer sums under any fold shape).
	partials := make([][]int64, s.K())
	v.forEachShard(func(w *parallel.Worker, i int, _ *engine.Engine) {
		p := s.parts[i]
		g := p.GKG
		remap := s.l2gTheme[i]
		partials[i] = parallel.MapReduce(g.Table.Len(), v.optW(w),
			func() []int64 { return make([]int64, nt) },
			func(acc []int64, lo, hi int) []int64 {
				for r := lo; r < hi; r++ {
					for _, id := range g.Table.RowThemes(r) {
						acc[remap[id]]++
					}
				}
				return acc
			},
			func(dst, src []int64) []int64 {
				for i, c := range src {
					dst[i] += c
				}
				return dst
			},
		)
	})
	live := partials[:0]
	for _, p := range partials {
		if p != nil {
			live = append(live, p)
		}
	}
	counts := make([]int64, nt)
	if len(live) > 0 {
		counts = parallel.MergeTree(live, func(dst, src []int64) []int64 {
			for i, c := range src {
				dst[i] += c
			}
			return dst
		})
	}
	top := engine.TopK(nt, k, func(i int) int64 { return counts[i] })
	out := make([]queries.ThemeCount, 0, len(top))
	for _, t := range top {
		out = append(out, queries.ThemeCount{Theme: s.themes.Name(int32(t)), Articles: counts[t]})
	}
	return out, nil
}

// ThemeTrends computes quarterly coverage for the named themes, walking
// each shard's local theme postings.
func (v *View) ThemeTrends(themes []string) ([]queries.ThemeTrend, error) {
	s := v.s
	if !s.hasGKG {
		return nil, queries.ErrNoGKG
	}
	nq := s.NumQuarters()
	labels := v.quarterLabels()
	out := make([]queries.ThemeTrend, len(themes))
	parallel.ForOpt(len(themes), v.grain1(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tr := queries.ThemeTrend{Theme: themes[i], Labels: labels, Values: make([]int64, nq)}
			for _, p := range s.parts {
				g := p.GKG
				id := g.Themes.Lookup(themes[i])
				if id < 0 {
					continue
				}
				for _, r := range g.ThemeRows(id) {
					tr.Values[p.QuarterOfInterval(g.Table.Interval[r])]++
				}
			}
			out[i] = tr
		}
	})
	return out, nil
}

// TranslatedShare computes the per-quarter machine-translated share by
// summing per-shard per-quarter totals before the division.
func (v *View) TranslatedShare() (labels []string, share []float64, err error) {
	s := v.s
	if !s.hasGKG {
		return nil, nil, queries.ErrNoGKG
	}
	nq := s.NumQuarters()
	type pair struct{ translated, total []int64 }
	merge := func(dst, src *pair) *pair {
		for i := range dst.total {
			dst.total[i] += src.total[i]
			dst.translated[i] += src.translated[i]
		}
		return dst
	}
	partials := make([]*pair, s.K())
	v.forEachShard(func(w *parallel.Worker, i int, _ *engine.Engine) {
		p := s.parts[i]
		g := p.GKG
		partials[i] = parallel.MapReduce(g.Table.Len(), v.optW(w),
			func() *pair { return &pair{make([]int64, nq), make([]int64, nq)} },
			func(acc *pair, lo, hi int) *pair {
				for r := lo; r < hi; r++ {
					q := p.QuarterOfInterval(g.Table.Interval[r])
					acc.total[q]++
					if g.Table.Translated[r] {
						acc.translated[q]++
					}
				}
				return acc
			},
			merge,
		)
	})
	live := partials[:0]
	for _, p := range partials {
		if p != nil {
			live = append(live, p)
		}
	}
	res := &pair{make([]int64, nq), make([]int64, nq)}
	if len(live) > 0 {
		res = parallel.MergeTree(live, merge)
	}
	share = make([]float64, nq)
	for q := 0; q < nq; q++ {
		if res.total[q] > 0 {
			share[q] = float64(res.translated[q]) / float64(res.total[q])
		}
	}
	return v.quarterLabels(), share, nil
}
