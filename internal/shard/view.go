package shard

import (
	"context"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
)

// View is the sharded analogue of engine.Engine: an immutable execution
// context (workers, cancellation, query kind, capture-interval window)
// over a sharded DB. The With* methods return modified copies, so views
// derived per request never race.
type View struct {
	s        *DB
	workers  int
	ctx      context.Context
	kind     string
	from, to int32
	windowed bool
}

// View returns an execution context over the sharded DB with default
// worker count, no window restriction, and background context.
func (s *DB) View() *View {
	return &View{s: s}
}

// WithWorkers returns a copy using n workers (0 means the default).
func (v *View) WithWorkers(n int) *View {
	w := *v
	w.workers = n
	return &w
}

// WithContext returns a copy carrying ctx for cancellation.
func (v *View) WithContext(ctx context.Context) *View {
	w := *v
	w.ctx = ctx
	return &w
}

// WithKind returns a copy labelled with the query kind (observability).
func (v *View) WithKind(kind string) *View {
	w := *v
	w.kind = kind
	return &w
}

// WithWindow returns a copy restricted to capture intervals [from, to).
// Mirrors engine.WithInterval: from == to == 0 means an explicitly empty
// window.
func (v *View) WithWindow(from, to int32) *View {
	w := *v
	w.from, w.to = from, to
	w.windowed = true
	return &w
}

// DB returns the underlying sharded store.
func (v *View) DB() *DB { return v.s }

// Workers reports the configured worker count.
func (v *View) Workers() int { return v.workers }

// Kind reports the query-kind label.
func (v *View) Kind() string { return v.kind }

// Context returns the cancellation context (Background when unset).
func (v *View) Context() context.Context {
	if v.ctx == nil {
		return context.Background()
	}
	return v.ctx
}

// Window reports the effective capture-interval window [from, to).
func (v *View) Window() (from, to int32) {
	if !v.windowed {
		return 0, v.s.meta.Intervals
	}
	return v.from, v.to
}

// opt returns parallel options matching the view's configuration, for
// reductions the view runs itself (over global events or sources).
func (v *View) opt() parallel.Options {
	return parallel.Options{Workers: v.workers, Context: v.ctx}
}

// engines returns one engine per shard, each carrying the view's workers,
// context and kind, and — when the view is windowed — the window clipped
// by each engine to its own mention rows. Every shard gets an engine even
// if the window misses it entirely (its kernels then see no rows), which
// keeps fan-out loops free of index bookkeeping.
func (v *View) engines() []*engine.Engine {
	es := make([]*engine.Engine, v.s.K())
	for i, p := range v.s.parts {
		e := engine.New(p).WithWorkers(v.workers).WithContext(v.ctx).WithKind(v.kind)
		if v.windowed {
			e = e.WithInterval(v.from, v.to)
		}
		es[i] = e
	}
	return es
}
