package shard

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
)

// View is the sharded analogue of engine.Engine: an immutable execution
// context (workers, cancellation, query kind, capture-interval window)
// over a sharded DB. The With* methods return modified copies, so views
// derived per request never race.
type View struct {
	s        *DB
	workers  int
	ctx      context.Context
	kind     string
	plan     engine.PlanMode
	from, to int32
	windowed bool
	// subset, when non-nil, restricts mention-scan fan-out to the marked
	// shards (degraded serving: the routing tier excludes shards whose
	// replica group is down). Excluded shards contribute an explicitly
	// empty mention window; event-table, postings and GKG scans are
	// unaffected, mirroring WithInterval's semantics.
	subset []bool
}

// View returns an execution context over the sharded DB with default
// worker count, no window restriction, and background context.
func (s *DB) View() *View {
	return &View{s: s}
}

// WithWorkers returns a copy using n workers (0 means the default).
func (v *View) WithWorkers(n int) *View {
	w := *v
	w.workers = n
	return &w
}

// WithContext returns a copy carrying ctx for cancellation.
func (v *View) WithContext(ctx context.Context) *View {
	w := *v
	w.ctx = ctx
	return &w
}

// WithKind returns a copy labelled with the query kind (observability).
func (v *View) WithKind(kind string) *View {
	w := *v
	w.kind = kind
	return &w
}

// WithPlan returns a copy pinned to a selection-query plan mode; PlanAuto
// (the default) defers to the cost-based planner per query.
func (v *View) WithPlan(m engine.PlanMode) *View {
	w := *v
	w.plan = m
	return &w
}

// Plan returns the view's plan mode.
func (v *View) Plan() engine.PlanMode { return v.plan }

// WithWindow returns a copy restricted to capture intervals [from, to).
// Mirrors engine.WithInterval: from == to == 0 means an explicitly empty
// window.
func (v *View) WithWindow(from, to int32) *View {
	w := *v
	w.from, w.to = from, to
	w.windowed = true
	return &w
}

// WithShards returns a copy restricted to the given shard indices: mention
// scans fan out only over the selected shards, the rest contribute no rows.
// Out-of-range indices are ignored; duplicates collapse. A nil or empty idx
// removes the restriction. Like WithInterval on the engine, the restriction
// applies to mention-window kernels — event-table, postings and GKG scans
// still see the assembly-time global tables (the routing tier flags such
// responses as partial by coverage metadata, not by value).
func (v *View) WithShards(idx []int) *View {
	w := *v
	if len(idx) == 0 {
		w.subset = nil
		return &w
	}
	sel := make([]bool, v.s.K())
	for _, i := range idx {
		if i >= 0 && i < len(sel) {
			sel[i] = true
		}
	}
	w.subset = sel
	return &w
}

// ShardSubset returns the restricted shard indices in ascending order, or
// nil when the view covers every shard.
func (v *View) ShardSubset() []int {
	if v.subset == nil {
		return nil
	}
	var out []int
	for i, ok := range v.subset {
		if ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// ShardScope renders the subset restriction as the cache-key scope
// component ("shards=0,1"), or "" for a full-coverage view. Full and
// partial executions of the same query therefore occupy distinct cache
// entries — a degraded result is never served to a full-coverage request.
func (v *View) ShardScope() string {
	sub := v.ShardSubset()
	if sub == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("shards=")
	for i, s := range sub {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// DB returns the underlying sharded store.
func (v *View) DB() *DB { return v.s }

// Workers reports the configured worker count.
func (v *View) Workers() int { return v.workers }

// Kind reports the query-kind label.
func (v *View) Kind() string { return v.kind }

// Context returns the cancellation context (Background when unset).
func (v *View) Context() context.Context {
	if v.ctx == nil {
		return context.Background()
	}
	return v.ctx
}

// Window reports the effective capture-interval window [from, to).
func (v *View) Window() (from, to int32) {
	if !v.windowed {
		return 0, v.s.meta.Intervals
	}
	return v.from, v.to
}

// opt returns parallel options matching the view's configuration, for
// reductions the view runs itself (over global events or sources).
func (v *View) opt() parallel.Options {
	return parallel.Options{Workers: v.workers, Context: v.ctx}
}

// optW returns the view's options bound to the pool worker executing the
// calling shard job, so raw loops inside forEachShard bodies advertise
// their grains on that worker's own deque (shard affinity) instead of the
// global injection queue.
func (v *View) optW(w *parallel.Worker) parallel.Options {
	opt := v.opt()
	opt.Worker = w
	return opt
}

// forEachShard is the cross-shard fan-out primitive: job runs once per
// shard, all shards concurrently as top-level tasks on the work-stealing
// pool (parallel.FanOut), so small shards never serialize behind large
// ones — a worker finishing its shard steals grains from the shards still
// running. Each job receives the executing pool worker (nil when run
// inline or by a non-pool joiner) and the shard's engine bound to that
// worker, which routes inner kernel grains and accumulator reuse to the
// worker that started the shard. Jobs must write only shard-indexed state;
// anything cross-shard needs commutative atomics. Under cancellation
// unclaimed jobs are skipped — their output slots stay zero — and
// forEachShard still returns only after in-flight jobs finish, so no task
// of the fan-out survives the call.
func (v *View) forEachShard(job func(w *parallel.Worker, i int, e *engine.Engine)) {
	engines := v.engines()
	parallel.FanOut(len(engines), v.opt(), func(w *parallel.Worker, i int) {
		job(w, i, engines[i].WithWorker(w))
	})
}

// engines returns one engine per shard, each carrying the view's workers,
// context and kind, and — when the view is windowed — the window clipped
// by each engine to its own mention rows. Every shard gets an engine even
// if the window misses it entirely (its kernels then see no rows), which
// keeps fan-out loops free of index bookkeeping.
func (v *View) engines() []*engine.Engine {
	es := make([]*engine.Engine, v.s.K())
	for i, p := range v.s.parts {
		e := engine.New(p).WithWorkers(v.workers).WithContext(v.ctx).WithKind(v.kind).WithPlan(v.plan)
		switch {
		case v.subset != nil && !v.subset[i]:
			// Excluded shard: an explicitly empty window, so its kernels
			// run over zero rows and the reduction shape stays uniform.
			e = e.WithInterval(0, 0)
		case v.windowed:
			e = e.WithInterval(v.from, v.to)
		}
		es[i] = e
	}
	return es
}
