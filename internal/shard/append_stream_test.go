// The sharded half of the append-then-query battery (see
// internal/baseline/append_differential_test.go for the monolith half).
// Lives in shard_test with the other stream-adjacent shard tests.
package shard_test

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
)

// TestAppendTailRebuildsAndInvalidates pins the sharded stale-postings
// hazard end to end: one chunk folded through AppendTail must (1) land in
// the tail shard with its bitmap postings rebuilt, (2) home events the
// chunk mentions that the tail never held, (3) keep the global per-event
// metadata agreed across shards, (4) bump only the tail version so cached
// full-window results go stale while cold windows stay warm, and (5) leave
// the sharded answers identical to a monolith that folded the same chunk.
func TestAppendTailRebuildsAndInvalidates(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	mono := res.DB
	sdb, err := shard.Split(mono, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _ := queries.TopPublishers(engine.New(mono), mono.Sources.Len())
	panel := append([]int32(nil), ranked[:16]...)

	ex := &registry.Executor{Cache: qcache.New(0)}
	ex.Cache.SetStale(sdb.StaleKey)
	d := registry.MustLookup("coreport")
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	full := sdb.View()
	cold := sdb.View().WithWindow(0, sdb.Bounds()[1])
	run := func(v *shard.View) qcache.Outcome {
		t.Helper()
		_, out, err := ex.ExecuteSharded(d, v, p)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, want := range []qcache.Outcome{qcache.Miss, qcache.Hit} {
		if out := run(full); out != want {
			t.Fatalf("full-window warmup: %v, want %v", out, want)
		}
		if out := run(cold); out != want {
			t.Fatalf("cold-window warmup: %v, want %v", out, want)
		}
	}

	// Build the chunk: a mention of an event that lives in an early shard
	// but not the tail (forces adoption), a brand-new event, a brand-new
	// source.
	tail := sdb.Tail()
	var earlyID int64 = -1
	p0 := sdb.Part(0)
	for i := 0; i < p0.Events.Len(); i++ {
		if id := p0.Events.ID[i]; tail.EventRowByID(id) < 0 && p0.Events.NumArticles[i] > 0 {
			earlyID = id
			break
		}
	}
	if earlyID < 0 {
		t.Fatal("no early-shard event absent from the tail; pick another world")
	}
	base := sdb.Meta().Start.IntervalIndex()
	lastIv := sdb.Meta().Intervals - 1
	ts := gdelt.IntervalStart(base + int64(lastIv))
	maxID := mono.Events.ID[len(mono.Events.ID)-1]
	evs := []gdelt.Event{{GlobalEventID: maxID + 1000, Day: 20191231, DateAdded: ts,
		SourceURL: "http://tail-news.example/new"}}
	web := func(id int64, src string) gdelt.Mention {
		return gdelt.Mention{GlobalEventID: id, EventTime: ts, MentionTime: ts,
			MentionType: gdelt.MentionTypeWeb, SourceName: src, DocLen: 900, Confidence: 70}
	}
	mns := []gdelt.Mention{
		web(earlyID, mono.Sources.Name(panel[0])),
		web(earlyID, "tail-news.example"),
		web(maxID+1000, "tail-news.example"),
	}

	// Fold the same chunk into the monolith reference first (shared global
	// dictionary, so intern order is consistent either way).
	if _, err := mono.AppendChunk(evs, mns); err != nil {
		t.Fatal(err)
	}

	tailBefore := tail.Version()
	st, err := sdb.AppendTail(evs, mns)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppendedMentions != 3 || st.AppendedEvents != 1 || st.DanglingMentions != 0 {
		t.Fatalf("append stats %+v, want 3 mentions / 1 event / 0 dangling", st)
	}
	if got := tail.Version(); got != tailBefore+1 {
		t.Fatalf("tail version %d after append, want %d", got, tailBefore+1)
	}
	if got := sdb.Part(0).Version(); got != 0 {
		t.Fatalf("cold shard version bumped to %d by a tail append", got)
	}

	// Adoption homed the early event in the tail, and the global per-event
	// metadata agrees across every copy.
	tr := tail.EventRowByID(earlyID)
	if tr < 0 {
		t.Fatal("early-shard event was not adopted into the tail")
	}
	monoRow := mono.EventRowByID(earlyID)
	if tail.Events.NumArticles[tr] != mono.Events.NumArticles[monoRow] {
		t.Fatalf("tail copy counts %d articles, monolith %d",
			tail.Events.NumArticles[tr], mono.Events.NumArticles[monoRow])
	}
	if lr := p0.EventRowByID(earlyID); p0.Events.NumArticles[lr] != tail.Events.NumArticles[tr] {
		t.Fatal("shard copies disagree on the appended event's article count")
	}
	if tail.EventRowByID(maxID+1000) < 0 {
		t.Fatal("appended event missing from the tail")
	}

	// Cache: the full window went stale, the cold window stayed warm.
	if out := run(full); out != qcache.Miss {
		t.Fatalf("full-window run after append: %v, want miss (stale aggregate!)", out)
	}
	if out := run(cold); out != qcache.Hit {
		t.Fatalf("cold-window run after append: %v, want hit (cold shard untouched)", out)
	}

	// Sharded answers equal the monolith that folded the same chunk —
	// through the planner default and with the new source in the panel.
	panel = append(panel, mono.Sources.Lookup("tail-news.example"))
	wantCo, err := queries.CoReportScan(engine.New(mono).WithWorkers(1), panel)
	if err != nil {
		t.Fatal(err)
	}
	gotCo, err := sdb.View().WithWorkers(1).CoReport(panel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantCo.Pair.Data {
		if gotCo.Pair.Data[i] != wantCo.Pair.Data[i] {
			t.Fatalf("sharded coreport pair[%d] = %d, monolith %d",
				i, gotCo.Pair.Data[i], wantCo.Pair.Data[i])
		}
	}
	wantFo := queries.FollowReportScan(engine.New(mono).WithWorkers(1), panel)
	gotFo := sdb.View().WithWorkers(1).FollowReport(panel)
	for i := range wantFo.N.Data {
		if gotFo.N.Data[i] != wantFo.N.Data[i] {
			t.Fatalf("sharded follow n[%d] = %d, monolith %d",
				i, gotFo.N.Data[i], wantFo.N.Data[i])
		}
	}

	// A chunk below the tail window is rejected before any mutation.
	low := web(earlyID, "tail-news.example")
	low.MentionTime = gdelt.IntervalStart(base) // interval 0
	v := tail.Version()
	if _, err := sdb.AppendTail(nil, []gdelt.Mention{low}); err == nil {
		t.Fatal("append below the tail window succeeded")
	}
	if tail.Version() != v {
		t.Fatal("rejected append bumped the tail version")
	}
}
