package shard

import (
	"fmt"
	"sort"

	"gdeltmine/internal/store"
)

// Split re-slices a loaded monolithic store into k equal time-range shards
// (k is clamped to the interval count). The global dictionaries are the
// monolith's own, so global ids — and therefore every id-order tie-break in
// top-k selections — are identical to the monolithic execution.
func Split(db *store.DB, k int) (*DB, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: split into %d shards", k)
	}
	iv := int(db.Meta.Intervals)
	if k > iv {
		k = iv
	}
	bounds := make([]int32, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = int32(i * iv / k)
	}
	return SplitAt(db, bounds)
}

// SplitAt re-slices a monolith on explicit capture-interval boundaries.
// bounds must tile [0, Intervals]; the metamorphic battery uses it to prove
// results are invariant under boundary moves.
func SplitAt(db *store.DB, bounds []int32) (*DB, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("shard: %d bounds", len(bounds))
	}
	parts := make([]*store.DB, len(bounds)-1)
	for i := range parts {
		p, err := slice(db, bounds[i], bounds[i+1])
		if err != nil {
			return nil, fmt.Errorf("shard %d [%d, %d): %w", i, bounds[i], bounds[i+1], err)
		}
		parts[i] = p
	}
	var themes *store.Dictionary
	if db.GKG != nil {
		themes = db.GKG.Themes
	}
	return New(parts, bounds, db.Sources, themes, db.Report)
}

// slice builds one shard: the monolith's mentions captured in [lo, hi)
// plus the events they reference and the events homed in the range (so the
// union of shard event tables covers every event, including zero-mention
// ones), all re-encoded against shard-local dictionaries. Per-event
// metadata is copied verbatim — it stays global on purpose, so queries
// reading it (event sizes, qlang's articles field, wildfire thresholds)
// agree with the monolith without cross-shard recounting.
func slice(db *store.DB, lo, hi int32) (*store.DB, error) {
	rLo, rHi := db.MentionRowRange(lo, hi)

	ne := db.Events.Len()
	include := make([]bool, ne)
	for ev := 0; ev < ne; ev++ {
		iv := db.Events.Interval[ev]
		if iv < 0 {
			iv = 0
		}
		if iv >= db.Meta.Intervals {
			iv = db.Meta.Intervals - 1
		}
		if iv >= lo && iv < hi {
			include[ev] = true
		}
	}
	for r := rLo; r < rHi; r++ {
		include[db.Mentions.EventRow[r]] = true
	}

	g2l := make([]int32, ne)
	var ev store.EventTable
	for e := 0; e < ne; e++ {
		g2l[e] = -1
		if !include[e] {
			continue
		}
		g2l[e] = int32(ev.Len())
		ev.ID = append(ev.ID, db.Events.ID[e])
		ev.Day = append(ev.Day, db.Events.Day[e])
		ev.Interval = append(ev.Interval, db.Events.Interval[e])
		ev.Country = append(ev.Country, db.Events.Country[e])
		ev.NumArticles = append(ev.NumArticles, db.Events.NumArticles[e])
		ev.FirstMention = append(ev.FirstMention, db.Events.FirstMention[e])
		ev.SourceURL = append(ev.SourceURL, db.Events.SourceURL[e])
	}

	// Intern every source the shard will reference — mention rows and GKG
	// rows — before assembly, because AssembleDB sizes the postings and the
	// source-country column by the dictionary length.
	ldict := store.NewDictionary()
	for r := rLo; r < rHi; r++ {
		ldict.Intern(db.Sources.Name(db.Mentions.Source[r]))
	}
	gLo, gHi := 0, 0
	if db.GKG != nil {
		t := &db.GKG.Table
		n := t.Len()
		gLo = sort.Search(n, func(i int) bool { return t.Interval[i] >= lo })
		gHi = sort.Search(n, func(i int) bool { return t.Interval[i] >= hi })
		for r := gLo; r < gHi; r++ {
			ldict.Intern(db.Sources.Name(t.Source[r]))
		}
	}

	var mn store.MentionTable
	for r := rLo; r < rHi; r++ {
		mn.EventRow = append(mn.EventRow, g2l[db.Mentions.EventRow[r]])
		mn.Source = append(mn.Source, ldict.Intern(db.Sources.Name(db.Mentions.Source[r])))
		mn.Interval = append(mn.Interval, db.Mentions.Interval[r])
		mn.Delay = append(mn.Delay, db.Mentions.Delay[r])
		mn.DocLen = append(mn.DocLen, db.Mentions.DocLen[r])
		mn.Tone = append(mn.Tone, db.Mentions.Tone[r])
		mn.Confidence = append(mn.Confidence, db.Mentions.Confidence[r])
	}

	p, err := store.AssembleDB(db.Meta, ldict, ev, mn, db.Report)
	if err != nil {
		return nil, err
	}
	if db.GKG != nil {
		if err := sliceGKG(db, p, ldict, gLo, gHi); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// sliceGKG carves the (interval-sorted, hence contiguous) GKG row range
// [gLo, gHi) into shard-local tables with local theme/person/org
// dictionaries interned in row order.
func sliceGKG(db *store.DB, p *store.DB, ldict *store.Dictionary, gLo, gHi int) error {
	src := &db.GKG.Table
	themes := store.NewDictionary()
	persons := store.NewDictionary()
	orgs := store.NewDictionary()
	var t store.GKGTable
	t.ThemePtr = append(t.ThemePtr, 0)
	t.PersonPtr = append(t.PersonPtr, 0)
	t.OrgPtr = append(t.OrgPtr, 0)
	for r := gLo; r < gHi; r++ {
		t.Source = append(t.Source, ldict.Intern(db.Sources.Name(src.Source[r])))
		t.Interval = append(t.Interval, src.Interval[r])
		t.Tone = append(t.Tone, src.Tone[r])
		t.Translated = append(t.Translated, src.Translated[r])
		for _, id := range src.RowThemes(r) {
			t.ThemeIDs = append(t.ThemeIDs, themes.Intern(db.GKG.Themes.Name(id)))
		}
		t.ThemePtr = append(t.ThemePtr, int64(len(t.ThemeIDs)))
		for _, id := range src.RowPersons(r) {
			t.PersonIDs = append(t.PersonIDs, persons.Intern(db.GKG.Persons.Name(id)))
		}
		t.PersonPtr = append(t.PersonPtr, int64(len(t.PersonIDs)))
		for _, id := range src.RowOrgs(r) {
			t.OrgIDs = append(t.OrgIDs, orgs.Intern(db.GKG.Orgs.Name(id)))
		}
		t.OrgPtr = append(t.OrgPtr, int64(len(t.OrgIDs)))
	}
	return store.AssembleGKG(p, t, themes, persons, orgs)
}
