package shard

import (
	"fmt"
	"sort"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// AppendTail folds one feed chunk into the tail shard — the sharded face of
// store.DB.AppendChunk. Stream appends always land in the time-ordered tail,
// so only the tail's snapshot version is bumped (inside AppendChunk): cached
// results whose window touches the tail go stale through StaleKey while cold
// windows stay warm, exactly the contract the version-vector tests pin.
//
// The tail store rebuilds its own derived state (row-list and bitmap
// postings, quarter index, LUTs), but the shard layer holds assembly-time
// state of its own that an append invalidates, and this method repairs all
// of it before returning:
//
//   - l2gSrc[tail]: newly interned tail-local sources are interned into the
//     global dictionary and the remap is extended.
//   - Per-event metadata: NumArticles/FirstMention/Interval are global
//     columns copied verbatim into every shard holding the event, so the
//     tail's updated values are propagated to the other shards' copies
//     (their versions are NOT bumped — per-event metadata is the same
//     global-not-windowed data it was at split time).
//   - The merged global event table and the event row remaps are rebuilt,
//     since appended events shift global rows.
//
// Like the store-level append, AppendTail is single-writer and must be
// serialized against in-flight queries by the caller.
func (s *DB) AppendTail(evs []gdelt.Event, mns []gdelt.Mention) (store.AppendStats, error) {
	tail := s.Tail()
	tailLo := s.bounds[len(s.bounds)-2]
	base := s.meta.Start.IntervalIndex()
	for i := range mns {
		if mns[i].MentionType != gdelt.MentionTypeWeb {
			continue
		}
		iv := mns[i].MentionTime.IntervalIndex() - base
		if iv >= 0 && iv < int64(s.meta.Intervals) && int32(iv) < tailLo {
			return store.AppendStats{}, fmt.Errorf(
				"shard: append mention at interval %d below the tail window [%d, %d)",
				iv, tailLo, s.meta.Intervals)
		}
	}

	// Home events the chunk mentions but the tail shard never held: copy
	// their rows verbatim from the merged global table, so the store-level
	// dangling check sees them and per-event metadata stays globally agreed.
	var adopt store.EventTable
	adopted := make(map[int64]bool)
	for i := range mns {
		id := mns[i].GlobalEventID
		if mns[i].MentionType != gdelt.MentionTypeWeb || adopted[id] || tail.EventRowByID(id) >= 0 {
			continue
		}
		g := sort.Search(s.events.Len(), func(k int) bool { return s.events.ID[k] >= id })
		if g >= s.events.Len() || s.events.ID[g] != id {
			continue // unknown globally too; AppendChunk counts it dangling
		}
		adopted[id] = true
		adopt.ID = append(adopt.ID, s.events.ID[g])
		adopt.Day = append(adopt.Day, s.events.Day[g])
		adopt.Interval = append(adopt.Interval, s.events.Interval[g])
		adopt.Country = append(adopt.Country, s.events.Country[g])
		adopt.NumArticles = append(adopt.NumArticles, s.events.NumArticles[g])
		adopt.FirstMention = append(adopt.FirstMention, s.events.FirstMention[g])
		adopt.SourceURL = append(adopt.SourceURL, s.events.SourceURL[g])
	}
	if adopt.Len() > 0 {
		if err := tail.AdoptEventRows(adopt); err != nil {
			return store.AppendStats{}, err
		}
	}

	oldSrc := tail.Sources.Len()
	st, err := tail.AppendChunk(evs, mns)
	if err != nil {
		return st, err
	}

	// Extend the tail's source remap for sources first seen in this chunk.
	ti := len(s.parts) - 1
	for ls := oldSrc; ls < tail.Sources.Len(); ls++ {
		s.l2gSrc[ti] = append(s.l2gSrc[ti], s.sources.Intern(tail.Sources.Name(int32(ls))))
	}

	// Propagate the global per-event columns to every other shard's copy of
	// each touched event, then rebuild the merged table and row remaps (the
	// merge re-checks that all copies agree).
	for _, r := range st.TouchedEventRows {
		id := tail.Events.ID[r]
		for pi, p := range s.parts {
			if pi == ti {
				continue
			}
			lr := p.EventRowByID(id)
			if lr < 0 {
				continue
			}
			p.Events.NumArticles[lr] = tail.Events.NumArticles[r]
			p.Events.FirstMention[lr] = tail.Events.FirstMention[r]
			p.Events.Interval[lr] = tail.Events.Interval[r]
		}
	}
	s.events = store.EventTable{}
	if err := s.mergeEvents(); err != nil {
		return st, fmt.Errorf("shard: append left shards disagreeing: %w", err)
	}
	s.eventCountryLUT = make([]int32, s.events.Len())
	for ev, c := range s.events.Country {
		s.eventCountryLUT[ev] = int32(c)
	}
	return st, nil
}
