package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// Log is the partitioned append log behind production-cadence streaming:
// a time-sharded world whose last part is a mutable tail. 15-minute feed
// ticks fold into the tail through the AppendTail path; a compactor
// (internal/stream.Compactor) periodically seals the tail past a size/age
// threshold, rewriting it into an immutable sorted part with fully rebuilt
// derived indexes and opening a fresh tail over the remaining interval
// range.
//
// Concurrency contract (snapshot isolation): readers call Snapshot and
// query the returned world with no coordination whatsoever; writers
// (Append, Seal) serialize on an internal mutex and publish complete new
// worlds with an atomic pointer swap. A published snapshot is never
// mutated — Append clones exactly the state the fold writes
// (copy-on-write, see store.DB.DeepClone/CloneWithFreshEventMeta) and Seal
// only slices fresh parts out of the old tail — so a query running against
// an old snapshot keeps seeing the world it started on, and the per-shard
// version vectors embedded in qcache keys keep results from different
// snapshots apart: the fold bumps only the cloned tail's version, so
// cached answers for tail-overlapping windows go stale while cold-window
// entries stay warm.
//
// Durability contract: appended ticks live in memory only; recovery after
// a crash is the stream checkpoint plus masterfile catch-up (the live
// poller re-folds ticks the checkpoint has not marked). Seal is the
// durability point: when the log has a directory, every seal persists the
// new world with the crash-safe protocol below before publishing it.
type Log struct {
	mu    sync.Mutex
	cur   atomic.Pointer[DB]
	dir   string   // "" = in-memory log, never persisted
	gen   uint64   // generation stamp for freshly written part files
	files []string // part file basenames aligned with the current parts
	dirty []bool   // non-tail parts whose persisted image went stale
	hook  StepHook
}

// StepHook observes — and can abort — each step of the crash-safe persist
// protocol. internal/faults.FSPlan implements it to kill the compactor
// deterministically at every write/rename/fsync point; a hook error aborts
// the seal with the old world still published and the old manifest still
// on disk.
type StepHook func(op, path string) error

// Persist protocol step names, in execution order: for each part file not
// carried over from the previous generation, write-part / sync-part /
// rename-part; then write-manifest / sync-manifest / rename-manifest /
// sync-dir.
const (
	OpWritePart      = "write-part"
	OpSyncPart       = "sync-part"
	OpRenamePart     = "rename-part"
	OpWriteManifest  = "write-manifest"
	OpSyncManifest   = "sync-manifest"
	OpRenameManifest = "rename-manifest"
	OpSyncDir        = "sync-dir"
)

// LogManifestName is the manifest basename of a persisted append log.
const LogManifestName = "MANIFEST.gdsm"

// NewLog returns an in-memory append log over an initial world. Nothing is
// ever written to disk; Seal only swaps snapshots.
func NewLog(db *DB) *Log {
	lg := &Log{dirty: make([]bool, db.K())}
	lg.cur.Store(db)
	return lg
}

// CreateLog persists an initial world under dir (created if needed) and
// returns a durable log: every subsequent Seal rewrites the manifest
// crash-safely.
func CreateLog(dir string, db *DB) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating log dir: %w", err)
	}
	lg := NewLog(db)
	lg.dir = dir
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.gen = 1
	files := make([]string, db.K())
	changed := make([]int, db.K())
	for i := range files {
		files[i] = partFileName(lg.gen, i)
		changed[i] = i
	}
	if err := lg.persist(db, files, changed); err != nil {
		return nil, err
	}
	lg.files = files
	return lg, nil
}

// OpenLog loads a persisted append log. Because the persist protocol never
// touches files the published manifest references, the directory always
// holds a loadable world: fully-old if a seal crashed before the manifest
// rename, fully-new after it. Stray files an interrupted seal left behind
// (unreferenced generation-stamped parts, orphaned temp files) are removed.
func OpenLog(dir string) (*Log, error) {
	mpath := filepath.Join(dir, LogManifestName)
	f, err := os.Open(mpath)
	if err != nil {
		return nil, fmt.Errorf("shard: opening log manifest: %w", err)
	}
	m, err := DecodeManifest(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("shard: log manifest: %w", err)
	}
	// AssembleSharded orders parts by entry Lo; keep the file list aligned
	// by sorting the entries the same way first.
	entries := append([]ManifestEntry(nil), m.Entries...)
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].Lo < entries[b].Lo })
	parts := make([]*store.DB, len(entries))
	files := make([]string, len(entries))
	for i, e := range entries {
		if e.File != filepath.Base(e.File) || e.File == "." || e.File == "" {
			return nil, fmt.Errorf("shard: log manifest entry file %q escapes the log directory", e.File)
		}
		files[i] = e.File
		p, err := binfmt.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return nil, fmt.Errorf("shard: log part %d (%s): %w", i, e.File, err)
		}
		parts[i] = p
	}
	db, err := AssembleSharded(m, parts)
	if err != nil {
		return nil, err
	}
	lg := &Log{dir: dir, files: files, dirty: make([]bool, len(files))}
	lg.cur.Store(db)
	lg.gen = scanMaxGen(dir, files)
	lg.gc()
	return lg, nil
}

// Snapshot returns the current published world. The result is immutable:
// it never changes under the caller, no matter how many appends and seals
// happen after.
func (lg *Log) Snapshot() *DB { return lg.cur.Load() }

// SetStepHook installs a persist-protocol observer (crash harness only).
func (lg *Log) SetStepHook(h StepHook) {
	lg.mu.Lock()
	lg.hook = h
	lg.mu.Unlock()
}

// Dir returns the log directory, or "" for an in-memory log.
func (lg *Log) Dir() string { return lg.dir }

// Gen returns the generation stamp of the most recently written part files.
func (lg *Log) Gen() uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.gen
}

// TailRows returns the number of mention rows in the current tail — the
// compactor's size signal.
func (lg *Log) TailRows() int { return lg.Snapshot().Tail().Mentions.Len() }

// TailSpan returns how many capture intervals of data the current tail
// holds (first to last mention, inclusive) — the compactor's age signal.
// An empty tail spans 0.
func (lg *Log) TailSpan() int32 {
	t := lg.Snapshot().Tail()
	n := t.Mentions.Len()
	if n == 0 {
		return 0
	}
	return t.Mentions.Interval[n-1] - t.Mentions.Interval[0] + 1
}

// Append folds one feed tick into the tail of a fresh copy-on-write world
// and publishes it. Readers holding the previous snapshot are untouched:
// the tail is deep-cloned (the fold rewrites its tables, dictionary and
// every derived index), the other parts share all storage except the three
// per-event metadata columns the fold propagates to adopted events, and
// the global source dictionary is cloned before new sources are interned.
// The cloned tail inherits the old tail's version and the fold bumps it.
// Appended ticks are in memory only until the next Seal.
func (lg *Log) Append(evs []gdelt.Event, mns []gdelt.Mention) (store.AppendStats, error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	cur := lg.cur.Load()
	next, err := cloneForAppend(cur)
	if err != nil {
		return store.AppendStats{}, err
	}
	st, err := next.AppendTail(evs, mns)
	if err != nil {
		return st, err
	}
	// The fold propagates per-event metadata to every part holding a copy
	// of a touched event; mark those parts so the next seal rewrites their
	// persisted image too (the on-disk copy just went stale).
	tail := next.parts[len(next.parts)-1]
	for _, r := range st.TouchedEventRows {
		id := tail.Events.ID[r]
		for i := 0; i < len(next.parts)-1; i++ {
			if !lg.dirty[i] && next.parts[i].EventRowByID(id) >= 0 {
				lg.dirty[i] = true
			}
		}
	}
	lg.cur.Store(next)
	return st, nil
}

// cloneForAppend builds the copy-on-write world an append may mutate.
func cloneForAppend(cur *DB) (*DB, error) {
	parts := make([]*store.DB, len(cur.parts))
	for i, p := range cur.parts {
		if i == len(cur.parts)-1 {
			t, err := p.DeepClone()
			if err != nil {
				return nil, fmt.Errorf("shard: cloning tail: %w", err)
			}
			parts[i] = t
		} else {
			parts[i] = p.CloneWithFreshEventMeta()
		}
	}
	next, err := New(parts, cur.bounds, cur.sources.Clone(), cur.themes, cur.report)
	if err != nil {
		return nil, fmt.Errorf("shard: rebuilding sharded view for append: %w", err)
	}
	return next, nil
}

// Seal closes the current tail: every filled interval (up to and including
// the tail's last mention) is re-sliced into a new immutable part with
// fully rebuilt derived indexes, and a fresh tail takes over the remaining
// interval range. Both new parts inherit the old tail's version — safe for
// cache keys, because data only changes through appends and each append
// bumps the tail version, so a key minted before the seal either matches
// identical data or embeds a version the world has moved past. Returns
// false without error when there is nothing to seal: an empty tail, or a
// tail whose data already reaches the end of the archive (no interval
// range would remain for a successor).
//
// On a durable log the new world is persisted before it is published,
// using the crash-safe protocol (see persist); a persist error leaves both
// the published snapshot and the on-disk manifest at the old world.
func (lg *Log) Seal() (bool, error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	cur := lg.cur.Load()
	tail := cur.parts[len(cur.parts)-1]
	n := tail.Mentions.Len()
	if n == 0 {
		return false, nil
	}
	cut := tail.Mentions.Interval[n-1] + 1
	if cut >= cur.meta.Intervals {
		return false, nil
	}
	tailLo := cur.bounds[len(cur.bounds)-2]
	sealed, err := slice(tail, tailLo, cut)
	if err != nil {
		return false, fmt.Errorf("shard: sealing [%d, %d): %w", tailLo, cut, err)
	}
	fresh, err := slice(tail, cut, cur.meta.Intervals)
	if err != nil {
		return false, fmt.Errorf("shard: opening fresh tail [%d, %d): %w", cut, cur.meta.Intervals, err)
	}
	v := tail.Version()
	sealed.SetVersion(v)
	fresh.SetVersion(v)

	parts := append(append([]*store.DB(nil), cur.parts[:len(cur.parts)-1]...), sealed, fresh)
	bounds := append(append([]int32(nil), cur.bounds[:len(cur.bounds)-1]...), cut, cur.meta.Intervals)
	next, err := New(parts, bounds, cur.sources, cur.themes, cur.report)
	if err != nil {
		return false, fmt.Errorf("shard: rebuilding sharded view for seal: %w", err)
	}

	if lg.dir != "" {
		// A failed attempt may leave temp files behind; never reuse its
		// generation, so a retry cannot collide with them. OpenLog's GC
		// sweeps the strays.
		lg.gen++
		// Rewrite the two parts born from the old tail plus every non-tail
		// part whose event metadata appends dirtied — all under fresh
		// generation-stamped names, never over files the published
		// manifest references.
		files := append([]string(nil), lg.files[:len(lg.files)-1]...)
		var changed []int
		for i, d := range lg.dirty {
			if d && i < len(files) {
				files[i] = partFileName(lg.gen, i)
				changed = append(changed, i)
			}
		}
		files = append(files, partFileName(lg.gen, len(parts)-2), partFileName(lg.gen, len(parts)-1))
		changed = append(changed, len(parts)-2, len(parts)-1)
		if err := lg.persist(next, files, changed); err != nil {
			return false, err
		}
		// Files the new manifest no longer references are dead; removal is
		// best-effort cleanup (a crash here leaves them for OpenLog's GC).
		for i, old := range lg.files {
			if i >= len(files) || files[i] != old {
				os.Remove(filepath.Join(lg.dir, old))
			}
		}
		lg.files = files
	}
	lg.dirty = make([]bool, len(parts))
	lg.cur.Store(next)
	return true, nil
}

// persist writes a new world to the log directory with the crash-safe
// protocol. Changed parts land under fresh generation-stamped names —
// never under a name the published manifest references — so every
// intermediate state leaves the old manifest loadable over untouched
// files. Each file is written to a temp name, fsynced, then renamed; the
// manifest goes last the same way; finally the directory is fsynced so the
// manifest rename itself is durable. A crash before the manifest rename
// leaves the old world, after it the new world — never a torn mix. Every
// step consults the hook first, which is how the crash harness simulates
// dying at that exact point.
func (lg *Log) persist(db *DB, files []string, changed []int) error {
	m, err := ManifestFromDB(db, files)
	if err != nil {
		return err
	}
	for _, i := range changed {
		final := filepath.Join(lg.dir, files[i])
		if err := writeFileSteps(lg.hook, OpWritePart, OpSyncPart, OpRenamePart, final, func(f *os.File) error {
			return binfmt.Write(f, db.parts[i])
		}); err != nil {
			return fmt.Errorf("shard: persisting part %s: %w", files[i], err)
		}
	}
	final := filepath.Join(lg.dir, LogManifestName)
	if err := writeFileSteps(lg.hook, OpWriteManifest, OpSyncManifest, OpRenameManifest, final, func(f *os.File) error {
		return EncodeManifest(f, m)
	}); err != nil {
		return fmt.Errorf("shard: persisting manifest: %w", err)
	}
	if lg.hook != nil {
		if err := lg.hook(OpSyncDir, lg.dir); err != nil {
			return err
		}
	}
	if err := syncDir(lg.dir); err != nil {
		return fmt.Errorf("shard: syncing log dir: %w", err)
	}
	return nil
}

// writeFileSteps runs one write/sync/rename leg of the persist protocol:
// write the payload to <final>.tmp, fsync it, rename into place — each
// step gated by the hook.
func writeFileSteps(hook StepHook, writeOp, syncOp, renameOp, final string, write func(*os.File) error) error {
	tmp := final + ".tmp"
	if hook != nil {
		if err := hook(writeOp, tmp); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if hook != nil {
		if err := hook(syncOp, tmp); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hook != nil {
		if err := hook(renameOp, final); err != nil {
			return err
		}
	}
	return os.Rename(tmp, final)
}

// syncDir fsyncs a directory so a rename inside it survives a power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// partFileName names a part file: generation stamp + shard index. The
// generation guarantees a seal never writes under a name any earlier
// manifest references.
func partFileName(gen uint64, idx int) string {
	return fmt.Sprintf("part-g%d-%d.gdmb", gen, idx)
}

// parseGen extracts the generation stamp from a part file name (with or
// without a trailing .tmp).
func parseGen(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "part-g")
	if !ok {
		return 0, false
	}
	i := strings.IndexByte(rest, '-')
	if i <= 0 {
		return 0, false
	}
	g, err := strconv.ParseUint(rest[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// scanMaxGen finds the highest generation present in the directory —
// including strays from an interrupted seal, so the next seal starts past
// all of them — and never below the referenced files' generations.
func scanMaxGen(dir string, files []string) uint64 {
	var max uint64
	for _, f := range files {
		if g, ok := parseGen(f); ok && g > max {
			max = g
		}
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if g, ok := parseGen(e.Name()); ok && g > max {
				max = g
			}
		}
	}
	return max
}

// gc removes files an interrupted seal abandoned: temp files and
// generation-stamped parts the current manifest does not reference. Only
// names matching the log's own naming scheme are touched.
func (lg *Log) gc() {
	refd := map[string]bool{LogManifestName: true}
	for _, f := range lg.files {
		refd[f] = true
	}
	ents, err := os.ReadDir(lg.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || refd[name] {
			continue
		}
		_, isPart := parseGen(name)
		if strings.HasSuffix(name, ".tmp") || (isPart && strings.HasSuffix(name, ".gdmb")) {
			os.Remove(filepath.Join(lg.dir, name))
		}
	}
}
