package shard

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/stats"
)

// The sharded executions below mirror the monolithic functions in
// internal/queries operation for operation: mention scans fan out through
// per-shard engines over the same typed kernels (so the per-shard window
// clipping, predicate selection and merge trees are shared code), and the
// partial results reduce through the local→global remaps. Integer
// aggregates are exact sums, so they match the monolith bit for bit;
// float derivations (Jaccard, fractions, fits) go through the same
// exported finishers in queries, so they see identical integer inputs and
// produce identical outputs up to the usual non-associativity-free 1e-9.
// Window semantics follow the monolith precisely: mention-window kernels
// honor the view window, event-table, postings and GKG scans ignore it.

// maxDelay mirrors queries' unexported delay cap (one year plus a day).
const maxDelay = gdelt.IntervalsPerYear + gdelt.IntervalsPerDay

func (v *View) grain1() parallel.Options {
	opt := v.opt()
	opt.Grain = 1
	return opt
}

func (v *View) quarterLabels() []string {
	labels := make([]string, v.s.NumQuarters())
	for q := range labels {
		labels[q] = v.s.QuarterLabel(q)
	}
	return labels
}

// sumPerShard fans a per-shard kernel out over every shard — every kernel
// runs concurrently as a pool task, each bound to the worker executing it —
// and folds the n-length partial counters through a pairwise merge tree.
// Integer addition is associative and commutative, so the result is exact
// under any fold shape and matches the monolith bit for bit. Partials land
// in shard-indexed slots (no cross-shard writes); shards skipped by
// cancellation leave nil slots, which the merge drops.
func (v *View) sumPerShard(n int, f func(i int, e *engine.Engine) []int64) []int64 {
	partials := make([][]int64, v.s.K())
	v.forEachShard(func(_ *parallel.Worker, i int, e *engine.Engine) {
		partials[i] = f(i, e)
	})
	live := partials[:0]
	for _, p := range partials {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return make([]int64, n)
	}
	return parallel.MergeTree(live, func(dst, src []int64) []int64 {
		for g, c := range src {
			dst[g] += c
		}
		return dst
	})
}

// groupCountEvents is the global-event-table analogue of the engine's
// GroupCountEventsCol: a parallel scan over the merged event table where
// groupOf returns the counter for an event, or a negative/out-of-range
// value to skip it. Event scans ignore the mention window, matching the
// monolith.
func (v *View) groupCountEvents(numGroups int, groupOf func(ev int) int) []int64 {
	return parallel.MapReduce(v.s.events.Len(), v.opt(),
		func() []int64 { return make([]int64, numGroups) },
		func(acc []int64, lo, hi int) []int64 {
			for ev := lo; ev < hi; ev++ {
				if g := groupOf(ev); g >= 0 && g < numGroups {
					acc[g]++
				}
			}
			return acc
		},
		func(dst, src []int64) []int64 {
			for i, c := range src {
				dst[i] += c
			}
			return dst
		},
	)
}

// Dataset computes Table I over the sharded store.
func (v *View) Dataset() queries.DatasetStats {
	s := v.s
	out := queries.DatasetStats{
		Sources:          s.sources.Len(),
		Events:           int64(s.events.Len()),
		CaptureIntervals: int64(s.meta.Intervals),
	}
	for _, p := range s.parts {
		out.Articles += int64(p.Mentions.Len())
	}
	var agg stats.IntSummary
	for _, n := range s.events.NumArticles {
		if n == 0 {
			out.ZeroMentionEvents++
			continue
		}
		agg.Add(int64(n))
	}
	if agg.N > 0 {
		out.MinArticles = agg.Min
		out.MaxArticles = agg.Max
		out.WeightedAvg = agg.Mean()
	}
	return out
}

// TopEvents returns the k most-reported events (Table III) from the merged
// global event table, with the same lower-row tie-break as the monolith
// (the merge preserves ID order, which is the monolith's row order).
func (v *View) TopEvents(k int) []queries.TopEvent {
	ev := &v.s.events
	idx := engine.TopK(ev.Len(), k, func(i int) int64 {
		return int64(ev.NumArticles[i])
	})
	out := make([]queries.TopEvent, 0, len(idx))
	for _, i := range idx {
		out = append(out, queries.TopEvent{
			Mentions:  int64(ev.NumArticles[i]),
			EventID:   ev.ID[i],
			SourceURL: ev.SourceURL[i],
		})
	}
	return out
}

// EventSizes computes the Figure 2 distribution over the global events.
func (v *View) EventSizes(xmin int) queries.EventSizeDistribution {
	ev := &v.s.events
	var maxN int32
	for _, n := range ev.NumArticles {
		if n > maxN {
			maxN = n
		}
	}
	counts := v.groupCountEvents(int(maxN)+1, func(i int) int { return int(ev.NumArticles[i]) })
	out := queries.EventSizeDistribution{Counts: counts}
	out.Fit, out.FitErr = stats.FitPowerLaw(counts, xmin)
	return out
}

// TopPublishers ranks global sources by windowed article count: per-shard
// typed group-counts remapped through l2gSrc and summed, then the same
// top-k selection (global ids preserve the monolith order, so ties break
// identically).
func (v *View) TopPublishers(k int) (ids []int32, counts []int64) {
	s := v.s
	perSource := v.sumPerShard(s.sources.Len(), func(i int, e *engine.Engine) []int64 {
		p := s.parts[i]
		return e.GroupCountCol(s.sources.Len(), p.Mentions.Source, s.l2gSrc[i])
	})
	top := engine.TopK(len(perSource), k, func(i int) int64 { return perSource[i] })
	for _, g := range top {
		ids = append(ids, int32(g))
		counts = append(counts, perSource[g])
	}
	return ids, counts
}

// ArticlesPerQuarter computes Figure 5 by summing per-shard quarter
// group-counts (quarter ids are global — every shard shares the Meta).
func (v *View) ArticlesPerQuarter() queries.QuarterlySeries {
	s := v.s
	nq := s.NumQuarters()
	vals := v.sumPerShard(nq, func(i int, e *engine.Engine) []int64 {
		p := s.parts[i]
		return e.GroupCountCol(nq, p.Mentions.Interval, p.QuarterLUT())
	})
	return queries.QuarterlySeries{Labels: v.quarterLabels(), Values: vals}
}

// EventsPerQuarter computes Figure 4 over the merged global event table.
func (v *View) EventsPerQuarter() queries.QuarterlySeries {
	s := v.s
	ev := &s.events
	qlut := s.parts[0].QuarterLUT()
	vals := v.groupCountEvents(s.NumQuarters(), func(i int) int {
		if ev.NumArticles[i] <= 0 {
			return -1
		}
		return int(qlut[ev.Interval[i]])
	})
	return queries.QuarterlySeries{Labels: v.quarterLabels(), Values: vals}
}

// ActiveSourcesPerQuarter computes Figure 3. A source's quarters of
// activity are the union over shards, so each shard fills its own
// source×quarter seen table (within one shard local sources map to
// distinct global rows, so the shard's inner loop is race-free even when
// parallel), the tables union through a merge tree — boolean OR is
// idempotent and commutative, so the fold shape is immaterial — and the
// per-quarter distinct counts come off the union.
func (v *View) ActiveSourcesPerQuarter() queries.QuarterlySeries {
	s := v.s
	nq := s.NumQuarters()
	ns := s.sources.Len()
	partials := make([][]bool, s.K())
	v.forEachShard(func(w *parallel.Worker, i int, _ *engine.Engine) {
		p := s.parts[i]
		remap := s.l2gSrc[i]
		seen := make([]bool, ns*nq)
		parallel.ForOpt(p.Sources.Len(), v.optW(w), func(lo, hi int) {
			for ls := lo; ls < hi; ls++ {
				rows := p.SourceMentions(int32(ls))
				if len(rows) == 0 {
					continue
				}
				base := int(remap[ls]) * nq
				for _, r := range rows {
					seen[base+p.QuarterOfInterval(p.Mentions.Interval[r])] = true
				}
			}
		})
		partials[i] = seen
	})
	live := partials[:0]
	for _, p := range partials {
		if p != nil {
			live = append(live, p)
		}
	}
	var seen []bool
	if len(live) > 0 {
		seen = parallel.MergeTree(live, func(dst, src []bool) []bool {
			for i, b := range src {
				if b {
					dst[i] = true
				}
			}
			return dst
		})
	} else {
		seen = make([]bool, ns*nq)
	}
	vals := make([]int64, nq)
	for g := 0; g < ns; g++ {
		for q := 0; q < nq; q++ {
			if seen[g*nq+q] {
				vals[q]++
			}
		}
	}
	return queries.QuarterlySeries{Labels: v.quarterLabels(), Values: vals}
}

// SlowArticlesPerQuarter computes Figure 11 via the per-shard typed
// filter→aggregate kernel.
func (v *View) SlowArticlesPerQuarter() queries.QuarterlySeries {
	s := v.s
	nq := s.NumQuarters()
	vals := v.sumPerShard(nq, func(i int, e *engine.Engine) []int64 {
		p := s.parts[i]
		return e.GroupCountColSel(nq, p.Mentions.Interval, p.QuarterLUT(),
			engine.PredGT(p.Mentions.Delay, gdelt.IntervalsPerDay))
	})
	return queries.QuarterlySeries{Labels: v.quarterLabels(), Values: vals}
}

// CountryQuery runs the aggregated country query (Tables V-VII). Pass 1
// fans the per-shard typed cross-count matrices out across the pool
// (country ids are global, so no remap is needed) and folds them through a
// merge tree; pass 2 builds per-event country bitmasks over global events,
// unioning each shard's slice of the event. Shards now scan concurrently,
// and one global event's mentions can span a shard boundary, so the
// cross-shard mask union is an atomic OR — commutative and idempotent,
// hence exact under any interleaving; within a shard distinct local events
// map to distinct global rows, so the atomic is one op per local event,
// not per mention row.
func (v *View) CountryQuery() (*queries.CountryReport, error) {
	s := v.s
	nc := len(gdelt.Countries)

	parts := make([]*matrix.Int64, s.K())
	v.forEachShard(func(_ *parallel.Worker, i int, e *engine.Engine) {
		p := s.parts[i]
		parts[i] = engine.CrossCountRemap(e, nc, nc,
			p.Mentions.EventRow, p.Events.Country,
			p.Mentions.Source, p.SourceCountry)
	})
	cross := matrix.NewInt64(nc, nc)
	liveParts := parts[:0]
	for _, m := range parts {
		if m != nil {
			liveParts = append(liveParts, m)
		}
	}
	if len(liveParts) > 0 {
		merged := parallel.MergeTree(liveParts, func(dst, src *matrix.Int64) *matrix.Int64 {
			if err := dst.AddMatrix(src); err != nil {
				panic(err) // identical nc×nc shapes by construction
			}
			parallel.PutInt64(src.Data)
			src.Data = nil
			return dst
		})
		// The merged partial is backed by a pooled buffer; fold it into a
		// caller-owned matrix and recycle the backing.
		if err := cross.AddMatrix(merged); err != nil {
			return nil, err
		}
		parallel.PutInt64(merged.Data)
		merged.Data = nil
	}

	masks := make([]uint64, s.events.Len())
	v.forEachShard(func(w *parallel.Worker, i int, _ *engine.Engine) {
		p := s.parts[i]
		remap := s.l2gEv[i]
		parallel.ForOpt(p.Events.Len(), v.optW(w), func(lo, hi int) {
			for le := lo; le < hi; le++ {
				rows := p.EventMentions(int32(le))
				if len(rows) == 0 {
					continue
				}
				var mask uint64
				for _, row := range rows {
					if c := p.SourceCountry[p.Mentions.Source[row]]; c >= 0 {
						mask |= 1 << uint(c)
					}
				}
				atomic.OrUint64(&masks[remap[le]], mask)
			}
		})
	})

	type partial struct {
		pair   *matrix.Int64
		counts []int64
	}
	res := parallel.MapReduce(s.events.Len(), v.opt(),
		func() *partial {
			return &partial{pair: matrix.NewInt64(nc, nc), counts: make([]int64, nc)}
		},
		func(acc *partial, lo, hi int) *partial {
			for ev := lo; ev < hi; ev++ {
				foldCountryMask(acc.pair, acc.counts, masks[ev])
			}
			return acc
		},
		func(dst, src *partial) *partial {
			if err := dst.pair.AddMatrix(src.pair); err != nil {
				panic(err)
			}
			for i, c := range src.counts {
				dst.counts[i] += c
			}
			return dst
		},
	)

	eventCounts := v.groupCountEvents(nc, func(ev int) int {
		if s.events.NumArticles[ev] <= 0 {
			return -1
		}
		return int(s.eventCountryLUT[ev])
	})
	return queries.FinishCountryReport(cross, res.pair, res.counts, eventCounts)
}

// foldCountryMask expands one event's reporting-country bitmask into the
// singleton and pair counters — the same bit loops as the monolith.
func foldCountryMask(pair *matrix.Int64, counts []int64, mask uint64) {
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		counts[i]++
		for m2 := m; m2 != 0; {
			j := bits.TrailingZeros64(m2)
			m2 &^= 1 << uint(j)
			pair.Inc(i, j)
			pair.Inc(j, i)
		}
	}
}

// PlanSelection resolves the physical plan for a selection query over the
// sharded store, mirroring engine.PlanSelection: forced modes pass through;
// PlanAuto estimates selectivity from the per-shard row-bitmap cardinalities
// of the selected sources against the total mention count.
func (v *View) PlanSelection(sources []int32) engine.PlanMode {
	m := v.plan
	if m == engine.PlanAuto {
		s := v.s
		selG := make([]bool, s.sources.Len())
		for _, src := range sources {
			selG[src] = true
		}
		// Per-shard cardinality sums land in shard-indexed slots and fold
		// afterwards (exact integer sums, any order).
		selP := make([]int64, s.K())
		nmP := make([]int64, s.K())
		v.forEachShard(func(_ *parallel.Worker, i int, _ *engine.Engine) {
			p := s.parts[i]
			nmP[i] = int64(p.Mentions.Len())
			remap := s.l2gSrc[i]
			for ls := 0; ls < p.Sources.Len(); ls++ {
				if selG[remap[ls]] {
					selP[i] += p.SourceRowBitmap(int32(ls)).Cardinality()
				}
			}
		})
		var sel, nm int64
		for i := range selP {
			sel += selP[i]
			nm += nmP[i]
		}
		m = engine.PlanRows
		if nm > 0 && float64(sel)/float64(nm) > engine.RowsPlanThreshold {
			m = engine.PlanEvents
		}
	}
	engine.ObservePlan(m)
	return m
}

// selection holds the per-shard execution plan for a global source
// selection: local slot lookup tables (local source id → selection index,
// -1 unselected), the ascending list of candidate global events, and —
// under the rows plan — per-shard CSRs of exactly the selected mention
// rows keyed by local event. Candidate events are discovered from the
// union of the selected sources' event bitmaps (O(containers) per source)
// rather than a walk over their postings; the scan plan skips discovery
// and lists every global event.
type selection struct {
	slots [][]int32
	evs   []int32
	// rows plan only: rowIdx[i][rowPtr[i][le]:rowPtr[i][le+1]] are shard
	// i's selected mention rows of local event le, ascending by interval.
	rowPtr [][]int32
	rowIdx [][]int32
}

func (v *View) selection(sources []int32, plan engine.PlanMode) *selection {
	s := v.s
	slotG := make([]int32, s.sources.Len())
	for i := range slotG {
		slotG[i] = -1
	}
	for i, src := range sources {
		slotG[src] = int32(i) // duplicates resolve to the last occurrence
	}
	sel := &selection{slots: make([][]int32, len(s.parts))}
	if plan == engine.PlanRows {
		sel.rowPtr = make([][]int32, len(s.parts))
		sel.rowIdx = make([][]int32, len(s.parts))
	}
	// Candidate discovery runs one fan-out job per shard: slot tables and
	// (under the rows plan) the per-shard CSR are shard-indexed, while the
	// candidate set is a shared bitset — one global event can be discovered
	// by two shards at once, so bits are set with atomic OR (idempotent and
	// commutative, exact under any interleaving).
	var candWords []uint64
	if plan != engine.PlanScan {
		candWords = make([]uint64, (s.events.Len()+63)/64)
	}
	v.forEachShard(func(_ *parallel.Worker, i int, _ *engine.Engine) {
		p := s.parts[i]
		slots := make([]int32, p.Sources.Len())
		for ls := range slots {
			slots[ls] = slotG[s.l2gSrc[i][ls]]
		}
		sel.slots[i] = slots
		if plan == engine.PlanScan {
			return
		}
		var bms []*bitmap.Bitmap
		for ls, sl := range slots {
			if sl >= 0 {
				bms = append(bms, p.SourceEventBitmap(int32(ls)))
			}
		}
		u := bitmap.UnionAll(bms)
		remap := s.l2gEv[i]
		u.ForEach(func(le int32) {
			ev := remap[le]
			atomic.OrUint64(&candWords[ev>>6], 1<<uint(ev&63))
		})
		if plan == engine.PlanRows {
			var rbms []*bitmap.Bitmap
			for ls, sl := range slots {
				if sl >= 0 {
					rbms = append(rbms, p.SourceRowBitmap(int32(ls)))
				}
			}
			ru := bitmap.UnionAll(rbms)
			rows := ru.AppendRows(make([]int32, 0, ru.Cardinality()))
			ptr := make([]int32, p.Events.Len()+1)
			for _, r := range rows {
				ptr[p.Mentions.EventRow[r]+1]++
			}
			for le := 0; le < p.Events.Len(); le++ {
				ptr[le+1] += ptr[le]
			}
			idx := make([]int32, len(rows))
			cur := make([]int32, p.Events.Len())
			for _, r := range rows {
				le := p.Mentions.EventRow[r]
				idx[ptr[le]+cur[le]] = r
				cur[le]++
			}
			sel.rowPtr[i], sel.rowIdx[i] = ptr, idx
		}
	})
	if plan == engine.PlanScan {
		sel.evs = make([]int32, s.events.Len())
		for ev := range sel.evs {
			sel.evs[ev] = int32(ev)
		}
		return sel
	}
	// Walking words in order and bits low-to-high yields the same ascending
	// candidate list as the sequential boolean walk did.
	for wi, word := range candWords {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			sel.evs = append(sel.evs, int32(wi*64+b))
		}
	}
	return sel
}

// shardRows calls f with each shard's mention rows for global event ev, in
// shard (= time) order: the full event mention lists, or — under the rows
// plan — only the selected rows. Within a shard rows ascend by interval and
// shards tile time in order, so the concatenation replays the monolith's
// ordering either way.
func (sel *selection) shardRows(s *DB, ev int32, f func(i int, rows []int32)) {
	if sel.rowPtr == nil {
		s.shardEventRows(ev, f)
		return
	}
	for i := range s.parts {
		if lr := s.g2lEv[i][ev]; lr >= 0 {
			ptr := sel.rowPtr[i]
			if rows := sel.rowIdx[i][ptr[lr]:ptr[lr+1]]; len(rows) > 0 {
				f(i, rows)
			}
		}
	}
}

// shardEventRows calls f with each shard's mention rows for global event
// ev, in shard (= time) order. Within a shard rows ascend by interval and
// shards tile time in order, so the concatenation replays the monolith's
// event-mention ordering.
func (s *DB) shardEventRows(ev int32, f func(i int, rows []int32)) {
	for i, p := range s.parts {
		if lr := s.g2lEv[i][ev]; lr >= 0 {
			if rows := p.EventMentions(lr); len(rows) > 0 {
				f(i, rows)
			}
		}
	}
}

// CoReport computes co-reporting among the selected global sources through
// the planner-resolved plan: selected rows only (rows), candidate events'
// full mention lists (events), or every global event (scan, forced only).
// All plans reduce through the same per-event fold and produce identical
// results.
func (v *View) CoReport(sources []int32) (*queries.CoReporting, error) {
	s := v.s
	n := len(sources)
	sel := v.selection(sources, v.PlanSelection(sources))
	type partial struct {
		pair   *matrix.Int64
		counts []int64
	}
	res := parallel.MapReduce(len(sel.evs), v.opt(),
		func() *partial {
			return &partial{pair: matrix.NewInt64(n, n), counts: make([]int64, n)}
		},
		func(acc *partial, lo, hi int) *partial {
			present := make([]int32, 0, 16)
			mark := make([]bool, n)
			for _, ev := range sel.evs[lo:hi] {
				present = present[:0]
				sel.shardRows(s, ev, func(i int, rows []int32) {
					p := s.parts[i]
					slots := sel.slots[i]
					for _, row := range rows {
						if sl := slots[p.Mentions.Source[row]]; sl >= 0 && !mark[sl] {
							mark[sl] = true
							present = append(present, sl)
						}
					}
				})
				for _, i := range present {
					mark[i] = false
					acc.counts[i]++
				}
				for a := 0; a < len(present); a++ {
					for b := a + 1; b < len(present); b++ {
						acc.pair.Inc(int(present[a]), int(present[b]))
						acc.pair.Inc(int(present[b]), int(present[a]))
					}
				}
			}
			return acc
		},
		func(dst, src *partial) *partial {
			if err := dst.pair.AddMatrix(src.pair); err != nil {
				panic(err)
			}
			for i, c := range src.counts {
				dst.counts[i] += c
			}
			return dst
		},
	)
	return queries.FinishCoReporting(sources, v.sourceNames(sources), res.counts, res.pair)
}

// FollowReport computes follow-reporting among the selected global
// sources. The per-event leader state (firstSeen/touched) persists across
// the event's shard segments — one event's mentions may span several
// shards, and the fold must see them as one ascending-interval stream.
func (v *View) FollowReport(sources []int32) *queries.FollowReporting {
	s := v.s
	n := len(sources)
	sel := v.selection(sources, v.PlanSelection(sources))
	nm := parallel.MapReduce(len(sel.evs), v.opt(),
		func() *matrix.Int64 { return matrix.NewInt64(n, n) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			firstSeen := make([]int32, n)
			for i := range firstSeen {
				firstSeen[i] = -1
			}
			touched := make([]int32, 0, 16)
			for _, ev := range sel.evs[lo:hi] {
				sel.shardRows(s, ev, func(i int, rows []int32) {
					p := s.parts[i]
					slots := sel.slots[i]
					for _, row := range rows {
						j := slots[p.Mentions.Source[row]]
						if j < 0 {
							continue
						}
						t := p.Mentions.Interval[row]
						for _, l := range touched {
							if firstSeen[l] < t {
								acc.Inc(int(l), int(j))
							}
						}
						if firstSeen[j] < 0 {
							firstSeen[j] = t
							touched = append(touched, j)
						}
					}
				})
				for _, l := range touched {
					firstSeen[l] = -1
				}
				touched = touched[:0]
			}
			return acc
		},
		func(dst, src *matrix.Int64) *matrix.Int64 {
			if err := dst.AddMatrix(src); err != nil {
				panic(err)
			}
			return dst
		},
	)
	articles := make([]int64, n)
	for i, src := range sources {
		articles[i] = v.sourceArticles(src)
	}
	return queries.FinishFollowReporting(sources, v.sourceNames(sources), articles, nm)
}

func (v *View) sourceNames(sources []int32) []string {
	names := make([]string, 0, len(sources))
	for _, src := range sources {
		names = append(names, v.s.sources.Name(src))
	}
	return names
}

// sourceArticles sums a global source's postings lengths over the shards
// holding it (full archive, window-insensitive like the monolith).
func (v *View) sourceArticles(src int32) int64 {
	var total int64
	name := v.s.sources.Name(src)
	for _, p := range v.s.parts {
		if ls := p.Sources.Lookup(name); ls >= 0 {
			total += int64(len(p.SourceMentions(ls)))
		}
	}
	return total
}

// PublisherDelays computes Table VIII rows for the given global sources,
// concatenating each source's per-shard delay streams (the monolith sorts
// the stream anyway, so segment order is immaterial).
func (v *View) PublisherDelays(sources []int32) []queries.SourceDelayStats {
	s := v.s
	out := make([]queries.SourceDelayStats, len(sources))
	parallel.ForOpt(len(sources), v.opt(), func(lo, hi int) {
		var buf []int64
		for i := lo; i < hi; i++ {
			src := sources[i]
			name := s.sources.Name(src)
			st := queries.SourceDelayStats{Source: src, Name: name}
			buf = buf[:0]
			var agg stats.IntSummary
			for _, p := range s.parts {
				ls := p.Sources.Lookup(name)
				if ls < 0 {
					continue
				}
				for _, r := range p.SourceMentions(ls) {
					d := int64(p.Mentions.Delay[r])
					agg.Add(d)
					buf = append(buf, d)
				}
			}
			st.Articles = int64(len(buf))
			if len(buf) > 0 {
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				st.Min, st.Max, st.Average = agg.Min, agg.Max, agg.Mean()
				st.Median = buf[(len(buf)-1)/2] // lower median
			}
			out[i] = st
		}
	})
	return out
}

// QuarterlyDelays computes Figure 10; each quarter's exact value→count
// table accumulates over every shard's slice of the quarter.
func (v *View) QuarterlyDelays() queries.QuarterlyDelay {
	s := v.s
	nq := s.NumQuarters()
	out := queries.QuarterlyDelay{
		Labels:  v.quarterLabels(),
		Average: make([]float64, nq),
		Median:  make([]int64, nq),
	}
	parallel.ForOpt(nq, v.grain1(), func(qlo, qhi int) {
		ct := stats.NewCountTable(maxDelay)
		for q := qlo; q < qhi; q++ {
			for i := range ct.Counts {
				ct.Counts[i] = 0
			}
			ct.N = 0
			for _, p := range s.parts {
				lo, hi := p.QuarterMentionRange(q)
				for r := lo; r < hi; r++ {
					ct.Add(int64(p.Mentions.Delay[r]))
				}
			}
			if ct.N > 0 {
				out.Average[q] = ct.Mean()
				out.Median[q] = ct.Median()
			}
		}
	})
	return out
}

// FastSpreadingEvents ranks global events by distinct early reporters.
// Early sources are keyed by global id; the shard walk stops at the first
// shard starting at or past the cutoff (later shards hold only later
// mentions).
func (v *View) FastSpreadingEvents(window int32, minSources, k int) []queries.Wildfire {
	s := v.s
	if window < 1 {
		window = 1
	}
	candidates := parallel.MapReduce(s.events.Len(), v.opt(),
		func() []queries.Wildfire { return nil },
		func(acc []queries.Wildfire, lo, hi int) []queries.Wildfire {
			seen := map[int32]bool{}
			for ev := lo; ev < hi; ev++ {
				total := 0
				for i, p := range s.parts {
					if lr := s.g2lEv[i][ev]; lr >= 0 {
						total += len(p.EventMentions(lr))
					}
				}
				if total < minSources {
					continue
				}
				cutoff := s.events.Interval[ev] + window
				clear(seen)
				early := 0
				for i, p := range s.parts {
					if s.bounds[i] >= cutoff {
						break // every remaining mention is past the window
					}
					lr := s.g2lEv[i][ev]
					if lr < 0 {
						continue
					}
					remap := s.l2gSrc[i]
					for _, r := range p.EventMentions(lr) {
						if p.Mentions.Interval[r] >= cutoff {
							break // postings are interval-sorted
						}
						early++
						seen[remap[p.Mentions.Source[r]]] = true
					}
				}
				if len(seen) < minSources {
					continue
				}
				acc = append(acc, queries.Wildfire{
					EventRow:      int32(ev),
					EventID:       s.events.ID[ev],
					SourceURL:     s.events.SourceURL[ev],
					EarlySources:  len(seen),
					EarlyArticles: early,
					TotalArticles: s.events.NumArticles[ev],
					Velocity:      float64(len(seen)) / float64(window),
				})
			}
			return acc
		},
		func(dst, src []queries.Wildfire) []queries.Wildfire { return append(dst, src...) },
	)
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].EarlySources != candidates[b].EarlySources {
			return candidates[a].EarlySources > candidates[b].EarlySources
		}
		return candidates[a].EventID < candidates[b].EventID
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}
