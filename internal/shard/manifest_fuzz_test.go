package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

// tinyShardedWorld builds a miniature sharded DB (GKG included) plus its
// encoded manifest — small enough to keep the fuzz corpus light while
// exercising every manifest section.
func tinyShardedWorld(tb testing.TB) (*DB, []byte) {
	tb.Helper()
	cfg := gen.Config{
		Seed:             7,
		Start:            20150218000000,
		End:              20150310000000,
		Sources:          20,
		EventsPerDay:     3,
		MediaGroupSize:   5,
		HeadlineEvents:   1,
		UntaggedFraction: 0.1,
		PopularityAlpha:  2.2,
		IntervalsPerFile: 96,
		GKG:              true,
	}
	c, err := gen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		tb.Fatal(err)
	}
	sdb, err := Split(res.DB, 3)
	if err != nil {
		tb.Fatal(err)
	}
	files := make([]string, sdb.K())
	for i := range files {
		files[i] = "part" + strconv.Itoa(i)
	}
	m, err := ManifestFromDB(sdb, files)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return sdb, buf.Bytes()
}

// manifestFuzzSeeds are the interesting starting points: a fully valid
// manifest, truncations at the header and mid-section, a corrupt magic,
// and bit flips landing in tags, lengths, varints, name bytes, and CRCs.
func manifestFuzzSeeds(tb testing.TB) map[string][]byte {
	_, valid := tinyShardedWorld(tb)
	seeds := map[string][]byte{
		"valid":        valid,
		"truncated":    valid[:len(valid)/2],
		"header-only":  valid[:5],
		"short-header": []byte("GDS"),
		"bad-magic":    append([]byte("XXXX"), valid[4:]...),
	}
	for _, off := range []int{4, 6, len(valid) / 3, 2 * len(valid) / 3, len(valid) - 3} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		seeds["flip-"+strconv.Itoa(off)] = mut
	}
	return seeds
}

// FuzzManifestDecode asserts the manifest decoder's contract on arbitrary
// bytes: DecodeManifest either errors or returns a manifest that (a)
// survives an encode/decode round trip and (b) can be fed to
// AssembleSharded without panicking — corrupt manifests must surface as
// errors, never as crashes, because LoadFile hands attacker-adjacent disk
// bytes straight to this path. The checked-in corpus under
// testdata/fuzz/FuzzManifestDecode replays known-interesting inputs on
// every plain `go test` run.
func FuzzManifestDecode(f *testing.F) {
	for _, seed := range manifestFuzzSeeds(f) {
		f.Add(seed)
	}
	sdb, _ := tinyShardedWorld(f)
	parts := make([]*store.DB, sdb.K())
	for i := range parts {
		parts[i] = sdb.Part(i)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return // rejected input; the contract is only "no panic"
		}
		var buf bytes.Buffer
		if err := EncodeManifest(&buf, m); err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		if _, err := DecodeManifest(&buf); err != nil {
			t.Fatalf("re-decoding accepted manifest: %v", err)
		}
		// Assembly against real part stores must never panic, whatever the
		// manifest claims about entry ranges, dictionaries, or meta.
		if s, err := AssembleSharded(m, parts); err == nil {
			if got := s.EventCount(); got != sdb.EventCount() {
				t.Fatalf("accepted manifest assembled %d events, want %d", got, sdb.EventCount())
			}
		}
	})
}

// TestWriteManifestFuzzSeedCorpus regenerates the checked-in seed corpus.
// It is a no-op unless GDELT_UPDATE_FUZZ_CORPUS=1 is set, the same pattern
// as a golden-file -update flag.
func TestWriteManifestFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("GDELT_UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set GDELT_UPDATE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzManifestDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range manifestFuzzSeeds(t) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
