// Package shard_test holds the shard tests that need the streaming layer:
// stream imports shard (Monitor.BindSharded), so these live outside the
// shard package to keep the import graph acyclic.
package shard_test

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/stream"
)

func buildSharded(t *testing.T, k int) *shard.DB {
	t.Helper()
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := shard.Split(res.DB, k)
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

// TestTailAppendInvalidatesOnlyTailWindows is the regression test for the
// stale-aggregate bug class the per-shard version vector exists to kill:
// a stream append lands in the tail shard, so any cached result whose
// window overlaps the tail must go stale — and, the other half of the
// contract, results over cold shards must STAY warm. Before cache keys
// carried per-shard versions, a tail append could keep serving a stale
// cross-shard aggregate (same kind+params+window key, version check passed
// by the untouched shard the query was keyed on).
func TestTailAppendInvalidatesOnlyTailWindows(t *testing.T) {
	sdb := buildSharded(t, 3)
	ex := &registry.Executor{Cache: qcache.New(0)}
	ex.Cache.SetStale(sdb.StaleKey)

	d := registry.MustLookup("count")
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	full := sdb.View()                                // crosses every shard, tail included
	cold := sdb.View().WithWindow(0, sdb.Bounds()[1]) // first shard only

	run := func(v *shard.View) qcache.Outcome {
		t.Helper()
		res, out, err := ex.ExecuteSharded(d, v, p)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatal("nil result")
		}
		return out
	}

	if out := run(full); out != qcache.Miss {
		t.Fatalf("first full-window run: %v, want miss", out)
	}
	if out := run(full); out != qcache.Hit {
		t.Fatalf("second full-window run: %v, want hit", out)
	}
	if out := run(cold); out != qcache.Miss {
		t.Fatalf("first cold-window run: %v, want miss", out)
	}
	if out := run(cold); out != qcache.Hit {
		t.Fatalf("second cold-window run: %v, want hit", out)
	}

	// A feed chunk arrives: the monitor is bound to the sharded store, so
	// the append bumps ONLY the tail shard's version.
	mon := stream.NewMonitor(sdb.Meta().Start, stream.Config{})
	mon.BindSharded(sdb)
	tailBefore := sdb.Tail().Version()
	mon.MarkChunk(sdb.Meta().Start)
	if got := sdb.Tail().Version(); got != tailBefore+1 {
		t.Fatalf("tail version %d after MarkChunk, want %d", got, tailBefore+1)
	}
	if got := sdb.Part(0).Version(); got != 0 {
		t.Fatalf("cold shard version bumped to %d by a tail append", got)
	}

	if out := run(full); out != qcache.Miss {
		t.Fatalf("full-window run after tail append: %v, want miss (stale aggregate!)", out)
	}
	if out := run(cold); out != qcache.Hit {
		t.Fatalf("cold-window run after tail append: %v, want hit (cold shard untouched)", out)
	}
}

// TestStaleKeyUnparseableWindow: keys whose window string the shard layer
// cannot re-derive (foreign formats, corruption) must read as stale — the
// conservative direction.
func TestStaleKeyUnparseableWindow(t *testing.T) {
	sdb := buildSharded(t, 2)
	for _, win := range []string{"", "0:10", "iv0:10", "ivx:y/v0", "iv0:10/vnope"} {
		k := qcache.Key{Kind: "count", Window: win}
		if !sdb.StaleKey(k) {
			t.Errorf("StaleKey(%q) = false, want true for unparseable window", win)
		}
	}
}

// TestWriteLoadRoundTrip pins the on-disk layout: WriteFiles then LoadFile
// reproduces a sharded DB that answers queries identically.
func TestWriteLoadRoundTrip(t *testing.T) {
	sdb := buildSharded(t, 3)
	path := t.TempDir() + "/world.shards"
	if err := shard.WriteFiles(path, sdb); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != sdb.K() || loaded.EventCount() != sdb.EventCount() {
		t.Fatalf("loaded K=%d events=%d, want K=%d events=%d",
			loaded.K(), loaded.EventCount(), sdb.K(), sdb.EventCount())
	}
	a := sdb.View().Dataset()
	b := loaded.View().Dataset()
	if a != b {
		t.Fatalf("loaded dataset stats %+v differ from original %+v", b, a)
	}
}
