// Append-log tests: copy-on-write snapshot isolation, seal mechanics and
// version carry-forward, cache-key safety across a seal, and the durable
// persist/reopen round trip. The crash harness that kills the persist
// protocol at every step lives in crash_test.go; the full query-equality
// battery (every registry kind, 2 seeds x K x workers) lives in
// internal/baseline/compaction_differential_test.go.
package shard_test

import (
	"reflect"
	"testing"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// logWorldCfg is a deliberately tiny corpus (~3.5 months, 40 sources) so
// the crash harness can rebuild it once per protocol step.
func logWorldCfg() gen.Config {
	c := gen.Small()
	c.End = 20150601000000
	c.Sources = 40
	c.GKG = false
	c.DefectMalformedMaster = 0
	c.DefectMissingArchives = 0
	return c
}

// buildPrefix assembles a monolith from the corpus with mentions
// restricted to intervals below cut (all events are always included; the
// builder recounts their metadata from the retained mentions), mirroring
// internal/baseline's buildTruncated.
func buildPrefix(t *testing.T, c *gen.Corpus, cut int32) *store.DB {
	t.Helper()
	b, err := store.NewBuilder(gdelt.Timestamp(c.World.Cfg.Start),
		int32(c.World.Days()*gdelt.IntervalsPerDay))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	for j := range c.Mentions {
		if c.Mentions[j].Interval >= cut {
			continue
		}
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
	}
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mentionChunks groups the corpus mentions at or past cut into feed ticks
// of step capture intervals each, in interval order — the shape the live
// poller folds.
func mentionChunks(c *gen.Corpus, cut, step int32) [][]gdelt.Mention {
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	var chunks [][]gdelt.Mention
	for lo := cut; lo < iv; lo += step {
		hi := lo + step
		var ch []gdelt.Mention
		for j := range c.Mentions {
			if m := c.Mentions[j]; m.Interval >= lo && m.Interval < hi {
				ch = append(ch, c.MentionRecord(j))
			}
		}
		if len(ch) > 0 {
			chunks = append(chunks, ch)
		}
	}
	return chunks
}

// runKind executes one registry kind on a sharded snapshot.
func runKind(t *testing.T, s *shard.DB, kind string) any {
	t.Helper()
	d := registry.MustLookup(kind)
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.RunSharded(s.View().WithWorkers(2).WithKind(kind), p)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return got
}

var logProbeKinds = []string{"stats", "top-publishers", "country", "series-articles"}

func TestLogAppendSnapshotIsolation(t *testing.T) {
	c, err := gen.Generate(logWorldCfg())
	if err != nil {
		t.Fatal(err)
	}
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := iv - 14*gdelt.IntervalsPerDay
	sdb, err := shard.Split(buildPrefix(t, c, cut), 2)
	if err != nil {
		t.Fatal(err)
	}
	lg := shard.NewLog(sdb)

	snap0 := lg.Snapshot()
	before := map[string]any{}
	for _, k := range logProbeKinds {
		before[k] = runKind(t, snap0, k)
	}
	rows0 := snap0.Tail().Mentions.Len()
	srcs0 := snap0.Sources().Len()
	v0 := snap0.Tail().Version()

	chunks := mentionChunks(c, cut, 2*gdelt.IntervalsPerDay)
	if len(chunks) < 3 {
		t.Fatalf("world too small: %d chunks", len(chunks))
	}
	var appended int
	for _, ch := range chunks {
		st, err := lg.Append(nil, ch)
		if err != nil {
			t.Fatal(err)
		}
		appended += st.AppendedMentions
	}
	if appended == 0 {
		t.Fatal("no mentions appended")
	}

	// The old snapshot is byte-for-byte the world it was: same tail rows,
	// same dictionary, same version, same answers.
	if got := snap0.Tail().Mentions.Len(); got != rows0 {
		t.Fatalf("pre-append snapshot tail grew: %d -> %d rows", rows0, got)
	}
	if got := snap0.Sources().Len(); got != srcs0 {
		t.Fatalf("pre-append snapshot dictionary grew: %d -> %d", srcs0, got)
	}
	if got := snap0.Tail().Version(); got != v0 {
		t.Fatalf("pre-append snapshot version moved: %d -> %d", v0, got)
	}
	for _, k := range logProbeKinds {
		if got := runKind(t, snap0, k); !reflect.DeepEqual(got, before[k]) {
			t.Errorf("%s: answer on the old snapshot changed after appends", k)
		}
	}

	// The published snapshot has the folds, and its version advanced once
	// per append.
	snap1 := lg.Snapshot()
	if got := snap1.Tail().Mentions.Len(); got != rows0+appended {
		t.Fatalf("published tail has %d rows, want %d", got, rows0+appended)
	}
	if got, want := snap1.Tail().Version(), v0+uint64(len(chunks)); got != want {
		t.Fatalf("published tail version %d, want %d", got, want)
	}
	// Cold shards share mention storage with the old snapshot (COW, not a
	// full copy) but never its per-event metadata columns.
	if &snap0.Part(0).Mentions.Interval[0] != &snap1.Part(0).Mentions.Interval[0] {
		t.Error("cold shard mention columns were copied; expected sharing")
	}
	if &snap0.Part(0).Events.NumArticles[0] == &snap1.Part(0).Events.NumArticles[0] {
		t.Error("cold shard event metadata shared across append; adoption would race readers")
	}
}

func TestLogSealEquivalenceAndVersions(t *testing.T) {
	c, err := gen.Generate(logWorldCfg())
	if err != nil {
		t.Fatal(err)
	}
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := iv - 14*gdelt.IntervalsPerDay
	sdb, err := shard.Split(buildPrefix(t, c, cut), 2)
	if err != nil {
		t.Fatal(err)
	}
	lg := shard.NewLog(sdb)
	for _, ch := range mentionChunks(c, cut, 4*gdelt.IntervalsPerDay)[:2] {
		if _, err := lg.Append(nil, ch); err != nil {
			t.Fatal(err)
		}
	}
	pre := lg.Snapshot()
	before := map[string]any{}
	for _, k := range logProbeKinds {
		before[k] = runKind(t, pre, k)
	}
	tailV := pre.Tail().Version()

	sealed, err := lg.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !sealed {
		t.Fatal("Seal declined with a non-empty tail and interval headroom")
	}
	post := lg.Snapshot()
	if got, want := post.K(), pre.K()+1; got != want {
		t.Fatalf("K after seal %d, want %d", got, want)
	}
	b := post.Bounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing after seal: %v", b)
		}
	}
	// The sealed part and the fresh tail both carry the old tail's version
	// forward — resetting to zero could let a cache key minted before the
	// seal match a later world with different data.
	if got := post.Part(post.K() - 2).Version(); got != tailV {
		t.Fatalf("sealed part version %d, want carried-forward %d", got, tailV)
	}
	if got := post.Tail().Version(); got != tailV {
		t.Fatalf("fresh tail version %d, want carried-forward %d", got, tailV)
	}
	if got := post.Tail().Mentions.Len(); got != 0 {
		t.Fatalf("fresh tail holds %d rows; the seal cut should drain it", got)
	}
	for _, k := range logProbeKinds {
		if got := runKind(t, post, k); !reflect.DeepEqual(got, before[k]) {
			t.Errorf("%s: answer changed across a seal", k)
		}
	}

	// Sealing an empty tail is a no-op.
	if again, err := lg.Seal(); err != nil || again {
		t.Fatalf("Seal on empty tail: (%v, %v), want (false, nil)", again, err)
	}

	// Appends keep working against the fresh tail.
	rest := mentionChunks(c, cut, 4*gdelt.IntervalsPerDay)[2:]
	if len(rest) == 0 {
		t.Fatal("no chunks left after the seal point")
	}
	if _, err := lg.Append(nil, rest[0]); err != nil {
		t.Fatalf("append after seal: %v", err)
	}
	if got := lg.Snapshot().Tail().Version(); got != tailV+1 {
		t.Fatalf("tail version after post-seal append %d, want %d", got, tailV+1)
	}
}

// TestLogSealCacheKeySafety pins the concrete collision the version
// carry-forward prevents: a window over the not-yet-filled interval range
// is cached before a seal; after the seal the same window maps to the
// fresh tail, new ticks fill it, and the recomputed key must differ from
// the cached one. If the fresh tail restarted at version zero and then
// took exactly tailV appends, the stale pre-seal answer would be served
// for changed data.
func TestLogSealCacheKeySafety(t *testing.T) {
	c, err := gen.Generate(logWorldCfg())
	if err != nil {
		t.Fatal(err)
	}
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := iv - 14*gdelt.IntervalsPerDay
	sdb, err := shard.Split(buildPrefix(t, c, cut), 2)
	if err != nil {
		t.Fatal(err)
	}
	lg := shard.NewLog(sdb)
	chunks := mentionChunks(c, cut, 2*gdelt.IntervalsPerDay)
	// Fill half the tail range, so the seal cut lands mid-tail and the
	// remaining chunks target the fresh tail's window.
	half := len(chunks) / 2
	for _, ch := range chunks[:half] {
		if _, err := lg.Append(nil, ch); err != nil {
			t.Fatal(err)
		}
	}

	ex := &registry.Executor{Cache: qcache.New(0)}
	ex.Cache.SetStale(func(k qcache.Key) bool { return lg.Snapshot().StaleKey(k) })
	d := registry.MustLookup("top-publishers")
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	pre := lg.Snapshot()
	tailMid := pre.Tail().Mentions.Interval[pre.Tail().Mentions.Len()-1] + 1
	win := func(s *shard.DB) *shard.View { return s.View().WithWindow(tailMid, iv) }
	run := func(s *shard.DB) (any, qcache.Outcome) {
		t.Helper()
		res, out, err := ex.ExecuteSharded(d, win(s).WithKind(d.Kind), p)
		if err != nil {
			t.Fatal(err)
		}
		return res, out
	}
	empty, out := run(pre)
	if out != qcache.Miss {
		t.Fatalf("first windowed run: %v, want miss", out)
	}
	if _, out = run(pre); out != qcache.Hit {
		t.Fatalf("warm windowed run: %v, want hit", out)
	}

	if sealed, err := lg.Seal(); err != nil || !sealed {
		t.Fatalf("seal: (%v, %v)", sealed, err)
	}
	for _, ch := range chunks[half:] {
		if _, err := lg.Append(nil, ch); err != nil {
			t.Fatal(err)
		}
	}
	res, out := run(lg.Snapshot())
	if out == qcache.Hit {
		t.Fatal("post-seal query over freshly filled window served from the pre-seal cache entry")
	}
	if reflect.DeepEqual(res, empty) {
		t.Fatal("post-seal window answer identical to the pre-fill answer; expected new data")
	}
}

func TestLogPersistRoundTrip(t *testing.T) {
	c, err := gen.Generate(logWorldCfg())
	if err != nil {
		t.Fatal(err)
	}
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := iv - 14*gdelt.IntervalsPerDay
	sdb, err := shard.Split(buildPrefix(t, c, cut), 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := shard.CreateLog(dir, sdb)
	if err != nil {
		t.Fatal(err)
	}
	chunks := mentionChunks(c, cut, 2*gdelt.IntervalsPerDay)
	for i, ch := range chunks {
		if _, err := lg.Append(nil, ch); err != nil {
			t.Fatal(err)
		}
		if i == len(chunks)/2 {
			if sealed, err := lg.Seal(); err != nil || !sealed {
				t.Fatalf("mid-stream seal: (%v, %v)", sealed, err)
			}
		}
	}
	if sealed, err := lg.Seal(); err != nil || !sealed {
		t.Fatalf("final seal: (%v, %v)", sealed, err)
	}
	want := lg.Snapshot()

	re, err := shard.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := re.Snapshot()
	if got.K() != want.K() {
		t.Fatalf("reopened K %d, want %d", got.K(), want.K())
	}
	if !reflect.DeepEqual(got.Bounds(), want.Bounds()) {
		t.Fatalf("reopened bounds %v, want %v", got.Bounds(), want.Bounds())
	}
	for i := 0; i < want.K(); i++ {
		if g, w := got.Part(i).Mentions.Len(), want.Part(i).Mentions.Len(); g != w {
			t.Errorf("part %d: %d mention rows reopened, want %d", i, g, w)
		}
	}
	for _, k := range logProbeKinds {
		if !reflect.DeepEqual(runKind(t, got, k), runKind(t, want, k)) {
			t.Errorf("%s: reopened log answers differently", k)
		}
	}
	if re.Gen() < lg.Gen() {
		t.Errorf("reopened generation %d below writer's %d; a future seal could collide", re.Gen(), lg.Gen())
	}
}
