// Crash-safety harness for the append log's persist protocol: a recording
// run enumerates every write/rename/fsync step of one seal, then the same
// workload is replayed once per step with internal/faults.FSPlan killing
// the compactor at exactly that point. Reopening the log directory after
// each simulated crash must yield a fully-old or fully-new world — never a
// torn mix, never a load error — where "old" is the world as of the last
// successful persist (appended ticks are in-memory by contract and are
// re-folded from the feed on recovery).
package shard_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/shard"
)

// crashWorld captures the comparable identity of a sharded world.
type crashWorld struct {
	k       int
	bounds  []int32
	rows    []int
	answers map[string]any
}

func captureWorld(t *testing.T, s *shard.DB) crashWorld {
	t.Helper()
	w := crashWorld{k: s.K(), bounds: s.Bounds(), answers: map[string]any{}}
	for i := 0; i < s.K(); i++ {
		w.rows = append(w.rows, s.Part(i).Mentions.Len())
	}
	for _, k := range logProbeKinds {
		w.answers[k] = runKind(t, s, k)
	}
	return w
}

func sameWorld(a, b crashWorld) bool {
	return a.k == b.k && reflect.DeepEqual(a.bounds, b.bounds) &&
		reflect.DeepEqual(a.rows, b.rows) && reflect.DeepEqual(a.answers, b.answers)
}

func TestLogCrashSafetyEveryStep(t *testing.T) {
	c, err := gen.Generate(logWorldCfg())
	if err != nil {
		t.Fatal(err)
	}
	iv := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := iv - 10*gdelt.IntervalsPerDay
	chunks := mentionChunks(c, cut, 3*gdelt.IntervalsPerDay)
	if len(chunks) < 2 {
		t.Fatalf("world too small: %d chunks", len(chunks))
	}

	// setup replays the identical workload into a fresh directory and
	// stops right before the seal under test.
	setup := func(t *testing.T) *shard.Log {
		t.Helper()
		sdb, err := shard.Split(buildPrefix(t, c, cut), 2)
		if err != nil {
			t.Fatal(err)
		}
		lg, err := shard.CreateLog(t.TempDir(), sdb)
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range chunks {
			if _, err := lg.Append(nil, ch); err != nil {
				t.Fatal(err)
			}
		}
		return lg
	}

	// Recording run: a clean seal, enumerating the protocol's steps and
	// pinning the legal post-crash worlds. oldDisk is the last persisted
	// world (appends are in-memory until a seal lands); oldMem is the
	// published snapshot a failed seal must leave untouched.
	sdb0, err := shard.Split(buildPrefix(t, c, cut), 2)
	if err != nil {
		t.Fatal(err)
	}
	oldDisk := captureWorld(t, sdb0)
	rec := &faults.FSPlan{}
	lg := setup(t)
	oldMem := captureWorld(t, lg.Snapshot())
	lg.SetStepHook(rec.Hook)
	if sealed, err := lg.Seal(); err != nil || !sealed {
		t.Fatalf("recording seal: (%v, %v)", sealed, err)
	}
	newWorld := captureWorld(t, lg.Snapshot())
	steps := rec.Steps()
	if len(steps) < 7 {
		t.Fatalf("recorded only %d protocol steps: %v", len(steps), steps)
	}
	if sameWorld(oldDisk, newWorld) || sameWorld(oldMem, newWorld) {
		t.Fatal("seal did not change the world; the harness would prove nothing")
	}
	// The protocol must end with the publication steps, in order.
	tailOps := []string{shard.OpWriteManifest, shard.OpSyncManifest, shard.OpRenameManifest, shard.OpSyncDir}
	for i, op := range tailOps {
		if got := steps[len(steps)-len(tailOps)+i].Op; got != op {
			t.Fatalf("protocol step %d from the end is %s, want %s (steps: %v)", len(tailOps)-i, got, op, steps)
		}
	}

	var sawOld, sawNew int
	for fail := 1; fail <= len(steps); fail++ {
		fail := fail
		t.Run(fmt.Sprintf("step%02d-%s", fail, steps[fail-1].Op), func(t *testing.T) {
			lg := setup(t)
			plan := &faults.FSPlan{FailStep: fail}
			lg.SetStepHook(plan.Hook)
			sealed, err := lg.Seal()
			if err == nil {
				t.Fatalf("seal survived an injected crash at step %d", fail)
			}
			var crash *faults.ErrInjectedCrash
			if !errors.As(err, &crash) {
				t.Fatalf("seal failed with %v, not the injected crash", err)
			}
			if sealed {
				t.Fatal("seal reported success alongside an error")
			}
			// The in-memory world must still be the appended one (the
			// process, had it survived, keeps serving and retries later).
			if got := captureWorld(t, lg.Snapshot()); !sameWorld(got, oldMem) {
				t.Fatal("failed seal left a mutated in-memory world published")
			}
			// Simulated restart: reopen the directory cold.
			re, err := shard.OpenLog(lg.Dir())
			if err != nil {
				t.Fatalf("reopening after crash at step %d: %v", fail, err)
			}
			got := captureWorld(t, re.Snapshot())
			switch {
			case sameWorld(got, oldDisk):
				sawOld++
				if steps[fail-1].Op == shard.OpSyncDir {
					t.Error("crash after the manifest rename recovered the old world")
				}
				// Real recovery: re-fold the lost ticks (the live poller
				// replays them from the feed), then seal again — the
				// directory must not have been poisoned by the crash.
				for _, ch := range chunks {
					if _, err := re.Append(nil, ch); err != nil {
						t.Fatalf("replaying ticks after recovery: %v", err)
					}
				}
				if sealed, err := re.Seal(); err != nil || !sealed {
					t.Fatalf("post-recovery seal: (%v, %v)", sealed, err)
				}
				if got := captureWorld(t, re.Snapshot()); !sameWorld(got, newWorld) {
					t.Fatal("post-recovery replay+seal did not converge to the sealed world")
				}
			case sameWorld(got, newWorld):
				sawNew++
				// Only a crash at the final fsync-dir step (the hook fires
				// before the operation it names, so the manifest rename has
				// already happened) may surface the new world.
				if op := steps[fail-1].Op; op != shard.OpSyncDir {
					t.Errorf("crash at %s (step %d) surfaced the new world before the manifest rename", op, fail)
				}
				// Nothing was lost, nothing to seal.
				if sealed, err := re.Seal(); err != nil || sealed {
					t.Fatalf("seal on fully-new recovery: (%v, %v), want (false, nil)", sealed, err)
				}
			default:
				t.Fatalf("crash at step %d (%s) left a TORN world: k=%d bounds=%v rows=%v",
					fail, steps[fail-1].Op, got.k, got.bounds, got.rows)
			}
		})
	}
	if sawOld == 0 || sawNew == 0 {
		t.Fatalf("harness never saw both outcomes (old %d, new %d); kill points are not covering the protocol", sawOld, sawNew)
	}
}
