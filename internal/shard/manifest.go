package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gdeltmine/internal/binfmt"
	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// The shard manifest is a small sectioned binary file (magic "GDSM",
// mirroring the GDMB container of internal/binfmt): after the header, each
// section is a tag byte, a uvarint payload length, the payload, and a
// CRC32 (IEEE) of the payload. Sections: one meta, one entry per shard
// (file name + interval range), the global source-name list, and an
// optional global theme-name list. The global dictionaries travel as
// ordered name lists — the local→global remaps are re-derived by name at
// assembly, so there are no index arrays to corrupt. The decoder is
// defensive end to end: every length is bounded before allocation and
// every failure is an error, never a panic (FuzzManifestDecode pins this).

// Magic identifies a shard manifest file.
var Magic = [4]byte{'G', 'D', 'S', 'M'}

// manifestVersion is the format version this package writes. Version 1
// manifests (no bitmap sections) and version 2 manifests (source-row
// bitmaps only, no value bitmaps) are still accepted: every bitmap is
// derivable, so the sections are an integrity cross-check, not a
// requirement.
const manifestVersion = 3

// minManifestVersion is the oldest version the decoder accepts.
const minManifestVersion = 1

const (
	secMeta    = 0x01
	secEntry   = 0x02
	secSources = 0x03
	secThemes  = 0x04
	secBitmaps = 0x05
	// Version 3 value-bitmap sections (qlang predicate pushdown,
	// DESIGN.md §13): per-shard mention-row bitmaps keyed by publisher
	// country, event country, and calendar quarter.
	secCountryBM   = 0x06
	secEvCountryBM = 0x07
	secQuarterBM   = 0x08
	secEnd         = 0xFF
)

// Decoder allocation caps: far above anything a real manifest holds, low
// enough that a corrupt length cannot balloon memory.
const (
	maxPayload = 1 << 26
	maxEntries = 1 << 16
	maxNames   = 1 << 24
	maxNameLen = 1 << 20
)

// ManifestEntry names one shard file and the interval range it owns.
type ManifestEntry struct {
	File string
	Lo   int32 // first capture interval (inclusive)
	Hi   int32 // last capture interval (exclusive)
}

// BitmapEntry carries one persisted row bitmap of a shard: the bitmap's
// key — a source id in the shard's local dictionary (secBitmaps), a
// country index (secCountryBM, secEvCountryBM) or a quarter index
// (secQuarterBM) — and the canonical codec bytes.
type BitmapEntry struct {
	Source int32
	Data   []byte
}

// ShardBitmaps groups the persisted bitmaps of one shard, keyed by the
// shard's manifest-entry index.
type ShardBitmaps struct {
	Shard   int32
	Entries []BitmapEntry
}

// Manifest describes a sharded layout on disk: the shared dataset
// geometry, the shard files with their interval ranges, the global
// dictionaries as ordered name lists, and (version 2) per-shard persisted
// source-row bitmaps used as an assembly-time integrity cross-check.
type Manifest struct {
	Meta    store.Meta
	Entries []ManifestEntry
	Sources []string
	Themes  []string       // nil when the shards carry no GKG data
	Bitmaps []ShardBitmaps // nil in version 1 manifests
	// Version 3 value-bitmap sections, persisted as integrity cross-checks
	// like Bitmaps. Keys are country indexes (CountryBMs, EventCountryBMs)
	// or quarter indexes (QuarterBMs); only non-empty bitmaps travel.
	CountryBMs      []ShardBitmaps
	EventCountryBMs []ShardBitmaps
	QuarterBMs      []ShardBitmaps
}

// ManifestFromDB renders the manifest for a sharded DB whose part files
// will be written under the given names (one per shard, in shard order).
func ManifestFromDB(s *DB, files []string) (*Manifest, error) {
	if len(files) != s.K() {
		return nil, fmt.Errorf("shard: %d file names for %d shards", len(files), s.K())
	}
	m := &Manifest{
		Meta:    s.meta,
		Sources: append([]string(nil), s.sources.Names()...),
	}
	for i, f := range files {
		m.Entries = append(m.Entries, ManifestEntry{File: f, Lo: s.bounds[i], Hi: s.bounds[i+1]})
	}
	if s.hasGKG {
		m.Themes = append([]string(nil), s.themes.Names()...)
	}
	for i, p := range s.parts {
		sb := ShardBitmaps{Shard: int32(i)}
		for src := 0; src < p.Sources.Len(); src++ {
			sb.Entries = append(sb.Entries, BitmapEntry{
				Source: int32(src),
				Data:   p.SourceRowBitmap(int32(src)).AppendTo(nil),
			})
		}
		m.Bitmaps = append(m.Bitmaps, sb)
		nc := len(gdelt.Countries)
		m.CountryBMs = append(m.CountryBMs,
			valueBitmaps(int32(i), nc, p.CountryRowBitmap))
		m.EventCountryBMs = append(m.EventCountryBMs,
			valueBitmaps(int32(i), nc, p.EventCountryRowBitmap))
		m.QuarterBMs = append(m.QuarterBMs,
			valueBitmaps(int32(i), p.NumQuarters(), p.QuarterRowBitmap))
	}
	return m, nil
}

// valueBitmaps collects one shard's non-empty value bitmaps over a keyed
// index of width n.
func valueBitmaps(shard int32, n int, get func(k int) *bitmap.Bitmap) ShardBitmaps {
	sb := ShardBitmaps{Shard: shard}
	for k := 0; k < n; k++ {
		if bm := get(k); bm.Cardinality() > 0 {
			sb.Entries = append(sb.Entries, BitmapEntry{Source: int32(k), Data: bm.AppendTo(nil)})
		}
	}
	return sb
}

// EncodeManifest writes the manifest in the sectioned binary format.
func EncodeManifest(w io.Writer, m *Manifest) error {
	hdr := append(append([]byte(nil), Magic[:]...), byte(manifestVersion))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendVarint(buf, int64(m.Meta.Start))
	buf = binary.AppendVarint(buf, int64(m.Meta.Intervals))
	if err := writeSection(w, secMeta, buf); err != nil {
		return err
	}
	for _, e := range m.Entries {
		buf = buf[:0]
		buf = appendString(buf, e.File)
		buf = binary.AppendVarint(buf, int64(e.Lo))
		buf = binary.AppendVarint(buf, int64(e.Hi))
		if err := writeSection(w, secEntry, buf); err != nil {
			return err
		}
	}
	if err := writeSection(w, secSources, appendStrings(nil, m.Sources)); err != nil {
		return err
	}
	if m.Themes != nil {
		if err := writeSection(w, secThemes, appendStrings(nil, m.Themes)); err != nil {
			return err
		}
	}
	for _, sec := range []struct {
		tag  byte
		list []ShardBitmaps
	}{
		{secBitmaps, m.Bitmaps},
		{secCountryBM, m.CountryBMs},
		{secEvCountryBM, m.EventCountryBMs},
		{secQuarterBM, m.QuarterBMs},
	} {
		for _, sb := range sec.list {
			buf = buf[:0]
			buf = binary.AppendUvarint(buf, uint64(sb.Shard))
			buf = binary.AppendUvarint(buf, uint64(len(sb.Entries)))
			for _, e := range sb.Entries {
				buf = binary.AppendUvarint(buf, uint64(e.Source))
				buf = binary.AppendUvarint(buf, uint64(len(e.Data)))
				buf = append(buf, e.Data...)
			}
			if err := writeSection(w, sec.tag, buf); err != nil {
				return err
			}
		}
	}
	return writeSection(w, secEnd, nil)
}

func writeSection(w io.Writer, tag byte, payload []byte) error {
	hdr := []byte{tag}
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrings(dst []byte, names []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = appendString(dst, n)
	}
	return dst
}

// DecodeManifest reads a manifest, validating structure, bounds and
// checksums. Corrupt input of any shape returns an error.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("shard: manifest header: %w", err)
	}
	if !bytes.Equal(hdr[:4], Magic[:]) {
		return nil, fmt.Errorf("shard: bad manifest magic %q", hdr[:4])
	}
	if hdr[4] < minManifestVersion || hdr[4] > manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", hdr[4])
	}
	m := &Manifest{}
	var haveMeta, haveSources, haveThemes, haveEnd bool
	for !haveEnd {
		tag, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		d := &mdecoder{buf: payload}
		switch tag {
		case secMeta:
			if haveMeta {
				return nil, fmt.Errorf("shard: duplicate meta section")
			}
			haveMeta = true
			m.Meta.Start = gdelt.Timestamp(d.varint())
			iv := d.varint()
			if iv <= 0 || iv > 1<<31-1 {
				return nil, fmt.Errorf("shard: manifest intervals %d out of range", iv)
			}
			m.Meta.Intervals = int32(iv)
		case secEntry:
			if len(m.Entries) >= maxEntries {
				return nil, fmt.Errorf("shard: too many manifest entries")
			}
			var e ManifestEntry
			e.File = d.str()
			lo, hi := d.varint(), d.varint()
			if d.err == nil {
				if lo < 0 || hi <= lo || hi > 1<<31-1 {
					return nil, fmt.Errorf("shard: entry range [%d, %d) invalid", lo, hi)
				}
				e.Lo, e.Hi = int32(lo), int32(hi)
			}
			m.Entries = append(m.Entries, e)
		case secSources:
			if haveSources {
				return nil, fmt.Errorf("shard: duplicate sources section")
			}
			haveSources = true
			m.Sources = d.strs()
		case secThemes:
			if haveThemes {
				return nil, fmt.Errorf("shard: duplicate themes section")
			}
			haveThemes = true
			m.Themes = d.strs()
		case secBitmaps, secCountryBM, secEvCountryBM, secQuarterBM:
			sb := ShardBitmaps{Shard: int32(d.uvarint())}
			n := d.uvarint()
			if d.err == nil && (n > maxEntries || n > uint64(len(d.buf))) {
				return nil, fmt.Errorf("shard: bitmap section claims %d entries", n)
			}
			for i := uint64(0); i < n && d.err == nil; i++ {
				src := d.uvarint()
				nb := d.uvarint()
				if d.err != nil {
					break
				}
				if src > maxNames {
					return nil, fmt.Errorf("shard: bitmap key %d out of range", src)
				}
				if nb > maxPayload || nb > uint64(len(d.buf)) {
					return nil, fmt.Errorf("shard: bitmap payload %d exceeds section", nb)
				}
				sb.Entries = append(sb.Entries, BitmapEntry{
					Source: int32(src),
					Data:   append([]byte(nil), d.buf[:nb]...),
				})
				d.buf = d.buf[nb:]
			}
			var dst *[]ShardBitmaps
			switch tag {
			case secBitmaps:
				dst = &m.Bitmaps
			case secCountryBM:
				dst = &m.CountryBMs
			case secEvCountryBM:
				dst = &m.EventCountryBMs
			default:
				dst = &m.QuarterBMs
			}
			for _, prev := range *dst {
				if prev.Shard == sb.Shard {
					return nil, fmt.Errorf("shard: duplicate 0x%02x bitmap section for shard %d", tag, sb.Shard)
				}
			}
			*dst = append(*dst, sb)
		case secEnd:
			haveEnd = true
		default:
			return nil, fmt.Errorf("shard: unknown manifest section 0x%02x", tag)
		}
		if d.err != nil {
			return nil, fmt.Errorf("shard: section 0x%02x: %w", tag, d.err)
		}
		if !haveEnd && d.rem() != 0 {
			return nil, fmt.Errorf("shard: section 0x%02x has %d trailing bytes", tag, d.rem())
		}
	}
	if !haveMeta {
		return nil, fmt.Errorf("shard: manifest has no meta section")
	}
	if !haveSources {
		return nil, fmt.Errorf("shard: manifest has no sources section")
	}
	if len(m.Entries) == 0 {
		return nil, fmt.Errorf("shard: manifest has no shard entries")
	}
	return m, nil
}

func readSection(r *bufio.Reader) (byte, []byte, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return 0, nil, fmt.Errorf("shard: section tag: %w", err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: section length: %w", err)
	}
	if n > maxPayload {
		return 0, nil, fmt.Errorf("shard: section 0x%02x claims %d bytes", tag[0], n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("shard: section payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("shard: section checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, fmt.Errorf("shard: section 0x%02x checksum mismatch", tag[0])
	}
	return tag[0], payload, nil
}

// mdecoder decodes varints and length-prefixed strings from one section
// payload, latching the first error instead of panicking.
type mdecoder struct {
	buf []byte
	err error
}

func (d *mdecoder) rem() int { return len(d.buf) }

func (d *mdecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *mdecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *mdecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *mdecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxNameLen || n > uint64(len(d.buf)) {
		d.fail("string length %d exceeds payload", n)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *mdecoder) strs() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxNames || n > uint64(len(d.buf)) {
		d.fail("name count %d exceeds payload", n)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

// AssembleSharded builds a sharded DB from a decoded manifest and its
// loaded part stores, given in entry order. Entries may arrive in any
// time order (the permutation metamorphic property): parts are sorted
// jointly with their entries by interval range before assembly. Every
// manifest defect — ranges that do not tile the archive, dictionaries
// missing names, duplicated names, shards disagreeing on shared events —
// is an error, never a panic.
func AssembleSharded(m *Manifest, parts []*store.DB) (*DB, error) {
	if len(parts) != len(m.Entries) {
		return nil, fmt.Errorf("shard: %d parts for %d manifest entries", len(parts), len(m.Entries))
	}
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Entries[order[a]].Lo < m.Entries[order[b]].Lo })
	sorted := make([]*store.DB, len(parts))
	bounds := make([]int32, 0, len(parts)+1)
	for i, o := range order {
		sorted[i] = parts[o]
		e := m.Entries[o]
		if i == 0 {
			bounds = append(bounds, e.Lo)
		} else if e.Lo != bounds[len(bounds)-1] {
			return nil, fmt.Errorf("shard: entry ranges do not tile at interval %d", e.Lo)
		}
		bounds = append(bounds, e.Hi)
	}
	for i, p := range sorted {
		if p == nil {
			return nil, fmt.Errorf("shard: part %d is nil", i)
		}
		if p.Meta != m.Meta {
			return nil, fmt.Errorf("shard: part %d meta %+v disagrees with manifest %+v", i, p.Meta, m.Meta)
		}
	}
	// Version 2 manifests persist per-shard source-row bitmaps, version 3
	// adds country/event-country/quarter value bitmaps; validate each
	// against the bitmap rebuilt from the loaded part. The canonical codec
	// makes this a byte comparison: any disagreement means the part file and
	// manifest are from different builds (or one is corrupt).
	checkBitmaps := func(kind string, list []ShardBitmaps,
		width func(p *store.DB) int, rebuild func(p *store.DB, key int32) []byte) error {
		for _, sb := range list {
			if sb.Shard < 0 || int(sb.Shard) >= len(parts) {
				return fmt.Errorf("shard: %s bitmap section for shard %d of %d", kind, sb.Shard, len(parts))
			}
			p := parts[sb.Shard]
			seen := make(map[int32]bool, len(sb.Entries))
			for _, e := range sb.Entries {
				if seen[e.Source] {
					return fmt.Errorf("shard %d: duplicate %s bitmap for key %d", sb.Shard, kind, e.Source)
				}
				seen[e.Source] = true
				if e.Source < 0 || int(e.Source) >= width(p) {
					return fmt.Errorf("shard %d: %s bitmap for key %d of %d", sb.Shard, kind, e.Source, width(p))
				}
				if !bytes.Equal(e.Data, rebuild(p, e.Source)) {
					return fmt.Errorf("shard %d: persisted %s bitmap for key %d disagrees with part data", sb.Shard, kind, e.Source)
				}
			}
		}
		return nil
	}
	for _, c := range []struct {
		kind    string
		list    []ShardBitmaps
		width   func(p *store.DB) int
		rebuild func(p *store.DB, key int32) []byte
	}{
		{"source", m.Bitmaps,
			func(p *store.DB) int { return p.Sources.Len() },
			func(p *store.DB, k int32) []byte { return p.SourceRowBitmap(k).AppendTo(nil) }},
		{"country", m.CountryBMs,
			func(p *store.DB) int { return len(gdelt.Countries) },
			func(p *store.DB, k int32) []byte { return p.CountryRowBitmap(int(k)).AppendTo(nil) }},
		{"event-country", m.EventCountryBMs,
			func(p *store.DB) int { return len(gdelt.Countries) },
			func(p *store.DB, k int32) []byte { return p.EventCountryRowBitmap(int(k)).AppendTo(nil) }},
		{"quarter", m.QuarterBMs,
			func(p *store.DB) int { return p.NumQuarters() },
			func(p *store.DB, k int32) []byte { return p.QuarterRowBitmap(int(k)).AppendTo(nil) }},
	} {
		if err := checkBitmaps(c.kind, c.list, c.width, c.rebuild); err != nil {
			return nil, err
		}
	}
	sources, err := store.FromNames(m.Sources)
	if err != nil {
		return nil, fmt.Errorf("shard: global sources: %w", err)
	}
	var themes *store.Dictionary
	if m.Themes != nil {
		if themes, err = store.FromNames(m.Themes); err != nil {
			return nil, fmt.Errorf("shard: global themes: %w", err)
		}
	}
	return New(sorted, bounds, sources, themes, sorted[0].Report)
}

// WriteFiles writes the sharded DB as one binfmt part file per shard plus
// the manifest at path; part files are named "<base>.shard<i>" next to the
// manifest.
func WriteFiles(path string, s *DB) error {
	dir, base := filepath.Split(path)
	files := make([]string, s.K())
	for i := range files {
		files[i] = fmt.Sprintf("%s.shard%d", base, i)
	}
	m, err := ManifestFromDB(s, files)
	if err != nil {
		return err
	}
	for i, p := range s.parts {
		if err := binfmt.WriteFile(filepath.Join(dir, files[i]), p); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeManifest(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a manifest and its part files (resolved relative to the
// manifest's directory) and assembles the sharded DB.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	parts := make([]*store.DB, len(m.Entries))
	for i, e := range m.Entries {
		if filepath.IsAbs(e.File) || e.File != filepath.Base(e.File) {
			return nil, fmt.Errorf("shard: manifest entry file %q escapes the manifest directory", e.File)
		}
		p, err := binfmt.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): %w", i, e.File, err)
		}
		parts[i] = p
	}
	return AssembleSharded(m, parts)
}
