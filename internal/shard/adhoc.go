package shard

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/queries"
)

// Sharded ad-hoc queries (DESIGN.md §13): each shard plans and executes
// the spec independently through queries.AdhocVectors — so a selective
// clause pushes down on every shard exactly as on the monolith — and the
// raw vectors merge through the local→global remaps. Shards execute
// concurrently on the work-stealing pool into shard-indexed slots; the
// merge then folds the slots in ascending shard order, keeping integer
// merges bit-exact and float merges in a fixed order regardless of which
// shard finished first.

// adhocGroupSpec returns shard i's grouping column spec in GLOBAL group
// space: source grouping remaps local ids through l2gSrc; country and
// quarter ids are already global (every part shares the Meta), so the
// per-part LUTs apply directly, sized to the global width.
func (v *View) adhocGroupSpec(i int, group string) queries.GroupSpec {
	s := v.s
	p := s.parts[i]
	switch group {
	case "source":
		return queries.GroupSpec{N: s.sources.Len(), Col: p.Mentions.Source, Remap: s.l2gSrc[i]}
	case "sourcecountry":
		return queries.GroupSpec{N: len(gdelt.Countries), Col: p.Mentions.Source, Remap: p.SourceCountryLUT()}
	case "eventcountry":
		return queries.GroupSpec{N: len(gdelt.Countries), Col: p.Mentions.EventRow, Remap: p.EventCountryLUT()}
	case "quarter":
		return queries.GroupSpec{N: s.NumQuarters(), Col: p.Mentions.Interval, Remap: p.QuarterLUT()}
	}
	return queries.GroupSpec{}
}

// adhocKey resolves global group ids to display keys.
func (v *View) adhocKey(group string) func(g int) string {
	s := v.s
	switch group {
	case "source":
		return func(g int) string { return s.sources.Name(int32(g)) }
	case "sourcecountry", "eventcountry":
		return func(g int) string { return gdelt.Countries[g].FIPS }
	case "quarter":
		return s.QuarterLabel
	}
	return nil
}

// adhocVectors fans the spec out over every shard concurrently and merges
// the raw vectors in ascending shard order.
func (v *View) adhocVectors(spec queries.AdhocSpec) (queries.AdhocVec, error) {
	k := v.s.K()
	vecs := make([]queries.AdhocVec, k)
	errs := make([]error, k)
	v.forEachShard(func(_ *parallel.Worker, i int, e *engine.Engine) {
		g := v.adhocGroupSpec(i, spec.Group)
		vecs[i], errs[i] = queries.AdhocVectors(e, spec, g)
	})
	// First error by shard index, matching the sequential loop's reporting.
	for _, err := range errs {
		if err != nil {
			return queries.AdhocVec{}, err
		}
	}
	var vec queries.AdhocVec
	for _, pv := range vecs {
		vec.Count += pv.Count
		vec.Sum += pv.Sum
		if pv.Counts != nil {
			if vec.Counts == nil {
				vec.Counts = make([]int64, len(pv.Counts))
			}
			for gid, c := range pv.Counts {
				vec.Counts[gid] += c
			}
		}
		if pv.Sums != nil {
			if vec.Sums == nil {
				vec.Sums = make([]float64, len(pv.Sums))
			}
			for gid, sum := range pv.Sums {
				vec.Sums[gid] += sum
			}
		}
	}
	return vec, nil
}

// AdhocQuery plans, executes and shapes a spec over the sharded store. The
// shaped result matches the monolith bit for bit on integer aggregates
// (counts rank the rows, and counts are exact sums).
func (v *View) AdhocQuery(spec queries.AdhocSpec) (queries.AdhocResult, error) {
	vec, err := v.adhocVectors(spec)
	if err != nil {
		return queries.AdhocResult{}, err
	}
	return queries.ShapeAdhoc(spec, vec, v.adhocKey(spec.Group)), nil
}

// AdhocExplain plans the spec on every shard without executing, and merges
// the per-shard estimates (shard-indexed, so the merged plan lists shards
// in order no matter which planned first).
func (v *View) AdhocExplain(spec queries.AdhocSpec) queries.AdhocPlan {
	plans := make([]queries.AdhocPlan, v.s.K())
	v.forEachShard(func(_ *parallel.Worker, i int, e *engine.Engine) {
		plans[i] = queries.ExplainAdhoc(e, spec)
	})
	return queries.MergeAdhocPlans(spec, plans)
}

// CountWhere counts windowed articles matching a qlang filter.
func (v *View) CountWhere(expr string) (int64, error) {
	spec, err := queries.ParseAdhocSpec(expr, "", "", 0)
	if err != nil {
		return 0, err
	}
	vec, err := v.adhocVectors(spec)
	if err != nil {
		return 0, err
	}
	return vec.Count, nil
}

// ArticlesPerQuarterWhere computes the filtered quarterly article series.
func (v *View) ArticlesPerQuarterWhere(expr string) (queries.QuarterlySeries, error) {
	spec, err := queries.ParseAdhocSpec(expr, "quarter", "", 0)
	if err != nil {
		return queries.QuarterlySeries{}, err
	}
	vec, err := v.adhocVectors(spec)
	if err != nil {
		return queries.QuarterlySeries{}, err
	}
	if vec.Counts == nil {
		vec.Counts = make([]int64, v.s.NumQuarters())
	}
	return queries.QuarterlySeries{Labels: v.quarterLabels(), Values: vec.Counts}, nil
}

// TopPublishersWhere ranks global sources by filtered article count.
func (v *View) TopPublishersWhere(expr string, k int) (ids []int32, counts []int64, err error) {
	spec, err := queries.ParseAdhocSpec(expr, "source", "", k)
	if err != nil {
		return nil, nil, err
	}
	vec, err := v.adhocVectors(spec)
	if err != nil {
		return nil, nil, err
	}
	top := engine.TopK(len(vec.Counts), k, func(i int) int64 { return vec.Counts[i] })
	for _, g := range top {
		if vec.Counts[g] == 0 {
			break
		}
		ids = append(ids, int32(g))
		counts = append(counts, vec.Counts[g])
	}
	return ids, counts, nil
}
