// Package shard implements the time-partitioned shard layer: a DB that
// holds K time-range shards, each an independent store.DB with its own
// dictionaries, plus the global dictionaries and the local→global remaps
// built at assembly time. Query execution (view.go, queries.go) fans out
// per shard over the existing typed kernels and reduces the partial
// results through the remaps into one global answer that is bit-exact
// (1e-9 for floats) against the monolithic execution — the invariant the
// differential battery in internal/baseline pins.
//
// Layout invariants (enforced by New, never assumed):
//
//   - bounds is a strict tiling of [0, Meta.Intervals]: bounds[0] == 0,
//     strictly increasing, bounds[K] == Intervals. Shard i owns capture
//     intervals [bounds[i], bounds[i+1]).
//   - Every shard carries the full global Meta, so quarter indexes, labels
//     and interval arithmetic agree across shards and with the monolith.
//   - A shard's mention table holds exactly the monolith's mentions captured
//     in its interval range (still interval-sorted); its event table is the
//     ID-ordered subsequence of global events it references (plus the events
//     homed in its range), with per-event metadata (NumArticles,
//     FirstMention, ...) copied verbatim from the monolith, so the K-way
//     merge of shard event tables reproduces the global table exactly.
//   - Dictionaries are local; the global source (and theme) dictionary plus
//     the name-derived local→global remaps are what assembly adds.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/store"
)

// DB is a time-partitioned sharded store: K independent store.DB shards
// plus the assembly-time global dictionaries and remaps. Immutable after
// New except for the per-shard snapshot versions (stream appends land in
// the tail shard and bump only its version).
type DB struct {
	meta   store.Meta
	bounds []int32     // K+1 interval boundaries tiling [0, Intervals]
	parts  []*store.DB // time-ordered shards

	sources *store.Dictionary // global source dictionary (monolith id order)
	events  store.EventTable  // K-way ID-merged global event table
	report  *gdelt.ValidationReport

	eventCountryLUT []int32 // global event row -> country index, -1 untagged

	l2gSrc [][]int32 // per shard: local source id -> global source id
	l2gEv  [][]int32 // per shard: local event row -> global event row
	g2lEv  [][]int32 // per shard: global event row -> local event row, -1 absent

	hasGKG   bool
	themes   *store.Dictionary // global theme dictionary, nil without GKG
	l2gTheme [][]int32         // per shard: local theme id -> global theme id
}

// New assembles a sharded DB from time-ordered parts. bounds must tile
// [0, Intervals]; sources (and themes, when the parts carry GKG) are the
// global dictionaries every local dictionary remaps into by name. All
// inputs are validated — corrupt manifests and disagreeing shards error,
// they never panic.
func New(parts []*store.DB, bounds []int32, sources, themes *store.Dictionary, report *gdelt.ValidationReport) (*DB, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	if sources == nil {
		return nil, fmt.Errorf("shard: nil global source dictionary")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
	}
	meta := parts[0].Meta
	if len(bounds) != len(parts)+1 {
		return nil, fmt.Errorf("shard: %d bounds for %d shards", len(bounds), len(parts))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != meta.Intervals {
		return nil, fmt.Errorf("shard: bounds [%d, %d] do not tile [0, %d]",
			bounds[0], bounds[len(bounds)-1], meta.Intervals)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("shard: bounds not strictly increasing at %d", i)
		}
	}
	s := &DB{
		meta:    meta,
		bounds:  append([]int32(nil), bounds...),
		parts:   append([]*store.DB(nil), parts...),
		sources: sources,
		report:  report,
	}
	if s.report == nil {
		s.report = parts[0].Report
	}
	for i, p := range parts {
		if p.Meta != meta {
			return nil, fmt.Errorf("shard: shard %d meta %+v disagrees with shard 0 %+v", i, p.Meta, meta)
		}
		if n := p.Mentions.Len(); n > 0 {
			if iv := p.Mentions.Interval[0]; iv < bounds[i] {
				return nil, fmt.Errorf("shard: shard %d mention interval %d below bound %d", i, iv, bounds[i])
			}
			if iv := p.Mentions.Interval[n-1]; iv >= bounds[i+1] {
				return nil, fmt.Errorf("shard: shard %d mention interval %d past bound %d", i, iv, bounds[i+1])
			}
		}
	}
	if err := s.buildSourceRemaps(); err != nil {
		return nil, err
	}
	if err := s.mergeEvents(); err != nil {
		return nil, err
	}
	if err := s.buildThemeRemaps(themes); err != nil {
		return nil, err
	}
	s.eventCountryLUT = make([]int32, s.events.Len())
	for ev, c := range s.events.Country {
		s.eventCountryLUT[ev] = int32(c)
	}
	return s, nil
}

// buildSourceRemaps derives each shard's local→global source remap by name.
// A local source missing from the global dictionary is a corrupt manifest.
func (s *DB) buildSourceRemaps() error {
	s.l2gSrc = make([][]int32, len(s.parts))
	for i, p := range s.parts {
		remap := make([]int32, p.Sources.Len())
		for ls := range remap {
			g := s.sources.Lookup(p.Sources.Name(int32(ls)))
			if g < 0 {
				return fmt.Errorf("shard: shard %d source %q missing from global dictionary",
					i, p.Sources.Name(int32(ls)))
			}
			remap[ls] = g
		}
		s.l2gSrc[i] = remap
	}
	return nil
}

// mergeEvents K-way merges the shards' ID-sorted event tables into the
// global table, building the event row remaps. Shards holding the same
// event must agree on every column — they all copied it verbatim from the
// same monolith row.
func (s *DB) mergeEvents() error {
	K := len(s.parts)
	cur := make([]int, K)
	s.l2gEv = make([][]int32, K)
	for i, p := range s.parts {
		s.l2gEv[i] = make([]int32, p.Events.Len())
	}
	ev := &s.events
	for {
		minID, found := int64(0), false
		for i, p := range s.parts {
			if cur[i] < p.Events.Len() {
				if id := p.Events.ID[cur[i]]; !found || id < minID {
					minID, found = id, true
				}
			}
		}
		if !found {
			break
		}
		g := ev.Len()
		first := true
		for i, p := range s.parts {
			r := cur[i]
			if r >= p.Events.Len() || p.Events.ID[r] != minID {
				continue
			}
			if first {
				first = false
				ev.ID = append(ev.ID, minID)
				ev.Day = append(ev.Day, p.Events.Day[r])
				ev.Interval = append(ev.Interval, p.Events.Interval[r])
				ev.Country = append(ev.Country, p.Events.Country[r])
				ev.NumArticles = append(ev.NumArticles, p.Events.NumArticles[r])
				ev.FirstMention = append(ev.FirstMention, p.Events.FirstMention[r])
				ev.SourceURL = append(ev.SourceURL, p.Events.SourceURL[r])
			} else if p.Events.Day[r] != ev.Day[g] || p.Events.Interval[r] != ev.Interval[g] ||
				p.Events.Country[r] != ev.Country[g] || p.Events.NumArticles[r] != ev.NumArticles[g] ||
				p.Events.FirstMention[r] != ev.FirstMention[g] || p.Events.SourceURL[r] != ev.SourceURL[g] {
				return fmt.Errorf("shard: shards disagree on event %d", minID)
			}
			s.l2gEv[i][r] = int32(g)
			cur[i]++
		}
	}
	s.g2lEv = make([][]int32, K)
	for i := range s.parts {
		inv := make([]int32, ev.Len())
		for g := range inv {
			inv[g] = -1
		}
		for r, g := range s.l2gEv[i] {
			inv[g] = int32(r)
		}
		s.g2lEv[i] = inv
	}
	return nil
}

// buildThemeRemaps wires the GKG side: all shards must agree on having GKG
// data, and when they do, a global theme dictionary is required and every
// local theme must resolve in it.
func (s *DB) buildThemeRemaps(themes *store.Dictionary) error {
	withGKG := 0
	for _, p := range s.parts {
		if p.GKG != nil {
			withGKG++
		}
	}
	if withGKG == 0 {
		return nil
	}
	if withGKG != len(s.parts) {
		return fmt.Errorf("shard: %d of %d shards carry GKG data", withGKG, len(s.parts))
	}
	if themes == nil {
		return fmt.Errorf("shard: shards carry GKG data but no global theme dictionary given")
	}
	s.hasGKG = true
	s.themes = themes
	s.l2gTheme = make([][]int32, len(s.parts))
	for i, p := range s.parts {
		remap := make([]int32, p.GKG.Themes.Len())
		for lt := range remap {
			g := themes.Lookup(p.GKG.Themes.Name(int32(lt)))
			if g < 0 {
				return fmt.Errorf("shard: shard %d theme %q missing from global dictionary",
					i, p.GKG.Themes.Name(int32(lt)))
			}
			remap[lt] = g
		}
		s.l2gTheme[i] = remap
	}
	return nil
}

// K returns the number of shards.
func (s *DB) K() int { return len(s.parts) }

// Bounds returns the K+1 interval boundaries tiling [0, Meta.Intervals].
func (s *DB) Bounds() []int32 { return append([]int32(nil), s.bounds...) }

// Part returns shard i.
func (s *DB) Part(i int) *store.DB { return s.parts[i] }

// Tail returns the last (most recent) shard — the only shard a stream
// append extends, and therefore the only version a chunk fold bumps.
func (s *DB) Tail() *store.DB { return s.parts[len(s.parts)-1] }

// Meta returns the shared dataset metadata.
func (s *DB) Meta() store.Meta { return s.meta }

// Report returns the shared conversion defect report.
func (s *DB) Report() *gdelt.ValidationReport { return s.report }

// Sources returns the global source dictionary (monolith id order).
func (s *DB) Sources() *store.Dictionary { return s.sources }

// EventCount returns the number of global events.
func (s *DB) EventCount() int { return s.events.Len() }

// HasGKG reports whether the shards carry Global Knowledge Graph data.
func (s *DB) HasGKG() bool { return s.hasGKG }

// Themes returns the global theme dictionary, or nil without GKG.
func (s *DB) Themes() *store.Dictionary { return s.themes }

// NumQuarters returns the number of calendar quarters covered. All shards
// share the global Meta, so quarter geometry is identical everywhere.
func (s *DB) NumQuarters() int { return s.parts[0].NumQuarters() }

// QuarterLabel renders quarter q as e.g. "2016Q3".
func (s *DB) QuarterLabel(q int) string { return s.parts[0].QuarterLabel(q) }

// QuarterOfInterval maps a capture interval to a quarter index.
func (s *DB) QuarterOfInterval(iv int32) int { return s.parts[0].QuarterOfInterval(iv) }

// overlapping returns the half-open shard index range whose interval
// ranges intersect the window [from, to).
func (s *DB) overlapping(from, to int32) (lo, hi int) {
	if from >= to {
		return 0, 0
	}
	lo, hi = 0, len(s.parts)
	for lo < hi && s.bounds[lo+1] <= from {
		lo++
	}
	for hi > lo && s.bounds[hi-1] >= to {
		hi--
	}
	return lo, hi
}

// VersionMax returns the maximum snapshot version over the shards
// overlapping [from, to) — the Version component of a sharded cache key.
// An append that bumps only the tail shard raises the max for windows that
// touch the tail and leaves cold-window versions unchanged.
func (s *DB) VersionMax(from, to int32) uint64 {
	lo, hi := s.overlapping(from, to)
	var max uint64
	for i := lo; i < hi; i++ {
		if v := s.parts[i].Version(); v > max {
			max = v
		}
	}
	return max
}

// WindowVersionKey renders the Window component of a sharded cache key:
// the interval window plus the version vector of every overlapping shard.
// Embedding the per-shard versions (not just the max) is what lets the
// staleness sweep keep warm entries whose shards did not change — see
// StaleKey and qcache.Cache.SetStale.
func (s *DB) WindowVersionKey(from, to int32) string {
	var b strings.Builder
	b.WriteString("iv")
	b.WriteString(strconv.FormatInt(int64(from), 10))
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(int64(to), 10))
	b.WriteString("/v")
	lo, hi := s.overlapping(from, to)
	for i := lo; i < hi; i++ {
		if i > lo {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(s.parts[i].Version(), 10))
	}
	return b.String()
}

// StaleKey reports whether a cached entry's key refers to a window whose
// overlapping shards have moved past the versions the entry was computed
// at. It re-derives the expected window key from the entry's interval
// window and compares: a tail-shard append makes every tail-overlapping
// entry stale while entries over cold shards stay servable. Keys that do
// not parse are conservatively stale.
func (s *DB) StaleKey(k qcache.Key) bool {
	rest, ok := strings.CutPrefix(k.Window, "iv")
	if !ok {
		return true
	}
	fromStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return true
	}
	toStr, _, ok := strings.Cut(rest, "/")
	if !ok {
		return true
	}
	from, err := strconv.ParseInt(fromStr, 10, 32)
	if err != nil {
		return true
	}
	to, err := strconv.ParseInt(toStr, 10, 32)
	if err != nil {
		return true
	}
	return k.Window != s.WindowVersionKey(int32(from), int32(to))
}
