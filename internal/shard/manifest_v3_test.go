package shard

import (
	"bytes"
	"testing"

	"gdeltmine/internal/store"
)

// Version 3 manifest coverage: the value-bitmap sections (country,
// event-country, quarter) round-trip, older versions still load, and the
// assembly-time cross-check catches bitmaps that disagree with the part
// data. See DESIGN.md §13.

func tinyManifestAndParts(tb testing.TB) (*Manifest, []*store.DB) {
	tb.Helper()
	sdb, raw := tinyShardedWorld(tb)
	m, err := DecodeManifest(bytes.NewReader(raw))
	if err != nil {
		tb.Fatal(err)
	}
	parts := make([]*store.DB, sdb.K())
	for i := range parts {
		parts[i] = sdb.Part(i)
	}
	return m, parts
}

func TestManifestV3RoundTrip(t *testing.T) {
	m, parts := tinyManifestAndParts(t)
	if len(m.CountryBMs) != len(parts) || len(m.EventCountryBMs) != len(parts) || len(m.QuarterBMs) != len(parts) {
		t.Fatalf("value bitmap sections %d/%d/%d, want one per shard (%d)",
			len(m.CountryBMs), len(m.EventCountryBMs), len(m.QuarterBMs), len(parts))
	}
	// Every shard holds mention rows, so at least the quarter bitmaps must
	// be non-empty; empty country sections would mean the builder skipped
	// the value-bitmap pass entirely.
	for i, sb := range m.QuarterBMs {
		if len(sb.Entries) == 0 {
			t.Fatalf("shard %d: no quarter bitmaps persisted", i)
		}
	}
	for _, sb := range m.CountryBMs {
		if len(sb.Entries) == 0 {
			t.Fatalf("shard %d: no country bitmaps persisted", sb.Shard)
		}
	}
	if _, err := AssembleSharded(m, parts); err != nil {
		t.Fatalf("assembling v3 manifest: %v", err)
	}
}

// TestManifestV2StillLoads pins backward compatibility: a manifest without
// the value-bitmap sections, stamped version 2, must decode and assemble.
// The version byte is not checksummed, so the test patches it in place.
func TestManifestV2StillLoads(t *testing.T) {
	m, parts := tinyManifestAndParts(t)
	m.CountryBMs, m.EventCountryBMs, m.QuarterBMs = nil, nil, nil
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 2 // rewrite the version byte: a v2 writer's output
	m2, err := DecodeManifest(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding v2 manifest: %v", err)
	}
	if m2.CountryBMs != nil || m2.EventCountryBMs != nil || m2.QuarterBMs != nil {
		t.Fatalf("v2 manifest decoded with value bitmap sections")
	}
	s, err := AssembleSharded(m2, parts)
	if err != nil {
		t.Fatalf("assembling v2 manifest: %v", err)
	}
	if s.K() != len(parts) {
		t.Fatalf("assembled K=%d, want %d", s.K(), len(parts))
	}
}

// TestManifestFutureVersionRejected: the decoder must refuse versions it
// does not understand rather than silently skipping sections.
func TestManifestFutureVersionRejected(t *testing.T) {
	_, raw := tinyShardedWorld(t)
	mut := bytes.Clone(raw)
	mut[4] = manifestVersion + 1
	if _, err := DecodeManifest(bytes.NewReader(mut)); err == nil {
		t.Fatal("decoder accepted a future manifest version")
	}
}

// TestManifestValueBitmapCrossCheck: a persisted value bitmap that
// disagrees with the loaded part data must fail assembly, for each of the
// three new section kinds.
func TestManifestValueBitmapCrossCheck(t *testing.T) {
	corruptions := []struct {
		name   string
		mutate func(m *Manifest)
	}{
		{"country", func(m *Manifest) { m.CountryBMs[0].Entries[0].Data = []byte{0xde, 0xad} }},
		{"event-country", func(m *Manifest) { m.EventCountryBMs[0].Entries[0].Data = []byte{0xde, 0xad} }},
		{"quarter", func(m *Manifest) { m.QuarterBMs[0].Entries[0].Data = []byte{0xde, 0xad} }},
		{"country-key-range", func(m *Manifest) { m.CountryBMs[0].Entries[0].Source = 1 << 20 }},
		{"quarter-key-range", func(m *Manifest) { m.QuarterBMs[0].Entries[0].Source = 1 << 20 }},
		{"country-dup-key", func(m *Manifest) {
			e := &m.CountryBMs[0].Entries
			*e = append(*e, (*e)[0])
		}},
		{"country-shard-range", func(m *Manifest) { m.CountryBMs[0].Shard = 99 }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			m, parts := tinyManifestAndParts(t)
			c.mutate(m)
			if _, err := AssembleSharded(m, parts); err == nil {
				t.Fatalf("%s corruption assembled cleanly", c.name)
			}
		})
	}
}

// TestManifestDuplicateValueSectionRejected: two value-bitmap sections for
// the same shard and kind must be a decode error, mirroring the source
// bitmap rule.
func TestManifestDuplicateValueSectionRejected(t *testing.T) {
	m, _ := tinyManifestAndParts(t)
	m.QuarterBMs = append(m.QuarterBMs, m.QuarterBMs[0])
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(&buf); err == nil {
		t.Fatal("decoder accepted duplicate quarter bitmap sections")
	}
}
