package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdeltmine/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestV1MatchesLegacy: the versioned and deprecated surfaces dispatch
// through the same descriptors and cache, so their bodies must be
// byte-identical.
func TestV1MatchesLegacy(t *testing.T) {
	srv := testServer(t)
	pairs := []struct{ legacy, v1 string }{
		{"/api/stats", "/api/v1/stats"},
		{"/api/defects", "/api/v1/defects"},
		{"/api/top-publishers?k=5", "/api/v1/top-publishers?k=5"},
		{"/api/country?k=4", "/api/v1/country?k=4"},
		{"/api/series/articles", "/api/v1/series-articles"},
		{"/api/series/slow-articles", "/api/v1/series-slow-articles"},
		{"/api/wildfires?window=4&min=2&k=5", "/api/v1/wildfires?window=4&min=2&k=5"},
	}
	for _, p := range pairs {
		lr, lbody := get(t, srv, p.legacy)
		vr, vbody := get(t, srv, p.v1)
		if lr.StatusCode != 200 || vr.StatusCode != 200 {
			t.Fatalf("%s=%d %s=%d", p.legacy, lr.StatusCode, p.v1, vr.StatusCode)
		}
		if string(lbody) != string(vbody) {
			t.Fatalf("%s and %s disagree:\n%s\nvs\n%s", p.legacy, p.v1, lbody, vbody)
		}
	}
}

func TestV1ServesAliases(t *testing.T) {
	srv := testServer(t)
	canon, cbody := get(t, srv, "/api/v1/top-publishers")
	alias, abody := get(t, srv, "/api/v1/publishers")
	if canon.StatusCode != 200 || alias.StatusCode != 200 {
		t.Fatalf("status %d / %d", canon.StatusCode, alias.StatusCode)
	}
	if string(cbody) != string(abody) {
		t.Fatal("alias body differs from canonical kind")
	}
}

func TestLegacyDeprecationHeaderAndCounter(t *testing.T) {
	srv := testServer(t)
	c := obs.Default.Counter("http_deprecated_requests_total",
		"requests served on deprecated unversioned /api/ paths", obs.L("endpoint", "stats"))
	before := c.Value()
	resp, _ := get(t, srv, "/api/stats")
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy path missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</api/v1/stats>; rel="successor-version"` {
		t.Fatalf("Link header %q", link)
	}
	if c.Value() != before+1 {
		t.Fatalf("deprecated counter delta %d, want 1", c.Value()-before)
	}
	// The versioned path carries neither.
	resp, _ = get(t, srv, "/api/v1/stats")
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/api/v1 must not be marked deprecated")
	}
	if c.Value() != before+1 {
		t.Fatal("v1 request bumped the deprecated counter")
	}
}

func TestV1UnknownKindEnvelope(t *testing.T) {
	srv := testServer(t)
	var env struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	resp, body := get(t, srv, "/api/v1/no-such-kind")
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("404 body %q is not the JSON envelope: %v", body, err)
	}
	if env.Error == "" || env.Kind != "no-such-kind" {
		t.Fatalf("envelope %+v must name the kind", env)
	}
}

func TestV1BadParamEnvelope(t *testing.T) {
	srv := testServer(t)
	var env struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	resp, body := get(t, srv, "/api/v1/top-publishers?k=banana")
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("400 body %q: %v", body, err)
	}
	if env.Error == "" || env.Kind != "top-publishers" {
		t.Fatalf("envelope %+v", env)
	}
}

// TestV1CacheHitServesWithoutScan is the ISSUE's serving acceptance test: a
// repeated identical request answers from the cache (X-Cache: hit) and runs
// zero engine scans.
func TestV1CacheHitServesWithoutScan(t *testing.T) {
	srv := testServer(t)
	scans := obs.Default.Counter("engine_scans_total", "scan kernels executed",
		obs.L("kind", "top-publishers"))

	first, _ := get(t, srv, "/api/v1/top-publishers")
	if xc := first.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("first request X-Cache %q, want miss", xc)
	}
	before := scans.Value()
	second, body := get(t, srv, "/api/v1/top-publishers")
	if xc := second.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("second request X-Cache %q, want hit", xc)
	}
	if delta := scans.Value() - before; delta != 0 {
		t.Fatalf("cache hit ran %d scans, want 0", delta)
	}
	if len(body) == 0 {
		t.Fatal("hit served empty body")
	}
	_, firstBody := get(t, srv, "/api/v1/top-publishers")
	if string(firstBody) != string(body) {
		t.Fatal("cached responses diverge")
	}
}

func TestCacheDisabledByConfig(t *testing.T) {
	testServer(t) // ensures cachedDB is built
	srv := httptest.NewServer(NewWithConfig(cachedDB, Config{CacheBytes: -1}))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, _ := get(t, srv, "/api/v1/stats")
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if xc := resp.Header.Get("X-Cache"); xc != "" {
			t.Fatalf("X-Cache %q present with caching disabled", xc)
		}
	}
}

func TestCacheAccessor(t *testing.T) {
	testServer(t)
	s := New(cachedDB)
	if s.Cache() == nil {
		t.Fatal("default server should expose its cache")
	}
	if NewWithConfig(cachedDB, Config{CacheBytes: -1}).Cache() != nil {
		t.Fatal("disabled cache should be nil")
	}
}
