package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"gdeltmine/internal/shard"
)

func testShardedServer(t *testing.T) *httptest.Server {
	t.Helper()
	testServer(t) // ensures cachedDB is built
	sdb, err := shard.Split(cachedDB, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewSharded(sdb, Config{}))
	t.Cleanup(srv.Close)
	return srv
}

// /api/v1/query endpoint coverage (DESIGN.md §13): the composable ad-hoc
// surface — where/group/agg/k parameters, GET and POST, the explain=1 plan
// report, canonicalization-aware caching, and uniform 400 envelopes.

type queryResult struct {
	Where string   `json:"where"`
	Group string   `json:"group"`
	Agg   string   `json:"agg"`
	Count int64    `json:"count"`
	Value *float64 `json:"value"`
	Rows  []struct {
		Key   string   `json:"key"`
		Count int64    `json:"count"`
		Value *float64 `json:"value"`
	} `json:"rows"`
}

func TestQueryEndpointGET(t *testing.T) {
	srv := testServer(t)
	var res queryResult
	if code := getJSON(t, srv, "/api/v1/query?where="+url.QueryEscape("delay>0")+
		"&group=source&agg=count&k=5", &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if res.Where != "delay>0" || res.Group != "source" || res.Agg != "count" {
		t.Fatalf("echoed spec %+v", res)
	}
	if res.Count <= 0 || len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("result %+v", res)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Count > res.Rows[i-1].Count {
			t.Fatalf("rows not count-ordered: %+v", res.Rows)
		}
	}
	// A scalar mean carries a value and no rows.
	var scalar queryResult
	if code := getJSON(t, srv, "/api/v1/query?agg="+url.QueryEscape("mean:doclen"), &scalar); code != 200 {
		t.Fatalf("scalar status %d", code)
	}
	if scalar.Value == nil || len(scalar.Rows) != 0 {
		t.Fatalf("scalar result %+v", scalar)
	}
}

// TestQueryEndpointPOST: POST form bodies carry the same parameters (long
// expressions outgrow URLs) and must answer identically to GET.
func TestQueryEndpointPOST(t *testing.T) {
	srv := testServer(t)
	params := "where=" + url.QueryEscape("sourcecountry=US and delay>2") + "&group=quarter&agg=sum:doclen"
	_, getBody := get(t, srv, "/api/v1/query?"+params)
	resp, err := http.Post(srv.URL+"/api/v1/query", "application/x-www-form-urlencoded",
		strings.NewReader(params))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	postBody, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("POST status %d: %s", resp.StatusCode, postBody)
	}
	if string(postBody) != string(getBody) {
		t.Fatalf("POST body differs from GET:\n%s\nvs\n%s", postBody, getBody)
	}
}

// TestQueryCanonicalizationSharesCache is the satellite bugfix pinned at
// the HTTP layer: two spellings of one expression — reordered clauses,
// "&&" vs "and", "==" vs "=" — must hit the same cache entry.
func TestQueryCanonicalizationSharesCache(t *testing.T) {
	srv := testServer(t)
	a := "/api/v1/query?where=" + url.QueryEscape("tone>1 and delay>2") + "&group=source"
	b := "/api/v1/query?where=" + url.QueryEscape("delay>2 && tone>1.0") + "&group=source"
	ra, abody := get(t, srv, a)
	rb, bbody := get(t, srv, b)
	if ra.StatusCode != 200 || rb.StatusCode != 200 {
		t.Fatalf("status %d / %d", ra.StatusCode, rb.StatusCode)
	}
	if xc := rb.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("equivalent spelling X-Cache %q, want hit", xc)
	}
	if string(abody) != string(bbody) {
		t.Fatal("equivalent spellings served different bodies")
	}
}

type planResponse struct {
	Where       string   `json:"where"`
	Path        string   `json:"path"`
	Kernel      string   `json:"kernel"`
	Pushdown    []string `json:"pushdown"`
	Fallback    []string `json:"fallback"`
	EstRows     int64    `json:"est_rows"`
	WindowRows  int64    `json:"window_rows"`
	Selectivity float64  `json:"selectivity"`
}

// TestQueryExplain: explain=1 returns the chosen plan without executing,
// and bypasses the result cache (the plan depends on the plan parameter,
// which executed results — and so cache keys — exclude).
func TestQueryExplain(t *testing.T) {
	srv := testServer(t)
	q := "where=" + url.QueryEscape("sourcecountry=US and tone>0") + "&group=source&explain=1"
	resp, body := get(t, srv, "/api/v1/query?"+q)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		t.Fatalf("explain response carries X-Cache %q; it must bypass the cache", xc)
	}
	var plan planResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("explain body %q: %v", body, err)
	}
	if plan.Path == "" || plan.WindowRows <= 0 {
		t.Fatalf("plan %+v", plan)
	}
	if len(plan.Pushdown)+len(plan.Fallback) != 2 {
		t.Fatalf("plan splits %d+%d clauses, want 2", len(plan.Pushdown), len(plan.Fallback))
	}
	// Forcing plan=scan must flip the same request to the scan path — and
	// because explain bypasses the cache, the change is visible immediately.
	_, body = get(t, srv, "/api/v1/query?"+q+"&plan=scan")
	var scanPlan planResponse
	if err := json.Unmarshal(body, &scanPlan); err != nil {
		t.Fatal(err)
	}
	if scanPlan.Path != "scan" || len(scanPlan.Pushdown) != 0 {
		t.Fatalf("plan=scan explain %+v", scanPlan)
	}
}

func TestQueryBadParamEnvelopes(t *testing.T) {
	srv := testServer(t)
	cases := []struct{ name, query string }{
		{"bad-where", "where=" + url.QueryEscape("bogusfield=1")},
		{"bad-where-syntax", "where=" + url.QueryEscape("tone>")},
		{"bad-group", "group=banana"},
		{"bad-agg", "agg=median:tone"},
		{"bad-agg-field", "agg=" + url.QueryEscape("sum:source")},
		{"bad-explain", "explain=maybe"},
		{"bad-k", "k=banana"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var env struct {
				Error string `json:"error"`
				Kind  string `json:"kind"`
			}
			resp, body := get(t, srv, "/api/v1/query?"+c.query)
			if resp.StatusCode != 400 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("400 body %q: %v", body, err)
			}
			if env.Error == "" || env.Kind != "query" {
				t.Fatalf("envelope %+v", env)
			}
		})
	}
}

// TestQueryEndpointSharded: the same surface over a sharded dataset must
// agree with the monolith byte-for-byte on integer aggregates.
func TestQueryEndpointSharded(t *testing.T) {
	srv := testServer(t)
	ssrv := testShardedServer(t)
	q := "/api/v1/query?where=" + url.QueryEscape("delay>4 and sourcecountry=US") + "&group=quarter"
	_, mono := get(t, srv, q)
	resp, sharded := get(t, ssrv, q)
	if resp.StatusCode != 200 {
		t.Fatalf("sharded status %d: %s", resp.StatusCode, sharded)
	}
	if string(mono) != string(sharded) {
		t.Fatalf("sharded result differs from monolith:\n%s\nvs\n%s", sharded, mono)
	}
}
