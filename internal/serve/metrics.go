package serve

import (
	"context"
	"net/http"
	"net/http/pprof"
	"time"

	"gdeltmine/internal/obs"
)

// Per-endpoint HTTP metrics. Every query endpoint is registered at server
// construction, so a /metrics scrape lists the full endpoint inventory
// (with zero values) before the first request arrives.
type endpointMetrics struct {
	requests *obs.Counter
	seconds  *obs.Histogram
	timeouts *obs.Counter
	errors   *obs.Counter
}

func newEndpointMetrics(kind string) *endpointMetrics {
	return &endpointMetrics{
		requests: obs.Default.Counter("http_requests_total",
			"requests served per query endpoint", obs.L("endpoint", kind)),
		seconds: obs.Default.Histogram("http_request_seconds",
			"request latency per query endpoint", obs.LatencyBuckets, obs.L("endpoint", kind)),
		timeouts: obs.Default.Counter("queries_timeout_total",
			"queries abandoned by timeout or client disconnect", obs.L("kind", kind)),
		errors: obs.Default.Counter("http_errors_total",
			"4xx/5xx responses per query endpoint", obs.L("endpoint", kind)),
	}
}

// Server-wide protective-limit metrics.
var (
	mInFlight = obs.Default.Gauge("http_inflight_requests",
		"requests currently being served")
	mShed = obs.Default.Counter("http_shed_total",
		"requests shed with 503 by the max-in-flight cap")
	mPanics = obs.Default.Counter("http_panics_total",
		"handler panics recovered into JSON 500s")
)

// ctxKeyKind carries the query kind through the request context so the
// shared response helpers can label timeout metrics and error envelopes.
type ctxKeyKind struct{}

func kindOf(r *http.Request) string {
	if k, ok := r.Context().Value(ctxKeyKind{}).(string); ok {
		return k
	}
	return ""
}

// handle mounts h on mux under path, instrumented as the given query kind.
func (s *Server) handle(mux *http.ServeMux, path, kind string, h http.HandlerFunc) {
	mux.HandleFunc(path, s.instrument(kind, h))
}

// instrument wraps h with the per-endpoint metrics (request counter,
// latency histogram, error counter) and stores the kind in the request
// context for the shared error/timeout helpers.
func (s *Server) instrument(kind string, h http.HandlerFunc) http.HandlerFunc {
	em := newEndpointMetrics(kind)
	s.endpoints[kind] = em
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyKind{}, kind))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		em.requests.Inc()
		em.seconds.ObserveSince(start)
		if sw.status >= 400 {
			em.errors.Inc()
		}
	}
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// handleMetrics exposes the process registry in Prometheus text format. It
// sits outside the protective chain so scrapes keep working while the
// server is draining or shedding load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// mountPprof exposes the net/http/pprof handlers under /debug/pprof/ when
// Config.EnablePprof is set — profile capture for the perf PRs this
// observability layer exists to measure.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
