package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

var cachedDB *store.DB

func testServer(t testing.TB) *httptest.Server {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	srv := httptest.NewServer(New(cachedDB))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	var st struct {
		Sources  int
		Events   int64
		Articles int64
	}
	if code := getJSON(t, srv, "/api/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Sources == 0 || st.Events == 0 || st.Articles == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDefectsEndpoint(t *testing.T) {
	srv := testServer(t)
	var defects []struct {
		Class string `json:"class"`
		Count int64  `json:"count"`
	}
	if code := getJSON(t, srv, "/api/defects", &defects); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(defects) == 0 {
		t.Fatal("no defect classes")
	}
}

func TestTopPublishersEndpoint(t *testing.T) {
	srv := testServer(t)
	var rows []struct {
		Rank     int    `json:"rank"`
		Source   string `json:"source"`
		Articles int64  `json:"articles"`
	}
	if code := getJSON(t, srv, "/api/top-publishers?k=5", &rows); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rows) != 5 || rows[0].Articles < rows[4].Articles {
		t.Fatalf("rows %+v", rows)
	}
}

func TestTopEventsAndSizes(t *testing.T) {
	srv := testServer(t)
	var evs []struct {
		Mentions int64
	}
	if code := getJSON(t, srv, "/api/top-events?k=3", &evs); code != 200 {
		t.Fatal("top-events")
	}
	if len(evs) != 3 {
		t.Fatalf("events %d", len(evs))
	}
	var sizes struct {
		Counts []int64
		Alpha  float64
	}
	if code := getJSON(t, srv, "/api/event-sizes", &sizes); code != 200 {
		t.Fatal("event-sizes")
	}
	if sizes.Alpha <= 0 || len(sizes.Counts) == 0 {
		t.Fatalf("sizes %+v", sizes.Alpha)
	}
}

func TestCountryEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Reported   []string
		Publishing []string
		Cross      [][]int64
		Percent    [][]float64
	}
	if code := getJSON(t, srv, "/api/country?k=5", &out); code != 200 {
		t.Fatal("country")
	}
	if len(out.Reported) != 5 || len(out.Cross) != 5 || len(out.Cross[0]) != 5 {
		t.Fatalf("shape %+v", out.Reported)
	}
	if out.Reported[0] != "United States" {
		t.Fatalf("top reported %q", out.Reported[0])
	}
}

func TestFollowAndCoReportEndpoints(t *testing.T) {
	srv := testServer(t)
	var fr struct {
		Names   []string
		F       [][]float64
		ColSums []float64
	}
	if code := getJSON(t, srv, "/api/follow?k=4", &fr); code != 200 {
		t.Fatal("follow")
	}
	if len(fr.F) != 4 || len(fr.ColSums) != 4 {
		t.Fatal("follow shape")
	}
	var co struct {
		Names   []string
		Jaccard [][]float64
	}
	if code := getJSON(t, srv, "/api/coreport?k=4", &co); code != 200 {
		t.Fatal("coreport")
	}
	if len(co.Jaccard) != 4 {
		t.Fatal("coreport shape")
	}
}

func TestSeriesEndpoints(t *testing.T) {
	srv := testServer(t)
	for _, which := range []string{"articles", "events", "active-sources", "slow-articles"} {
		var s struct {
			Labels []string
			Values []int64
		}
		if code := getJSON(t, srv, "/api/series/"+which, &s); code != 200 {
			t.Fatalf("series %s", which)
		}
		if len(s.Labels) != len(s.Values) || len(s.Values) == 0 {
			t.Fatalf("series %s shape", which)
		}
	}
	resp, err := http.Get(srv.URL + "/api/series/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series status %d", resp.StatusCode)
	}
}

func TestWildfiresEndpoint(t *testing.T) {
	srv := testServer(t)
	var fires []struct {
		EarlySources int
	}
	if code := getJSON(t, srv, "/api/wildfires?window=16&min=3&k=5", &fires); code != 200 {
		t.Fatal("wildfires")
	}
	if len(fires) == 0 {
		t.Fatal("no wildfires")
	}
}

func TestDelayEndpoints(t *testing.T) {
	srv := testServer(t)
	var rows []struct {
		Name   string
		Median int64
	}
	if code := getJSON(t, srv, "/api/delays?k=3", &rows); code != 200 {
		t.Fatal("delays")
	}
	if len(rows) != 3 || rows[0].Name == "" {
		t.Fatal("delay rows")
	}
	var qd struct {
		Average []float64
		Median  []int64
	}
	if code := getJSON(t, srv, "/api/quarterly-delay", &qd); code != 200 {
		t.Fatal("quarterly-delay")
	}
	if len(qd.Average) == 0 || len(qd.Average) != len(qd.Median) {
		t.Fatal("quarterly shape")
	}
}

func TestWindowParameterRestricts(t *testing.T) {
	srv := testServer(t)
	var whole, windowed struct{ Articles int64 }
	if code := getJSON(t, srv, "/api/stats", &whole); code != 200 {
		t.Fatal("stats")
	}
	// Only 2016.
	path := "/api/stats?from=20160101000000&to=20170101000000"
	if code := getJSON(t, srv, path, &windowed); code != 200 {
		t.Fatal("windowed stats")
	}
	_ = windowed // Dataset() counts full tables; check a scan endpoint instead.

	var all, y2016 []struct{ Articles int64 }
	if code := getJSON(t, srv, "/api/top-publishers?k=1", &all); code != 200 {
		t.Fatal("top")
	}
	if code := getJSON(t, srv, "/api/top-publishers?k=1&from=20160101000000&to=20170101000000", &y2016); code != 200 {
		t.Fatal("top windowed")
	}
	if y2016[0].Articles >= all[0].Articles {
		t.Fatalf("window did not restrict: %d vs %d", y2016[0].Articles, all[0].Articles)
	}
}

func TestCountEndpoint(t *testing.T) {
	srv := testServer(t)
	var all, slow struct {
		Where    string `json:"where"`
		Articles int64  `json:"articles"`
	}
	if code := getJSON(t, srv, "/api/count", &all); code != 200 {
		t.Fatal("count")
	}
	if all.Articles == 0 {
		t.Fatal("no articles")
	}
	if code := getJSON(t, srv, "/api/count?where=delay>96", &slow); code != 200 {
		t.Fatal("filtered count")
	}
	if slow.Articles == 0 || slow.Articles >= all.Articles {
		t.Fatalf("filtered %d of %d", slow.Articles, all.Articles)
	}
	resp, err := http.Get(srv.URL + "/api/count?where=nosuchfield=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad expression status %d", resp.StatusCode)
	}
}

func TestThemeEndpoints(t *testing.T) {
	srv := testServer(t)
	var themes []struct {
		Theme    string
		Articles int64
	}
	if code := getJSON(t, srv, "/api/themes?k=5", &themes); code != 200 {
		t.Fatalf("themes status %d", code)
	}
	if len(themes) != 5 || themes[0].Articles == 0 {
		t.Fatalf("themes %+v", themes)
	}
	var trends []struct {
		Theme  string
		Values []int64
	}
	if code := getJSON(t, srv, "/api/theme-trends?theme="+themes[0].Theme, &trends); code != 200 {
		t.Fatal("trends")
	}
	if len(trends) != 1 || len(trends[0].Values) == 0 {
		t.Fatalf("trends %+v", trends)
	}
	resp, err := http.Get(srv.URL + "/api/theme-trends")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing theme param status %d", resp.StatusCode)
	}
	var ts struct {
		Labels []string
		Share  []float64
	}
	if code := getJSON(t, srv, "/api/translated-share", &ts); code != 200 {
		t.Fatal("translated-share")
	}
	if len(ts.Labels) != len(ts.Share) || len(ts.Share) == 0 {
		t.Fatal("translated-share shape")
	}
}

func TestBadParameters(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{
		"/api/top-publishers?k=zero",
		"/api/stats?workers=-1",
		"/api/stats?from=notatime",
		"/api/stats?from=20170101000000&to=20160101000000",
		"/api/wildfires?window=x",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d want 400", path, resp.StatusCode)
		}
	}
}
