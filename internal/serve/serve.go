// Package serve exposes the analysis engine over HTTP/JSON — the
// language-agnostic realization of the paper's planned "Python interface
// for ease of use". One loaded dataset serves concurrent read-only queries;
// every endpoint accepts optional workers, from and to parameters to pin
// parallelism and restrict the capture-time window.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/store"
)

// Server serves analysis queries over one immutable dataset.
type Server struct {
	db        *store.DB
	eng       *engine.Engine
	cfg       Config
	handler   http.Handler
	slots     chan struct{} // load-shedding semaphore, nil when unlimited
	ready     atomic.Bool
	inFlight  atomic.Int64
	endpoints map[string]*endpointMetrics
}

// New returns a server over the database with no protective limits.
func New(db *store.DB) *Server { return NewWithConfig(db, Config{}) }

// NewWithConfig returns a server with the given timeout and load-shedding
// limits applied to every query endpoint.
func NewWithConfig(db *store.DB, cfg Config) *Server {
	s := &Server{db: db, eng: engine.New(db), cfg: cfg, endpoints: make(map[string]*endpointMetrics)}
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.handle(mux, "/api/stats", "stats", s.handleStats)
	s.handle(mux, "/api/defects", "defects", s.handleDefects)
	s.handle(mux, "/api/top-publishers", "top-publishers", s.handleTopPublishers)
	s.handle(mux, "/api/top-events", "top-events", s.handleTopEvents)
	s.handle(mux, "/api/event-sizes", "event-sizes", s.handleEventSizes)
	s.handle(mux, "/api/country", "country", s.handleCountry)
	s.handle(mux, "/api/follow", "follow", s.handleFollow)
	s.handle(mux, "/api/coreport", "coreport", s.handleCoReport)
	s.handle(mux, "/api/delays", "delays", s.handleDelays)
	s.handle(mux, "/api/quarterly-delay", "quarterly-delay", s.handleQuarterlyDelay)
	s.handle(mux, "/api/series/", "series", s.handleSeries)
	s.handle(mux, "/api/wildfires", "wildfires", s.handleWildfires)
	s.handle(mux, "/api/count", "count", s.handleCount)
	s.handle(mux, "/api/themes", "themes", s.handleThemes)
	s.handle(mux, "/api/theme-trends", "theme-trends", s.handleThemeTrends)
	s.handle(mux, "/api/translated-share", "translated-share", s.handleTranslatedShare)
	// Health probes and the metrics scrape stay outside the protective
	// chain: a loaded or draining server must still answer liveness checks
	// and report what it is doing.
	root := http.NewServeMux()
	root.HandleFunc("/healthz", s.handleHealthz)
	root.HandleFunc("/readyz", s.handleReadyz)
	root.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mountPprof(root)
	}
	root.Handle("/", s.protect(mux))
	s.handler = root
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// queryEngine derives the engine view for a request: worker pinning, time
// windowing, and the request context — cancelling the request (client
// disconnect or timeout) stops the engine's parallel scans early.
func (s *Server) queryEngine(r *http.Request) (*engine.Engine, error) {
	e := s.eng.WithContext(r.Context())
	if kind := kindOf(r); kind != "" {
		e = e.WithKind(kind)
	}
	if ws := r.URL.Query().Get("workers"); ws != "" {
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("invalid workers %q", ws)
		}
		e = e.WithWorkers(w)
	}
	from, to := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if from != "" || to != "" {
		base := s.db.Meta.Start.IntervalIndex()
		lo, hi := int64(0), int64(s.db.Meta.Intervals)
		if from != "" {
			ts, err := gdelt.ParseTimestamp(from)
			if err != nil {
				return nil, fmt.Errorf("invalid from: %v", err)
			}
			lo = ts.IntervalIndex() - base
		}
		if to != "" {
			ts, err := gdelt.ParseTimestamp(to)
			if err != nil {
				return nil, fmt.Errorf("invalid to: %v", err)
			}
			hi = ts.IntervalIndex() - base
		}
		if lo < 0 {
			lo = 0
		}
		if hi > int64(s.db.Meta.Intervals) {
			hi = int64(s.db.Meta.Intervals)
		}
		if hi < lo {
			return nil, fmt.Errorf("empty window")
		}
		e = e.WithInterval(int32(lo), int32(hi))
	}
	return e, nil
}

func intParam(r *http.Request, name string, def, max int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid %s %q", name, v)
	}
	if n > max {
		n = max
	}
	return n, nil
}

// writeJSON sends v, unless the request was cancelled or timed out while
// the query ran — a cancelled engine scan returns a partial aggregate, so
// the result must not be served as if it were complete. The 504 names the
// query kind in the error envelope and records queries_timeout_total so
// timeout storms are visible on /metrics.
func writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	if err := r.Context().Err(); err != nil {
		kind := kindOf(r)
		if kind != "" {
			obs.Default.Counter("queries_timeout_total",
				"queries abandoned by timeout or client disconnect", obs.L("kind", kind)).Inc()
		}
		jsonErrorQuery(w, http.StatusGatewayTimeout, kind, "request cancelled: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding response: %v", err)
	}
}

func badRequest(w http.ResponseWriter, err error) {
	jsonError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, r, queries.Dataset(e))
}

func (s *Server) handleDefects(w http.ResponseWriter, r *http.Request) {
	type defect struct {
		Class string `json:"class"`
		Count int64  `json:"count"`
	}
	var out []defect
	for c, n := range s.db.Report.Counts {
		out = append(out, defect{Class: gdelt.DefectClass(c).String(), Count: n})
	}
	writeJSON(w, r, out)
}

func (s *Server) handleTopPublishers(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, s.db.Sources.Len())
	if err != nil {
		badRequest(w, err)
		return
	}
	ids, counts := queries.TopPublishers(e, k)
	type row struct {
		Rank     int    `json:"rank"`
		Source   string `json:"source"`
		Articles int64  `json:"articles"`
	}
	out := make([]row, len(ids))
	for i := range ids {
		out[i] = row{Rank: i + 1, Source: s.db.Sources.Name(ids[i]), Articles: counts[i]}
	}
	writeJSON(w, r, out)
}

func (s *Server) handleTopEvents(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, s.db.Events.Len())
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, r, queries.TopEvents(e, k))
}

func (s *Server) handleEventSizes(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	d := queries.EventSizes(e, 2)
	out := struct {
		Counts []int64 `json:"counts"`
		Alpha  float64 `json:"alpha"`
		R2     float64 `json:"r2"`
	}{Counts: d.Counts, Alpha: d.Fit.Alpha, R2: d.Fit.R2}
	writeJSON(w, r, out)
}

func (s *Server) handleCountry(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, len(gdelt.Countries))
	if err != nil {
		badRequest(w, err)
		return
	}
	cr, err := queries.CountryQuery(e)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	rows := cr.TopReported[:k]
	cols := cr.TopPublishing[:k]
	name := func(idx []int) []string {
		out := make([]string, len(idx))
		for i, c := range idx {
			out[i] = gdelt.Countries[c].Name
		}
		return out
	}
	cross := make([][]int64, k)
	pct := make([][]float64, k)
	co := make([][]float64, k)
	for i := 0; i < k; i++ {
		cross[i] = make([]int64, k)
		pct[i] = make([]float64, k)
		co[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			cross[i][j] = cr.Cross.At(rows[i], cols[j])
			pct[i][j] = cr.Fractions.At(rows[i], cols[j])
			co[i][j] = cr.CoReporting.At(cols[i], cols[j])
		}
	}
	writeJSON(w, r, struct {
		Reported    []string    `json:"reported"`
		Publishing  []string    `json:"publishing"`
		Cross       [][]int64   `json:"cross"`
		Percent     [][]float64 `json:"percent"`
		CoReporting [][]float64 `json:"coReporting"`
	}{name(rows), name(cols), cross, pct, co})
}

func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, s.db.Sources.Len())
	if err != nil {
		badRequest(w, err)
		return
	}
	ids, _ := queries.TopPublishers(e, k)
	fr := queries.FollowReport(e, ids)
	f := make([][]float64, k)
	for i := 0; i < k; i++ {
		f[i] = append([]float64(nil), fr.F.Row(i)...)
	}
	writeJSON(w, r, struct {
		Names   []string    `json:"names"`
		F       [][]float64 `json:"f"`
		ColSums []float64   `json:"colSums"`
	}{fr.Names, f, fr.ColSums})
}

func (s *Server) handleCoReport(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, s.db.Sources.Len())
	if err != nil {
		badRequest(w, err)
		return
	}
	ids, _ := queries.TopPublishers(e, k)
	co, err := queries.CoReport(e, ids)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	jac := make([][]float64, k)
	for i := 0; i < k; i++ {
		jac[i] = append([]float64(nil), co.Jaccard.Row(i)...)
	}
	writeJSON(w, r, struct {
		Names   []string    `json:"names"`
		Jaccard [][]float64 `json:"jaccard"`
	}{co.Names, jac})
}

func (s *Server) handleDelays(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, s.db.Sources.Len())
	if err != nil {
		badRequest(w, err)
		return
	}
	ids, _ := queries.TopPublishers(e, k)
	writeJSON(w, r, queries.PublisherDelays(e, ids))
}

func (s *Server) handleQuarterlyDelay(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, r, queries.QuarterlyDelays(e))
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	var series queries.QuarterlySeries
	switch r.URL.Path {
	case "/api/series/articles":
		series = queries.ArticlesPerQuarter(e)
	case "/api/series/events":
		series = queries.EventsPerQuarter(e)
	case "/api/series/active-sources":
		series = queries.ActiveSourcesPerQuarter(e)
	case "/api/series/slow-articles":
		series = queries.SlowArticlesPerQuarter(e)
	default:
		jsonError(w, http.StatusNotFound, "unknown series %q", r.URL.Path)
		return
	}
	writeJSON(w, r, series)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	expr := r.URL.Query().Get("where")
	n, err := queries.CountWhere(e, expr)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, r, struct {
		Where    string `json:"where"`
		Articles int64  `json:"articles"`
	}{expr, n})
}

// gkgError maps ErrNoGKG to 404 and other errors to 500.
func gkgError(w http.ResponseWriter, err error) {
	if err == queries.ErrNoGKG {
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	}
	jsonError(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleThemes(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, 1000)
	if err != nil {
		badRequest(w, err)
		return
	}
	top, err := queries.TopThemes(e, k)
	if err != nil {
		gkgError(w, err)
		return
	}
	writeJSON(w, r, top)
}

func (s *Server) handleThemeTrends(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	names := r.URL.Query()["theme"]
	if len(names) == 0 {
		badRequest(w, fmt.Errorf("at least one theme parameter required"))
		return
	}
	trends, err := queries.ThemeTrends(e, names)
	if err != nil {
		gkgError(w, err)
		return
	}
	writeJSON(w, r, trends)
}

func (s *Server) handleTranslatedShare(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	labels, share, err := queries.TranslatedShare(e)
	if err != nil {
		gkgError(w, err)
		return
	}
	writeJSON(w, r, struct {
		Labels []string  `json:"labels"`
		Share  []float64 `json:"share"`
	}{labels, share})
}

func (s *Server) handleWildfires(w http.ResponseWriter, r *http.Request) {
	e, err := s.queryEngine(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	window, err := intParam(r, "window", 8, 1<<20)
	if err != nil {
		badRequest(w, err)
		return
	}
	minSources, err := intParam(r, "min", 5, 1<<20)
	if err != nil {
		badRequest(w, err)
		return
	}
	k, err := intParam(r, "k", 10, 1000)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, r, queries.FastSpreadingEvents(e, int32(window), minSources, k))
}
