// Package serve exposes the analysis engine over HTTP/JSON — the
// language-agnostic realization of the paper's planned "Python interface
// for ease of use". One loaded dataset serves concurrent read-only queries.
//
// Routing is registry-driven: every query kind registered in
// internal/registry is served under /api/v1/<kind>, parameters validated
// against the kind's schema, results produced by the kind's Run function
// and memoized in a snapshot-keyed result cache (internal/qcache) with
// single-flight execution — N concurrent identical requests cost one scan.
// The pre-versioning /api/<endpoint> paths remain mounted as deprecated
// aliases: same results, same cache, plus a Deprecation header and a
// counter so operators can watch old clients drain before removal.
//
// Every endpoint accepts the common workers, from and to parameters to pin
// parallelism and restrict the capture-time window, and every failure path
// answers with the uniform JSON envelope {"error": ..., "kind": ...}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// Server serves analysis queries over one immutable dataset — either a
// monolithic store or a time-partitioned shard set (NewSharded), in which
// case queries fan out per shard and reduce through the global dictionary
// remaps.
type Server struct {
	db        *store.DB
	eng       *engine.Engine
	sview     *shard.View // non-nil when serving a sharded dataset
	snap      func() *shard.View // non-nil when serving a live append log
	cfg       Config
	handler   http.Handler
	slots     chan struct{} // load-shedding semaphore, nil when unlimited
	ready     atomic.Bool
	inFlight  atomic.Int64
	endpoints map[string]*endpointMetrics
	exec      *registry.Executor
	// v1 maps canonical kind -> instrumented handler, built once at
	// construction so the /metrics inventory is complete before traffic.
	v1 map[string]http.HandlerFunc
}

// legacyEndpoints maps the deprecated unversioned paths to registry kinds.
// The series paths are handled separately (one legacy endpoint fans out to
// four registered kinds).
var legacyEndpoints = []struct{ path, kind string }{
	{"/api/stats", "stats"},
	{"/api/defects", "defects"},
	{"/api/top-publishers", "top-publishers"},
	{"/api/top-events", "top-events"},
	{"/api/event-sizes", "event-sizes"},
	{"/api/country", "country"},
	{"/api/follow", "follow"},
	{"/api/coreport", "coreport"},
	{"/api/delays", "delays"},
	{"/api/quarterly-delay", "quarterly-delay"},
	{"/api/wildfires", "wildfires"},
	{"/api/count", "count"},
	{"/api/themes", "themes"},
	{"/api/theme-trends", "theme-trends"},
	{"/api/translated-share", "translated-share"},
}

// New returns a server over the database with no protective limits and the
// default result-cache budget.
func New(db *store.DB) *Server { return NewWithConfig(db, Config{}) }

// NewWithConfig returns a server with the given timeout, load-shedding and
// cache limits applied to every query endpoint.
func NewWithConfig(db *store.DB, cfg Config) *Server {
	return newServer(&Server{db: db, eng: engine.New(db)}, cfg)
}

// NewSharded returns a server over a time-partitioned shard set. Every
// query fans out per shard (registry ExecuteSharded); cache keys embed the
// per-shard version vector, and the cache's staleness predicate retires
// exactly the entries whose window overlaps a bumped shard — a tail-shard
// append keeps results for cold shards warm.
func NewSharded(sdb *shard.DB, cfg Config) *Server {
	return newServer(&Server{sview: sdb.View()}, cfg)
}

// NewLive returns a server over a live append log. Each request resolves
// the log's current snapshot, so results reflect every append folded
// before the request arrived while in-flight queries keep reading the
// snapshot they started on (shard.Log publishes copy-on-write worlds).
// The cache staleness predicate also consults the current snapshot:
// append bumps the tail shard's version, so exactly the cached windows
// overlapping the tail retire while cold-shard results stay warm.
func NewLive(lg *shard.Log, cfg Config) *Server {
	s := &Server{snap: func() *shard.View { return lg.Snapshot().View() }}
	s = newServer(s, cfg)
	if s.exec.Cache != nil {
		s.exec.Cache.SetStale(func(k qcache.Key) bool { return lg.Snapshot().StaleKey(k) })
	}
	return s
}

func newServer(s *Server, cfg Config) *Server {
	s.cfg = cfg
	s.endpoints = make(map[string]*endpointMetrics)
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.CacheBytes < 0 {
		s.exec = &registry.Executor{} // caching disabled: every query scans
	} else {
		s.exec = &registry.Executor{Cache: qcache.New(cfg.CacheBytes)}
	}
	if s.sview != nil && s.exec.Cache != nil {
		s.exec.Cache.SetStale(s.sview.DB().StaleKey)
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	// Versioned surface: one instrumented handler per registered kind,
	// dispatched by routeV1.
	s.v1 = make(map[string]http.HandlerFunc)
	for _, d := range registry.All() {
		d := d
		s.v1[d.Kind] = s.instrument(d.Kind, func(w http.ResponseWriter, r *http.Request) {
			s.serveQuery(w, r, d)
		})
	}
	mux.HandleFunc("/api/v1/", s.routeV1)
	// Deprecated unversioned aliases: same descriptors, same cache, plus
	// the Deprecation header and drain counter.
	for _, l := range legacyEndpoints {
		d := registry.MustLookup(l.kind)
		h := func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, d) }
		s.handle(mux, l.path, l.kind, s.deprecate(l.kind, "/api/v1/"+l.kind, h))
	}
	s.handle(mux, "/api/series/", "series",
		s.deprecate("series", "/api/v1/series-articles", s.legacySeries))
	// Health probes and the metrics scrape stay outside the protective
	// chain: a loaded or draining server must still answer liveness checks
	// and report what it is doing.
	root := http.NewServeMux()
	root.HandleFunc("/healthz", s.handleHealthz)
	root.HandleFunc("/readyz", s.handleReadyz)
	root.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mountPprof(root)
	}
	root.Handle("/", s.protect(mux))
	s.handler = root
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Cache returns the server's result cache, or nil when caching is disabled.
func (s *Server) Cache() *qcache.Cache { return s.exec.Cache }

// routeV1 resolves /api/v1/<kind> against the registry. Unknown kinds get
// the uniform 404 envelope naming the kind they asked for.
func (s *Server) routeV1(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/")
	d, ok := registry.Lookup(name)
	if !ok {
		jsonErrorQuery(w, http.StatusNotFound, name, "unknown query kind %q", name)
		return
	}
	s.v1[d.Kind](w, r)
}

// legacySeries fans the old /api/series/<which> paths out to the four
// registered series kinds, keeping the single "series" metric label the
// unversioned surface always had.
func (s *Server) legacySeries(w http.ResponseWriter, r *http.Request) {
	var kind string
	switch r.URL.Path {
	case "/api/series/articles":
		kind = "series-articles"
	case "/api/series/events":
		kind = "series-events"
	case "/api/series/active-sources":
		kind = "series-active-sources"
	case "/api/series/slow-articles":
		kind = "series-slow-articles"
	default:
		jsonErrorQuery(w, http.StatusNotFound, kindOf(r), "unknown series %q", r.URL.Path)
		return
	}
	s.serveQuery(w, r, registry.MustLookup(kind))
}

// serveQuery is the one code path every query endpoint runs: derive the
// engine view from the common parameters, validate the kind's own
// parameters against its schema, and execute through the cache. The
// X-Cache header reports how the result was obtained (hit, miss,
// coalesced) so clients and benchmarks can tell a scan from a lookup.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, d *registry.Descriptor) {
	kind := kindOf(r)
	q := r.URL.Query()
	if r.Method == http.MethodPost {
		// POST carries the parameters form-encoded in the body (long qlang
		// expressions outgrow comfortable URLs). ParseForm merges body and
		// URL values; body values come first, and the registry's
		// last-value-wins rule then lets the URL override the body.
		if err := r.ParseForm(); err != nil {
			jsonErrorQuery(w, http.StatusBadRequest, kind, "invalid form body: %v", err)
			return
		}
		q = r.Form
	}
	p, err := d.ParseURLValues(q)
	if err != nil {
		jsonErrorQuery(w, http.StatusBadRequest, kind, "%v", err)
		return
	}
	get := func(name string) []string { return q[name] }
	var (
		v       any
		outcome qcache.Outcome
	)
	base := s.sview
	if s.snap != nil {
		// Live mode: pin this request to the log's snapshot as of now.
		base = s.snap()
	}
	if base != nil {
		sv := base.WithContext(r.Context())
		if kind != "" {
			sv = sv.WithKind(kind)
		}
		sv, err = registry.DeriveView(sv, get)
		if err != nil {
			jsonErrorQuery(w, http.StatusBadRequest, kind, "%v", err)
			return
		}
		v, outcome, err = s.exec.ExecuteSharded(d, sv, p)
	} else {
		e := s.eng.WithContext(r.Context())
		if kind != "" {
			e = e.WithKind(kind)
		}
		e, err = registry.DeriveEngine(e, get)
		if err != nil {
			jsonErrorQuery(w, http.StatusBadRequest, kind, "%v", err)
			return
		}
		v, outcome, err = s.exec.Execute(d, e, p)
	}
	if err != nil {
		s.queryError(w, kind, err)
		return
	}
	if outcome != qcache.Bypass {
		w.Header().Set("X-Cache", outcome.String())
	}
	writeJSON(w, r, v)
}

// queryError maps an execution error to its transport status: cancellation
// to 504 (with the timeout counter the dashboards watch), parameter errors
// to 400, a missing GKG to 404, anything else to 500.
func (s *Server) queryError(w http.ResponseWriter, kind string, err error) {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if kind != "" {
			obs.Default.Counter("queries_timeout_total",
				"queries abandoned by timeout or client disconnect", obs.L("kind", kind)).Inc()
		}
		jsonErrorQuery(w, http.StatusGatewayTimeout, kind, "request cancelled: %v", err)
	case registry.IsBadParam(err):
		jsonErrorQuery(w, http.StatusBadRequest, kind, "%v", err)
	case errors.Is(err, queries.ErrNoGKG):
		jsonErrorQuery(w, http.StatusNotFound, kind, "%v", err)
	default:
		jsonErrorQuery(w, http.StatusInternalServerError, kind, "%v", err)
	}
}

// writeJSON sends v, unless the request was cancelled or timed out while
// the query ran — a cancelled engine scan returns a partial aggregate, so
// the result must not be served as if it were complete. The 504 names the
// query kind in the error envelope and records queries_timeout_total so
// timeout storms are visible on /metrics.
func writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	if err := r.Context().Err(); err != nil {
		kind := kindOf(r)
		if kind != "" {
			obs.Default.Counter("queries_timeout_total",
				"queries abandoned by timeout or client disconnect", obs.L("kind", kind)).Inc()
		}
		jsonErrorQuery(w, http.StatusGatewayTimeout, kind, "request cancelled: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding response: %v", err)
	}
}
