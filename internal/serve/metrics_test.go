package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gdeltmine/internal/obs"
)

// allEndpointKinds is the full query-endpoint inventory; /metrics must list
// per-endpoint series for every one of them even before traffic arrives.
var allEndpointKinds = []string{
	"stats", "defects", "top-publishers", "top-events", "event-sizes",
	"country", "follow", "coreport", "delays", "quarterly-delay", "series",
	"wildfires", "count", "themes", "theme-trends", "translated-share",
}

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsCoverEveryEndpoint asserts the acceptance criterion: the
// Prometheus exposition carries request counters and latency histograms
// for every query endpoint, pre-registered at construction.
func TestMetricsCoverEveryEndpoint(t *testing.T) {
	srv := testServer(t)
	out := scrape(t, srv)
	for _, kind := range allEndpointKinds {
		for _, series := range []string{
			`http_requests_total{endpoint="` + kind + `"}`,
			`http_request_seconds_count{endpoint="` + kind + `"}`,
			`queries_timeout_total{kind="` + kind + `"}`,
		} {
			if !strings.Contains(out, series) {
				t.Errorf("/metrics missing %s", series)
			}
		}
	}
	for _, family := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE http_request_seconds histogram",
		"# TYPE engine_scan_seconds histogram",
		"# TYPE parallel_scans_total counter",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestRequestsAdvanceEndpointMetrics runs one query and checks its counter
// and latency histogram moved, and that the engine recorded per-kind scans.
func TestRequestsAdvanceEndpointMetrics(t *testing.T) {
	srv := testServer(t)
	before := obs.Default.Snapshot()
	req0 := before.Find("http_requests_total", obs.L("endpoint", "country")).Value
	scan0 := float64(0)
	if m := before.Find("engine_scans_total", obs.L("kind", "country")); m != nil {
		scan0 = m.Value
	}
	var out any
	if code := getJSON(t, srv, "/api/country", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	after := obs.Default.Snapshot()
	if got := after.Find("http_requests_total", obs.L("endpoint", "country")).Value - req0; got != 1 {
		t.Fatalf("country requests advanced by %v, want 1", got)
	}
	lat := after.Find("http_request_seconds", obs.L("endpoint", "country"))
	if lat.Count == 0 {
		t.Fatal("country latency histogram has no samples")
	}
	scans := after.Find("engine_scans_total", obs.L("kind", "country"))
	if scans == nil || scans.Value <= scan0 {
		t.Fatalf("engine scans for kind=country did not advance: %+v", scans)
	}
}

// TestTimeoutRecordsCounterAndKind exercises the hardened 504 path: a
// nanosecond deadline expires before writeJSON, the envelope names the
// query, and queries_timeout_total{kind} advances.
func TestTimeoutRecordsCounterAndKind(t *testing.T) {
	db := hardTestDB(t)
	s := NewWithConfig(db, Config{RequestTimeout: time.Nanosecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	before := obs.Default.Counter("queries_timeout_total", "", obs.L("kind", "stats")).Value()
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var env struct {
		Error string `json:"error"`
		Query string `json:"query"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Query != "stats" {
		t.Fatalf("error envelope query = %q, want \"stats\" (envelope %+v)", env.Query, env)
	}
	if env.Error == "" {
		t.Fatal("error envelope missing error text")
	}
	after := obs.Default.Counter("queries_timeout_total", "", obs.L("kind", "stats")).Value()
	if after != before+1 {
		t.Fatalf("queries_timeout_total advanced %d -> %d, want +1", before, after)
	}
}

// TestPprofGatedByConfig: the profiling endpoints exist only when enabled.
func TestPprofGatedByConfig(t *testing.T) {
	db := hardTestDB(t)
	off := httptest.NewServer(New(db))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}

	on := httptest.NewServer(NewWithConfig(db, Config{EnablePprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d with EnablePprof", resp.StatusCode)
	}
}

// TestConcurrentMetricsScrapesDuringQueries is the race-focused test wired
// into ci.sh's -race run: scrapers hammer /metrics (registry reads,
// histogram snapshots) while query workers drive the engine's lock-free
// writers, and the JSON -stats snapshot path runs alongside.
func TestConcurrentMetricsScrapesDuringQueries(t *testing.T) {
	srv := testServer(t)
	const scrapers, queriers, iters = 4, 4, 8
	paths := []string{"/api/stats", "/api/country", "/api/top-publishers", "/api/series/articles"}
	var wg sync.WaitGroup
	errs := make(chan error, scrapers+queriers+1)
	wg.Add(scrapers + queriers + 1)
	for i := 0; i < scrapers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < queriers; i++ {
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				resp, err := http.Get(srv.URL + paths[(i+j)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	go func() {
		defer wg.Done()
		for j := 0; j < iters*2; j++ {
			if _, err := obs.Default.Snapshot().MarshalJSONIndent(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
