package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"gdeltmine/internal/obs"
)

// Config tunes the server's protective limits. The zero value disables all
// of them (no timeout, no load shedding), matching the pre-hardening
// behavior of New.
type Config struct {
	// RequestTimeout bounds the wall-clock time of one request; the
	// deadline propagates through the engine's scan context, so a timed-out
	// query stops consuming cores. Zero means no timeout.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently served requests; excess requests are
	// shed immediately with 503 rather than queued, keeping latency
	// bounded under overload. Zero means unlimited.
	MaxInFlight int
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose internals and cost CPU,
	// so they are opt-in per deployment.
	EnablePprof bool
	// CacheBytes is the approximate memory budget of the query result
	// cache. Zero selects qcache.DefaultMaxBytes; a negative value
	// disables caching entirely (every request scans).
	CacheBytes int64
}

// jsonError writes the uniform error envelope every failure path uses:
// {"error": "..."} with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	jsonErrorQuery(w, status, "", format, args...)
}

// jsonErrorQuery is jsonError with the query kind named in the envelope,
// so a client that fans out requests can attribute a failure to the query
// that caused it: {"error": "...", "kind": "country"}. The legacy "query"
// field carries the same value for clients written against the
// unversioned API.
func jsonErrorQuery(w http.ResponseWriter, status int, kind, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Kind  string `json:"kind,omitempty"`
		Query string `json:"query,omitempty"`
	}{fmt.Sprintf(format, args...), kind, kind})
}

// deprecate wraps a legacy unversioned endpoint: responses carry a
// Deprecation header plus a Link to the successor /api/v1 path, and a
// per-endpoint counter tracks how much traffic still arrives on the old
// spelling so its removal can be scheduled on evidence.
func (s *Server) deprecate(kind, successor string, h http.HandlerFunc) http.HandlerFunc {
	c := obs.Default.Counter("http_deprecated_requests_total",
		"requests served on deprecated unversioned /api/ paths", obs.L("endpoint", kind))
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		c.Inc()
		h(w, r)
	}
}

// SetReady flips the /readyz probe. A freshly constructed server is ready
// (its dataset is already loaded); cmd/gdeltserve flips it off when a
// shutdown begins so load balancers stop routing to a draining process.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// handleHealthz reports liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, struct {
		Status string `json:"status"`
	}{"ok"})
}

// ShardStatus is the per-shard readiness detail a sharded server reports
// on /readyz. The routing tier's health prober reads it to learn the shard
// count of a replica and to watch the tail shard's snapshot version advance
// under stream appends — the shard-aware half of its failover decisions.
type ShardStatus struct {
	// Count is the number of time-partition shards served.
	Count int `json:"count"`
	// Bounds is the K+1 capture-interval tiling of the shards.
	Bounds []int32 `json:"bounds"`
	// Versions is the per-shard snapshot version vector.
	Versions []uint64 `json:"versions"`
	// TailVersion is the version of the tail (append-target) shard.
	TailVersion uint64 `json:"tailVersion"`
}

// ReadyStatus is the /readyz response body. Shards is nil on a monolithic
// server.
type ReadyStatus struct {
	Status string       `json:"status"`
	Shards *ShardStatus `json:"shards,omitempty"`
}

// handleReadyz reports readiness: liveness plus "not draining". A sharded
// server additionally reports per-shard status so the router's prober can
// make shard-aware decisions.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	st := ReadyStatus{Status: "ready"}
	view := s.sview
	if s.snap != nil {
		view = s.snap()
	}
	if view != nil {
		sdb := view.DB()
		sh := &ShardStatus{
			Count:       sdb.K(),
			Bounds:      sdb.Bounds(),
			Versions:    make([]uint64, sdb.K()),
			TailVersion: sdb.Tail().Version(),
		}
		for i := range sh.Versions {
			sh.Versions[i] = sdb.Part(i).Version()
		}
		st.Shards = sh
	}
	writeJSON(w, r, st)
}

// protect is the middleware chain applied outside the mux: panic recovery,
// method filtering, load shedding, and the per-request timeout.
func (s *Server) protect(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				debug.PrintStack()
				mPanics.Inc()
				jsonError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		// Queries are read-only, so GET/HEAD everywhere; POST is additionally
		// accepted on the query endpoints, where long qlang expressions travel
		// form-encoded in the body (serveQuery merges body and URL values).
		switch {
		case r.Method == http.MethodGet || r.Method == http.MethodHead:
		case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/api/"):
		default:
			w.Header().Set("Allow", "GET, POST")
			jsonError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET or POST", r.Method)
			return
		}
		if s.cfg.MaxInFlight > 0 {
			select {
			case s.slots <- struct{}{}:
				defer func() { <-s.slots }()
			default:
				mShed.Inc()
				jsonError(w, http.StatusServiceUnavailable, "server overloaded: %d requests in flight", s.cfg.MaxInFlight)
				return
			}
		}
		mInFlight.Set(float64(s.inFlight.Add(1)))
		defer func() { mInFlight.Set(float64(s.inFlight.Add(-1))) }()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
