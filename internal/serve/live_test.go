package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// TestLiveServerSeesAppends pins the live-mode contract: a NewLive server
// resolves each request against the log's current snapshot, so folded
// appends become visible to the next query without restarting or
// re-pointing the server, and the result cache retires exactly the entries
// the append staled.
func TestLiveServerSeesAppends(t *testing.T) {
	cfg := gen.Small()
	cfg.End = 20150401000000
	cfg.Sources = 40
	cfg.GKG = false
	cfg.DefectMalformedMaster = 0
	cfg.DefectMissingArchives = 0
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// World with the last week of mentions withheld; they arrive as appends.
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := intervals - 7*gdelt.IntervalsPerDay
	b, err := store.NewBuilder(gdelt.Timestamp(cfg.Start), intervals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	var held []gdelt.Mention
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		if c.Mentions[j].Interval >= cut {
			held = append(held, mn)
			continue
		}
		b.AddMention(&mn)
	}
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := shard.Split(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	lg := shard.NewLog(sdb)

	server := NewLive(lg, Config{})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	stats := func() (int64, string) {
		resp, err := http.Get(srv.URL + "/api/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var st struct{ Articles int64 }
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Articles, resp.Header.Get("X-Cache")
	}

	before, outcome := stats()
	if outcome != "miss" {
		t.Fatalf("first query outcome %q, want miss", outcome)
	}
	if _, outcome = stats(); outcome != "hit" {
		t.Fatalf("repeat query outcome %q, want hit", outcome)
	}

	if _, err := lg.Append(nil, held); err != nil {
		t.Fatal(err)
	}

	after, outcome := stats()
	if outcome != "miss" {
		t.Fatalf("post-append outcome %q, want miss (append must stale the cached window)", outcome)
	}
	if want := before + int64(len(held)); after != want {
		t.Fatalf("articles after append %d, want %d (before %d + %d appended)", after, want, before, len(held))
	}

	// /readyz reports the appended world too: the tail version moved.
	var rs ReadyStatus
	if code := getJSON(t, srv, "/readyz", &rs); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if rs.Shards == nil || rs.Shards.TailVersion != lg.Snapshot().Tail().Version() {
		t.Fatalf("readyz shard status %+v, want live tail version %d", rs.Shards, lg.Snapshot().Tail().Version())
	}
}
