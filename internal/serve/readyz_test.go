package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"gdeltmine/internal/shard"
)

// TestReadyzMonolithHasNoShardStatus keeps the monolith /readyz shape
// stable: status only, no shards block.
func TestReadyzMonolithHasNoShardStatus(t *testing.T) {
	srv := testServer(t)
	var st ReadyStatus
	if code := getJSON(t, srv, "/readyz", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Status != "ready" {
		t.Fatalf("status %q, want ready", st.Status)
	}
	if st.Shards != nil {
		t.Fatalf("monolith /readyz reports shard status: %+v", st.Shards)
	}
}

// TestReadyzShardedReportsPerShardStatus checks the shard-aware /readyz a
// routing tier's prober depends on: shard count, the interval tiling, the
// per-shard version vector, and the tail shard's version.
func TestReadyzShardedReportsPerShardStatus(t *testing.T) {
	testServer(t) // populates cachedDB
	const k = 3
	sdb, err := shard.Split(cachedDB, k)
	if err != nil {
		t.Fatal(err)
	}
	server := NewSharded(sdb, Config{})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	var st ReadyStatus
	if code := getJSON(t, srv, "/readyz", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Status != "ready" || st.Shards == nil {
		t.Fatalf("sharded /readyz %+v", st)
	}
	sh := st.Shards
	if sh.Count != k {
		t.Fatalf("shard count %d, want %d", sh.Count, k)
	}
	if len(sh.Bounds) != k+1 {
		t.Fatalf("bounds %v, want %d entries tiling the interval range", sh.Bounds, k+1)
	}
	for i := 1; i < len(sh.Bounds); i++ {
		if sh.Bounds[i] < sh.Bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", sh.Bounds)
		}
	}
	if len(sh.Versions) != k {
		t.Fatalf("version vector %v, want %d entries", sh.Versions, k)
	}
	if want := sh.Versions[k-1]; sh.TailVersion != want {
		t.Fatalf("tail version %d, want tail shard's %d", sh.TailVersion, want)
	}

	// Draining flips /readyz to 503 regardless of shard detail.
	server.SetReady(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, want 503", resp.StatusCode)
	}
}
