package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gdeltmine/internal/store"
)

func hardTestDB(t testing.TB) *store.DB {
	t.Helper()
	testServer(t) // populates cachedDB
	return cachedDB
}

// errorEnvelope decodes the uniform {"error": "..."} body.
func errorEnvelope(t *testing.T, body io.Reader) string {
	t.Helper()
	var env struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v", err)
	}
	if env.Error == "" {
		t.Fatal("empty error field in envelope")
	}
	return env.Error
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/stats", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Fatalf("Allow header %q, want GET, POST", allow)
	}
	errorEnvelope(t, resp.Body)

	// POST is part of the query surface (form-encoded qlang expressions),
	// so it must answer like the GET.
	post, err := http.Post(srv.URL+"/api/stats", "application/x-www-form-urlencoded", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d, want 200", post.StatusCode)
	}
}

func TestErrorsUseJSONEnvelope(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{
		"/api/stats?workers=potato",  // bad query parameter
		"/api/series/nope",           // unknown series
		"/api/top-publishers?k=zero", // bad k
		"/api/theme-trends",          // missing required parameter
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode < 400 {
			t.Fatalf("%s: status %d, want an error", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q, want application/json", path, ct)
		}
		errorEnvelope(t, resp.Body)
		resp.Body.Close()
	}
}

func TestHealthAndReadiness(t *testing.T) {
	db := hardTestDB(t)
	s := New(db)
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// A draining server fails readiness but stays live.
	s.SetReady(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	errorEnvelope(t, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestLoadShedding(t *testing.T) {
	db := hardTestDB(t)
	s := NewWithConfig(db, Config{MaxInFlight: 1})

	// Occupy the single slot with a request parked inside a handler.
	release := make(chan struct{})
	entered := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	wrapped := s.protect(blocked)
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/api/stats")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// Second request must be shed immediately with 503, not queued.
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request status %d, want 503", resp.StatusCode)
	}
	msg := errorEnvelope(t, resp.Body)
	resp.Body.Close()
	if !strings.Contains(msg, "overloaded") {
		t.Fatalf("shed message %q", msg)
	}
	close(release)
	<-done
}

func TestPanicRecoveryReturnsJSON500(t *testing.T) {
	db := hardTestDB(t)
	s := New(db)
	boom := s.protect(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	srv := httptest.NewServer(boom)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	msg := errorEnvelope(t, resp.Body)
	if !strings.Contains(msg, "handler exploded") {
		t.Fatalf("message %q lacks panic value", msg)
	}
}

// TestRequestTimeoutCancelsQuery gives requests a deadline that expires
// before the query can finish and checks the server reports the timeout via
// the envelope instead of serving a silently partial aggregate.
func TestRequestTimeoutCancelsQuery(t *testing.T) {
	db := hardTestDB(t)
	s := NewWithConfig(db, Config{RequestTimeout: time.Nanosecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/country")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	msg := errorEnvelope(t, resp.Body)
	if !strings.Contains(msg, "cancelled") {
		t.Fatalf("message %q", msg)
	}
}

// TestShutdownUnderLoad hammers the server with concurrent queries while it
// shuts down — the race-detector drill for the drain path (run under
// go test -race). Every request must either succeed or fail with a
// well-formed shed/timeout/connection error; nothing may panic or race.
func TestShutdownUnderLoad(t *testing.T) {
	db := hardTestDB(t)
	s := NewWithConfig(db, Config{RequestTimeout: 2 * time.Second, MaxInFlight: 8})
	httpSrv := httptest.NewServer(s)

	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			paths := []string{"/api/stats", "/api/top-publishers", "/api/count?where=delay>4", "/readyz"}
			for i := 0; ; i++ {
				select {
				case <-stopped:
					return
				default:
				}
				resp, err := http.Get(httpSrv.URL + paths[(w+i)%len(paths)])
				if err != nil {
					return // connection refused mid-shutdown is expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	s.SetReady(false)
	httpSrv.Close() // blocks until outstanding requests finish
	close(stopped)
	wg.Wait()

	if n := s.InFlight(); n != 0 {
		t.Fatalf("%d requests still tracked in flight after shutdown", n)
	}
}

// TestCancelledRequestStopsEngine issues a query whose context is cancelled
// mid-flight and checks the handler notices: the engine scan stops and the
// response never arrives as a 200.
func TestCancelledRequestStopsEngine(t *testing.T) {
	db := hardTestDB(t)
	s := New(db)
	srv := httptest.NewServer(s)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/country?workers=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// The query beat the cancel; that's fine, but it must be complete.
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestHeadRequestAllowed(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Head(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d, want 200", resp.StatusCode)
	}
}
