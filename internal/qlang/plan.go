package qlang

// Static pushdown classification (DESIGN.md §13). Every clause falls into
// exactly one class, decided by the field table alone — no store needed —
// so monolith and every shard classify an expression identically:
//
//   - bitmap: an equality on a bitmap-indexed column (source,
//     sourcecountry, eventcountry). The store holds a roaring bitmap of
//     mention rows per value, so a conjunction of bitmap clauses
//     intersects to a row list before any kernel runs.
//   - range: a comparison (other than !=) on a capture-time column
//     (interval, quarter). Mentions are interval-sorted, so these restrict
//     the scan to a contiguous row range by binary search — no bitmap
//     materialization needed.
//   - residual: everything else (tone, doclen, confidence, delay,
//     articles, and any != clause). Residual clauses bind to the closure
//     evaluator and run only over the rows the indexed clauses survive.

// ClauseClass is the pushdown class of one clause.
type ClauseClass int

const (
	// ClassResidual clauses evaluate as per-row closures.
	ClassResidual ClauseClass = iota
	// ClassBitmap clauses intersect precomputed row bitmaps.
	ClassBitmap
	// ClassRange clauses narrow the scan to a contiguous row range.
	ClassRange
)

// Classify returns the pushdown class of a clause.
func Classify(c Clause) ClauseClass {
	switch c.Field {
	case "source", "sourcecountry", "eventcountry":
		if c.Op == OpEq {
			return ClassBitmap
		}
	case "interval", "quarter":
		if c.Op != OpNe {
			return ClassRange
		}
	}
	return ClassResidual
}

// Split partitions clauses into the three pushdown classes, preserving
// order within each class.
func Split(clauses []Clause) (bm, rng, residual []Clause) {
	for _, c := range clauses {
		switch Classify(c) {
		case ClassBitmap:
			bm = append(bm, c)
		case ClassRange:
			rng = append(rng, c)
		default:
			residual = append(residual, c)
		}
	}
	return bm, rng, residual
}
