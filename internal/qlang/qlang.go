// Package qlang implements the user-defined query filter language of the
// query execution engine: conjunctions of typed field comparisons compiled
// to a per-row predicate over the columnar store. It gives CLI and HTTP
// users ad-hoc filtering ("sourcecountry=UK and delay>96 and
// quarter>=2016Q1") without writing Go.
//
// Grammar (conjunction-only; AND may be written "and" or "&&"):
//
//	expr   := clause { ("and" | "&&") clause }
//	clause := field op value
//	op     := "=" | "!=" | "<" | "<=" | ">" | ">="
//	value  := integer | float | quarter (2016Q3) | string (bare or 'quoted')
//
// Fields (evaluated per mention row):
//
//	delay          publishing delay in 15-minute intervals
//	interval       capture interval index
//	quarter        calendar quarter (compare against 2016Q3-style literals)
//	doclen         article length in characters
//	tone           document tone (float)
//	confidence     event-match confidence 0..100
//	source         source domain (string; equality operators only)
//	sourcecountry  publisher country FIPS code (string)
//	eventcountry   event country FIPS code (string; untagged events never match =)
//	articles       the mentioned event's total article count
package qlang

import (
	"fmt"
	"strconv"
	"strings"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// Op is a comparison operator.
type Op int

// Comparison operators in precedence-free conjunction clauses.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[string]Op{
	"=": OpEq, "==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (o Op) String() string {
	for s, op := range opNames {
		if op == o && s != "==" {
			return s
		}
	}
	return "?"
}

// Filter is a compiled predicate over mention rows of one DB.
type Filter struct {
	db    *store.DB
	preds []func(row int) bool
	expr  string
}

// Expr returns the source expression.
func (f *Filter) Expr() string { return f.expr }

// Match reports whether mention row satisfies every clause.
func (f *Filter) Match(row int) bool {
	for _, p := range f.preds {
		if !p(row) {
			return false
		}
	}
	return true
}

// Clauses returns the number of compiled clauses.
func (f *Filter) Clauses() int { return len(f.preds) }

// Compile parses and compiles expr against db. An empty expression compiles
// to the match-everything filter.
func Compile(db *store.DB, expr string) (*Filter, error) {
	f := &Filter{db: db, expr: expr}
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	pos := 0
	for pos < len(toks) {
		if toks[pos].kind == tokAnd {
			pos++
			continue
		}
		if pos+3 > len(toks) {
			return nil, fmt.Errorf("qlang: incomplete clause at %q", remainder(toks[pos:]))
		}
		field, op, val := toks[pos], toks[pos+1], toks[pos+2]
		pos += 3
		if field.kind != tokWord {
			return nil, fmt.Errorf("qlang: expected field name, got %q", field.text)
		}
		if op.kind != tokOp {
			return nil, fmt.Errorf("qlang: expected operator after %q, got %q", field.text, op.text)
		}
		pred, err := f.compileClause(strings.ToLower(field.text), opNames[op.text], val)
		if err != nil {
			return nil, err
		}
		f.preds = append(f.preds, pred)
	}
	return f, nil
}

func remainder(toks []token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.text
	}
	return strings.Join(parts, " ")
}

// compileClause resolves the field and builds a closure over the columns.
func (f *Filter) compileClause(field string, op Op, val token) (func(row int) bool, error) {
	db := f.db
	switch field {
	case "delay":
		return intClause(op, val, func(row int) int64 { return int64(db.Mentions.Delay[row]) })
	case "interval":
		return intClause(op, val, func(row int) int64 { return int64(db.Mentions.Interval[row]) })
	case "doclen":
		return intClause(op, val, func(row int) int64 { return int64(db.Mentions.DocLen[row]) })
	case "confidence":
		return intClause(op, val, func(row int) int64 { return int64(db.Mentions.Confidence[row]) })
	case "articles":
		return intClause(op, val, func(row int) int64 {
			return int64(db.Events.NumArticles[db.Mentions.EventRow[row]])
		})
	case "tone":
		fv, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("qlang: tone needs a number, got %q", val.text)
		}
		return floatClause(op, fv, func(row int) float64 { return float64(db.Mentions.Tone[row]) })
	case "quarter":
		q, err := parseQuarter(db, val.text)
		if err != nil {
			return nil, err
		}
		return intClause(op, token{kind: tokNumber, text: strconv.Itoa(q)},
			func(row int) int64 { return int64(db.QuarterOfInterval(db.Mentions.Interval[row])) })
	case "source":
		if op != OpEq && op != OpNe {
			return nil, fmt.Errorf("qlang: source supports = and != only")
		}
		id := db.Sources.Lookup(val.text)
		eq := op == OpEq
		return func(row int) bool {
			return (db.Mentions.Source[row] == id) == eq
		}, nil
	case "sourcecountry", "eventcountry":
		if op != OpEq && op != OpNe {
			return nil, fmt.Errorf("qlang: %s supports = and != only", field)
		}
		ci := gdelt.CountryIndex(strings.ToUpper(val.text))
		if ci < 0 {
			return nil, fmt.Errorf("qlang: unknown country code %q", val.text)
		}
		want := int16(ci)
		eq := op == OpEq
		if field == "sourcecountry" {
			return func(row int) bool {
				return (db.SourceCountry[db.Mentions.Source[row]] == want) == eq
			}, nil
		}
		return func(row int) bool {
			return (db.Events.Country[db.Mentions.EventRow[row]] == want) == eq
		}, nil
	}
	return nil, fmt.Errorf("qlang: unknown field %q", field)
}

func intClause(op Op, val token, get func(row int) int64) (func(row int) bool, error) {
	v, err := strconv.ParseInt(val.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("qlang: expected an integer, got %q", val.text)
	}
	return func(row int) bool { return cmpInt(get(row), v, op) }, nil
}

func floatClause(op Op, v float64, get func(row int) float64) (func(row int) bool, error) {
	return func(row int) bool { return cmpFloat(get(row), v, op) }, nil
}

func cmpInt(a, b int64, op Op) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(a, b float64, op Op) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}

// parseQuarter converts "2016Q3" to the DB's quarter index.
func parseQuarter(db *store.DB, s string) (int, error) {
	su := strings.ToUpper(s)
	i := strings.IndexByte(su, 'Q')
	if i < 0 {
		return 0, fmt.Errorf("qlang: quarter literal %q (want e.g. 2016Q3)", s)
	}
	year, err1 := strconv.Atoi(su[:i])
	qq, err2 := strconv.Atoi(su[i+1:])
	if err1 != nil || err2 != nil || qq < 1 || qq > 4 {
		return 0, fmt.Errorf("qlang: quarter literal %q (want e.g. 2016Q3)", s)
	}
	baseY := db.Meta.Start.Year()
	baseQ := (db.Meta.Start.Month()-1)/3 + 1
	return (year-baseY)*4 + (qq - baseQ), nil
}

// --- lexer ---

type tokKind int

const (
	tokWord tokKind = iota
	tokOp
	tokNumber
	tokAnd
)

type token struct {
	kind tokKind
	text string
}

func lex(expr string) ([]token, error) {
	var out []token
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			j := i + 1
			if j < len(expr) && expr[j] == '=' {
				j++
			}
			op := expr[i:j]
			if _, ok := opNames[op]; !ok {
				return nil, fmt.Errorf("qlang: bad operator %q", op)
			}
			out = append(out, token{tokOp, op})
			i = j
		case c == '&':
			if i+1 >= len(expr) || expr[i+1] != '&' {
				return nil, fmt.Errorf("qlang: bad operator %q", "&")
			}
			out = append(out, token{tokAnd, "&&"})
			i += 2
		case c == '\'':
			j := strings.IndexByte(expr[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("qlang: unterminated string at %q", expr[i:])
			}
			out = append(out, token{tokWord, expr[i+1 : i+1+j]})
			i += j + 2
		default:
			j := i
			for j < len(expr) && !strings.ContainsRune(" \t\n=!<>&'", rune(expr[j])) {
				j++
			}
			word := expr[i:j]
			if strings.EqualFold(word, "and") {
				out = append(out, token{tokAnd, word})
			} else {
				out = append(out, token{tokWord, word})
			}
			i = j
		}
	}
	return out, nil
}
