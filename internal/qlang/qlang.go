// Package qlang implements the user-defined query language of the query
// execution engine: conjunctions of typed field comparisons, parsed into a
// small composable algebra (ast.go) with an optional group-by/aggregate
// spec (agg.go). An expression canonicalizes to a stable string for result
// caching, classifies statically into index-answerable and residual
// clauses for predicate pushdown (plan.go), and binds against a store into
// a per-row closure filter — the fallback evaluation path, and the
// reference the pushdown plans are differentially tested against. It gives
// CLI and HTTP users ad-hoc filtering ("sourcecountry=UK and delay>96 and
// quarter>=2016Q1") without writing Go.
//
// Grammar (conjunction-only; AND may be written "and" or "&&"):
//
//	expr   := clause { ("and" | "&&") clause }
//	clause := field op value
//	op     := "=" | "!=" | "<" | "<=" | ">" | ">="
//	value  := integer | float | quarter (2016Q3) | string (bare or 'quoted')
//
// Fields (evaluated per mention row):
//
//	delay          publishing delay in 15-minute intervals
//	interval       capture interval index
//	quarter        calendar quarter (compare against 2016Q3-style literals)
//	doclen         article length in characters
//	tone           document tone (float)
//	confidence     event-match confidence 0..100
//	source         source domain (string; equality operators only)
//	sourcecountry  publisher country FIPS code (string)
//	eventcountry   event country FIPS code (string; untagged events never match =)
//	articles       the mentioned event's total article count
package qlang

import (
	"fmt"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// Op is a comparison operator.
type Op int

// Comparison operators in precedence-free conjunction clauses.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[string]Op{
	"=": OpEq, "==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Filter is a compiled predicate over mention rows of one DB — the
// closure-evaluation path. The pushdown planner binds only the residual
// (non-indexed) clauses of an expression this way; Compile binds all of
// them, which is the reference behavior differential tests pin plans to.
type Filter struct {
	db    *store.DB
	preds []func(row int) bool
	expr  string
}

// Expr returns the source expression.
func (f *Filter) Expr() string { return f.expr }

// Match reports whether mention row satisfies every clause. A nil Filter
// matches every row, so "no residual clauses" needs no special casing.
func (f *Filter) Match(row int) bool {
	if f == nil {
		return true
	}
	for _, p := range f.preds {
		if !p(row) {
			return false
		}
	}
	return true
}

// Clauses returns the number of compiled clauses.
func (f *Filter) Clauses() int { return len(f.preds) }

// Compile parses and compiles expr against db. An empty expression compiles
// to the match-everything filter.
func Compile(db *store.DB, expr string) (*Filter, error) {
	e, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	return Bind(db, e.Clauses, expr)
}

// Bind compiles an already-parsed clause list against db, labelling the
// filter with expr. The pushdown planner uses it to bind just the residual
// clauses of an expression whose indexed clauses a bitmap plan answers.
func Bind(db *store.DB, clauses []Clause, expr string) (*Filter, error) {
	f := &Filter{db: db, expr: expr}
	for _, c := range clauses {
		pred, err := bindClause(db, c)
		if err != nil {
			return nil, err
		}
		f.preds = append(f.preds, pred)
	}
	return f, nil
}

// QuarterIndex converts a parsed quarter clause's absolute quarter into
// db's quarter index (possibly out of range: a quarter outside the archive
// matches no row under =, every row under an always-true inequality).
func QuarterIndex(db *store.DB, v Value) int {
	baseAbs := db.Meta.Start.Year()*4 + (db.Meta.Start.Month()-1)/3
	return int(v.Int) - baseAbs
}

// bindClause resolves the field and builds a closure over the columns. The
// clause arrives type-checked by Parse, so value conversions cannot fail;
// only store-dependent resolution happens here.
func bindClause(db *store.DB, c Clause) (func(row int) bool, error) {
	op, v := c.Op, c.Value
	switch c.Field {
	case "delay":
		return intPred(op, v.Int, func(row int) int64 { return int64(db.Mentions.Delay[row]) }), nil
	case "interval":
		return intPred(op, v.Int, func(row int) int64 { return int64(db.Mentions.Interval[row]) }), nil
	case "doclen":
		return intPred(op, v.Int, func(row int) int64 { return int64(db.Mentions.DocLen[row]) }), nil
	case "confidence":
		return intPred(op, v.Int, func(row int) int64 { return int64(db.Mentions.Confidence[row]) }), nil
	case "articles":
		return intPred(op, v.Int, func(row int) int64 {
			return int64(db.Events.NumArticles[db.Mentions.EventRow[row]])
		}), nil
	case "tone":
		fv := v.Float
		return func(row int) bool { return cmpFloat(float64(db.Mentions.Tone[row]), fv, op) }, nil
	case "quarter":
		q := int64(QuarterIndex(db, v))
		return intPred(op, q, func(row int) int64 {
			return int64(db.QuarterOfInterval(db.Mentions.Interval[row]))
		}), nil
	case "source":
		id := db.Sources.Lookup(v.Str)
		eq := op == OpEq
		return func(row int) bool {
			return (db.Mentions.Source[row] == id) == eq
		}, nil
	case "sourcecountry", "eventcountry":
		want := int16(gdelt.CountryIndex(v.Str))
		eq := op == OpEq
		if c.Field == "sourcecountry" {
			return func(row int) bool {
				return (db.SourceCountry[db.Mentions.Source[row]] == want) == eq
			}, nil
		}
		return func(row int) bool {
			return (db.Events.Country[db.Mentions.EventRow[row]] == want) == eq
		}, nil
	}
	return nil, fmt.Errorf("qlang: unknown field %q", c.Field)
}

func intPred(op Op, v int64, get func(row int) int64) func(row int) bool {
	return func(row int) bool { return cmpInt(get(row), v, op) }
}

func cmpInt(a, b int64, op Op) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(a, b float64, op Op) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}
