package qlang

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

var cachedDB *store.DB

func testDB(t testing.TB) *store.DB {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	return cachedDB
}

func count(t *testing.T, f *Filter, db *store.DB) int64 {
	t.Helper()
	var n int64
	for row := 0; row < db.Mentions.Len(); row++ {
		if f.Match(row) {
			n++
		}
	}
	return n
}

func TestEmptyExpressionMatchesAll(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "")
	if err != nil {
		t.Fatal(err)
	}
	if f.Clauses() != 0 {
		t.Fatal("clauses in empty filter")
	}
	if got := count(t, f, db); got != int64(db.Mentions.Len()) {
		t.Fatalf("matched %d of %d", got, db.Mentions.Len())
	}
}

func TestDelayClause(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "delay > 96")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, d := range db.Mentions.Delay {
		if d > 96 {
			want++
		}
	}
	if got := count(t, f, db); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestConjunction(t *testing.T) {
	db := testDB(t)
	for _, expr := range []string{
		"delay>96 and doclen<1000",
		"delay>96 && doclen<1000",
		"delay > 96 AND doclen < 1000",
	} {
		f, err := Compile(db, expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		var want int64
		for row := 0; row < db.Mentions.Len(); row++ {
			if db.Mentions.Delay[row] > 96 && db.Mentions.DocLen[row] < 1000 {
				want++
			}
		}
		if got := count(t, f, db); got != want {
			t.Fatalf("%q: got %d want %d", expr, got, want)
		}
	}
}

func TestCountryClauses(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "sourcecountry=UK and eventcountry=US")
	if err != nil {
		t.Fatal(err)
	}
	uk := int16(gdelt.CountryIndex("UK"))
	us := int16(gdelt.CountryIndex("US"))
	var want int64
	for row := 0; row < db.Mentions.Len(); row++ {
		if db.SourceCountry[db.Mentions.Source[row]] == uk &&
			db.Events.Country[db.Mentions.EventRow[row]] == us {
			want++
		}
	}
	got := count(t, f, db)
	if got != want || want == 0 {
		t.Fatalf("got %d want %d", got, want)
	}
	// Negation.
	f2, err := Compile(db, "sourcecountry!=UK")
	if err != nil {
		t.Fatal(err)
	}
	var notUK int64
	for row := 0; row < db.Mentions.Len(); row++ {
		if db.SourceCountry[db.Mentions.Source[row]] != uk {
			notUK++
		}
	}
	if got := count(t, f2, db); got != notUK {
		t.Fatalf("negation got %d want %d", got, notUK)
	}
}

func TestQuarterClause(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "quarter>=2016Q1 and quarter<=2016Q4")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for row := 0; row < db.Mentions.Len(); row++ {
		q := db.QuarterOfInterval(db.Mentions.Interval[row])
		if q >= 4 && q <= 7 { // 2015Q1 is quarter 0
			want++
		}
	}
	got := count(t, f, db)
	if got != want || want == 0 {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestSourceClause(t *testing.T) {
	db := testDB(t)
	name := db.Sources.Name(0)
	f, err := Compile(db, "source='"+name+"'")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(db.SourceMentions(0)))
	if got := count(t, f, db); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	// Unknown source matches nothing under = (id -1).
	f2, err := Compile(db, "source=nosuch.example")
	if err != nil {
		t.Fatal(err)
	}
	if got := count(t, f2, db); got != 0 {
		t.Fatalf("unknown source matched %d", got)
	}
}

func TestToneAndArticlesClauses(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "tone<-2.5 and articles>=10")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for row := 0; row < db.Mentions.Len(); row++ {
		if float64(db.Mentions.Tone[row]) < -2.5 &&
			db.Events.NumArticles[db.Mentions.EventRow[row]] >= 10 {
			want++
		}
	}
	if got := count(t, f, db); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"delay >",                // incomplete
		"delay ! 5",              // bad operator
		"nosuchfield = 1",        // unknown field
		"delay = abc",            // non-integer
		"tone = abc",             // non-float
		"quarter = 2016X3",       // bad quarter literal
		"quarter = Q3",           // bad quarter literal
		"source < x",             // unsupported op
		"sourcecountry < UK",     // unsupported op
		"sourcecountry = XXFAKE", // unknown country
		"delay & 5",              // lone ampersand
		"source='unterminated",   // unterminated string
		"= 5",                    // missing field
		"delay delay 5",          // missing operator
	}
	for _, expr := range bad {
		if _, err := Compile(db, expr); err == nil {
			t.Fatalf("%q compiled", expr)
		}
	}
}

func TestOpString(t *testing.T) {
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.String() == "?" {
			t.Fatalf("op %d has no name", op)
		}
	}
}

func TestFilterExpr(t *testing.T) {
	db := testDB(t)
	f, err := Compile(db, "delay>1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Expr() != "delay>1" || f.Clauses() != 1 {
		t.Fatal("metadata")
	}
}
