package qlang

import (
	"testing"
)

// Canonicalization is what makes qlang expressions safe cache keys: every
// semantically identical spelling — clause order, "&&" vs "and", "==" vs
// "=", quoting, case, numeric formatting — must map to one string, and
// that string must be a fixed point.

func TestCanonicalEquivalentSpellings(t *testing.T) {
	groups := [][]string{
		{"tone>5 and delay>2", "delay>2 && tone>5.0", "  DELAY > 2 AND tone > 5 "},
		{"source=nytimes.com", "source == nytimes.com", "source='nytimes.com'", `source="nytimes.com"`},
		{"sourcecountry=us", "SourceCountry == US", "sourcecountry='US'", `sourcecountry=="US"`},
		{"quarter>=2016q3", "quarter >= 2016Q3"},
		{"doclen<100 and doclen<100", "doclen<100"}, // duplicates collapse
		{"tone>5 and tone>5.000", "tone>5"},
		{"articles>=010", "articles>=10"}, // leading zeros normalize
		{"", "   "},
	}
	for _, g := range groups {
		want := CanonicalExpr(g[0])
		for _, s := range g[1:] {
			if got := CanonicalExpr(s); got != want {
				t.Errorf("CanonicalExpr(%q) = %q, want %q (from %q)", s, got, want, g[0])
			}
		}
		// Fixed point: canonicalizing a canonical form changes nothing.
		if again := CanonicalExpr(want); again != want {
			t.Errorf("canonical form %q not a fixed point (got %q)", want, again)
		}
	}
}

func TestCanonicalDistinctExpressions(t *testing.T) {
	// Different meanings must keep different canonical forms.
	pairs := [][2]string{
		{"tone>5", "tone>=5"},
		{"delay>2", "delay>3"},
		{"source=a.com", "source=b.com"},
		{"sourcecountry=US", "eventcountry=US"},
		{"quarter=2016Q1", "quarter=2016Q2"},
	}
	for _, p := range pairs {
		if CanonicalExpr(p[0]) == CanonicalExpr(p[1]) {
			t.Errorf("distinct expressions %q and %q collapsed to one canonical form", p[0], p[1])
		}
	}
}

func TestCanonicalExprUnparseablePassthrough(t *testing.T) {
	for _, s := range []string{"tone>", "bogus=1", "tone>>5", "quarter=20x6Q1"} {
		if got := CanonicalExpr(s); got != s {
			t.Errorf("CanonicalExpr(%q) = %q, want unchanged", s, got)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		expr string
		want []ClauseClass
	}{
		{"source=a.com", []ClauseClass{ClassBitmap}},
		{"sourcecountry=US", []ClauseClass{ClassBitmap}},
		{"eventcountry=UK", []ClauseClass{ClassBitmap}},
		{"sourcecountry!=US", []ClauseClass{ClassResidual}},
		{"interval>=100", []ClauseClass{ClassRange}},
		{"quarter=2016Q1", []ClauseClass{ClassRange}},
		{"quarter!=2016Q1", []ClauseClass{ClassResidual}},
		{"tone>5", []ClauseClass{ClassResidual}},
		{"doclen<100 and source=a.com and interval<50",
			[]ClauseClass{ClassResidual, ClassBitmap, ClassRange}},
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		for i, cl := range e.Clauses {
			if got := Classify(cl); got != c.want[i] {
				t.Errorf("Classify(%q clause %d) = %d, want %d", c.expr, i, got, c.want[i])
			}
		}
		bm, rng, res := Split(e.Clauses)
		if len(bm)+len(rng)+len(res) != len(e.Clauses) {
			t.Errorf("Split(%q) lost clauses: %d+%d+%d != %d",
				c.expr, len(bm), len(rng), len(res), len(e.Clauses))
		}
	}
}
