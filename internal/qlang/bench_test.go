package qlang

import "testing"

func BenchmarkCompile(b *testing.B) {
	db := testDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(db, "sourcecountry=UK and delay>96 and quarter>=2016Q1 and doclen<2000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchScan(b *testing.B) {
	db := testDB(b)
	f, err := Compile(db, "sourcecountry=UK and delay>96")
	if err != nil {
		b.Fatal(err)
	}
	rows := db.Mentions.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		for row := 0; row < rows; row++ {
			if f.Match(row) {
				n++
			}
		}
		if n == 0 {
			b.Fatal("no matches")
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}
