package qlang

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// parseFuzzSeeds are the grammar's interesting corners: every field and
// operator, both conjunction spellings, quoting, unicode, and a batch of
// near-miss malformed inputs.
func parseFuzzSeeds() []string {
	return []string{
		"",
		"tone>5",
		"delay >= 2 and doclen < 100",
		"source=nytimes.com && sourcecountry=US",
		"eventcountry != UK",
		"quarter>=2016Q3 and quarter<=2017Q1",
		"interval>100 and interval<=2000",
		"confidence=100 and articles>3",
		"source='spaced domain.com'",
		"source=''",
		"tone>-2.5e1",
		"tone>",
		"and and and",
		"source==a.com",
		"quarter=9999999999Q9",
		"articles>=9223372036854775807",
		"articles>9223372036854775808",
		`source="double quoted.com"`,
		`source="unterminated`,
		"source='unterminated",
		"tone>>5",
		"&& tone>5",
		"source=é.com",
		"SOURCE = A.COM AND Tone > 0",
	}
}

// FuzzParse pins the parser/canonicalizer contract on arbitrary input:
// Parse never panics; when it accepts, the canonical form reparses to the
// same canonical form (idempotence), clause count survives the round trip,
// and classification is stable across the round trip — the properties the
// result cache and the pushdown planner lean on. The checked-in corpus
// under testdata/fuzz/FuzzParse replays on every plain `go test` run.
func FuzzParse(f *testing.F) {
	for _, s := range parseFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := Parse(expr)
		if err != nil {
			return // rejected input; the contract is only "no panic"
		}
		canon := e.Canonical()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, expr, err)
		}
		if again := e2.Canonical(); again != canon {
			t.Fatalf("canonicalization not idempotent: %q -> %q -> %q", expr, canon, again)
		}
		// Canonicalization may collapse duplicate clauses but never invent
		// or lose distinct ones.
		if len(e2.Clauses) > len(e.Clauses) {
			t.Fatalf("round trip grew clauses: %d -> %d (%q)", len(e.Clauses), len(e2.Clauses), expr)
		}
		bm1, rng1, res1 := Split(e.Clauses)
		bm2, rng2, res2 := Split(e2.Clauses)
		if len(bm2) > len(bm1) || len(rng2) > len(rng1) || len(res2) > len(res1) {
			t.Fatalf("round trip changed pushdown classes: (%d,%d,%d) -> (%d,%d,%d) for %q",
				len(bm1), len(rng1), len(res1), len(bm2), len(rng2), len(res2), expr)
		}
	})
}

// TestWriteParseFuzzSeedCorpus regenerates the checked-in seed corpus when
// GDELT_UPDATE_FUZZ_CORPUS=1 is set — the same pattern as the manifest
// decoder's corpus.
func TestWriteParseFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("GDELT_UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set GDELT_UPDATE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range parseFuzzSeeds() {
		content := "go test fuzz v1\nstring(" + strconv.Quote(s) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
