package qlang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gdeltmine/internal/gdelt"
)

// The parsed representation of a qlang expression. Parsing is store-free:
// an Expr depends only on the grammar and the static field table, so the
// same AST can be canonicalized for cache keys, classified for predicate
// pushdown, and bound against any number of shard-local stores. Binding
// (qlang.go) is where a store enters the picture.

// ValueKind is the lexical type of a clause's right-hand side.
type ValueKind int

const (
	// ValInt is an integer literal.
	ValInt ValueKind = iota
	// ValFloat is a floating-point literal (tone comparisons).
	ValFloat
	// ValQuarter is a calendar-quarter literal such as 2016Q3.
	ValQuarter
	// ValString is a bare or quoted string (source domains, country codes).
	ValString
)

// Value is one typed comparison value. Str always holds the canonical
// rendering; the typed fields hold the parsed form the binder compares
// against columns. For ValQuarter, Int is the absolute quarter index
// (year*4 + quarter-1), converted to a store-relative index at bind time.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
}

// Clause is one typed comparison: field op value.
type Clause struct {
	Field string
	Op    Op
	Value Value
}

// String renders the clause canonically: lowercase field, canonical
// operator spelling, normalized value.
func (c Clause) String() string {
	return c.Field + c.Op.String() + canonValue(c)
}

// Expr is a parsed conjunction of clauses. The zero clause list matches
// every row.
type Expr struct {
	Clauses []Clause
	src     string
}

// Source returns the expression text as written.
func (e *Expr) Source() string { return e.src }

// Canonical renders the expression in canonical form: clauses sorted by
// (field, op, value), duplicates collapsed, one spelling per operator
// ("=" not "=="), values normalized (integers without leading zeros,
// country codes uppercased, strings quoted only when the grammar needs
// it), joined with " and ". Semantically identical spellings — clause
// order, "&&" vs "and", '=' vs '==', quoting — all map to one string, so
// result caches keyed on the canonical form never double-cache.
func (e *Expr) Canonical() string {
	if len(e.Clauses) == 0 {
		return ""
	}
	parts := make([]string, len(e.Clauses))
	for i, c := range e.Clauses {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	out := parts[:1]
	for _, p := range parts[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return strings.Join(out, " and ")
}

// CanonicalExpr canonicalizes a qlang expression, returning the input
// unchanged when it does not parse (the caller will surface the parse
// error on execution; an unparseable string cannot alias a parseable one
// because parseable keys are always fully canonalized).
func CanonicalExpr(expr string) string {
	e, err := Parse(expr)
	if err != nil {
		return expr
	}
	return e.Canonical()
}

// fieldKind is the comparison type a field supports.
type fieldKind int

const (
	fieldInt fieldKind = iota
	fieldFloat
	fieldQuarter
	fieldString // equality operators only
)

// fieldTable drives parsing, canonicalization and pushdown classification.
var fieldTable = map[string]fieldKind{
	"delay":         fieldInt,
	"interval":      fieldInt,
	"doclen":        fieldInt,
	"confidence":    fieldInt,
	"articles":      fieldInt,
	"tone":          fieldFloat,
	"quarter":       fieldQuarter,
	"source":        fieldString,
	"sourcecountry": fieldString,
	"eventcountry":  fieldString,
}

// countryField reports whether the field's values are FIPS country codes.
func countryField(field string) bool {
	return field == "sourcecountry" || field == "eventcountry"
}

// Parse lexes and parses expr into its AST, validating field names,
// operator compatibility and value syntax. It needs no store: everything a
// store contributes (source ids, quarter base) binds later. An empty
// expression parses to the match-everything Expr.
func Parse(expr string) (*Expr, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	e := &Expr{src: expr}
	pos := 0
	for pos < len(toks) {
		if toks[pos].kind == tokAnd {
			pos++
			continue
		}
		if pos+3 > len(toks) {
			return nil, fmt.Errorf("qlang: incomplete clause at %q", remainder(toks[pos:]))
		}
		field, op, val := toks[pos], toks[pos+1], toks[pos+2]
		pos += 3
		if field.kind != tokWord {
			return nil, fmt.Errorf("qlang: expected field name, got %q", field.text)
		}
		if op.kind != tokOp {
			return nil, fmt.Errorf("qlang: expected operator after %q, got %q", field.text, op.text)
		}
		c, err := parseClause(strings.ToLower(field.text), opNames[op.text], val.text)
		if err != nil {
			return nil, err
		}
		e.Clauses = append(e.Clauses, c)
	}
	return e, nil
}

// parseClause type-checks one clause against the field table.
func parseClause(field string, op Op, val string) (Clause, error) {
	c := Clause{Field: field, Op: op}
	kind, ok := fieldTable[field]
	if !ok {
		return c, fmt.Errorf("qlang: unknown field %q", field)
	}
	switch kind {
	case fieldInt:
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return c, fmt.Errorf("qlang: expected an integer, got %q", val)
		}
		c.Value = Value{Kind: ValInt, Str: strconv.FormatInt(v, 10), Int: v}
	case fieldFloat:
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return c, fmt.Errorf("qlang: %s needs a number, got %q", field, val)
		}
		c.Value = Value{Kind: ValFloat, Str: strconv.FormatFloat(f, 'g', -1, 64), Float: f}
	case fieldQuarter:
		abs, err := parseQuarterLiteral(val)
		if err != nil {
			return c, err
		}
		c.Value = Value{Kind: ValQuarter,
			Str: fmt.Sprintf("%dQ%d", abs/4, abs%4+1), Int: int64(abs)}
	case fieldString:
		if op != OpEq && op != OpNe {
			return c, fmt.Errorf("qlang: %s supports = and != only", field)
		}
		s := val
		if countryField(field) {
			s = strings.ToUpper(s)
			if gdelt.CountryIndex(s) < 0 {
				return c, fmt.Errorf("qlang: unknown country code %q", val)
			}
		}
		c.Value = Value{Kind: ValString, Str: s}
	}
	return c, nil
}

// parseQuarterLiteral converts "2016Q3" to the absolute quarter index
// year*4 + (q-1).
func parseQuarterLiteral(s string) (int, error) {
	su := strings.ToUpper(s)
	i := strings.IndexByte(su, 'Q')
	if i < 0 {
		return 0, fmt.Errorf("qlang: quarter literal %q (want e.g. 2016Q3)", s)
	}
	year, err1 := strconv.Atoi(su[:i])
	qq, err2 := strconv.Atoi(su[i+1:])
	if err1 != nil || err2 != nil || qq < 1 || qq > 4 || year < 0 {
		return 0, fmt.Errorf("qlang: quarter literal %q (want e.g. 2016Q3)", s)
	}
	return year*4 + qq - 1, nil
}

// canonValue renders a clause value in its canonical textual form, quoting
// strings only when the bare spelling would not survive the lexer.
func canonValue(c Clause) string {
	if c.Value.Kind != ValString {
		return c.Value.Str
	}
	s := c.Value.Str
	if s == "" || strings.EqualFold(s, "and") || strings.ContainsAny(s, " \t\n=!<>&'\"") {
		// A token can hold one quote kind but never both (the grammar has
		// no escapes), so the other kind always delimits safely.
		if strings.ContainsRune(s, '\'') {
			return `"` + s + `"`
		}
		return "'" + s + "'"
	}
	return s
}

func remainder(toks []token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.text
	}
	return strings.Join(parts, " ")
}

// --- lexer ---

type tokKind int

const (
	tokWord tokKind = iota
	tokOp
	tokAnd
)

type token struct {
	kind tokKind
	text string
}

func lex(expr string) ([]token, error) {
	var out []token
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			j := i + 1
			if j < len(expr) && expr[j] == '=' {
				j++
			}
			op := expr[i:j]
			if _, ok := opNames[op]; !ok {
				return nil, fmt.Errorf("qlang: bad operator %q", op)
			}
			out = append(out, token{tokOp, op})
			i = j
		case c == '&':
			if i+1 >= len(expr) || expr[i+1] != '&' {
				return nil, fmt.Errorf("qlang: bad operator %q", "&")
			}
			out = append(out, token{tokAnd, "&&"})
			i += 2
		case c == '\'' || c == '"':
			j := strings.IndexByte(expr[i+1:], c)
			if j < 0 {
				return nil, fmt.Errorf("qlang: unterminated string at %q", expr[i:])
			}
			out = append(out, token{tokWord, expr[i+1 : i+1+j]})
			i += j + 2
		default:
			j := i
			for j < len(expr) && !strings.ContainsRune(" \t\n=!<>&'\"", rune(expr[j])) {
				j++
			}
			word := expr[i:j]
			if strings.EqualFold(word, "and") {
				out = append(out, token{tokAnd, word})
			} else {
				out = append(out, token{tokWord, word})
			}
			i = j
		}
	}
	return out, nil
}
