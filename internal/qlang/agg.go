package qlang

import (
	"fmt"
	"strings"
)

// The group-by/aggregate half of the algebra: a where-expression narrows
// the mention rows, a group field buckets them by a dictionary-encoded
// column, and an aggregate reduces each bucket. Parsing is store-free like
// the where grammar; execution lives in internal/queries (monolith) and
// internal/shard (fan-out).

// AggKind is the reduction applied per group (or to the whole selection
// when no group field is given).
type AggKind int

const (
	// AggCount counts matching mention rows.
	AggCount AggKind = iota
	// AggSum sums a numeric field over matching rows.
	AggSum
	// AggMean averages a numeric field over matching rows.
	AggMean
)

// Agg is one parsed aggregate spec: "count", "sum:<field>" or
// "mean:<field>" over a numeric mention field.
type Agg struct {
	Kind  AggKind
	Field string
}

// aggFields are the numeric fields sum/mean may aggregate.
var aggFields = map[string]bool{
	"delay": true, "doclen": true, "tone": true, "confidence": true, "articles": true,
}

// ParseAgg parses an aggregate spec. The empty string means count.
func ParseAgg(s string) (Agg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "count" {
		return Agg{Kind: AggCount}, nil
	}
	name, field, ok := strings.Cut(s, ":")
	if !ok {
		return Agg{}, fmt.Errorf("qlang: aggregate %q (want count, sum:<field> or mean:<field>)", s)
	}
	var kind AggKind
	switch name {
	case "sum":
		kind = AggSum
	case "mean":
		kind = AggMean
	default:
		return Agg{}, fmt.Errorf("qlang: aggregate %q (want count, sum:<field> or mean:<field>)", s)
	}
	if !aggFields[field] {
		return Agg{}, fmt.Errorf("qlang: aggregate field %q (want delay, doclen, tone, confidence or articles)", field)
	}
	return Agg{Kind: kind, Field: field}, nil
}

// String renders the spec canonically.
func (a Agg) String() string {
	switch a.Kind {
	case AggSum:
		return "sum:" + a.Field
	case AggMean:
		return "mean:" + a.Field
	}
	return "count"
}

// GroupFields are the dictionary-encoded columns a query may group by.
var GroupFields = []string{"source", "sourcecountry", "eventcountry", "quarter"}

// ParseGroup validates a group field. The empty string means a scalar
// (ungrouped) aggregate.
func ParseGroup(s string) (string, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return "", nil
	}
	for _, g := range GroupFields {
		if s == g {
			return g, nil
		}
	}
	return "", fmt.Errorf("qlang: group field %q (want source, sourcecountry, eventcountry or quarter)", s)
}
