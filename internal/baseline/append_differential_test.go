package baseline

import (
	"reflect"
	"testing"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/store"
)

// Append-then-query battery: the stream append path (store.DB.AppendChunk)
// mutates tables whose derived indexes — above all the per-source bitmap
// postings the planner prunes with — are built at assembly time. The hazard
// class pinned here is an append that extends the columns but leaves a
// derived index stale: the closure scan would see the new rows while the
// bitmap-pruned plans keep answering from the pre-append snapshot, a silent
// wrong answer. Two pins: appending a feed suffix must be byte-equivalent
// to rebuilding from the whole feed (tables, dictionary, and every bitmap),
// and every planner mode must agree with the scan on the post-append data.

// buildTruncated assembles a store from the corpus records with mentions
// restricted to capture intervals below cut (cut < 0 keeps everything),
// without GKG, so both sides of the append≡rebuild comparison share one
// build path.
func buildTruncated(t *testing.T, c *gen.Corpus, cut int32) (*store.DB, store.BuildStats) {
	t.Helper()
	b, err := store.NewBuilder(gdelt.Timestamp(c.World.Cfg.Start),
		int32(c.World.Days()*gdelt.IntervalsPerDay))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	for j := range c.Mentions {
		if cut >= 0 && c.Mentions[j].Interval >= cut {
			continue
		}
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
	}
	db, stats, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return db, stats
}

func TestAppendChunkEqualsRebuild(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	cut := intervals - 45*gdelt.IntervalsPerDay

	full, fullStats := buildTruncated(t, c, -1)
	db, preStats := buildTruncated(t, c, cut)
	var suffix []gdelt.Mention
	for j := range c.Mentions {
		if c.Mentions[j].Interval >= cut {
			suffix = append(suffix, c.MentionRecord(j))
		}
	}
	if len(suffix) == 0 {
		t.Fatal("corpus has no mentions past the cut; lower it")
	}

	// The same panel resolves in both builds: intern order is identical.
	ranked, _ := queries.TopPublishers(engine.New(full), full.Sources.Len())
	panel := ranked[:min(16, len(ranked))]

	// Pre-append answer through the bitmap-pruned plan; its post-append
	// disagreement with the scan is exactly the stale-postings hazard.
	pre, err := queries.CoReport(engine.New(db).WithPlan(engine.PlanRows), panel)
	if err != nil {
		t.Fatal(err)
	}

	st, err := db.AppendChunk(nil, suffix)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 1 {
		t.Fatalf("version %d after one append, want 1", db.Version())
	}
	// Drop accounting composes: truncated build + appended chunk == full build.
	if got, want := preStats.DanglingMentions+st.DanglingMentions, fullStats.DanglingMentions; got != want {
		t.Errorf("dangling mentions: truncated+append = %d, full build = %d", got, want)
	}
	if got, want := preStats.DroppedMentions+st.DroppedMentions, fullStats.DroppedMentions; got != want {
		t.Errorf("dropped mentions: truncated+append = %d, full build = %d", got, want)
	}

	// Tables and dictionary byte-identical to the full rebuild.
	if !reflect.DeepEqual(db.Events, full.Events) {
		t.Fatal("event table after append differs from a fresh rebuild")
	}
	if !reflect.DeepEqual(db.Mentions, full.Mentions) {
		t.Fatal("mention table after append differs from a fresh rebuild")
	}
	if !reflect.DeepEqual(db.Sources.Names(), full.Sources.Names()) {
		t.Fatal("source dictionary after append differs from a fresh rebuild")
	}

	// Every bitmap posting identical to a fresh build — the stale-bitmap pin.
	for s := int32(0); int(s) < db.Sources.Len(); s++ {
		if !bitmap.Equal(db.SourceRowBitmap(s), full.SourceRowBitmap(s)) ||
			!bitmap.Equal(db.SourceEventBitmap(s), full.SourceEventBitmap(s)) ||
			!bitmap.Equal(db.SourceRepeatEventBitmap(s), full.SourceRepeatEventBitmap(s)) {
			t.Fatalf("source %d bitmap postings differ from a fresh rebuild", s)
		}
	}

	// Every planner mode answers the post-append question identically...
	wantCo, err := queries.CoReportScan(engine.New(db), panel)
	if err != nil {
		t.Fatal(err)
	}
	wantFo := queries.FollowReportScan(engine.New(db), panel)
	for _, mode := range plannerModes {
		e := engine.New(db).WithPlan(mode)
		gotCo, err := queries.CoReport(e, panel)
		if err != nil {
			t.Fatal(err)
		}
		eqSeries(t, "post-append coreport pair", gotCo.Pair.Data, wantCo.Pair.Data)
		eqSeries(t, "post-append coreport events", gotCo.EventCounts, wantCo.EventCounts)
		eqFloats(t, "post-append coreport jaccard", gotCo.Jaccard.Data, wantCo.Jaccard.Data, 1)
		gotFo := queries.FollowReport(e, panel)
		eqSeries(t, "post-append follow n", gotFo.N.Data, wantFo.N.Data)
		eqSeries(t, "post-append follow articles", gotFo.Articles, wantFo.Articles)
		eqFloats(t, "post-append follow f", gotFo.F.Data, wantFo.F.Data, 1)
	}
	// ...and differently from before the append, so the pin has teeth.
	if reflect.DeepEqual(pre.Pair.Data, wantCo.Pair.Data) {
		t.Fatal("append did not change the co-reporting answer; hazard pin is vacuous")
	}
}

func TestAppendChunkNewEventsAndSources(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	db, _ := buildTruncated(t, c, -1)
	base := db.Meta.Start.IntervalIndex()
	lastIv := db.Meta.Intervals - 1
	ts := gdelt.IntervalStart(base + int64(lastIv))
	maxID := db.Events.ID[len(db.Events.ID)-1]
	existingID := db.Events.ID[len(db.Events.ID)/2]
	exRow := db.EventRowByID(existingID)
	exArticles := db.Events.NumArticles[exRow]
	oldSrc := db.Sources.Len()

	evs := []gdelt.Event{
		{GlobalEventID: maxID + 10, Day: 20191230, ActionCountry: "US", DateAdded: ts,
			SourceURL: "http://brand-new.example/a"},
		{GlobalEventID: maxID + 20, Day: 20191230, DateAdded: ts,
			SourceURL: "http://brand-new.example/b"},
		{GlobalEventID: existingID, Day: 19000101, DateAdded: ts}, // duplicate: stored row wins
	}
	web := func(id int64, src string) gdelt.Mention {
		return gdelt.Mention{GlobalEventID: id, EventTime: ts, MentionTime: ts,
			MentionType: gdelt.MentionTypeWeb, SourceName: src, DocLen: 1000, Confidence: 80}
	}
	mns := []gdelt.Mention{
		web(maxID+10, "tail-news.example"),
		web(maxID+10, db.Sources.Name(0)),
		web(existingID, "tail-news.example"),
		web(maxID+999, "tail-news.example"), // dangling: unknown event
		{GlobalEventID: existingID, EventTime: ts, MentionTime: ts,
			MentionType: 3, SourceName: "tv.example"}, // non-web: dropped
		func() gdelt.Mention { // out of range: dropped
			m := web(existingID, "tail-news.example")
			m.MentionTime = gdelt.IntervalStart(base + int64(db.Meta.Intervals) + 5)
			return m
		}(),
	}

	st, err := db.AppendChunk(evs, mns)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppendedEvents != 2 || st.DuplicateEvents != 1 {
		t.Fatalf("event stats %+v, want 2 appended / 1 duplicate", st)
	}
	if st.AppendedMentions != 3 || st.DanglingMentions != 1 || st.DroppedMentions != 2 {
		t.Fatalf("mention stats %+v, want 3 appended / 1 dangling / 2 dropped", st)
	}
	newRow := db.EventRowByID(maxID + 10)
	if newRow < 0 || db.Events.NumArticles[newRow] != 2 || db.Events.FirstMention[newRow] != lastIv {
		t.Fatalf("appended event row %d metadata wrong", newRow)
	}
	if r := db.EventRowByID(maxID + 20); r < 0 || db.Events.NumArticles[r] != 0 {
		t.Fatalf("mention-less appended event missing or counted")
	}
	if got := db.Events.NumArticles[db.EventRowByID(existingID)]; got != exArticles+1 {
		t.Fatalf("existing event articles %d, want %d", got, exArticles+1)
	}
	if db.Events.Day[db.EventRowByID(existingID)] == 19000101 {
		t.Fatal("duplicate chunk event overwrote the stored record")
	}
	ns := db.Sources.Lookup("tail-news.example")
	if ns < int32(oldSrc) {
		t.Fatalf("new source interned at %d, want a fresh id >= %d", ns, oldSrc)
	}
	if got := db.SourceRowBitmap(ns).Cardinality(); got != 2 {
		t.Fatalf("new source row bitmap has %d rows, want 2", got)
	}
	if got := db.SourceEventBitmap(ns).Cardinality(); got != 2 {
		t.Fatalf("new source event bitmap has %d events, want 2", got)
	}

	// Post-append, all planner modes still agree on a panel that includes
	// the brand-new source.
	ranked, _ := queries.TopPublishers(engine.New(db), db.Sources.Len())
	panel := append([]int32{ns}, ranked[:min(8, len(ranked))]...)
	want, err := queries.CoReportScan(engine.New(db), panel)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range plannerModes {
		got, err := queries.CoReport(engine.New(db).WithPlan(mode), panel)
		if err != nil {
			t.Fatal(err)
		}
		eqSeries(t, "new-source coreport pair", got.Pair.Data, want.Pair.Data)
		eqSeries(t, "new-source coreport events", got.EventCounts, want.EventCounts)
	}

	// A chunk regressing behind the stored tail errors without mutating.
	v, nm := db.Version(), db.Mentions.Len()
	m := web(existingID, "tail-news.example")
	m.MentionTime = gdelt.IntervalStart(base) // interval 0
	if _, err := db.AppendChunk(nil, []gdelt.Mention{m}); err == nil {
		t.Fatal("append behind the stored tail succeeded")
	}
	if db.Version() != v || db.Mentions.Len() != nm {
		t.Fatal("failed append mutated the store")
	}
}
