package baseline

import (
	"sort"

	"gdeltmine/internal/gdelt"
)

// This file extends the row store with naive single-threaded reference
// answers for the remaining query kinds, so the differential harness can
// check the parallel engine against an implementation that shares none of
// its machinery: no dictionary, no postings, no quarter index — every
// answer is re-derived from the record structs and calendar timestamps.

// quarterOf maps a calendar timestamp to a quarter index relative to the
// archive start, clamped to the archive's quarter range (mirroring the
// engine's interval clamping for out-of-archive timestamps).
func (rs *RowStore) quarterOf(ts gdelt.Timestamp) int {
	base := rs.start.Year()*4 + (rs.start.Month()-1)/3
	q := ts.Year()*4 + (ts.Month()-1)/3 - base
	if q < 0 {
		q = 0
	}
	if q >= rs.quarters {
		q = rs.quarters - 1
	}
	return q
}

// ArticleCountsBySource counts articles per source name.
func (rs *RowStore) ArticleCountsBySource() map[string]int64 {
	out := make(map[string]int64)
	for i := range rs.Mentions {
		out[rs.Mentions[i].SourceName]++
	}
	return out
}

// ArticleCountsByEvent counts articles per event id; events that were never
// mentioned do not appear.
func (rs *RowStore) ArticleCountsByEvent() map[int64]int64 {
	out := make(map[int64]int64)
	for i := range rs.Mentions {
		out[rs.Mentions[i].GlobalEventID]++
	}
	return out
}

// TopCounts returns the k largest values of a count map in descending
// order — the reference answer for any top-k query, indifferent to how
// ties are broken among equal counts.
func TopCounts[K comparable](m map[K]int64, k int) []int64 {
	vals := make([]int64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] > vals[b] })
	if len(vals) > k {
		vals = vals[:k]
	}
	return vals
}

// ArticlesPerQuarter recomputes Figure 5 from mention timestamps.
func (rs *RowStore) ArticlesPerQuarter() []int64 {
	out := make([]int64, rs.quarters)
	for i := range rs.Mentions {
		out[rs.quarterOf(rs.Mentions[i].MentionTime)]++
	}
	return out
}

// EventsPerQuarter recomputes Figure 4: distinct observed events bucketed
// by the quarter of their event time.
func (rs *RowStore) EventsPerQuarter() []int64 {
	seen := make(map[int64]bool)
	out := make([]int64, rs.quarters)
	for i := range rs.Mentions {
		m := &rs.Mentions[i]
		if seen[m.GlobalEventID] {
			continue
		}
		seen[m.GlobalEventID] = true
		out[rs.quarterOf(m.EventTime)]++
	}
	return out
}

// ActiveSourcesPerQuarter recomputes Figure 3: sources with at least one
// article in each quarter.
func (rs *RowStore) ActiveSourcesPerQuarter() []int64 {
	type sq struct {
		name string
		q    int
	}
	seen := make(map[sq]bool)
	out := make([]int64, rs.quarters)
	for i := range rs.Mentions {
		m := &rs.Mentions[i]
		key := sq{m.SourceName, rs.quarterOf(m.MentionTime)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out[key.q]++
	}
	return out
}

// SlowArticlesPerQuarter recomputes Figure 11, re-deriving each delay from
// the record timestamps.
func (rs *RowStore) SlowArticlesPerQuarter(threshold int64) []int64 {
	out := make([]int64, rs.quarters)
	for i := range rs.Mentions {
		m := &rs.Mentions[i]
		if m.Delay() > threshold {
			out[rs.quarterOf(m.MentionTime)]++
		}
	}
	return out
}

// EventSizeCounts recomputes the observed part of Figure 2: counts[x] =
// number of events with exactly x articles, for x >= 1 (the row store
// cannot see never-mentioned events).
func (rs *RowStore) EventSizeCounts() map[int64]int64 {
	sizes := make(map[int64]int64)
	for _, n := range rs.ArticleCountsByEvent() {
		sizes[n]++
	}
	return sizes
}

// ArticleSummary is the reference answer for the Table I statistics the row
// store can see: article totals plus min/max/mean articles per observed
// event.
type ArticleSummary struct {
	Articles    int64
	MinArticles int64
	MaxArticles int64
	WeightedAvg float64
}

// Summary recomputes the observable Table I statistics.
func (rs *RowStore) Summary() ArticleSummary {
	out := ArticleSummary{Articles: int64(len(rs.Mentions))}
	var sum, n int64
	for _, c := range rs.ArticleCountsByEvent() {
		if out.MinArticles == 0 || c < out.MinArticles {
			out.MinArticles = c
		}
		if c > out.MaxArticles {
			out.MaxArticles = c
		}
		sum += c
		n++
	}
	if n > 0 {
		out.WeightedAvg = float64(sum) / float64(n)
	}
	return out
}
