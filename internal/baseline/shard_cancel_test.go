package baseline

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gdeltmine/internal/gen"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
)

// TestShardCancellationMidFanOut pins the executor's cancellation contract
// end to end through registry.ExecuteSharded: a request cancelled while
// its cross-shard fan-out is in flight must (1) return promptly with the
// context's error and a nil value — a partial aggregate must never surface
// as a complete result, which is what lets ExecuteSharded keep cancelled
// partials out of the cache; and (2) drain the pool without leaking
// goroutines — FanOut returns only after in-flight shard jobs finish, and
// the persistent pool spawns no per-query goroutines to orphan.
func TestShardCancellationMidFanOut(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	sdb, err := shard.Split(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := registry.MustLookup("country")
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var x *registry.Executor // nil executor: direct execution, no cache

	// Warm the process pool and measure the uncancelled wall time, then
	// settle the goroutine baseline.
	v := sdb.View().WithWorkers(4).WithKind(d.Kind)
	start := time.Now()
	if _, _, err := x.ExecuteSharded(d, v, p); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	runtime.GC()
	before := runtime.NumGoroutine()

	// Cancel at staggered points inside the query's execution window. Each
	// iteration must either complete (cancel landed too late) or fail with
	// context.Canceled and no value.
	cancelled := 0
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := full * time.Duration(i%5) / 10 // 0%..40% of the full wall time
		timer := time.AfterFunc(delay, cancel)
		val, _, err := x.ExecuteSharded(d, sdb.View().WithWorkers(4).WithKind(d.Kind).WithContext(ctx), p)
		timer.Stop()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: error %v, want context.Canceled", i, err)
			}
			if val != nil {
				t.Fatalf("iteration %d: cancelled execution surfaced a value", i)
			}
			cancelled++
		}
		cancel()
	}
	if cancelled == 0 {
		t.Log("no iteration observed cancellation mid-flight (query too fast on this host); prompt-return check below still applies")
	}

	// Prompt return: a pre-cancelled context must come back in a bounded
	// time — unclaimed shard jobs are skipped, not executed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	val, _, err := x.ExecuteSharded(d, sdb.View().WithWorkers(4).WithKind(d.Kind).WithContext(ctx), p)
	if err == nil || val != nil {
		t.Fatal("pre-cancelled execution returned a result")
	}
	if el := time.Since(start); el > full+2*time.Second {
		t.Fatalf("pre-cancelled fan-out took %v (uncancelled run: %v)", el, full)
	}

	// No goroutine leak: cancelled fan-outs drained the pool rather than
	// abandoning tasks, so the count settles back to the warm baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+3 {
		t.Fatalf("goroutines grew from %d to %d across cancelled fan-outs", before, after)
	}
}
