package baseline

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
)

// floatTol is the relative tolerance for float comparisons across runs:
// parallel MapReduce merges floats in worker order, so two executions of
// the same query may differ in the last bits.
const floatTol = 1e-9

// jsonTree marshals v and decodes it back into a generic tree, the shape
// both executions are compared in — exactly what an API client would see.
func jsonTree(t *testing.T, v any) any {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatal(err)
	}
	return tree
}

// eqTree compares two decoded JSON trees, exact for everything except
// numbers, which compare within floatTol relative tolerance.
func eqTree(path string, a, b any) error {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return fmt.Errorf("%s: object shape differs", path)
		}
		for k, v := range av {
			if err := eqTree(path+"."+k, v, bv[k]); err != nil {
				return err
			}
		}
		return nil
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return fmt.Errorf("%s: array length differs", path)
		}
		for i := range av {
			if err := eqTree(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); err != nil {
				return err
			}
		}
		return nil
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return fmt.Errorf("%s: number vs %T", path, b)
		}
		diff := math.Abs(av - bv)
		scale := math.Max(math.Abs(av), math.Abs(bv))
		if diff > floatTol*math.Max(scale, 1) {
			return fmt.Errorf("%s: %v vs %v", path, av, bv)
		}
		return nil
	default:
		if a != b {
			return fmt.Errorf("%s: %v vs %v", path, a, b)
		}
		return nil
	}
}

// TestRegistryDifferentialCachedVsUncached runs EVERY registered query kind
// three ways — uncached, cached-cold, cached-warm — and requires all three
// to agree. The uncached run is the reference; the cached-cold run proves
// the cache inserts exactly what was computed; the cached-warm run proves a
// hit serves the identical result. Worker counts differ between the cached
// and uncached executors so reduction-order bugs can't hide behind an
// identical schedule. ci.sh runs this as the registry differential gate.
func TestRegistryDifferentialCachedVsUncached(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	db := res.DB

	cached := &registry.Executor{Cache: qcache.New(0)}
	var uncached *registry.Executor

	// theme-trends needs a real theme name; take the most frequent one.
	var themeArg string
	if db.GKG != nil {
		tc, err := queries.TopThemes(engine.New(db), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(tc) > 0 {
			themeArg = tc[0].Theme
		}
	}

	for _, d := range registry.All() {
		d := d
		t.Run(d.Kind, func(t *testing.T) {
			if d.NeedsGKG && db.GKG == nil {
				t.Skip("dataset has no GKG")
			}
			params := func(name string) []string {
				if name == "theme" && themeArg != "" {
					return []string{themeArg}
				}
				return nil
			}
			p, err := d.ParseParams(params)
			if err != nil {
				t.Fatal(err)
			}

			ref, out, err := uncached.Execute(d, engine.New(db).WithWorkers(1).WithKind(d.Kind), p)
			if err != nil {
				t.Fatal(err)
			}
			if out != qcache.Bypass {
				t.Fatalf("uncached outcome %v", out)
			}

			e := engine.New(db).WithWorkers(4).WithKind(d.Kind)
			cold, out, err := cached.Execute(d, e, p)
			if err != nil {
				t.Fatal(err)
			}
			if out != qcache.Miss {
				t.Fatalf("cold outcome %v, want miss", out)
			}
			warm, out, err := cached.Execute(d, e, p)
			if err != nil {
				t.Fatal(err)
			}
			if out != qcache.Hit {
				t.Fatalf("warm outcome %v, want hit", out)
			}

			refTree := jsonTree(t, ref)
			if err := eqTree(d.Kind, refTree, jsonTree(t, cold)); err != nil {
				t.Errorf("cached-cold diverges from uncached: %v", err)
			}
			if err := eqTree(d.Kind, refTree, jsonTree(t, warm)); err != nil {
				t.Errorf("cached-warm diverges from uncached: %v", err)
			}
		})
	}
}
