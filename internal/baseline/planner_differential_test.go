package baseline

import (
	"fmt"
	"testing"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
)

// Planner differential battery: the cost-based planner (DESIGN.md §12) may
// pick any physical plan for a selection query — bitmap-pruned rows,
// candidate events, or the closure scan — so every plan, forced through
// WithPlan, must produce results identical to the closure reference on
// every eligible kind: monolithic and sharded, 2 seeded worlds, workers
// {1,4}, K ∈ {1,4} shards. Integers exact, floats 1e-9 (workers=1
// bit-equal). Cache executors are nil throughout: the plan parameter is
// excluded from cache keys precisely because results are plan-invariant,
// which is the property pinned here.

var plannerModes = []engine.PlanMode{
	engine.PlanAuto, engine.PlanRows, engine.PlanEvents, engine.PlanScan,
}

// plannerPanels returns the source selections the battery runs on: a dense
// top-16 panel (high selectivity, auto resolves to events) and a sparse
// mid-spectrum panel (auto resolves to rows), so both auto branches and
// both forced paths see real work.
func plannerPanels(ranked []int32) map[string][]int32 {
	panels := map[string][]int32{
		"top16": ranked[:min(16, len(ranked))],
	}
	base := len(ranked) / 8
	if base+16 <= len(ranked) {
		panels["mid16"] = ranked[base : base+16]
	} else {
		panels["mid16"] = ranked[:min(16, len(ranked))]
	}
	return panels
}

func TestPlannerDifferentialMonolith(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		ranked, _ := queries.TopPublishers(engine.New(db), db.Sources.Len())
		for name, ids := range plannerPanels(ranked) {
			for _, w := range differentialWorkers {
				base := engine.New(db).WithWorkers(w)
				wantCo, err := queries.CoReportScan(base, ids)
				if err != nil {
					t.Fatal(err)
				}
				wantFo := queries.FollowReportScan(base, ids)
				for _, mode := range plannerModes {
					e := base.WithPlan(mode)
					prefix := fmt.Sprintf("world%d/%s/w%d/%s", seedIdx, name, w, mode)
					t.Run(prefix+"/coreport", func(t *testing.T) {
						got, err := queries.CoReport(e, ids)
						if err != nil {
							t.Fatal(err)
						}
						eqSeries(t, "pair", got.Pair.Data, wantCo.Pair.Data)
						eqSeries(t, "counts", got.EventCounts, wantCo.EventCounts)
						eqFloats(t, "jaccard", got.Jaccard.Data, wantCo.Jaccard.Data, w)
					})
					t.Run(prefix+"/follow", func(t *testing.T) {
						got := queries.FollowReport(e, ids)
						eqSeries(t, "N", got.N.Data, wantFo.N.Data)
						eqSeries(t, "articles", got.Articles, wantFo.Articles)
						eqFloats(t, "F", got.F.Data, wantFo.F.Data, w)
					})
				}
			}
		}
	}
}

func TestPlannerDifferentialSharded(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		ranked, _ := queries.TopPublishers(engine.New(db), db.Sources.Len())
		for _, k := range []int{1, 4} {
			sdb, err := shard.Split(db, k)
			if err != nil {
				t.Fatalf("Split(%d): %v", k, err)
			}
			for name, ids := range plannerPanels(ranked) {
				refCo, err := queries.CoReportScan(engine.New(db).WithWorkers(1), ids)
				if err != nil {
					t.Fatal(err)
				}
				refFo := queries.FollowReportScan(engine.New(db).WithWorkers(1), ids)
				for _, w := range differentialWorkers {
					for _, mode := range plannerModes {
						v := sdb.View().WithWorkers(w).WithPlan(mode)
						prefix := fmt.Sprintf("world%d/K%d/%s/w%d/%s", seedIdx, k, name, w, mode)
						t.Run(prefix+"/coreport", func(t *testing.T) {
							got, err := v.CoReport(ids)
							if err != nil {
								t.Fatal(err)
							}
							eqSeries(t, "pair", got.Pair.Data, refCo.Pair.Data)
							eqSeries(t, "counts", got.EventCounts, refCo.EventCounts)
							eqFloats(t, "jaccard", got.Jaccard.Data, refCo.Jaccard.Data, w)
						})
						t.Run(prefix+"/follow", func(t *testing.T) {
							got := v.FollowReport(ids)
							eqSeries(t, "N", got.N.Data, refFo.N.Data)
							eqSeries(t, "articles", got.Articles, refFo.Articles)
							eqFloats(t, "F", got.F.Data, refFo.F.Data, w)
						})
					}
				}
			}
		}
	}
}

// TestPlannerParamThroughRegistry pins the plan parameter's plumbing: for
// the eligible kinds, executions forced to each plan through the registry's
// common "plan" parameter must serialize to identical JSON (1e-9 floats),
// and an invalid value must be a parameter error. Executors are nil — the
// plan never reaches cache keys.
func TestPlannerParamThroughRegistry(t *testing.T) {
	db := kernelWorlds(t)[0]
	var ex *registry.Executor
	for _, kind := range []string{"coreport", "follow"} {
		d, ok := registry.Lookup(kind)
		if !ok {
			t.Fatalf("kind %q not registered", kind)
		}
		trees := map[string]any{}
		for _, plan := range []string{"scan", "rows", "events", "auto"} {
			get := func(name string) []string {
				if name == registry.ParamPlan {
					return []string{plan}
				}
				return nil
			}
			e, err := registry.DeriveEngine(engine.New(db).WithKind(kind), get)
			if err != nil {
				t.Fatal(err)
			}
			p, err := d.ParseParams(get)
			if err != nil {
				t.Fatal(err)
			}
			v, _, err := ex.Execute(d, e, p)
			if err != nil {
				t.Fatal(err)
			}
			trees[plan] = jsonTree(t, v)
		}
		for _, plan := range []string{"rows", "events", "auto"} {
			if err := eqTree(kind+"/"+plan, trees[plan], trees["scan"]); err != nil {
				t.Errorf("%s: plan %s disagrees with scan: %v", kind, plan, err)
			}
		}
	}
	if _, err := registry.DeriveEngine(engine.New(db),
		func(name string) []string {
			if name == registry.ParamPlan {
				return []string{"bogus"}
			}
			return nil
		}); err == nil || !registry.IsBadParam(err) {
		t.Fatalf("bogus plan value: got %v, want parameter error", err)
	}
}
