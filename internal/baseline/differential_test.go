package baseline

import (
	"fmt"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
)

// The differential harness: every query kind runs through the parallel
// engine at workers 1 and 4 on two generator seeds, and each answer must
// agree exactly with the naive single-threaded row-store reference, which
// shares no machinery with the engine (no dictionary, postings, or quarter
// index). Worker-count independence catches reduction-order and data-race
// bugs; the second seed catches answers that are only accidentally right
// on the canonical test world.

// differentialConfigs are the two seeded worlds the harness runs on.
func differentialConfigs() []gen.Config {
	alt := gen.Small()
	alt.Seed = 1234
	return []gen.Config{gen.Small(), alt}
}

var differentialWorkers = []int{1, 4}

func eqSeries(t *testing.T, kind string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, reference %d", kind, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s[%d]: engine %d, reference %d", kind, i, got[i], want[i])
		}
	}
}

// checkTopK verifies a top-k answer against a reference count map: the
// per-item counts must match the reference exactly, be non-increasing, and
// form the k largest reference values (tie order among equals is free).
func checkTopK[K comparable](t *testing.T, kind string, keys []K, counts []int64, ref map[K]int64, k int) {
	t.Helper()
	if len(keys) != len(counts) {
		t.Fatalf("%s: %d keys but %d counts", kind, len(keys), len(counts))
	}
	for i, key := range keys {
		if counts[i] != ref[key] {
			t.Errorf("%s: item %v count %d, reference %d", kind, key, counts[i], ref[key])
		}
		if i > 0 && counts[i] > counts[i-1] {
			t.Errorf("%s: counts not descending at %d", kind, i)
		}
	}
	eqSeries(t, kind+" (top counts)", counts, TopCounts(ref, k))
}

func TestDifferentialEngineVsRowStore(t *testing.T) {
	for _, cfg := range differentialConfigs() {
		c, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		rs := NewRowStore(res.DB)
		// Reference answers, computed once per world.
		refBySource := rs.ArticleCountsBySource()
		refByEvent := rs.ArticleCountsByEvent()
		refSummary := rs.Summary()
		refCross := rs.CrossCountry()
		refArticlesQ := rs.ArticlesPerQuarter()
		refEventsQ := rs.EventsPerQuarter()
		refActiveQ := rs.ActiveSourcesPerQuarter()
		refSlowQ := rs.SlowArticlesPerQuarter(gdelt.IntervalsPerDay)
		refSizes := rs.EventSizeCounts()

		for _, w := range differentialWorkers {
			e := engine.New(res.DB).WithWorkers(w)
			db := res.DB
			prefix := fmt.Sprintf("seed%d/w%d", cfg.Seed, w)

			t.Run(prefix+"/stats", func(t *testing.T) {
				got := queries.Dataset(e)
				if got.Articles != refSummary.Articles ||
					got.MinArticles != refSummary.MinArticles ||
					got.MaxArticles != refSummary.MaxArticles {
					t.Errorf("stats: engine %+v, reference %+v", got, refSummary)
				}
				if diff := got.WeightedAvg - refSummary.WeightedAvg; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("stats weighted avg: engine %v, reference %v", got.WeightedAvg, refSummary.WeightedAvg)
				}
			})
			t.Run(prefix+"/top-publishers", func(t *testing.T) {
				ids, counts := queries.TopPublishers(e, 10)
				names := make([]string, len(ids))
				for i, id := range ids {
					names[i] = db.Sources.Name(id)
				}
				checkTopK(t, "top-publishers", names, counts, refBySource, 10)
			})
			t.Run(prefix+"/top-events", func(t *testing.T) {
				top := queries.TopEvents(e, 10)
				ids := make([]int64, len(top))
				counts := make([]int64, len(top))
				for i, te := range top {
					ids[i], counts[i] = te.EventID, te.Mentions
				}
				checkTopK(t, "top-events", ids, counts, refByEvent, 10)
			})
			t.Run(prefix+"/event-sizes", func(t *testing.T) {
				got := queries.EventSizes(e, 2).Counts
				for x := 1; x < len(got); x++ {
					if got[x] != refSizes[int64(x)] {
						t.Errorf("event-sizes[%d]: engine %d, reference %d", x, got[x], refSizes[int64(x)])
					}
				}
				for x, n := range refSizes {
					if x >= int64(len(got)) && n != 0 {
						t.Errorf("event-sizes: reference has %d events of size %d beyond engine range", n, x)
					}
				}
			})
			t.Run(prefix+"/country", func(t *testing.T) {
				cr, err := queries.CountryQuery(e)
				if err != nil {
					t.Fatal(err)
				}
				if cr.Cross.Rows != refCross.Rows || cr.Cross.Cols != refCross.Cols {
					t.Fatal("country: shape mismatch")
				}
				eqSeries(t, "country cross matrix", cr.Cross.Data, refCross.Data)
			})
			t.Run(prefix+"/series-articles", func(t *testing.T) {
				eqSeries(t, "articles per quarter", queries.ArticlesPerQuarter(e).Values, refArticlesQ)
			})
			t.Run(prefix+"/series-events", func(t *testing.T) {
				eqSeries(t, "events per quarter", queries.EventsPerQuarter(e).Values, refEventsQ)
			})
			t.Run(prefix+"/series-active-sources", func(t *testing.T) {
				eqSeries(t, "active sources per quarter", queries.ActiveSourcesPerQuarter(e).Values, refActiveQ)
			})
			t.Run(prefix+"/series-slow-articles", func(t *testing.T) {
				eqSeries(t, "slow articles per quarter", queries.SlowArticlesPerQuarter(e).Values, refSlowQ)
			})
			t.Run(prefix+"/slow-count", func(t *testing.T) {
				want := rs.CountSlowArticles(gdelt.IntervalsPerDay)
				got := e.CountMentions(func(row int) bool {
					return db.Mentions.Delay[row] > gdelt.IntervalsPerDay
				})
				if got != want {
					t.Errorf("slow count: engine %d, reference %d", got, want)
				}
			})
		}
	}
}

// TestDifferentialEngineVsRawRescan checks the engine against the other
// baseline — the raw-file re-parse path — at both worker counts. Archive
// defects are disabled so both sides read identical inputs.
func TestDifferentialEngineVsRawRescan(t *testing.T) {
	for _, cfg := range differentialConfigs() {
		cfg.DefectMissingArchives = 0
		c, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := gen.WriteRaw(c, dir); err != nil {
			t.Fatal(err)
		}
		conv, err := convert.FromRawDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := NewRawRescan(dir)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rr.CrossCountry()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range differentialWorkers {
			t.Run(fmt.Sprintf("seed%d/w%d", cfg.Seed, w), func(t *testing.T) {
				cr, err := queries.CountryQuery(engine.New(conv.DB).WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				eqSeries(t, "raw-rescan cross matrix", cr.Cross.Data, want.Data)
			})
		}
	}
}
