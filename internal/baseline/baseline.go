// Package baseline implements the comparison systems the paper argues
// against: a generic row store that keeps mentions as parsed record structs
// and re-derives everything per query (string country attribution per row,
// no dictionary or postings), and a raw-file re-scan path that re-parses the
// TSV archive for every query — the access pattern of a BigQuery/Hadoop
// style system that "processes more than one TB for a simple test query".
// Both run single-threaded by design.
package baseline

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/store"
)

// RowStore is a generic record-at-a-time store: one parsed struct per
// mention, with the event country looked up through a map per row.
type RowStore struct {
	Mentions []gdelt.Mention
	// eventCountry maps GlobalEventID to the FIPS country code string.
	eventCountry map[int64]string
	// start and quarters describe the archive span, for the calendar-quarter
	// reference computations in reference.go.
	start    gdelt.Timestamp
	quarters int
}

// NewRowStore materializes a row store from the columnar DB, restoring the
// denormalized string-heavy representation a generic system would hold.
func NewRowStore(db *store.DB) *RowStore {
	rs := &RowStore{
		Mentions:     make([]gdelt.Mention, 0, db.Mentions.Len()),
		eventCountry: make(map[int64]string, db.Events.Len()),
		start:        db.Meta.Start,
		quarters:     db.NumQuarters(),
	}
	for i := 0; i < db.Events.Len(); i++ {
		if c := db.Events.Country[i]; c >= 0 {
			rs.eventCountry[db.Events.ID[i]] = gdelt.Countries[c].FIPS
		}
	}
	base := db.Meta.Start.IntervalIndex()
	for r := 0; r < db.Mentions.Len(); r++ {
		ev := db.Mentions.EventRow[r]
		rs.Mentions = append(rs.Mentions, gdelt.Mention{
			GlobalEventID: db.Events.ID[ev],
			EventTime:     gdelt.IntervalStart(base + int64(db.Events.Interval[ev])),
			MentionTime:   gdelt.IntervalStart(base + int64(db.Mentions.Interval[r])),
			MentionType:   gdelt.MentionTypeWeb,
			SourceName:    db.Sources.Name(db.Mentions.Source[r]),
			DocLen:        db.Mentions.DocLen[r],
			DocTone:       db.Mentions.Tone[r],
			Confidence:    db.Mentions.Confidence[r],
		})
	}
	return rs
}

// CrossCountry runs the Table VI aggregated query the generic way: one pass
// over record structs, re-attributing the source country from the domain
// string and the event country through the map, single-threaded.
func (rs *RowStore) CrossCountry() *matrix.Int64 {
	nc := len(gdelt.Countries)
	out := matrix.NewInt64(nc, nc)
	for i := range rs.Mentions {
		m := &rs.Mentions[i]
		fips, ok := rs.eventCountry[m.GlobalEventID]
		if !ok {
			continue
		}
		r := gdelt.CountryIndex(fips)
		c := gdelt.CountryFromDomain(m.SourceName)
		if r >= 0 && c >= 0 {
			out.Inc(r, c)
		}
	}
	return out
}

// CountSlowArticles counts articles with a delay above the threshold (in
// intervals), recomputing each delay from the record timestamps.
func (rs *RowStore) CountSlowArticles(threshold int64) int64 {
	var n int64
	for i := range rs.Mentions {
		if rs.Mentions[i].Delay() > threshold {
			n++
		}
	}
	return n
}

// RawRescan answers queries by re-reading and re-parsing the raw TSV
// archive on every call.
type RawRescan struct {
	dir     string
	entries []gdelt.MasterEntry
}

// NewRawRescan opens a raw dataset directory for re-scan queries.
func NewRawRescan(dir string) (*RawRescan, error) {
	f, err := os.Open(filepath.Join(dir, gen.MasterFileName))
	if err != nil {
		return nil, fmt.Errorf("baseline: opening master list: %w", err)
	}
	defer f.Close()
	ml, err := gdelt.ReadMasterList(f)
	if err != nil {
		return nil, err
	}
	return &RawRescan{dir: dir, entries: ml.Entries}, nil
}

// CrossCountry runs the Table VI query by re-parsing every chunk file:
// first the events files (to learn each event's country), then the mentions
// files. This is what every repeated investigation costs without the
// one-time binary conversion.
func (rr *RawRescan) CrossCountry() (*matrix.Int64, error) {
	eventCountry := make(map[int64]int32)
	var fields [][]byte
	for _, e := range rr.entries {
		if e.Kind() != "export" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(rr.dir, e.Path))
		if err != nil {
			continue // missing archives are tolerated, as in conversion
		}
		forEachLine(data, func(line []byte) {
			fields = gdelt.SplitTabs(line, fields)
			ev, err := gdelt.ParseEventFields(fields)
			if err != nil {
				return
			}
			if c := gdelt.CountryIndex(ev.ActionCountry); c >= 0 {
				eventCountry[ev.GlobalEventID] = int32(c)
			}
		})
	}
	nc := len(gdelt.Countries)
	out := matrix.NewInt64(nc, nc)
	for _, e := range rr.entries {
		if e.Kind() != "mentions" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(rr.dir, e.Path))
		if err != nil {
			continue
		}
		forEachLine(data, func(line []byte) {
			fields = gdelt.SplitTabs(line, fields)
			mn, err := gdelt.ParseMentionFields(fields)
			if err != nil {
				return
			}
			r, ok := eventCountry[mn.GlobalEventID]
			if !ok {
				return
			}
			if c := gdelt.CountryFromDomain(mn.SourceName); c >= 0 {
				out.Inc(int(r), c)
			}
		})
	}
	return out, nil
}

func forEachLine(data []byte, fn func(line []byte)) {
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if len(line) > 0 {
			fn(line)
		}
	}
}
