package baseline

import (
	"fmt"
	"testing"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
)

// Compaction-differential battery: a world grown the streaming way — batch
// prefix, then feed ticks appended into the log's mutable tail with the
// compactor sealing along the way — must answer every registered query
// kind exactly like the same rows batch-built in one shot. This is the pin
// for the whole append-log lifecycle: COW clone depths on append, seal
// slicing, version carry-forward, and the derived-index rebuild for sealed
// parts. Any divergence (a stale per-event counter in a cold shard, a
// mention sliced into the wrong side of a seal cut, an index not rebuilt)
// surfaces as a wrong answer on some kind. ci.sh runs this under -race.

// appendAndCompact grows a log from the truncated prefix: the withheld
// mentions arrive as tick-sized chunks, with a seal after every third
// chunk and a final seal, mirroring the compactor's cadence.
func appendAndCompact(t *testing.T, c *gen.Corpus, k int, cut, step int32) *shard.Log {
	t.Helper()
	prefix, _ := buildTruncated(t, c, cut)
	sdb, err := shard.Split(prefix, k)
	if err != nil {
		t.Fatalf("Split(%d): %v", k, err)
	}
	lg := shard.NewLog(sdb)
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	ticks := 0
	for lo := cut; lo < intervals; lo += step {
		hi := lo + step
		var ch []gdelt.Mention
		for j := range c.Mentions {
			if iv := c.Mentions[j].Interval; iv >= lo && iv < hi {
				ch = append(ch, c.MentionRecord(j))
			}
		}
		if len(ch) == 0 {
			continue
		}
		if _, err := lg.Append(nil, ch); err != nil {
			t.Fatalf("append [%d,%d): %v", lo, hi, err)
		}
		if ticks++; ticks%3 == 0 {
			if _, err := lg.Seal(); err != nil {
				t.Fatalf("seal after tick %d: %v", ticks, err)
			}
		}
	}
	if ticks < 4 {
		t.Fatalf("only %d feed ticks; widen the suffix", ticks)
	}
	if _, err := lg.Seal(); err != nil {
		t.Fatalf("final seal: %v", err)
	}
	return lg
}

func TestCompactionDifferentialAllKinds(t *testing.T) {
	alt := gen.Small()
	alt.Seed = 777
	alt.End = 20170101000000
	worlds := []struct {
		name string
		cfg  gen.Config
	}{
		{"seed42", gen.Small()},
		{"seed777", alt},
	}
	params := func(string) []string { return nil }
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			c, err := gen.Generate(w.cfg)
			if err != nil {
				t.Fatal(err)
			}
			intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
			cut := intervals - 14*gdelt.IntervalsPerDay
			step := 2 * int32(gdelt.IntervalsPerDay)

			// Batch reference: every corpus row in one monolithic build.
			// buildTruncated skips GKG, so the GKG-only kinds sit this
			// battery out (appends never extend GKG either).
			full, _ := buildTruncated(t, c, -1)
			refs := map[string]any{}
			for _, d := range registry.All() {
				if d.NeedsGKG {
					continue
				}
				p, err := d.ParseParams(params)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := d.Run(engine.New(full).WithWorkers(1).WithKind(d.Kind), p)
				if err != nil {
					t.Fatalf("%s: monolith: %v", d.Kind, err)
				}
				refs[d.Kind] = jsonTree(t, ref)
			}

			for _, k := range []int{1, 4} {
				lg := appendAndCompact(t, c, k, cut, step)
				live := lg.Snapshot()
				if live.K() <= k {
					t.Fatalf("K=%d after seals, want more than the initial %d", live.K(), k)
				}
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("k%d/w%d", k, workers), func(t *testing.T) {
						v := live.View().WithWorkers(workers)
						for _, d := range registry.All() {
							refTree, ok := refs[d.Kind]
							if !ok {
								continue
							}
							p, err := d.ParseParams(params)
							if err != nil {
								t.Fatal(err)
							}
							got, err := d.RunSharded(v.WithKind(d.Kind), p)
							if err != nil {
								t.Errorf("%s: compacted: %v", d.Kind, err)
								continue
							}
							if err := eqTree(d.Kind, refTree, jsonTree(t, got)); err != nil {
								t.Errorf("%s: append+compact world diverges from batch build: %v", d.Kind, err)
							}
						}
					})
				}
			}
		})
	}
}
