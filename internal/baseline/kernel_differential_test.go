package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/store"
)

// Kernel-level differential harness: every typed (vectorized) kernel and
// every postings-pruned execution path is pinned against the generic
// closure kernel it replaces, on the two seeded worlds at workers 1 and 4,
// over both the full table and a proper interval window. Integer kernels
// must agree bit-for-bit at any worker count. Float kernels must agree
// bit-for-bit at workers=1 (one partial, one fold order) and within 1e-9
// relative tolerance at workers=4, where dynamic scheduling permutes the
// merge order of float64 partials.

func kernelWorlds(t *testing.T) []*store.DB {
	t.Helper()
	var dbs []*store.DB
	for _, cfg := range differentialConfigs() {
		c, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, res.DB)
	}
	return dbs
}

// kernelViews returns the engine views a kernel is pinned on: the full
// table and a window covering the middle half of the archive.
func kernelViews(db *store.DB, w int) map[string]*engine.Engine {
	base := engine.New(db).WithWorkers(w)
	n := db.Meta.Intervals
	return map[string]*engine.Engine{
		"full":   base,
		"window": base.WithInterval(n/4, 3*n/4),
	}
}

func eqFloats(t *testing.T, kind string, got, want []float64, workers int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, reference %d", kind, len(got), len(want))
	}
	for i := range got {
		if workers == 1 {
			if got[i] != want[i] {
				t.Errorf("%s[%d]: typed %v, closure %v (must be bit-equal at workers=1)", kind, i, got[i], want[i])
			}
			continue
		}
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		mag := want[i]
		if mag < 0 {
			mag = -mag
		}
		if mag < 1 {
			mag = 1
		}
		if d > 1e-9*mag {
			t.Errorf("%s[%d]: typed %v, closure %v", kind, i, got[i], want[i])
		}
	}
}

func TestKernelDifferentialTypedVsClosure(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		nq := db.NumQuarters()
		ns := db.Sources.Len()
		nc := len(gdelt.Countries)
		for _, w := range differentialWorkers {
			for view, e := range kernelViews(db, w) {
				prefix := fmt.Sprintf("world%d/w%d/%s", seedIdx, w, view)

				t.Run(prefix+"/group-count", func(t *testing.T) {
					got := e.GroupCountCol(ns, db.Mentions.Source, nil)
					want := e.GroupCount(ns, func(row int) int { return int(db.Mentions.Source[row]) })
					eqSeries(t, "group-count source", got, want)
				})
				t.Run(prefix+"/group-count-remap", func(t *testing.T) {
					got := e.GroupCountCol(nq, db.Mentions.Interval, db.QuarterLUT())
					want := e.GroupCount(nq, func(row int) int {
						return db.QuarterOfInterval(db.Mentions.Interval[row])
					})
					eqSeries(t, "group-count quarter", got, want)
				})
				t.Run(prefix+"/group-count-sel", func(t *testing.T) {
					got := e.GroupCountColSel(nq, db.Mentions.Interval, db.QuarterLUT(),
						engine.PredGT(db.Mentions.Delay, gdelt.IntervalsPerDay))
					want := e.GroupCount(nq, func(row int) int {
						if db.Mentions.Delay[row] <= gdelt.IntervalsPerDay {
							return -1
						}
						return db.QuarterOfInterval(db.Mentions.Interval[row])
					})
					eqSeries(t, "group-count selected", got, want)
				})
				t.Run(prefix+"/group-count-events", func(t *testing.T) {
					got := e.GroupCountEventsCol(nq, db.Events.Interval, db.QuarterLUT(),
						engine.PredGT(db.Events.NumArticles, 0))
					want := e.GroupCountEvents(nq, func(row int) int {
						if db.Events.NumArticles[row] == 0 {
							return -1
						}
						return db.QuarterOfInterval(db.Events.Interval[row])
					})
					eqSeries(t, "group-count events", got, want)
				})
				t.Run(prefix+"/cross-count", func(t *testing.T) {
					got := e.CrossCountCols(nc, nc,
						db.Mentions.EventRow, db.EventCountryLUT(),
						db.Mentions.Source, db.SourceCountryLUT())
					want := e.CrossCount(nc, nc, func(row int) (int, int) {
						ev := db.Mentions.EventRow[row]
						return int(db.Events.Country[ev]), int(db.SourceCountry[db.Mentions.Source[row]])
					})
					eqSeries(t, "cross-count country", got.Data, want.Data)
					// The int16-remap instantiation (what CountryMatrix runs):
					// narrow store columns used directly as remap tables must
					// agree with the widened int32 LUTs.
					got16 := engine.CrossCountRemap(e, nc, nc,
						db.Mentions.EventRow, db.Events.Country,
						db.Mentions.Source, db.SourceCountry)
					eqSeries(t, "cross-count country int16 remap", got16.Data, want.Data)
				})
				t.Run(prefix+"/sum-by-group", func(t *testing.T) {
					got := e.SumByGroupCol(ns, db.Mentions.Source, nil, db.Mentions.Tone)
					want := e.SumByGroup(ns, func(row int) (int, float64) {
						return int(db.Mentions.Source[row]), float64(db.Mentions.Tone[row])
					})
					eqFloats(t, "sum-by-group tone", got, want, w)
				})
				t.Run(prefix+"/cross-sum", func(t *testing.T) {
					got := e.CrossSumCols(nc, nq,
						db.Mentions.Source, db.SourceCountryLUT(),
						db.Mentions.Interval, db.QuarterLUT(), db.Mentions.Tone)
					want := e.SumByGroup(nc*nq, func(row int) (int, float64) {
						c := db.SourceCountry[db.Mentions.Source[row]]
						if c < 0 {
							return -1, 0
						}
						q := db.QuarterOfInterval(db.Mentions.Interval[row])
						return int(c)*nq + q, float64(db.Mentions.Tone[row])
					})
					eqFloats(t, "cross-sum tone", got, want, w)
				})
			}
		}
	}
}

// TestKernelDifferentialPrunedReports pins the postings-pruned CoReport and
// FollowReport against their full-scan fallbacks: pair matrices, event
// counts, follow matrices and article totals must agree exactly.
func TestKernelDifferentialPrunedReports(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		ids, _ := queries.TopPublishers(engine.New(db), 16)
		for _, w := range differentialWorkers {
			e := engine.New(db).WithWorkers(w)
			prefix := fmt.Sprintf("world%d/w%d", seedIdx, w)

			t.Run(prefix+"/coreport", func(t *testing.T) {
				got, err := queries.CoReport(e, ids)
				if err != nil {
					t.Fatal(err)
				}
				want, err := queries.CoReportScan(e, ids)
				if err != nil {
					t.Fatal(err)
				}
				eqSeries(t, "coreport pair", got.Pair.Data, want.Pair.Data)
				eqSeries(t, "coreport counts", got.EventCounts, want.EventCounts)
				eqFloats(t, "coreport jaccard", got.Jaccard.Data, want.Jaccard.Data, 1)
			})
			t.Run(prefix+"/follow", func(t *testing.T) {
				got := queries.FollowReport(e, ids)
				want := queries.FollowReportScan(e, ids)
				eqSeries(t, "follow N", got.N.Data, want.N.Data)
				eqSeries(t, "follow articles", got.Articles, want.Articles)
				eqFloats(t, "follow F", got.F.Data, want.F.Data, 1)
			})
		}
	}
}

// TestScanRowsRandomizedWindows is the fuzz-style gate for the row-list
// kernels: on seeded random interval windows and random source subsets, the
// pruned GroupCountRows/CrossCountRows over clipped postings must agree
// bit-for-bit with the closure kernel filtering the same membership over
// the full window.
func TestScanRowsRandomizedWindows(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		rng := rand.New(rand.NewSource(int64(9000 + seedIdx)))
		nq := db.NumQuarters()
		ns := db.Sources.Len()
		nIv := db.Meta.Intervals
		for iter := 0; iter < 25; iter++ {
			// Random window, occasionally degenerate or full.
			a, b := rng.Int31n(nIv+1), rng.Int31n(nIv+1)
			if a > b {
				a, b = b, a
			}
			if iter == 0 {
				a, b = 0, nIv
			}
			// Random subset of sources, 1..24.
			k := 1 + rng.Intn(24)
			sources := make([]int32, 0, k)
			member := make(map[int32]bool, k)
			for len(sources) < k {
				s := rng.Int31n(int32(ns))
				if !member[s] {
					member[s] = true
					sources = append(sources, s)
				}
			}
			w := differentialWorkers[iter%len(differentialWorkers)]
			e := engine.New(db).WithWorkers(w).WithInterval(a, b)

			slot := make([]int32, ns)
			for i := range slot {
				slot[i] = -1
			}
			for i, s := range sources {
				slot[s] = int32(i)
			}
			var rows []int32
			for _, s := range sources {
				rows = append(rows, e.ClipRows(db.SourceMentions(s))...)
			}

			name := fmt.Sprintf("world%d/iter%d/w%d/[%d,%d)/k%d", seedIdx, iter, w, a, b, k)
			t.Run(name, func(t *testing.T) {
				got := e.GroupCountRows(k, rows, e.WindowSize(), db.Mentions.Source, slot)
				want := e.GroupCount(k, func(row int) int { return int(slot[db.Mentions.Source[row]]) })
				eqSeries(t, "pruned group-count", got, want)

				gotX := e.CrossCountRows(k, nq, rows, e.WindowSize(),
					db.Mentions.Source, slot, db.Mentions.Interval, db.QuarterLUT())
				wantX := e.CrossCount(k, nq, func(row int) (int, int) {
					i := slot[db.Mentions.Source[row]]
					if i < 0 {
						return -1, -1
					}
					return int(i), db.QuarterOfInterval(db.Mentions.Interval[row])
				})
				eqSeries(t, "pruned cross-count", gotX.Data, wantX.Data)

				gotS := engine.ScanRows(e, rows, e.WindowSize(),
					func() int64 { return 0 },
					func(acc int64, rows []int32) int64 { return acc + int64(len(rows)) },
					func(dst, src int64) int64 { return dst + src },
				)
				wantS := e.CountMentions(func(row int) bool { return slot[db.Mentions.Source[row]] >= 0 })
				if gotS != wantS {
					t.Errorf("pruned row count: %d, closure filter %d", gotS, wantS)
				}
			})
		}
	}
}
