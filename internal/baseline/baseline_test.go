package baseline

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
)

func TestRowStoreCrossCountryMatchesEngine(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(res.DB)
	cr, err := queries.CountryQuery(e)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRowStore(res.DB)
	got := rs.CrossCountry()
	if got.Rows != cr.Cross.Rows || got.Cols != cr.Cross.Cols {
		t.Fatal("shape mismatch")
	}
	for i := range got.Data {
		if got.Data[i] != cr.Cross.Data[i] {
			t.Fatalf("cell %d: baseline %d engine %d", i, got.Data[i], cr.Cross.Data[i])
		}
	}
}

func TestRowStoreSlowArticles(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRowStore(res.DB)
	got := rs.CountSlowArticles(gdelt.IntervalsPerDay)
	e := engine.New(res.DB)
	want := e.CountMentions(func(row int) bool {
		return res.DB.Mentions.Delay[row] > gdelt.IntervalsPerDay
	})
	if got != want {
		t.Fatalf("slow count %d want %d", got, want)
	}
}

func TestRawRescanMatchesConversion(t *testing.T) {
	cfg := gen.Small()
	cfg.DefectMissingArchives = 0 // identical inputs for both paths
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	conv, err := convert.FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := queries.CountryQuery(engine.New(conv.DB))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRawRescan(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.CrossCountry()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != cr.Cross.Data[i] {
			t.Fatalf("cell %d: rescan %d engine %d", i, got.Data[i], cr.Cross.Data[i])
		}
	}
}

func TestNewRawRescanMissingDir(t *testing.T) {
	if _, err := NewRawRescan(t.TempDir()); err == nil {
		t.Fatal("missing master list should fail")
	}
}
