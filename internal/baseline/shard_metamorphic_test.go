package baseline

import (
	"fmt"
	"testing"

	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// The metamorphic battery: properties that must hold across RELATED sharded
// executions without consulting the monolith. Where the differential tests
// pin "sharded == monolith" for one partitioning, these pin that the answer
// cannot depend on where the shard boundaries fall, on the order shards are
// assembled in, or on whether a window is executed whole or as two halves.

// runAllKinds executes every registered kind on the view and returns the
// decoded JSON tree per kind.
func runAllKinds(t *testing.T, v *shard.View, themeArg string) map[string]any {
	t.Helper()
	params := func(name string) []string {
		if name == "theme" && themeArg != "" {
			return []string{themeArg}
		}
		return nil
	}
	out := map[string]any{}
	for _, d := range registry.All() {
		if d.NeedsGKG && !v.DB().HasGKG() {
			continue
		}
		p, err := d.ParseParams(params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.RunSharded(v.WithKind(d.Kind), p)
		if err != nil {
			t.Fatalf("%s: %v", d.Kind, err)
		}
		out[d.Kind] = jsonTree(t, got)
	}
	return out
}

// TestShardMetamorphicBoundaryMoves: moving interior shard boundaries —
// including onto degenerate positions right next to each other — must not
// change any query result.
func TestShardMetamorphicBoundaryMoves(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	themeArg := themeParam(t, db)
	iv := db.Meta.Intervals

	base := []int32{0, iv / 3, 2 * iv / 3, iv}
	variants := [][]int32{
		{0, iv/3 + 7, 2*iv/3 - 11, iv},     // nudged off the thirds
		{0, 1, 2 * iv / 3, iv},             // first shard almost empty
		{0, iv / 3, iv - 1, iv},            // last shard almost empty
		{0, iv / 2, iv/2 + 1, iv},          // adjacent boundaries mid-archive
		{0, iv / 7, iv / 3, iv - iv/5, iv}, // different K entirely
	}

	sdb, err := shard.SplitAt(db, base)
	if err != nil {
		t.Fatal(err)
	}
	ref := runAllKinds(t, sdb.View().WithWorkers(2), themeArg)

	for vi, bounds := range variants {
		bounds := bounds
		t.Run(fmt.Sprintf("variant%d", vi), func(t *testing.T) {
			moved, err := shard.SplitAt(db, bounds)
			if err != nil {
				t.Fatalf("SplitAt(%v): %v", bounds, err)
			}
			got := runAllKinds(t, moved.View().WithWorkers(2), themeArg)
			for kind, refTree := range ref {
				if err := eqTree(kind, refTree, got[kind]); err != nil {
					t.Errorf("%s: boundary move %v changed the answer: %v", kind, bounds, err)
				}
			}
		})
	}
}

// TestShardMetamorphicPermutation: assembling the same shards in any order
// must produce the same sharded DB — AssembleSharded sorts entries jointly
// with their parts by time range.
func TestShardMetamorphicPermutation(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	themeArg := themeParam(t, db)
	sdb, err := shard.Split(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]string, sdb.K())
	for i := range files {
		files[i] = fmt.Sprintf("part%d", i)
	}
	m, err := shard.ManifestFromDB(sdb, files)
	if err != nil {
		t.Fatal(err)
	}
	ref := runAllKinds(t, sdb.View().WithWorkers(2), themeArg)

	for pi, perm := range [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		perm := perm
		t.Run(fmt.Sprintf("perm%d", pi), func(t *testing.T) {
			pm := &shard.Manifest{Meta: m.Meta, Sources: m.Sources, Themes: m.Themes,
				Entries: make([]shard.ManifestEntry, len(perm))}
			parts := make([]*store.DB, len(perm))
			for i, p := range perm {
				pm.Entries[i] = m.Entries[p]
				parts[i] = sdb.Part(p)
			}
			permuted, err := shard.AssembleSharded(pm, parts)
			if err != nil {
				t.Fatalf("AssembleSharded(perm %v): %v", perm, err)
			}
			got := runAllKinds(t, permuted.View().WithWorkers(2), themeArg)
			for kind, refTree := range ref {
				if err := eqTree(kind, refTree, got[kind]); err != nil {
					t.Errorf("%s: permutation %v changed the answer: %v", kind, perm, err)
				}
			}
		})
	}
}

// TestShardMetamorphicWindowSplit: for additive windowed queries, the
// answer over [a, b) must equal the element-wise sum of the answers over
// [a, m) and [m, b), with the midpoint both on and off shard boundaries.
func TestShardMetamorphicWindowSplit(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	iv := db.Meta.Intervals
	sdb, err := shard.Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := sdb.View().WithWorkers(2)
	a, b := iv/7, iv-iv/9
	mids := []int32{(a + b) / 2, sdb.Bounds()[1], a + 1, b - 1}
	for _, mid := range mids {
		mid := mid
		t.Run(fmt.Sprintf("mid%d", mid), func(t *testing.T) {
			whole := v.WithWindow(a, b)
			left := v.WithWindow(a, mid)
			right := v.WithWindow(mid, b)

			wc, err := whole.CountWhere("")
			if err != nil {
				t.Fatal(err)
			}
			lc, err := left.CountWhere("")
			if err != nil {
				t.Fatal(err)
			}
			rc, err := right.CountWhere("")
			if err != nil {
				t.Fatal(err)
			}
			if wc != lc+rc {
				t.Errorf("count[%d,%d) = %d, but [%d,%d)+[%d,%d) = %d+%d",
					a, b, wc, a, mid, mid, b, lc, rc)
			}

			for name, f := range map[string]func(*shard.View) queries.QuarterlySeries{
				"series-articles":      (*shard.View).ArticlesPerQuarter,
				"series-slow-articles": (*shard.View).SlowArticlesPerQuarter,
			} {
				w, l, r := f(whole), f(left), f(right)
				for q := range w.Values {
					if w.Values[q] != l.Values[q]+r.Values[q] {
						t.Errorf("%s quarter %d: whole %d != left %d + right %d",
							name, q, w.Values[q], l.Values[q], r.Values[q])
					}
				}
			}
		})
	}
}

// TestShardMetamorphicTopKUnion: threshold-algorithm consistency of the
// global publisher top-k with per-shard candidates. Per-shard top-k lists
// (scores over each shard's time range, via windowed views) bound the
// global score of any source OUTSIDE their union by the sum of the
// per-shard k-th scores; every global top-k member strictly above that
// threshold must therefore appear in the union. The naive "global top-k ⊆
// union of per-shard top-ks" is NOT a theorem — this thresholded form is.
func TestShardMetamorphicTopKUnion(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	const k = 10
	for _, K := range []int{3, 5} {
		K := K
		t.Run(fmt.Sprintf("k%d", K), func(t *testing.T) {
			sdb, err := shard.Split(db, K)
			if err != nil {
				t.Fatal(err)
			}
			v := sdb.View().WithWorkers(2)
			union := map[int32]bool{}
			var threshold int64
			for i := 0; i < sdb.K(); i++ {
				ids, counts := v.WithWindow(sdb.Bounds()[i], sdb.Bounds()[i+1]).TopPublishers(k)
				for _, id := range ids {
					union[id] = true
				}
				if len(counts) >= k {
					threshold += counts[k-1]
				}
			}
			ids, counts := v.TopPublishers(k)
			for i, id := range ids {
				if counts[i] > threshold && !union[id] {
					t.Errorf("global rank %d publisher %q (score %d > threshold %d) missing from per-shard candidates",
						i+1, sdb.Sources().Name(id), counts[i], threshold)
				}
			}
		})
	}
}
