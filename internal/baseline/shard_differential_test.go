package baseline

import (
	"fmt"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// buildCorpus generates and converts one synthetic world.
func buildCorpus(t *testing.T, cfg gen.Config) *store.DB {
	t.Helper()
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	return res.DB
}

// themeParam picks a real theme name for the theme-trends kind, or "".
func themeParam(t *testing.T, db *store.DB) string {
	t.Helper()
	if db.GKG == nil {
		return ""
	}
	tc, err := queries.TopThemes(engine.New(db), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc) == 0 {
		return ""
	}
	return tc[0].Theme
}

// TestShardDifferentialAllKinds is the shard-vs-monolith battery: every
// registered query kind, on two generated worlds, sharded at K in {1,3,5}
// and executed with 1 and 4 workers, must produce the monolith's answer —
// integers bit-exact, floats within 1e-9 relative (eqTree). K=1 pins the
// degenerate single-shard path, odd K puts shard boundaries away from any
// structure in the data, and the worker sweep forbids results that depend
// on reduction schedule. ci.sh runs this battery under -race.
func TestShardDifferentialAllKinds(t *testing.T) {
	alt := gen.Small()
	alt.Seed = 777
	alt.End = 20170101000000 // shorter world: different interval count and quarters
	worlds := []struct {
		name string
		cfg  gen.Config
	}{
		{"seed42", gen.Small()},
		{"seed777", alt},
	}
	for _, w := range worlds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			db := buildCorpus(t, w.cfg)
			themeArg := themeParam(t, db)
			params := func(name string) []string {
				if name == "theme" && themeArg != "" {
					return []string{themeArg}
				}
				return nil
			}

			// Monolith reference, single worker: the answer every sharded
			// execution must reproduce.
			refs := map[string]any{}
			for _, d := range registry.All() {
				if d.NeedsGKG && db.GKG == nil {
					continue
				}
				p, err := d.ParseParams(params)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := d.Run(engine.New(db).WithWorkers(1).WithKind(d.Kind), p)
				if err != nil {
					t.Fatalf("%s: monolith: %v", d.Kind, err)
				}
				refs[d.Kind] = jsonTree(t, ref)
			}

			for _, k := range []int{1, 3, 5} {
				sdb, err := shard.Split(db, k)
				if err != nil {
					t.Fatalf("Split(%d): %v", k, err)
				}
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("k%d/w%d", k, workers), func(t *testing.T) {
						v := sdb.View().WithWorkers(workers)
						for _, d := range registry.All() {
							refTree, ok := refs[d.Kind]
							if !ok {
								continue
							}
							p, err := d.ParseParams(params)
							if err != nil {
								t.Fatal(err)
							}
							got, err := d.RunSharded(v.WithKind(d.Kind), p)
							if err != nil {
								t.Errorf("%s: sharded: %v", d.Kind, err)
								continue
							}
							if err := eqTree(d.Kind, refTree, jsonTree(t, got)); err != nil {
								t.Errorf("%s: sharded diverges from monolith: %v", d.Kind, err)
							}
						}
					})
				}
			}
		})
	}
}

// skewedBounds tiles [0, iv] into k shards with extreme size skew: shard 0
// holds ~80% of the timeline and the remaining shards split the tail
// evenly. Under the work-stealing executor the tiny shards finish almost
// immediately and their workers must steal grains from shard 0's kernels —
// the steal path a balanced split never forces — while the answers must
// stay identical to the monolith.
func skewedBounds(iv int32, k int) []int32 {
	bounds := make([]int32, k+1)
	big := iv * 4 / 5
	bounds[1] = big
	for i := 2; i <= k; i++ {
		bounds[i] = big + (iv-big)*int32(i-1)/int32(k-1)
	}
	bounds[k] = iv
	return bounds
}

// TestShardDifferentialSkewed is the battery over pathologically skewed
// shard sizes: every kind at K in {3,5} x workers {1,4} on an 80/20 split
// must reproduce the balanced-shard (and hence monolith) answer. ci.sh
// runs this under -race, so cross-shard merges and the steal path are
// exercised with the detector watching.
func TestShardDifferentialSkewed(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	themeArg := themeParam(t, db)
	params := func(name string) []string {
		if name == "theme" && themeArg != "" {
			return []string{themeArg}
		}
		return nil
	}

	refs := map[string]any{}
	for _, d := range registry.All() {
		if d.NeedsGKG && db.GKG == nil {
			continue
		}
		p, err := d.ParseParams(params)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := d.Run(engine.New(db).WithWorkers(1).WithKind(d.Kind), p)
		if err != nil {
			t.Fatalf("%s: monolith: %v", d.Kind, err)
		}
		refs[d.Kind] = jsonTree(t, ref)
	}

	for _, k := range []int{3, 5} {
		bounds := skewedBounds(db.Meta.Intervals, k)
		sdb, err := shard.SplitAt(db, bounds)
		if err != nil {
			t.Fatalf("SplitAt(%v): %v", bounds, err)
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("k%d/w%d", k, workers), func(t *testing.T) {
				v := sdb.View().WithWorkers(workers)
				for _, d := range registry.All() {
					refTree, ok := refs[d.Kind]
					if !ok {
						continue
					}
					p, err := d.ParseParams(params)
					if err != nil {
						t.Fatal(err)
					}
					got, err := d.RunSharded(v.WithKind(d.Kind), p)
					if err != nil {
						t.Errorf("%s: sharded: %v", d.Kind, err)
						continue
					}
					if err := eqTree(d.Kind, refTree, jsonTree(t, got)); err != nil {
						t.Errorf("%s: skewed shards diverge from monolith: %v", d.Kind, err)
					}
				}
			})
		}
	}
}

// TestShardDifferentialWindowed repeats the battery for a windowed view on
// the kinds that honor the mention window, with window endpoints chosen to
// fall both on and off shard boundaries.
func TestShardDifferentialWindowed(t *testing.T) {
	db := buildCorpus(t, gen.Small())
	iv := db.Meta.Intervals
	windows := [][2]int32{
		{0, iv},                // explicit full window
		{iv / 5, iv - iv/7},    // interior, off-boundary
		{iv / 3, iv/3 + iv/11}, // narrow
		{0, 0},                 // explicitly empty
		{iv - iv/13, iv},       // tail-only: the streaming case
	}
	for _, k := range []int{1, 3, 5} {
		sdb, err := shard.Split(db, k)
		if err != nil {
			t.Fatalf("Split(%d): %v", k, err)
		}
		for _, win := range windows {
			win := win
			t.Run(fmt.Sprintf("k%d/win%d-%d", k, win[0], win[1]), func(t *testing.T) {
				v := sdb.View().WithWorkers(4).WithWindow(win[0], win[1])
				for _, d := range registry.All() {
					if d.NeedsGKG && db.GKG == nil {
						continue
					}
					p, err := d.ParseParams(func(name string) []string {
						if name == "theme" {
							return []string{themeParam(t, db)}
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					e := engine.New(db).WithWorkers(1).WithKind(d.Kind).WithInterval(win[0], win[1])
					ref, err := d.Run(e, p)
					if err != nil {
						t.Fatalf("%s: monolith: %v", d.Kind, err)
					}
					got, err := d.RunSharded(v.WithKind(d.Kind), p)
					if err != nil {
						t.Errorf("%s: sharded: %v", d.Kind, err)
						continue
					}
					if err := eqTree(d.Kind, jsonTree(t, ref), jsonTree(t, got)); err != nil {
						t.Errorf("%s: windowed sharded diverges: %v", d.Kind, err)
					}
				}
			})
		}
	}
}
