package baseline

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/qlang"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// qlang pushdown differential battery (DESIGN.md §13): the bitmap pushdown
// plan, the range-narrowed scan and the closure fallback must aggregate
// bit-identically for every expression, and all of them must agree with an
// independent naive per-row evaluator written right here against the raw
// columns — no engine, no qlang.Filter, no bitmaps. Randomized expressions
// over every field and operator run on the two seeded worlds, workers
// {1,4}, full and windowed views, and against time-sharded splits K∈{1,4}.
// Integer aggregates are exact; float sums allow the usual 1e-9 merge-order
// tolerance at workers>1.

// adhocCase is one randomized where/group/agg triple.
type adhocCase struct{ where, group, agg string }

// presentCountries collects the FIPS codes that actually appear in the
// world, so random country clauses hit non-empty bitmaps most of the time.
func presentCountries(db *store.DB) []string {
	seen := map[int16]bool{}
	for _, c := range db.SourceCountry {
		if c >= 0 {
			seen[c] = true
		}
	}
	ne := db.Events.Len()
	for e := 0; e < ne; e++ {
		if c := db.Events.Country[e]; c >= 0 {
			seen[c] = true
		}
	}
	var out []string
	for c := range seen {
		out = append(out, gdelt.Countries[c].FIPS)
	}
	sort.Strings(out)
	return out
}

// randomAdhocCases generates n seeded random cases spanning every clause
// class: bitmap equalities (source, countries), range comparisons
// (interval, quarter) and residual comparisons (tone, delay, doclen,
// confidence, articles), 1–4 clauses each, crossed with every group field
// and aggregate kind.
func randomAdhocCases(db *store.DB, seed int64, n int) []adhocCase {
	rng := rand.New(rand.NewSource(seed))
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	rangeOps := []string{"=", "<", "<=", ">", ">="}
	eqOps := []string{"=", "!="}
	countries := presentCountries(db)
	clause := func() string {
		switch rng.Intn(9) {
		case 0:
			return "delay" + ops[rng.Intn(len(ops))] + strconv.Itoa(rng.Intn(200))
		case 1:
			return "doclen" + ops[rng.Intn(len(ops))] + strconv.Itoa(rng.Intn(3000))
		case 2:
			return "confidence" + ops[rng.Intn(len(ops))] + strconv.Itoa(rng.Intn(101))
		case 3:
			return "articles" + ops[rng.Intn(len(ops))] + strconv.Itoa(rng.Intn(40))
		case 4:
			return fmt.Sprintf("tone%s%.1f", ops[rng.Intn(len(ops))], rng.Float64()*20-10)
		case 5:
			return "interval" + rangeOps[rng.Intn(len(rangeOps))] +
				strconv.Itoa(rng.Intn(int(db.Meta.Intervals)+1))
		case 6:
			q := rng.Intn(db.NumQuarters())
			return "quarter" + rangeOps[rng.Intn(len(rangeOps))] + db.QuarterLabel(q)
		case 7:
			s := db.Sources.Name(int32(rng.Intn(db.Sources.Len())))
			return "source" + eqOps[rng.Intn(len(eqOps))] + s
		default:
			return "sourcecountry" + eqOps[rng.Intn(len(eqOps))] + countries[rng.Intn(len(countries))]
		}
	}
	groups := []string{"", "source", "sourcecountry", "eventcountry", "quarter"}
	aggs := []string{"count", "count", "sum:doclen", "mean:tone", "sum:articles", "mean:delay"}
	cases := make([]adhocCase, 0, n+2)
	for i := 0; i < n; i++ {
		where := clause()
		for j := rng.Intn(3); j > 0; j-- {
			where += " and " + clause()
		}
		cases = append(cases, adhocCase{where, groups[rng.Intn(len(groups))], aggs[rng.Intn(len(aggs))]})
	}
	// Two fixed edges: the empty expression, and an eventcountry bitmap
	// clause with a value aggregate.
	cases = append(cases,
		adhocCase{"", "quarter", "sum:doclen"},
		adhocCase{"eventcountry=" + countries[0] + " and tone>0", "source", "mean:tone"})
	return cases
}

// naiveAdhoc is the independent reference: a single sequential pass over
// the raw mention columns, evaluating every clause per row with local
// comparison helpers. It shares no code with qlang.Filter, the bitmaps or
// the kernels.
func naiveAdhoc(db *store.DB, spec queries.AdhocSpec, ivLo, ivHi int32) queries.AdhocVec {
	cmpI := func(a, b int64, op qlang.Op) bool {
		switch op {
		case qlang.OpEq:
			return a == b
		case qlang.OpNe:
			return a != b
		case qlang.OpLt:
			return a < b
		case qlang.OpLe:
			return a <= b
		case qlang.OpGt:
			return a > b
		default:
			return a >= b
		}
	}
	match := func(row int) bool {
		for _, c := range spec.Expr.Clauses {
			var ok bool
			switch c.Field {
			case "delay":
				ok = cmpI(int64(db.Mentions.Delay[row]), c.Value.Int, c.Op)
			case "interval":
				ok = cmpI(int64(db.Mentions.Interval[row]), c.Value.Int, c.Op)
			case "doclen":
				ok = cmpI(int64(db.Mentions.DocLen[row]), c.Value.Int, c.Op)
			case "confidence":
				ok = cmpI(int64(db.Mentions.Confidence[row]), c.Value.Int, c.Op)
			case "articles":
				ok = cmpI(int64(db.Events.NumArticles[db.Mentions.EventRow[row]]), c.Value.Int, c.Op)
			case "tone":
				a, b := float64(db.Mentions.Tone[row]), c.Value.Float
				switch c.Op {
				case qlang.OpEq:
					ok = a == b
				case qlang.OpNe:
					ok = a != b
				case qlang.OpLt:
					ok = a < b
				case qlang.OpLe:
					ok = a <= b
				case qlang.OpGt:
					ok = a > b
				default:
					ok = a >= b
				}
			case "quarter":
				q := db.QuarterOfInterval(db.Mentions.Interval[row])
				ok = cmpI(int64(q), int64(qlang.QuarterIndex(db, c.Value)), c.Op)
			case "source":
				ok = (db.Sources.Name(db.Mentions.Source[row]) == c.Value.Str) == (c.Op == qlang.OpEq)
			case "sourcecountry":
				want := int16(gdelt.CountryIndex(c.Value.Str))
				ok = (db.SourceCountry[db.Mentions.Source[row]] == want) == (c.Op == qlang.OpEq)
			case "eventcountry":
				want := int16(gdelt.CountryIndex(c.Value.Str))
				ok = (db.Events.Country[db.Mentions.EventRow[row]] == want) == (c.Op == qlang.OpEq)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	groupOf := func(row int) int {
		switch spec.Group {
		case "source":
			return int(db.Mentions.Source[row])
		case "sourcecountry":
			return int(db.SourceCountry[db.Mentions.Source[row]])
		case "eventcountry":
			return int(db.Events.Country[db.Mentions.EventRow[row]])
		case "quarter":
			return db.QuarterOfInterval(db.Mentions.Interval[row])
		}
		return -1
	}
	var val func(row int) float64
	switch spec.Agg.Field {
	case "delay":
		val = func(row int) float64 { return float64(db.Mentions.Delay[row]) }
	case "doclen":
		val = func(row int) float64 { return float64(db.Mentions.DocLen[row]) }
	case "tone":
		val = func(row int) float64 { return float64(db.Mentions.Tone[row]) }
	case "confidence":
		val = func(row int) float64 { return float64(db.Mentions.Confidence[row]) }
	case "articles":
		val = func(row int) float64 { return float64(db.Events.NumArticles[db.Mentions.EventRow[row]]) }
	}
	grouped := spec.Group != ""
	var vec queries.AdhocVec
	var n int
	switch spec.Group {
	case "source":
		n = db.Sources.Len()
	case "sourcecountry", "eventcountry":
		n = len(gdelt.Countries)
	case "quarter":
		n = db.NumQuarters()
	}
	if grouped {
		vec.Counts = make([]int64, n)
		if val != nil {
			vec.Sums = make([]float64, n)
		}
	}
	nm := db.Mentions.Len()
	for row := 0; row < nm; row++ {
		if iv := db.Mentions.Interval[row]; iv < ivLo || iv >= ivHi {
			continue
		}
		if !match(row) {
			continue
		}
		vec.Count++
		var v float64
		if val != nil {
			v = val(row)
			vec.Sum += v
		}
		if grouped {
			if g := groupOf(row); g >= 0 && g < n {
				vec.Counts[g]++
				if val != nil {
					vec.Sums[g] += v
				}
			}
		}
	}
	return vec
}

// eqAdhocVec compares the comparable fields of two vectors: counts exactly,
// sums with the float merge tolerance. The scalar Sum only participates for
// ungrouped value aggregates — the grouped engine paths do not fill it.
func eqAdhocVec(t *testing.T, spec queries.AdhocSpec, got, want queries.AdhocVec, workers int) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("count: got %d, want %d", got.Count, want.Count)
	}
	if spec.Group == "" {
		if spec.Agg.Kind != qlang.AggCount {
			eqFloats(t, "sum", []float64{got.Sum}, []float64{want.Sum}, workers)
		}
		return
	}
	eqSeries(t, "group counts", got.Counts, want.Counts)
	if spec.Agg.Kind != qlang.AggCount {
		eqFloats(t, "group sums", got.Sums, want.Sums, workers)
	}
}

var qlangPlanModes = []engine.PlanMode{engine.PlanAuto, engine.PlanRows, engine.PlanScan}

func TestQlangDifferentialMonolith(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		n := db.Meta.Intervals
		windows := map[string][2]int32{
			"full":   {0, n},
			"window": {n / 4, 3 * n / 4},
		}
		for ci, c := range randomAdhocCases(db, int64(seedIdx)*977+13, 16) {
			spec, err := queries.ParseAdhocSpec(c.where, c.group, c.agg, queries.DefaultAdhocK)
			if err != nil {
				t.Fatalf("case %d %q: %v", ci, c.where, err)
			}
			for viewName, win := range windows {
				want := naiveAdhoc(db, spec, win[0], win[1])
				for _, w := range differentialWorkers {
					base := engine.New(db).WithWorkers(w).WithInterval(win[0], win[1])
					for _, mode := range qlangPlanModes {
						e := base.WithPlan(mode)
						name := fmt.Sprintf("world%d/case%d/%s/w%d/%v", seedIdx, ci, viewName, w, mode)
						t.Run(name, func(t *testing.T) {
							got, err := queries.AdhocVectors(e, spec, queries.AdhocGroupSpec(db, spec.Group))
							if err != nil {
								t.Fatalf("%q: %v", c.where, err)
							}
							if t.Failed() {
								return
							}
							eqAdhocVec(t, spec, got, want, w)
							if t.Failed() {
								t.Logf("where=%q group=%q agg=%q", c.where, c.group, c.agg)
							}
						})
					}
				}
			}
		}
	}
}

func TestQlangDifferentialSharded(t *testing.T) {
	for seedIdx, db := range kernelWorlds(t) {
		cases := randomAdhocCases(db, int64(seedIdx)*1511+7, 8)
		for _, k := range []int{1, 4} {
			sdb, err := shard.Split(db, k)
			if err != nil {
				t.Fatalf("Split(%d): %v", k, err)
			}
			for ci, c := range cases {
				spec, err := queries.ParseAdhocSpec(c.where, c.group, c.agg, queries.DefaultAdhocK)
				if err != nil {
					t.Fatalf("case %d %q: %v", ci, c.where, err)
				}
				ref, err := queries.AdhocQuery(
					engine.New(db).WithWorkers(1).WithPlan(engine.PlanScan), spec)
				if err != nil {
					t.Fatal(err)
				}
				refTree := jsonTree(t, ref)
				for _, w := range differentialWorkers {
					for _, mode := range qlangPlanModes {
						name := fmt.Sprintf("world%d/K%d/case%d/w%d/%v", seedIdx, k, ci, w, mode)
						t.Run(name, func(t *testing.T) {
							got, err := sdb.View().WithWorkers(w).WithPlan(mode).AdhocQuery(spec)
							if err != nil {
								t.Fatalf("%q: %v", c.where, err)
							}
							if err := eqTree("result", jsonTree(t, got), refTree); err != nil {
								t.Errorf("where=%q group=%q agg=%q: %v", c.where, c.group, c.agg, err)
							}
						})
					}
				}
			}
		}
	}
}

// TestQlangExplainDoesNotExecute pins the explain contract: the plan for a
// selective bitmap expression reports the pushdown path with its clauses
// split correctly, and asking for it runs no aggregation (the obs counters
// only move on execution, and explain leaves them alone).
func TestQlangExplainDoesNotExecute(t *testing.T) {
	db := kernelWorlds(t)[0]
	countries := presentCountries(db)
	where := "sourcecountry=" + countries[0] + " and tone>0 and quarter>=" + db.QuarterLabel(0)
	spec, err := queries.ParseAdhocSpec(where, "source", "count", 5)
	if err != nil {
		t.Fatal(err)
	}
	plan := queries.ExplainAdhoc(engine.New(db), spec)
	if plan.Where != spec.Where {
		t.Errorf("plan.Where = %q, want canonical %q", plan.Where, spec.Where)
	}
	if len(plan.Pushdown)+len(plan.Fallback) != 3 {
		t.Errorf("plan splits %d+%d clauses, want 3 total (%+v)",
			len(plan.Pushdown), len(plan.Fallback), plan)
	}
	if plan.WindowRows <= 0 || plan.EstRows < 0 || plan.EstRows > plan.WindowRows {
		t.Errorf("plan row estimates out of range: %+v", plan)
	}
	if plan.Selectivity < 0 || plan.Selectivity > 1 {
		t.Errorf("plan selectivity %v out of [0,1]", plan.Selectivity)
	}
	if plan.Path != "pushdown" && plan.Path != "range" && plan.Path != "scan" {
		t.Errorf("plan path %q unknown", plan.Path)
	}
	// Forcing the scan plan must demote every clause to fallback.
	scanPlan := queries.ExplainAdhoc(engine.New(db).WithPlan(engine.PlanScan), spec)
	if scanPlan.Path != "scan" || len(scanPlan.Pushdown) != 0 {
		t.Errorf("forced scan plan still pushes down: %+v", scanPlan)
	}
}
