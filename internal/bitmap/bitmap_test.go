package bitmap

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refSet is the naive []uint64 bitset the battery cross-checks against:
// one bit per row over the whole domain, with the obvious O(domain) ops.
type refSet struct {
	words []uint64
	n     int32 // domain size (rows are in [0, n))
}

func newRef(n int32) *refSet { return &refSet{words: make([]uint64, (n+63)/64), n: n} }

func (r *refSet) add(row int32)           { r.words[row>>6] |= 1 << (row & 63) }
func (r *refSet) has(row int32) bool      { return r.words[row>>6]&(1<<(row&63)) != 0 }
func (r *refSet) union(o *refSet) *refSet {
	out := newRef(r.n)
	for i := range out.words {
		out.words[i] = r.words[i] | o.words[i]
	}
	return out
}
func (r *refSet) intersect(o *refSet) *refSet {
	out := newRef(r.n)
	for i := range out.words {
		out.words[i] = r.words[i] & o.words[i]
	}
	return out
}
func (r *refSet) difference(o *refSet) *refSet {
	out := newRef(r.n)
	for i := range out.words {
		out.words[i] = r.words[i] &^ o.words[i]
	}
	return out
}
func (r *refSet) rows() []int32 {
	var out []int32
	for i := int32(0); i < r.n; i++ {
		if r.has(i) {
			out = append(out, i)
		}
	}
	return out
}
func (r *refSet) rank(row int32) int64 {
	var n int64
	for i := int32(0); i <= row && i < r.n; i++ {
		if r.has(i) {
			n++
		}
	}
	return n
}

// genRef draws a random row set designed to hit every container shape:
// sparse scatters (array), dense blocks past the 4096 promotion point
// (bitset), contiguous spans (run), and values hugging chunk boundaries.
func genRef(rng *rand.Rand, domain int32) *refSet {
	r := newRef(domain)
	// Sparse scatter.
	for i, n := 0, rng.Intn(400); i < n; i++ {
		r.add(rng.Int31n(domain))
	}
	// Contiguous runs (run containers).
	for i, n := 0, rng.Intn(4); i < n; i++ {
		start := rng.Int31n(domain)
		length := rng.Int31n(3000) + 1
		for v := start; v < start+length && v < domain; v++ {
			r.add(v)
		}
	}
	// A dense block that crosses the array→bitset promotion threshold.
	if rng.Intn(2) == 0 {
		base := rng.Int31n(domain)
		for i, n := int32(0), int32(arrayMax+500); i < n; i++ {
			v := base + i*3
			if v >= domain {
				break
			}
			r.add(v)
		}
	}
	// Chunk-boundary values.
	for _, v := range []int32{0, chunkSize - 1, chunkSize, chunkSize + 1, 2*chunkSize - 1, 2 * chunkSize} {
		if v < domain && rng.Intn(2) == 0 {
			r.add(v)
		}
	}
	return r
}

func fromRef(t *testing.T, r *refSet) *Bitmap {
	t.Helper()
	return FromSorted(r.rows())
}

func checkRows(t *testing.T, tag string, b *Bitmap, want []int32) {
	t.Helper()
	got := b.AppendRows(nil)
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row[%d] = %d, want %d", tag, i, got[i], want[i])
		}
	}
	if b.Cardinality() != int64(len(want)) {
		t.Fatalf("%s: cardinality %d, want %d", tag, b.Cardinality(), len(want))
	}
}

// TestBitmapAgainstReference is the property battery: randomized sets built
// through FromSorted and Add, every operation cross-checked bit-exactly
// against the naive bitset reference.
func TestBitmapAgainstReference(t *testing.T) {
	const domain = 3 * chunkSize // three chunks, so boundary cases repeat
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ra, rb := genRef(rng, domain), genRef(rng, domain)
		a, b := fromRef(t, ra), fromRef(t, rb)
		checkRows(t, "a", a, ra.rows())
		checkRows(t, "b", b, rb.rows())

		// Add in shuffled order must converge to the same set.
		rows := ra.rows()
		perm := rng.Perm(len(rows))
		inc := New()
		for _, i := range perm {
			inc.Add(rows[i])
		}
		inc.Add(rows[len(rows)/2]) // duplicate adds are no-ops
		if !Equal(inc, a) {
			t.Fatalf("seed %d: incremental Add disagrees with FromSorted", seed)
		}
		checkRows(t, "inc", inc, rows)

		checkRows(t, "union", Union(a, b), ra.union(rb).rows())
		checkRows(t, "intersect", Intersect(a, b), ra.intersect(rb).rows())
		checkRows(t, "difference", Difference(a, b), ra.difference(rb).rows())

		// Algebraic identities (metamorphic checks).
		if !Equal(Union(Intersect(a, b), Difference(a, b)), a) {
			t.Fatalf("seed %d: (a∩b) ∪ (a\\b) != a", seed)
		}
		if !Equal(Difference(a, Difference(a, b)), Intersect(a, b)) {
			t.Fatalf("seed %d: a \\ (a\\b) != a∩b", seed)
		}
		if !Equal(Union(a, b), Union(b, a)) {
			t.Fatalf("seed %d: union not commutative", seed)
		}

		// Multi-way operations against the reference: UnionAll and
		// AtLeastTwo over a small family, IntersectCard vs the materialized
		// intersection.
		rc := genRef(rng, domain)
		c := fromRef(t, rc)
		family := []*Bitmap{a, b, c, nil, New()}
		checkRows(t, "unionAll", UnionAll(family), ra.union(rb).union(rc).rows())
		if got, want := IntersectCard(a, b), Intersect(a, b).Cardinality(); got != want {
			t.Fatalf("seed %d: IntersectCard = %d, want %d", seed, got, want)
		}
		// AtLeastTwo == union of pairwise intersections.
		pairwise := ra.intersect(rb).union(ra.intersect(rc)).union(rb.intersect(rc))
		checkRows(t, "atLeastTwo", AtLeastTwo(family), pairwise.rows())
		if got := AtLeastTwo([]*Bitmap{a, nil}); got.Cardinality() != 0 {
			t.Fatalf("seed %d: AtLeastTwo of one live input returned %d rows", seed, got.Cardinality())
		}
		if !Equal(UnionAll(family), Union(Union(a, b), c)) {
			t.Fatalf("seed %d: UnionAll disagrees with folded Union", seed)
		}
		cards := PairwiseIntersectCards(family)
		for i, x := range family {
			for j, y := range family {
				want := int64(0)
				if i != j {
					want = Intersect(x, y).Cardinality()
				}
				if cards[i][j] != want {
					t.Fatalf("seed %d: PairwiseIntersectCards[%d][%d] = %d, want %d",
						seed, i, j, cards[i][j], want)
				}
			}
		}

		// Rank / Select / Contains against the reference.
		for i := 0; i < 64; i++ {
			v := rng.Int31n(domain)
			if a.Contains(v) != ra.has(v) {
				t.Fatalf("seed %d: Contains(%d) = %v", seed, v, a.Contains(v))
			}
			if got, want := a.Rank(v), ra.rank(v); got != want {
				t.Fatalf("seed %d: Rank(%d) = %d, want %d", seed, v, got, want)
			}
		}
		for i, want := range rows {
			got, ok := a.Select(int64(i))
			if !ok || got != want {
				t.Fatalf("seed %d: Select(%d) = %d,%v, want %d", seed, i, got, ok, want)
			}
		}
		if _, ok := a.Select(int64(len(rows))); ok {
			t.Fatalf("seed %d: Select past the end succeeded", seed)
		}
		if got := a.Rank(domain - 1); got != int64(len(rows)) {
			t.Fatalf("seed %d: Rank(max) = %d, want %d", seed, got, len(rows))
		}

		// Codec round trip: deterministic bytes, equal decode.
		enc := a.AppendTo(nil)
		if !bytes.Equal(enc, a.AppendTo(nil)) {
			t.Fatalf("seed %d: encoding not deterministic", seed)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !Equal(dec, a) {
			t.Fatalf("seed %d: decode round trip disagrees", seed)
		}
		if !bytes.Equal(dec.AppendTo(nil), enc) {
			t.Fatalf("seed %d: re-encoding decoded bitmap changed bytes", seed)
		}
	}
}

// TestContainerShapes pins the promotion rules: a dense chunk becomes a
// bitset, a contiguous span becomes runs, and both survive the codec.
func TestContainerShapes(t *testing.T) {
	// 5000 scattered values in one chunk: past arrayMax, no long runs.
	var rows []int32
	for i := int32(0); i < 5000; i++ {
		rows = append(rows, i*13%chunkSize)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	b := FromSorted(rows)
	if b.cs[0].typ != typeBitset {
		t.Fatalf("dense scattered chunk stored as type %d, want bitset", b.cs[0].typ)
	}
	// A full contiguous span becomes one run pair.
	span := make([]int32, chunkSize)
	for i := range span {
		span[i] = int32(i)
	}
	r := FromSorted(span)
	if r.cs[0].typ != typeRun || len(r.cs[0].arr) != 2 {
		t.Fatalf("full chunk stored as type %d with %d run words", r.cs[0].typ, len(r.cs[0].arr))
	}
	for _, bm := range []*Bitmap{b, r} {
		dec, err := Decode(bm.AppendTo(nil))
		if err != nil || !Equal(dec, bm) {
			t.Fatalf("shape round trip failed: %v", err)
		}
	}
}

// TestConcurrentReads exercises the read-only contract under -race: one
// shared bitmap read from many goroutines, including set operations that
// share container memory with it.
func TestConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ra, rb := genRef(rng, 2*chunkSize), genRef(rng, 2*chunkSize)
	a, b := FromSorted(ra.rows()), FromSorted(rb.rows())
	want := a.Cardinality()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if a.Cardinality() != want {
					t.Errorf("cardinality changed under concurrent reads")
					return
				}
				_ = a.Contains(int32(g*1000 + i))
				_ = a.Rank(int32(i * 100))
				_ = Union(a, b).AppendRows(nil)
				_ = Intersect(a, b)
				_ = a.AppendTo(nil)
			}
		}(g)
	}
	wg.Wait()
}
