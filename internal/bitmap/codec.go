package bitmap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// The binary codec: a 4-byte magic, a version byte, a uvarint container
// count, the containers (uvarint chunk key, type byte, uvarint cardinality,
// type-specific payload), and a trailing CRC32 (IEEE) of everything before
// it. Array payloads are little-endian uint16 values, run payloads are a
// uvarint run count followed by (start, last) uint16 pairs, bitset payloads
// are the 1024 words little-endian. The decoder is defensive end to end:
// truncation, unknown container types, out-of-range keys or cardinalities,
// non-canonical payloads and checksum mismatches are all errors, never
// panics (FuzzDecode pins this).

// codecMagic identifies a serialized bitmap.
var codecMagic = [4]byte{'G', 'D', 'B', 'M'}

// codecVersion is the format version this package writes and accepts.
const codecVersion = 1

// maxContainers caps decoder allocation; the row domain (int32) cannot hold
// more chunks than this anyway.
const maxContainers = maxChunk + 1

// AppendTo appends the bitmap's encoding to dst and returns the extended
// slice. Canonical bitmaps (FromSorted and set-operation results) encode
// deterministically: equal row sets produce identical bytes.
func (b *Bitmap) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, codecMagic[:]...)
	dst = append(dst, codecVersion)
	n := 0
	if b != nil {
		n = len(b.cs)
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for i := 0; i < n; i++ {
		c := &b.cs[i]
		dst = binary.AppendUvarint(dst, uint64(b.keys[i]))
		dst = append(dst, c.typ)
		dst = binary.AppendUvarint(dst, uint64(c.card))
		switch c.typ {
		case typeArray:
			for _, v := range c.arr {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		case typeRun:
			dst = binary.AppendUvarint(dst, uint64(len(c.arr)/2))
			for _, v := range c.arr {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		case typeBitset:
			for _, w := range c.bits {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decoder walks an encoding, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("bitmap: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("truncated")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u16s(n int) []uint16 {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < 2*n {
		d.fail("truncated payload (%d of %d bytes)", len(d.buf), 2*n)
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(d.buf[2*i:])
	}
	d.buf = d.buf[2*n:]
	return out
}

// Decode parses an encoding produced by AppendTo, consuming the entire
// input: trailing bytes are an error. Corrupt input of any shape returns an
// error, never panics.
func Decode(data []byte) (*Bitmap, error) {
	if len(data) < len(codecMagic)+1+4 {
		return nil, fmt.Errorf("bitmap: encoding truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("bitmap: checksum mismatch")
	}
	for i := range codecMagic {
		if body[i] != codecMagic[i] {
			return nil, fmt.Errorf("bitmap: bad magic %q", body[:len(codecMagic)])
		}
	}
	if v := body[len(codecMagic)]; v != codecVersion {
		return nil, fmt.Errorf("bitmap: unsupported version %d", v)
	}
	d := &decoder{buf: body[len(codecMagic)+1:]}
	n := d.uvarint()
	if n > maxContainers {
		return nil, fmt.Errorf("bitmap: %d containers exceeds maximum", n)
	}
	b := &Bitmap{}
	if n > 0 {
		b.keys = make([]uint16, 0, n)
		b.cs = make([]container, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		key := d.uvarint()
		typ := d.byte()
		card := d.uvarint()
		if d.err != nil {
			break
		}
		if key > maxChunk {
			return nil, fmt.Errorf("bitmap: chunk key %d out of range", key)
		}
		if len(b.keys) > 0 && uint16(key) <= b.keys[len(b.keys)-1] {
			return nil, fmt.Errorf("bitmap: chunk keys not ascending at %d", key)
		}
		if card < 1 || card > chunkSize {
			return nil, fmt.Errorf("bitmap: container cardinality %d out of range", card)
		}
		c := container{typ: typ, card: int32(card)}
		switch typ {
		case typeArray:
			if card > arrayMax {
				return nil, fmt.Errorf("bitmap: array container cardinality %d exceeds %d", card, arrayMax)
			}
			c.arr = d.u16s(int(card))
			for j := 1; j < len(c.arr); j++ {
				if c.arr[j] <= c.arr[j-1] {
					return nil, fmt.Errorf("bitmap: array container values not ascending")
				}
			}
		case typeRun:
			runs := d.uvarint()
			if runs < 1 || runs > uint64(card) {
				return nil, fmt.Errorf("bitmap: run count %d inconsistent with cardinality %d", runs, card)
			}
			c.arr = d.u16s(int(runs) * 2)
			var total uint64
			for j := 0; j+1 < len(c.arr); j += 2 {
				start, last := c.arr[j], c.arr[j+1]
				if last < start {
					return nil, fmt.Errorf("bitmap: run [%d, %d] inverted", start, last)
				}
				// Canonical runs are separated by at least one clear bit;
				// adjacent or overlapping runs would make encodings ambiguous.
				if j > 0 && int(start) <= int(c.arr[j-1])+1 {
					return nil, fmt.Errorf("bitmap: runs not ascending and separated")
				}
				total += uint64(last-start) + 1
			}
			if d.err == nil && total != card {
				return nil, fmt.Errorf("bitmap: runs cover %d rows, cardinality says %d", total, card)
			}
		case typeBitset:
			words := d.u16s(bitsetWords * 4) // reuse the bounds check: 4 uint16 per word
			if d.err == nil {
				c.bits = make([]uint64, bitsetWords)
				for w := range c.bits {
					c.bits[w] = uint64(words[4*w]) | uint64(words[4*w+1])<<16 |
						uint64(words[4*w+2])<<32 | uint64(words[4*w+3])<<48
				}
				got := 0
				for _, w := range c.bits {
					got += bits.OnesCount64(w)
				}
				if uint64(got) != card {
					return nil, fmt.Errorf("bitmap: bitset has %d bits, cardinality says %d", got, card)
				}
			}
		default:
			return nil, fmt.Errorf("bitmap: unknown container type %d", typ)
		}
		if d.err != nil {
			break
		}
		b.keys = append(b.keys, uint16(key))
		b.cs = append(b.cs, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("bitmap: %d trailing bytes after containers", len(d.buf))
	}
	return b, nil
}
