package bitmap

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// refix recomputes the trailing CRC so a deliberate payload mutation reaches
// the structural validators instead of being rejected at the checksum.
func refix(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) < 4 {
		return out
	}
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(out[:len(out)-4]))
	return out
}

// fuzzShapes returns valid encodings covering every container type plus the
// empty bitmap and a multi-chunk mix.
func fuzzShapes() map[string][]byte {
	rng := rand.New(rand.NewSource(41))
	shapes := map[string]*Bitmap{
		"empty": New(),
		"array": FromSorted([]int32{0, 3, 7, 4095, 4096, 65535}),
	}
	span := make([]int32, 0, chunkSize)
	for i := int32(0); i < chunkSize; i++ {
		span = append(span, i)
	}
	shapes["run"] = FromSorted(span)
	var dense []int32
	for i := int32(0); i < 5000; i++ {
		dense = append(dense, (i*13)%chunkSize)
	}
	shapes["bitset"] = FromSorted(dedupSorted(dense))
	var mix []int32
	for i := 0; i < 9000; i++ {
		mix = append(mix, rng.Int31n(4*chunkSize))
	}
	shapes["mixed"] = FromSorted(dedupSorted(mix))

	out := make(map[string][]byte, len(shapes))
	for name, b := range shapes {
		out[name] = b.AppendTo(nil)
	}
	return out
}

func dedupSorted(rows []int32) []int32 {
	sortInt32(rows)
	out := rows[:0]
	for i, v := range rows {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortInt32(rows []int32) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// codecFuzzSeeds assembles the corpus: valid encodings of every shape plus
// systematic corruptions — truncations, flipped container-type bytes, bad
// cardinalities, checksum damage — all of which must error, never panic.
func codecFuzzSeeds() map[string][]byte {
	seeds := map[string][]byte{}
	for name, enc := range fuzzShapes() {
		seeds["valid-"+name] = enc
		if len(enc) > 12 {
			seeds["trunc-"+name] = enc[:len(enc)/2]
			seeds["no-crc-"+name] = enc[:len(enc)-4]
			// Flip the first container's type byte (magic 4 + version 1 +
			// count varint 1..2 + key varint ≥1): probe both offsets.
			for _, off := range []int{6, 7} {
				mut := append([]byte(nil), enc...)
				mut[off] ^= 0x7
				seeds["flip-type-"+name+"-"+strconv.Itoa(off)] = refix(mut)
			}
			// Inflate a cardinality varint.
			mut := append([]byte(nil), enc...)
			mut[8] ^= 0x55
			seeds["bad-card-"+name] = refix(mut)
			// Raw bit flips that fail the CRC.
			mut = append([]byte(nil), enc...)
			mut[len(mut)/2] ^= 0x10
			seeds["crc-"+name] = mut
		}
	}
	seeds["short"] = []byte{'G', 'D', 'B', 'M'}
	seeds["bad-magic"] = refix([]byte{'X', 'D', 'B', 'M', 1, 0, 0, 0, 0, 0})
	seeds["bad-version"] = refix([]byte{'G', 'D', 'B', 'M', 9, 0, 0, 0, 0, 0})
	seeds["huge-count"] = refix(append([]byte{'G', 'D', 'B', 'M', 1, 0xFF, 0xFF, 0xFF, 0x7F}, 0, 0, 0, 0))
	return seeds
}

// FuzzDecode pins the decoder contract: arbitrary bytes may produce an
// error but never a panic, and any accepted input must re-encode and
// re-decode to the same bitmap with stable bytes.
func FuzzDecode(f *testing.F) {
	for _, seed := range codecFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(data)
		if err != nil {
			return
		}
		rows := b.AppendRows(nil)
		if int64(len(rows)) != b.Cardinality() {
			t.Fatalf("cardinality %d but %d rows extracted", b.Cardinality(), len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				t.Fatalf("extracted rows not ascending at %d", i)
			}
		}
		enc := b.AppendTo(nil)
		b2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding accepted bitmap failed: %v", err)
		}
		if !Equal(b, b2) {
			t.Fatalf("re-decode disagrees with original decode")
		}
		if !bytes.Equal(enc, b2.AppendTo(nil)) {
			t.Fatalf("re-encoding is not byte-stable")
		}
	})
}

// TestDecodeErrors drives each validator directly with CRC-fixed mutations,
// so the specific error paths (not just the checksum) are exercised.
func TestDecodeErrors(t *testing.T) {
	arr := FromSorted([]int32{5, 9, 100}).AppendTo(nil)
	cases := map[string][]byte{
		"empty":     nil,
		"short":     {1, 2, 3},
		"truncated": arr[:len(arr)-6],
		"crc":       append(append([]byte(nil), arr[:len(arr)-1]...), arr[len(arr)-1]^1),
	}
	// Unknown container type at offset 6 (magic+version+count).
	mut := append([]byte(nil), arr...)
	mut[7] = 9
	cases["unknown-type"] = refix(mut)
	// Array cardinality claiming more values than the payload holds.
	mut = append([]byte(nil), arr...)
	mut[8] = 200
	cases["bad-card"] = refix(mut)
	// Descending array values.
	mut = append([]byte(nil), arr...)
	binary.LittleEndian.PutUint16(mut[9:], 500) // first value now > second
	cases["unsorted-array"] = refix(mut)
	// Run container whose coverage disagrees with its cardinality.
	run := FromSorted([]int32{10, 11, 12, 13, 20, 21}).AppendTo(nil)
	if run[7] != typeRun {
		t.Fatalf("expected run container encoding, got type %d", run[7])
	}
	mut = append([]byte(nil), run...)
	mut[8] = 5 // card was 6
	cases["run-card-mismatch"] = refix(mut)
	// Bitset popcount disagreeing with its cardinality.
	var dense []int32
	for i := int32(0); i < 5000; i++ {
		dense = append(dense, (i*13)%chunkSize)
	}
	bs := FromSorted(dedupSorted(dense)).AppendTo(nil)
	mut = append([]byte(nil), bs...)
	mut[20] ^= 0xFF // flip payload bits without touching the cardinality
	cases["bitset-popcount"] = refix(mut)
	// Trailing garbage after a valid body.
	withTail := append(append([]byte(nil), arr[:len(arr)-4]...), 0xAB)
	cases["trailing"] = refix(append(withTail, 0, 0, 0, 0))

	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}

	// Sanity: the unmutated encodings all decode.
	for _, valid := range [][]byte{arr, run, bs} {
		if _, err := Decode(valid); err != nil {
			t.Fatalf("valid encoding rejected: %v", err)
		}
	}
}

// TestWriteBitmapFuzzSeedCorpus regenerates the checked-in corpus when
// GDELT_UPDATE_FUZZ_CORPUS=1, mirroring the binfmt/manifest fuzzers.
func TestWriteBitmapFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("GDELT_UPDATE_FUZZ_CORPUS") != "1" {
		t.Skip("set GDELT_UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range codecFuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
