// Package bitmap implements roaring-style compressed bitmaps over int32 row
// ids: the row space is split into 2^16-row chunks and each non-empty chunk
// is stored in whichever of three container representations is smallest —
// a sorted uint16 array (sparse chunks), a 1024-word bitset (dense chunks),
// or a list of (start, last) runs (contiguous chunks). This is the predicate
// layer behind the store's per-dictionary-value postings (DESIGN.md §12):
// selections become container-wise unions and intersections instead of
// row-list merges, and cardinalities are O(1) per container, which is what
// lets the query planner estimate selectivity without touching row data.
//
// Bitmaps built by FromSorted and the set operations are canonical: a given
// row set always has exactly one representation (and therefore exactly one
// encoding — the shard manifest relies on this to cross-check persisted
// postings against rebuilt ones by byte equality). Containers are immutable
// once built; set operations share container memory with their inputs
// rather than copying, so results must be treated as read-only, like the
// store's postings slices. Add is the one mutating method and is only for
// incremental construction of a private bitmap.
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	chunkBits = 16
	// chunkSize is the number of rows one container covers.
	chunkSize = 1 << chunkBits
	// arrayMax is the largest cardinality stored as a sorted uint16 array;
	// past it a bitset (8 KiB) is smaller than the array (2 bytes/row).
	arrayMax = chunkSize / 16
	// bitsetWords is the fixed word count of a bitset container.
	bitsetWords = chunkSize / 64
	// maxChunk keeps every representable row inside the int32 domain.
	maxChunk = 1<<15 - 1
)

// Container types, also the on-disk type tags of the codec.
const (
	typeArray  = 1
	typeBitset = 2
	typeRun    = 3
)

// container is one chunk's row set. Exactly one of arr/bits is populated:
// typeArray keeps sorted low-16 values in arr, typeRun keeps (start, last)
// pairs flattened into arr, typeBitset keeps the 1024-word bitset in bits.
type container struct {
	typ  uint8
	card int32
	arr  []uint16
	bits []uint64
}

// Bitmap is a compressed set of int32 row ids. The zero value is empty and
// ready to use.
type Bitmap struct {
	keys []uint16 // chunk indices, strictly ascending
	cs   []container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// runsInSorted counts the maximal consecutive runs of an ascending value
// slice.
func runsInSorted(vals []uint16) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1]+1 {
			runs++
		}
	}
	return runs
}

// runsInBits counts the runs of a bitset: a run starts at every set bit
// whose predecessor is clear, so it is popcount(b &^ (b << 1)) with the
// carry of the previous word's top bit.
func runsInBits(words []uint64) int {
	runs := 0
	var carry uint64 // top bit of the previous word
	for _, w := range words {
		runs += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> 63
	}
	return runs
}

// canonType picks the canonical representation for a chunk of the given
// cardinality and run count: the smallest encoding, ties broken
// deterministically (run beats array beats bitset).
func canonType(card, runs int) uint8 {
	runBytes := 4 * runs
	arrBytes := 2 * card
	switch {
	case runBytes <= arrBytes && runBytes < 8*bitsetWords:
		return typeRun
	case card <= arrayMax:
		return typeArray
	default:
		return typeBitset
	}
}

// fromValues builds the canonical container for an ascending, duplicate-free
// value slice. The slice is copied when kept.
func fromValues(vals []uint16) container {
	card := len(vals)
	switch canonType(card, runsInSorted(vals)) {
	case typeRun:
		runs := make([]uint16, 0, 8)
		start := vals[0]
		prev := vals[0]
		for _, v := range vals[1:] {
			if v != prev+1 {
				runs = append(runs, start, prev)
				start = v
			}
			prev = v
		}
		runs = append(runs, start, prev)
		return container{typ: typeRun, card: int32(card), arr: runs}
	case typeArray:
		return container{typ: typeArray, card: int32(card), arr: append([]uint16(nil), vals...)}
	default:
		words := make([]uint64, bitsetWords)
		for _, v := range vals {
			words[v>>6] |= 1 << (v & 63)
		}
		return container{typ: typeBitset, card: int32(card), bits: words}
	}
}

// fromBits builds the canonical container for a scratch bitset; words is
// consumed (kept or discarded) and must not be reused by the caller.
func fromBits(words []uint64) (container, bool) {
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	if card == 0 {
		return container{}, false
	}
	switch canonType(card, runsInBits(words)) {
	case typeBitset:
		return container{typ: typeBitset, card: int32(card), bits: words}, true
	default:
		vals := make([]uint16, 0, card)
		for wi, w := range words {
			base := uint16(wi << 6)
			for w != 0 {
				vals = append(vals, base+uint16(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return fromValues(vals), true
	}
}

// forEach calls f with every value of the container in ascending order.
func (c *container) forEach(f func(v uint16)) {
	switch c.typ {
	case typeArray:
		for _, v := range c.arr {
			f(v)
		}
	case typeRun:
		for i := 0; i < len(c.arr); i += 2 {
			start, last := c.arr[i], c.arr[i+1]
			for v := int(start); v <= int(last); v++ {
				f(uint16(v))
			}
		}
	case typeBitset:
		for wi, w := range c.bits {
			base := uint16(wi << 6)
			for w != 0 {
				f(base + uint16(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
}

// contains reports whether the container holds v.
func (c *container) contains(v uint16) bool {
	switch c.typ {
	case typeArray:
		lo, hi := 0, len(c.arr)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.arr[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(c.arr) && c.arr[lo] == v
	case typeRun:
		for i := 0; i < len(c.arr); i += 2 {
			if v < c.arr[i] {
				return false
			}
			if v <= c.arr[i+1] {
				return true
			}
		}
		return false
	case typeBitset:
		return c.bits[v>>6]&(1<<(v&63)) != 0
	}
	return false
}

// rank counts the container values <= v.
func (c *container) rank(v uint16) int64 {
	switch c.typ {
	case typeArray:
		lo, hi := 0, len(c.arr)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.arr[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	case typeRun:
		var n int64
		for i := 0; i < len(c.arr); i += 2 {
			start, last := c.arr[i], c.arr[i+1]
			if v < start {
				break
			}
			if v < last {
				n += int64(v-start) + 1
				break
			}
			n += int64(last-start) + 1
		}
		return n
	case typeBitset:
		word := int(v >> 6)
		var n int64
		for wi := 0; wi < word; wi++ {
			n += int64(bits.OnesCount64(c.bits[wi]))
		}
		mask := uint64(2)<<(v&63) - 1
		return n + int64(bits.OnesCount64(c.bits[word]&mask))
	}
	return 0
}

// selectN returns the i-th smallest value (0-based, i < card).
func (c *container) selectN(i int32) uint16 {
	switch c.typ {
	case typeArray:
		return c.arr[i]
	case typeRun:
		for r := 0; r < len(c.arr); r += 2 {
			n := int32(c.arr[r+1]-c.arr[r]) + 1
			if i < n {
				return c.arr[r] + uint16(i)
			}
			i -= n
		}
	case typeBitset:
		for wi, w := range c.bits {
			n := int32(bits.OnesCount64(w))
			if i < n {
				for ; i > 0; i-- {
					w &= w - 1
				}
				return uint16(wi<<6) + uint16(bits.TrailingZeros64(w))
			}
			i -= n
		}
	}
	return 0
}

// toBits expands the container into dst (a bitsetWords-long scratch slice,
// zeroed by the caller).
func (c *container) toBits(dst []uint64) {
	switch c.typ {
	case typeArray:
		for _, v := range c.arr {
			dst[v>>6] |= 1 << (v & 63)
		}
	case typeRun:
		for i := 0; i < len(c.arr); i += 2 {
			for v := int(c.arr[i]); v <= int(c.arr[i+1]); v++ {
				dst[v>>6] |= 1 << (v & 63)
			}
		}
	case typeBitset:
		copy(dst, c.bits)
	}
}

// orInto ORs the container into dst (a bitsetWords-long accumulator that
// may already hold bits — unlike toBits, whose bitset case overwrites).
func (c *container) orInto(dst []uint64) {
	if c.typ == typeBitset {
		for w, v := range c.bits {
			dst[w] |= v
		}
		return
	}
	c.toBits(dst)
}

// appendRows appends the container's rows (offset by base) to dst with
// direct per-representation loops — the extraction inner loop of the
// planner's row and candidate-event plans, kept free of per-value closure
// calls.
func (c *container) appendRows(base int32, dst []int32) []int32 {
	switch c.typ {
	case typeArray:
		for _, v := range c.arr {
			dst = append(dst, base|int32(v))
		}
	case typeRun:
		for i := 0; i < len(c.arr); i += 2 {
			for v := int32(c.arr[i]); v <= int32(c.arr[i+1]); v++ {
				dst = append(dst, base|v)
			}
		}
	case typeBitset:
		for wi, w := range c.bits {
			wordBase := base | int32(wi<<6)
			for w != 0 {
				dst = append(dst, wordBase|int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	return dst
}

// FromSorted builds a bitmap from an ascending row list (duplicates
// collapse). Postings lists are already ascending, so this is the store's
// O(n) construction path. Rows must be non-negative.
func FromSorted(rows []int32) *Bitmap {
	b := &Bitmap{}
	vals := make([]uint16, 0, chunkSize/8)
	var key uint16
	flush := func() {
		if len(vals) > 0 {
			b.keys = append(b.keys, key)
			b.cs = append(b.cs, fromValues(vals))
			vals = vals[:0]
		}
	}
	prev := int32(-1)
	for _, r := range rows {
		if r < prev {
			panic(fmt.Sprintf("bitmap: FromSorted input not ascending (%d after %d)", r, prev))
		}
		if r == prev {
			continue
		}
		prev = r
		k := uint16(r >> chunkBits)
		if len(vals) > 0 && k != key {
			flush()
		}
		key = k
		vals = append(vals, uint16(r&(chunkSize-1)))
	}
	flush()
	return b
}

// findKey returns the index of key k in b.keys, or the insertion point with
// found=false.
func (b *Bitmap) findKey(k uint16) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == k
}

// Add inserts one row. It is the incremental-construction path (tail
// appends, tests); it keeps containers canonical for array/bitset shapes
// but does not re-detect runs — rebuild with FromSorted where canonical
// encoding matters.
func (b *Bitmap) Add(row int32) {
	if row < 0 {
		panic("bitmap: negative row")
	}
	k := uint16(row >> chunkBits)
	v := uint16(row & (chunkSize - 1))
	i, ok := b.findKey(k)
	if !ok {
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = k
		b.cs = append(b.cs, container{})
		copy(b.cs[i+1:], b.cs[i:])
		b.cs[i] = container{typ: typeArray, card: 1, arr: []uint16{v}}
		return
	}
	c := &b.cs[i]
	if c.contains(v) {
		return
	}
	if c.typ == typeRun {
		// Denormalize: expand the runs so the insert is a plain array or
		// bitset update.
		words := make([]uint64, bitsetWords)
		c.toBits(words)
		nc, _ := fromBits(words)
		if nc.typ == typeRun { // force a mutable shape
			vals := make([]uint16, 0, nc.card)
			nc.forEach(func(u uint16) { vals = append(vals, u) })
			if len(vals) <= arrayMax {
				nc = container{typ: typeArray, card: int32(len(vals)), arr: vals}
			}
		}
		*c = nc
	}
	switch c.typ {
	case typeArray:
		if int(c.card) >= arrayMax {
			words := make([]uint64, bitsetWords)
			c.toBits(words)
			words[v>>6] |= 1 << (v & 63)
			*c = container{typ: typeBitset, card: c.card + 1, bits: words}
			return
		}
		lo, hi := 0, len(c.arr)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.arr[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[lo+1:], c.arr[lo:])
		c.arr[lo] = v
		c.card++
	case typeBitset:
		c.bits[v>>6] |= 1 << (v & 63)
		c.card++
	}
}

// Contains reports whether row is set.
func (b *Bitmap) Contains(row int32) bool {
	if row < 0 {
		return false
	}
	if i, ok := b.findKey(uint16(row >> chunkBits)); ok {
		return b.cs[i].contains(uint16(row & (chunkSize - 1)))
	}
	return false
}

// Cardinality returns the number of set rows in O(containers).
func (b *Bitmap) Cardinality() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for i := range b.cs {
		n += int64(b.cs[i].card)
	}
	return n
}

// Rank counts the set rows <= row.
func (b *Bitmap) Rank(row int32) int64 {
	if b == nil || row < 0 {
		return 0
	}
	k := uint16(row >> chunkBits)
	var n int64
	for i := range b.keys {
		if b.keys[i] < k {
			n += int64(b.cs[i].card)
			continue
		}
		if b.keys[i] == k {
			n += b.cs[i].rank(uint16(row & (chunkSize - 1)))
		}
		break
	}
	return n
}

// Select returns the i-th smallest set row (0-based), or false when i is
// out of range.
func (b *Bitmap) Select(i int64) (int32, bool) {
	if b == nil || i < 0 {
		return 0, false
	}
	for ci := range b.cs {
		card := int64(b.cs[ci].card)
		if i < card {
			return int32(b.keys[ci])<<chunkBits | int32(b.cs[ci].selectN(int32(i))), true
		}
		i -= card
	}
	return 0, false
}

// AppendRows appends every set row to dst in ascending order and returns
// the extended slice — the bitmap-pruned row extraction of the planner's
// rows path.
func (b *Bitmap) AppendRows(dst []int32) []int32 {
	if b == nil {
		return dst
	}
	for ci := range b.cs {
		dst = b.cs[ci].appendRows(int32(b.keys[ci])<<chunkBits, dst)
	}
	return dst
}

// ForEach calls f with every set row in ascending order.
func (b *Bitmap) ForEach(f func(row int32)) {
	if b == nil {
		return
	}
	for ci := range b.cs {
		base := int32(b.keys[ci]) << chunkBits
		b.cs[ci].forEach(func(v uint16) { f(base | int32(v)) })
	}
}

// Union returns a ∪ b. Inputs are never modified; the result may share
// container memory with them.
func Union(a, b *Bitmap) *Bitmap {
	if a == nil || len(a.cs) == 0 {
		if b == nil {
			return New()
		}
		return b
	}
	if b == nil || len(b.cs) == 0 {
		return a
	}
	out := &Bitmap{keys: make([]uint16, 0, len(a.keys)+len(b.keys))}
	out.cs = make([]container, 0, cap(out.keys))
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			out.keys = append(out.keys, a.keys[i])
			out.cs = append(out.cs, a.cs[i])
			i++
		case a.keys[i] > b.keys[j]:
			out.keys = append(out.keys, b.keys[j])
			out.cs = append(out.cs, b.cs[j])
			j++
		default:
			out.keys = append(out.keys, a.keys[i])
			out.cs = append(out.cs, unionContainers(&a.cs[i], &b.cs[j]))
			i++
			j++
		}
	}
	out.keys = append(out.keys, a.keys[i:]...)
	out.cs = append(out.cs, a.cs[i:]...)
	out.keys = append(out.keys, b.keys[j:]...)
	out.cs = append(out.cs, b.cs[j:]...)
	return out
}

func unionContainers(x, y *container) container {
	if x.typ == typeArray && y.typ == typeArray && int(x.card)+int(y.card) <= arrayMax {
		merged := make([]uint16, 0, x.card+y.card)
		i, j := 0, 0
		for i < len(x.arr) && j < len(y.arr) {
			switch {
			case x.arr[i] < y.arr[j]:
				merged = append(merged, x.arr[i])
				i++
			case x.arr[i] > y.arr[j]:
				merged = append(merged, y.arr[j])
				j++
			default:
				merged = append(merged, x.arr[i])
				i++
				j++
			}
		}
		merged = append(merged, x.arr[i:]...)
		merged = append(merged, y.arr[j:]...)
		return fromValues(merged)
	}
	words := make([]uint64, bitsetWords)
	x.toBits(words)
	scratch := make([]uint64, bitsetWords)
	y.toBits(scratch)
	for w := range words {
		words[w] |= scratch[w]
	}
	c, _ := fromBits(words)
	return c
}

// UnionAll returns the union of every bitmap in bs. Unlike a fold of
// pairwise Union calls — which rebuilds the ever-denser accumulator once
// per input — each chunk is accumulated once in a word-parallel bitset
// scratch and canonicalized once, so the cost is O(inputs × words) machine
// words regardless of how dense the accumulator gets. This is the
// selection-union primitive of the query planner, where the inputs are the
// per-source postings bitmaps of a panel.
func UnionAll(bs []*Bitmap) *Bitmap {
	live := make([]*Bitmap, 0, len(bs))
	for _, b := range bs {
		if b != nil && len(b.cs) > 0 {
			live = append(live, b)
		}
	}
	switch len(live) {
	case 0:
		return New()
	case 1:
		return live[0]
	case 2:
		return Union(live[0], live[1])
	}
	out := &Bitmap{}
	pos := make([]int, len(live))
	for {
		key, n := -1, 0
		for i, b := range live {
			if pos[i] == len(b.keys) {
				continue
			}
			switch k := int(b.keys[pos[i]]); {
			case key < 0 || k < key:
				key, n = k, 1
			case k == key:
				n++
			}
		}
		if key < 0 {
			return out
		}
		var c container
		if n == 1 {
			for i, b := range live {
				if pos[i] < len(b.keys) && int(b.keys[pos[i]]) == key {
					c = b.cs[pos[i]] // sole owner: share the container
					pos[i]++
				}
			}
		} else {
			words := make([]uint64, bitsetWords)
			for i, b := range live {
				if pos[i] < len(b.keys) && int(b.keys[pos[i]]) == key {
					b.cs[pos[i]].orInto(words)
					pos[i]++
				}
			}
			c, _ = fromBits(words)
		}
		out.keys = append(out.keys, uint16(key))
		out.cs = append(out.cs, c)
	}
}

// AtLeastTwo returns the set of rows present in two or more of the input
// bitmaps — equivalently the union of all pairwise intersections, computed
// in one O(inputs × words) pass with a seen/duplicate word pair instead of
// O(inputs²) intersections. The planner uses it to find events where two
// distinct selected sources co-occur.
func AtLeastTwo(bs []*Bitmap) *Bitmap {
	live := make([]*Bitmap, 0, len(bs))
	for _, b := range bs {
		if b != nil && len(b.cs) > 0 {
			live = append(live, b)
		}
	}
	out := &Bitmap{}
	if len(live) < 2 {
		return out
	}
	pos := make([]int, len(live))
	seen := make([]uint64, bitsetWords)
	scratch := make([]uint64, bitsetWords)
	for {
		key, n := -1, 0
		for i, b := range live {
			if pos[i] == len(b.keys) {
				continue
			}
			switch k := int(b.keys[pos[i]]); {
			case key < 0 || k < key:
				key, n = k, 1
			case k == key:
				n++
			}
		}
		if key < 0 {
			return out
		}
		if n == 1 {
			for i, b := range live {
				if pos[i] < len(b.keys) && int(b.keys[pos[i]]) == key {
					pos[i]++ // a chunk no other input shares has no duplicates
				}
			}
			continue
		}
		for w := range seen {
			seen[w] = 0
		}
		dup := make([]uint64, bitsetWords)
		for i, b := range live {
			if pos[i] < len(b.keys) && int(b.keys[pos[i]]) == key {
				for w := range scratch {
					scratch[w] = 0
				}
				b.cs[pos[i]].orInto(scratch)
				for w, v := range scratch {
					dup[w] |= seen[w] & v
					seen[w] |= v
				}
				pos[i]++
			}
		}
		if c, ok := fromBits(dup); ok {
			out.keys = append(out.keys, uint16(key))
			out.cs = append(out.cs, c)
		}
	}
}

// PairwiseIntersectCards returns the symmetric matrix m[i][j] = |bs[i] ∩
// bs[j]| (diagonal zero). Rather than k² pairwise merges — quadratic in
// container cardinalities when the inputs are arrays — each input's chunk
// is expanded once into a bitset scratch and every pair is then a
// word-AND-popcount pass, so the cost is O(k·words + k²·words) machine
// words per shared chunk. This is the whole co-reporting pair matrix when
// the inputs are the selection's event bitmaps.
func PairwiseIntersectCards(bs []*Bitmap) [][]int64 {
	k := len(bs)
	m := make([][]int64, k)
	for i := range m {
		m[i] = make([]int64, k)
	}
	pos := make([]int, k)
	words := make([][]uint64, k)
	present := make([]int, 0, k)
	for {
		key, n := -1, 0
		for i, b := range bs {
			if b == nil || pos[i] == len(b.keys) {
				continue
			}
			switch ck := int(b.keys[pos[i]]); {
			case key < 0 || ck < key:
				key, n = ck, 1
			case ck == key:
				n++
			}
		}
		if key < 0 {
			return m
		}
		present = present[:0]
		for i, b := range bs {
			if b == nil || pos[i] == len(b.keys) || int(b.keys[pos[i]]) != key {
				continue
			}
			if n >= 2 {
				if words[i] == nil {
					words[i] = make([]uint64, bitsetWords)
				} else {
					for w := range words[i] {
						words[i][w] = 0
					}
				}
				b.cs[pos[i]].orInto(words[i])
				present = append(present, i)
			}
			pos[i]++
		}
		for a := 0; a < len(present); a++ {
			for b := a + 1; b < len(present); b++ {
				i, j := present[a], present[b]
				var c int64
				wi, wj := words[i], words[j]
				for w, v := range wi {
					c += int64(bits.OnesCount64(v & wj[w]))
				}
				m[i][j] += c
				m[j][i] += c
			}
		}
	}
}

// IntersectCard returns |a ∩ b| without materializing the intersection.
func IntersectCard(a, b *Bitmap) int64 {
	if a == nil || b == nil {
		return 0
	}
	var n int64
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n += intersectCard(&a.cs[i], &b.cs[j])
			i++
			j++
		}
	}
	return n
}

func intersectCard(x, y *container) int64 {
	if y.typ == typeArray && x.typ != typeArray {
		x, y = y, x
	}
	if x.typ == typeArray {
		var n int64
		if y.typ == typeArray {
			i, j := 0, 0
			for i < len(x.arr) && j < len(y.arr) {
				switch {
				case x.arr[i] < y.arr[j]:
					i++
				case x.arr[i] > y.arr[j]:
					j++
				default:
					n++
					i++
					j++
				}
			}
			return n
		}
		for _, v := range x.arr {
			if y.contains(v) {
				n++
			}
		}
		return n
	}
	if x.typ == typeBitset && y.typ == typeBitset {
		var n int64
		for w, v := range x.bits {
			n += int64(bits.OnesCount64(v & y.bits[w]))
		}
		return n
	}
	words := make([]uint64, bitsetWords)
	x.toBits(words)
	scratch := make([]uint64, bitsetWords)
	y.toBits(scratch)
	var n int64
	for w, v := range words {
		n += int64(bits.OnesCount64(v & scratch[w]))
	}
	return n
}

// Intersect returns a ∩ b.
func Intersect(a, b *Bitmap) *Bitmap {
	out := New()
	if a == nil || b == nil {
		return out
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if c, ok := intersectContainers(&a.cs[i], &b.cs[j]); ok {
				out.keys = append(out.keys, a.keys[i])
				out.cs = append(out.cs, c)
			}
			i++
			j++
		}
	}
	return out
}

func intersectContainers(x, y *container) (container, bool) {
	if y.typ == typeArray && x.typ != typeArray {
		x, y = y, x
	}
	if x.typ == typeArray {
		vals := make([]uint16, 0, x.card)
		if y.typ == typeArray {
			i, j := 0, 0
			for i < len(x.arr) && j < len(y.arr) {
				switch {
				case x.arr[i] < y.arr[j]:
					i++
				case x.arr[i] > y.arr[j]:
					j++
				default:
					vals = append(vals, x.arr[i])
					i++
					j++
				}
			}
		} else {
			for _, v := range x.arr {
				if y.contains(v) {
					vals = append(vals, v)
				}
			}
		}
		if len(vals) == 0 {
			return container{}, false
		}
		return fromValues(vals), true
	}
	words := make([]uint64, bitsetWords)
	x.toBits(words)
	scratch := make([]uint64, bitsetWords)
	y.toBits(scratch)
	for w := range words {
		words[w] &= scratch[w]
	}
	return fromBits(words)
}

// Difference returns a \ b.
func Difference(a, b *Bitmap) *Bitmap {
	out := New()
	if a == nil {
		return out
	}
	if b == nil {
		b = out
	}
	j := 0
	for i := range a.keys {
		for j < len(b.keys) && b.keys[j] < a.keys[i] {
			j++
		}
		if j >= len(b.keys) || b.keys[j] != a.keys[i] {
			out.keys = append(out.keys, a.keys[i])
			out.cs = append(out.cs, a.cs[i])
			continue
		}
		if c, ok := differenceContainers(&a.cs[i], &b.cs[j]); ok {
			out.keys = append(out.keys, a.keys[i])
			out.cs = append(out.cs, c)
		}
	}
	return out
}

func differenceContainers(x, y *container) (container, bool) {
	if x.typ == typeArray {
		vals := make([]uint16, 0, x.card)
		for _, v := range x.arr {
			if !y.contains(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return container{}, false
		}
		return fromValues(vals), true
	}
	words := make([]uint64, bitsetWords)
	x.toBits(words)
	scratch := make([]uint64, bitsetWords)
	y.toBits(scratch)
	for w := range words {
		words[w] &^= scratch[w]
	}
	return fromBits(words)
}

// Equal reports whether a and b hold the same row set. Canonical
// representations make this a structural comparison.
func Equal(a, b *Bitmap) bool {
	if a == nil {
		a = New()
	}
	if b == nil {
		b = New()
	}
	if len(a.cs) != len(b.cs) {
		return false
	}
	for i := range a.cs {
		if a.keys[i] != b.keys[i] || a.cs[i].card != b.cs[i].card {
			return false
		}
		eq := true
		x, y := &a.cs[i], &b.cs[i]
		if x.typ == y.typ {
			switch x.typ {
			case typeBitset:
				for w := range x.bits {
					if x.bits[w] != y.bits[w] {
						eq = false
						break
					}
				}
			default:
				for v := range x.arr {
					if x.arr[v] != y.arr[v] {
						eq = false
						break
					}
				}
			}
		} else {
			// Add can leave a non-canonical shape; fall back to a value walk.
			vals := make([]uint16, 0, x.card)
			x.forEach(func(v uint16) { vals = append(vals, v) })
			k := 0
			y.forEach(func(v uint16) {
				if k >= len(vals) || vals[k] != v {
					eq = false
				}
				k++
			})
			eq = eq && k == len(vals)
		}
		if !eq {
			return false
		}
	}
	return true
}
