// Package obs is the observability layer of the system: lock-free
// counters, gauges and fixed-bucket latency histograms behind a named
// registry, with snapshot semantics for readers. It is the measurement
// substrate the paper's evaluation implies — Figure 12's strong-scaling
// claim and the "one TB for a simple test query" argument are quantitative,
// so the engine, the parallel runtime, the HTTP server and the stream
// monitor all record into this package, and /metrics (Prometheus text) or
// the -stats flag (JSON) read it back out.
//
// Concurrency model: metric hot paths (Counter.Add, Gauge.Set,
// Histogram.Observe) are single atomic operations with no locks, safe for
// any number of concurrent writers. Registration takes a registry mutex but
// is expected at init or first use; lookups after that hit a read lock
// only. Snapshots read each value atomically — a snapshot taken while
// writers run is weakly consistent (values may be from slightly different
// instants) but every individual value is torn-free, and a histogram's
// bucket counts never exceed its total count by more than the writes in
// flight at the instant of the read.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types in snapshots.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// desc is the immutable identity of one registered metric.
type desc struct {
	name   string
	help   string
	kind   Kind
	labels []Label
}

// id returns the registry key: name plus sorted labels.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	d desc
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	d    desc
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package Default.
type Registry struct {
	mu      sync.RWMutex
	ordered []any // *Counter | *Gauge | *Histogram, registration order
	index   map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]any)}
}

// Default is the process-wide registry every subsystem records into.
var Default = NewRegistry()

// lookup returns the metric under id, or registers the one built by mk.
// It panics when the existing metric under id has a different kind —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(id string, kind Kind, mk func() any) any {
	r.mu.RLock()
	m, ok := r.index[id]
	r.mu.RUnlock()
	if ok {
		checkKind(id, kind, m)
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[id]; ok {
		checkKind(id, kind, m)
		return m
	}
	m = mk()
	r.index[id] = m
	r.ordered = append(r.ordered, m)
	return m
}

func checkKind(id string, want Kind, m any) {
	var got Kind
	switch m.(type) {
	case *Counter:
		got = KindCounter
	case *Gauge:
		got = KindGauge
	case *Histogram:
		got = KindHistogram
	}
	if got != want {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", id, got, want))
	}
}

// Counter returns the counter with the given name and labels, registering
// it on first use. Repeated calls with the same identity return the same
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	id := metricID(name, labels)
	return r.lookup(id, KindCounter, func() any {
		return &Counter{d: desc{name: name, help: help, kind: KindCounter, labels: labels}}
	}).(*Counter)
}

// Gauge returns the gauge with the given name and labels, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	id := metricID(name, labels)
	return r.lookup(id, KindGauge, func() any {
		return &Gauge{d: desc{name: name, help: help, kind: KindGauge, labels: labels}}
	}).(*Gauge)
}

// Histogram returns the histogram with the given name, bucket upper bounds
// and labels, registering it on first use. An existing histogram keeps its
// original buckets; bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	id := metricID(name, labels)
	return r.lookup(id, KindHistogram, func() any {
		return newHistogram(desc{name: name, help: help, kind: KindHistogram, labels: labels}, bounds)
	}).(*Histogram)
}

// each walks the registered metrics in a stable order: registration order
// grouped by name so Prometheus families render contiguously.
func (r *Registry) each(fn func(m any)) {
	r.mu.RLock()
	ms := make([]any, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.RUnlock()
	// Stable-sort by name, preserving registration order within a name, so
	// one metric family is always contiguous regardless of interleaved
	// registration.
	sort.SliceStable(ms, func(a, b int) bool { return descOf(ms[a]).name < descOf(ms[b]).name })
	for _, m := range ms {
		fn(m)
	}
}

func descOf(m any) desc {
	switch v := m.(type) {
	case *Counter:
		return v.d
	case *Gauge:
		return v.d
	case *Histogram:
		return v.d
	}
	return desc{}
}
