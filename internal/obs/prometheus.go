package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// family, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	lastFamily := ""
	r.each(func(m any) {
		if err != nil {
			return
		}
		d := descOf(m)
		if d.name != lastFamily {
			lastFamily = d.name
			if d.help != "" {
				if _, err = fmt.Fprintf(w, "# HELP %s %s\n", d.name, d.help); err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "# TYPE %s %s\n", d.name, d.kind); err != nil {
				return
			}
		}
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", d.name, promLabels(d.labels, "", ""), v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", d.name, promLabels(d.labels, "", ""), formatFloat(v.Value()))
		case *Histogram:
			counts := v.BucketCounts()
			var cum int64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(v.bounds) {
					le = formatFloat(v.bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", d.name, promLabels(d.labels, "le", le), cum); err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", d.name, promLabels(d.labels, "", ""), formatFloat(v.Sum())); err != nil {
				return
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", d.name, promLabels(d.labels, "", ""), v.Count())
		}
	})
	return err
}

// promLabels renders a label set, optionally with one extra label appended
// (the histogram "le" bound).
func promLabels(ls []Label, extraKey, extraVal string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
