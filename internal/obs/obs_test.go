package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "requests served"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestLabeledMetricsAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("queries_total", "", L("kind", "country"))
	b := r.Counter("queries_total", "", L("kind", "stats"))
	if a == b {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(3)
	b.Inc()
	snap := r.Snapshot()
	if m := snap.Find("queries_total", L("kind", "country")); m == nil || m.Value != 3 {
		t.Fatalf("country counter snapshot = %+v", m)
	}
	if m := snap.Find("queries_total", L("kind", "stats")); m == nil || m.Value != 1 {
		t.Fatalf("stats counter snapshot = %+v", m)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lag", "")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// per-bucket (non-cumulative): <=0.1 gets 0.05 and 0.1; (0.1,1] gets
	// 0.5; (1,10] gets 2; +Inf gets 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("scans_total", "scans run", L("kind", "country")).Add(7)
	r.Gauge("inflight", "").Set(3)
	h := r.Histogram("scan_seconds", "scan latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE scans_total counter",
		`scans_total{kind="country"} 7`,
		"inflight 3",
		`scan_seconds_bucket{le="0.5"} 1`,
		`scan_seconds_bucket{le="1"} 1`,
		`scan_seconds_bucket{le="+Inf"} 2`,
		"scan_seconds_sum 2.25",
		"scan_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("b_seconds", "", []float64{1}).Observe(0.5)
	data, err := r.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 2 {
		t.Fatalf("round-tripped %d metrics, want 2", len(back.Metrics))
	}
	if m := back.Find("b_seconds"); m == nil || m.Count != 1 || len(m.Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", m)
	}
}

func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits_total", "")
			h := r.Histogram("lat", "", LatencyBuckets)
			g := r.Gauge("g", "")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%10) / 1000)
				g.Add(1)
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", "", LatencyBuckets).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
}
