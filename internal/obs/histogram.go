package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution: bounds[i] is the inclusive
// upper bound of bucket i, with an implicit +Inf overflow bucket. All
// operations are lock-free; Observe is one atomic add on the bucket plus
// one on the count and a CAS on the running sum.
type Histogram struct {
	d      desc
	bounds []float64
	// buckets has len(bounds)+1 entries; the last is the +Inf bucket.
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(d desc, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{d: d, bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; beyond all bounds lands in
	// the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds — the
// idiom for timing a scan or a request.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket sample counts, the last entry being
// the +Inf overflow bucket. The counts are read atomically one by one.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// LatencyBuckets is the default bucket layout for operation latencies in
// seconds: 100µs to ~100s in roughly 3× steps, covering everything from a
// sub-millisecond windowed count to the paper's 344-second single-core
// aggregated query.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// RatioBuckets is the default bucket layout for dimensionless ratios near
// one, e.g. the scan imbalance factor (max worker share / ideal share).
var RatioBuckets = []float64{1, 1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}
