package obs

import "encoding/json"

// MetricSnapshot is the point-in-time value of one metric.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Count, Sum and Buckets carry histogram readings; Buckets[i] is the
	// cumulative count of samples <= Bounds[i], the last entry being +Inf.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot is a weakly consistent reading of a whole registry: each value
// is read atomically, in name order.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.each(func(m any) {
		switch v := m.(type) {
		case *Counter:
			s.Metrics = append(s.Metrics, MetricSnapshot{
				Name: v.d.name, Kind: KindCounter, Help: v.d.help,
				Labels: labelMap(v.d.labels), Value: float64(v.Value()),
			})
		case *Gauge:
			s.Metrics = append(s.Metrics, MetricSnapshot{
				Name: v.d.name, Kind: KindGauge, Help: v.d.help,
				Labels: labelMap(v.d.labels), Value: v.Value(),
			})
		case *Histogram:
			counts := v.BucketCounts()
			cum := make([]int64, len(counts))
			var running int64
			for i, c := range counts {
				running += c
				cum[i] = running
			}
			s.Metrics = append(s.Metrics, MetricSnapshot{
				Name: v.d.name, Kind: KindHistogram, Help: v.d.help,
				Labels: labelMap(v.d.labels),
				Count:  v.Count(), Sum: v.Sum(),
				Bounds: v.Bounds(), Buckets: cum,
			})
		}
	})
	return s
}

// MarshalJSONIndent renders the snapshot as indented JSON, the format the
// CLI -stats flags print.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Find returns the first metric with the given name whose labels all match,
// or nil. Intended for tests and the bench gate, not hot paths.
func (s Snapshot) Find(name string, labels ...Label) *MetricSnapshot {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return m
		}
	}
	return nil
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	out := make(map[string]string, len(ls))
	for _, l := range ls {
		out[l.Key] = l.Value
	}
	return out
}
