package report

import (
	"fmt"
	"strings"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/queries"
)

// publisherLetters labels the top publishers A..Z as the paper's Tables IV
// and VIII do.
func publisherLetters(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

// TableI renders the general dataset statistics.
func TableI(ds queries.DatasetStats) string {
	rows := [][]string{
		{"Sources", Int(int64(ds.Sources))},
		{"Events", Int(ds.Events)},
		{"Capture intervals", Int(ds.CaptureIntervals)},
		{"Articles", Int(ds.Articles)},
		{"Minimum number of articles per event", Int(ds.MinArticles)},
		{"Maximum number of articles per event", Int(ds.MaxArticles)},
		{"Articles per event (weighted average)", F(ds.WeightedAvg, 2)},
	}
	if ds.ZeroMentionEvents > 0 {
		rows = append(rows, []string{"Events with no surviving articles", Int(ds.ZeroMentionEvents)})
	}
	return Table("Table I: General dataset statistics", []string{"Number of", "Value"}, rows)
}

// TableII renders the defect report.
func TableII(r *gdelt.ValidationReport) string {
	var rows [][]string
	for c := gdelt.DefectClass(0); ; c++ {
		label := c.String()
		if strings.HasPrefix(label, "DefectClass(") {
			break
		}
		rows = append(rows, []string{label, Int(r.Counts[c])})
	}
	return Table("Table II: Problems found during the dataset analysis", []string{"Number of", "Value"}, rows)
}

// TableIII renders the most reported events.
func TableIII(top []queries.TopEvent) string {
	rows := make([][]string, len(top))
	for i, ev := range top {
		url := ev.SourceURL
		if url == "" {
			url = fmt.Sprintf("(event %d, source URL missing)", ev.EventID)
		}
		rows[i] = []string{Int(ev.Mentions), url}
	}
	return Table("Table III: The ten most reported events", []string{"Mentions", "Event source URL"}, rows)
}

// TableIV renders the follow-reporting matrix of the top publishers with
// the column-sum footer row.
func TableIV(fr *queries.FollowReporting) string {
	n := len(fr.Sources)
	letters := publisherLetters(n)
	headers := append([]string{"First Publisher"}, letters...)
	rows := make([][]string, 0, n+1)
	for i := 0; i < n; i++ {
		row := make([]string, n+1)
		row[0] = letters[i]
		for j := 0; j < n; j++ {
			row[j+1] = F(fr.F.At(i, j), 3)
		}
		rows = append(rows, row)
	}
	sumRow := make([]string, n+1)
	sumRow[0] = "Sum"
	for j := 0; j < n; j++ {
		sumRow[j+1] = F(fr.ColSums[j], 3)
	}
	rows = append(rows, sumRow)
	legend := make([]string, n)
	for i, name := range fr.Names {
		legend[i] = fmt.Sprintf("%s=%s", letters[i], name)
	}
	return Table("Table IV: The follow-reporting matrix for the most productive news websites (f_ij)",
		headers, rows) + "Publishers: " + strings.Join(legend, ", ") + "\n"
}

// countryNames maps country indexes to display names.
func countryNames(idx []int) []string {
	out := make([]string, len(idx))
	for i, c := range idx {
		out[i] = gdelt.Countries[c].Name
	}
	return out
}

// TableV renders co-reporting between the top-k publishing countries.
func TableV(cr *queries.CountryReport, k int) string {
	top := cr.TopPublishing
	if len(top) > k {
		top = top[:k]
	}
	names := countryNames(top)
	return Matrix("Table V: Common Reporting between World Regions (Jaccard)", names, names,
		func(i, j int) string {
			if i == j {
				return ""
			}
			return F(cr.CoReporting.At(top[i], top[j]), 3)
		})
}

// TableVI renders the country-cross-reporting article counts for the top-k
// reported (rows) and publishing (columns) countries.
func TableVI(cr *queries.CountryReport, k int) string {
	rows := cr.TopReported
	cols := cr.TopPublishing
	if len(rows) > k {
		rows = rows[:k]
	}
	if len(cols) > k {
		cols = cols[:k]
	}
	return Matrix("Table VI: The country-cross-reporting matrix (articles)",
		countryNames(rows), countryNames(cols),
		func(i, j int) string { return Int(cr.Cross.At(rows[i], cols[j])) })
}

// TableVII renders the cross-reporting percentages.
func TableVII(cr *queries.CountryReport, k int) string {
	rows := cr.TopReported
	cols := cr.TopPublishing
	if len(rows) > k {
		rows = rows[:k]
	}
	if len(cols) > k {
		cols = cols[:k]
	}
	return Matrix("Table VII: The fractional country-cross-reporting matrix (percent)",
		countryNames(rows), countryNames(cols),
		func(i, j int) string { return F(cr.Fractions.At(rows[i], cols[j]), 2) })
}

// TableVIII renders the per-publisher delay statistics.
func TableVIII(rows []queries.SourceDelayStats) string {
	letters := publisherLetters(len(rows))
	out := make([][]string, len(rows))
	legend := make([]string, len(rows))
	for i, st := range rows {
		out[i] = []string{letters[i], Int(st.Min), Int(st.Max), F(st.Average, 0), Int(st.Median)}
		legend[i] = fmt.Sprintf("%s=%s", letters[i], st.Name)
	}
	return Table("Table VIII: The publication delay statistic for the most productive news websites (15-minute intervals)",
		[]string{"Publisher", "Min", "Max", "Average", "Median"}, out) +
		"Publishers: " + strings.Join(legend, ", ") + "\n"
}

// FigureSeries renders a quarterly integer series as a figure CSV.
func FigureSeries(title string, s queries.QuarterlySeries) string {
	vals := make([]float64, len(s.Values))
	for i, v := range s.Values {
		vals[i] = float64(v)
	}
	return Series(title, s.Labels, map[string][]float64{"value": vals}, []string{"value"})
}

// Figure2 renders the event-size distribution with its power-law fit.
func Figure2(d queries.EventSizeDistribution) string {
	var labels []string
	var vals []float64
	for x := 1; x < len(d.Counts); x++ {
		if d.Counts[x] > 0 {
			labels = append(labels, fmt.Sprintf("%d", x))
			vals = append(vals, float64(d.Counts[x]))
		}
	}
	head := fmt.Sprintf("Figure 2: events per article count (power-law fit: alpha=%.2f R2=%.3f over %d points)",
		d.Fit.Alpha, d.Fit.R2, d.Fit.N)
	if d.FitErr != nil {
		head = fmt.Sprintf("Figure 2: events per article count (fit failed: %v)", d.FitErr)
	}
	return Series(head, labels, map[string][]float64{"events": vals}, []string{"events"})
}

// Figure6 renders the per-quarter article series of the top publishers.
func Figure6(ps queries.PublisherSeries) string {
	cols := map[string][]float64{}
	var order []string
	for p, name := range ps.Names {
		key := fmt.Sprintf("%s(%s)", name, Int(ps.Totals[p]))
		order = append(order, key)
		vals := make([]float64, len(ps.Values[p]))
		for q, v := range ps.Values[p] {
			vals[q] = float64(v)
		}
		cols[key] = vals
	}
	return Series("Figure 6: articles per quarter for the top publishers", ps.Labels, cols, order)
}

// Figure7 renders the follow-reporting matrix of the top-50 publishers
// (rows and columns in the same productivity order, as in the paper).
func Figure7(fr *queries.FollowReporting) string {
	n := len(fr.Sources)
	cols := make([]string, n)
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		cols[i] = fmt.Sprintf("%d", i+1)
		rows[i] = fmt.Sprintf("%2d %s", i+1, fr.Names[i])
	}
	return Matrix("Figure 7: follow-reporting matrix for the most productive news websites (f_ij)",
		rows, cols, func(i, j int) string { return F(fr.F.At(i, j), 3) })
}

// Figure8 renders the countries-cross-reporting matrix for the top-k
// reported and publishing countries (article counts; the paper plots them
// on a log scale).
func Figure8(cr *queries.CountryReport, k int) string {
	rows := cr.TopReported
	cols := cr.TopPublishing
	if len(rows) > k {
		rows = rows[:k]
	}
	if len(cols) > k {
		cols = cols[:k]
	}
	rl := make([]string, len(rows))
	cl := make([]string, len(cols))
	for i, c := range rows {
		rl[i] = gdelt.Countries[c].FIPS
	}
	for j, c := range cols {
		cl[j] = gdelt.Countries[c].FIPS
	}
	return Matrix(fmt.Sprintf("Figure 8: countries-cross-reporting matrix, top %d reported x top %d publishing (articles)", len(rows), len(cols)),
		rl, cl, func(i, j int) string { return Int(cr.Cross.At(rows[i], cols[j])) })
}

// Figure9 renders the four per-source delay histograms.
func Figure9(dd *queries.DelayDistribution) string {
	n := len(dd.Min.Counts)
	labels := make([]string, n)
	for b := 0; b < n; b++ {
		lo, _ := dd.Min.BucketBounds(b)
		labels[b] = fmt.Sprintf("%.0f", lo)
	}
	toF := func(cs []int64) []float64 {
		out := make([]float64, len(cs))
		for i, c := range cs {
			out[i] = float64(c)
		}
		return out
	}
	return Series("Figure 9: per-source delay distributions (log2 buckets of 15-minute intervals)",
		labels,
		map[string][]float64{
			"min":     toF(dd.Min.Counts),
			"average": toF(dd.Average.Counts),
			"median":  toF(dd.Median.Counts),
			"max":     toF(dd.Max.Counts),
		},
		[]string{"min", "average", "median", "max"})
}

// Figure10 renders the quarterly average and median delays.
func Figure10(qd queries.QuarterlyDelay) string {
	med := make([]float64, len(qd.Median))
	for i, v := range qd.Median {
		med[i] = float64(v)
	}
	return Series("Figure 10: aggregated quarterly publishing delay (15-minute intervals)",
		qd.Labels,
		map[string][]float64{"average": qd.Average, "median": med},
		[]string{"average", "median"})
}
