// Package report renders experiment results in the layout of the paper's
// tables and figures: fixed-width ASCII tables for Tables I-VIII and CSV
// series suitable for plotting for Figures 2-12.
package report

import (
	"fmt"
	"strings"
)

// Table renders a fixed-width text table. Column widths adapt to content;
// the first row of cells is treated as data (headers are passed
// separately).
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Matrix renders a labeled matrix with a cell formatter.
func Matrix(title string, rowLabels, colLabels []string, cell func(i, j int) string) string {
	headers := append([]string{""}, colLabels...)
	rows := make([][]string, len(rowLabels))
	for i, rl := range rowLabels {
		row := make([]string, len(colLabels)+1)
		row[0] = rl
		for j := range colLabels {
			row[j+1] = cell(i, j)
		}
		rows[i] = row
	}
	return Table(title, headers, rows)
}

// Series renders labeled value columns as CSV: one row per label, the
// format every figure is emitted in (ready for plotting).
func Series(title string, labels []string, cols map[string][]float64, order []string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "# %s\n", title)
	}
	b.WriteString("label")
	for _, name := range order {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for i, l := range labels {
		b.WriteString(l)
		for _, name := range order {
			col := cols[name]
			if i < len(col) {
				fmt.Fprintf(&b, ",%g", col[i])
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Int formats an integer with comma thousands separators, matching the
// paper's "1,090,310,118" style.
func Int(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// F formats a float with the given number of decimals, trimming to the
// paper's compact style (e.g. 0.113, 39.67).
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
