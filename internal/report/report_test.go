package report

import (
	"strings"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
)

func TestInt(t *testing.T) {
	cases := map[int64]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000", 1234567: "1,234,567",
		1090310118: "1,090,310,118", -4500: "-4,500",
	}
	for in, want := range cases {
		if got := Int(in); got != want {
			t.Fatalf("Int(%d) = %q want %q", in, got, want)
		}
	}
}

func TestF(t *testing.T) {
	if F(0.11343, 3) != "0.113" || F(39.674, 2) != "39.67" {
		t.Fatal("float formatting")
	}
}

func TestTableLayout(t *testing.T) {
	out := Table("Title", []string{"A", "Bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A    Bee") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator %q", lines[2])
	}
}

func TestMatrixLayout(t *testing.T) {
	out := Matrix("M", []string{"r1", "r2"}, []string{"c1"}, func(i, j int) string {
		return F(float64(i+j), 1)
	})
	if !strings.Contains(out, "r2") || !strings.Contains(out, "c1") || !strings.Contains(out, "1.0") {
		t.Fatalf("matrix render %q", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	out := Series("t", []string{"q1", "q2"}, map[string][]float64{"x": {1, 2}, "y": {3}}, []string{"x", "y"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "# t" || lines[1] != "label,x,y" {
		t.Fatalf("header %q", lines[:2])
	}
	if lines[2] != "q1,1,3" || lines[3] != "q2,2," {
		t.Fatalf("rows %q", lines[2:])
	}
}

func TestFigure2FitErrorBranch(t *testing.T) {
	d := queries.EventSizeDistribution{Counts: []int64{0, 1}}
	d.FitErr = errFake{}
	out := Figure2(d)
	if !strings.Contains(out, "fit failed") {
		t.Fatalf("render %q", out)
	}
}

type errFake struct{}

func (errFake) Error() string { return "synthetic failure" }

func TestTableIIIMissingURL(t *testing.T) {
	out := TableIII([]queries.TopEvent{{Mentions: 5, EventID: 42, SourceURL: ""}})
	if !strings.Contains(out, "source URL missing") {
		t.Fatalf("render %q", out)
	}
}

func TestSeriesEmptyLabels(t *testing.T) {
	out := Series("", nil, map[string][]float64{"x": nil}, []string{"x"})
	if !strings.HasPrefix(out, "label,x\n") {
		t.Fatalf("render %q", out)
	}
}

func TestPaperRenderersEndToEnd(t *testing.T) {
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(res.DB)

	t1 := TableI(queries.Dataset(e))
	if !strings.Contains(t1, "Articles per event (weighted average)") {
		t.Fatalf("Table I: %q", t1)
	}
	t2 := TableII(res.DB.Report)
	if !strings.Contains(t2, "Missing event source URL") {
		t.Fatalf("Table II: %q", t2)
	}
	t3 := TableIII(queries.TopEvents(e, 10))
	if !strings.Contains(t3, "Mentions") || len(strings.Split(t3, "\n")) < 12 {
		t.Fatalf("Table III: %q", t3)
	}
	ids, _ := queries.TopPublishers(e, 10)
	fr := queries.FollowReport(e, ids)
	t4 := TableIV(fr)
	if !strings.Contains(t4, "Sum") || !strings.Contains(t4, "Publishers: A=") {
		t.Fatalf("Table IV: %q", t4)
	}
	cr, err := queries.CountryQuery(e)
	if err != nil {
		t.Fatal(err)
	}
	t5 := TableV(cr, 10)
	if !strings.Contains(t5, "United Kingdom") {
		t.Fatalf("Table V: %q", t5)
	}
	t6 := TableVI(cr, 10)
	if !strings.Contains(t6, "United States") {
		t.Fatalf("Table VI: %q", t6)
	}
	t7 := TableVII(cr, 10)
	if !strings.Contains(t7, ".") {
		t.Fatalf("Table VII: %q", t7)
	}
	t8 := TableVIII(queries.PublisherDelays(e, ids))
	if !strings.Contains(t8, "Median") {
		t.Fatalf("Table VIII: %q", t8)
	}

	f2 := Figure2(queries.EventSizes(e, 1))
	if !strings.Contains(f2, "alpha=") {
		t.Fatalf("Figure 2: %q", f2)
	}
	f3 := FigureSeries("Figure 3", queries.ActiveSourcesPerQuarter(e))
	if !strings.Contains(f3, "2015Q1") {
		t.Fatalf("Figure 3: %q", f3)
	}
	f6 := Figure6(queries.TopPublisherSeries(e, 10))
	if !strings.Contains(f6, "2019Q4") {
		t.Fatalf("Figure 6: %q", f6)
	}
	ids50, _ := queries.TopPublishers(e, 50)
	f7 := Figure7(queries.FollowReport(e, ids50))
	if len(strings.Split(f7, "\n")) < 52 {
		t.Fatalf("Figure 7 too short")
	}
	f8 := Figure8(cr, 50)
	if !strings.Contains(f8, "US") {
		t.Fatalf("Figure 8: %q", f8)
	}
	f9 := Figure9(queries.DelayDistributionAll(e))
	if !strings.Contains(f9, "min,average,median,max") {
		t.Fatalf("Figure 9: %q", f9)
	}
	f10 := Figure10(queries.QuarterlyDelays(e))
	if !strings.Contains(f10, "average,median") {
		t.Fatalf("Figure 10: %q", f10)
	}
	f11 := FigureSeries("Figure 11", queries.SlowArticlesPerQuarter(e))
	if !strings.Contains(f11, "value") {
		t.Fatalf("Figure 11: %q", f11)
	}
}
