package binfmt

import (
	"bytes"
	"testing"
)

func TestGKGRoundTrip(t *testing.T) {
	db := testDB(t) // Small corpus has GKG enabled
	if db.GKG == nil {
		t.Fatal("test db lacks GKG")
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GKG == nil {
		t.Fatal("GKG lost in round trip")
	}
	a, b := &db.GKG.Table, &got.GKG.Table
	if a.Len() != b.Len() {
		t.Fatalf("rows %d vs %d", a.Len(), b.Len())
	}
	for r := 0; r < a.Len(); r++ {
		if a.Source[r] != b.Source[r] || a.Interval[r] != b.Interval[r] ||
			a.Tone[r] != b.Tone[r] || a.Translated[r] != b.Translated[r] {
			t.Fatalf("row %d scalar columns differ", r)
		}
		at, bt := a.RowThemes(r), b.RowThemes(r)
		if len(at) != len(bt) {
			t.Fatalf("row %d theme count", r)
		}
		for k := range at {
			if db.GKG.Themes.Name(at[k]) != got.GKG.Themes.Name(bt[k]) {
				t.Fatalf("row %d theme %d differs", r, k)
			}
		}
	}
	if got.GKG.Themes.Len() != db.GKG.Themes.Len() ||
		got.GKG.Persons.Len() != db.GKG.Persons.Len() ||
		got.GKG.Orgs.Len() != db.GKG.Orgs.Len() {
		t.Fatal("dictionary sizes differ")
	}
	// Theme postings rebuilt correctly.
	for th := int32(0); th < int32(got.GKG.Themes.Len()); th++ {
		name := got.GKG.Themes.Name(th)
		orig := db.GKG.Themes.Lookup(name)
		if len(got.GKG.ThemeRows(th)) != len(db.GKG.ThemeRows(orig)) {
			t.Fatalf("theme %s postings differ", name)
		}
	}
}

func TestDBWithoutGKGStillLoads(t *testing.T) {
	db := testDB(t)
	// Serialize without the GKG section by nulling it on a shallow copy.
	cp := *db
	cp.GKG = nil
	var buf bytes.Buffer
	if err := Write(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GKG != nil {
		t.Fatal("GKG appeared from nowhere")
	}
}

func TestGKGCorruptionDetected(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Find the GKGS tag and corrupt a byte well inside its payload.
	idx := bytes.Index(data, []byte("GKGS"))
	if idx < 0 {
		t.Fatal("no GKGS section")
	}
	data[idx+100] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}
