package binfmt

import (
	"bytes"
	"path/filepath"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

var cachedDB *store.DB

func testDB(t testing.TB) *store.DB {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	return cachedDB
}

func TestRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != db.Meta {
		t.Fatalf("meta %+v vs %+v", got.Meta, db.Meta)
	}
	if got.Sources.Len() != db.Sources.Len() {
		t.Fatalf("sources %d vs %d", got.Sources.Len(), db.Sources.Len())
	}
	for i := 0; i < db.Sources.Len(); i++ {
		if got.Sources.Name(int32(i)) != db.Sources.Name(int32(i)) {
			t.Fatalf("source %d name differs", i)
		}
	}
	if got.Events.Len() != db.Events.Len() || got.Mentions.Len() != db.Mentions.Len() {
		t.Fatalf("row counts differ")
	}
	for i := range db.Events.ID {
		if got.Events.ID[i] != db.Events.ID[i] || got.Events.Day[i] != db.Events.Day[i] ||
			got.Events.Interval[i] != db.Events.Interval[i] || got.Events.Country[i] != db.Events.Country[i] ||
			got.Events.NumArticles[i] != db.Events.NumArticles[i] ||
			got.Events.FirstMention[i] != db.Events.FirstMention[i] ||
			got.Events.SourceURL[i] != db.Events.SourceURL[i] {
			t.Fatalf("event row %d differs", i)
		}
	}
	for i := range db.Mentions.EventRow {
		if got.Mentions.EventRow[i] != db.Mentions.EventRow[i] ||
			got.Mentions.Source[i] != db.Mentions.Source[i] ||
			got.Mentions.Interval[i] != db.Mentions.Interval[i] ||
			got.Mentions.Delay[i] != db.Mentions.Delay[i] ||
			got.Mentions.DocLen[i] != db.Mentions.DocLen[i] ||
			got.Mentions.Tone[i] != db.Mentions.Tone[i] ||
			got.Mentions.Confidence[i] != db.Mentions.Confidence[i] {
			t.Fatalf("mention row %d differs", i)
		}
	}
	// Report survives.
	for c := range db.Report.Counts {
		if got.Report.Counts[c] != db.Report.Counts[c] {
			t.Fatalf("report class %d: %d vs %d", c, got.Report.Counts[c], db.Report.Counts[c])
		}
	}
	// Derived indexes were rebuilt and validate.
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumQuarters() != db.NumQuarters() {
		t.Fatalf("quarters %d vs %d", got.NumQuarters(), db.NumQuarters())
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "db.gdmb")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mentions.Len() != db.Mentions.Len() {
		t.Fatal("file round trip lost rows")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte in the middle of the payload area.
	data[len(data)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestReadDetectsTruncation(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestReadRejectsIncomplete(t *testing.T) {
	// A container with only META then END must be rejected.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{Version, 0, 0, 0})
	if err := writeSection(&buf, tagMeta, encodeMeta(store.Meta{Start: 20150218000000, Intervals: 96})); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&buf, tagEnd, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("incomplete db accepted")
	}
}

func TestUnknownSectionSkipped(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{Version, 0, 0, 0})
	writeSection(&buf, [4]byte{'X', 'T', 'R', 'A'}, []byte("future extension"))
	writeSection(&buf, tagMeta, encodeMeta(db.Meta))
	writeSection(&buf, tagSources, encodeStrings(db.Sources.Names()))
	writeSection(&buf, tagEvents, encodeEvents(&db.Events))
	writeSection(&buf, tagMentions, encodeMentions(&db.Mentions))
	writeSection(&buf, tagEnd, nil)
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events.Len() != db.Events.Len() {
		t.Fatal("round trip with unknown section lost data")
	}
	// Absent report defaults to empty.
	if got.Report == nil || got.Report.Total() != 0 {
		t.Fatal("missing report should default to empty")
	}
}

func TestDecodeMetaRejectsImplausible(t *testing.T) {
	if _, err := decodeMeta(encodeMeta(store.Meta{Start: 0, Intervals: 5})); err == nil {
		t.Fatal("zero start accepted")
	}
	if _, err := decodeMeta(encodeMeta(store.Meta{Start: 20150218000000, Intervals: 0})); err == nil {
		t.Fatal("zero intervals accepted")
	}
	if _, err := decodeMeta(nil); err == nil {
		t.Fatal("empty meta accepted")
	}
}

func TestReportRoundTripExamples(t *testing.T) {
	r := &gdelt.ValidationReport{}
	r.Record(gdelt.DefectMissingArchive, "chunk-7")
	r.Record(gdelt.DefectBadRow, "row x")
	r.Record(gdelt.DefectBadRow, "row y")
	got, err := decodeReport(encodeReport(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts[gdelt.DefectMissingArchive] != 1 || got.Counts[gdelt.DefectBadRow] != 2 {
		t.Fatalf("counts %v", got.Counts)
	}
	if len(got.Examples[gdelt.DefectBadRow]) != 2 || got.Examples[gdelt.DefectBadRow][1] != "row y" {
		t.Fatalf("examples %v", got.Examples)
	}
}

func TestCompressionIsEffective(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	// The binary format should be far smaller than a naive fixed-width
	// layout (~40 bytes/mention + ~60 bytes/event).
	naive := db.Mentions.Len()*40 + db.Events.Len()*60
	if buf.Len() >= naive {
		t.Fatalf("binary size %d not smaller than naive %d", buf.Len(), naive)
	}
}
