package binfmt

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRandomCorruptionNeverPanics hammers the reader with randomly mutated
// containers: every mutation must surface as an error (or, for mutations in
// non-load-bearing bytes, a clean read) — never a panic or a hang. This is
// the safety property a loader of multi-gigabyte binary files must have.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), pristine...)
		// 1-4 random byte mutations.
		for m := 0; m < 1+rng.Intn(4); m++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}

// TestRandomTruncationNeverPanics checks the same property for truncation
// at every kind of boundary.
func TestRandomTruncationNeverPanics(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(len(pristine))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d panicked: %v", n, r)
				}
			}()
			if _, err := Read(bytes.NewReader(pristine[:n])); err == nil {
				t.Fatalf("truncation at %d of %d accepted", n, len(pristine))
			}
		}()
	}
}

// TestGarbageInputNeverPanics feeds arbitrary bytes.
func TestGarbageInputNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		// Half the trials get a valid magic+version prefix to reach the
		// section parser.
		if trial%2 == 0 && len(data) >= 8 {
			copy(data, magic[:])
			data[4], data[5], data[6], data[7] = Version, 0, 0, 0
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("garbage trial %d panicked: %v", trial, r)
				}
			}()
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}
