package binfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

// tinyDBBytes serializes a miniature but fully-featured world (GKG section
// included), small enough to keep the fuzz corpus light while exercising
// every section codec.
func tinyDBBytes(tb testing.TB) []byte {
	tb.Helper()
	cfg := gen.Config{
		Seed:             7,
		Start:            20150218000000,
		End:              20150310000000,
		Sources:          20,
		EventsPerDay:     3,
		MediaGroupSize:   5,
		HeadlineEvents:   1,
		UntaggedFraction: 0.1,
		PopularityAlpha:  2.2,
		IntervalsPerFile: 96,
		GKG:              true,
	}
	c, err := gen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, res.DB); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeeds are the interesting starting points: a fully valid database,
// truncations at section boundaries and mid-payload, a corrupt header, and
// bit flips that land in length fields, varint streams, and CRCs.
func fuzzSeeds(tb testing.TB) map[string][]byte {
	valid := tinyDBBytes(tb)
	seeds := map[string][]byte{
		"valid":        valid,
		"truncated":    valid[:len(valid)/2],
		"header-only":  valid[:8],
		"short-header": []byte("GDMB"),
		"bad-magic":    append([]byte("XXXX"), valid[4:16]...),
	}
	for _, off := range []int{8, 20, len(valid) / 3, 2 * len(valid) / 3, len(valid) - 5} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		seeds["flip-"+strconv.Itoa(off)] = mut
	}
	return seeds
}

// FuzzRead asserts the loader's contract on arbitrary bytes: it either
// returns an error or a database whose invariants hold — it never panics,
// even on corrupted section lengths, counts, or cross-table references.
// The checked-in corpus under testdata/fuzz/FuzzRead replays known-
// interesting inputs on every plain `go test` run.
func FuzzRead(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input; the contract is only "no panic"
		}
		checkLoaded(t, db)
	})
}

// checkLoaded asserts a database the loader accepted is safe to hand to the
// engine: all invariants hold and it survives a re-encode round trip.
func checkLoaded(t *testing.T, db *store.DB) {
	t.Helper()
	if err := db.Validate(); err != nil {
		t.Fatalf("accepted database fails validation: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatalf("re-encoding accepted database: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("re-decoding accepted database: %v", err)
	}
}

// TestWriteFuzzSeedCorpus regenerates the checked-in seed corpus. It is a
// no-op unless GDELT_UPDATE_FUZZ_CORPUS=1 is set, the same pattern as a
// golden-file -update flag.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("GDELT_UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set GDELT_UPDATE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzSeeds(t) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
