package binfmt

import (
	"encoding/binary"
	"math"

	"gdeltmine/internal/store"
)

// GKG section layout: three string dictionaries (themes, persons, orgs)
// followed by the columnar table with varint/delta encodings.

func encodeGKG(g *store.GKGStore) []byte {
	var out []byte
	out = append(out, encodeStrings(g.Themes.Names())...)
	out = append(out, encodeStrings(g.Persons.Names())...)
	out = append(out, encodeStrings(g.Orgs.Names())...)

	t := &g.Table
	n := t.Len()
	out = putUvarint(out, uint64(n))
	for _, v := range t.Source {
		out = putUvarint(out, uint64(v))
	}
	var prev int32
	for _, v := range t.Interval { // sorted: delta-encode
		out = putUvarint(out, uint64(v-prev))
		prev = v
	}
	for _, v := range t.Tone {
		var f4 [4]byte
		binary.LittleEndian.PutUint32(f4[:], math.Float32bits(v))
		out = append(out, f4[:]...)
	}
	for _, v := range t.Translated {
		if v {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	out = encodeCSR(out, t.ThemePtr, t.ThemeIDs)
	out = encodeCSR(out, t.PersonPtr, t.PersonIDs)
	out = encodeCSR(out, t.OrgPtr, t.OrgIDs)
	return out
}

func encodeCSR(out []byte, ptr []int64, ids []int32) []byte {
	// Per-row counts then the flat id list.
	for r := 0; r+1 < len(ptr); r++ {
		out = putUvarint(out, uint64(ptr[r+1]-ptr[r]))
	}
	out = putUvarint(out, uint64(len(ids)))
	for _, id := range ids {
		out = putUvarint(out, uint64(id))
	}
	return out
}

func decodeGKGInto(db *store.DB, payload []byte) error {
	d := &decoder{buf: payload}
	themesNames, err := decodeStringsFrom(d)
	if err != nil {
		return err
	}
	personNames, err := decodeStringsFrom(d)
	if err != nil {
		return err
	}
	orgNames, err := decodeStringsFrom(d)
	if err != nil {
		return err
	}
	themes, err := store.FromNames(themesNames)
	if err != nil {
		return err
	}
	persons, err := store.FromNames(personNames)
	if err != nil {
		return err
	}
	orgs, err := store.FromNames(orgNames)
	if err != nil {
		return err
	}

	n, ok := d.count(maxRows)
	if !ok {
		return d.err
	}
	var t store.GKGTable
	t.Source = make([]int32, n)
	for i := range t.Source {
		t.Source[i] = int32(d.uvarint())
	}
	t.Interval = make([]int32, n)
	var prev int32
	for i := range t.Interval {
		prev += int32(d.uvarint())
		t.Interval[i] = prev
	}
	t.Tone = make([]float32, n)
	for i := range t.Tone {
		f := d.bytes(4)
		if d.err != nil {
			return d.err
		}
		t.Tone[i] = math.Float32frombits(binary.LittleEndian.Uint32(f))
	}
	t.Translated = make([]bool, n)
	tr := d.bytes(n)
	if d.err != nil {
		return d.err
	}
	for i := range t.Translated {
		t.Translated[i] = tr[i] != 0
	}
	if t.ThemePtr, t.ThemeIDs, err = decodeCSRFrom(d, n); err != nil {
		return err
	}
	if t.PersonPtr, t.PersonIDs, err = decodeCSRFrom(d, n); err != nil {
		return err
	}
	if t.OrgPtr, t.OrgIDs, err = decodeCSRFrom(d, n); err != nil {
		return err
	}
	if d.err != nil {
		return d.err
	}
	return store.AssembleGKG(db, t, themes, persons, orgs)
}

func decodeStringsFrom(d *decoder) ([]string, error) {
	n, ok := d.count(maxRows)
	if !ok {
		return nil, d.err
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := int(d.uvarint())
		names = append(names, string(d.bytes(l)))
	}
	return names, d.err
}

func decodeCSRFrom(d *decoder, rows int) ([]int64, []int32, error) {
	ptr := make([]int64, rows+1)
	for r := 0; r < rows; r++ {
		ptr[r+1] = ptr[r] + int64(d.uvarint())
	}
	total, ok := d.count(maxRows)
	if !ok {
		return nil, nil, d.err
	}
	if int64(total) != ptr[rows] {
		return nil, nil, errMismatch(total, ptr[rows])
	}
	ids := make([]int32, total)
	for i := range ids {
		ids[i] = int32(d.uvarint())
	}
	return ptr, ids, d.err
}

type errMismatchT struct{ got, want int64 }

func errMismatch(got int, want int64) error { return &errMismatchT{int64(got), want} }

func (e *errMismatchT) Error() string {
	return "binfmt: gkg csr id count mismatch"
}
