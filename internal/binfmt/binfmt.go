// Package binfmt implements the indexed binary database format the
// preprocessing tool produces: a sectioned container holding the
// dictionary-encoded columnar tables with varint/delta compression and
// per-section CRC-32 integrity checks. Converting the raw CSV archive once
// and thereafter loading this format is what makes the paper's
// "read the entire GDELT database in seconds" workflow possible.
//
// Layout:
//
//	magic "GDMB", format version (uint32 LE)
//	repeated sections: tag [4]byte, payload length (uint64 LE),
//	                   payload, CRC-32 (IEEE) of payload (uint32 LE)
//	terminator section tag "END "
//
// Sections: META (archive span), SRCS (source dictionary), EVTS (event
// columns), MNTS (mention columns), REPT (validation report).
package binfmt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/store"
)

// Version is the current format version.
const Version = 1

var magic = [4]byte{'G', 'D', 'M', 'B'}

// section tags
var (
	tagMeta     = [4]byte{'M', 'E', 'T', 'A'}
	tagSources  = [4]byte{'S', 'R', 'C', 'S'}
	tagEvents   = [4]byte{'E', 'V', 'T', 'S'}
	tagMentions = [4]byte{'M', 'N', 'T', 'S'}
	tagReport   = [4]byte{'R', 'E', 'P', 'T'}
	tagGKG      = [4]byte{'G', 'K', 'G', 'S'}
	tagEnd      = [4]byte{'E', 'N', 'D', ' '}
)

// Write serializes the database to w.
func Write(w io.Writer, db *store.DB) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var v4 [4]byte
	binary.LittleEndian.PutUint32(v4[:], Version)
	if _, err := bw.Write(v4[:]); err != nil {
		return err
	}
	if err := writeSection(bw, tagMeta, encodeMeta(db.Meta)); err != nil {
		return err
	}
	if err := writeSection(bw, tagSources, encodeStrings(db.Sources.Names())); err != nil {
		return err
	}
	if err := writeSection(bw, tagEvents, encodeEvents(&db.Events)); err != nil {
		return err
	}
	if err := writeSection(bw, tagMentions, encodeMentions(&db.Mentions)); err != nil {
		return err
	}
	if err := writeSection(bw, tagReport, encodeReport(db.Report)); err != nil {
		return err
	}
	if db.GKG != nil {
		if err := writeSection(bw, tagGKG, encodeGKG(db.GKG)); err != nil {
			return err
		}
	}
	if err := writeSection(bw, tagEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a database from r, rebuilding the derived indexes.
func Read(r io.Reader) (*store.DB, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("binfmt: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("binfmt: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("binfmt: unsupported version %d (want %d)", v, Version)
	}
	var (
		meta       store.Meta
		dict       *store.Dictionary
		events     store.EventTable
		mentions   store.MentionTable
		report     *gdelt.ValidationReport
		gkgPayload []byte
		haveMeta   bool
		haveDict   bool
		haveEvents bool
		haveMent   bool
	)
	for {
		tag, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagEnd:
			if !haveMeta || !haveDict || !haveEvents || !haveMent {
				return nil, fmt.Errorf("binfmt: incomplete database (meta=%v dict=%v events=%v mentions=%v)",
					haveMeta, haveDict, haveEvents, haveMent)
			}
			db, err := store.AssembleDB(meta, dict, events, mentions, report)
			if err != nil {
				return nil, err
			}
			if gkgPayload != nil {
				if err := decodeGKGInto(db, gkgPayload); err != nil {
					return nil, err
				}
			}
			return db, nil
		case tagMeta:
			if meta, err = decodeMeta(payload); err != nil {
				return nil, err
			}
			haveMeta = true
		case tagSources:
			names, err := decodeStrings(payload)
			if err != nil {
				return nil, err
			}
			if dict, err = store.FromNames(names); err != nil {
				return nil, err
			}
			haveDict = true
		case tagEvents:
			if events, err = decodeEvents(payload); err != nil {
				return nil, err
			}
			haveEvents = true
		case tagMentions:
			if mentions, err = decodeMentions(payload); err != nil {
				return nil, err
			}
			haveMent = true
		case tagReport:
			if report, err = decodeReport(payload); err != nil {
				return nil, err
			}
		case tagGKG:
			gkgPayload = payload
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
}

// WriteFile serializes the database to path.
func WriteFile(path string, db *store.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a database from path.
func ReadFile(path string) (*store.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeSection(w io.Writer, tag [4]byte, payload []byte) error {
	if _, err := w.Write(tag[:]); err != nil {
		return err
	}
	var l8 [8]byte
	binary.LittleEndian.PutUint64(l8[:], uint64(len(payload)))
	if _, err := w.Write(l8[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var c4 [4]byte
	binary.LittleEndian.PutUint32(c4[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(c4[:])
	return err
}

// maxSection bounds a single section payload (4 GiB) to catch corrupt
// length fields before allocating.
const maxSection = 4 << 30

func readSection(r io.Reader) ([4]byte, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return [4]byte{}, nil, fmt.Errorf("binfmt: reading section header: %w", err)
	}
	tag := [4]byte(hdr[:4])
	n := binary.LittleEndian.Uint64(hdr[4:])
	if n > maxSection {
		return tag, nil, fmt.Errorf("binfmt: section %q length %d exceeds limit", tag, n)
	}
	// Grow the payload buffer as bytes actually arrive rather than trusting
	// the length field with one huge allocation: a corrupted length then
	// fails at EOF instead of attempting a multi-gigabyte make.
	var pbuf bytes.Buffer
	if m, err := io.CopyN(&pbuf, r, int64(n)); err != nil {
		return tag, nil, fmt.Errorf("binfmt: reading section %q (%d of %d bytes): %w", tag, m, n, err)
	}
	payload := pbuf.Bytes()
	var c4 [4]byte
	if _, err := io.ReadFull(r, c4[:]); err != nil {
		return tag, nil, fmt.Errorf("binfmt: reading section %q crc: %w", tag, err)
	}
	if got := binary.LittleEndian.Uint32(c4[:]); got != crc32.ChecksumIEEE(payload) {
		return tag, nil, fmt.Errorf("binfmt: section %q checksum mismatch", tag)
	}
	return tag, payload, nil
}

// --- encoding primitives ---

func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func putVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("binfmt: truncated uvarint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("binfmt: truncated varint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.err = fmt.Errorf("binfmt: truncated byte run of %d at %d", n, d.pos)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) count(limit uint64) (int, bool) {
	n := d.uvarint()
	if d.err != nil {
		return 0, false
	}
	if n > limit {
		d.err = fmt.Errorf("binfmt: count %d exceeds limit %d", n, limit)
		return 0, false
	}
	// Every counted element occupies at least one payload byte, so a count
	// beyond the remaining buffer is corrupt regardless of the limit —
	// reject before allocating element slices.
	if remaining := uint64(len(d.buf) - d.pos); n > remaining {
		d.err = fmt.Errorf("binfmt: count %d exceeds remaining payload %d", n, remaining)
		return 0, false
	}
	return int(n), true
}

const maxRows = 1 << 33 // generous row-count sanity bound

// --- section codecs ---

func encodeMeta(m store.Meta) []byte {
	var out []byte
	out = putVarint(out, int64(m.Start))
	out = putVarint(out, int64(m.Intervals))
	return out
}

func decodeMeta(b []byte) (store.Meta, error) {
	d := &decoder{buf: b}
	m := store.Meta{
		Start:     gdelt.Timestamp(d.varint()),
		Intervals: int32(d.varint()),
	}
	if d.err != nil {
		return m, d.err
	}
	if !m.Start.Valid() || m.Intervals <= 0 {
		return m, fmt.Errorf("binfmt: implausible meta %v/%d", m.Start, m.Intervals)
	}
	return m, nil
}

func encodeStrings(names []string) []byte {
	var out []byte
	out = putUvarint(out, uint64(len(names)))
	for _, n := range names {
		out = putUvarint(out, uint64(len(n)))
		out = append(out, n...)
	}
	return out
}

func decodeStrings(b []byte) ([]string, error) {
	d := &decoder{buf: b}
	n, ok := d.count(maxRows)
	if !ok {
		return nil, d.err
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := int(d.uvarint())
		names = append(names, string(d.bytes(l)))
	}
	return names, d.err
}

func encodeEvents(t *store.EventTable) []byte {
	var out []byte
	n := t.Len()
	out = putUvarint(out, uint64(n))
	var prev int64
	for _, id := range t.ID { // strictly increasing: delta-encode
		out = putUvarint(out, uint64(id-prev))
		prev = id
	}
	for _, v := range t.Day {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.Interval {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.Country {
		out = putVarint(out, int64(v))
	}
	for _, v := range t.NumArticles {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.FirstMention {
		out = putVarint(out, int64(v))
	}
	for _, u := range t.SourceURL {
		out = putUvarint(out, uint64(len(u)))
		out = append(out, u...)
	}
	return out
}

func decodeEvents(b []byte) (store.EventTable, error) {
	var t store.EventTable
	d := &decoder{buf: b}
	n, ok := d.count(maxRows)
	if !ok {
		return t, d.err
	}
	t.ID = make([]int64, n)
	var prev int64
	for i := range t.ID {
		prev += int64(d.uvarint())
		t.ID[i] = prev
	}
	t.Day = make([]int32, n)
	for i := range t.Day {
		t.Day[i] = int32(d.uvarint())
	}
	t.Interval = make([]int32, n)
	for i := range t.Interval {
		t.Interval[i] = int32(d.uvarint())
	}
	t.Country = make([]int16, n)
	for i := range t.Country {
		t.Country[i] = int16(d.varint())
	}
	t.NumArticles = make([]int32, n)
	for i := range t.NumArticles {
		t.NumArticles[i] = int32(d.uvarint())
	}
	t.FirstMention = make([]int32, n)
	for i := range t.FirstMention {
		t.FirstMention[i] = int32(d.varint())
	}
	t.SourceURL = make([]string, n)
	for i := range t.SourceURL {
		l := int(d.uvarint())
		t.SourceURL[i] = string(d.bytes(l))
	}
	return t, d.err
}

func encodeMentions(t *store.MentionTable) []byte {
	var out []byte
	n := t.Len()
	out = putUvarint(out, uint64(n))
	for _, v := range t.EventRow {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.Source {
		out = putUvarint(out, uint64(v))
	}
	var prev int32
	for _, v := range t.Interval { // non-decreasing: delta-encode
		out = putUvarint(out, uint64(v-prev))
		prev = v
	}
	for _, v := range t.Delay {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.DocLen {
		out = putUvarint(out, uint64(v))
	}
	for _, v := range t.Tone {
		var f4 [4]byte
		binary.LittleEndian.PutUint32(f4[:], math.Float32bits(v))
		out = append(out, f4[:]...)
	}
	for _, v := range t.Confidence {
		out = append(out, byte(v))
	}
	return out
}

func decodeMentions(b []byte) (store.MentionTable, error) {
	var t store.MentionTable
	d := &decoder{buf: b}
	n, ok := d.count(maxRows)
	if !ok {
		return t, d.err
	}
	t.EventRow = make([]int32, n)
	for i := range t.EventRow {
		t.EventRow[i] = int32(d.uvarint())
	}
	t.Source = make([]int32, n)
	for i := range t.Source {
		t.Source[i] = int32(d.uvarint())
	}
	t.Interval = make([]int32, n)
	var prev int32
	for i := range t.Interval {
		prev += int32(d.uvarint())
		t.Interval[i] = prev
	}
	t.Delay = make([]int32, n)
	for i := range t.Delay {
		t.Delay[i] = int32(d.uvarint())
	}
	t.DocLen = make([]int32, n)
	for i := range t.DocLen {
		t.DocLen[i] = int32(d.uvarint())
	}
	t.Tone = make([]float32, n)
	for i := range t.Tone {
		f := d.bytes(4)
		if d.err != nil {
			return t, d.err
		}
		t.Tone[i] = math.Float32frombits(binary.LittleEndian.Uint32(f))
	}
	t.Confidence = make([]int8, n)
	conf := d.bytes(n)
	if d.err != nil {
		return t, d.err
	}
	for i := range t.Confidence {
		t.Confidence[i] = int8(conf[i])
	}
	return t, d.err
}

func encodeReport(r *gdelt.ValidationReport) []byte {
	var out []byte
	if r == nil {
		r = &gdelt.ValidationReport{}
	}
	out = putUvarint(out, uint64(len(r.Counts)))
	for _, c := range r.Counts {
		out = putUvarint(out, uint64(c))
	}
	for _, exs := range r.Examples {
		out = putUvarint(out, uint64(len(exs)))
		for _, ex := range exs {
			out = putUvarint(out, uint64(len(ex)))
			out = append(out, ex...)
		}
	}
	return out
}

func decodeReport(b []byte) (*gdelt.ValidationReport, error) {
	d := &decoder{buf: b}
	r := &gdelt.ValidationReport{}
	n, ok := d.count(uint64(len(r.Counts)))
	if !ok {
		return nil, d.err
	}
	for i := 0; i < n; i++ {
		r.Counts[i] = int64(d.uvarint())
	}
	for i := 0; i < n; i++ {
		m, ok := d.count(1 << 20)
		if !ok {
			return nil, d.err
		}
		for j := 0; j < m; j++ {
			l := int(d.uvarint())
			r.Examples[i] = append(r.Examples[i], string(d.bytes(l)))
		}
	}
	return r, d.err
}
