package binfmt

import (
	"bytes"
	"io"
	"testing"
)

// Binary-format throughput: the one-time conversion cost and, more
// importantly, the load cost every analysis session pays.

func BenchmarkWriteDB(b *testing.B) {
	db := testDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, db); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(db.Mentions.Len()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkReadDB(b *testing.B) {
	db := testDB(b)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if got.Mentions.Len() != db.Mentions.Len() {
			b.Fatal("row loss")
		}
	}
}

func BenchmarkEncodeMentions(b *testing.B) {
	db := testDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := encodeMentions(&db.Mentions); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkDecodeMentions(b *testing.B) {
	db := testDB(b)
	payload := encodeMentions(&db.Mentions)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeMentions(payload); err != nil {
			b.Fatal(err)
		}
	}
}
