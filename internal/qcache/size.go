package qcache

import "reflect"

// Approx estimates the resident memory of a query result in bytes: the
// deep size of everything reachable from v, counting each pointed-to
// object once. It is the cost function of the cache's memory budget — an
// estimate good to tens of percent is plenty for capping a cache, so the
// walk favors cheap structural rules over allocator-exact accounting:
//
//   - fixed-size kinds cost their reflect size;
//   - strings cost header + len;
//   - slices cost header + cap*elem for flat element types, walking the
//     elements only when they can reach further memory;
//   - maps cost a per-bucket overhead plus their keys and values;
//   - pointers and interfaces add the pointee, deduplicated by address.
func Approx(v any) int64 {
	if v == nil {
		return 0
	}
	seen := make(map[uintptr]struct{})
	return approx(reflect.ValueOf(v), seen)
}

// mapBucketOverhead approximates per-entry hash-table bookkeeping.
const mapBucketOverhead = 48

func approx(rv reflect.Value, seen map[uintptr]struct{}) int64 {
	switch rv.Kind() {
	case reflect.Invalid:
		return 0
	case reflect.String:
		return int64(rv.Type().Size()) + int64(rv.Len())
	case reflect.Slice:
		size := int64(rv.Type().Size())
		elem := rv.Type().Elem()
		size += int64(rv.Cap()) * int64(elem.Size())
		if hasIndirect(elem) {
			for i := 0; i < rv.Len(); i++ {
				size += indirectOf(rv.Index(i), seen)
			}
		}
		return size
	case reflect.Array:
		size := int64(rv.Type().Size())
		if hasIndirect(rv.Type().Elem()) {
			for i := 0; i < rv.Len(); i++ {
				size += indirectOf(rv.Index(i), seen)
			}
		}
		return size
	case reflect.Map:
		size := int64(rv.Type().Size())
		iter := rv.MapRange()
		for iter.Next() {
			size += mapBucketOverhead
			size += approx(iter.Key(), seen)
			size += approx(iter.Value(), seen)
		}
		return size
	case reflect.Pointer:
		size := int64(rv.Type().Size())
		if rv.IsNil() {
			return size
		}
		ptr := rv.Pointer()
		if _, ok := seen[ptr]; ok {
			return size
		}
		seen[ptr] = struct{}{}
		return size + approx(rv.Elem(), seen)
	case reflect.Interface:
		if rv.IsNil() {
			return int64(rv.Type().Size())
		}
		return int64(rv.Type().Size()) + approx(rv.Elem(), seen)
	case reflect.Struct:
		size := int64(rv.Type().Size())
		for i := 0; i < rv.NumField(); i++ {
			if hasIndirect(rv.Type().Field(i).Type) {
				size += indirectOf(rv.Field(i), seen)
			}
		}
		return size
	default:
		// Fixed-size scalar kinds (ints, floats, bool, complex, chan, func:
		// the latter two never appear in results, their header size is fine).
		return int64(rv.Type().Size())
	}
}

// indirectOf returns only the memory a value reaches beyond its own
// inline representation (which the caller already counted).
func indirectOf(rv reflect.Value, seen map[uintptr]struct{}) int64 {
	total := approx(rv, seen)
	total -= int64(rv.Type().Size())
	if total < 0 {
		total = 0
	}
	return total
}

// hasIndirect reports whether values of t can reach memory outside their
// inline representation, i.e. whether a deep walk could add anything.
func hasIndirect(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.String, reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface:
		return true
	case reflect.Array:
		return hasIndirect(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasIndirect(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
