package qcache

import (
	"context"
	"testing"
)

// TestScopeSeparatesPartialFromFull is the cache-pollution guard for
// degraded serving: a result computed over a restricted shard subset
// (Key.Scope non-empty) must never be served for — or overwrite — the
// full-coverage entry with otherwise identical key fields.
func TestScopeSeparatesPartialFromFull(t *testing.T) {
	c := New(0)
	full := Key{Kind: "count", Params: "", Window: "0:100", Version: 1}
	partial := full
	partial.Scope = "shards=0,1"

	if full.String() == partial.String() {
		t.Fatalf("scoped and unscoped keys collide: %q", full.String())
	}

	v, out, err := c.Do(context.Background(), partial, func() (any, error) { return "partial-result", nil })
	if err != nil || v != "partial-result" || out != Miss {
		t.Fatalf("partial compute: %v %v %v", v, out, err)
	}
	// The full-coverage request must not hit the partial entry.
	v, out, err = c.Do(context.Background(), full, func() (any, error) { return "full-result", nil })
	if err != nil || v != "full-result" || out != Miss {
		t.Fatalf("full compute after partial: %v %v %v — partial served as full?", v, out, err)
	}
	// And both are now independently cached.
	mustHit := func() (any, error) { t.Fatal("recomputed on an expected hit"); return nil, nil }
	if v, out, _ := c.Do(context.Background(), full, mustHit); out != Hit || v != "full-result" {
		t.Fatalf("full re-read: %v %v", v, out)
	}
	if v, out, _ := c.Do(context.Background(), partial, mustHit); out != Hit || v != "partial-result" {
		t.Fatalf("partial re-read: %v %v", v, out)
	}
}

// TestScopeStringRoundTrip pins the scoped key encoding so cache debugging
// output stays readable.
func TestScopeStringRoundTrip(t *testing.T) {
	k := Key{Kind: "count", Params: "k=5", Window: "0:10", Version: 2, Scope: "shards=0,1"}
	if got, want := k.String(), "count?k=5@0:10#v2!shards=0,1"; got != want {
		t.Fatalf("scoped key %q, want %q", got, want)
	}
}
