// Package qcache is the snapshot-keyed query result cache of the serve
// path. The store is immutable between stream appends, so any query result
// is valid exactly as long as the store's snapshot version is unchanged —
// the cache therefore keys every entry on (kind, canonical params, window,
// version) and needs no TTLs: a version bump simply makes every old key
// unreachable, and a lazy sweep reclaims the memory.
//
// Three mechanisms compose:
//
//   - Single-flight execution (the groupcache/singleflight pattern): N
//     concurrent requests for the same key run ONE underlying scan; the
//     leader computes, waiters block on its completion and share the same
//     result value. Errors and cancelled partial computations are never
//     cached; a waiter whose leader was cancelled retries with itself as
//     the new leader as long as its own context is live.
//   - An LRU bounded by an approximate memory budget with per-entry cost
//     accounting (see Approx in size.go), not by entry count — a country
//     matrix and a five-number stats summary should not cost the same.
//   - Snapshot-version invalidation: the first lookup that carries a newer
//     store version sweeps out every entry of older versions.
//
// Cached values are shared across goroutines by reference; callers must
// treat them as immutable (the query layer returns freshly built,
// read-only result structs, and the HTTP layer only encodes them).
package qcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gdeltmine/internal/obs"
)

// Key canonically identifies one cacheable query execution.
type Key struct {
	// Kind is the registered query kind.
	Kind string
	// Params is the canonical parameter encoding (defaults resolved,
	// spec-ordered) produced by the query registry.
	Params string
	// Window is the effective mention-row range "lo:hi" of the engine view.
	Window string
	// Version is the store snapshot version the result was computed at.
	Version uint64
	// Scope distinguishes results computed over a restricted shard subset
	// (degraded serving behind the routing tier) from full-coverage
	// results. Empty means full coverage. Because Scope is part of the key,
	// a partial result can never be served for — or overwrite — a
	// full-coverage request, and vice versa.
	Scope string
}

// String renders the key layout documented in DESIGN.md §8 (§11 for the
// coverage scope).
func (k Key) String() string {
	if k.Scope != "" {
		return fmt.Sprintf("%s?%s@%s#v%d!%s", k.Kind, k.Params, k.Window, k.Version, k.Scope)
	}
	return fmt.Sprintf("%s?%s@%s#v%d", k.Kind, k.Params, k.Window, k.Version)
}

// overheadBytes approximates the bookkeeping cost of one entry beyond its
// result value: key strings, map bucket, list element, entry struct.
const overheadBytes = 256

// Outcome classifies how a Do call was satisfied.
type Outcome int

const (
	// Bypass: no cache configured; the computation ran directly.
	Bypass Outcome = iota
	// Miss: this call ran the underlying computation as the flight leader.
	Miss
	// Hit: the result was served from the cache with no computation.
	Hit
	// Coalesced: the call joined an in-flight computation started by a
	// concurrent identical request and shares its result.
	Coalesced
)

// String returns the lowercase name, used for X-Cache headers and logs.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

// entry is one cached result on the LRU list.
type entry struct {
	key  Key
	val  any
	cost int64
}

// flight is one in-progress computation that waiters can join.
type flight struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// Cache is a memory-budgeted, single-flight, snapshot-versioned result
// cache. All methods are safe for concurrent use.
type Cache struct {
	maxBytes int64

	mu          sync.Mutex
	used        int64
	ll          *list.List // front = most recent; values are *entry
	entries     map[Key]*list.Element
	inflight    map[Key]*flight
	lastVersion uint64
	stale       func(Key) bool

	// Observability: process-wide counters (shared across Cache instances
	// in one process, like the serve metrics) plus hit/miss latency split.
	hits, misses, coalesced  *obs.Counter
	evictions, invalidations *obs.Counter
	bytesGauge, entriesGauge *obs.Gauge
	hitSeconds, missSeconds  *obs.Histogram
}

// DefaultMaxBytes is the serve default for the -cache-bytes budget.
const DefaultMaxBytes = 256 << 20 // 256 MB

// New returns a cache bounded by approximately maxBytes of result memory.
// maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		hits: obs.Default.Counter("qcache_hits_total",
			"query results served from the cache"),
		misses: obs.Default.Counter("qcache_misses_total",
			"query executions run because no cached result existed"),
		coalesced: obs.Default.Counter("qcache_coalesced_total",
			"requests that joined an identical in-flight execution instead of scanning"),
		evictions: obs.Default.Counter("qcache_evictions_total",
			"entries evicted by the memory budget"),
		invalidations: obs.Default.Counter("qcache_invalidated_total",
			"entries retired by a store snapshot-version bump"),
		bytesGauge: obs.Default.Gauge("qcache_bytes",
			"approximate memory held by cached results"),
		entriesGauge: obs.Default.Gauge("qcache_entries",
			"cached results currently resident"),
		hitSeconds: obs.Default.Histogram("qcache_hit_seconds",
			"latency of cache-hit lookups", obs.LatencyBuckets),
		missSeconds: obs.Default.Histogram("qcache_miss_seconds",
			"latency of cache-miss executions (leader's scan included)", obs.LatencyBuckets),
	}
}

// MaxBytes returns the configured memory budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// UsedBytes returns the approximate memory held by resident entries.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Do returns the cached result for key, joining an identical in-flight
// computation when one exists, or runs compute as the flight leader. The
// returned Outcome says which of the three happened. Errors from compute
// are returned to the leader and every waiter and are never cached. ctx
// bounds only the caller's wait: a waiter whose own context expires
// returns ctx.Err() while the leader's computation keeps running.
func (c *Cache) Do(ctx context.Context, key Key, compute func() (any, error)) (any, Outcome, error) {
	for {
		start := time.Now()
		c.mu.Lock()
		c.sweepLocked(key.Version)
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			val := el.Value.(*entry).val
			c.mu.Unlock()
			c.hits.Inc()
			c.hitSeconds.ObserveSince(start)
			return val, Hit, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			c.coalesced.Inc()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
			if f.err == nil {
				c.hitSeconds.ObserveSince(start)
				return f.val, Coalesced, nil
			}
			// The leader failed. If it failed because *its* request was
			// cancelled, the result is nobody's fault but the leader's —
			// retry with this caller as the new leader while its own
			// context is still live. Genuine query errors are shared.
			if isCancellation(f.err) && ctx.Err() == nil {
				continue
			}
			return nil, Coalesced, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()
		c.misses.Inc()

		f.val, f.err = compute()
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		c.missSeconds.ObserveSince(start)
		return f.val, Miss, f.err
	}
}

// Get returns the cached value for key without computing anything.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// insertLocked adds a computed result and evicts from the LRU tail until
// the budget holds. A result whose cost alone exceeds the budget is not
// cached at all — better one big recomputation than an empty cache.
func (c *Cache) insertLocked(key Key, val any) {
	if _, ok := c.entries[key]; ok {
		return // a racing leader on the same key after a sweep; keep first
	}
	cost := Approx(val) + overheadBytes
	if cost > c.maxBytes {
		return
	}
	el := c.ll.PushFront(&entry{key: key, val: val, cost: cost})
	c.entries[key] = el
	c.used += cost
	for c.used > c.maxBytes {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		c.removeLocked(back)
		c.evictions.Inc()
	}
	c.publishLocked()
}

// SetStale installs a store-specific staleness predicate consulted during
// version sweeps instead of the default "entry version < sweep version"
// rule. Sharded stores use it to retire exactly the entries whose window
// overlaps a bumped shard (shard.DB.StaleKey) while keeping results for
// cold shards warm across tail appends. fn must be safe for concurrent
// calls and fast — it runs under the cache lock.
func (c *Cache) SetStale(fn func(Key) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stale = fn
}

// sweepLocked retires every stale entry once a lookup proves the store has
// moved on. Entries die in one O(resident) pass on the first post-append
// lookup, not via TTL decay. Staleness defaults to "computed before
// version"; SetStale refines it.
func (c *Cache) sweepLocked(version uint64) {
	if version <= c.lastVersion {
		return
	}
	c.lastVersion = version
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		key := el.Value.(*entry).key
		dead := key.Version < version
		if c.stale != nil {
			dead = c.stale(key)
		}
		if dead {
			c.removeLocked(el)
			c.invalidations.Inc()
		}
	}
	c.publishLocked()
}

// Invalidate retires every entry older than version (the push-style
// counterpart of the lazy sweep, for writers that want memory back before
// the next lookup arrives).
func (c *Cache) Invalidate(version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(version)
}

func (c *Cache) removeLocked(el *list.Element) {
	en := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, en.key)
	c.used -= en.cost
}

func (c *Cache) publishLocked() {
	c.bytesGauge.Set(float64(c.used))
	c.entriesGauge.Set(float64(c.ll.Len()))
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
