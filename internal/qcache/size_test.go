package qcache

import (
	"fmt"
	"testing"
)

func TestApproxScalars(t *testing.T) {
	if got := Approx(nil); got != 0 {
		t.Fatalf("nil = %d", got)
	}
	if got := Approx(int64(7)); got != 8 {
		t.Fatalf("int64 = %d", got)
	}
	if got := Approx("hello"); got < 5 {
		t.Fatalf("string %d should include its bytes", got)
	}
}

func TestApproxSliceScalesWithCapacity(t *testing.T) {
	small := Approx(make([]int64, 10))
	big := Approx(make([]int64, 1000))
	if big-small < 8*900 {
		t.Fatalf("slice growth not reflected: %d vs %d", small, big)
	}
	// Capacity, not length, is what the allocator holds.
	if got := Approx(make([]int64, 0, 100)); got < 800 {
		t.Fatalf("capacity not counted: %d", got)
	}
}

func TestApproxStringSliceCountsContents(t *testing.T) {
	vals := []string{"aaaaaaaaaa", "bbbbbbbbbb"}
	got := Approx(vals)
	if got < int64(2*16+20) {
		t.Fatalf("string contents not counted: %d", got)
	}
}

func TestApproxStructWalksFields(t *testing.T) {
	type row struct {
		Name   string
		Counts []int64
	}
	r := row{Name: "publisher", Counts: make([]int64, 100)}
	if got := Approx(r); got < 800 {
		t.Fatalf("struct fields not walked: %d", got)
	}
}

func TestApproxPointerDedup(t *testing.T) {
	shared := &[4096]int64{}
	type pair struct{ A, B *[4096]int64 }
	once := Approx(pair{A: shared, B: shared})
	twice := Approx(pair{A: shared, B: &[4096]int64{}})
	// The shared pointee must be counted once: two distinct arrays cost
	// roughly one more array than two aliases of the same array.
	if twice-once < 4096*8/2 {
		t.Fatalf("pointer dedup broken: aliased %d, distinct %d", once, twice)
	}
}

func TestApproxMapCountsEntries(t *testing.T) {
	m := map[string]int64{}
	for i := 0; i < 100; i++ {
		m[fmt.Sprintf("key-%03d", i)] = int64(i)
	}
	if got := Approx(m); got < 100*mapBucketOverhead {
		t.Fatalf("map entries not counted: %d", got)
	}
}
