package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(kind string, version uint64) Key {
	return Key{Kind: kind, Params: "k=10", Window: "0:100", Version: version}
}

// waitCounter polls an obs counter until it reaches want — the only way a
// test can know a waiter has joined an in-flight computation without
// reaching into the cache's internals.
func waitCounter(t *testing.T, value func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Kind: "country", Params: "k=10", Window: "0:500", Version: 3}
	if got, want := k.String(), "country?k=10@0:500#v3"; got != want {
		t.Fatalf("key %q want %q", got, want)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Bypass: "bypass", Miss: "miss", Hit: "hit", Coalesced: "coalesced"} {
		if o.String() != want {
			t.Fatalf("outcome %d = %q want %q", o, o.String(), want)
		}
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(0)
	var calls int32
	compute := func() (any, error) {
		atomic.AddInt32(&calls, 1)
		return "result", nil
	}
	v, out, err := c.Do(context.Background(), key("a", 1), compute)
	if err != nil || v != "result" || out != Miss {
		t.Fatalf("first Do: %v %v %v", v, out, err)
	}
	v, out, err = c.Do(context.Background(), key("a", 1), compute)
	if err != nil || v != "result" || out != Hit {
		t.Fatalf("second Do: %v %v %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	// A different key computes independently.
	if _, out, _ := c.Do(context.Background(), key("b", 1), compute); out != Miss {
		t.Fatalf("distinct key outcome %v, want miss", out)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestErrorsNeverCached(t *testing.T) {
	c := New(0)
	boom := errors.New("scan failed")
	var calls int32
	compute := func() (any, error) {
		atomic.AddInt32(&calls, 1)
		return nil, boom
	}
	if _, _, err := c.Do(context.Background(), key("a", 1), compute); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: %d entries", c.Len())
	}
	if _, _, err := c.Do(context.Background(), key("a", 1), compute); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not memoize)", calls)
	}
}

func TestLRUEvictionByMemoryBudget(t *testing.T) {
	val := func() any { return make([]int64, 1024) }
	cost := Approx(val()) + overheadBytes
	c := New(3*cost + 16) // room for exactly three entries
	mk := func(kind string) Key { return key(kind, 1) }

	for _, k := range []string{"a", "b", "c"} {
		if _, out, _ := c.Do(context.Background(), mk(k), func() (any, error) { return val(), nil }); out != Miss {
			t.Fatalf("%s: outcome %v", k, out)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("resident %d want 3", c.Len())
	}
	// Touch "a" so "b" is the LRU victim when "d" arrives.
	if _, ok := c.Get(mk("a")); !ok {
		t.Fatal("a missing before eviction")
	}
	if _, out, _ := c.Do(context.Background(), mk("d"), func() (any, error) { return val(), nil }); out != Miss {
		t.Fatal("d should miss")
	}
	if c.Len() != 3 {
		t.Fatalf("resident %d want 3 after eviction", c.Len())
	}
	if _, ok := c.Get(mk("b")); ok {
		t.Fatal("b survived; LRU should have evicted it")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(mk(k)); !ok {
			t.Fatalf("%s evicted; only b should have been", k)
		}
	}
	if used, max := c.UsedBytes(), c.MaxBytes(); used > max {
		t.Fatalf("used %d exceeds budget %d", used, max)
	}
}

func TestOversizedResultNotCached(t *testing.T) {
	c := New(512)
	big := make([]int64, 4096) // ~32KB, far past the 512-byte budget
	v, out, err := c.Do(context.Background(), key("big", 1), func() (any, error) { return big, nil })
	if err != nil || out != Miss {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if len(v.([]int64)) != len(big) {
		t.Fatal("oversized result must still be returned")
	}
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("oversized result was cached: %d entries, %d bytes", c.Len(), c.UsedBytes())
	}
}

func TestVersionSweepRetiresOldEntries(t *testing.T) {
	c := New(0)
	compute := func() (any, error) { return 42, nil }
	for _, k := range []string{"a", "b"} {
		if _, _, err := c.Do(context.Background(), key(k, 1), compute); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("resident %d want 2", c.Len())
	}
	// The first lookup carrying version 2 sweeps out both v1 entries.
	if _, out, _ := c.Do(context.Background(), key("a", 2), compute); out != Miss {
		t.Fatalf("post-bump outcome %v, want miss", out)
	}
	if c.Len() != 1 {
		t.Fatalf("resident %d want 1 (the fresh v2 entry)", c.Len())
	}
	if _, ok := c.Get(key("b", 1)); ok {
		t.Fatal("stale v1 entry survived the sweep")
	}
}

func TestInvalidatePush(t *testing.T) {
	c := New(0)
	if _, _, err := c.Do(context.Background(), key("a", 1), func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(2)
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("after Invalidate: %d entries, %d bytes", c.Len(), c.UsedBytes())
	}
}

func TestCoalescedWaitersShareOneComputation(t *testing.T) {
	c := New(0)
	const waiters = 8
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var calls int32
	compute := func() (any, error) {
		atomic.AddInt32(&calls, 1)
		close(leaderIn)
		<-release
		return "shared", nil
	}

	k := key("a", 1)
	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	outcomes := make([]Outcome, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], outcomes[0], _ = c.Do(context.Background(), k, compute)
	}()
	<-leaderIn

	before := c.coalesced.Value()
	for i := 1; i <= waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], outcomes[i], _ = c.Do(context.Background(), k, compute)
		}()
	}
	waitCounter(t, c.coalesced.Value, before+waiters)
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if outcomes[0] != Miss {
		t.Fatalf("leader outcome %v", outcomes[0])
	}
	for i := 1; i <= waiters; i++ {
		if outcomes[i] != Coalesced {
			t.Fatalf("waiter %d outcome %v", i, outcomes[i])
		}
		if results[i] != "shared" {
			t.Fatalf("waiter %d result %v", i, results[i])
		}
	}
}

func TestWaiterRetriesAfterLeaderCancellation(t *testing.T) {
	c := New(0)
	k := key("a", 1)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(context.Background(), k, func() (any, error) {
			close(leaderIn)
			<-release
			// What Executor.Execute returns when the leader's own request
			// context was cancelled mid-scan.
			return nil, context.Canceled
		})
	}()
	<-leaderIn

	before := c.coalesced.Value()
	type res struct {
		v   any
		out Outcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, out, err := c.Do(context.Background(), k, func() (any, error) { return "fresh", nil })
		done <- res{v, out, err}
	}()
	waitCounter(t, c.coalesced.Value, before+1)
	close(release)

	r := <-done
	wg.Wait()
	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader error %v", leaderErr)
	}
	if r.err != nil || r.v != "fresh" || r.out != Miss {
		t.Fatalf("waiter should have retried as the new leader: %v %v %v", r.v, r.out, r.err)
	}
	// The retried result is cached normally.
	if v, ok := c.Get(k); !ok || v != "fresh" {
		t.Fatalf("retried result not cached: %v %v", v, ok)
	}
}

func TestWaiterOwnContextCancelled(t *testing.T) {
	c := New(0)
	k := key("a", 1)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), k, func() (any, error) {
			close(leaderIn)
			<-release
			return "late", nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	before := c.coalesced.Value()
	type res struct {
		out Outcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		_, out, err := c.Do(ctx, k, func() (any, error) { return nil, nil })
		done <- res{out, err}
	}()
	waitCounter(t, c.coalesced.Value, before+1)
	cancel()
	r := <-done
	if !errors.Is(r.err, context.Canceled) || r.out != Coalesced {
		t.Fatalf("cancelled waiter: %v %v", r.out, r.err)
	}
	close(release)
	wg.Wait()
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("kind-%d", i%5), uint64(1+i/25))
				v, _, err := c.Do(context.Background(), k, func() (any, error) { return k.String(), nil })
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if v != k.String() {
					t.Errorf("g%d i%d: wrong value %v", g, i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
