package qcache

import (
	"context"
	"strings"
	"testing"
)

// TestSetStalePredicate: a version sweep with an installed staleness
// predicate retires exactly the entries the predicate condemns, not every
// entry of an older version — the mechanism a sharded store uses to keep
// cold-shard results warm across tail appends.
func TestSetStalePredicate(t *testing.T) {
	c := New(0)
	hot := Key{Kind: "count", Window: "iv0:96/v0.0.3", Version: 3}
	cold := Key{Kind: "count", Window: "iv0:32/v0", Version: 0}
	compute := func() (any, error) { return "x", nil }
	for _, k := range []Key{hot, cold} {
		if _, out, err := c.Do(context.Background(), k, compute); err != nil || out != Miss {
			t.Fatalf("seeding %v: outcome %v err %v", k, out, err)
		}
	}

	c.SetStale(func(k Key) bool { return strings.Contains(k.Window, "v0.0.3") })
	c.Invalidate(4) // sweep at a newer version: predicate decides, not age

	if _, ok := c.Get(hot); ok {
		t.Error("predicate-condemned entry survived the sweep")
	}
	if _, ok := c.Get(cold); !ok {
		t.Error("predicate-spared entry was retired despite its old version")
	}
}

// TestSweepDefaultWithoutPredicate: without SetStale the sweep keeps its
// original semantics — every entry older than the sweep version dies.
func TestSweepDefaultWithoutPredicate(t *testing.T) {
	c := New(0)
	old := Key{Kind: "stats", Window: "0:10", Version: 1}
	compute := func() (any, error) { return 1, nil }
	if _, _, err := c.Do(context.Background(), old, compute); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(2)
	if _, ok := c.Get(old); ok {
		t.Error("stale-by-version entry survived a sweep with no predicate installed")
	}
}
