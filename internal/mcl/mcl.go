// Package mcl implements Markov clustering (van Dongen 2000), the algorithm
// Section VI-B names for discovering clusters of heavily co-reporting — and
// likely co-owned — news websites in the symmetric co-reporting matrix.
//
// MCL simulates flow through the similarity graph: alternating expansion
// (matrix squaring, which spreads flow) and inflation (elementwise powering,
// which sharpens it) converges to a forest of attractor stars that are read
// off as clusters.
package mcl

import (
	"fmt"
	"math"
	"sort"

	"gdeltmine/internal/matrix"
)

// Options tunes the clustering.
type Options struct {
	// Inflation sharpens clusters; typical values are 1.4 (coarse) to 6
	// (fine). Zero means 2.0.
	Inflation float64
	// MaxIters bounds the expansion/inflation loop. Zero means 100.
	MaxIters int
	// Prune zeroes entries below this threshold after each inflation to
	// keep the iteration sparse-ish. Zero means 1e-6.
	Prune float64
	// SelfLoop is added to each diagonal entry before normalization, the
	// standard regularization ensuring aperiodicity. Zero means 1.0.
	SelfLoop float64
	// Epsilon is the convergence threshold on the max elementwise change
	// between rounds. Zero means 1e-9.
	Epsilon float64
}

func (o Options) withDefaults() Options {
	if o.Inflation == 0 {
		o.Inflation = 2.0
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Prune == 0 {
		o.Prune = 1e-6
	}
	if o.SelfLoop == 0 {
		o.SelfLoop = 1.0
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// Result is a clustering.
type Result struct {
	// Clusters lists node indexes per cluster, each sorted ascending;
	// clusters are ordered by size descending (ties by first node).
	Clusters [][]int
	// Iterations is the number of expansion/inflation rounds executed.
	Iterations int
	// Converged reports whether the iteration reached the epsilon fixpoint
	// before MaxIters.
	Converged bool
}

// Cluster runs MCL on a symmetric non-negative similarity matrix.
func Cluster(sim *matrix.Dense, opt Options) (*Result, error) {
	if sim.Rows != sim.Cols {
		return nil, fmt.Errorf("mcl: similarity matrix must be square, have %dx%d", sim.Rows, sim.Cols)
	}
	for _, v := range sim.Data {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("mcl: similarity entries must be non-negative, found %v", v)
		}
	}
	opt = opt.withDefaults()
	n := sim.Rows
	if n == 0 {
		return &Result{}, nil
	}

	m := sim.Clone()
	for i := 0; i < n; i++ {
		m.Add(i, i, opt.SelfLoop)
	}
	normalizeColumns(m)

	res := &Result{}
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iterations = iter + 1
		next, err := m.MatMul(m) // expansion
		if err != nil {
			return nil, err
		}
		inflate(next, opt.Inflation, opt.Prune)
		if maxDelta(m, next) < opt.Epsilon {
			m = next
			res.Converged = true
			break
		}
		m = next
	}

	res.Clusters = interpret(m)
	return res, nil
}

func normalizeColumns(m *matrix.Dense) {
	n := m.Rows
	for j := 0; j < n; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += m.At(i, j)
		}
		if sum == 0 {
			// Isolated node: make it its own attractor.
			m.Set(j, j, 1)
			continue
		}
		for i := 0; i < n; i++ {
			m.Set(i, j, m.At(i, j)/sum)
		}
	}
}

func inflate(m *matrix.Dense, power, prune float64) {
	n := m.Rows
	for j := 0; j < n; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			v := math.Pow(m.At(i, j), power)
			if v < prune {
				v = 0
			}
			m.Set(i, j, v)
			sum += v
		}
		if sum == 0 {
			m.Set(j, j, 1)
			continue
		}
		for i := 0; i < n; i++ {
			m.Set(i, j, m.At(i, j)/sum)
		}
	}
}

func maxDelta(a, b *matrix.Dense) float64 {
	var d float64
	for i := range a.Data {
		diff := math.Abs(a.Data[i] - b.Data[i])
		if diff > d {
			d = diff
		}
	}
	return d
}

// interpret reads clusters off the converged matrix: attractors are rows
// with significant diagonal mass; every node joins the cluster of the
// attractor(s) it flows to. Overlapping attractors merge via union-find.
func interpret(m *matrix.Dense) [][]int {
	n := m.Rows
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	const tol = 1e-7
	for i := 0; i < n; i++ {
		if m.At(i, i) <= tol {
			continue
		}
		// i is an attractor; everything it attracts joins it.
		for j := 0; j < n; j++ {
			if m.At(i, j) > tol {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}
