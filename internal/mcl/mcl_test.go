package mcl

import (
	"math/rand"
	"testing"

	"gdeltmine/internal/matrix"
)

// blockMatrix builds a similarity matrix with two dense blocks and weak
// background noise.
func blockMatrix(rng *rand.Rand, n1, n2 int, strong, weak float64) *matrix.Dense {
	n := n1 + n2
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := weak * rng.Float64()
			if (i < n1 && j < n1) || (i >= n1 && j >= n1) {
				v = strong * (0.5 + rng.Float64())
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestClusterRecoverTwoBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := blockMatrix(rng, 6, 9, 1.0, 0.01)
	res, err := Cluster(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters %v", res.Clusters)
	}
	// Largest cluster is the 9-block, second the 6-block.
	if len(res.Clusters[0]) != 9 || len(res.Clusters[1]) != 6 {
		t.Fatalf("cluster sizes %d %d", len(res.Clusters[0]), len(res.Clusters[1]))
	}
	for _, i := range res.Clusters[1] {
		if i >= 6 {
			t.Fatalf("block mixing: %v", res.Clusters[1])
		}
	}
}

func TestClusterPartition(t *testing.T) {
	// Whatever the structure, the clusters must partition the node set.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		m := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					v := rng.Float64()
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
			}
		}
		res, err := Cluster(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, cl := range res.Clusters {
			for _, i := range cl {
				if seen[i] {
					t.Fatalf("node %d in two clusters: %v", i, res.Clusters)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("node %d unassigned: %v", i, res.Clusters)
			}
		}
	}
}

func TestClusterIsolatedNodes(t *testing.T) {
	m := matrix.NewDense(4, 4) // no edges at all
	res, err := Cluster(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("isolated nodes should be singletons: %v", res.Clusters)
	}
}

func TestClusterEmptyAndErrors(t *testing.T) {
	res, err := Cluster(matrix.NewDense(0, 0), Options{})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	if _, err := Cluster(matrix.NewDense(2, 3), Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
	bad := matrix.NewDense(2, 2)
	bad.Set(0, 1, -1)
	if _, err := Cluster(bad, Options{}); err == nil {
		t.Fatal("negative similarity accepted")
	}
}

func TestInflationGranularity(t *testing.T) {
	// Higher inflation produces at least as many clusters.
	rng := rand.New(rand.NewSource(3))
	m := blockMatrix(rng, 8, 8, 1.0, 0.3)
	coarse, err := Cluster(m, Options{Inflation: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Cluster(m, Options{Inflation: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine.Clusters) < len(coarse.Clusters) {
		t.Fatalf("inflation 6 gave %d clusters, 1.3 gave %d",
			len(fine.Clusters), len(coarse.Clusters))
	}
}

func TestMaxItersBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := blockMatrix(rng, 5, 5, 1, 0.5)
	res, err := Cluster(m, Options{MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}
