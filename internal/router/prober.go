package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gdeltmine/internal/obs"
)

// replica is the router's per-replica runtime state: identity, breaker, and
// the latest readiness observation from the background prober.
type replica struct {
	id      string
	baseURL string
	brk     *breaker
	fails   *obs.Counter // router_replica_failures_total{replica=id}

	ready       atomic.Bool
	shardCount  atomic.Int64 // shard count reported by /readyz, 0 if unknown
	tailVersion atomic.Uint64
}

// probeOnce checks a replica's /readyz, feeding the verdict into both the
// readiness flag and the circuit breaker. Probes bypass Allow: they are the
// mechanism that moves an open breaker back to closed, so they must run even
// when the breaker would refuse traffic.
func (rt *Router) probeOnce(ctx context.Context, rep *replica) {
	cctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, rep.baseURL+"/readyz", nil)
	if err != nil {
		rep.ready.Store(false)
		rep.brk.Failure()
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.ready.Store(false)
		rep.brk.Failure()
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		rep.ready.Store(false)
		rep.brk.Failure()
		return
	}
	// Shard-aware /readyz bodies (serve.ReadyStatus) carry the shard count
	// and tail version; use them for topology discovery and drift checks.
	var st struct {
		Status string `json:"status"`
		Shards *struct {
			Count       int    `json:"count"`
			TailVersion uint64 `json:"tailVersion"`
		} `json:"shards"`
	}
	if json.Unmarshal(body, &st) == nil && st.Shards != nil {
		rep.shardCount.Store(int64(st.Shards.Count))
		rep.tailVersion.Store(st.Shards.TailVersion)
	}
	rep.ready.Store(true)
	rep.brk.Success()
}

// probeLoop polls every replica at ProbeInterval until the router closes.
// Replicas are probed concurrently so one partitioned replica's timeout
// does not delay the health verdict of the others.
func (rt *Router) probeLoop() {
	defer rt.probeDone.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		var wg sync.WaitGroup
		for _, rep := range rt.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				rt.probeOnce(rt.probeCtx, rep)
			}(rep)
		}
		wg.Wait()
		select {
		case <-rt.probeCtx.Done():
			return
		case <-tick.C:
		}
	}
}

// ProbeAll runs one synchronous probe round against every replica — used by
// tests and by Start for an immediate initial health picture instead of
// waiting a full ProbeInterval.
func (rt *Router) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probeOnce(ctx, rep)
		}(rep)
	}
	wg.Wait()
}
