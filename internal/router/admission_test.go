package router

import (
	"net/http"
	"testing"
	"time"
)

func TestAdmissionDisabledByZeroConfig(t *testing.T) {
	a := newAdmission(AdmissionConfig{}, nil)
	for i := 0; i < 100; i++ {
		release, status, _ := a.Admit("tenant")
		if release == nil {
			t.Fatalf("request %d refused with status %d under zero config", i, status)
		}
		release()
	}
}

func TestAdmissionRateLimitAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	a := newAdmission(AdmissionConfig{RatePerSec: 1, Burst: 2}, clk.now)
	for i := 0; i < 2; i++ {
		release, _, _ := a.Admit("t1")
		if release == nil {
			t.Fatalf("burst request %d refused", i)
		}
		release()
	}
	if release, status, _ := a.Admit("t1"); release != nil || status != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: release=%v status=%d, want nil/429", release != nil, status)
	}
	// Other tenants have their own buckets.
	if release, _, _ := a.Admit("t2"); release == nil {
		t.Fatal("separate tenant refused by t1's exhausted bucket")
	}
	// One second refills one token.
	clk.advance(time.Second)
	if release, _, _ := a.Admit("t1"); release == nil {
		t.Fatal("refilled bucket still refusing")
	}
}

func TestAdmissionConcurrencyCap(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2}, nil)
	r1, _, _ := a.Admit("t")
	r2, _, _ := a.Admit("t")
	if r1 == nil || r2 == nil {
		t.Fatal("requests under the cap refused")
	}
	if release, status, _ := a.Admit("t"); release != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request: release=%v status=%d, want nil/503", release != nil, status)
	}
	r1()
	r1() // double release must not free a second slot
	if release, _, _ := a.Admit("t"); release == nil {
		t.Fatal("slot not freed after release")
	}
	if release, _, _ := a.Admit("t"); release != nil {
		t.Fatal("double release freed two slots")
	}
	r2()
}

func TestAdmissionDefaultTenant(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1}, nil)
	release, _, _ := a.Admit("")
	if release == nil {
		t.Fatal("first anonymous request refused")
	}
	if r2, status, _ := a.Admit(""); r2 != nil || status != http.StatusServiceUnavailable {
		t.Fatal("anonymous requests should share one tenant bucket")
	}
	release()
}

func TestAdmissionSweepBoundsTenantTable(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	a := newAdmission(AdmissionConfig{RatePerSec: 100}, clk.now)
	for i := 0; i < maxTenantStates; i++ {
		release, _, _ := a.Admit("tenant-" + itoa(i))
		if release != nil {
			release()
		}
	}
	clk.advance(2 * time.Minute)
	if release, _, _ := a.Admit("fresh"); release == nil {
		t.Fatal("fresh tenant refused")
	}
	if n := len(a.tenants); n > 2 {
		t.Fatalf("idle tenants not swept: %d entries", n)
	}
}
