package router

import (
	"net/http"
	"sync"
	"time"

	"gdeltmine/internal/obs"
)

// AdmissionConfig tunes per-tenant admission control. Tenants are named by
// the X-Tenant request header; requests without one share the "anonymous"
// tenant, so one chatty anonymous client cannot starve named tenants. The
// zero value disables admission entirely.
type AdmissionConfig struct {
	// RatePerSec is the sustained request rate each tenant may hold; a
	// token bucket of Burst capacity absorbs spikes. Zero disables rate
	// limiting.
	RatePerSec float64
	// Burst is the token bucket capacity. Zero means max(1, RatePerSec).
	Burst int
	// MaxConcurrent caps a tenant's in-flight queries; excess requests are
	// shed with 503 rather than queued. Zero disables the cap.
	MaxConcurrent int
}

// defaultTenant buckets requests that carry no X-Tenant header.
const defaultTenant = "anonymous"

// maxTenantStates bounds the tenant table; beyond it, idle tenants are
// swept so a tenant-ID-per-request abuser cannot grow memory unboundedly.
const maxTenantStates = 4096

// tenantState is one tenant's token bucket and concurrency ledger.
type tenantState struct {
	tokens   float64
	last     time.Time // last refill instant
	inFlight int
}

// admission implements per-tenant token-bucket rate limiting plus
// concurrent-query caps. All methods are safe for concurrent use.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState

	shedRate *obs.Counter
	shedConc *obs.Counter
}

func newAdmission(cfg AdmissionConfig, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.RatePerSec)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &admission{
		cfg:     cfg,
		now:     now,
		tenants: make(map[string]*tenantState),
		shedRate: obs.Default.Counter("router_shed_total",
			"requests refused by admission control", obs.L("reason", "rate")),
		shedConc: obs.Default.Counter("router_shed_total",
			"requests refused by admission control", obs.L("reason", "concurrency")),
	}
}

// Admit decides whether a tenant's request may proceed. On admission it
// returns a non-nil release func the caller must invoke when the request
// finishes; on refusal it returns the HTTP status (429 for rate, 503 for
// concurrency) and a human-readable reason for the error envelope.
func (a *admission) Admit(tenant string) (release func(), status int, reason string) {
	if a.cfg.RatePerSec == 0 && a.cfg.MaxConcurrent == 0 {
		return func() {}, 0, ""
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.tenants[tenant]
	if st == nil {
		if len(a.tenants) >= maxTenantStates {
			a.sweepLocked()
		}
		st = &tenantState{tokens: float64(a.cfg.Burst), last: a.now()}
		a.tenants[tenant] = st
	}
	// Concurrency first: an over-cap tenant should not also burn a token.
	if a.cfg.MaxConcurrent > 0 && st.inFlight >= a.cfg.MaxConcurrent {
		a.shedConc.Inc()
		return nil, http.StatusServiceUnavailable,
			"tenant concurrency cap reached: " + itoa(a.cfg.MaxConcurrent) + " queries in flight"
	}
	if a.cfg.RatePerSec > 0 {
		now := a.now()
		st.tokens += now.Sub(st.last).Seconds() * a.cfg.RatePerSec
		st.last = now
		if st.tokens > float64(a.cfg.Burst) {
			st.tokens = float64(a.cfg.Burst)
		}
		if st.tokens < 1 {
			a.shedRate.Inc()
			return nil, http.StatusTooManyRequests, "tenant rate limit exceeded"
		}
		st.tokens--
	}
	st.inFlight++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			st.inFlight--
			a.mu.Unlock()
		})
	}, 0, ""
}

// sweepLocked evicts idle, fully-refilled tenants — pure bookkeeping
// entries whose state is indistinguishable from a fresh one.
func (a *admission) sweepLocked() {
	cutoff := a.now().Add(-time.Minute)
	for id, st := range a.tenants {
		if st.inFlight == 0 && st.last.Before(cutoff) {
			delete(a.tenants, id)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
