package router

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker("r0", 3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if b.State() != "open" {
		t.Fatalf("state %q, want open", b.State())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker("r0", 2, time.Second, nil)
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker("r0", 1, time.Second, clk.now)
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	if b.canTry() {
		t.Fatal("canTry should mirror open state before cooldown")
	}
	clk.advance(time.Second)
	if !b.canTry() {
		t.Fatal("canTry should allow after cooldown")
	}
	// First Allow consumes the single half-open probe slot.
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe allowed")
	}
	// Probe failure reopens and restarts the cooldown.
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state %q after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker reusable immediately after failed probe")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}
