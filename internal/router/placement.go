package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Placement maps shard groups onto replicas with a consistent hash ring:
// every replica contributes VNodes virtual points; a group's key hashes to
// a ring position and its replica set is the next R distinct replicas
// clockwise. Adding or removing one replica therefore moves only the
// groups whose arcs it owned — the property that lets a fleet grow without
// a full reshuffle. The same ring also yields the per-query preference
// order (affinity routing): identical queries hash to the same primary
// replica, concentrating result-cache hits instead of spraying them.

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// replica index.
type ringPoint struct {
	hash    uint64
	replica int
}

// ring is an immutable consistent hash ring over replica indices.
type ring struct {
	points []ringPoint
	n      int // distinct replicas
}

// defaultVNodes balances group placement to within a few percent for small
// fleets without making ring construction noticeable.
const defaultVNodes = 64

// buildRing places vnodes virtual points per replica ID.
func buildRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{n: len(ids), points: make([]ringPoint, 0, len(ids)*vnodes)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(v)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.replica < q.replica // total order: ties never flip placement
	})
	return r
}

// successors returns the first n distinct replica indices clockwise from
// key's ring position — the placement of a group, or the preference order
// of a query when n covers every replica.
func (r *ring) successors(key string, n int) []int {
	if r.n == 0 {
		return nil
	}
	if n > r.n {
		n = r.n
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// hash64 hashes a string onto the ring. FNV-1a alone clusters badly on
// short strings that differ only in a suffix digit ("r0#1" vs "r0#2"),
// which would hand one replica giant contiguous arcs; the murmur-style
// finalizer scatters those near-collisions across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit avalanche finalizer from MurmurHash3/SplitMix64.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// groupShards returns the contiguous shard index ranges of G groups tiling
// [0, K): group g owns shards [g*K/G, (g+1)*K/G). Contiguity matters —
// time-partitioned shards make a group a contiguous capture-time range, so
// a whole-group outage is an explainable hole in the timeline, not
// confetti.
func groupShards(shards, groups int) [][]int {
	out := make([][]int, groups)
	for g := 0; g < groups; g++ {
		lo, hi := g*shards/groups, (g+1)*shards/groups
		for s := lo; s < hi; s++ {
			out[g] = append(out[g], s)
		}
	}
	return out
}

// validateTopology checks the shard/group/replication geometry once at
// construction, so every later routing decision can assume it.
func validateTopology(shards, groups, replication, replicas int) error {
	if replicas == 0 {
		return fmt.Errorf("router: no replicas configured")
	}
	if shards < 1 {
		return fmt.Errorf("router: shard count %d, want >= 1", shards)
	}
	if groups < 1 || groups > shards {
		return fmt.Errorf("router: %d groups for %d shards, want 1 <= groups <= shards", groups, shards)
	}
	if replication < 1 {
		return fmt.Errorf("router: replication factor %d, want >= 1", replication)
	}
	return nil
}
