package router

import (
	"reflect"
	"strconv"
	"testing"
)

func TestRingSuccessorsDeterministicAndDistinct(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	a := buildRing(ids, 0)
	b := buildRing(ids, 0)
	for _, key := range []string{"g|0", "g|1", "q|/api/v1/stats|", "q|/api/v1/count|from=1"} {
		got := a.successors(key, 4)
		if !reflect.DeepEqual(got, b.successors(key, 4)) {
			t.Fatalf("%s: ring placement not deterministic", key)
		}
		if len(got) != 4 {
			t.Fatalf("%s: got %d replicas, want 4", key, len(got))
		}
		seen := map[int]bool{}
		for _, idx := range got {
			if seen[idx] {
				t.Fatalf("%s: replica %d repeated in %v", key, idx, got)
			}
			seen[idx] = true
		}
	}
}

func TestRingSpreadsPrimaries(t *testing.T) {
	r := buildRing([]string{"r0", "r1", "r2", "r3"}, 0)
	primaries := map[int]int{}
	for i := 0; i < 200; i++ {
		primaries[r.successors("key-"+strconv.Itoa(i), 1)[0]]++
	}
	for idx := 0; idx < 4; idx++ {
		if primaries[idx] == 0 {
			t.Fatalf("replica %d never primary across 200 keys: %v", idx, primaries)
		}
	}
}

func TestRingSuccessorsClampAndEmpty(t *testing.T) {
	if got := buildRing(nil, 0).successors("k", 2); got != nil {
		t.Fatalf("empty ring: got %v", got)
	}
	if got := buildRing([]string{"a", "b"}, 8).successors("k", 5); len(got) != 2 {
		t.Fatalf("want clamp to 2 replicas, got %v", got)
	}
}

func TestGroupShardsTilesContiguously(t *testing.T) {
	cases := []struct {
		shards, groups int
		want           [][]int
	}{
		{4, 2, [][]int{{0, 1}, {2, 3}}},
		{5, 2, [][]int{{0, 1}, {2, 3, 4}}},
		{3, 3, [][]int{{0}, {1}, {2}}},
		{6, 1, [][]int{{0, 1, 2, 3, 4, 5}}},
	}
	for _, c := range cases {
		if got := groupShards(c.shards, c.groups); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("groupShards(%d, %d) = %v, want %v", c.shards, c.groups, got, c.want)
		}
	}
}

func TestValidateTopology(t *testing.T) {
	if err := validateTopology(4, 2, 2, 4); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	for _, c := range [][4]int{
		{4, 2, 2, 0}, // no replicas
		{0, 1, 1, 2}, // no shards
		{4, 5, 1, 2}, // more groups than shards
		{4, 0, 1, 2}, // zero groups
		{4, 2, 0, 2}, // zero replication
	} {
		if err := validateTopology(c[0], c[1], c[2], c[3]); err == nil {
			t.Fatalf("validateTopology(%v) accepted", c)
		}
	}
}
