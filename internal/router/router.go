// Package router is the replicated scatter/gather tier in front of a fleet
// of gdeltserve replicas. Shards are tiled into contiguous groups; each
// group is an availability domain placed on R replicas by consistent
// hashing. Queries are routed to one healthy replica by affinity hashing,
// with jittered hedged retries against the next candidate when the primary
// is slow ("The Tail at Scale"), per-try timeouts, and per-replica circuit
// breakers fed by both live traffic and a background /readyz prober. When a
// whole group is unreachable the router degrades gracefully: it restricts
// the query to the shards that are still available and answers 200 with
// explicit coverage metadata instead of a 5xx — a partial timeline beats a
// dead API. Per-tenant admission control (token buckets plus concurrency
// caps on the X-Tenant header) sheds overload before it reaches the fleet.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gdeltmine/internal/registry"
)

// Replica names one upstream gdeltserve process.
type Replica struct {
	ID  string // stable identity used for placement and metrics
	URL string // base URL, e.g. http://10.0.0.7:8080
}

// Config assembles a Router. Zero values get conservative defaults; only
// Replicas and Shards are mandatory.
type Config struct {
	// Replicas is the upstream fleet. Every replica serves the full sharded
	// dataset; groups assign them availability responsibilities.
	Replicas []Replica
	// Shards is the shard count K of the dataset the fleet serves.
	Shards int
	// Groups tiles [0, Shards) into this many contiguous availability
	// domains. Zero means 1 (the whole dataset is one failure domain).
	Groups int
	// Replication is how many replicas back each group. Zero means 2,
	// clamped to the fleet size.
	Replication int
	// VNodes is the virtual nodes per replica on the placement ring. Zero
	// means 64.
	VNodes int
	// Placement overrides ring placement: Placement[g] lists the replica IDs
	// backing group g. Tests and hand-operated fleets use this; when nil the
	// consistent hash ring decides.
	Placement [][]string
	// PerTryTimeout bounds each individual attempt. Zero means 5s.
	PerTryTimeout time.Duration
	// HedgeDelay is how long to wait on the primary before launching a
	// duplicate attempt on the next candidate. Zero disables hedging.
	HedgeDelay time.Duration
	// HedgeJitter spreads the hedge delay by ±this fraction so a fleet of
	// routers does not hedge in lockstep. Negative means 0.2; zero is
	// honored (no jitter) when set explicitly via -1 semantics is avoided:
	// values outside [0, 1] are clamped.
	HedgeJitter float64
	// MaxAttempts caps total attempts (first try + hedges + retries) per
	// coverage round. Zero means 3.
	MaxAttempts int
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's circuit breaker. Zero means 3.
	BreakerThreshold int
	// BreakerCooldown is the open -> half-open delay. Zero means 5s.
	BreakerCooldown time.Duration
	// ProbeInterval is the background /readyz polling period. Zero disables
	// the prober; breakers are then fed by live traffic only.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe. Zero means 2s.
	ProbeTimeout time.Duration
	// Admission is the per-tenant rate and concurrency policy.
	Admission AdmissionConfig
	// Seed drives hedge jitter. Zero is a valid seed.
	Seed int64
	// Transport overrides the upstream HTTP transport (tests inject the
	// httptest client); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Router routes /api/v1 queries across the replica fleet.
type Router struct {
	cfg      Config
	replicas []*replica
	byID     map[string]int
	ring     *ring
	groups   [][]int // group -> shard indices
	place    [][]int // group -> replica indices
	adm      *admission
	met      *metrics
	client   *http.Client
	mux      *http.ServeMux

	rngMu sync.Mutex
	rng   *rand.Rand

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeDone   sync.WaitGroup
	started     bool
}

// New validates the topology and builds a router. Call Start to begin
// background probing and Close to stop it.
func New(cfg Config) (*Router, error) {
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.Replication == 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Replicas) {
		cfg.Replication = len(cfg.Replicas)
	}
	if err := validateTopology(cfg.Shards, cfg.Groups, cfg.Replication, len(cfg.Replicas)); err != nil {
		return nil, err
	}
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = 5 * time.Second
	}
	if cfg.HedgeJitter < 0 {
		cfg.HedgeJitter = 0.2
	}
	if cfg.HedgeJitter > 1 {
		cfg.HedgeJitter = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	rt := &Router{
		cfg:    cfg,
		byID:   make(map[string]int, len(cfg.Replicas)),
		groups: groupShards(cfg.Shards, cfg.Groups),
		adm:    newAdmission(cfg.Admission, nil),
		met:    newMetrics(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		client: &http.Client{Transport: cfg.Transport},
	}
	ids := make([]string, len(cfg.Replicas))
	for i, rep := range cfg.Replicas {
		if rep.ID == "" {
			return nil, fmt.Errorf("router: replica %d has no ID", i)
		}
		if _, dup := rt.byID[rep.ID]; dup {
			return nil, fmt.Errorf("router: duplicate replica ID %q", rep.ID)
		}
		ids[i] = rep.ID
		rt.byID[rep.ID] = i
		rt.replicas = append(rt.replicas, &replica{
			id:      rep.ID,
			baseURL: strings.TrimRight(rep.URL, "/"),
			brk:     newBreaker(rep.ID, cfg.BreakerThreshold, cfg.BreakerCooldown, nil),
			fails:   replicaFailures(rep.ID),
		})
	}
	rt.ring = buildRing(ids, cfg.VNodes)
	if cfg.Placement != nil {
		if len(cfg.Placement) != cfg.Groups {
			return nil, fmt.Errorf("router: placement names %d groups, topology has %d", len(cfg.Placement), cfg.Groups)
		}
		rt.place = make([][]int, cfg.Groups)
		for g, members := range cfg.Placement {
			if len(members) == 0 {
				return nil, fmt.Errorf("router: group %d placement is empty", g)
			}
			for _, id := range members {
				idx, ok := rt.byID[id]
				if !ok {
					return nil, fmt.Errorf("router: group %d placed on unknown replica %q", g, id)
				}
				rt.place[g] = append(rt.place[g], idx)
			}
		}
	} else {
		rt.place = make([][]int, cfg.Groups)
		for g := range rt.place {
			rt.place[g] = rt.ring.successors("g|"+strconv.Itoa(g), cfg.Replication)
		}
	}
	rt.probeCtx, rt.probeCancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/", rt.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/routez", rt.handleRoutez)
	mux.HandleFunc("/metrics", handleMetrics)
	rt.mux = mux
	return rt, nil
}

// Start runs one synchronous probe round for an immediate health picture,
// then begins background probing if ProbeInterval is set.
func (rt *Router) Start() {
	if rt.started {
		return
	}
	rt.started = true
	if rt.cfg.ProbeInterval > 0 {
		rt.ProbeAll(rt.probeCtx)
		rt.probeDone.Add(1)
		go rt.probeLoop()
	}
}

// Close stops background probing and waits for it to exit.
func (rt *Router) Close() {
	rt.probeCancel()
	rt.probeDone.Wait()
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Placement returns the replica IDs backing each group, in group order.
func (rt *Router) Placement() [][]string {
	out := make([][]string, len(rt.place))
	for g, members := range rt.place {
		for _, idx := range members {
			out[g] = append(out[g], rt.replicas[idx].id)
		}
	}
	return out
}

// PreferenceOrder returns the replica IDs in the affinity order a query for
// (path, rawQuery) would try them — the introspection hook chaos tests use
// to slow or kill "the primary" without guessing ring hashes.
func (rt *Router) PreferenceOrder(path, rawQuery string) []string {
	order := rt.ring.successors(queryKey(path, rawQuery), len(rt.replicas))
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = rt.replicas[idx].id
	}
	return out
}

func queryKey(path, rawQuery string) string {
	return "q|" + path + "|" + rawQuery
}

// coverage is one routing round's view of shard availability.
type coverage struct {
	shards  []int // available shard indices, sorted
	missing []int // unavailable shard indices, sorted
	total   int
}

func (c coverage) full() bool { return len(c.missing) == 0 }

// computeCoverage decides which shards are answerable right now: a group's
// shards are available iff at least one of its replicas is usable. The
// failed set carries replicas that already failed within this request, so
// the second routing round can degrade without waiting for breakers or
// probes to notice the outage.
func (rt *Router) computeCoverage(failed map[int]bool) coverage {
	c := coverage{total: rt.cfg.Shards}
	for g, members := range rt.place {
		up := false
		for _, idx := range members {
			if !failed[idx] && rt.replicas[idx].brk.canTry() {
				up = true
				break
			}
		}
		if up {
			c.shards = append(c.shards, rt.groups[g]...)
		} else {
			c.missing = append(c.missing, rt.groups[g]...)
		}
	}
	sort.Ints(c.shards)
	sort.Ints(c.missing)
	return c
}

// candidates returns replica indices in affinity order, restricted to
// usable replicas that belong to an available group — the authority
// discipline: a replica whose every group is down is not consulted even if
// its process still answers.
func (rt *Router) candidates(path, rawQuery string, failed map[int]bool) []int {
	usable := make(map[int]bool)
	for _, members := range rt.place {
		anyUp := false
		for _, idx := range members {
			if !failed[idx] && rt.replicas[idx].brk.canTry() {
				anyUp = true
			}
		}
		if anyUp {
			for _, idx := range members {
				if !failed[idx] && rt.replicas[idx].brk.canTry() {
					usable[idx] = true
				}
			}
		}
	}
	order := rt.ring.successors(queryKey(path, rawQuery), len(rt.replicas))
	out := make([]int, 0, len(usable))
	for _, idx := range order {
		if usable[idx] {
			out = append(out, idx)
		}
	}
	return out
}

// hedgeDelay returns the jittered delay before launching a duplicate
// attempt: HedgeDelay * (1 - j + j*U), U uniform in [0, 1).
func (rt *Router) hedgeDelay() time.Duration {
	j := rt.cfg.HedgeJitter
	if j == 0 {
		return rt.cfg.HedgeDelay
	}
	rt.rngMu.Lock()
	u := rt.rng.Float64()
	rt.rngMu.Unlock()
	return time.Duration(float64(rt.cfg.HedgeDelay) * (1 - j + j*u))
}

// upstreamResult is one attempt's outcome.
type upstreamResult struct {
	idx    int // replica index
	hedged bool
	status int
	header http.Header
	body   []byte
	err    error
}

// ok reports whether the attempt counts as a replica success: any response
// the replica produced deliberately, including 4xx. Only transport errors
// and 5xx are replica failures.
func (u upstreamResult) ok() bool { return u.err == nil && u.status < 500 }

// tryReplica performs one upstream attempt with the per-try timeout,
// reading the body fully so a won race can be replayed to the client.
func (rt *Router) tryReplica(ctx context.Context, idx int, path, rawQuery string, hdr http.Header, hedged bool) upstreamResult {
	rep := rt.replicas[idx]
	cctx, cancel := context.WithTimeout(ctx, rt.cfg.PerTryTimeout)
	defer cancel()
	u := rep.baseURL + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, u, nil)
	if err != nil {
		return upstreamResult{idx: idx, hedged: hedged, err: err}
	}
	for _, h := range []string{"X-Tenant", "Accept", "Accept-Encoding"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return upstreamResult{idx: idx, hedged: hedged, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return upstreamResult{idx: idx, hedged: hedged, err: err}
	}
	return upstreamResult{idx: idx, hedged: hedged, status: resp.StatusCode, header: resp.Header, body: body}
}

// scatter races candidates for one coverage round: the first candidate
// starts immediately, a jittered hedge timer duplicates the request onto
// the next candidate, and any failure launches the next candidate at once.
// The first success wins and cancels the rest. Replicas that failed are
// recorded in failed for the caller's coverage recomputation.
func (rt *Router) scatter(ctx context.Context, cand []int, path, rawQuery string, hdr http.Header, failed map[int]bool) (upstreamResult, bool) {
	if len(cand) == 0 {
		return upstreamResult{}, false
	}
	max := rt.cfg.MaxAttempts
	if max > len(cand) {
		max = len(cand)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan upstreamResult, max)
	launched, inFlight := 0, 0
	launch := func(hedged bool) {
		idx := cand[launched]
		launched++
		inFlight++
		go func() {
			results <- rt.tryReplica(cctx, idx, path, rawQuery, hdr, hedged)
		}()
	}
	launch(false)
	var hedge <-chan time.Time
	if rt.cfg.HedgeDelay > 0 && launched < max {
		t := time.NewTimer(rt.hedgeDelay())
		defer t.Stop()
		hedge = t.C
	}
	for inFlight > 0 {
		select {
		case <-ctx.Done():
			return upstreamResult{}, false
		case <-hedge:
			hedge = nil
			if launched < max {
				rt.met.hedges.Inc()
				launch(true)
			}
		case res := <-results:
			inFlight--
			if res.ok() {
				rt.replicas[res.idx].brk.Success()
				if res.hedged {
					rt.met.hedgeWins.Inc()
				}
				return res, true
			}
			rt.replicas[res.idx].brk.Failure()
			rt.replicas[res.idx].fails.Inc()
			failed[res.idx] = true
			if launched < max {
				rt.met.retries.Inc()
				launch(false)
			}
		}
	}
	return upstreamResult{}, false
}

// handleQuery is the scatter/gather entry point for /api/v1/<kind>.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer rt.met.latency.ObserveSince(start)
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/")
	d, ok := registry.Lookup(name)
	if !ok {
		routerError(w, http.StatusNotFound, name, "unknown query kind %q", name)
		return
	}
	release, status, reason := rt.adm.Admit(r.Header.Get("X-Tenant"))
	if release == nil {
		routerError(w, status, d.Kind, "%s", reason)
		return
	}
	defer release()

	// Up to two coverage rounds: the first uses the breaker/probe view; if
	// an undetected outage burned every attempt, the second recomputes
	// coverage excluding the replicas that just failed and retries degraded.
	failed := make(map[int]bool)
	for round := 0; round < 2; round++ {
		cov := rt.computeCoverage(failed)
		if len(cov.shards) == 0 {
			rt.met.unavail.Inc()
			routerError(w, http.StatusServiceUnavailable, d.Kind, "no shard group reachable (%d shards down)", cov.total)
			return
		}
		rawQuery := r.URL.RawQuery
		if !cov.full() {
			// Restrict the query to available shards; appended last, the
			// restriction wins over any client-supplied shards parameter.
			restrict := registry.ParamShards + "=" + joinInts(cov.shards)
			if rawQuery != "" {
				rawQuery += "&" + restrict
			} else {
				rawQuery = restrict
			}
		}
		cand := rt.candidates(r.URL.Path, r.URL.RawQuery, failed)
		res, won := rt.scatter(r.Context(), cand, r.URL.Path, rawQuery, r.Header, failed)
		if won {
			rt.writeResult(w, res, cov)
			return
		}
		if r.Context().Err() != nil {
			routerError(w, http.StatusServiceUnavailable, d.Kind, "request canceled")
			return
		}
	}
	rt.met.unavail.Inc()
	routerError(w, http.StatusBadGateway, d.Kind, "all replicas failed")
}

// writeResult replays the winning upstream response with coverage metadata.
// Full-coverage bodies are byte-identical to what the replica served.
func (rt *Router) writeResult(w http.ResponseWriter, res upstreamResult, cov coverage) {
	h := w.Header()
	for _, name := range []string{"Content-Type", "X-Cache"} {
		if v := res.header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set("X-Gdelt-Replica", rt.replicas[res.idx].id)
	h.Set("X-Gdelt-Shards", fmt.Sprintf("%d/%d", len(cov.shards), cov.total))
	if cov.full() {
		h.Set("X-Gdelt-Coverage", "full")
		rt.met.coverFull.Inc()
	} else {
		h.Set("X-Gdelt-Coverage", "partial")
		h.Set("X-Gdelt-Missing-Shards", joinInts(cov.missing))
		rt.met.coverPart.Inc()
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// handleReadyz reports the router's own readiness in coverage terms: ready
// when every group is reachable, degraded (still 200 — the router can
// answer, partially) when some are, 503 when none are.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	cov := rt.computeCoverage(nil)
	st := struct {
		Status        string `json:"status"`
		ShardsTotal   int    `json:"shardsTotal"`
		ShardsServing int    `json:"shardsServing"`
		MissingShards []int  `json:"missingShards,omitempty"`
	}{Status: "ready", ShardsTotal: cov.total, ShardsServing: len(cov.shards), MissingShards: cov.missing}
	code := http.StatusOK
	switch {
	case len(cov.shards) == 0:
		st.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case !cov.full():
		st.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

// handleRoutez dumps the routing topology and per-replica health for
// operators: which shards each group holds, who backs it, breaker states.
func (rt *Router) handleRoutez(w http.ResponseWriter, r *http.Request) {
	type replicaz struct {
		ID      string `json:"id"`
		URL     string `json:"url"`
		Breaker string `json:"breaker"`
		Ready   bool   `json:"ready"`
		Shards  int64  `json:"shards,omitempty"`
	}
	type groupz struct {
		Shards   []int    `json:"shards"`
		Replicas []string `json:"replicas"`
		Up       bool     `json:"up"`
	}
	out := struct {
		Shards   int        `json:"shards"`
		Groups   []groupz   `json:"groups"`
		Replicas []replicaz `json:"replicas"`
	}{Shards: rt.cfg.Shards}
	for g, members := range rt.place {
		gz := groupz{Shards: rt.groups[g]}
		for _, idx := range members {
			rep := rt.replicas[idx]
			gz.Replicas = append(gz.Replicas, rep.id)
			if rep.brk.canTry() {
				gz.Up = true
			}
		}
		out.Groups = append(out.Groups, gz)
	}
	for _, rep := range rt.replicas {
		out.Replicas = append(out.Replicas, replicaz{
			ID: rep.id, URL: rep.baseURL, Breaker: rep.brk.State(),
			Ready: rep.ready.Load(), Shards: rep.shardCount.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// routerError writes the same error envelope gdeltserve uses, so clients
// see one error shape whether they talk to a replica or the router.
func routerError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Kind  string `json:"kind,omitempty"`
		Query string `json:"query,omitempty"`
	}{fmt.Sprintf(format, args...), kind, kind})
}

func joinInts(v []int) string {
	var b strings.Builder
	for i, n := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}
