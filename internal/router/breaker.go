package router

import (
	"sync"
	"time"

	"gdeltmine/internal/obs"
)

// breaker is a per-replica circuit breaker with the classic three-state
// machine:
//
//	closed ──(threshold consecutive failures)──> open
//	open ──(cooldown elapsed)──> half-open
//	half-open ──(probe succeeds)──> closed
//	half-open ──(probe fails)──> open (cooldown restarts)
//
// Failures are replica failures only — transport errors, per-try timeouts
// and upstream 5xx. Client-shaped responses (2xx–4xx) count as successes:
// a replica faithfully returning 400s is healthy. Both live traffic and
// the background /readyz prober feed the same breaker, so an idle router
// still notices a replica dying, and a recovered replica is closed again
// by the next probe without waiting for a user request to gamble on it.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breaker struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time
	trips     *obs.Counter

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe request is in flight
}

func newBreaker(replicaID string, threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		trips: obs.Default.Counter("router_breaker_trips_total",
			"circuit breaker trips per replica", obs.L("replica", replicaID)),
	}
}

// Allow reports whether a request may be sent to the replica, consuming
// the single half-open probe slot when the cooldown has elapsed.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// canTry is the side-effect-free preview of Allow, used when computing
// coverage and candidate orders without consuming the half-open slot.
func (b *breaker) canTry() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default:
		return true
	}
}

// Success records a healthy interaction and closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a replica failure, tripping the breaker at the
// threshold and re-opening a failed half-open probe.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips.Inc()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips.Inc()
		}
	}
}

// State names the current state for /routez and tests.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
