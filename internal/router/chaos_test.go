package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/faults"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/serve"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// The chaos battery drives a real 4-replica, 2-group fleet: every replica
// is an httptest gdeltserve wrapped in a faults.ReplicaChaos middleware, so
// scenarios kill, slow and partition replicas deterministically and the
// router's failover is observed end to end against a monolith reference.

var chaosDB *store.DB

func chaosData(t testing.TB) *store.DB {
	t.Helper()
	if chaosDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		chaosDB = res.DB
	}
	return chaosDB
}

type chaosHarness struct {
	mono  *httptest.Server
	chaos *faults.ReplicaChaos
	reps  map[string]*httptest.Server
	rt    *Router
	front *httptest.Server
}

var chaosReplicaIDs = []string{"r0", "r1", "r2", "r3"}

// newChaosHarness builds the fleet: K=4 shards, 2 groups (shards {0,1} on
// r0/r1, shards {2,3} on r2/r3), every replica serving the full sharded
// dataset, plus an unsharded monolith as the bit-identical reference.
func newChaosHarness(t *testing.T, plan faults.ReplicaPlan, mut func(*Config)) *chaosHarness {
	t.Helper()
	db := chaosData(t)
	sdb, err := shard.Split(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := &chaosHarness{
		chaos: faults.NewReplicaChaos(plan),
		reps:  make(map[string]*httptest.Server),
	}
	h.mono = httptest.NewServer(serve.New(db))
	t.Cleanup(h.mono.Close)
	var replicas []Replica
	for _, id := range chaosReplicaIDs {
		srv := httptest.NewServer(h.chaos.Middleware(id, serve.NewSharded(sdb, serve.Config{})))
		t.Cleanup(srv.Close)
		h.reps[id] = srv
		replicas = append(replicas, Replica{ID: id, URL: srv.URL})
	}
	cfg := Config{
		Replicas:         replicas,
		Shards:           4,
		Groups:           2,
		Replication:      2,
		Placement:        [][]string{{"r0", "r1"}, {"r2", "r3"}},
		PerTryTimeout:    5 * time.Second,
		MaxAttempts:      4,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		ProbeTimeout:     2 * time.Second,
		Seed:             42,
	}
	if mut != nil {
		mut(&cfg)
	}
	h.rt, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.rt.Close)
	h.front = httptest.NewServer(h.rt)
	t.Cleanup(h.front.Close)
	return h
}

// get fetches base+path+query and returns status, body and headers.
func get(t *testing.T, base, path, query string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	u := base + path
	if query != "" {
		u += "?" + query
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// topTheme resolves a real theme name for theme-trends queries.
func topTheme(t *testing.T, h *chaosHarness) string {
	t.Helper()
	code, body, _ := get(t, h.mono.URL, "/api/v1/themes", "k=1", nil)
	if code != http.StatusOK {
		t.Fatalf("themes: status %d: %s", code, body)
	}
	var rows []struct{ Theme string }
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("dataset has no themes")
	}
	return rows[0].Theme
}

// queryFor supplies the parameters a kind needs to answer 200.
func queryFor(d *registry.Descriptor, theme string) string {
	if d.Kind == "theme-trends" {
		return "theme=" + url.QueryEscape(theme)
	}
	return ""
}

// requireMonolithMatch fetches every registered kind through the router and
// requires status and body to be bit-identical to the monolith, with full
// coverage advertised.
func requireMonolithMatch(t *testing.T, h *chaosHarness) {
	t.Helper()
	theme := topTheme(t, h)
	for _, d := range registry.All() {
		path := "/api/v1/" + d.Kind
		q := queryFor(d, theme)
		wantCode, wantBody, _ := get(t, h.mono.URL, path, q, nil)
		gotCode, gotBody, hdr := get(t, h.front.URL, path, q, nil)
		if gotCode != wantCode {
			t.Fatalf("%s: routed status %d, monolith %d: %s", d.Kind, gotCode, wantCode, gotBody)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("%s: routed body differs from monolith\nrouted:   %.200s\nmonolith: %.200s",
				d.Kind, gotBody, wantBody)
		}
		if cov := hdr.Get("X-Gdelt-Coverage"); cov != "full" {
			t.Fatalf("%s: coverage %q, want full", d.Kind, cov)
		}
		if sh := hdr.Get("X-Gdelt-Shards"); sh != "4/4" {
			t.Fatalf("%s: shards %q, want 4/4", d.Kind, sh)
		}
		if hdr.Get("X-Gdelt-Replica") == "" {
			t.Fatalf("%s: no X-Gdelt-Replica header", d.Kind)
		}
	}
}

func TestChaosAllHealthyMatchesMonolith(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	requireMonolithMatch(t, h)
}

func TestChaosOneReplicaPerGroupDownStaysFull(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	// One replica of each group dies; the survivor keeps the group up, so
	// every kind must still answer full-coverage and bit-identical.
	h.chaos.Set("r1", faults.ReplicaDead)
	h.chaos.Set("r3", faults.ReplicaDead)
	requireMonolithMatch(t, h)
	stats := h.chaos.Stats()
	if stats[faults.ReplicaDead] == 0 {
		t.Fatal("dead replicas were never consulted — failover untested")
	}
}

func TestChaosWholeGroupDownDegradesToPartial(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	// Kill both replicas of group 1 (shards 2,3) and let one probe round
	// trip their breakers (threshold 1).
	h.chaos.Set("r2", faults.ReplicaDead)
	h.chaos.Set("r3", faults.ReplicaDead)
	h.rt.ProbeAll(context.Background())

	theme := topTheme(t, h)
	partBefore := h.rt.met.coverPart.Value()
	for _, d := range registry.All() {
		path := "/api/v1/" + d.Kind
		q := queryFor(d, theme)
		gotCode, gotBody, hdr := get(t, h.front.URL, path, q, nil)
		// The survivors answer restricted to shards 0,1 — never a 5xx.
		wantQ := "shards=0,1"
		if q != "" {
			wantQ = q + "&" + wantQ
		}
		wantCode, wantBody, _ := get(t, h.reps["r0"].URL, path, wantQ, nil)
		if gotCode != wantCode || gotCode >= 500 {
			t.Fatalf("%s: routed status %d, direct restricted %d: %s", d.Kind, gotCode, wantCode, gotBody)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("%s: routed partial body differs from direct shards=0,1 body\nrouted: %.200s\ndirect: %.200s",
				d.Kind, gotBody, wantBody)
		}
		if cov := hdr.Get("X-Gdelt-Coverage"); cov != "partial" {
			t.Fatalf("%s: coverage %q, want partial", d.Kind, cov)
		}
		if sh := hdr.Get("X-Gdelt-Shards"); sh != "2/4" {
			t.Fatalf("%s: shards %q, want 2/4", d.Kind, sh)
		}
		if miss := hdr.Get("X-Gdelt-Missing-Shards"); miss != "2,3" {
			t.Fatalf("%s: missing shards %q, want 2,3", d.Kind, miss)
		}
	}
	if h.rt.met.coverPart.Value() == partBefore {
		t.Fatal("partial coverage counter did not advance")
	}

	// The router's own /readyz reports the degradation.
	code, body, _ := get(t, h.front.URL, "/readyz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("degraded /readyz status %d", code)
	}
	var rz struct {
		Status        string `json:"status"`
		ShardsServing int    `json:"shardsServing"`
		MissingShards []int  `json:"missingShards"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Status != "degraded" || rz.ShardsServing != 2 || len(rz.MissingShards) != 2 {
		t.Fatalf("degraded /readyz body %s", body)
	}
}

func TestChaosFirstQueryAfterOutageDegradesWithoutProbe(t *testing.T) {
	// Even before any probe or breaker has noticed the outage, the very
	// first query must degrade within one request: round one burns its
	// attempts on the dead group, round two recomputes coverage from those
	// in-request failures and retries restricted to the surviving shards.
	h := newChaosHarness(t, faults.ReplicaPlan{}, func(cfg *Config) {
		cfg.BreakerThreshold = 100 // breakers stay closed: only in-request evidence
		cfg.MaxAttempts = 2        // round one can exhaust on the dead pair
	})
	h.chaos.Set("r2", faults.ReplicaDead)
	h.chaos.Set("r3", faults.ReplicaDead)
	// Find a query whose top two affinity preferences are both dead, so
	// round one genuinely exhausts its attempts before the degraded retry.
	// The workers parameter changes the affinity key but not the answer.
	query := ""
	for i := 1; i <= 256; i++ {
		q := "workers=" + strconv.Itoa(i)
		ord := h.rt.PreferenceOrder("/api/v1/stats", q)
		if (ord[0] == "r2" || ord[0] == "r3") && (ord[1] == "r2" || ord[1] == "r3") {
			query = q
			break
		}
	}
	if query == "" {
		t.Fatal("no affinity key front-loads the dead pair — widen the search")
	}
	code, body, hdr := get(t, h.front.URL, "/api/v1/stats", query, nil)
	if code != http.StatusOK {
		t.Fatalf("first query after outage: status %d: %s", code, body)
	}
	if cov := hdr.Get("X-Gdelt-Coverage"); cov != "partial" {
		t.Fatalf("first query after outage: coverage %q, want partial", cov)
	}
	if miss := hdr.Get("X-Gdelt-Missing-Shards"); miss != "2,3" {
		t.Fatalf("first query after outage: missing shards %q, want 2,3", miss)
	}
}

func TestChaosHealRestoresFullCoverageAndCleanCache(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)

	// Phase 1: group 1 down, a partial result is computed and cached on the
	// survivors under a shard-scoped cache key.
	h.chaos.Set("r2", faults.ReplicaDead)
	h.chaos.Set("r3", faults.ReplicaDead)
	h.rt.ProbeAll(context.Background())
	code, partialBody, hdr := get(t, h.front.URL, "/api/v1/count", "", nil)
	if code != http.StatusOK || hdr.Get("X-Gdelt-Coverage") != "partial" {
		t.Fatalf("partial phase: status %d coverage %q", code, hdr.Get("X-Gdelt-Coverage"))
	}

	// Phase 2: heal; a probe round closes the breakers immediately.
	h.chaos.Heal("r2")
	h.chaos.Heal("r3")
	h.rt.ProbeAll(context.Background())
	wantCode, wantBody, _ := get(t, h.mono.URL, "/api/v1/count", "", nil)
	gotCode, gotBody, hdr := get(t, h.front.URL, "/api/v1/count", "", nil)
	if gotCode != wantCode || hdr.Get("X-Gdelt-Coverage") != "full" {
		t.Fatalf("healed phase: status %d coverage %q", gotCode, hdr.Get("X-Gdelt-Coverage"))
	}
	// The partial result must not leak out of the cache as a full answer.
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("healed body differs from monolith — partial result served as full?\nrouted:   %.200s\nmonolith: %.200s",
			gotBody, wantBody)
	}
	if bytes.Equal(gotBody, partialBody) {
		t.Fatal("healed body equals the partial body — cache key collision across coverage scopes")
	}
}

func TestChaosAllGroupsDown(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	for _, id := range chaosReplicaIDs {
		h.chaos.Set(id, faults.ReplicaDead)
	}
	h.rt.ProbeAll(context.Background())
	code, body, _ := get(t, h.front.URL, "/api/v1/stats", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("total outage: status %d, want 503: %s", code, body)
	}
	var env struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("total outage: non-JSON envelope %s: %v", body, err)
	}
	if env.Error == "" || env.Kind != "stats" {
		t.Fatalf("total outage envelope %s", body)
	}
	code, _, _ = get(t, h.front.URL, "/readyz", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("total outage /readyz status %d, want 503", code)
	}
}

func TestChaosSlowPrimaryHedges(t *testing.T) {
	const slow = 400 * time.Millisecond
	h := newChaosHarness(t, faults.ReplicaPlan{SlowDelay: slow}, func(cfg *Config) {
		cfg.HedgeDelay = 20 * time.Millisecond
		cfg.HedgeJitter = 0 // deterministic timing for the latency bound
	})
	// Slow exactly the replica the affinity hash prefers for this query.
	primary := h.rt.PreferenceOrder("/api/v1/stats", "")[0]
	h.chaos.Set(primary, faults.ReplicaSlow)

	hedgesBefore := h.rt.met.hedges.Value()
	winsBefore := h.rt.met.hedgeWins.Value()
	start := time.Now()
	code, _, hdr := get(t, h.front.URL, "/api/v1/stats", "", nil)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged query status %d", code)
	}
	if got := hdr.Get("X-Gdelt-Replica"); got == primary {
		t.Fatalf("slow primary %s still served the response", primary)
	}
	if elapsed >= slow {
		t.Fatalf("hedge did not cut latency: %v >= %v", elapsed, slow)
	}
	if h.rt.met.hedges.Value() == hedgesBefore {
		t.Fatal("hedge counter did not advance")
	}
	if h.rt.met.hedgeWins.Value() == winsBefore {
		t.Fatal("hedge win counter did not advance")
	}
}

func TestChaosPartitionedPrimaryRetriesAfterTimeout(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, func(cfg *Config) {
		cfg.PerTryTimeout = 60 * time.Millisecond
	})
	primary := h.rt.PreferenceOrder("/api/v1/stats", "")[0]
	h.chaos.Set(primary, faults.ReplicaPartitioned)

	retriesBefore := h.rt.met.retries.Value()
	code, _, hdr := get(t, h.front.URL, "/api/v1/stats", "", nil)
	if code != http.StatusOK {
		t.Fatalf("query against partitioned primary: status %d", code)
	}
	if got := hdr.Get("X-Gdelt-Replica"); got == primary {
		t.Fatalf("partitioned primary %s served the response", primary)
	}
	if h.rt.met.retries.Value() == retriesBefore {
		t.Fatal("retry counter did not advance")
	}
}

func TestChaosAdmissionRateLimit(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, func(cfg *Config) {
		cfg.Admission = AdmissionConfig{RatePerSec: 1, Burst: 2}
	})
	hdr := map[string]string{"X-Tenant": "rate-tenant"}
	for i := 0; i < 2; i++ {
		if code, body, _ := get(t, h.front.URL, "/api/v1/stats", "", hdr); code != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, code, body)
		}
	}
	code, body, _ := get(t, h.front.URL, "/api/v1/stats", "", hdr)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429", code)
	}
	var env struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" || env.Kind != "stats" {
		t.Fatalf("429 envelope %s (%v)", body, err)
	}
	// A different tenant is unaffected.
	if code, _, _ := get(t, h.front.URL, "/api/v1/stats", "", map[string]string{"X-Tenant": "other"}); code != http.StatusOK {
		t.Fatalf("separate tenant status %d", code)
	}
}

func TestChaosAdmissionConcurrencyCap(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{SlowDelay: 300 * time.Millisecond}, func(cfg *Config) {
		cfg.Admission = AdmissionConfig{MaxConcurrent: 1}
	})
	// Slow the whole fleet so the first request is still in flight when the
	// second arrives.
	for _, id := range chaosReplicaIDs {
		h.chaos.Set(id, faults.ReplicaSlow)
	}
	hdr := map[string]string{"X-Tenant": "conc-tenant"}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, h.front.URL, "/api/v1/stats", "", hdr)
	}()
	time.Sleep(100 * time.Millisecond)
	code, body, _ := get(t, h.front.URL, "/api/v1/stats", "", hdr)
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request: status %d, want 503: %s", code, body)
	}
}

func TestChaosUnknownKind(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	code, body, _ := get(t, h.front.URL, "/api/v1/no-such-kind", "", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown kind: status %d: %s", code, body)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
		t.Fatalf("404 envelope %s (%v)", body, err)
	}
}

func TestChaosRoutezTopology(t *testing.T) {
	h := newChaosHarness(t, faults.ReplicaPlan{}, nil)
	code, body, _ := get(t, h.front.URL, "/routez", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/routez status %d", code)
	}
	var rz struct {
		Shards int `json:"shards"`
		Groups []struct {
			Shards   []int    `json:"shards"`
			Replicas []string `json:"replicas"`
			Up       bool     `json:"up"`
		} `json:"groups"`
		Replicas []struct {
			ID      string `json:"id"`
			Breaker string `json:"breaker"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Shards != 4 || len(rz.Groups) != 2 || len(rz.Replicas) != 4 {
		t.Fatalf("/routez topology %s", body)
	}
	if fmt.Sprint(rz.Groups[0].Shards) != "[0 1]" || fmt.Sprint(rz.Groups[1].Shards) != "[2 3]" {
		t.Fatalf("/routez group shards %s", body)
	}
	for _, g := range rz.Groups {
		if !g.Up {
			t.Fatalf("healthy group reported down: %s", body)
		}
	}
}
