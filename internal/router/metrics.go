package router

import (
	"net/http"

	"gdeltmine/internal/obs"
)

// metrics groups the router's observability handles. Counters are resolved
// once at construction — the hot path only increments.
type metrics struct {
	hedges    *obs.Counter // hedge requests launched
	hedgeWins *obs.Counter // hedges that returned first
	retries   *obs.Counter // failure-driven retries (not hedges)
	coverFull *obs.Counter // responses served with full coverage
	coverPart *obs.Counter // responses served with partial coverage
	unavail   *obs.Counter // requests refused: no shard reachable at all
	latency   *obs.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		hedges: obs.Default.Counter("router_hedges_total",
			"hedged duplicate requests launched"),
		hedgeWins: obs.Default.Counter("router_hedge_wins_total",
			"hedged requests that won the race"),
		retries: obs.Default.Counter("router_retries_total",
			"failure-driven retries to another replica"),
		coverFull: obs.Default.Counter("router_coverage_total",
			"query responses by coverage", obs.L("state", "full")),
		coverPart: obs.Default.Counter("router_coverage_total",
			"query responses by coverage", obs.L("state", "partial")),
		unavail: obs.Default.Counter("router_unavailable_total",
			"queries refused because no shard group was reachable"),
		latency: obs.Default.Histogram("router_request_seconds",
			"routed query latency", obs.LatencyBuckets),
	}
}

// replicaFailures returns the per-replica failure counter; label cardinality
// is bounded by the configured fleet, so resolving per replica is safe.
func replicaFailures(id string) *obs.Counter {
	return obs.Default.Counter("router_replica_failures_total",
		"failed attempts per replica", obs.L("replica", id))
}

// handleMetrics exposes the shared obs registry in Prometheus text format,
// mirroring gdeltserve's /metrics endpoint.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}
