package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
)

// ToneSeries is a per-quarter average-tone series for one publishing
// country, the GCAM-style sentiment view GDELT 2.0 carries alongside every
// article (Section III). Quarters without articles hold NaN-free zeros and
// a zero count.
type ToneSeries struct {
	Country string // FIPS code
	Labels  []string
	Average []float64
	Count   []int64
}

// ToneByCountry computes the quarterly average document tone of each listed
// publishing country's press in one parallel pass over the mention table.
func ToneByCountry(e *engine.Engine, fips []string) []ToneSeries {
	db := e.DB()
	nq := db.NumQuarters()
	idx := make(map[int16]int, len(fips))
	out := make([]ToneSeries, len(fips))
	labels := quarterLabels(e)
	for i, f := range fips {
		ci := gdelt.CountryIndex(f)
		if ci >= 0 {
			idx[int16(ci)] = i
		}
		out[i] = ToneSeries{
			Country: f,
			Labels:  labels,
			Average: make([]float64, nq),
			Count:   make([]int64, nq),
		}
	}
	// Typed cross kernels over the (country slot, quarter) grid. The map
	// lookup of the closure version becomes a source→slot remap column: one
	// build pass over the dictionary, then the hot loop is pure array
	// indexing.
	srcSlot := make([]int32, db.Sources.Len())
	for s := range srcSlot {
		srcSlot[s] = -1
		if i, ok := idx[db.SourceCountry[s]]; ok {
			srcSlot[s] = int32(i)
		}
	}
	sums := e.CrossSumCols(len(fips), nq,
		db.Mentions.Source, srcSlot, db.Mentions.Interval, db.QuarterLUT(), db.Mentions.Tone)
	counts := e.CrossCountCols(len(fips), nq,
		db.Mentions.Source, srcSlot, db.Mentions.Interval, db.QuarterLUT())
	for i := range out {
		for q := 0; q < nq; q++ {
			n := counts.At(i, q)
			out[i].Count[q] = n
			if n > 0 {
				out[i].Average[q] = sums[i*nq+q] / float64(n)
			}
		}
	}
	return out
}
