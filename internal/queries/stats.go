// Package queries implements the paper's experiments as typed query
// functions over the engine: dataset statistics (Table I), top events
// (Table III), publisher activity (Figure 6), co-/follow-reporting (Tables
// IV-V, Figures 7-8), country cross-reporting (Tables VI-VII), publishing
// delay analyses (Table VIII, Figures 9-11), the quarterly series (Figures
// 3-5), and the aggregated country query whose scaling Figure 12 reports.
package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/stats"
)

// scanOptGrain1 is the engine's scan options with a grain of one, used by
// loops whose per-iteration work is a whole postings scan.
func scanOptGrain1(e *engine.Engine) parallel.Options {
	opt := e.ScanOptions()
	opt.Grain = 1
	return opt
}

// DatasetStats is the Table I summary.
type DatasetStats struct {
	Sources          int
	Events           int64
	CaptureIntervals int64
	Articles         int64
	// MinArticles/MaxArticles are over events with at least one observed
	// article; ZeroMentionEvents counts events whose articles were lost
	// (e.g. to missing archives).
	MinArticles       int64
	MaxArticles       int64
	WeightedAvg       float64
	ZeroMentionEvents int64
}

// Dataset computes Table I.
func Dataset(e *engine.Engine) DatasetStats {
	db := e.DB()
	out := DatasetStats{
		Sources:          db.Sources.Len(),
		Events:           int64(db.Events.Len()),
		CaptureIntervals: int64(db.Meta.Intervals),
		Articles:         int64(db.Mentions.Len()),
	}
	var agg stats.IntSummary
	for _, n := range db.Events.NumArticles {
		if n == 0 {
			out.ZeroMentionEvents++
			continue
		}
		agg.Add(int64(n))
	}
	if agg.N > 0 {
		out.MinArticles = agg.Min
		out.MaxArticles = agg.Max
		out.WeightedAvg = agg.Mean()
	}
	return out
}

// TopEvent is one row of Table III.
type TopEvent struct {
	Mentions  int64
	EventID   int64
	SourceURL string
}

// TopEvents returns the k most-reported events (Table III).
func TopEvents(e *engine.Engine, k int) []TopEvent {
	db := e.DB()
	idx := engine.TopK(db.Events.Len(), k, func(i int) int64 {
		return int64(db.Events.NumArticles[i])
	})
	out := make([]TopEvent, 0, len(idx))
	for _, i := range idx {
		out = append(out, TopEvent{
			Mentions:  int64(db.Events.NumArticles[i]),
			EventID:   db.Events.ID[i],
			SourceURL: db.Events.SourceURL[i],
		})
	}
	return out
}

// EventSizeDistribution is the Figure 2 result: counts[x] = number of events
// with exactly x articles (x capped at the largest observed size), plus a
// power-law fit of the tail.
type EventSizeDistribution struct {
	Counts []int64
	Fit    stats.PowerLawFit
	// FitErr is non-nil when the tail was too sparse to fit.
	FitErr error
}

// EventSizes computes the Figure 2 distribution. xmin sets the fit's lower
// cutoff (the paper observes a deviation from the pure power law around the
// center, so fits typically start above 1).
func EventSizes(e *engine.Engine, xmin int) EventSizeDistribution {
	db := e.DB()
	var maxN int32
	for _, n := range db.Events.NumArticles {
		if n > maxN {
			maxN = n
		}
	}
	counts := e.GroupCountEventsCol(int(maxN)+1, db.Events.NumArticles, nil, engine.ColPred{})
	out := EventSizeDistribution{Counts: counts}
	out.Fit, out.FitErr = stats.FitPowerLaw(counts, xmin)
	return out
}

// TopPublishers returns the source ids of the k most productive sources and
// their article counts, in descending order (Section VI-A).
func TopPublishers(e *engine.Engine, k int) (ids []int32, counts []int64) {
	db := e.DB()
	perSource := e.GroupCountCol(db.Sources.Len(), db.Mentions.Source, nil)
	top := engine.TopK(len(perSource), k, func(i int) int64 { return perSource[i] })
	for _, s := range top {
		ids = append(ids, int32(s))
		counts = append(counts, perSource[s])
	}
	return ids, counts
}

// countryCount is the number of known countries; country-set bitmasks rely
// on it fitting a uint64.
var countryCount = len(gdelt.Countries)
