package queries

import (
	"sort"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
)

// Wildfire is a fast-spreading event candidate: an event picked up by many
// distinct sources within a short window of its occurrence. Digital
// wildfires — fast-spreading (mis)information with real-world impact — are
// the paper's motivating phenomenon; the fast core of near-real-time
// sources (Section VI-E) is where they ignite.
type Wildfire struct {
	EventRow  int32
	EventID   int64
	SourceURL string
	// EarlySources is the number of distinct sources reporting within the
	// window.
	EarlySources int
	// EarlyArticles is the number of articles within the window.
	EarlyArticles int
	// TotalArticles is the event's full article count.
	TotalArticles int32
	// Velocity is EarlySources divided by the window length in intervals:
	// distinct sources ignited per 15 minutes.
	Velocity float64
}

// FastSpreadingEvents ranks events by how many distinct sources covered
// them within window capture intervals of the event, returning the top k
// with at least minSources early reporters. The scan is parallel over
// events.
func FastSpreadingEvents(e *engine.Engine, window int32, minSources, k int) []Wildfire {
	db := e.DB()
	if window < 1 {
		window = 1
	}
	candidates := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() []Wildfire { return nil },
		func(acc []Wildfire, lo, hi int) []Wildfire {
			seen := map[int32]bool{}
			for ev := lo; ev < hi; ev++ {
				rows := db.EventMentions(int32(ev))
				if len(rows) < minSources {
					continue
				}
				cutoff := db.Events.Interval[ev] + window
				clear(seen)
				early := 0
				for _, r := range rows {
					if db.Mentions.Interval[r] >= cutoff {
						break // postings are interval-sorted
					}
					early++
					seen[db.Mentions.Source[r]] = true
				}
				if len(seen) < minSources {
					continue
				}
				acc = append(acc, Wildfire{
					EventRow:      int32(ev),
					EventID:       db.Events.ID[ev],
					SourceURL:     db.Events.SourceURL[ev],
					EarlySources:  len(seen),
					EarlyArticles: early,
					TotalArticles: db.Events.NumArticles[ev],
					Velocity:      float64(len(seen)) / float64(window),
				})
			}
			return acc
		},
		func(dst, src []Wildfire) []Wildfire { return append(dst, src...) },
	)
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].EarlySources != candidates[b].EarlySources {
			return candidates[a].EarlySources > candidates[b].EarlySources
		}
		return candidates[a].EventID < candidates[b].EventID
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}
