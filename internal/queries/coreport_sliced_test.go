package queries

import (
	"math"
	"testing"
)

func TestCoReportSlicedMatchesDense(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 15)
	dense, err := CoReport(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	sliced, stats, err := CoReportSliced(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Slices != cachedDB.NumQuarters() {
		t.Fatalf("slices %d", stats.Slices)
	}
	if len(stats.PieceNNZ) != stats.Slices {
		t.Fatal("piece stats")
	}
	// Exactness: pair counts, event counts and Jaccard all agree.
	for i := range dense.EventCounts {
		if dense.EventCounts[i] != sliced.EventCounts[i] {
			t.Fatalf("e_%d: dense %d sliced %d", i, dense.EventCounts[i], sliced.EventCounts[i])
		}
	}
	for i := range dense.Pair.Data {
		if dense.Pair.Data[i] != sliced.Pair.Data[i] {
			t.Fatalf("pair cell %d: dense %d sliced %d", i, dense.Pair.Data[i], sliced.Pair.Data[i])
		}
	}
	for i := range dense.Jaccard.Data {
		if math.Abs(dense.Jaccard.Data[i]-sliced.Jaccard.Data[i]) > 1e-12 {
			t.Fatalf("jaccard cell %d differs", i)
		}
	}
	// The sparse representation is actually sparse: assembled NNZ bounded
	// by n^2 minus the diagonal, and pieces are smaller than the whole.
	n := len(ids)
	if stats.AssembledNNZ > n*(n-1) {
		t.Fatalf("assembled nnz %d", stats.AssembledNNZ)
	}
	var pieceSum int
	for _, p := range stats.PieceNNZ {
		pieceSum += p
	}
	if pieceSum < stats.AssembledNNZ {
		t.Fatal("pieces cannot have fewer nonzeros than their sum")
	}
}

func TestCoReportSlicedWorkerInvariance(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 8)
	a, _, err := CoReportSliced(e.WithWorkers(1), ids)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CoReportSliced(e.WithWorkers(7), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pair.Data {
		if a.Pair.Data[i] != b.Pair.Data[i] {
			t.Fatal("sliced results differ across worker counts")
		}
	}
}
