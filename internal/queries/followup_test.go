package queries

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

func TestFirstReports(t *testing.T) {
	e := testEngine(t)
	fr := FirstReports(e)
	if fr.Events != int64(cachedDB.Events.Len()) {
		t.Fatalf("events %d want %d", fr.Events, cachedDB.Events.Len())
	}
	if fr.Histogram.Total() != fr.Events {
		t.Fatalf("histogram total %d", fr.Histogram.Total())
	}
	// The first report is never slower than the typical article, so its
	// median sits below the overall per-source median band (~16).
	if fr.Median < 1 || fr.Median > 20 {
		t.Fatalf("first-report median %d", fr.Median)
	}
	if fr.P90 < fr.Median {
		t.Fatalf("P90 %d below median %d", fr.P90, fr.Median)
	}
	if fr.WithinOneInterval <= 0 || fr.WithinOneInterval > 1 {
		t.Fatalf("within-one fraction %v", fr.WithinOneInterval)
	}
}

func TestFirstReportsMatchesSerial(t *testing.T) {
	e := testEngine(t)
	db := cachedDB
	fr := FirstReports(e)
	var fast int64
	for ev := 0; ev < db.Events.Len(); ev++ {
		d := int64(db.Events.FirstMention[ev]-db.Events.Interval[ev]) + 1
		if d <= 1 {
			fast++
		}
	}
	want := float64(fast) / float64(db.Events.Len())
	if diff := fr.WithinOneInterval - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("within-one %v want %v", fr.WithinOneInterval, want)
	}
}

func TestRepeats(t *testing.T) {
	e := testEngine(t)
	rc := Repeats(e, 5)
	if rc.Events == 0 {
		t.Fatal("no events")
	}
	// The corpus generates duplicate-source draws and reaction cascades, so
	// repeats exist.
	if rc.RepeatArticles == 0 || rc.EventsWithRepeats == 0 {
		t.Fatalf("no repeats found: %+v", rc)
	}
	if rc.EventsWithRepeats > rc.Events {
		t.Fatal("more repeat events than events")
	}
	if len(rc.TopRepeaters) == 0 {
		t.Fatal("no top repeaters")
	}
	for i := 1; i < len(rc.TopRepeaters); i++ {
		if rc.TopRepeaters[i].Articles > rc.TopRepeaters[i-1].Articles {
			t.Fatal("not descending")
		}
	}
	// Accounting identity: repeat articles = total articles - sum over
	// events of distinct sources.
	var distinct int64
	seen := map[int32]bool{}
	for ev := 0; ev < cachedDB.Events.Len(); ev++ {
		clear(seen)
		for _, r := range cachedDB.EventMentions(int32(ev)) {
			seen[cachedDB.Mentions.Source[r]] = true
		}
		distinct += int64(len(seen))
	}
	if rc.RepeatArticles != int64(cachedDB.Mentions.Len())-distinct {
		t.Fatalf("repeat accounting: %d want %d", rc.RepeatArticles, int64(cachedDB.Mentions.Len())-distinct)
	}
}

func TestSpeedGroups(t *testing.T) {
	e := testEngine(t)
	sg := SpeedGroups(e)
	total := sg.Sources[0] + sg.Sources[1] + sg.Sources[2]
	if total == 0 {
		t.Fatal("no sources classified")
	}
	// Section VI-E: the average (24h-cycle) group is the largest.
	if sg.Sources[SpeedGroupAverage] < sg.Sources[SpeedGroupFast] ||
		sg.Sources[SpeedGroupAverage] < sg.Sources[SpeedGroupSlow] {
		t.Fatalf("average group not largest: %v", sg.Sources)
	}
	// All three groups exist.
	for g := SpeedGroup(0); g < 3; g++ {
		if sg.Sources[g] == 0 {
			t.Fatalf("group %s empty", g)
		}
	}
	// Group medians are ordered.
	if !(sg.MedianDelay[SpeedGroupFast] < sg.MedianDelay[SpeedGroupAverage] &&
		sg.MedianDelay[SpeedGroupAverage] < sg.MedianDelay[SpeedGroupSlow]) {
		t.Fatalf("group medians not ordered: %v", sg.MedianDelay)
	}
	if sg.MedianDelay[SpeedGroupSlow] <= gdelt.IntervalsPerDay {
		t.Fatalf("slow group median %d within the day", sg.MedianDelay[SpeedGroupSlow])
	}
	if got := SpeedGroup(9).String(); got != "unknown" {
		t.Fatalf("string %q", got)
	}
}
