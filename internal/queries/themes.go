package queries

import (
	"errors"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
)

// ErrNoGKG is returned by theme queries on datasets converted without
// Global Knowledge Graph files.
var ErrNoGKG = errors.New("queries: dataset has no GKG data")

// ThemeCount pairs a theme with its article count.
type ThemeCount struct {
	Theme    string
	Articles int64
}

// TopThemes returns the k most frequent GKG themes.
func TopThemes(e *engine.Engine, k int) ([]ThemeCount, error) {
	db := e.DB()
	if db.GKG == nil {
		return nil, ErrNoGKG
	}
	g := db.GKG
	nt := g.Themes.Len()
	counts := parallel.MapReduce(g.Table.Len(), e.ScanOptions(),
		func() []int64 { return make([]int64, nt) },
		func(acc []int64, lo, hi int) []int64 {
			for r := lo; r < hi; r++ {
				for _, id := range g.Table.RowThemes(r) {
					acc[id]++
				}
			}
			return acc
		},
		func(dst, src []int64) []int64 {
			for i, v := range src {
				dst[i] += v
			}
			return dst
		},
	)
	top := engine.TopK(nt, k, func(i int) int64 { return counts[i] })
	out := make([]ThemeCount, 0, len(top))
	for _, t := range top {
		out = append(out, ThemeCount{Theme: g.Themes.Name(int32(t)), Articles: counts[t]})
	}
	return out, nil
}

// ThemeTrend is a quarterly article-count series for one theme.
type ThemeTrend struct {
	Theme  string
	Labels []string
	Values []int64
}

// ThemeTrends computes quarterly coverage for the named themes using the
// theme postings index.
func ThemeTrends(e *engine.Engine, themes []string) ([]ThemeTrend, error) {
	db := e.DB()
	if db.GKG == nil {
		return nil, ErrNoGKG
	}
	g := db.GKG
	nq := db.NumQuarters()
	labels := quarterLabels(e)
	out := make([]ThemeTrend, len(themes))
	parallel.ForOpt(len(themes), scanOptGrain1(e), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tr := ThemeTrend{Theme: themes[i], Labels: labels, Values: make([]int64, nq)}
			if id := g.Themes.Lookup(themes[i]); id >= 0 {
				for _, r := range g.ThemeRows(id) {
					tr.Values[db.QuarterOfInterval(g.Table.Interval[r])]++
				}
			}
			out[i] = tr
		}
	})
	return out, nil
}

// ThemeCooccurrence computes the co-occurrence matrix of the top-k themes:
// cell (i, j) counts articles annotated with both themes. It is the
// theme-level analogue of the source co-reporting matrix and feeds the same
// clustering machinery.
type ThemeCooccurrence struct {
	Themes []string
	Counts *matrix.Int64
	// Jaccard normalizes co-occurrence by union of article sets.
	Jaccard *matrix.Dense
}

// ThemeCooccurrences computes co-occurrence among the top-k themes.
func ThemeCooccurrences(e *engine.Engine, k int) (*ThemeCooccurrence, error) {
	db := e.DB()
	if db.GKG == nil {
		return nil, ErrNoGKG
	}
	g := db.GKG
	top, err := TopThemes(e, k)
	if err != nil {
		return nil, err
	}
	n := len(top)
	pos := make(map[int32]int, n)
	totals := make([]int64, n)
	for i, tc := range top {
		pos[g.Themes.Lookup(tc.Theme)] = i
		totals[i] = tc.Articles
	}
	pair := parallel.MapReduce(g.Table.Len(), e.ScanOptions(),
		func() *matrix.Int64 { return matrix.NewInt64(n, n) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			var sel []int
			for r := lo; r < hi; r++ {
				sel = sel[:0]
				for _, id := range g.Table.RowThemes(r) {
					if i, ok := pos[id]; ok {
						sel = append(sel, i)
					}
				}
				for a := 0; a < len(sel); a++ {
					for b := a + 1; b < len(sel); b++ {
						acc.Inc(sel[a], sel[b])
						acc.Inc(sel[b], sel[a])
					}
				}
			}
			return acc
		},
		func(dst, src *matrix.Int64) *matrix.Int64 {
			if err := dst.AddMatrix(src); err != nil {
				panic(err)
			}
			return dst
		},
	)
	jac, err := matrix.JaccardFromPairCounts(pair, totals)
	if err != nil {
		return nil, err
	}
	out := &ThemeCooccurrence{Counts: pair, Jaccard: jac}
	for _, tc := range top {
		out.Themes = append(out.Themes, tc.Theme)
	}
	return out, nil
}

// EntityCount pairs an entity (person or organization) with its article
// count.
type EntityCount struct {
	Name     string
	Articles int64
}

// PersonsForTheme returns the k people most often mentioned in articles
// carrying the theme.
func PersonsForTheme(e *engine.Engine, theme string, k int) ([]EntityCount, error) {
	db := e.DB()
	if db.GKG == nil {
		return nil, ErrNoGKG
	}
	g := db.GKG
	id := g.Themes.Lookup(theme)
	if id < 0 {
		return nil, nil
	}
	counts := make([]int64, g.Persons.Len())
	for _, r := range g.ThemeRows(id) {
		for _, p := range g.Table.RowPersons(int(r)) {
			counts[p]++
		}
	}
	top := engine.TopK(len(counts), k, func(i int) int64 { return counts[i] })
	out := make([]EntityCount, 0, len(top))
	for _, p := range top {
		if counts[p] == 0 {
			break
		}
		out = append(out, EntityCount{Name: g.Persons.Name(int32(p)), Articles: counts[p]})
	}
	return out, nil
}

// TranslatedShare computes the per-quarter fraction of articles that were
// machine-translated — the Section III translingual feed's footprint.
func TranslatedShare(e *engine.Engine) (labels []string, share []float64, err error) {
	db := e.DB()
	if db.GKG == nil {
		return nil, nil, ErrNoGKG
	}
	g := db.GKG
	nq := db.NumQuarters()
	type pair struct{ translated, total []int64 }
	res := parallel.MapReduce(g.Table.Len(), e.ScanOptions(),
		func() *pair { return &pair{make([]int64, nq), make([]int64, nq)} },
		func(acc *pair, lo, hi int) *pair {
			for r := lo; r < hi; r++ {
				q := db.QuarterOfInterval(g.Table.Interval[r])
				acc.total[q]++
				if g.Table.Translated[r] {
					acc.translated[q]++
				}
			}
			return acc
		},
		func(dst, src *pair) *pair {
			for i := range dst.total {
				dst.total[i] += src.total[i]
				dst.translated[i] += src.translated[i]
			}
			return dst
		},
	)
	share = make([]float64, nq)
	for q := 0; q < nq; q++ {
		if res.total[q] > 0 {
			share[q] = float64(res.translated[q]) / float64(res.total[q])
		}
	}
	return quarterLabels(e), share, nil
}
