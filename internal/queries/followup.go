package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/stats"
)

// This file implements the follow-up analyses Section VI-E sketches for
// future research: the delay of the very first article on each event
// (relevant to wildfire detection), repeated same-source coverage (either
// thorough reporting or deliberate amplification), and the decomposition of
// the news sphere into speed groups.

// FirstReportLatency is the distribution of each event's first-article
// delay: how long the world's fastest reporter took, per event.
type FirstReportLatency struct {
	// Histogram is log2-binned over intervals.
	Histogram *stats.LogHistogram
	// Median and P90 are exact quantiles in intervals.
	Median, P90 int64
	// WithinOneInterval is the fraction of events first reported in the
	// same capture interval they happened.
	WithinOneInterval float64
	// Events is the number of events measured.
	Events int64
}

// FirstReports computes the first-report latency distribution over all
// observed events.
func FirstReports(e *engine.Engine) FirstReportLatency {
	db := e.DB()
	ct := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *stats.CountTable { return stats.NewCountTable(maxDelay) },
		func(acc *stats.CountTable, lo, hi int) *stats.CountTable {
			for ev := lo; ev < hi; ev++ {
				if db.Events.NumArticles[ev] == 0 {
					continue
				}
				d := int64(db.Events.FirstMention[ev]-db.Events.Interval[ev]) + 1
				if d < 0 {
					d = 0
				}
				acc.Add(d)
			}
			return acc
		},
		func(dst, src *stats.CountTable) *stats.CountTable {
			if err := dst.Merge(src); err != nil {
				panic(err)
			}
			return dst
		},
	)
	out := FirstReportLatency{
		Histogram: stats.NewLogHistogram(2, delayHistBuckets),
		Events:    ct.N,
	}
	if ct.N == 0 {
		return out
	}
	var cum int64
	p90Rank := (ct.N*9 + 9) / 10
	for v, c := range ct.Counts {
		if c == 0 {
			continue
		}
		out.Histogram.AddN(float64(v), c)
		prev := cum
		cum += c
		if prev < (ct.N+1)/2 && cum >= (ct.N+1)/2 {
			out.Median = int64(v)
		}
		if prev < p90Rank && cum >= p90Rank {
			out.P90 = int64(v)
		}
	}
	out.WithinOneInterval = float64(ct.Counts[0]+ct.Counts[1]) / float64(ct.N)
	return out
}

// RepeatedCoverage quantifies same-source repeat articles per event —
// thorough reporting or amplification (Section VI-E flags both readings).
type RepeatedCoverage struct {
	// EventsWithRepeats counts events some source covered more than once.
	EventsWithRepeats int64
	// Events is the number of observed events.
	Events int64
	// RepeatArticles counts articles beyond each source's first per event.
	RepeatArticles int64
	// TopRepeaters lists the sources with the most repeat articles.
	TopRepeaters []EntityCount
}

// Repeats computes repeated-coverage statistics. k bounds TopRepeaters.
func Repeats(e *engine.Engine, k int) RepeatedCoverage {
	db := e.DB()
	type partial struct {
		withRepeats int64
		repeats     int64
		perSource   []int64
	}
	res := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *partial { return &partial{perSource: make([]int64, db.Sources.Len())} },
		func(acc *partial, lo, hi int) *partial {
			seen := map[int32]bool{}
			for ev := lo; ev < hi; ev++ {
				rows := db.EventMentions(int32(ev))
				if len(rows) < 2 {
					continue
				}
				clear(seen)
				had := false
				for _, r := range rows {
					s := db.Mentions.Source[r]
					if seen[s] {
						acc.repeats++
						acc.perSource[s]++
						had = true
					} else {
						seen[s] = true
					}
				}
				if had {
					acc.withRepeats++
				}
			}
			return acc
		},
		func(dst, src *partial) *partial {
			dst.withRepeats += src.withRepeats
			dst.repeats += src.repeats
			for i, v := range src.perSource {
				dst.perSource[i] += v
			}
			return dst
		},
	)
	out := RepeatedCoverage{
		EventsWithRepeats: res.withRepeats,
		RepeatArticles:    res.repeats,
	}
	for _, n := range db.Events.NumArticles {
		if n > 0 {
			out.Events++
		}
	}
	for _, s := range engine.TopK(len(res.perSource), k, func(i int) int64 { return res.perSource[i] }) {
		if res.perSource[s] == 0 {
			break
		}
		out.TopRepeaters = append(out.TopRepeaters,
			EntityCount{Name: db.Sources.Name(int32(s)), Articles: res.perSource[s]})
	}
	return out
}

// SpeedGroup classifies a source by its median delay, the Section VI-E
// taxonomy: fast (under two hours), average (the 24-hour cycle), slow
// (beyond a day).
type SpeedGroup int

const (
	// SpeedGroupFast sources have a median delay of at most 8 intervals.
	SpeedGroupFast SpeedGroup = iota
	// SpeedGroupAverage sources have a median delay within 24 hours.
	SpeedGroupAverage
	// SpeedGroupSlow sources have a median delay beyond 24 hours.
	SpeedGroupSlow
	numSpeedGroups
)

// String names the group.
func (g SpeedGroup) String() string {
	switch g {
	case SpeedGroupFast:
		return "fast"
	case SpeedGroupAverage:
		return "average"
	case SpeedGroupSlow:
		return "slow"
	}
	return "unknown"
}

// SpeedGroupBreakdown decomposes the source population and article volume
// by speed group.
type SpeedGroupBreakdown struct {
	// Sources[g] counts sources in group g (among sources with articles).
	Sources [3]int64
	// Articles[g] counts their articles.
	Articles [3]int64
	// MedianDelay[g] is the group's median per-source median delay.
	MedianDelay [3]int64
}

// SpeedGroups classifies every active source by median delay.
func SpeedGroups(e *engine.Engine) SpeedGroupBreakdown {
	db := e.DB()
	all := make([]int32, db.Sources.Len())
	for s := range all {
		all[s] = int32(s)
	}
	per := PublisherDelays(e, all)
	var out SpeedGroupBreakdown
	medians := [3][]int64{}
	for _, st := range per {
		if st.Articles == 0 {
			continue
		}
		g := SpeedGroupAverage
		switch {
		case st.Median <= 8:
			g = SpeedGroupFast
		case st.Median > gdelt.IntervalsPerDay:
			g = SpeedGroupSlow
		}
		out.Sources[g]++
		out.Articles[g] += st.Articles
		medians[g] = append(medians[g], st.Median)
	}
	for g := 0; g < 3; g++ {
		out.MedianDelay[g] = stats.MedianInt64(medians[g])
	}
	return out
}
