package queries

import (
	"sort"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/stats"
)

// maxDelay bounds delays in 15-minute intervals: one year plus a day, the
// cap the store's builder enforces (Table VIII's shared maximum ~35135).
const maxDelay = gdelt.IntervalsPerYear + gdelt.IntervalsPerDay

// SourceDelayStats is one publisher's row of Table VIII.
type SourceDelayStats struct {
	Source   int32
	Name     string
	Articles int64
	Min      int64
	Max      int64
	Average  float64
	Median   int64
}

// PublisherDelays computes per-source delay statistics for the given
// sources (Table VIII uses the top-10 publishers; Figure 9 uses all
// sources). The scan is parallel over sources via the postings index.
func PublisherDelays(e *engine.Engine, sources []int32) []SourceDelayStats {
	db := e.DB()
	out := make([]SourceDelayStats, len(sources))
	parallel.ForOpt(len(sources), e.ScanOptions(), func(lo, hi int) {
		var buf []int64
		for i := lo; i < hi; i++ {
			s := sources[i]
			rows := db.SourceMentions(s)
			st := SourceDelayStats{Source: s, Name: db.Sources.Name(s), Articles: int64(len(rows))}
			if len(rows) > 0 {
				buf = buf[:0]
				var agg stats.IntSummary
				for _, r := range rows {
					d := int64(db.Mentions.Delay[r])
					agg.Add(d)
					buf = append(buf, d)
				}
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				st.Min, st.Max, st.Average = agg.Min, agg.Max, agg.Mean()
				st.Median = buf[(len(buf)-1)/2] // lower median
			}
			out[i] = st
		}
	})
	return out
}

// DelayDistribution is Figure 9: for every source with at least one
// article, the distribution of its minimum, average, median and maximum
// delay, as log-binned histograms (base 2 over [1, maxDelay]) plus the raw
// per-source statistics.
type DelayDistribution struct {
	PerSource []SourceDelayStats
	Min       *stats.LogHistogram
	Average   *stats.LogHistogram
	Median    *stats.LogHistogram
	Max       *stats.LogHistogram
}

// delayHistBuckets covers 1..2^17 = 131072 > maxDelay.
const delayHistBuckets = 17

// DelayDistributionAll computes Figure 9 over all sources.
func DelayDistributionAll(e *engine.Engine) *DelayDistribution {
	db := e.DB()
	all := make([]int32, db.Sources.Len())
	for s := range all {
		all[s] = int32(s)
	}
	per := PublisherDelays(e, all)
	out := &DelayDistribution{
		Min:     stats.NewLogHistogram(2, delayHistBuckets),
		Average: stats.NewLogHistogram(2, delayHistBuckets),
		Median:  stats.NewLogHistogram(2, delayHistBuckets),
		Max:     stats.NewLogHistogram(2, delayHistBuckets),
	}
	for _, st := range per {
		if st.Articles == 0 {
			continue
		}
		out.PerSource = append(out.PerSource, st)
		out.Min.Add(float64(st.Min))
		out.Average.Add(st.Average)
		out.Median.Add(float64(st.Median))
		out.Max.Add(float64(st.Max))
	}
	return out
}

// QuarterlyDelay is Figure 10: the average and median publishing delay of
// all articles published in each quarter.
type QuarterlyDelay struct {
	Labels  []string
	Average []float64
	Median  []int64
}

// QuarterlyDelays computes Figure 10. Each quarter's median is exact,
// computed from a value->count table over the quarter's mention range; the
// quarters are processed in parallel.
func QuarterlyDelays(e *engine.Engine) QuarterlyDelay {
	db := e.DB()
	nq := db.NumQuarters()
	out := QuarterlyDelay{
		Labels:  quarterLabels(e),
		Average: make([]float64, nq),
		Median:  make([]int64, nq),
	}
	parallel.ForOpt(nq, scanOptGrain1(e), func(qlo, qhi int) {
		ct := stats.NewCountTable(maxDelay)
		for q := qlo; q < qhi; q++ {
			for i := range ct.Counts {
				ct.Counts[i] = 0
			}
			ct.N = 0
			lo, hi := db.QuarterMentionRange(q)
			for r := lo; r < hi; r++ {
				ct.Add(int64(db.Mentions.Delay[r]))
			}
			if ct.N > 0 {
				out.Average[q] = ct.Mean()
				out.Median[q] = ct.Median()
			}
		}
	})
	return out
}

// SlowArticlesPerQuarter computes Figure 11: the number of articles per
// quarter with a publishing delay of more than 24 hours.
func SlowArticlesPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	// Vectorized filter→aggregate: the predicate stage selects delayed rows
	// into pooled selection vectors, the aggregation stage groups them by
	// quarter via the interval→quarter remap table.
	vals := e.GroupCountColSel(db.NumQuarters(), db.Mentions.Interval, db.QuarterLUT(),
		engine.PredGT(db.Mentions.Delay, gdelt.IntervalsPerDay))
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}
