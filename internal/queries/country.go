package queries

import (
	"math/bits"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
)

// CountryReport is the output of the single aggregated country query of
// Section VI-G — the query whose parallel scaling Figure 12 reports. One run
// produces all the data behind Tables V, VI and VII.
type CountryReport struct {
	// EventCounts[c] = number of observed events located in country c.
	EventCounts []int64
	// ArticleCounts[c] = number of articles published by sources of
	// country c (about events with a known country).
	ArticleCounts []int64
	// CoReporting is the Table V matrix: the Jaccard index between the
	// sets of events reported by each country's press.
	CoReporting *matrix.Dense
	// Cross is the Table VI matrix: Cross[reported][publishing] = articles
	// from the publishing country about events in the reported country.
	Cross *matrix.Int64
	// Fractions is the Table VII matrix: Cross normalized per publishing
	// country (percent of that country's tagged-event articles).
	Fractions *matrix.Dense
	// TopReported / TopPublishing order countries by events recorded and
	// articles published, respectively.
	TopReported   []int
	TopPublishing []int
}

// CountryQuery runs the aggregated country query. Internally it is two
// parallel aggregation passes: a mention scan building the cross-reporting
// contingency matrix, and an event scan building per-event country bitmasks
// for the co-reporting Jaccard counts.
func CountryQuery(e *engine.Engine) (*CountryReport, error) {
	db := e.DB()
	nc := countryCount

	// Pass 1: cross-reporting over mentions (Table VI), as a typed kernel:
	// row country = eventCountryLUT[EventRow[row]], column country =
	// sourceCountryLUT[Source[row]], untagged (-1) rows skipped by the
	// kernel's range check.
	cross := engine.CrossCountRemap(e, nc, nc,
		db.Mentions.EventRow, db.Events.Country,
		db.Mentions.Source, db.SourceCountry)

	// Pass 2: per-event reporting-country bitmask over events (Table V).
	type partial struct {
		pair   *matrix.Int64
		counts []int64
	}
	res := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *partial {
			return &partial{
				pair:   &matrix.Int64{Rows: nc, Cols: nc, Data: parallel.GetInt64(nc * nc)},
				counts: parallel.GetInt64(nc),
			}
		},
		func(acc *partial, lo, hi int) *partial {
			for ev := lo; ev < hi; ev++ {
				var mask uint64
				for _, row := range db.EventMentions(int32(ev)) {
					if c := db.SourceCountry[db.Mentions.Source[row]]; c >= 0 {
						mask |= 1 << uint(c)
					}
				}
				for m := mask; m != 0; {
					i := bits.TrailingZeros64(m)
					m &^= 1 << uint(i)
					acc.counts[i]++
					for m2 := m; m2 != 0; {
						j := bits.TrailingZeros64(m2)
						m2 &^= 1 << uint(j)
						acc.pair.Inc(i, j)
						acc.pair.Inc(j, i)
					}
				}
			}
			return acc
		},
		func(dst, src *partial) *partial {
			if err := dst.pair.AddMatrix(src.pair); err != nil {
				panic(err)
			}
			for i, v := range src.counts {
				dst.counts[i] += v
			}
			parallel.PutInt64(src.pair.Data)
			parallel.PutInt64(src.counts)
			src.pair.Data, src.counts = nil, nil
			return dst
		},
	)

	eventCounts := e.GroupCountEventsCol(nc, db.EventCountryLUT(), nil,
		engine.PredGT(db.Events.NumArticles, 0))
	return FinishCountryReport(cross, res.pair, res.counts, eventCounts)
}

// FinishCountryReport derives the report's orderings and normalizations
// from the raw aggregates: the mention cross-count matrix, the per-event
// country pair counts and singleton counts, and the per-country event
// counts. Shared by the monolithic and sharded executions so both take
// the exact same arithmetic path.
func FinishCountryReport(cross, pair *matrix.Int64, counts, eventCounts []int64) (*CountryReport, error) {
	nc := countryCount
	jac, err := matrix.JaccardFromPairCounts(pair, counts)
	if err != nil {
		return nil, err
	}
	articleCounts := cross.ToDense().ColSums()
	artInts := make([]int64, nc)
	for c, v := range articleCounts {
		artInts[c] = int64(v)
	}
	fractions := matrix.NewDense(nc, nc)
	for r := 0; r < nc; r++ {
		for c := 0; c < nc; c++ {
			if artInts[c] > 0 {
				fractions.Set(r, c, 100*float64(cross.At(r, c))/float64(artInts[c]))
			}
		}
	}
	return &CountryReport{
		EventCounts:   eventCounts,
		ArticleCounts: artInts,
		CoReporting:   jac,
		Cross:         cross,
		Fractions:     fractions,
		TopReported:   engine.TopK(nc, nc, func(c int) int64 { return eventCounts[c] }),
		TopPublishing: engine.TopK(nc, nc, func(c int) int64 { return artInts[c] }),
	}, nil
}
