package queries

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

func TestFastSpreadingEvents(t *testing.T) {
	e := testEngine(t)
	// A 4-hour window with at least 5 distinct early sources.
	fires := FastSpreadingEvents(e, 16, 5, 10)
	if len(fires) == 0 {
		t.Fatal("no wildfire candidates found")
	}
	for i, w := range fires {
		if w.EarlySources < 5 {
			t.Fatalf("candidate %d has %d early sources", i, w.EarlySources)
		}
		if w.EarlyArticles < w.EarlySources {
			t.Fatalf("candidate %d: early articles %d < early sources %d", i, w.EarlyArticles, w.EarlySources)
		}
		if int32(w.EarlyArticles) > w.TotalArticles {
			t.Fatalf("candidate %d: early articles exceed total", i)
		}
		if i > 0 && w.EarlySources > fires[i-1].EarlySources {
			t.Fatal("not sorted by early sources")
		}
		if w.Velocity <= 0 {
			t.Fatalf("candidate %d velocity %v", i, w.Velocity)
		}
	}
	// Headline events with mostly-average sources ignite fast: the top
	// candidate should be a genuinely large event.
	if fires[0].TotalArticles < 10 {
		t.Fatalf("top wildfire only has %d articles", fires[0].TotalArticles)
	}
}

func TestFastSpreadingEventsDegenerate(t *testing.T) {
	e := testEngine(t)
	// Impossible threshold yields nothing.
	if got := FastSpreadingEvents(e, 1, 1<<20, 10); len(got) != 0 {
		t.Fatalf("expected no candidates, got %d", len(got))
	}
	// Window clamps to >= 1 and k truncates.
	got := FastSpreadingEvents(e, 0, 1, 3)
	if len(got) > 3 {
		t.Fatalf("k not honored: %d", len(got))
	}
}

func TestFastSpreadingEventsEarlyCountsExact(t *testing.T) {
	e := testEngine(t)
	db := e.DB()
	fires := FastSpreadingEvents(e, 16, 3, 5)
	if len(fires) == 0 {
		t.Skip("no candidates at this threshold")
	}
	w := fires[0]
	// Recompute the early distinct-source count directly.
	cutoff := db.Events.Interval[w.EventRow] + 16
	seen := map[int32]bool{}
	for _, r := range db.EventMentions(w.EventRow) {
		if db.Mentions.Interval[r] < cutoff {
			seen[db.Mentions.Source[r]] = true
		}
	}
	if len(seen) != w.EarlySources {
		t.Fatalf("early sources %d want %d", w.EarlySources, len(seen))
	}
	_ = gdelt.IntervalsPerDay
}
