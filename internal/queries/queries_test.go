package queries

import (
	"strings"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

var (
	cachedDB     *store.DB
	cachedCorpus *gen.Corpus
)

func testEngine(t testing.TB) *engine.Engine {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedCorpus = c
		cachedDB = res.DB
	}
	return engine.New(cachedDB)
}

func TestCountryMaskFitsUint64(t *testing.T) {
	if countryCount > 64 {
		t.Fatalf("country bitmask needs %d bits", countryCount)
	}
}

func TestDatasetStats(t *testing.T) {
	e := testEngine(t)
	ds := Dataset(e)
	if ds.Sources != len(cachedCorpus.World.Sources) {
		t.Fatalf("sources %d", ds.Sources)
	}
	if ds.Events != int64(len(cachedCorpus.Events)) || ds.Articles != int64(len(cachedCorpus.Mentions)) {
		t.Fatalf("events/articles %d/%d", ds.Events, ds.Articles)
	}
	if ds.MinArticles != 1 {
		t.Fatalf("min articles %d", ds.MinArticles)
	}
	if ds.WeightedAvg < 2 || ds.WeightedAvg > 6 {
		t.Fatalf("weighted avg %.2f (paper: 3.36)", ds.WeightedAvg)
	}
	if ds.ZeroMentionEvents != 0 {
		t.Fatalf("zero-mention events %d in direct build", ds.ZeroMentionEvents)
	}
	if ds.CaptureIntervals != int64(cachedDB.Meta.Intervals) {
		t.Fatalf("intervals %d", ds.CaptureIntervals)
	}
}

func TestTopEventsAreHeadlines(t *testing.T) {
	e := testEngine(t)
	top := TopEvents(e, 10)
	if len(top) != 10 {
		t.Fatalf("top events %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Mentions > top[i-1].Mentions {
			t.Fatal("top events not descending")
		}
	}
	// The most reported event is a headline analogue with a valid URL.
	row := cachedDB.EventRowByID(top[0].EventID)
	if row < 0 {
		t.Fatal("top event not found")
	}
	if top[0].SourceURL == "" || !strings.HasPrefix(top[0].SourceURL, "https://") {
		t.Fatalf("top event url %q", top[0].SourceURL)
	}
	// Headline coverage dwarfs the typical event.
	ds := Dataset(e)
	if float64(top[0].Mentions) < 5*ds.WeightedAvg {
		t.Fatalf("top event %d mentions vs avg %.1f: no headline separation", top[0].Mentions, ds.WeightedAvg)
	}
}

func TestEventSizesPowerLaw(t *testing.T) {
	e := testEngine(t)
	dist := EventSizes(e, 1)
	if dist.FitErr != nil {
		t.Fatal(dist.FitErr)
	}
	// Figure 2 shape: decaying power law with a plausible exponent.
	if dist.Fit.Alpha < 1.5 || dist.Fit.Alpha > 3.5 {
		t.Fatalf("power-law alpha %.2f outside [1.5, 3.5]", dist.Fit.Alpha)
	}
	if dist.Fit.R2 < 0.7 {
		t.Fatalf("power-law fit R2 %.3f too poor", dist.Fit.R2)
	}
	if dist.Counts[1] == 0 || dist.Counts[1] < dist.Counts[4] {
		t.Fatal("size-1 events must dominate")
	}
}

func TestTopPublishersAreMediaGroup(t *testing.T) {
	e := testEngine(t)
	ids, counts := TopPublishers(e, 10)
	if len(ids) != 10 {
		t.Fatalf("top %d", len(ids))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatal("counts not descending")
		}
	}
	// Most of the top-10 are co-owned group members (paper: 8 out of 10).
	// Dictionary ids are assigned in first-seen order, so map through the
	// source names.
	groupNames := map[string]bool{}
	for i := 0; i < cachedCorpus.World.Cfg.MediaGroupSize; i++ {
		groupNames[cachedCorpus.World.Sources[i].Name] = true
	}
	group := 0
	for _, s := range ids {
		if groupNames[cachedDB.Sources.Name(s)] {
			group++
		}
	}
	if group < 6 {
		t.Fatalf("only %d of top-10 are group members", group)
	}
	uk := 0
	for _, s := range ids {
		if cachedDB.SourceCountry[s] == int16(gdelt.CountryIndex("UK")) {
			uk++
		}
	}
	if uk < 6 {
		t.Fatalf("only %d of top-10 are British", uk)
	}
}

func TestQuarterlySeriesShapes(t *testing.T) {
	e := testEngine(t)
	arts := ArticlesPerQuarter(e)
	evs := EventsPerQuarter(e)
	act := ActiveSourcesPerQuarter(e)
	nq := cachedDB.NumQuarters()
	if len(arts.Values) != nq || len(evs.Values) != nq || len(act.Values) != nq {
		t.Fatal("series lengths")
	}
	if arts.Labels[0] != "2015Q1" || arts.Labels[nq-1] != "2019Q4" {
		t.Fatalf("labels %s..%s", arts.Labels[0], arts.Labels[nq-1])
	}
	// Totals agree with the dataset.
	var sumA, sumE int64
	for q := 0; q < nq; q++ {
		sumA += arts.Values[q]
		sumE += evs.Values[q]
	}
	if sumA != int64(cachedDB.Mentions.Len()) {
		t.Fatalf("article series sums to %d", sumA)
	}
	if sumE != int64(cachedDB.Events.Len()) {
		t.Fatalf("event series sums to %d", sumE)
	}
	// The first quarter is partial (starts 18 Feb) and must be clearly
	// smaller than the second.
	if arts.Values[0] >= arts.Values[1] {
		t.Fatalf("first (partial) quarter %d >= second %d", arts.Values[0], arts.Values[1])
	}
	// Active sources: roughly stable, roughly a third of all sources.
	total := float64(cachedDB.Sources.Len())
	for q := 1; q < nq-1; q++ {
		frac := float64(act.Values[q]) / total
		if frac < 0.15 || frac > 0.75 {
			t.Fatalf("quarter %d active fraction %.2f", q, frac)
		}
	}
	// 2019 volume below the 2016 level (the paper's slight decline).
	y2016 := arts.Values[4] + arts.Values[5] + arts.Values[6] + arts.Values[7]
	y2019 := arts.Values[16] + arts.Values[17] + arts.Values[18] + arts.Values[19]
	if y2019 >= y2016 {
		t.Fatalf("2019 articles %d not below 2016 %d", y2019, y2016)
	}
}

func TestTopPublisherSeries(t *testing.T) {
	e := testEngine(t)
	ps := TopPublisherSeries(e, 10)
	if len(ps.Sources) != 10 || len(ps.Values) != 10 {
		t.Fatal("series shape")
	}
	for p := range ps.Values {
		var sum int64
		for _, v := range ps.Values[p] {
			sum += v
		}
		if sum != ps.Totals[p] {
			t.Fatalf("publisher %d series sums to %d want %d", p, sum, ps.Totals[p])
		}
	}
	if ps.Names[0] == "" {
		t.Fatal("names missing")
	}
}

func TestCoReport(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 10)
	co, err := CoReport(e, ids)
	if err != nil {
		t.Fatal(err)
	}
	if !co.Jaccard.IsSymmetric(1e-12) {
		t.Fatal("co-reporting matrix must be symmetric")
	}
	// e_i must match a direct count of distinct events per source.
	for i, s := range co.Sources {
		distinct := map[int32]bool{}
		for _, r := range cachedDB.SourceMentions(s) {
			distinct[cachedDB.Mentions.EventRow[r]] = true
		}
		if co.EventCounts[i] != int64(len(distinct)) {
			t.Fatalf("e_%d = %d want %d", i, co.EventCounts[i], len(distinct))
		}
	}
	// Pair counts bounded by the min of the two event counts.
	for i := range co.Sources {
		for j := range co.Sources {
			if i == j {
				continue
			}
			eij := co.Pair.At(i, j)
			if eij > co.EventCounts[i] || eij > co.EventCounts[j] {
				t.Fatalf("e_%d%d = %d exceeds totals", i, j, eij)
			}
		}
	}
	// The group members co-report heavily: top-2 pair above 0.05.
	if co.Jaccard.At(0, 1) < 0.05 {
		t.Fatalf("top pair jaccard %.4f too low", co.Jaccard.At(0, 1))
	}
}

func TestCoReportWorkerInvariance(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 5)
	a, err := CoReport(e.WithWorkers(1), ids)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoReport(e.WithWorkers(8), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pair.Data {
		if a.Pair.Data[i] != b.Pair.Data[i] {
			t.Fatal("pair counts differ across worker counts")
		}
	}
}

func TestFollowReport(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 10)
	fr := FollowReport(e, ids)
	n := len(ids)
	// n_ij bounded by n_j; f in [0, 1]; column sums match.
	for j := 0; j < n; j++ {
		var col float64
		for i := 0; i < n; i++ {
			if fr.N.At(i, j) > fr.Articles[j] {
				t.Fatalf("n_%d%d exceeds articles of %d", i, j, j)
			}
			v := fr.F.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("f_%d%d = %v", i, j, v)
			}
			col += v
		}
		if diff := col - fr.ColSums[j]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("col sum mismatch %v vs %v", col, fr.ColSums[j])
		}
	}
	// Table IV shape: substantial follow-reporting among top publishers.
	var sum float64
	for _, s := range fr.ColSums {
		sum += s
	}
	if sum/float64(n) < 0.1 {
		t.Fatalf("mean follow column sum %.3f: no follow structure", sum/float64(n))
	}
	// Roughly balanced leader/follower roles among the group head: the
	// asymmetry |f_ij - f_ji| should be small relative to the values.
	f01, f10 := fr.F.At(0, 1), fr.F.At(1, 0)
	if f01 == 0 || f10 == 0 {
		t.Fatal("top pair has no follow-reporting")
	}
	ratio := f01 / f10
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("top pair strongly directional: %v vs %v", f01, f10)
	}
}

func TestFollowReportSelfFollow(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 10)
	fr := FollowReport(e, ids)
	// The corpus generates repeat coverage (headline + cascade), so top
	// publishers have nonzero self-follow-up rates on the diagonal.
	var diag float64
	for i := range ids {
		diag += fr.F.At(i, i)
	}
	if diag == 0 {
		t.Fatal("no self-follow-reporting on the diagonal")
	}
}

func TestCountryQueryShapes(t *testing.T) {
	e := testEngine(t)
	cr, err := CountryQuery(e)
	if err != nil {
		t.Fatal(err)
	}
	us := gdelt.CountryIndex("US")
	uk := gdelt.CountryIndex("UK")
	as := gdelt.CountryIndex("AS")
	in := gdelt.CountryIndex("IN")

	// Table VI shape: the US row dominates every major publishing column.
	for _, pub := range []int{uk, us, as, in} {
		if cr.ArticleCounts[pub] == 0 {
			t.Fatalf("no articles for publishing country %d", pub)
		}
		usArticles := cr.Cross.At(us, pub)
		for r := 0; r < countryCount; r++ {
			if r == us {
				continue
			}
			if cr.Cross.At(r, pub) > usArticles {
				t.Fatalf("country %d out-reports US in column %d", r, pub)
			}
		}
	}
	// The US is the most reported country overall.
	if cr.TopReported[0] != us {
		t.Fatalf("top reported country %d want US", cr.TopReported[0])
	}
	// UK is the top publishing country (Table VI column order).
	if cr.TopPublishing[0] != uk {
		t.Fatalf("top publishing country %s want UK", gdelt.Countries[cr.TopPublishing[0]].FIPS)
	}

	// Table VII shape: the US share of every major column is 25-55% and
	// roughly consistent across publishing countries.
	var usShares []float64
	for _, pub := range []int{uk, us, as, in} {
		sh := cr.Fractions.At(us, pub)
		if sh < 20 || sh > 60 {
			t.Fatalf("US share of column %d is %.1f%%", pub, sh)
		}
		usShares = append(usShares, sh)
	}
	for _, sh := range usShares[1:] {
		if sh/usShares[0] < 0.5 || sh/usShares[0] > 2 {
			t.Fatalf("US shares inconsistent across publishers: %v", usShares)
		}
	}

	// Table V shape: the anglo cluster co-reports far above the rest.
	angloMin := cr.CoReporting.At(uk, us)
	if cr.CoReporting.At(uk, as) < angloMin {
		angloMin = cr.CoReporting.At(uk, as)
	}
	if cr.CoReporting.At(us, as) < angloMin {
		angloMin = cr.CoReporting.At(us, as)
	}
	it := gdelt.CountryIndex("IT")
	ni := gdelt.CountryIndex("NI")
	for _, weak := range [][2]int{{it, ni}, {ni, gdelt.CountryIndex("BG")}} {
		if cr.CoReporting.At(weak[0], weak[1]) >= angloMin {
			t.Fatalf("weak pair %v co-reports %.4f >= anglo %.4f",
				weak, cr.CoReporting.At(weak[0], weak[1]), angloMin)
		}
	}
	// India couples to the anglosphere more weakly than the anglo pairs.
	if cr.CoReporting.At(in, us) >= angloMin {
		t.Fatalf("India-US %.4f not below anglo min %.4f", cr.CoReporting.At(in, us), angloMin)
	}
	if !cr.CoReporting.IsSymmetric(1e-12) {
		t.Fatal("country co-reporting must be symmetric")
	}
}

func TestCountryQueryWorkerInvariance(t *testing.T) {
	e := testEngine(t)
	a, err := CountryQuery(e.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountryQuery(e.WithWorkers(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cross.Data {
		if a.Cross.Data[i] != b.Cross.Data[i] {
			t.Fatal("cross counts differ across worker counts")
		}
	}
	for i := range a.CoReporting.Data {
		if a.CoReporting.Data[i] != b.CoReporting.Data[i] {
			t.Fatal("co-reporting differs across worker counts")
		}
	}
}

func TestPublisherDelaysTableVIII(t *testing.T) {
	e := testEngine(t)
	ids, _ := TopPublishers(e, 10)
	rows := PublisherDelays(e, ids)
	if len(rows) != 10 {
		t.Fatal("rows")
	}
	for _, st := range rows {
		if st.Articles == 0 {
			t.Fatalf("top publisher %s has no articles", st.Name)
		}
		if st.Min < 1 {
			t.Fatalf("%s min %d", st.Name, st.Min)
		}
		if st.Median < 4 || st.Median > 48 {
			t.Fatalf("%s median %d intervals, want the 24h-cycle band (paper: 13-16)", st.Name, st.Median)
		}
		if st.Average <= float64(st.Median) {
			t.Fatalf("%s average %.1f not skewed above median %d", st.Name, st.Average, st.Median)
		}
		if st.Max < st.Median || st.Max > maxDelay {
			t.Fatalf("%s max %d", st.Name, st.Max)
		}
	}
	// The paper's top publishers all share a year-scale maximum (35135).
	// At their ~500k articles each the anniversary band is hit almost
	// surely; at this test corpus's ~2k articles per publisher a majority
	// suffices.
	yearScale := 0
	for _, st := range rows {
		if st.Max > gdelt.IntervalsPerYear-2*gdelt.IntervalsPerDay {
			yearScale++
		}
	}
	if yearScale < 5 {
		t.Fatalf("only %d of the top-10 have year-scale maxima", yearScale)
	}
}

func TestDelayDistributionShapes(t *testing.T) {
	e := testEngine(t)
	dd := DelayDistributionAll(e)
	if len(dd.PerSource) == 0 {
		t.Fatal("no sources")
	}
	// About half the sources have reported something within one interval
	// (generously bounded).
	minOne := 0
	for _, st := range dd.PerSource {
		if st.Min <= 1 {
			minOne++
		}
	}
	frac := float64(minOne) / float64(len(dd.PerSource))
	if frac < 0.2 || frac > 0.95 {
		t.Fatalf("fraction of sources with min delay 1: %.2f", frac)
	}
	// Maxima cluster at the news-cycle caps: more mass at/above the day
	// bucket than below it.
	if dd.Max.Total() != int64(len(dd.PerSource)) {
		t.Fatal("max histogram total")
	}
	dayBucket := dd.Max.Bucket(float64(gdelt.IntervalsPerDay))
	var below, atAbove int64
	for b, c := range dd.Max.Counts {
		if b < dayBucket {
			below += c
		} else {
			atAbove += c
		}
	}
	if atAbove < below {
		t.Fatalf("max delays not clustered at the cycle caps: %d below vs %d at/above", below, atAbove)
	}
	// The archive outlier group exists: some sources with min delay beyond
	// 2880 intervals (a month).
	outliers := 0
	for _, st := range dd.PerSource {
		if st.Min > 2880 {
			outliers++
		}
	}
	if outliers == 0 {
		t.Fatal("no archive-republisher outliers in min delay (Figure 9)")
	}
}

func TestQuarterlyDelaysTrend(t *testing.T) {
	e := testEngine(t)
	qd := QuarterlyDelays(e)
	nq := len(qd.Average)
	if nq != cachedDB.NumQuarters() {
		t.Fatal("length")
	}
	// Figure 10a: averages decline into 2019; Figure 10b: medians stable.
	avg2016 := (qd.Average[4] + qd.Average[5] + qd.Average[6] + qd.Average[7]) / 4
	avg2019 := (qd.Average[16] + qd.Average[17] + qd.Average[18] + qd.Average[19]) / 4
	if avg2019 >= avg2016*0.95 {
		t.Fatalf("average delay did not decline: 2016=%.1f 2019=%.1f", avg2016, avg2019)
	}
	for q := 1; q < nq; q++ {
		if qd.Median[q] < 2 || qd.Median[q] > 96 {
			t.Fatalf("quarter %d median %d outside the 24h cycle", q, qd.Median[q])
		}
	}
	// Median stability: max/min ratio across full quarters bounded.
	minM, maxM := qd.Median[1], qd.Median[1]
	for q := 2; q < nq; q++ {
		if qd.Median[q] < minM {
			minM = qd.Median[q]
		}
		if qd.Median[q] > maxM {
			maxM = qd.Median[q]
		}
	}
	if float64(maxM)/float64(minM) > 3 {
		t.Fatalf("medians not stable: %d..%d", minM, maxM)
	}
}

func TestSlowArticlesDecline(t *testing.T) {
	e := testEngine(t)
	sa := SlowArticlesPerQuarter(e)
	arts := ArticlesPerQuarter(e)
	// Figure 11: the >24h fraction declines significantly by 2019.
	frac := func(q int) float64 { return float64(sa.Values[q]) / float64(arts.Values[q]) }
	f2016 := (frac(4) + frac(5) + frac(6) + frac(7)) / 4
	f2019 := (frac(16) + frac(17) + frac(18) + frac(19)) / 4
	if f2019 >= f2016*0.8 {
		t.Fatalf(">24h fraction did not decline: 2016=%.4f 2019=%.4f", f2016, f2019)
	}
}
