package queries

import (
	"math"
	"testing"

	"gdeltmine/internal/gdelt"
)

func TestToneByCountry(t *testing.T) {
	e := testEngine(t)
	series := ToneByCountry(e, []string{"UK", "US", "XX"})
	if len(series) != 3 {
		t.Fatal("series count")
	}
	nq := cachedDB.NumQuarters()
	for _, s := range series[:2] {
		if len(s.Average) != nq || len(s.Count) != nq {
			t.Fatalf("%s: shape", s.Country)
		}
		var total int64
		for q := 0; q < nq; q++ {
			total += s.Count[q]
			if s.Count[q] > 0 && (math.IsNaN(s.Average[q]) || s.Average[q] < -20 || s.Average[q] > 20) {
				t.Fatalf("%s q%d tone %v", s.Country, q, s.Average[q])
			}
			if s.Count[q] == 0 && s.Average[q] != 0 {
				t.Fatalf("%s q%d has tone without articles", s.Country, q)
			}
		}
		if total == 0 {
			t.Fatalf("%s: no articles attributed", s.Country)
		}
	}
	// Unknown country: all zero.
	for q, n := range series[2].Count {
		if n != 0 || series[2].Average[q] != 0 {
			t.Fatal("unknown country should be empty")
		}
	}
}

func TestToneByCountryMatchesSerial(t *testing.T) {
	e := testEngine(t)
	db := cachedDB
	series := ToneByCountry(e, []string{"UK"})
	uk := series[0]
	// Serial recomputation of one quarter.
	const q = 5
	var sum float64
	var n int64
	ukIdx := int16(gdelt.CountryIndex("UK"))
	for row := 0; row < db.Mentions.Len(); row++ {
		if db.SourceCountry[db.Mentions.Source[row]] != ukIdx {
			continue
		}
		if db.QuarterOfInterval(db.Mentions.Interval[row]) != q {
			continue
		}
		sum += float64(db.Mentions.Tone[row])
		n++
	}
	if n != uk.Count[q] {
		t.Fatalf("count %d want %d", uk.Count[q], n)
	}
	if n > 0 && math.Abs(uk.Average[q]-sum/float64(n)) > 1e-9 {
		t.Fatalf("avg %v want %v", uk.Average[q], sum/float64(n))
	}
}
