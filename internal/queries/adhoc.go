package queries

import (
	"math"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/qlang"
	"gdeltmine/internal/store"
)

// Ad-hoc query execution (DESIGN.md §13): the generic evaluator behind
// /api/v1/query. A parsed qlang expression plus an optional group/aggregate
// spec lowers onto the typed kernels through a pushdown planner:
//
//   - bitmap clauses (equalities on source, sourcecountry, eventcountry)
//     intersect precomputed roaring row bitmaps; when the estimated
//     selectivity is at or below engine.RowsPlanThreshold the plan
//     materializes the intersection and runs row-list kernels over exactly
//     the surviving rows.
//   - range clauses (interval/quarter comparisons) narrow the engine's
//     mention window by binary search — free regardless of selectivity.
//   - residual clauses (tone, doclen, confidence, delay, articles, any !=)
//     bind to the closure evaluator and run only over the rows the indexed
//     clauses let through.
//
// Every path produces bit-identical integer results (the differential
// battery in internal/baseline pins pushdown ≡ closure ≡ raw rescan), so
// the plan choice is excluded from cache keys, exactly like the selection
// planner's.

// DefaultAdhocK is the row limit applied to grouped results when the
// request does not set k.
const DefaultAdhocK = 20

// AdhocSpec is one parsed ad-hoc query: a where-conjunction, an optional
// group field, and an aggregate. Where holds the canonical rendering of
// the expression — the string result caches key on.
type AdhocSpec struct {
	Expr  qlang.Expr
	Where string
	Group string
	Agg   qlang.Agg
	K     int
}

// ParseAdhocSpec validates and canonicalizes the raw request parameters.
// k defaults to DefaultAdhocK when unset; it only applies to grouped
// results.
func ParseAdhocSpec(where, group, agg string, k int) (AdhocSpec, error) {
	e, err := qlang.Parse(where)
	if err != nil {
		return AdhocSpec{}, err
	}
	g, err := qlang.ParseGroup(group)
	if err != nil {
		return AdhocSpec{}, err
	}
	a, err := qlang.ParseAgg(agg)
	if err != nil {
		return AdhocSpec{}, err
	}
	if k < 1 {
		k = DefaultAdhocK
	}
	return AdhocSpec{Expr: *e, Where: e.Canonical(), Group: g, Agg: a, K: k}, nil
}

// AdhocPlan is the explain output: the resolved physical plan for a spec,
// reported without executing it. Estimates, not measurements.
type AdhocPlan struct {
	Where       string   `json:"where"`
	Group       string   `json:"group,omitempty"`
	Agg         string   `json:"agg"`
	K           int      `json:"k,omitempty"`
	Path        string   `json:"path"`
	Kernel      string   `json:"kernel"`
	Pushdown    []string `json:"pushdown,omitempty"`
	Fallback    []string `json:"fallback,omitempty"`
	EstRows     int64    `json:"est_rows"`
	WindowRows  int64    `json:"window_rows"`
	Selectivity float64  `json:"selectivity"`
}

// adhocPlans counts resolved ad-hoc plans by path, one counter per value —
// the qlang analogue of planner_choice_total.
var adhocPlans = map[string]*obs.Counter{
	"pushdown": obs.Default.Counter("qlang_plan_total",
		"ad-hoc qlang plans resolved by the pushdown planner", obs.L("path", "pushdown")),
	"range": obs.Default.Counter("qlang_plan_total",
		"ad-hoc qlang plans resolved by the pushdown planner", obs.L("path", "range")),
	"scan": obs.Default.Counter("qlang_plan_total",
		"ad-hoc qlang plans resolved by the pushdown planner", obs.L("path", "scan")),
}

// adhocResolution is the outcome of planning one spec against one engine
// view: the chosen path, the (possibly range-narrowed) engine, the bitmaps
// to intersect under pushdown, and the clauses left to the closure
// evaluator.
type adhocResolution struct {
	path       string // "pushdown", "range" or "scan"
	eng        *engine.Engine
	bms        []*bitmap.Bitmap
	pushdown   []qlang.Clause
	residual   []qlang.Clause
	estRows    int64
	windowRows int64
}

// resolveAdhoc plans a spec against an engine view. Forced plan modes map
// onto the ad-hoc paths: PlanScan runs every clause as a closure over the
// original window (the honest baseline), PlanRows forces bitmap pushdown
// whenever a bitmap clause exists, and PlanAuto (or PlanEvents, which has
// no ad-hoc meaning) estimates selectivity from bitmap cardinalities and
// pushes down at or below engine.RowsPlanThreshold.
func resolveAdhoc(e *engine.Engine, spec AdhocSpec) adhocResolution {
	db := e.DB()
	r := adhocResolution{windowRows: int64(e.WindowSize())}
	if e.Plan() == engine.PlanScan {
		r.path, r.eng = "scan", e
		r.residual = spec.Expr.Clauses
		r.estRows = r.windowRows
		return r
	}
	bm, rng, residual := qlang.Split(spec.Expr.Clauses)
	ne := e
	for _, c := range rng {
		lo, hi := rangeClauseRows(db, c)
		ne = ne.WithRowWindow(lo, hi)
	}
	r.eng = ne
	r.pushdown, r.residual = rng, residual
	r.estRows = int64(ne.WindowSize())
	if len(bm) == 0 {
		if len(rng) > 0 {
			r.path = "range"
		} else {
			r.path = "scan"
		}
		return r
	}
	// The intersection can only shrink the smallest operand, so the
	// smallest cardinality (an O(containers) register sum) bounds the rows
	// the pushdown plan touches.
	bms := make([]*bitmap.Bitmap, len(bm))
	minCard := int64(-1)
	for i, c := range bm {
		bms[i] = clauseBitmap(db, c)
		if card := bms[i].Cardinality(); minCard < 0 || card < minCard {
			minCard = card
		}
	}
	if minCard < r.estRows {
		r.estRows = minCard
	}
	sel := 0.0
	if r.windowRows > 0 {
		sel = float64(r.estRows) / float64(r.windowRows)
	}
	if e.Plan() == engine.PlanRows || sel <= engine.RowsPlanThreshold {
		r.path = "pushdown"
		r.bms = bms
		r.pushdown = append(append([]qlang.Clause{}, bm...), rng...)
	} else {
		// Too dense to be worth materializing: keep the free range
		// narrowing, demote the bitmap clauses to the closure evaluator.
		r.path = "range"
		if len(rng) == 0 {
			r.path = "scan"
		}
		r.residual = append(append([]qlang.Clause{}, residual...), bm...)
	}
	return r
}

// rangeClauseRows maps one range clause to the half-open mention row span
// it admits, clamped to the archive. Out-of-archive literals resolve to an
// empty or full span exactly as the closure evaluator would.
func rangeClauseRows(db *store.DB, c qlang.Clause) (lo, hi int) {
	switch c.Field {
	case "interval":
		v := c.Value.Int
		switch c.Op {
		case qlang.OpEq:
			return intervalRows(db, v, incSat(v))
		case qlang.OpLt:
			return intervalRows(db, math.MinInt64, v)
		case qlang.OpLe:
			return intervalRows(db, math.MinInt64, incSat(v))
		case qlang.OpGt:
			return intervalRows(db, incSat(v), math.MaxInt64)
		case qlang.OpGe:
			return intervalRows(db, v, math.MaxInt64)
		}
	case "quarter":
		q := qlang.QuarterIndex(db, c.Value)
		switch c.Op {
		case qlang.OpEq:
			return quarterRows(db, q, q+1)
		case qlang.OpLt:
			return quarterRows(db, 0, q)
		case qlang.OpLe:
			return quarterRows(db, 0, q+1)
		case qlang.OpGt:
			return quarterRows(db, q+1, db.NumQuarters())
		case qlang.OpGe:
			return quarterRows(db, q, db.NumQuarters())
		}
	}
	return 0, db.Mentions.Len()
}

func incSat(v int64) int64 {
	if v == math.MaxInt64 {
		return v
	}
	return v + 1
}

// intervalRows clamps an interval span to the archive and binary-searches
// its mention row range.
func intervalRows(db *store.DB, fromIv, toIv int64) (lo, hi int) {
	n := int64(db.Meta.Intervals)
	if fromIv < 0 {
		fromIv = 0
	}
	if fromIv > n {
		fromIv = n
	}
	if toIv < fromIv {
		toIv = fromIv
	}
	if toIv > n {
		toIv = n
	}
	l, h := db.MentionRowRange(int32(fromIv), int32(toIv))
	return int(l), int(h)
}

// quarterRows maps a quarter span to its mention row range via the quarter
// index. Quarters outside the archive clamp to an empty span on the near
// edge.
func quarterRows(db *store.DB, fromQ, toQ int) (lo, hi int) {
	start := func(q int) int64 {
		if q <= 0 {
			return 0
		}
		if q >= db.NumQuarters() {
			return int64(db.Mentions.Len())
		}
		l, _ := db.QuarterMentionRange(q)
		return l
	}
	l, h := start(fromQ), start(toQ)
	if h < l {
		h = l
	}
	return int(l), int(h)
}

// clauseBitmap resolves one bitmap clause to its precomputed row bitmap. A
// literal absent from the store (unseen source) yields an empty bitmap —
// the same "matches nothing" the closure evaluator produces.
func clauseBitmap(db *store.DB, c qlang.Clause) *bitmap.Bitmap {
	switch c.Field {
	case "source":
		if id := db.Sources.Lookup(c.Value.Str); id >= 0 {
			return db.SourceRowBitmap(id)
		}
		return bitmap.New()
	case "sourcecountry":
		return db.CountryRowBitmap(gdelt.CountryIndex(c.Value.Str))
	default: // eventcountry; Classify admits no other field
		return db.EventCountryRowBitmap(gdelt.CountryIndex(c.Value.Str))
	}
}

// kernel names the aggregation kernel the resolved plan will run, for the
// explain output.
func (r *adhocResolution) kernel(spec AdhocSpec) string {
	grouped := spec.Group != ""
	hasResidual := len(r.residual) > 0
	count := spec.Agg.Kind == qlang.AggCount
	if r.path == "pushdown" {
		switch {
		case grouped && count && !hasResidual:
			return "GroupCountRows"
		case !grouped && count && !hasResidual:
			return "RowCount"
		default:
			return "ScanRows"
		}
	}
	switch {
	case grouped && count && !hasResidual:
		return "GroupCountCol"
	case grouped && count:
		return "GroupCount"
	case grouped:
		return "GroupCount+SumByGroup"
	case count && !hasResidual:
		return "WindowSize"
	case count:
		return "CountMentions"
	default:
		return "CountMentions+SumByGroup"
	}
}

// plan renders the resolution as the explain structure.
func (r *adhocResolution) plan(spec AdhocSpec) AdhocPlan {
	p := AdhocPlan{
		Where: spec.Where, Group: spec.Group, Agg: spec.Agg.String(),
		Path: r.path, Kernel: r.kernel(spec),
		EstRows: r.estRows, WindowRows: r.windowRows,
	}
	if spec.Group != "" {
		p.K = spec.K
	}
	for _, c := range r.pushdown {
		p.Pushdown = append(p.Pushdown, c.String())
	}
	for _, c := range r.residual {
		p.Fallback = append(p.Fallback, c.String())
	}
	if r.windowRows > 0 {
		p.Selectivity = float64(r.estRows) / float64(r.windowRows)
	}
	return p
}

// ExplainAdhoc plans a spec without executing it.
func ExplainAdhoc(e *engine.Engine, spec AdhocSpec) AdhocPlan {
	r := resolveAdhoc(e, spec)
	return r.plan(spec)
}

// MergeAdhocPlans folds per-shard explains into one: estimates sum, and
// when the shards agree on a path the merged plan reports it; shards that
// disagree (their local selectivities straddle the threshold) report
// "mixed". Shards plan independently at execution time, so the merged
// explain is a summary, not a promise of a single physical plan.
func MergeAdhocPlans(spec AdhocSpec, plans []AdhocPlan) AdhocPlan {
	if len(plans) == 0 {
		return AdhocPlan{Where: spec.Where, Group: spec.Group, Agg: spec.Agg.String()}
	}
	out := plans[0]
	out.EstRows, out.WindowRows, out.Selectivity = 0, 0, 0
	for _, p := range plans {
		out.EstRows += p.EstRows
		out.WindowRows += p.WindowRows
		if p.Path != out.Path {
			out.Path, out.Kernel = "mixed", "per-shard"
		}
	}
	if out.WindowRows > 0 {
		out.Selectivity = float64(out.EstRows) / float64(out.WindowRows)
	}
	return out
}

// GroupSpec describes the dictionary-encoded grouping column of one DB:
// group id = Remap[Col[row]] (or Col[row] when Remap is nil), ids outside
// [0, N) dropped. The sharded view passes global-width specs (l2gSrc for
// source grouping); the monolith uses AdhocGroupSpec.
type GroupSpec struct {
	N     int
	Col   []int32
	Remap []int32
}

// AdhocGroupSpec returns the grouping column spec for a group field
// against a monolithic DB. The zero GroupSpec means no grouping.
func AdhocGroupSpec(db *store.DB, group string) GroupSpec {
	switch group {
	case "source":
		return GroupSpec{N: db.Sources.Len(), Col: db.Mentions.Source}
	case "sourcecountry":
		return GroupSpec{N: len(gdelt.Countries), Col: db.Mentions.Source, Remap: db.SourceCountryLUT()}
	case "eventcountry":
		return GroupSpec{N: len(gdelt.Countries), Col: db.Mentions.EventRow, Remap: db.EventCountryLUT()}
	case "quarter":
		return GroupSpec{N: db.NumQuarters(), Col: db.Mentions.Interval, Remap: db.QuarterLUT()}
	}
	return GroupSpec{}
}

// AdhocVec is the raw aggregation output of one engine view: the matched
// row count, the scalar sum (sum/mean aggregates), and — when grouped —
// the per-group vectors. Integer counts are exact; sums are float64 and
// exact for the integer-valued fields (delay, doclen, confidence,
// articles) below 2^53.
type AdhocVec struct {
	Count  int64
	Sum    float64
	Counts []int64
	Sums   []float64
}

// AdhocVectors plans and executes a spec against one engine view,
// returning raw vectors for the caller to shape (or, sharded, to merge).
// The resolved path is recorded in qlang_plan_total{path=...}.
func AdhocVectors(e *engine.Engine, spec AdhocSpec, g GroupSpec) (AdhocVec, error) {
	r := resolveAdhoc(e, spec)
	if c := adhocPlans[r.path]; c != nil {
		c.Inc()
	}
	var residual *qlang.Filter
	if len(r.residual) > 0 {
		f, err := qlang.Bind(e.DB(), r.residual, spec.Where)
		if err != nil {
			return AdhocVec{}, err
		}
		residual = f
	}
	if r.path == "pushdown" {
		return adhocRows(r.eng, spec, g, r.materialize(), residual), nil
	}
	return adhocWindow(r.eng, spec, g, residual), nil
}

// materialize intersects the pushdown bitmaps and clips the ascending row
// list to the (range-narrowed) window.
func (r *adhocResolution) materialize() []int32 {
	bm := r.bms[0]
	for _, b := range r.bms[1:] {
		bm = bitmap.Intersect(bm, b)
	}
	rows := bm.AppendRows(make([]int32, 0, bm.Cardinality()))
	return r.eng.ClipRows(rows)
}

// adhocAcc is the generic ScanRows accumulator for pushdown aggregation
// with residual clauses or value aggregates.
type adhocAcc struct {
	count  int64
	sum    float64
	counts []int64
	sums   []float64
}

// adhocRows aggregates over a materialized row list. The no-residual count
// cases take the typed fast paths; everything else runs the generic
// row-list scan.
func adhocRows(e *engine.Engine, spec AdhocSpec, g GroupSpec, rows []int32, residual *qlang.Filter) AdhocVec {
	domain := e.WindowSize()
	grouped := spec.Group != ""
	if spec.Agg.Kind == qlang.AggCount && residual == nil {
		vec := AdhocVec{Count: int64(len(rows))}
		if grouped {
			vec.Counts = e.GroupCountRows(g.N, rows, domain, g.Col, g.Remap)
		}
		return vec
	}
	val := adhocValue(e.DB(), spec.Agg.Field)
	res := engine.ScanRows(e, rows, domain,
		func() *adhocAcc {
			a := &adhocAcc{}
			if grouped {
				a.counts = make([]int64, g.N)
				if val != nil {
					a.sums = make([]float64, g.N)
				}
			}
			return a
		},
		func(a *adhocAcc, seg []int32) *adhocAcc {
			for _, row := range seg {
				if !residual.Match(int(row)) {
					continue
				}
				a.count++
				var v float64
				if val != nil {
					v = val(int(row))
					a.sum += v
				}
				if grouped {
					gid := int(g.Col[row])
					if g.Remap != nil {
						gid = int(g.Remap[gid])
					}
					if gid >= 0 && gid < g.N {
						a.counts[gid]++
						if val != nil {
							a.sums[gid] += v
						}
					}
				}
			}
			return a
		},
		func(dst, src *adhocAcc) *adhocAcc {
			dst.count += src.count
			dst.sum += src.sum
			for i, c := range src.counts {
				dst.counts[i] += c
			}
			for i, s := range src.sums {
				dst.sums[i] += s
			}
			return dst
		},
	)
	return AdhocVec{Count: res.count, Sum: res.sum, Counts: res.counts, Sums: res.sums}
}

// adhocWindow aggregates over the engine window — the range and scan
// paths. Typed kernels handle the no-residual counts; residual clauses and
// value aggregates go through the closure kernels.
func adhocWindow(e *engine.Engine, spec AdhocSpec, g GroupSpec, residual *qlang.Filter) AdhocVec {
	grouped := spec.Group != ""
	val := adhocValue(e.DB(), spec.Agg.Field)
	groupOf := func(row int) int {
		gid := int(g.Col[row])
		if g.Remap != nil {
			gid = int(g.Remap[gid])
		}
		return gid
	}
	var vec AdhocVec
	if residual == nil {
		vec.Count = int64(e.WindowSize())
		if grouped {
			vec.Counts = e.GroupCountCol(g.N, g.Col, g.Remap)
		}
	} else {
		vec.Count = e.CountMentions(residual.Match)
		if grouped {
			vec.Counts = e.GroupCount(g.N, func(row int) int {
				if !residual.Match(row) {
					return -1
				}
				return groupOf(row)
			})
		}
	}
	if val != nil {
		if grouped {
			vec.Sums = e.SumByGroup(g.N, func(row int) (int, float64) {
				if !residual.Match(row) {
					return -1, 0
				}
				return groupOf(row), val(row)
			})
		} else {
			s := e.SumByGroup(1, func(row int) (int, float64) {
				if !residual.Match(row) {
					return -1, 0
				}
				return 0, val(row)
			})
			vec.Sum = s[0]
		}
	}
	return vec
}

// adhocValue returns the per-row value accessor of an aggregate field, or
// nil for count.
func adhocValue(db *store.DB, field string) func(row int) float64 {
	switch field {
	case "delay":
		return func(row int) float64 { return float64(db.Mentions.Delay[row]) }
	case "doclen":
		return func(row int) float64 { return float64(db.Mentions.DocLen[row]) }
	case "tone":
		return func(row int) float64 { return float64(db.Mentions.Tone[row]) }
	case "confidence":
		return func(row int) float64 { return float64(db.Mentions.Confidence[row]) }
	case "articles":
		return func(row int) float64 { return float64(db.Events.NumArticles[db.Mentions.EventRow[row]]) }
	}
	return nil
}

// AdhocRow is one grouped result row. Value carries the sum or mean when
// the aggregate has one; ranking is always by count ("the k most populous
// groups"), so ordering is integer-deterministic across plans, shard
// counts and worker counts.
type AdhocRow struct {
	Key   string   `json:"key"`
	Count int64    `json:"count"`
	Value *float64 `json:"value,omitempty"`
}

// AdhocResult is the shaped answer: the canonical where, the matched row
// count, the scalar aggregate value (ungrouped sum/mean), and the top-k
// grouped rows.
type AdhocResult struct {
	Where string     `json:"where"`
	Group string     `json:"group,omitempty"`
	Agg   string     `json:"agg"`
	Count int64      `json:"count"`
	Value *float64   `json:"value,omitempty"`
	Rows  []AdhocRow `json:"rows,omitempty"`
}

// ShapeAdhoc converts raw vectors into the result shape, resolving group
// ids to display keys. Zero-count groups never appear.
func ShapeAdhoc(spec AdhocSpec, vec AdhocVec, key func(g int) string) AdhocResult {
	out := AdhocResult{Where: spec.Where, Group: spec.Group, Agg: spec.Agg.String(), Count: vec.Count}
	if spec.Group == "" {
		switch spec.Agg.Kind {
		case qlang.AggSum:
			v := vec.Sum
			out.Value = &v
		case qlang.AggMean:
			if vec.Count > 0 {
				v := vec.Sum / float64(vec.Count)
				out.Value = &v
			}
		}
		return out
	}
	top := engine.TopK(len(vec.Counts), spec.K, func(i int) int64 { return vec.Counts[i] })
	for _, gid := range top {
		if vec.Counts[gid] == 0 {
			break
		}
		row := AdhocRow{Key: key(gid), Count: vec.Counts[gid]}
		switch spec.Agg.Kind {
		case qlang.AggSum:
			v := vec.Sums[gid]
			row.Value = &v
		case qlang.AggMean:
			v := vec.Sums[gid] / float64(vec.Counts[gid])
			row.Value = &v
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// adhocKey resolves group ids to display keys against a monolithic DB.
func adhocKey(db *store.DB, group string) func(g int) string {
	switch group {
	case "source":
		return func(g int) string { return db.Sources.Name(int32(g)) }
	case "sourcecountry", "eventcountry":
		return func(g int) string { return gdelt.Countries[g].FIPS }
	case "quarter":
		return db.QuarterLabel
	}
	return nil
}

// AdhocQuery plans, executes and shapes a spec against a monolithic engine
// view.
func AdhocQuery(e *engine.Engine, spec AdhocSpec) (AdhocResult, error) {
	db := e.DB()
	vec, err := AdhocVectors(e, spec, AdhocGroupSpec(db, spec.Group))
	if err != nil {
		return AdhocResult{}, err
	}
	return ShapeAdhoc(spec, vec, adhocKey(db, spec.Group)), nil
}
