package queries

import (
	"gdeltmine/internal/engine"
)

// The pre-algebra filtered queries, now thin shims over the ad-hoc
// planner: they gain bitmap pushdown for free, and the existing
// differential batteries over them pin the pushdown paths to the closure
// reference.

// CountWhere counts articles matching a qlang filter expression.
func CountWhere(e *engine.Engine, expr string) (int64, error) {
	spec, err := ParseAdhocSpec(expr, "", "", 0)
	if err != nil {
		return 0, err
	}
	vec, err := AdhocVectors(e, spec, GroupSpec{})
	if err != nil {
		return 0, err
	}
	return vec.Count, nil
}

// ArticlesPerQuarterWhere computes the quarterly article series restricted
// to a qlang filter expression.
func ArticlesPerQuarterWhere(e *engine.Engine, expr string) (QuarterlySeries, error) {
	spec, err := ParseAdhocSpec(expr, "quarter", "", 0)
	if err != nil {
		return QuarterlySeries{}, err
	}
	vec, err := AdhocVectors(e, spec, AdhocGroupSpec(e.DB(), "quarter"))
	if err != nil {
		return QuarterlySeries{}, err
	}
	return QuarterlySeries{Labels: quarterLabels(e), Values: vec.Counts}, nil
}

// TopPublishersWhere ranks sources by article count within a qlang filter.
func TopPublishersWhere(e *engine.Engine, expr string, k int) (ids []int32, counts []int64, err error) {
	spec, err := ParseAdhocSpec(expr, "source", "", k)
	if err != nil {
		return nil, nil, err
	}
	vec, err := AdhocVectors(e, spec, AdhocGroupSpec(e.DB(), "source"))
	if err != nil {
		return nil, nil, err
	}
	top := engine.TopK(len(vec.Counts), k, func(i int) int64 { return vec.Counts[i] })
	for _, s := range top {
		if vec.Counts[s] == 0 {
			break
		}
		ids = append(ids, int32(s))
		counts = append(counts, vec.Counts[s])
	}
	return ids, counts, nil
}
