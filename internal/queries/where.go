package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/qlang"
)

// CountWhere counts articles matching a qlang filter expression.
func CountWhere(e *engine.Engine, expr string) (int64, error) {
	f, err := qlang.Compile(e.DB(), expr)
	if err != nil {
		return 0, err
	}
	return e.CountMentions(f.Match), nil
}

// ArticlesPerQuarterWhere computes the quarterly article series restricted
// to a qlang filter expression.
func ArticlesPerQuarterWhere(e *engine.Engine, expr string) (QuarterlySeries, error) {
	db := e.DB()
	f, err := qlang.Compile(db, expr)
	if err != nil {
		return QuarterlySeries{}, err
	}
	vals := e.GroupCount(db.NumQuarters(), func(row int) int {
		if !f.Match(row) {
			return -1
		}
		return db.QuarterOfInterval(db.Mentions.Interval[row])
	})
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}, nil
}

// TopPublishersWhere ranks sources by article count within a qlang filter.
func TopPublishersWhere(e *engine.Engine, expr string, k int) (ids []int32, counts []int64, err error) {
	db := e.DB()
	f, err := qlang.Compile(db, expr)
	if err != nil {
		return nil, nil, err
	}
	perSource := e.GroupCount(db.Sources.Len(), func(row int) int {
		if !f.Match(row) {
			return -1
		}
		return int(db.Mentions.Source[row])
	})
	top := engine.TopK(len(perSource), k, func(i int) int64 { return perSource[i] })
	for _, s := range top {
		if perSource[s] == 0 {
			break
		}
		ids = append(ids, int32(s))
		counts = append(counts, perSource[s])
	}
	return ids, counts, nil
}
