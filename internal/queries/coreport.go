package queries

import (
	"sync"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
)

// CoReporting is the Section VI-B co-reporting result over a selected set
// of sources: the symmetric Jaccard matrix c_ij = e_ij / (e_i + e_j - e_ij).
type CoReporting struct {
	Sources []int32
	Names   []string
	// EventCounts[i] = e_i, events reported by source i.
	EventCounts []int64
	// Pair[i][j] = e_ij, events reported by both.
	Pair *matrix.Int64
	// Jaccard is the co-reporting matrix (diagonal zero).
	Jaccard *matrix.Dense
}

// CoReport computes co-reporting among the selected sources. The scan is
// parallel over events with per-worker pair matrices; for the dense
// top-50-style selections this mirrors the paper's dense-matrix strategy,
// and the per-event work is O(k·m) for k articles and m selected reporters.
func CoReport(e *engine.Engine, sources []int32) (*CoReporting, error) {
	db := e.DB()
	n := len(sources)
	sel := make(map[int32]int, n)
	for i, s := range sources {
		sel[s] = i
	}
	type partial struct {
		pair   *matrix.Int64
		counts []int64
	}
	res := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *partial {
			return &partial{pair: matrix.NewInt64(n, n), counts: make([]int64, n)}
		},
		func(acc *partial, lo, hi int) *partial {
			present := make([]int, 0, 16)
			mark := make([]bool, n)
			for ev := lo; ev < hi; ev++ {
				present = present[:0]
				for _, row := range db.EventMentions(int32(ev)) {
					if i, ok := sel[db.Mentions.Source[row]]; ok && !mark[i] {
						mark[i] = true
						present = append(present, i)
					}
				}
				for _, i := range present {
					mark[i] = false
					acc.counts[i]++
				}
				for a := 0; a < len(present); a++ {
					for b := a + 1; b < len(present); b++ {
						i, j := present[a], present[b]
						acc.pair.Inc(i, j)
						acc.pair.Inc(j, i)
					}
				}
			}
			return acc
		},
		func(dst, src *partial) *partial {
			if err := dst.pair.AddMatrix(src.pair); err != nil {
				panic(err)
			}
			for i, v := range src.counts {
				dst.counts[i] += v
			}
			return dst
		},
	)
	jac, err := matrix.JaccardFromPairCounts(res.pair, res.counts)
	if err != nil {
		return nil, err
	}
	out := &CoReporting{
		Sources:     sources,
		EventCounts: res.counts,
		Pair:        res.pair,
		Jaccard:     jac,
	}
	for _, s := range sources {
		out.Names = append(out.Names, db.Sources.Name(s))
	}
	return out, nil
}

// SliceStats describes a time-sliced co-reporting computation.
type SliceStats struct {
	// Slices is the number of time spans (calendar quarters).
	Slices int
	// PieceNNZ is the nonzero count of each per-slice sparse pair matrix.
	PieceNNZ []int
	// AssembledNNZ is the nonzero count of the assembled global matrix.
	AssembledNNZ int
}

// CoReportSliced computes the same result as CoReport via the strategy
// Section VI-B proposes for source populations too large for one dense
// matrix: build a compressed sparse pair matrix per limited time span (one
// per calendar quarter, with each event assigned to the quarter it
// happened in), then assemble the pieces into the global matrix. Assigning
// each event to exactly one slice makes the assembly exact, not an
// approximation.
func CoReportSliced(e *engine.Engine, sources []int32) (*CoReporting, *SliceStats, error) {
	db := e.DB()
	n := len(sources)
	sel := make(map[int32]int, n)
	for i, s := range sources {
		sel[s] = i
	}
	nq := db.NumQuarters()
	pieces := make([]*matrix.CSR, nq)
	counts := make([]int64, n)
	var mu sync.Mutex

	// Bucket events by the quarter they happened in, once.
	evByQuarter := make([][]int32, nq)
	for ev := 0; ev < db.Events.Len(); ev++ {
		q := db.QuarterOfInterval(db.Events.Interval[ev])
		evByQuarter[q] = append(evByQuarter[q], int32(ev))
	}

	parallel.ForOpt(nq, scanOptGrain1(e), func(qlo, qhi int) {
		localCounts := make([]int64, n)
		present := make([]int, 0, 16)
		mark := make([]bool, n)
		for q := qlo; q < qhi; q++ {
			// Accumulate the slice densely (within one limited time span
			// the active selection is small), then compress — exactly the
			// paper's "compressed into a sparse format and assembled".
			slice := matrix.NewInt64(n, n)
			for _, ev := range evByQuarter[q] {
				present = present[:0]
				for _, row := range db.EventMentions(ev) {
					if i, ok := sel[db.Mentions.Source[row]]; ok && !mark[i] {
						mark[i] = true
						present = append(present, i)
					}
				}
				for _, i := range present {
					mark[i] = false
					localCounts[i]++
				}
				for a := 0; a < len(present); a++ {
					for b := a + 1; b < len(present); b++ {
						slice.Inc(present[a], present[b])
						slice.Inc(present[b], present[a])
					}
				}
			}
			pieces[q] = matrix.FromDense(slice.ToDense(), 0)
		}
		mu.Lock()
		for i, v := range localCounts {
			counts[i] += v
		}
		mu.Unlock()
	})

	global, err := matrix.AssembleCSR(pieces)
	if err != nil {
		return nil, nil, err
	}
	stats := &SliceStats{Slices: nq, AssembledNNZ: global.NNZ()}
	for _, p := range pieces {
		stats.PieceNNZ = append(stats.PieceNNZ, p.NNZ())
	}
	dense := global.ToDense()
	pair := matrix.NewInt64(n, n)
	for i := range dense.Data {
		pair.Data[i] = int64(dense.Data[i])
	}
	jac, err := matrix.JaccardFromPairCounts(pair, counts)
	if err != nil {
		return nil, nil, err
	}
	out := &CoReporting{Sources: sources, EventCounts: counts, Pair: pair, Jaccard: jac}
	for _, s := range sources {
		out.Names = append(out.Names, db.Sources.Name(s))
	}
	return out, stats, nil
}

// FollowReporting is the Table IV / Figure 7 result: f_ij = n_ij / n_j where
// n_ij counts articles by source j on events that source i published on at a
// strictly earlier capture interval, and n_j is the total number of articles
// published by j. The diagonal counts self-follow-ups (repeat articles by
// the same source on an event it already covered).
type FollowReporting struct {
	Sources  []int32
	Names    []string
	Articles []int64 // n_j over all events
	N        *matrix.Int64
	F        *matrix.Dense
	// ColSums[j] = sum_i f_ij, the fraction of j's articles that follow any
	// of the selected publishers (the "Sum" row of Table IV).
	ColSums []float64
}

// FollowReport computes follow-reporting among the selected sources.
func FollowReport(e *engine.Engine, sources []int32) *FollowReporting {
	db := e.DB()
	n := len(sources)
	sel := make(map[int32]int, n)
	for i, s := range sources {
		sel[s] = i
	}
	articles := make([]int64, n)
	for i, s := range sources {
		articles[i] = int64(len(db.SourceMentions(s)))
	}
	nm := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *matrix.Int64 { return matrix.NewInt64(n, n) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			firstSeen := make([]int32, n)
			touched := make([]int, 0, 16)
			for i := range firstSeen {
				firstSeen[i] = -1
			}
			for ev := lo; ev < hi; ev++ {
				rows := db.EventMentions(int32(ev))
				for _, row := range rows {
					j, ok := sel[db.Mentions.Source[row]]
					if !ok {
						continue
					}
					t := db.Mentions.Interval[row]
					// Every selected source first seen strictly earlier is
					// a leader of this article.
					for _, i := range touched {
						if firstSeen[i] < t {
							acc.Inc(i, j)
						}
					}
					if firstSeen[j] < 0 {
						firstSeen[j] = t
						touched = append(touched, j)
					}
				}
				for _, i := range touched {
					firstSeen[i] = -1
				}
				touched = touched[:0]
			}
			return acc
		},
		func(dst, src *matrix.Int64) *matrix.Int64 {
			if err := dst.AddMatrix(src); err != nil {
				panic(err)
			}
			return dst
		},
	)
	f := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if articles[j] > 0 {
				f.Set(i, j, float64(nm.At(i, j))/float64(articles[j]))
			}
		}
	}
	out := &FollowReporting{
		Sources:  sources,
		Articles: articles,
		N:        nm,
		F:        f,
		ColSums:  f.ColSums(),
	}
	for _, s := range sources {
		out.Names = append(out.Names, db.Sources.Name(s))
	}
	return out
}
