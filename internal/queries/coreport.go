package queries

import (
	"sync"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/store"
)

// CoReporting is the Section VI-B co-reporting result over a selected set
// of sources: the symmetric Jaccard matrix c_ij = e_ij / (e_i + e_j - e_ij).
type CoReporting struct {
	Sources []int32
	Names   []string
	// EventCounts[i] = e_i, events reported by source i.
	EventCounts []int64
	// Pair[i][j] = e_ij, events reported by both.
	Pair *matrix.Int64
	// Jaccard is the co-reporting matrix (diagonal zero).
	Jaccard *matrix.Dense
}

// slotLUT builds the source→selection-slot remap column: slot[s] is the
// index of s in sources, or -1 when unselected. Duplicate ids resolve to the
// last occurrence, matching the maps the closure versions used to build.
func slotLUT(nSources int, sources []int32) []int32 {
	slot := make([]int32, nSources)
	for i := range slot {
		slot[i] = -1
	}
	for i, s := range sources {
		slot[s] = int32(i)
	}
	return slot
}

// eventGroups is the postings-pruned execution plan for a source selection:
// every mention row published by a selected source, grouped by the event it
// reports on, rows ascending (= ascending capture interval) within each
// group. Groups[g] = rows[ptr[g]:ptr[g+1]]. Events with no selected-source
// mention have no group — they cannot contribute to co- or follow-reporting
// among the selection — and mention rows of unselected sources are never
// touched at all, so building and scanning the plan costs O(Σ postings of
// the selected sources · log + events) instead of a pass over every mention
// of every event.
type eventGroups struct {
	rows []int32
	ptr  []int32
	// idx enumerates the groups (0..len(ptr)-2) for engine.ScanRows.
	idx []int32
}

func groupSelectedMentions(e *engine.Engine, sources []int32) *eventGroups {
	db := e.DB()
	// Union the selected sources' row bitmaps: duplicates in the selection
	// collapse for free, and extraction yields every selected row in globally
	// ascending order. Ascending rows stay ascending within each group under
	// a stable counting sort, so no per-group re-sorting is needed — the
	// per-group insertion sorts this replaces were the cost that regressed
	// high-selectivity top-k panels below the full scan.
	bms := make([]*bitmap.Bitmap, len(sources))
	for i, s := range sources {
		bms[i] = db.SourceRowBitmap(s)
	}
	u := bitmap.UnionAll(bms)
	total := u.Cardinality()
	selRows := u.AppendRows(make([]int32, 0, total))

	// Dense event index (first-appearance order) and a stable counting sort
	// of the selected rows into per-event groups.
	evIndex := make([]int32, db.Events.Len()) // dense group index + 1; 0 = absent
	counts := make([]int32, 0, 256)
	for _, r := range selRows {
		ev := db.Mentions.EventRow[r]
		g := evIndex[ev]
		if g == 0 {
			counts = append(counts, 0)
			g = int32(len(counts))
			evIndex[ev] = g
		}
		counts[g-1]++
	}
	groups := len(counts)
	ptr := make([]int32, groups+1)
	for g, c := range counts {
		ptr[g+1] = ptr[g] + c
	}
	grouped := make([]int32, total)
	cur := make([]int32, groups)
	for _, r := range selRows {
		g := evIndex[db.Mentions.EventRow[r]] - 1
		grouped[int(ptr[g])+int(cur[g])] = r
		cur[g]++
	}
	eg := &eventGroups{rows: grouped, ptr: ptr, idx: make([]int32, groups)}
	for g := range eg.idx {
		eg.idx[g] = int32(g)
	}
	return eg
}

// activeSlots returns the panel positions that survive duplicate
// resolution: slot[sources[i]] == i exactly when position i is the last
// occurrence of its source. Shadowed positions are inert — the scan never
// marks them present — so the bitmap-algebra plans must compute them as
// zeros, which skipping them here achieves.
func activeSlots(sources []int32, slot []int32) []int32 {
	act := make([]int32, 0, len(sources))
	for i, s := range sources {
		if slot[s] == int32(i) {
			act = append(act, int32(i))
		}
	}
	return act
}

// contributingEvents returns the event rows that can contribute to
// follow-reporting among the selection, ascending: an event matters only
// when it holds at least two selected mention rows, i.e. when two distinct
// selected sources co-occur on it (AtLeastTwo over the selection's event
// bitmaps) or one selected source mentions it twice (the store's repeat-
// event bitmaps). Events outside the set hold at most one selected row,
// which sets a firstSeen mark and increments nothing — so restricting the
// scan to this set is exact, not an approximation.
func contributingEvents(e *engine.Engine, sources []int32, slot []int32) []int32 {
	db := e.DB()
	act := activeSlots(sources, slot)
	evBMs := make([]*bitmap.Bitmap, len(act))
	repBMs := make([]*bitmap.Bitmap, 0, len(act)+1)
	for i, a := range act {
		s := sources[a]
		evBMs[i] = db.SourceEventBitmap(s)
		repBMs = append(repBMs, db.SourceRepeatEventBitmap(s))
	}
	repBMs = append(repBMs, bitmap.AtLeastTwo(evBMs))
	u := bitmap.UnionAll(repBMs)
	return u.AppendRows(make([]int32, 0, u.Cardinality()))
}

// group returns the mention rows of dense group g, ascending by interval.
func (eg *eventGroups) group(g int32) []int32 { return eg.rows[eg.ptr[g]:eg.ptr[g+1]] }

// coPartial is a worker-local accumulator for co-reporting scans.
type coPartial struct {
	pair   *matrix.Int64
	counts []int64
}

func newCoPartial(n int) *coPartial {
	return &coPartial{
		pair:   &matrix.Int64{Rows: n, Cols: n, Data: parallel.GetInt64(n * n)},
		counts: parallel.GetInt64(n),
	}
}

func mergeCoPartials(dst, src *coPartial) *coPartial {
	if err := dst.pair.AddMatrix(src.pair); err != nil {
		panic(err)
	}
	for i, v := range src.counts {
		dst.counts[i] += v
	}
	parallel.PutInt64(src.pair.Data)
	parallel.PutInt64(src.counts)
	src.pair.Data, src.counts = nil, nil
	return dst
}

// coReportRows folds the selected mention rows of one event into acc: mark
// the selected sources present, bump their event counts, and count every
// unordered present pair in both triangles.
func coReportRows(db *store.DB, acc *coPartial, rows []int32, slot []int32, present []int32, mark []bool) {
	present = present[:0]
	for _, row := range rows {
		if i := slot[db.Mentions.Source[row]]; i >= 0 && !mark[i] {
			mark[i] = true
			present = append(present, i)
		}
	}
	for _, i := range present {
		mark[i] = false
		acc.counts[i]++
	}
	for a := 0; a < len(present); a++ {
		for b := a + 1; b < len(present); b++ {
			i, j := present[a], present[b]
			acc.pair.Inc(int(i), int(j))
			acc.pair.Inc(int(j), int(i))
		}
	}
}

func finishCoReport(e *engine.Engine, sources []int32, res *coPartial) (*CoReporting, error) {
	names := make([]string, 0, len(sources))
	for _, s := range sources {
		names = append(names, e.DB().Sources.Name(s))
	}
	return FinishCoReporting(sources, names, res.counts, res.pair)
}

// FinishCoReporting assembles the CoReporting result from the raw pair and
// singleton counts. Display names are caller-supplied: the monolithic path
// resolves them in the store's dictionary, the sharded path in the global
// one.
func FinishCoReporting(sources []int32, names []string, counts []int64, pair *matrix.Int64) (*CoReporting, error) {
	jac, err := matrix.JaccardFromPairCounts(pair, counts)
	if err != nil {
		return nil, err
	}
	return &CoReporting{
		Sources:     sources,
		Names:       names,
		EventCounts: counts,
		Pair:        pair,
		Jaccard:     jac,
	}, nil
}

// CoReport computes co-reporting among the selected sources through the
// plan the cost-based planner resolves (engine.PlanSelection): bitmap-pruned
// row extraction when the selection is sparse, the candidate-events plan
// when it is dense, or — only when forced — the full closure scan. All three
// produce identical results (the planner differential battery pins this).
func CoReport(e *engine.Engine, sources []int32) (*CoReporting, error) {
	switch e.PlanSelection(sources) {
	case engine.PlanScan:
		return CoReportScan(e, sources)
	case engine.PlanEvents:
		return coReportEvents(e, sources)
	}
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	eg := groupSelectedMentions(e, sources)
	res := engine.ScanRows(e, eg.idx, db.Events.Len(),
		func() *coPartial { return newCoPartial(n) },
		func(acc *coPartial, groups []int32) *coPartial {
			present := make([]int32, 0, 16)
			mark := make([]bool, n)
			for _, g := range groups {
				coReportRows(db, acc, eg.group(g), slot, present, mark)
			}
			return acc
		},
		mergeCoPartials,
	)
	return finishCoReport(e, sources, res)
}

// coReportEvents is the event-bitmap algebra plan: the scan's pair count is,
// by definition, the number of events where both sources appear — exactly
// the intersection cardinality of their event bitmaps — and its singleton
// count is the event-bitmap cardinality. No mention row is touched at all:
// the k×k result costs O(k² × containers) register work, which on dense
// top-k panels is an order of magnitude under the scan it replaces.
// Shadowed duplicate panel positions stay all-zero, matching the scan's
// last-occurrence slot resolution.
func coReportEvents(e *engine.Engine, sources []int32) (*CoReporting, error) {
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	act := activeSlots(sources, slot)
	bms := make([]*bitmap.Bitmap, len(act))
	res := newCoPartial(n)
	for ai, i := range act {
		bms[ai] = db.SourceEventBitmap(sources[i])
		res.counts[i] = bms[ai].Cardinality()
	}
	cards := bitmap.PairwiseIntersectCards(bms)
	for ai, i := range act {
		for bj, j := range act[ai+1:] {
			c := cards[ai][ai+1+bj]
			res.pair.Set(int(i), int(j), c)
			res.pair.Set(int(j), int(i), c)
		}
	}
	return finishCoReport(e, sources, res)
}

// CoReportScan is the full-scan closure fallback of CoReport: a parallel
// pass over every event and every one of its mentions, with per-worker pair
// matrices. It is kept as the reference implementation the differential
// harness pins the pruned path against, and as the baseline the kernel
// benchmark measures pruning from.
func CoReportScan(e *engine.Engine, sources []int32) (*CoReporting, error) {
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	res := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *coPartial { return newCoPartial(n) },
		func(acc *coPartial, lo, hi int) *coPartial {
			present := make([]int32, 0, 16)
			mark := make([]bool, n)
			for ev := lo; ev < hi; ev++ {
				coReportRows(db, acc, db.EventMentions(int32(ev)), slot, present, mark)
			}
			return acc
		},
		mergeCoPartials,
	)
	return finishCoReport(e, sources, res)
}

// SliceStats describes a time-sliced co-reporting computation.
type SliceStats struct {
	// Slices is the number of time spans (calendar quarters).
	Slices int
	// PieceNNZ is the nonzero count of each per-slice sparse pair matrix.
	PieceNNZ []int
	// AssembledNNZ is the nonzero count of the assembled global matrix.
	AssembledNNZ int
}

// CoReportSliced computes the same result as CoReport via the strategy
// Section VI-B proposes for source populations too large for one dense
// matrix: build a compressed sparse pair matrix per limited time span (one
// per calendar quarter, with each event assigned to the quarter it
// happened in), then assemble the pieces into the global matrix. Assigning
// each event to exactly one slice makes the assembly exact, not an
// approximation.
func CoReportSliced(e *engine.Engine, sources []int32) (*CoReporting, *SliceStats, error) {
	db := e.DB()
	n := len(sources)
	sel := make(map[int32]int, n)
	for i, s := range sources {
		sel[s] = i
	}
	nq := db.NumQuarters()
	pieces := make([]*matrix.CSR, nq)
	counts := make([]int64, n)
	var mu sync.Mutex

	// Bucket events by the quarter they happened in, once.
	evByQuarter := make([][]int32, nq)
	for ev := 0; ev < db.Events.Len(); ev++ {
		q := db.QuarterOfInterval(db.Events.Interval[ev])
		evByQuarter[q] = append(evByQuarter[q], int32(ev))
	}

	parallel.ForOpt(nq, scanOptGrain1(e), func(qlo, qhi int) {
		localCounts := make([]int64, n)
		present := make([]int, 0, 16)
		mark := make([]bool, n)
		for q := qlo; q < qhi; q++ {
			// Accumulate the slice densely (within one limited time span
			// the active selection is small), then compress — exactly the
			// paper's "compressed into a sparse format and assembled".
			slice := matrix.NewInt64(n, n)
			for _, ev := range evByQuarter[q] {
				present = present[:0]
				for _, row := range db.EventMentions(ev) {
					if i, ok := sel[db.Mentions.Source[row]]; ok && !mark[i] {
						mark[i] = true
						present = append(present, i)
					}
				}
				for _, i := range present {
					mark[i] = false
					localCounts[i]++
				}
				for a := 0; a < len(present); a++ {
					for b := a + 1; b < len(present); b++ {
						slice.Inc(present[a], present[b])
						slice.Inc(present[b], present[a])
					}
				}
			}
			pieces[q] = matrix.FromDense(slice.ToDense(), 0)
		}
		mu.Lock()
		for i, v := range localCounts {
			counts[i] += v
		}
		mu.Unlock()
	})

	global, err := matrix.AssembleCSR(pieces)
	if err != nil {
		return nil, nil, err
	}
	stats := &SliceStats{Slices: nq, AssembledNNZ: global.NNZ()}
	for _, p := range pieces {
		stats.PieceNNZ = append(stats.PieceNNZ, p.NNZ())
	}
	dense := global.ToDense()
	pair := matrix.NewInt64(n, n)
	for i := range dense.Data {
		pair.Data[i] = int64(dense.Data[i])
	}
	jac, err := matrix.JaccardFromPairCounts(pair, counts)
	if err != nil {
		return nil, nil, err
	}
	out := &CoReporting{Sources: sources, EventCounts: counts, Pair: pair, Jaccard: jac}
	for _, s := range sources {
		out.Names = append(out.Names, db.Sources.Name(s))
	}
	return out, stats, nil
}

// FollowReporting is the Table IV / Figure 7 result: f_ij = n_ij / n_j where
// n_ij counts articles by source j on events that source i published on at a
// strictly earlier capture interval, and n_j is the total number of articles
// published by j. The diagonal counts self-follow-ups (repeat articles by
// the same source on an event it already covered).
type FollowReporting struct {
	Sources  []int32
	Names    []string
	Articles []int64 // n_j over all events
	N        *matrix.Int64
	F        *matrix.Dense
	// ColSums[j] = sum_i f_ij, the fraction of j's articles that follow any
	// of the selected publishers (the "Sum" row of Table IV).
	ColSums []float64
}

// followReportRows folds one event's mention rows (ascending by capture
// interval, so a single forward pass sees leaders before followers) into
// acc. Unselected rows contribute nothing, so the pruned path may pass only
// the event's selected-source rows and get the identical result.
func followReportRows(db *store.DB, acc *matrix.Int64, rows []int32, slot []int32, firstSeen []int32, touched []int32) []int32 {
	for _, row := range rows {
		j := slot[db.Mentions.Source[row]]
		if j < 0 {
			continue
		}
		t := db.Mentions.Interval[row]
		// Every selected source first seen strictly earlier is a leader of
		// this article.
		for _, i := range touched {
			if firstSeen[i] < t {
				acc.Inc(int(i), int(j))
			}
		}
		if firstSeen[j] < 0 {
			firstSeen[j] = t
			touched = append(touched, j)
		}
	}
	for _, i := range touched {
		firstSeen[i] = -1
	}
	return touched[:0]
}

func finishFollowReport(e *engine.Engine, sources []int32, articles []int64, nm *matrix.Int64) *FollowReporting {
	names := make([]string, 0, len(sources))
	for _, s := range sources {
		names = append(names, e.DB().Sources.Name(s))
	}
	return FinishFollowReporting(sources, names, articles, nm)
}

// FinishFollowReporting assembles the FollowReporting result from the raw
// follow matrix and per-source article totals, with caller-supplied display
// names (see FinishCoReporting).
func FinishFollowReporting(sources []int32, names []string, articles []int64, nm *matrix.Int64) *FollowReporting {
	n := len(sources)
	f := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if articles[j] > 0 {
				f.Set(i, j, float64(nm.At(i, j))/float64(articles[j]))
			}
		}
	}
	return &FollowReporting{
		Sources:  sources,
		Names:    names,
		Articles: articles,
		N:        nm,
		F:        f,
		ColSums:  f.ColSums(),
	}
}

func selectedArticles(e *engine.Engine, sources []int32) []int64 {
	articles := make([]int64, len(sources))
	for i, s := range sources {
		articles[i] = int64(len(e.DB().SourceMentions(s)))
	}
	return articles
}

// FollowReport computes follow-reporting among the selected sources through
// the planner-resolved plan, like CoReport. FollowReportScan is the closure
// reference, reachable only by forcing engine.PlanScan.
func FollowReport(e *engine.Engine, sources []int32) *FollowReporting {
	switch e.PlanSelection(sources) {
	case engine.PlanScan:
		return FollowReportScan(e, sources)
	case engine.PlanEvents:
		return followReportEvents(e, sources)
	}
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	eg := groupSelectedMentions(e, sources)
	nm := engine.ScanRows(e, eg.idx, db.Events.Len(),
		func() *matrix.Int64 { return &matrix.Int64{Rows: n, Cols: n, Data: parallel.GetInt64(n * n)} },
		func(acc *matrix.Int64, groups []int32) *matrix.Int64 {
			firstSeen := make([]int32, n)
			for i := range firstSeen {
				firstSeen[i] = -1
			}
			touched := make([]int32, 0, 16)
			for _, g := range groups {
				touched = followReportRows(db, acc, eg.group(g), slot, firstSeen, touched)
			}
			return acc
		},
		mergeReleaseMatrixSerial,
	)
	return finishFollowReport(e, sources, selectedArticles(e, sources), nm)
}

// followReportEvents is the contributing-events plan of FollowReport: full
// mention lists of only the events that can contribute — at least two
// selected rows — so the ascending-interval leader pass sees exactly the
// rows whose contribution is nonzero.
func followReportEvents(e *engine.Engine, sources []int32) *FollowReporting {
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	evs := contributingEvents(e, sources, slot)
	nm := engine.ScanRows(e, evs, db.Events.Len(),
		func() *matrix.Int64 { return &matrix.Int64{Rows: n, Cols: n, Data: parallel.GetInt64(n * n)} },
		func(acc *matrix.Int64, events []int32) *matrix.Int64 {
			firstSeen := make([]int32, n)
			for i := range firstSeen {
				firstSeen[i] = -1
			}
			touched := make([]int32, 0, 16)
			for _, ev := range events {
				touched = followReportRows(db, acc, db.EventMentions(ev), slot, firstSeen, touched)
			}
			return acc
		},
		mergeReleaseMatrixSerial,
	)
	return finishFollowReport(e, sources, selectedArticles(e, sources), nm)
}

// FollowReportScan is the full-scan fallback of FollowReport, kept as the
// reference implementation for the differential harness and the kernel
// benchmark's pruning baseline.
func FollowReportScan(e *engine.Engine, sources []int32) *FollowReporting {
	db := e.DB()
	n := len(sources)
	slot := slotLUT(db.Sources.Len(), sources)
	nm := parallel.MapReduce(db.Events.Len(), e.ScanOptions(),
		func() *matrix.Int64 { return &matrix.Int64{Rows: n, Cols: n, Data: parallel.GetInt64(n * n)} },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			firstSeen := make([]int32, n)
			for i := range firstSeen {
				firstSeen[i] = -1
			}
			touched := make([]int32, 0, 16)
			for ev := lo; ev < hi; ev++ {
				touched = followReportRows(db, acc, db.EventMentions(int32(ev)), slot, firstSeen, touched)
			}
			return acc
		},
		mergeReleaseMatrixSerial,
	)
	return finishFollowReport(e, sources, selectedArticles(e, sources), nm)
}

// mergeReleaseMatrixSerial folds src into dst and recycles src's pooled
// backing buffer (selection matrices are k×k for small k, so the serial add
// is already cheap).
func mergeReleaseMatrixSerial(dst, src *matrix.Int64) *matrix.Int64 {
	if err := dst.AddMatrix(src); err != nil {
		panic(err)
	}
	parallel.PutInt64(src.Data)
	src.Data = nil
	return dst
}
