package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
)

// QuarterlySeries bundles a per-quarter integer series with its labels.
type QuarterlySeries struct {
	Labels []string
	Values []int64
}

func quarterLabels(e *engine.Engine) []string {
	db := e.DB()
	labels := make([]string, db.NumQuarters())
	for q := range labels {
		labels[q] = db.QuarterLabel(q)
	}
	return labels
}

// ArticlesPerQuarter computes Figure 5: the number of articles observed in
// each quarter.
func ArticlesPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	vals := e.GroupCount(db.NumQuarters(), func(row int) int {
		return db.QuarterOfInterval(db.Mentions.Interval[row])
	})
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// EventsPerQuarter computes Figure 4: the number of events observed (by
// event time) in each quarter.
func EventsPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	vals := e.GroupCountEvents(db.NumQuarters(), func(row int) int {
		if db.Events.NumArticles[row] == 0 {
			return -1 // never observed
		}
		return db.QuarterOfInterval(db.Events.Interval[row])
	})
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// ActiveSourcesPerQuarter computes Figure 3: the number of sources that
// published at least one article in each quarter. Each worker walks a range
// of sources and marks activity from its postings.
func ActiveSourcesPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	nq := db.NumQuarters()
	vals := parallel.MapReduce(db.Sources.Len(), e.ScanOptions(),
		func() []int64 { return make([]int64, nq) },
		func(acc []int64, lo, hi int) []int64 {
			seen := make([]bool, nq)
			for s := lo; s < hi; s++ {
				rows := db.SourceMentions(int32(s))
				if len(rows) == 0 {
					continue
				}
				for q := range seen {
					seen[q] = false
				}
				for _, r := range rows {
					seen[db.QuarterOfInterval(db.Mentions.Interval[r])] = true
				}
				for q, ok := range seen {
					if ok {
						acc[q]++
					}
				}
			}
			return acc
		},
		func(dst, src []int64) []int64 {
			for i, v := range src {
				dst[i] += v
			}
			return dst
		},
	)
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// PublisherSeries is Figure 6: per-quarter article counts for a set of
// publishers, one row per publisher.
type PublisherSeries struct {
	Labels  []string
	Sources []int32
	Names   []string
	Totals  []int64
	Values  [][]int64 // Values[p][q]
}

// TopPublisherSeries computes Figure 6 for the k most productive publishers.
func TopPublisherSeries(e *engine.Engine, k int) PublisherSeries {
	db := e.DB()
	ids, totals := TopPublishers(e, k)
	out := PublisherSeries{
		Labels:  quarterLabels(e),
		Sources: ids,
		Totals:  totals,
	}
	rank := make(map[int32]int, len(ids))
	for p, s := range ids {
		out.Names = append(out.Names, db.Sources.Name(s))
		rank[s] = p
	}
	nq := db.NumQuarters()
	flat := e.GroupCount(len(ids)*nq, func(row int) int {
		p, ok := rank[db.Mentions.Source[row]]
		if !ok {
			return -1
		}
		return p*nq + db.QuarterOfInterval(db.Mentions.Interval[row])
	})
	out.Values = make([][]int64, len(ids))
	for p := range ids {
		out.Values[p] = flat[p*nq : (p+1)*nq]
	}
	return out
}
