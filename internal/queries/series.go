package queries

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/parallel"
)

// QuarterlySeries bundles a per-quarter integer series with its labels.
type QuarterlySeries struct {
	Labels []string
	Values []int64
}

func quarterLabels(e *engine.Engine) []string {
	db := e.DB()
	labels := make([]string, db.NumQuarters())
	for q := range labels {
		labels[q] = db.QuarterLabel(q)
	}
	return labels
}

// ArticlesPerQuarter computes Figure 5: the number of articles observed in
// each quarter.
func ArticlesPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	vals := e.GroupCountCol(db.NumQuarters(), db.Mentions.Interval, db.QuarterLUT())
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// EventsPerQuarter computes Figure 4: the number of events observed (by
// event time) in each quarter.
func EventsPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	// Events never observed (zero articles) are filtered by the predicate
	// stage; the survivors group by the quarter of their event interval.
	vals := e.GroupCountEventsCol(db.NumQuarters(), db.Events.Interval, db.QuarterLUT(),
		engine.PredGT(db.Events.NumArticles, 0))
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// ActiveSourcesPerQuarter computes Figure 3: the number of sources that
// published at least one article in each quarter. Each worker walks a range
// of sources and marks activity from its postings.
func ActiveSourcesPerQuarter(e *engine.Engine) QuarterlySeries {
	db := e.DB()
	nq := db.NumQuarters()
	vals := parallel.MapReduce(db.Sources.Len(), e.ScanOptions(),
		func() []int64 { return make([]int64, nq) },
		func(acc []int64, lo, hi int) []int64 {
			seen := make([]bool, nq)
			for s := lo; s < hi; s++ {
				rows := db.SourceMentions(int32(s))
				if len(rows) == 0 {
					continue
				}
				for q := range seen {
					seen[q] = false
				}
				for _, r := range rows {
					seen[db.QuarterOfInterval(db.Mentions.Interval[r])] = true
				}
				for q, ok := range seen {
					if ok {
						acc[q]++
					}
				}
			}
			return acc
		},
		func(dst, src []int64) []int64 {
			for i, v := range src {
				dst[i] += v
			}
			return dst
		},
	)
	return QuarterlySeries{Labels: quarterLabels(e), Values: vals}
}

// PublisherSeries is Figure 6: per-quarter article counts for a set of
// publishers, one row per publisher.
type PublisherSeries struct {
	Labels  []string
	Sources []int32
	Names   []string
	Totals  []int64
	Values  [][]int64 // Values[p][q]
}

// TopPublisherSeries computes Figure 6 for the k most productive publishers.
func TopPublisherSeries(e *engine.Engine, k int) PublisherSeries {
	db := e.DB()
	ids, totals := TopPublishers(e, k)
	out := PublisherSeries{
		Labels:  quarterLabels(e),
		Sources: ids,
		Totals:  totals,
	}
	// Postings-pruned: instead of scanning the whole window asking "is this
	// row by a top-k publisher?", concatenate the k publishers' postings
	// (clipped to the window) and cross-count only those rows — O(Σ postings
	// of the k sources) instead of O(window).
	rank := make([]int32, db.Sources.Len())
	for i := range rank {
		rank[i] = -1
	}
	var rows []int32
	for p, s := range ids {
		out.Names = append(out.Names, db.Sources.Name(s))
		rank[s] = int32(p)
		rows = append(rows, e.ClipRows(db.SourceMentions(s))...)
	}
	nq := db.NumQuarters()
	grid := e.CrossCountRows(len(ids), nq, rows, e.WindowSize(),
		db.Mentions.Source, rank, db.Mentions.Interval, db.QuarterLUT())
	out.Values = make([][]int64, len(ids))
	for p := range ids {
		out.Values[p] = grid.Row(p)
	}
	return out
}
