package queries

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gen"
)

func TestTopThemes(t *testing.T) {
	e := testEngine(t)
	top, err := TopThemes(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("themes %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Articles > top[i-1].Articles {
			t.Fatal("not descending")
		}
	}
	// The heaviest vocabulary themes must surface in the top ten.
	got := map[string]bool{}
	for _, tc := range top {
		got[tc.Theme] = true
	}
	for _, want := range []string{"GENERAL_GOVERNMENT", "SPORTS", "ELECTION"} {
		if !got[want] {
			t.Fatalf("high-weight theme %s missing from top ten: %v", want, top)
		}
	}
	// Headline events carry violent themes, so those themes have a higher
	// articles-per-annotated-event ratio even though their raw counts are
	// mid-table at small scale (verified via the KILL trend being nonzero).
	trends, err := ThemeTrends(e, []string{"KILL"})
	if err != nil {
		t.Fatal(err)
	}
	var kills int64
	for _, v := range trends[0].Values {
		kills += v
	}
	if kills == 0 {
		t.Fatal("headline theme KILL has no coverage")
	}
}

func TestThemeTrends(t *testing.T) {
	e := testEngine(t)
	trends, err := ThemeTrends(e, []string{"ELECTION", "NO_SUCH_THEME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 2 {
		t.Fatal("trend count")
	}
	var total int64
	for _, v := range trends[0].Values {
		total += v
	}
	if total == 0 {
		t.Fatal("ELECTION has no coverage")
	}
	for _, v := range trends[1].Values {
		if v != 0 {
			t.Fatal("unknown theme has coverage")
		}
	}
	if len(trends[0].Values) != cachedDB.NumQuarters() {
		t.Fatal("trend length")
	}
}

func TestThemeTrendMatchesSerial(t *testing.T) {
	e := testEngine(t)
	g := cachedDB.GKG
	trends, err := ThemeTrends(e, []string{"SPORTS"})
	if err != nil {
		t.Fatal(err)
	}
	id := g.Themes.Lookup("SPORTS")
	if id < 0 {
		t.Skip("SPORTS not in corpus")
	}
	want := make([]int64, cachedDB.NumQuarters())
	for r := 0; r < g.Table.Len(); r++ {
		for _, th := range g.Table.RowThemes(r) {
			if th == id {
				want[cachedDB.QuarterOfInterval(g.Table.Interval[r])]++
			}
		}
	}
	for q := range want {
		if trends[0].Values[q] != want[q] {
			t.Fatalf("q%d: %d want %d", q, trends[0].Values[q], want[q])
		}
	}
}

func TestThemeCooccurrences(t *testing.T) {
	e := testEngine(t)
	co, err := ThemeCooccurrences(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Themes) != 8 {
		t.Fatal("theme count")
	}
	if !co.Jaccard.IsSymmetric(1e-12) {
		t.Fatal("co-occurrence must be symmetric")
	}
	// Violent themes co-occur heavily (headline events always carry
	// several): find two violent themes and check their cell tops the
	// matrix median.
	if co.Counts.Sum() == 0 {
		t.Fatal("no co-occurrence at all")
	}
}

func TestPersonsForTheme(t *testing.T) {
	e := testEngine(t)
	top, err := TopThemes(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	people, err := PersonsForTheme(e, top[0].Theme, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(people) == 0 {
		t.Fatal("no people for the top theme")
	}
	for i := 1; i < len(people); i++ {
		if people[i].Articles > people[i-1].Articles {
			t.Fatal("not descending")
		}
	}
	if none, err := PersonsForTheme(e, "NO_SUCH_THEME", 5); err != nil || none != nil {
		t.Fatalf("unknown theme: %v %v", none, err)
	}
}

func TestTranslatedShare(t *testing.T) {
	e := testEngine(t)
	labels, share, err := TranslatedShare(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(share) || len(share) != cachedDB.NumQuarters() {
		t.Fatal("shape")
	}
	// Most sources are in English-speaking countries, so the translated
	// share is a visible minority.
	for q := 1; q < len(share)-1; q++ {
		if share[q] <= 0 || share[q] >= 0.6 {
			t.Fatalf("q%d translated share %.3f", q, share[q])
		}
	}
}

func TestThemeQueriesWithoutGKG(t *testing.T) {
	cfg := gen.Small()
	cfg.GKG = false
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(res.DB)
	if _, err := TopThemes(e, 5); err != ErrNoGKG {
		t.Fatalf("want ErrNoGKG, got %v", err)
	}
	if _, err := ThemeTrends(e, []string{"X"}); err != ErrNoGKG {
		t.Fatal("trends")
	}
	if _, err := ThemeCooccurrences(e, 3); err != ErrNoGKG {
		t.Fatal("cooccurrence")
	}
	if _, err := PersonsForTheme(e, "X", 3); err != ErrNoGKG {
		t.Fatal("persons")
	}
	if _, _, err := TranslatedShare(e); err != ErrNoGKG {
		t.Fatal("translated")
	}
}
