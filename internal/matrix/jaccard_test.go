package matrix

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestJaccardSets(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{3, 4, 5, 6}
	if got := JaccardSets(a, b); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Fatalf("jaccard %v", got)
	}
	if got := JaccardSets(a, a); got != 1 {
		t.Fatalf("self jaccard %v", got)
	}
	if got := JaccardSets(nil, nil); got != 0 {
		t.Fatalf("empty jaccard %v", got)
	}
	if got := JaccardSets(a, nil); got != 0 {
		t.Fatalf("half-empty jaccard %v", got)
	}
}

func TestIntersectionSize(t *testing.T) {
	if got := IntersectionSize([]int32{1, 3, 5}, []int32{2, 3, 5, 9}); got != 2 {
		t.Fatalf("intersection %d", got)
	}
	if got := IntersectionSize(nil, []int32{1}); got != 0 {
		t.Fatalf("intersection %d", got)
	}
}

func TestJaccardFromPairCountsMatchesSets(t *testing.T) {
	// Three sources with known event sets.
	sets := [][]int32{
		{1, 2, 3, 4, 5},
		{4, 5, 6},
		{7},
	}
	n := len(sets)
	pair := NewInt64(n, n)
	totals := make([]int64, n)
	for i := range sets {
		totals[i] = int64(len(sets[i]))
		for j := range sets {
			pair.Set(i, j, IntersectionSize(sets[i], sets[j]))
		}
	}
	c, err := JaccardFromPairCounts(pair, totals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		for j := range sets {
			if i == j {
				if c.At(i, j) != 0 {
					t.Fatalf("diagonal (%d,%d) = %v, want 0", i, j, c.At(i, j))
				}
				continue
			}
			want := JaccardSets(sets[i], sets[j])
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("c(%d,%d) = %v want %v", i, j, c.At(i, j), want)
			}
		}
	}
	if !c.IsSymmetric(1e-15) {
		t.Fatal("co-reporting matrix must be symmetric")
	}
}

func TestJaccardFromPairCountsErrors(t *testing.T) {
	if _, err := JaccardFromPairCounts(NewInt64(2, 3), []int64{1, 2}); err == nil {
		t.Fatal("non-square should fail")
	}
	if _, err := JaccardFromPairCounts(NewInt64(2, 2), []int64{1}); err == nil {
		t.Fatal("totals mismatch should fail")
	}
}

func TestJaccardSetsPropertyAgainstMaps(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		amap := map[int32]bool{}
		bmap := map[int32]bool{}
		for _, v := range ra {
			amap[int32(v)] = true
		}
		for _, v := range rb {
			bmap[int32(v)] = true
		}
		var a, b []int32
		for v := range amap {
			a = append(a, v)
		}
		for v := range bmap {
			b = append(b, v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		var inter, union int
		for v := range amap {
			if bmap[v] {
				inter++
			}
		}
		union = len(amap) + len(bmap) - inter
		want := 0.0
		if union > 0 {
			want = float64(inter) / float64(union)
		}
		return math.Abs(JaccardSets(a, b)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
