package matrix

import "testing"

func TestAddMatrixParallelMatchesSerial(t *testing.T) {
	// Large enough to take the parallel path (>= 1<<14 elements).
	const rows, cols = 160, 128
	a := NewInt64(rows, cols)
	b := NewInt64(rows, cols)
	want := NewInt64(rows, cols)
	for i := range a.Data {
		a.Data[i] = int64(i % 7)
		b.Data[i] = int64(i % 11)
		want.Data[i] = a.Data[i] + b.Data[i]
	}
	if err := a.AddMatrixParallel(b, 4); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if a.Data[i] != want.Data[i] {
			t.Fatalf("parallel add diverged at %d: %d != %d", i, a.Data[i], want.Data[i])
		}
	}

	// Small matrices and single workers fall back to the serial path.
	c := NewInt64(2, 2)
	d := NewInt64(2, 2)
	c.Set(0, 0, 1)
	d.Set(0, 0, 2)
	if err := c.AddMatrixParallel(d, 8); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 3 {
		t.Fatalf("small fallback: got %d", c.At(0, 0))
	}

	if err := a.AddMatrixParallel(NewInt64(1, 1), 4); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}
