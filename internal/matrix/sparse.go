package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row float64 matrix. Column indexes within each
// row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// At returns element (i, j) by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := m.ColIdx[lo:hi]
	k := sort.Search(len(idx), func(k int) bool { return idx[k] >= int32(j) })
	if k < len(idx) && idx[k] == int32(j) {
		return m.Vals[lo+int64(k)]
	}
	return 0
}

// RowNNZ returns the column indexes and values of row i, aliasing storage.
func (m *CSR) RowNNZ(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// ToDense expands the matrix.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowNNZ(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// FromDense compresses d, keeping elements with |v| > threshold.
func FromDense(d *Dense, threshold float64) *CSR {
	m := &CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int64, d.Rows+1)}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v > threshold || v < -threshold {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Vals = append(m.Vals, v)
			}
		}
		m.RowPtr[i+1] = int64(len(m.Vals))
	}
	return m
}

// COO is a coordinate-format builder for sparse matrices. Duplicate
// coordinates are summed when converting to CSR.
type COO struct {
	Rows, Cols int
	is, js     []int32
	vs         []float64
}

// NewCOO returns an empty builder for a rows×cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add records v at (i, j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("matrix: COO index (%d,%d) out of %dx%d", i, j, c.Rows, c.Cols))
	}
	c.is = append(c.is, int32(i))
	c.js = append(c.js, int32(j))
	c.vs = append(c.vs, v)
}

// Len returns the number of recorded entries (before duplicate folding).
func (c *COO) Len() int { return len(c.vs) }

// ToCSR sorts and deduplicates the entries into a CSR matrix.
func (c *COO) ToCSR() *CSR {
	order := make([]int, len(c.vs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if c.is[oa] != c.is[ob] {
			return c.is[oa] < c.is[ob]
		}
		return c.js[oa] < c.js[ob]
	})
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int64, c.Rows+1)}
	prevI, prevJ := int32(-1), int32(-1)
	for _, o := range order {
		i, j, v := c.is[o], c.js[o], c.vs[o]
		if i == prevI && j == prevJ {
			m.Vals[len(m.Vals)-1] += v
			continue
		}
		m.ColIdx = append(m.ColIdx, j)
		m.Vals = append(m.Vals, v)
		prevI, prevJ = i, j
		m.RowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// AssembleCSR sums sparse matrices of identical shape into one, the
// Section VI-B strategy of building a global co-reporting matrix from
// compressed per-time-span pieces. It merges rows pairwise like a k-way
// merge over sorted column lists.
func AssembleCSR(pieces []*CSR) (*CSR, error) {
	if len(pieces) == 0 {
		return nil, fmt.Errorf("matrix: assembling zero pieces")
	}
	rows, cols := pieces[0].Rows, pieces[0].Cols
	for _, p := range pieces[1:] {
		if p.Rows != rows || p.Cols != cols {
			return nil, fmt.Errorf("matrix: assembling %dx%d with %dx%d", rows, cols, p.Rows, p.Cols)
		}
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	// Accumulate row-by-row into a scratch map from column to value; rows in
	// news matrices are short, so a small map beats a dense scratch vector
	// of width Cols.
	scratch := make(map[int32]float64)
	colBuf := make([]int32, 0, 64)
	for i := 0; i < rows; i++ {
		for k := range scratch {
			delete(scratch, k)
		}
		for _, p := range pieces {
			cis, vs := p.RowNNZ(i)
			for k, ci := range cis {
				scratch[ci] += vs[k]
			}
		}
		colBuf = colBuf[:0]
		for ci := range scratch {
			colBuf = append(colBuf, ci)
		}
		sort.Slice(colBuf, func(a, b int) bool { return colBuf[a] < colBuf[b] })
		for _, ci := range colBuf {
			out.ColIdx = append(out.ColIdx, ci)
			out.Vals = append(out.Vals, scratch[ci])
		}
		out.RowPtr[i+1] = int64(len(out.Vals))
	}
	return out, nil
}
