package matrix

import "fmt"

// JaccardFromPairCounts computes the co-reporting matrix of Section VI-B:
// given pair[i][j] = e_ij (events reported by both i and j) and
// totals[i] = e_i (events reported by i), it returns
//
//	c_ij = e_ij / (e_i + e_j - e_ij)
//
// the Jaccard index of the two event sets. The diagonal is left zero (the
// self-Jaccard is trivially 1 and the paper's Table IV uses the diagonal for
// self-follow-reporting instead). Pairs with an empty union yield zero.
func JaccardFromPairCounts(pair *Int64, totals []int64) (*Dense, error) {
	if pair.Rows != pair.Cols {
		return nil, fmt.Errorf("matrix: jaccard needs a square pair matrix, have %dx%d", pair.Rows, pair.Cols)
	}
	if len(totals) != pair.Rows {
		return nil, fmt.Errorf("matrix: jaccard totals length %d != %d", len(totals), pair.Rows)
	}
	n := pair.Rows
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		prow := pair.Row(i)
		orow := out.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			eij := prow[j]
			union := totals[i] + totals[j] - eij
			if union > 0 && eij > 0 {
				orow[j] = float64(eij) / float64(union)
			}
		}
	}
	return out, nil
}

// JaccardSets computes the Jaccard index of two ascending-sorted int32 sets
// by a linear merge.
func JaccardSets(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	var inter int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntersectionSize returns |a ∩ b| for ascending-sorted int32 sets.
func IntersectionSize(a, b []int32) int64 {
	var inter int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return inter
}
