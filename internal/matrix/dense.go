// Package matrix provides the dense and sparse matrix types behind the
// co-reporting, follow-reporting, and cross-reporting analyses: row-major
// dense matrices (the paper computes the 20996² co-reporting matrix densely
// in ~1.8 GB), CSR sparse matrices with a COO builder, time-sliced sparse
// assembly (Section VI-B's strategy for larger source populations), and the
// Jaccard index arithmetic.
package matrix

import (
	"fmt"
	"sync"
)

// Dense is a row-major dense float64 matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AddMatrix accumulates o into m elementwise. Shapes must match.
func (m *Dense) AddMatrix(o *Dense) error {
	if o.Rows != m.Rows || o.Cols != m.Cols {
		return fmt.Errorf("matrix: adding %dx%d into %dx%d", o.Rows, o.Cols, m.Rows, m.Cols)
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return nil
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// ColSums returns the per-column sums (the "Sum" row of Table IV).
func (m *Dense) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// RowSums returns the per-row sums.
func (m *Dense) RowSums() []float64 {
	sums := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		sums[i] = s
	}
	return sums
}

// MaxOffDiagonal returns the largest element outside the diagonal, or 0 for
// matrices smaller than 2x2.
func (m *Dense) MaxOffDiagonal() float64 {
	var best float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j && m.At(i, j) > best {
				best = m.At(i, j)
			}
		}
	}
	return best
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := m.At(i, j) - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// MatMul returns m·o. Inner dimensions must agree.
func (m *Dense) MatMul(o *Dense) (*Dense, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("matrix: multiplying %dx%d by %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := NewDense(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			ok := o.Row(k)
			for j, ov := range ok {
				oi[j] += mv * ov
			}
		}
	}
	return out, nil
}

// Int64 is a row-major dense int64 matrix, used for exact pair and article
// counters (Tables IV and VI are integer counts before normalization).
type Int64 struct {
	Rows, Cols int
	Data       []int64
}

// NewInt64 returns a zeroed rows×cols integer matrix.
func NewInt64(rows, cols int) *Int64 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Int64{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
}

// At returns element (i, j).
func (m *Int64) At(i, j int) int64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Int64) Set(i, j int, v int64) { m.Data[i*m.Cols+j] = v }

// Inc adds one to element (i, j).
func (m *Int64) Inc(i, j int) { m.Data[i*m.Cols+j]++ }

// Add accumulates v into element (i, j).
func (m *Int64) Add(i, j int, v int64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Int64) Row(i int) []int64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// AddMatrix accumulates o into m elementwise (the merge step of per-worker
// partial matrices). Shapes must match.
func (m *Int64) AddMatrix(o *Int64) error {
	if o.Rows != m.Rows || o.Cols != m.Cols {
		return fmt.Errorf("matrix: adding %dx%d into %dx%d", o.Rows, o.Cols, m.Rows, m.Cols)
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return nil
}

// AddMatrixParallel accumulates o into m elementwise using up to workers
// goroutines over disjoint chunks of the backing slice. It is the merge
// step for large per-worker partial matrices, where a serial fold would
// leave one goroutine adding millions of elements while the rest idle.
// Small matrices (or workers < 2) fall back to the serial AddMatrix.
func (m *Int64) AddMatrixParallel(o *Int64, workers int) error {
	if o.Rows != m.Rows || o.Cols != m.Cols {
		return fmt.Errorf("matrix: adding %dx%d into %dx%d", o.Rows, o.Cols, m.Rows, m.Cols)
	}
	n := len(m.Data)
	if workers < 2 || n < 1<<14 {
		return m.AddMatrix(o)
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dst, src := m.Data[lo:hi], o.Data[lo:hi]
			for i, v := range src {
				dst[i] += v
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// Sum returns the sum of all elements.
func (m *Int64) Sum() int64 {
	var s int64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// ToDense converts to a float64 dense matrix.
func (m *Int64) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		d.Data[i] = float64(v)
	}
	return d
}
