package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSRWithDuplicates(t *testing.T) {
	c := NewCOO(3, 4)
	c.Add(0, 1, 1)
	c.Add(0, 1, 2) // duplicate folds
	c.Add(2, 0, 5)
	c.Add(0, 3, 7)
	if c.Len() != 4 {
		t.Fatalf("len %d", c.Len())
	}
	m := c.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("nnz %d want 3", m.NNZ())
	}
	if m.At(0, 1) != 3 || m.At(0, 3) != 7 || m.At(2, 0) != 5 || m.At(1, 2) != 0 {
		t.Fatalf("values wrong: %+v", m)
	}
	cols, vals := m.RowNNZ(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 3 {
		t.Fatalf("row 0 nnz: %v %v", cols, vals)
	}
	if cols, _ := m.RowNNZ(1); len(cols) != 0 {
		t.Fatal("row 1 should be empty")
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	c := NewCOO(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add(2, 0, 1)
}

func TestDenseSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(20, 30)
	for k := 0; k < 100; k++ {
		d.Set(rng.Intn(20), rng.Intn(30), rng.Float64())
	}
	s := FromDense(d, 0)
	back := s.ToDense()
	for i := range d.Data {
		if d.Data[i] != back.Data[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, d.Data[i], back.Data[i])
		}
	}
}

func TestFromDenseThreshold(t *testing.T) {
	d := NewDense(1, 3)
	d.Set(0, 0, 0.5)
	d.Set(0, 1, -0.5)
	d.Set(0, 2, 0.01)
	s := FromDense(d, 0.1)
	if s.NNZ() != 2 {
		t.Fatalf("nnz %d want 2 (threshold keeps both signs)", s.NNZ())
	}
}

func TestAssembleCSR(t *testing.T) {
	a := NewCOO(2, 2)
	a.Add(0, 0, 1)
	a.Add(1, 1, 2)
	b := NewCOO(2, 2)
	b.Add(0, 0, 3)
	b.Add(0, 1, 4)
	sum, err := AssembleCSR([]*CSR{a.ToCSR(), b.ToCSR()})
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 4 || sum.At(0, 1) != 4 || sum.At(1, 1) != 2 {
		t.Fatalf("assembled: %v %v %v", sum.At(0, 0), sum.At(0, 1), sum.At(1, 1))
	}
	if sum.NNZ() != 3 {
		t.Fatalf("nnz %d", sum.NNZ())
	}
}

func TestAssembleCSRErrors(t *testing.T) {
	if _, err := AssembleCSR(nil); err == nil {
		t.Fatal("empty assembly should fail")
	}
	a := NewCOO(2, 2).ToCSR()
	b := NewCOO(3, 2).ToCSR()
	if _, err := AssembleCSR([]*CSR{a, b}); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestAssembleMatchesDenseSum(t *testing.T) {
	// Property: assembling random sparse pieces equals summing their dense
	// expansions — the correctness claim behind the time-sliced strategy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const rows, cols = 8, 11
		var pieces []*CSR
		want := NewDense(rows, cols)
		for p := 0; p < 4; p++ {
			c := NewCOO(rows, cols)
			for k := 0; k < 25; k++ {
				i, j, v := rng.Intn(rows), rng.Intn(cols), float64(rng.Intn(5))
				c.Add(i, j, v)
				want.Add(i, j, v)
			}
			pieces = append(pieces, c.ToCSR())
		}
		got, err := AssembleCSR(pieces)
		if err != nil {
			return false
		}
		gd := got.ToDense()
		for i := range want.Data {
			if gd.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRColumnOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCOO(5, 40)
	for k := 0; k < 200; k++ {
		c.Add(rng.Intn(5), rng.Intn(40), 1)
	}
	m := c.ToCSR()
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.RowNNZ(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly increasing: %v", i, cols)
			}
		}
	}
}
