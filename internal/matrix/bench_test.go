package matrix

import (
	"math/rand"
	"testing"
)

func randomCSRPieces(n, pieces, nnzPer int, seed int64) []*CSR {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*CSR, pieces)
	for p := range out {
		coo := NewCOO(n, n)
		for k := 0; k < nnzPer; k++ {
			coo.Add(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(4)))
		}
		out[p] = coo.ToCSR()
	}
	return out
}

// The Section VI-B ablation: assembling a global matrix from sparse
// time-span pieces versus summing dense snapshots.
func BenchmarkAssembleSparsePieces(b *testing.B) {
	pieces := randomCSRPieces(2000, 20, 5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssembleCSR(pieces); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleDenseSum(b *testing.B) {
	pieces := randomCSRPieces(2000, 20, 5000, 1)
	dense := make([]*Dense, len(pieces))
	for i, p := range pieces {
		dense[i] = p.ToDense()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := NewDense(2000, 2000)
		for _, d := range dense {
			if err := sum.AddMatrix(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkJaccardFromPairCounts(b *testing.B) {
	const n = 500
	rng := rand.New(rand.NewSource(2))
	pair := NewInt64(n, n)
	totals := make([]int64, n)
	for i := 0; i < n; i++ {
		totals[i] = int64(100 + rng.Intn(1000))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.2 {
				m := totals[i]
				if totals[j] < m {
					m = totals[j]
				}
				pair.Set(i, j, int64(rng.Intn(int(m))))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JaccardFromPairCounts(pair, totals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJaccardSets(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mk := func() []int32 {
		s := make([]int32, 10000)
		v := int32(0)
		for i := range s {
			v += int32(1 + rng.Intn(5))
			s[i] = v
		}
		return s
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardSets(x, y)
	}
}

func BenchmarkMatMul200(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := NewDense(200, 200)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MatMul(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCOOToCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, nnz = 1000, 100000
	is := make([]int, nnz)
	js := make([]int, nnz)
	for k := 0; k < nnz; k++ {
		is[k], js[k] = rng.Intn(n), rng.Intn(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coo := NewCOO(n, n)
		for k := 0; k < nnz; k++ {
			coo.Add(is[k], js[k], 1)
		}
		coo.ToCSR()
	}
}
