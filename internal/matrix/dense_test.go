package matrix

import (
	"math"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Add(0, 0, 2)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 3 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("data %v", m.Data)
	}
	if r := m.Row(1); len(r) != 3 || r[2] != 5 {
		t.Fatalf("row %v", r)
	}
	if m.Sum() != 8 {
		t.Fatalf("sum %v", m.Sum())
	}
}

func TestDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestDenseCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestDenseAddMatrixAndScale(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 2)
	b.Set(1, 1, 4)
	if err := a.AddMatrix(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 || a.At(1, 1) != 4 {
		t.Fatalf("sum %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 1.5 || a.At(1, 1) != 2 {
		t.Fatalf("scaled %v", a.Data)
	}
	if err := a.AddMatrix(NewDense(3, 2)); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestDenseColRowSums(t *testing.T) {
	m := NewDense(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j))
		}
	}
	cs := m.ColSums()
	rs := m.RowSums()
	if cs[0] != 3 || cs[1] != 5 || cs[2] != 7 {
		t.Fatalf("col sums %v", cs)
	}
	if rs[0] != 3 || rs[1] != 12 {
		t.Fatalf("row sums %v", rs)
	}
}

func TestDenseMaxOffDiagonalAndSymmetry(t *testing.T) {
	m := NewDense(3, 3)
	m.Set(0, 0, 100)
	m.Set(0, 2, 7)
	m.Set(2, 0, 7)
	if got := m.MaxOffDiagonal(); got != 7 {
		t.Fatalf("max off diag %v", got)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("should be symmetric")
	}
	m.Set(1, 0, 1)
	if m.IsSymmetric(1e-12) {
		t.Fatal("should not be symmetric")
	}
	if m.IsSymmetric(2) {
		// within tolerance 2 the difference of 1 passes
	} else {
		t.Fatal("tolerance not respected")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestMatMul(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("product %v want %v", c.Data, want)
		}
	}
	if _, err := a.MatMul(a); err == nil {
		t.Fatal("inner dimension mismatch should fail")
	}
}

func TestInt64Matrix(t *testing.T) {
	m := NewInt64(2, 2)
	m.Inc(0, 1)
	m.Inc(0, 1)
	m.Add(1, 0, 5)
	m.Set(1, 1, 7)
	if m.At(0, 1) != 2 || m.At(1, 0) != 5 || m.At(1, 1) != 7 {
		t.Fatalf("data %v", m.Data)
	}
	if m.Sum() != 14 {
		t.Fatalf("sum %d", m.Sum())
	}
	o := NewInt64(2, 2)
	o.Set(0, 0, 1)
	if err := m.AddMatrix(o); err != nil || m.At(0, 0) != 1 {
		t.Fatalf("add: %v %v", err, m.Data)
	}
	if err := m.AddMatrix(NewInt64(1, 2)); err == nil {
		t.Fatal("shape mismatch should fail")
	}
	d := m.ToDense()
	if d.At(1, 1) != 7 {
		t.Fatalf("to dense %v", d.Data)
	}
	if r := m.Row(0); r[0] != 1 || r[1] != 2 {
		t.Fatalf("row %v", r)
	}
}

func TestInt64PanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInt64(2, -2)
}
