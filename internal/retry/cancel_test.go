package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDoCancelDuringDefaultBackoff cancels the context while Do is waiting
// out a long backoff; Do must return ctx.Err() immediately instead of
// sleeping the delay to completion.
func TestDoCancelDuringDefaultBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := Policy{MaxAttempts: 3, BaseDelay: time.Hour}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func() error { return Transientf("still failing") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do slept %v through cancellation", elapsed)
	}
}

// TestDoCancelOverridesContextBlindSleep installs a custom Sleep that
// ignores its context entirely — the failure mode this regression test
// exists for. Do must still honor cancellation, racing every backoff wait
// against ctx.Done() instead of trusting the Sleep implementation.
func TestDoCancelOverridesContextBlindSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	block := make(chan struct{})
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep: func(context.Context, time.Duration) error {
			<-block // never returns until the test releases it
			return nil
		},
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func() error { return Transientf("still failing") })
	close(block)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do blocked %v in a context-blind Sleep", elapsed)
	}
}

// TestDoPreCancelledContext never invokes op when the context is already
// dead on entry.
func TestDoPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := DefaultPolicy().Do(ctx, func() error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("op ran despite pre-cancelled context")
	}
}

// TestDoCustomSleepErrorPropagates keeps the custom Sleep contract: a Sleep
// that reports its own error (e.g. its context died) aborts the retry loop.
func TestDoCustomSleepErrorPropagates(t *testing.T) {
	sentinel := errors.New("sleep aborted")
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return sentinel },
	}
	err := p.Do(context.Background(), func() error { return Transientf("still failing") })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the Sleep's own error", err)
	}
}
