// Package retry provides small context-aware retry helpers for the
// ingestion layer: capped exponential backoff with deterministic seeded
// jitter, a transient/permanent error taxonomy, and an attempt budget.
//
// The live GDELT feed fails in two fundamentally different ways (the
// Table II taxonomy): transiently — a chunk not yet published, a socket
// reset, an EAGAIN-style hiccup — and permanently — a chunk that was never
// archived or whose bytes are gone. Retrying the former and quarantining
// the latter is what lets a multi-hour conversion or a long-running stream
// monitor degrade gracefully instead of aborting.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true for it. A nil err
// returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Transientf is Transient(fmt.Errorf(...)).
func Transientf(format string, args ...any) error {
	return Transient(fmt.Errorf(format, args...))
}

// IsTransient reports whether err (or anything it wraps) was marked
// Transient. Context cancellation and deadline errors are never transient:
// once the caller's budget is gone there is no point retrying.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientError
	return errors.As(err, &t)
}

// ErrBudgetExhausted wraps the last transient error when a Policy runs out
// of attempts.
var ErrBudgetExhausted = errors.New("retry: attempt budget exhausted")

// Policy is a capped exponential backoff schedule. The zero value retries
// nothing (one attempt, no waiting); DefaultPolicy is the sensible start.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. Zero means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries. Values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random,
	// in [0, 1]: delay' = delay * (1 - Jitter + Jitter*U). Zero disables
	// jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic. Zero seeds from the
	// schedule parameters alone, which is still deterministic.
	Seed int64
	// Sleep replaces time.Sleep, letting tests run schedules instantly.
	// The default waits on a timer and the context's done channel; a custom
	// Sleep should do the same, but Do no longer depends on it — every
	// backoff wait is raced against ctx.Done(), so cancellation always
	// returns early instead of sleeping out the full backoff.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy retries transient errors four times over roughly a second.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.2}
}

// Delays returns the backoff schedule the policy would wait through if
// every attempt failed: one duration per retry (MaxAttempts-1 entries),
// jitter applied. Useful for logging and for asserting determinism.
func (p Policy) Delays() []time.Duration {
	attempts := p.attempts()
	rng := p.rng()
	out := make([]time.Duration, 0, attempts-1)
	for a := 1; a < attempts; a++ {
		out = append(out, p.delay(a, rng))
	}
	return out
}

func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) rng() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = int64(p.attempts())<<32 ^ int64(p.BaseDelay) ^ int64(p.MaxDelay)<<1
	}
	return rand.New(rand.NewSource(seed))
}

// delay computes the wait before retry number attempt (1-based).
func (p Policy) delay(attempt int, rng *rand.Rand) time.Duration {
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// cancellableSleep races sleep against ctx.Done() so a backoff wait ends
// the moment the caller's budget is gone, even when a custom Sleep ignores
// the context (e.g. a bare time.Sleep). The sleeping goroutine is left to
// finish on its own — it holds no resources and its lifetime is bounded by
// the backoff delay itself.
func cancellableSleep(ctx context.Context, sleep func(ctx context.Context, d time.Duration) error, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- sleep(ctx, d) }()
	select {
	case err := <-done:
		if err != nil {
			return err
		}
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op until it succeeds, fails permanently, or the budget runs out.
// Only errors marked Transient are retried; anything else is returned
// as-is on first sight. When the attempt budget is exhausted the last
// transient error is returned wrapped in ErrBudgetExhausted. Context
// cancellation wins over everything and returns ctx.Err().
func (p Policy) Do(ctx context.Context, op func() error) error {
	attempts := p.attempts()
	sleep := p.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	rng := p.rng()
	var last error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		last = err
		if a == attempts-1 {
			break
		}
		if err := cancellableSleep(ctx, sleep, p.delay(a+1, rng)); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempts, last)
}
