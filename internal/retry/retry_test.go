package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// instant returns a Sleep that records requested delays without waiting.
func instant(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("disk hiccup")
	if IsTransient(base) {
		t.Fatal("unmarked error must not be transient")
	}
	if !IsTransient(Transient(base)) {
		t.Fatal("marked error must be transient")
	}
	wrapped := errors.Join(errors.New("outer"), Transient(base))
	if !IsTransient(wrapped) {
		t.Fatal("transient mark must survive wrapping")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
	if IsTransient(context.Canceled) || IsTransient(Transient(context.Canceled)) {
		t.Fatal("context cancellation is never transient")
	}
}

func TestDoRetriesTransientToSuccess(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Sleep: instant(&slept)}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return Transientf("attempt %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls %d want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times want 2", len(slept))
	}
}

func TestDoPermanentFailsImmediately(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 5, Sleep: instant(&slept)}
	perm := errors.New("file is gone")
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return perm })
	if !errors.Is(err, perm) {
		t.Fatalf("err %v", err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls %d slept %d: permanent errors must not retry", calls, len(slept))
	}
}

func TestDoBudgetExhausted(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: instant(&slept)}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return Transientf("still down") })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v want ErrBudgetExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("calls %d want 3", calls)
	}
	if !IsTransient(err) {
		t.Fatal("exhausted-budget error should still carry the transient mark for classification")
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { cancel(); return ctx.Err() }}
	calls := 0
	err := p.Do(ctx, func() error { calls++; return Transientf("down") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v want Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls %d want 1: cancellation during backoff must stop retries", calls)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5, Seed: 42}
	a, b := p.Delays(), p.Delays()
	if len(a) != 5 {
		t.Fatalf("delays %d want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Jittered delays stay within [0.5x, 1x] of the un-jittered curve and
	// respect the cap.
	for i, d := range a {
		if d > 60*time.Millisecond {
			t.Fatalf("delay %d = %v exceeds cap", i, d)
		}
		if d <= 0 {
			t.Fatalf("delay %d = %v not positive", i, d)
		}
	}
	// A different seed gives a different jitter sequence.
	p2 := p
	p2.Seed = 43
	c := p2.Delays()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 40}
	got := p.Delays()
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
}

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), func() error { calls++; return Transientf("x") })
	if calls != 1 {
		t.Fatalf("calls %d want 1", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v", err)
	}
}
