package store

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

// The qlang pushdown value bitmaps (DESIGN.md §13) must agree exactly with
// a brute-force scan of the mention columns: every attributed row in its
// country's bitmap, unattributed (-1) rows in none, quarter bitmaps the
// contiguous quarter row ranges.

func TestValueBitmapsMatchBruteForce(t *testing.T) {
	db, _ := buildTinyDB(t)
	nm := db.Mentions.Len()
	nc := len(gdelt.Countries)

	wantCtry := make([]map[int32]bool, nc)
	wantEv := make([]map[int32]bool, nc)
	for c := 0; c < nc; c++ {
		wantCtry[c] = map[int32]bool{}
		wantEv[c] = map[int32]bool{}
	}
	for row := 0; row < nm; row++ {
		if c := db.SourceCountry[db.Mentions.Source[row]]; c >= 0 {
			wantCtry[c][int32(row)] = true
		}
		if c := db.Events.Country[db.Mentions.EventRow[row]]; c >= 0 {
			wantEv[c][int32(row)] = true
		}
	}
	var attributed int
	for c := 0; c < nc; c++ {
		attributed += len(wantCtry[c])
		for _, probe := range []struct {
			name string
			got  []int32
			want map[int32]bool
		}{
			{"country", db.CountryRowBitmap(c).AppendRows(nil), wantCtry[c]},
			{"event-country", db.EventCountryRowBitmap(c).AppendRows(nil), wantEv[c]},
		} {
			if len(probe.got) != len(probe.want) {
				t.Fatalf("%s %s bitmap has %d rows, want %d",
					probe.name, gdelt.Countries[c].FIPS, len(probe.got), len(probe.want))
			}
			for _, r := range probe.got {
				if !probe.want[r] {
					t.Fatalf("%s %s bitmap holds unexpected row %d", probe.name, gdelt.Countries[c].FIPS, r)
				}
			}
		}
	}
	if attributed == 0 {
		t.Fatal("test world has no country-attributed rows; bitmaps unexercised")
	}

	for q := 0; q < db.NumQuarters(); q++ {
		lo, hi := db.QuarterMentionRange(q)
		rows := db.QuarterRowBitmap(q).AppendRows(nil)
		if int64(len(rows)) != hi-lo {
			t.Fatalf("quarter %d bitmap has %d rows, want %d", q, len(rows), hi-lo)
		}
		for i, r := range rows {
			if int64(r) != lo+int64(i) {
				t.Fatalf("quarter %d bitmap row %d = %d, want %d", q, i, r, lo+int64(i))
			}
		}
	}

	// Out-of-range keys answer with an empty bitmap, never a panic.
	for _, bm := range []interface{ Cardinality() int64 }{
		db.CountryRowBitmap(-1), db.CountryRowBitmap(nc + 5),
		db.EventCountryRowBitmap(-1), db.EventCountryRowBitmap(nc + 5),
		db.QuarterRowBitmap(-1), db.QuarterRowBitmap(db.NumQuarters()),
	} {
		if bm.Cardinality() != 0 {
			t.Fatal("out-of-range value bitmap not empty")
		}
	}
}

// TestValueBitmapsRebuiltOnAppend: AppendChunk must refresh the value
// bitmaps along with the postings they derive from.
func TestValueBitmapsRebuiltOnAppend(t *testing.T) {
	db, _ := buildTinyDB(t)
	us := gdelt.CountryIndex("US")
	before := db.CountryRowBitmap(int(us)).Cardinality()

	iv := int64(db.Meta.Intervals) - 1
	evs := []gdelt.Event{{GlobalEventID: 500, Day: 20160101, ActionCountry: "US",
		SourceURL: "https://d.com/1", DateAdded: gdelt.IntervalStart(iv)}}
	mns := []gdelt.Mention{{GlobalEventID: 500, EventTime: gdelt.IntervalStart(iv),
		MentionTime: gdelt.IntervalStart(iv), MentionType: 1, SourceName: "d.com", DocLen: 50}}
	if _, err := db.AppendChunk(evs, mns); err != nil {
		t.Fatal(err)
	}
	after := db.CountryRowBitmap(int(us)).Cardinality()
	if after != before+1 {
		t.Fatalf("US country bitmap cardinality %d after append, want %d", after, before+1)
	}
	rows := db.CountryRowBitmap(int(us)).AppendRows(nil)
	found := false
	for _, r := range rows {
		if db.Sources.Name(db.Mentions.Source[r]) == "d.com" {
			found = true
		}
	}
	if !found {
		t.Fatal("appended d.com row missing from US country bitmap")
	}
}
