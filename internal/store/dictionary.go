// Package store implements the in-memory columnar database at the heart of
// the system: dictionary-encoded Events and Mentions tables in
// structure-of-arrays layout, postings indexes by source and by event, and
// the capture-interval/quarter time index. After Build the store is strictly
// read-only, the property Section IV exploits to query "much faster than a
// standard database".
package store

import "fmt"

// Dictionary interns strings and assigns dense int32 ids in first-seen
// order. It is the string-dictionary encoding of the binary format: columns
// hold ids, the dictionary holds each distinct value once.
type Dictionary struct {
	byName map[string]int32
	names  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]int32)}
}

// Intern returns the id for name, assigning the next id on first sight.
func (d *Dictionary) Intern(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	return id
}

// Lookup returns the id for name, or -1 when absent.
func (d *Dictionary) Lookup(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	return -1
}

// Name returns the string for an id. It panics on out-of-range ids, which
// indicate a corrupted column.
func (d *Dictionary) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("store: dictionary id %d out of range (%d entries)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of distinct entries.
func (d *Dictionary) Len() int { return len(d.names) }

// Names returns the backing name slice (do not mutate).
func (d *Dictionary) Names() []string { return d.names }

// FromNames rebuilds a dictionary from a deserialized name list.
func FromNames(names []string) (*Dictionary, error) {
	d := &Dictionary{byName: make(map[string]int32, len(names)), names: names}
	for i, n := range names {
		if prev, dup := d.byName[n]; dup {
			return nil, fmt.Errorf("store: duplicate dictionary entry %q (ids %d and %d)", n, prev, i)
		}
		d.byName[n] = int32(i)
	}
	return d, nil
}
