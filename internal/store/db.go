package store

import (
	"fmt"
	"sort"
	"sync/atomic"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/gdelt"
)

// Meta carries dataset-level constants.
type Meta struct {
	// Start is the timestamp of capture interval 0.
	Start gdelt.Timestamp
	// Intervals is the number of 15-minute capture intervals covered.
	Intervals int32
}

// EndExclusive returns the timestamp just past the archive end.
func (m Meta) EndExclusive() gdelt.Timestamp {
	return gdelt.IntervalStart(m.Start.IntervalIndex() + int64(m.Intervals))
}

// EventTable is the columnar Events table, sorted by GlobalEventID.
type EventTable struct {
	ID           []int64
	Day          []int32 // recorded event day, YYYYMMDD
	Interval     []int32 // event capture interval (from mention EventTimeDate)
	Country      []int16 // index into gdelt.Countries, -1 untagged
	NumArticles  []int32 // recounted from the mentions table at build time
	FirstMention []int32 // capture interval of the earliest mention
	SourceURL    []string
}

// Len returns the number of events.
func (t *EventTable) Len() int { return len(t.ID) }

// MentionTable is the columnar Mentions table, sorted by capture interval.
type MentionTable struct {
	EventRow   []int32 // row index into the event table
	Source     []int32 // source dictionary id
	Interval   []int32 // mention capture interval
	Delay      []int32 // publishing delay in intervals (>= 1; 0 marks defects)
	DocLen     []int32
	Tone       []float32
	Confidence []int8
}

// Len returns the number of mentions.
func (t *MentionTable) Len() int { return len(t.EventRow) }

// DB is the loaded, immutable in-memory database.
type DB struct {
	Meta     Meta
	Sources  *Dictionary
	Events   EventTable
	Mentions MentionTable

	// SourceCountry maps each source id to its TLD-attributed country index
	// (into gdelt.Countries), or -1 when unattributable.
	SourceCountry []int16

	// bySource[s] lists mention rows of source s, ascending by interval.
	bySourcePtr []int64
	bySourceIdx []int32
	// byEvent[e] lists mention rows of event row e, ascending by interval.
	byEventPtr []int64
	byEventIdx []int32

	// Bitmap postings (DESIGN.md §12): per-source roaring bitmaps over
	// mention rows and event rows, derived from the row-list postings at
	// assembly time. The planner reads cardinalities from them; the pruned
	// kernels union them for ascending row extraction.
	srcRowBM   []*bitmap.Bitmap
	srcEvBM    []*bitmap.Bitmap
	srcRepEvBM []*bitmap.Bitmap

	// Value bitmaps for qlang predicate pushdown (DESIGN.md §13): mention
	// rows per publisher country (TLD attribution), per event country, and
	// per calendar quarter. Quarter bitmaps are contiguous row ranges (run
	// containers, a few bytes each) — the capture-interval range index in
	// bitmap form, persisted and cross-checked like the others even though
	// execution prefers the equivalent binary-searched row range.
	ctryRowBM   []*bitmap.Bitmap
	evCtryRowBM []*bitmap.Bitmap
	qtrRowBM    []*bitmap.Bitmap

	// quarterOfInterval maps a capture interval to a quarter index;
	// quarterRow[q] is the first mention row of quarter q (mentions are
	// interval-sorted), with a final sentinel row count.
	quarterOfInterval []int16
	quarterRow        []int64
	quarters          int

	// Typed lookup tables for the vectorized scan kernels (DESIGN.md §9):
	// int32 remap columns the engine indexes directly inside its worker
	// loops, avoiding per-row closure calls and int16→int conversions.
	// Derived, immutable after assembly (like the postings).
	quarterLUT       []int32 // capture interval -> quarter index
	sourceCountryLUT []int32 // source id -> country index, -1 unattributable
	eventCountryLUT  []int32 // event row -> country index, -1 untagged

	// GKG holds the Global Knowledge Graph annotations, or nil when the
	// dataset was converted without GKG files.
	GKG *GKGStore

	// Report records the defects observed while building (Table II).
	Report *gdelt.ValidationReport

	// version is the snapshot version of the store: 0 for a freshly built
	// database, bumped once per append by any writer that extends the data
	// (the stream monitor's chunk folds). Result caches key on it, so a
	// bump retires every cached answer computed against the old snapshot
	// without TTL guesswork. Monotonic; accessed only through the atomic
	// Version/BumpVersion methods (a plain word, not atomic.Uint64, so
	// shallow DB copies stay legal).
	version uint64
}

// Version returns the store's current snapshot version. Two calls that
// return the same value are guaranteed to have observed identical data, so
// a query result computed at version v may be served for any later request
// that still reads version v.
func (db *DB) Version() uint64 { return atomic.LoadUint64(&db.version) }

// BumpVersion advances the snapshot version and returns the new value.
// Writers call it once per append (e.g. one folded feed chunk); queries in
// flight keep their old version and their results are simply never reused.
func (db *DB) BumpVersion() uint64 { return atomic.AddUint64(&db.version, 1) }

// NumQuarters returns the number of calendar quarters covered.
func (db *DB) NumQuarters() int { return db.quarters }

// QuarterLUT returns the capture-interval→quarter lookup table as an int32
// remap column for the typed scan kernels. Read-only; do not mutate.
func (db *DB) QuarterLUT() []int32 { return db.quarterLUT }

// SourceCountryLUT returns the source→country remap column (-1 for
// unattributable sources) for the typed scan kernels. Read-only.
func (db *DB) SourceCountryLUT() []int32 { return db.sourceCountryLUT }

// EventCountryLUT returns the event-row→country remap column (-1 for
// untagged events) for the typed scan kernels. Read-only.
func (db *DB) EventCountryLUT() []int32 { return db.eventCountryLUT }

// QuarterOfInterval maps a capture interval to a quarter index. Intervals
// outside the archive clamp to the nearest quarter.
func (db *DB) QuarterOfInterval(iv int32) int {
	if iv < 0 {
		return 0
	}
	if int(iv) >= len(db.quarterOfInterval) {
		return db.quarters - 1
	}
	return int(db.quarterOfInterval[iv])
}

// QuarterLabel renders quarter q as e.g. "2016Q3".
func (db *DB) QuarterLabel(q int) string {
	y, qq := db.quarterYearQ(q)
	return fmt.Sprintf("%dQ%d", y, qq)
}

func (db *DB) quarterYearQ(q int) (year, quarter int) {
	baseY := db.Meta.Start.Year()
	baseQ := (db.Meta.Start.Month() - 1) / 3
	abs := baseY*4 + baseQ + q
	return abs / 4, abs%4 + 1
}

// QuarterMentionRange returns the half-open mention row range of quarter q.
func (db *DB) QuarterMentionRange(q int) (lo, hi int64) {
	return db.quarterRow[q], db.quarterRow[q+1]
}

// MentionRowRange returns the half-open row range of mentions captured in
// [fromIv, toIv) — contiguous because the mention table is interval-sorted.
// This is how the engine restricts scans to a time window without touching
// rows outside it.
func (db *DB) MentionRowRange(fromIv, toIv int32) (lo, hi int64) {
	n := db.Mentions.Len()
	lo = int64(sort.Search(n, func(i int) bool { return db.Mentions.Interval[i] >= fromIv }))
	hi = int64(sort.Search(n, func(i int) bool { return db.Mentions.Interval[i] >= toIv }))
	return lo, hi
}

// SourceMentions returns the mention rows of source s, ascending by
// interval.
func (db *DB) SourceMentions(s int32) []int32 {
	return db.bySourceIdx[db.bySourcePtr[s]:db.bySourcePtr[s+1]]
}

// EventMentions returns the mention rows of event row e, ascending by
// interval.
func (db *DB) EventMentions(e int32) []int32 {
	return db.byEventIdx[db.byEventPtr[e]:db.byEventPtr[e+1]]
}

// EventRowByID returns the event row for a GlobalEventID, or -1.
func (db *DB) EventRowByID(id int64) int32 {
	i := sort.Search(len(db.Events.ID), func(i int) bool { return db.Events.ID[i] >= id })
	if i < len(db.Events.ID) && db.Events.ID[i] == id {
		return int32(i)
	}
	return -1
}

// AssembleDB builds a DB from fully-populated, already-sorted tables: the
// binary-format loader deserializes columns and hands them here so the
// derived structures (postings, quarter index, source countries) are rebuilt
// rather than stored. The tables are validated before use.
func AssembleDB(meta Meta, sources *Dictionary, ev EventTable, mn MentionTable, report *gdelt.ValidationReport) (*DB, error) {
	if report == nil {
		report = &gdelt.ValidationReport{}
	}
	db := &DB{Meta: meta, Sources: sources, Events: ev, Mentions: mn, Report: report}
	if meta.Intervals <= 0 {
		return nil, fmt.Errorf("store: assembling db with %d intervals", meta.Intervals)
	}
	// Table invariants must hold BEFORE the derived indexes are built: the
	// counting sorts in buildPostings index by Source and EventRow, so a
	// corrupted binary load with out-of-range references must be rejected
	// here rather than panic there.
	if err := db.validateTables(); err != nil {
		return nil, err
	}
	db.buildSourceCountries()
	db.buildPostings()
	db.buildQuarterIndex()
	db.buildTypedLUTs()
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

// validateTables checks the invariants of the raw column tables alone —
// everything that must hold before derived indexes can be built safely.
func (db *DB) validateTables() error {
	ne, nm := db.Events.Len(), db.Mentions.Len()
	if len(db.Events.Day) != ne || len(db.Events.Interval) != ne ||
		len(db.Events.Country) != ne || len(db.Events.NumArticles) != ne ||
		len(db.Events.FirstMention) != ne || len(db.Events.SourceURL) != ne {
		return fmt.Errorf("store: event column lengths disagree")
	}
	if len(db.Mentions.Source) != nm || len(db.Mentions.Interval) != nm ||
		len(db.Mentions.Delay) != nm || len(db.Mentions.DocLen) != nm ||
		len(db.Mentions.Tone) != nm || len(db.Mentions.Confidence) != nm {
		return fmt.Errorf("store: mention column lengths disagree")
	}
	for i := 1; i < ne; i++ {
		if db.Events.ID[i] <= db.Events.ID[i-1] {
			return fmt.Errorf("store: event ids not strictly increasing at row %d", i)
		}
	}
	prev := int32(-1)
	for i := 0; i < nm; i++ {
		if db.Mentions.Interval[i] < prev {
			return fmt.Errorf("store: mentions not interval-sorted at row %d", i)
		}
		prev = db.Mentions.Interval[i]
		if e := db.Mentions.EventRow[i]; e < 0 || int(e) >= ne {
			return fmt.Errorf("store: mention %d references event row %d of %d", i, e, ne)
		}
		if s := db.Mentions.Source[i]; s < 0 || int(s) >= db.Sources.Len() {
			return fmt.Errorf("store: mention %d references source %d of %d", i, s, db.Sources.Len())
		}
	}
	return nil
}

// Validate checks internal invariants; it is used by tests and after binary
// loads. It is O(rows).
func (db *DB) Validate() error {
	if err := db.validateTables(); err != nil {
		return err
	}
	nm := db.Mentions.Len()
	ne := db.Events.Len()
	if len(db.SourceCountry) != db.Sources.Len() {
		return fmt.Errorf("store: source country column length %d != %d", len(db.SourceCountry), db.Sources.Len())
	}
	if got := db.bySourcePtr[db.Sources.Len()]; got != int64(nm) {
		return fmt.Errorf("store: source postings cover %d of %d mentions", got, nm)
	}
	if got := db.byEventPtr[ne]; got != int64(nm) {
		return fmt.Errorf("store: event postings cover %d of %d mentions", got, nm)
	}
	if db.quarterRow[db.quarters] != int64(nm) {
		return fmt.Errorf("store: quarter index covers %d of %d mentions", db.quarterRow[db.quarters], nm)
	}
	return nil
}
