package store

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

// Builder throughput: rows ingested and indexed per second, the core cost
// of the preprocessing step.

func benchRecords(n int) ([]gdelt.Event, []gdelt.Mention) {
	events := make([]gdelt.Event, n/4)
	for i := range events {
		events[i] = gdelt.Event{
			GlobalEventID: int64(i + 1),
			Day:           20150301,
			ActionCountry: "US",
			SourceURL:     "https://a.com/x",
			DateAdded:     gdelt.IntervalStart(int64(i % 96000)),
		}
	}
	mentions := make([]gdelt.Mention, n)
	for i := range mentions {
		ev := int64(i%len(events)) + 1
		iv := int64(i % 96000)
		mentions[i] = gdelt.Mention{
			GlobalEventID: ev,
			EventTime:     gdelt.IntervalStart(iv),
			MentionTime:   gdelt.IntervalStart(iv + int64(i%50)),
			MentionType:   1,
			SourceName:    sourceNames[i%len(sourceNames)],
			DocLen:        1000,
		}
	}
	return events, mentions
}

var sourceNames = []string{
	"alpha.com", "beta.co.uk", "gamma.com.au", "delta.in", "epsilon.it",
	"zeta.ca", "eta.co.za", "theta.ng", "iota.com.bd", "kappa.ph",
}

func BenchmarkBuilderFinish(b *testing.B) {
	const rows = 200000
	events, mentions := benchRecords(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder, err := NewBuilder(20150218000000, 96*1100)
		if err != nil {
			b.Fatal(err)
		}
		for j := range events {
			builder.AddEvent(&events[j])
		}
		for j := range mentions {
			builder.AddMention(&mentions[j])
		}
		db, _, err := builder.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if db.Mentions.Len() != rows {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkMentionRowRange(b *testing.B) {
	builder, err := NewBuilder(20150218000000, 96*1100)
	if err != nil {
		b.Fatal(err)
	}
	events, mentions := benchRecords(100000)
	for j := range events {
		builder.AddEvent(&events[j])
	}
	for j := range mentions {
		builder.AddMention(&mentions[j])
	}
	db, _, err := builder.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := db.MentionRowRange(int32(i%90000), int32(i%90000)+960)
		if hi < lo {
			b.Fatal("bad range")
		}
	}
}
