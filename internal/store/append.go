package store

import (
	"fmt"
	"sort"

	"gdeltmine/internal/gdelt"
)

// Stream appends. A feed chunk is one 15-minute update: an events file and a
// mentions file. AppendChunk folds one chunk into an already-assembled DB —
// the mutable exception to the store's otherwise immutable-after-assembly
// contract. The dangerous part is not the column appends but the derived
// state: the row-list postings, the per-source bitmap postings the planner
// prunes with (srcRowBM/srcEvBM/srcRepEvBM), the quarter index, and the
// typed LUTs are all materialized from the tables at assembly time, so an
// append that extended the columns without rebuilding them would leave the
// bitmap-pruned plans answering from the pre-append snapshot while the
// closure scan sees the new rows — a silent wrong-answer divergence, not a
// crash. AppendChunk therefore rebuilds every derived index before it
// returns and bumps the snapshot version so result caches keyed on
// Version() retire everything computed against the old data.
//
// Appends are single-writer and must not race in-flight queries: the caller
// serializes AppendChunk against query execution (the stream monitor's fold
// loop is single-threaded, so this is the natural shape there). GKG
// annotations are not extended by appends — the GKG table keeps its own
// interval column, so theme queries simply do not cover the appended span.

// AppendStats reports what an append folded in and dropped, mirroring
// BuildStats for the batch path.
type AppendStats struct {
	// AppendedEvents and AppendedMentions count the rows actually added.
	AppendedEvents, AppendedMentions int
	// DuplicateEvents counts chunk events whose GlobalEventID already
	// exists; the stored record wins, as in Builder.Finish.
	DuplicateEvents int64
	// DanglingMentions counts mentions referencing an unknown event.
	DanglingMentions int64
	// DroppedMentions counts non-web mentions and mentions captured outside
	// the archive span.
	DroppedMentions int64
	// TouchedEventRows lists the distinct event rows (post-append indexes)
	// whose per-event metadata changed — appended events plus events that
	// gained mentions. The sharded tail append uses it to propagate the
	// global per-event columns to the other shards' copies.
	TouchedEventRows []int32
}

// stagedMention is one accepted chunk mention, resolved against the
// post-insert event table.
type stagedMention struct {
	row   int32 // event row
	src   int32
	iv    int32 // mention capture interval, archive-relative
	evIv  int64 // event capture interval (may precede the archive)
	dlen  int32
	tone  float32
	conf  int8
	order int32 // input position, for the stable interval sort
}

// AppendChunk folds one feed chunk's events and mentions into the store.
// Chunk mentions must not regress: every accepted mention's capture
// interval has to be at or past the last stored interval (the tail-only
// contract of the time-ordered feed); a regression is an error and nothing
// is mutated. Non-web, out-of-range, and dangling mentions are dropped and
// counted exactly as Builder.Finish drops them, so appending a suffix of a
// feed equals rebuilding from the whole feed.
func (db *DB) AppendChunk(evs []gdelt.Event, mns []gdelt.Mention) (AppendStats, error) {
	var st AppendStats
	base := db.Meta.Start.IntervalIndex()

	// Stage the new events: unknown IDs only, sorted by ID for the merge.
	var newEvs []gdelt.Event
	seen := make(map[int64]bool, len(evs))
	for i := range evs {
		id := evs[i].GlobalEventID
		if seen[id] || db.EventRowByID(id) >= 0 {
			st.DuplicateEvents++
			continue
		}
		seen[id] = true
		newEvs = append(newEvs, evs[i])
	}
	sort.Slice(newEvs, func(a, b int) bool { return newEvs[a].GlobalEventID < newEvs[b].GlobalEventID })

	// Validate the mention batch BEFORE mutating anything. Event references
	// are resolved against the union of stored and staged event IDs; rows
	// are assigned after the merge below.
	lastIv := int32(0)
	if n := db.Mentions.Len(); n > 0 {
		lastIv = db.Mentions.Interval[n-1]
	}
	type pending struct {
		mi int // index into mns
		iv int32
	}
	var accept []pending
	for i := range mns {
		mn := &mns[i]
		if mn.MentionType != gdelt.MentionTypeWeb {
			st.DroppedMentions++
			continue
		}
		iv := mn.MentionTime.IntervalIndex() - base
		if iv < 0 || iv >= int64(db.Meta.Intervals) {
			st.DroppedMentions++
			db.Report.Record(gdelt.DefectBadRow,
				fmt.Sprintf("mention of event %d at %v outside archive", mn.GlobalEventID, mn.MentionTime))
			continue
		}
		if int32(iv) < lastIv {
			return AppendStats{}, fmt.Errorf(
				"store: append regresses to interval %d behind stored tail %d", iv, lastIv)
		}
		if db.EventRowByID(mn.GlobalEventID) < 0 && !seen[mn.GlobalEventID] {
			st.DanglingMentions++
			continue
		}
		accept = append(accept, pending{mi: i, iv: int32(iv)})
	}

	// Merge the staged events into the ID-sorted table, rewriting the
	// mention table's event-row references across the shift.
	if len(newEvs) > 0 {
		db.insertEvents(newEvs, base)
		st.AppendedEvents = len(newEvs)
	}

	// Stable-sort accepted mentions by interval (the builder's global sort
	// restricted to the chunk) and append the columns.
	sort.SliceStable(accept, func(a, b int) bool { return accept[a].iv < accept[b].iv })
	touched := make(map[int32]bool, len(accept)+len(newEvs))
	for i := range newEvs {
		touched[db.EventRowByID(newEvs[i].GlobalEventID)] = true
	}
	for _, p := range accept {
		mn := &mns[p.mi]
		row := db.EventRowByID(mn.GlobalEventID)
		evIv := mn.EventTime.IntervalIndex() - base
		delay := int64(p.iv) - evIv + 1
		if delay < 0 {
			delay = 0
		}
		if delay > int64(gdelt.IntervalsPerYear+gdelt.IntervalsPerDay) {
			delay = int64(gdelt.IntervalsPerYear + gdelt.IntervalsPerDay)
		}
		db.Mentions.EventRow = append(db.Mentions.EventRow, row)
		db.Mentions.Source = append(db.Mentions.Source, db.Sources.Intern(mn.SourceName))
		db.Mentions.Interval = append(db.Mentions.Interval, p.iv)
		db.Mentions.Delay = append(db.Mentions.Delay, int32(delay))
		db.Mentions.DocLen = append(db.Mentions.DocLen, mn.DocLen)
		db.Mentions.Tone = append(db.Mentions.Tone, mn.DocTone)
		db.Mentions.Confidence = append(db.Mentions.Confidence, mn.Confidence)

		// First mention of the event anywhere: pin FirstMention and refine
		// the event interval from EventTimeDate, as Finish does.
		if db.Events.NumArticles[row] == 0 {
			db.Events.FirstMention[row] = p.iv
			db.Events.Interval[row] = clampInterval(evIv, db.Meta.Intervals)
		}
		db.Events.NumArticles[row]++
		touched[row] = true
		st.AppendedMentions++
	}

	st.TouchedEventRows = make([]int32, 0, len(touched))
	for r := range touched {
		st.TouchedEventRows = append(st.TouchedEventRows, r)
	}
	sort.Slice(st.TouchedEventRows, func(a, b int) bool {
		return st.TouchedEventRows[a] < st.TouchedEventRows[b]
	})

	// Rebuild every derived index the query layers read. buildPostings ends
	// in buildSourceBitmaps, so the planner's bitmap postings can never be
	// stale relative to the tables; buildSourceCountries and the typed LUTs
	// cover dictionary growth from newly interned sources.
	db.buildSourceCountries()
	db.buildPostings()
	db.buildQuarterIndex()
	db.buildTypedLUTs()
	if err := db.Validate(); err != nil {
		return st, fmt.Errorf("store: append left an invalid db: %w", err)
	}
	db.BumpVersion()
	return st, nil
}

// AdoptEventRows merges already-derived event rows — copied verbatim from
// another shard of the same archive — into the event table, rewriting the
// mention table's event-row references and rebuilding the row-dependent
// derived indexes. The sharded tail append uses it to home events that a
// new chunk mentions but the tail shard never held; unlike AppendChunk's
// raw-event staging, the rows keep their global metadata (NumArticles,
// FirstMention, Interval) unchanged. IDs already present are skipped. The
// snapshot version is not bumped: adoption alone changes no query-visible
// data, and the AppendChunk that follows bumps it.
func (db *DB) AdoptEventRows(ev EventTable) error {
	order := make([]int, 0, ev.Len())
	for i := 0; i < ev.Len(); i++ {
		if db.EventRowByID(ev.ID[i]) < 0 {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Slice(order, func(a, b int) bool { return ev.ID[order[a]] < ev.ID[order[b]] })
	for k := 1; k < len(order); k++ {
		if ev.ID[order[k]] == ev.ID[order[k-1]] {
			return fmt.Errorf("store: adopting duplicate event %d", ev.ID[order[k]])
		}
	}

	oldN := db.Events.Len()
	var merged EventTable
	remap := make([]int32, oldN)
	oi, ni := 0, 0
	for oi < oldN || ni < len(order) {
		if ni >= len(order) || (oi < oldN && db.Events.ID[oi] < ev.ID[order[ni]]) {
			remap[oi] = int32(merged.Len())
			merged.ID = append(merged.ID, db.Events.ID[oi])
			merged.Day = append(merged.Day, db.Events.Day[oi])
			merged.Interval = append(merged.Interval, db.Events.Interval[oi])
			merged.Country = append(merged.Country, db.Events.Country[oi])
			merged.NumArticles = append(merged.NumArticles, db.Events.NumArticles[oi])
			merged.FirstMention = append(merged.FirstMention, db.Events.FirstMention[oi])
			merged.SourceURL = append(merged.SourceURL, db.Events.SourceURL[oi])
			oi++
			continue
		}
		j := order[ni]
		merged.ID = append(merged.ID, ev.ID[j])
		merged.Day = append(merged.Day, ev.Day[j])
		merged.Interval = append(merged.Interval, ev.Interval[j])
		merged.Country = append(merged.Country, ev.Country[j])
		merged.NumArticles = append(merged.NumArticles, ev.NumArticles[j])
		merged.FirstMention = append(merged.FirstMention, ev.FirstMention[j])
		merged.SourceURL = append(merged.SourceURL, ev.SourceURL[j])
		ni++
	}
	for i, e := range db.Mentions.EventRow {
		db.Mentions.EventRow[i] = remap[e]
	}
	db.Events = merged
	db.buildPostings()
	db.buildTypedLUTs()
	return db.Validate()
}

// insertEvents merges ID-sorted new events into the event table and rewrites
// Mentions.EventRow across the row shift.
func (db *DB) insertEvents(newEvs []gdelt.Event, base int64) {
	oldN := db.Events.Len()
	var merged EventTable
	remap := make([]int32, oldN)
	oi, ni := 0, 0
	for oi < oldN || ni < len(newEvs) {
		if ni >= len(newEvs) || (oi < oldN && db.Events.ID[oi] < newEvs[ni].GlobalEventID) {
			remap[oi] = int32(merged.Len())
			merged.ID = append(merged.ID, db.Events.ID[oi])
			merged.Day = append(merged.Day, db.Events.Day[oi])
			merged.Interval = append(merged.Interval, db.Events.Interval[oi])
			merged.Country = append(merged.Country, db.Events.Country[oi])
			merged.NumArticles = append(merged.NumArticles, db.Events.NumArticles[oi])
			merged.FirstMention = append(merged.FirstMention, db.Events.FirstMention[oi])
			merged.SourceURL = append(merged.SourceURL, db.Events.SourceURL[oi])
			oi++
			continue
		}
		ev := &newEvs[ni]
		iv := clampInterval(ev.DateAdded.IntervalIndex()-base, db.Meta.Intervals)
		merged.ID = append(merged.ID, ev.GlobalEventID)
		merged.Day = append(merged.Day, ev.Day)
		merged.Interval = append(merged.Interval, iv)
		merged.Country = append(merged.Country, int16(gdelt.CountryIndex(ev.ActionCountry)))
		merged.NumArticles = append(merged.NumArticles, 0)
		// FirstMention falls back to the event interval until a mention
		// arrives, matching Finish's treatment of mention-less events.
		merged.FirstMention = append(merged.FirstMention, iv)
		merged.SourceURL = append(merged.SourceURL, ev.SourceURL)
		ni++
	}
	for i, e := range db.Mentions.EventRow {
		db.Mentions.EventRow[i] = remap[e]
	}
	db.Events = merged
}
