package store

import (
	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/gdelt"
)

// Bitmap postings (DESIGN.md §12): alongside the row-list postings built by
// buildPostings, each source carries two roaring bitmaps — its mention rows
// and its event rows. The row bitmap gives the planner O(containers)
// cardinalities for selectivity estimation and lets the pruned CoReport /
// FollowReport path union a selection's rows in ascending order without the
// concat-and-sort the row lists need. The event bitmap answers "which events
// does this selection touch at all" for the candidate-events plan. Both are
// canonical (FromSorted), so equal row sets encode to identical bytes and the
// GDSM manifest can cross-check persisted bitmaps against rebuilt ones.

// buildSourceBitmaps derives the per-source row and event bitmaps from the
// freshly built postings. Row bitmaps come straight from the ascending
// posting lists; event bitmaps are built with one counting pass over the
// event-sorted mention order so each source's event list is ascending and
// deduplicated before FromSorted.
func (db *DB) buildSourceBitmaps() {
	ns := db.Sources.Len()
	db.srcRowBM = make([]*bitmap.Bitmap, ns)
	for s := 0; s < ns; s++ {
		db.srcRowBM[s] = bitmap.FromSorted(db.SourceMentions(int32(s)))
	}

	// Count distinct events per source by walking events in ascending row
	// order and deduplicating consecutive repeats per source.
	lastEv := make([]int32, ns)
	for s := range lastEv {
		lastEv[s] = -1
	}
	counts := make([]int64, ns)
	ne := db.Events.Len()
	for e := 0; e < ne; e++ {
		for _, m := range db.EventMentions(int32(e)) {
			s := db.Mentions.Source[m]
			if lastEv[s] != int32(e) {
				lastEv[s] = int32(e)
				counts[s]++
			}
		}
	}
	evs := make([][]int32, ns)
	for s := 0; s < ns; s++ {
		evs[s] = make([]int32, 0, counts[s])
		lastEv[s] = -1
	}
	// Repeat events: events a source mentions at least twice. lastRep marks
	// the second sighting within one event, so each repeat event is appended
	// exactly once and the lists stay ascending.
	reps := make([][]int32, ns)
	lastRep := make([]int32, ns)
	for s := range lastRep {
		lastRep[s] = -1
	}
	for e := 0; e < ne; e++ {
		for _, m := range db.EventMentions(int32(e)) {
			s := db.Mentions.Source[m]
			if lastEv[s] != int32(e) {
				lastEv[s] = int32(e)
				evs[s] = append(evs[s], int32(e))
			} else if lastRep[s] != int32(e) {
				lastRep[s] = int32(e)
				reps[s] = append(reps[s], int32(e))
			}
		}
	}
	db.srcEvBM = make([]*bitmap.Bitmap, ns)
	db.srcRepEvBM = make([]*bitmap.Bitmap, ns)
	for s := 0; s < ns; s++ {
		db.srcEvBM[s] = bitmap.FromSorted(evs[s])
		db.srcRepEvBM[s] = bitmap.FromSorted(reps[s])
	}
	// The value bitmaps depend on the same inputs (mention columns, source
	// countries, event tags), so every rebuild chain that refreshes the
	// source bitmaps — assembly, chunk appends, event adoption — refreshes
	// them too.
	db.buildValueBitmaps()
}

// buildValueBitmaps derives the per-country mention-row bitmaps for qlang
// predicate pushdown: one bitmap per publisher country (the source's
// TLD-attributed country) and one per event country (the mentioned event's
// tag). Rows are appended in ascending order, so FromSorted yields the
// canonical encoding the shard manifest cross-checks. Unattributable (-1)
// rows appear in no bitmap — matching the closure semantics, where an
// untagged row never satisfies an equality.
func (db *DB) buildValueBitmaps() {
	nc := len(gdelt.Countries)
	nm := db.Mentions.Len()
	countsS := make([]int64, nc)
	countsE := make([]int64, nc)
	for row := 0; row < nm; row++ {
		if c := db.SourceCountry[db.Mentions.Source[row]]; c >= 0 {
			countsS[c]++
		}
		if c := db.Events.Country[db.Mentions.EventRow[row]]; c >= 0 {
			countsE[c]++
		}
	}
	rowsS := make([][]int32, nc)
	rowsE := make([][]int32, nc)
	for c := 0; c < nc; c++ {
		rowsS[c] = make([]int32, 0, countsS[c])
		rowsE[c] = make([]int32, 0, countsE[c])
	}
	for row := 0; row < nm; row++ {
		if c := db.SourceCountry[db.Mentions.Source[row]]; c >= 0 {
			rowsS[c] = append(rowsS[c], int32(row))
		}
		if c := db.Events.Country[db.Mentions.EventRow[row]]; c >= 0 {
			rowsE[c] = append(rowsE[c], int32(row))
		}
	}
	db.ctryRowBM = make([]*bitmap.Bitmap, nc)
	db.evCtryRowBM = make([]*bitmap.Bitmap, nc)
	for c := 0; c < nc; c++ {
		db.ctryRowBM[c] = bitmap.FromSorted(rowsS[c])
		db.evCtryRowBM[c] = bitmap.FromSorted(rowsE[c])
	}
}

// buildQuarterBitmaps derives one mention-row bitmap per calendar quarter
// from the quarter row index. Each is a contiguous range, which the roaring
// run containers encode in O(1) space per 64K block.
func (db *DB) buildQuarterBitmaps() {
	db.qtrRowBM = make([]*bitmap.Bitmap, db.quarters)
	var buf []int32
	for q := 0; q < db.quarters; q++ {
		lo, hi := db.quarterRow[q], db.quarterRow[q+1]
		buf = buf[:0]
		for r := lo; r < hi; r++ {
			buf = append(buf, int32(r))
		}
		db.qtrRowBM[q] = bitmap.FromSorted(buf)
	}
}

// CountryRowBitmap returns the bitmap of mention rows whose source is
// TLD-attributed to country index c (into gdelt.Countries). Out-of-range
// indexes return an empty bitmap. Read-only.
func (db *DB) CountryRowBitmap(c int) *bitmap.Bitmap {
	if c < 0 || c >= len(db.ctryRowBM) {
		return bitmap.New()
	}
	return db.ctryRowBM[c]
}

// EventCountryRowBitmap returns the bitmap of mention rows whose mentioned
// event is tagged with country index c. Out-of-range indexes return an
// empty bitmap. Read-only.
func (db *DB) EventCountryRowBitmap(c int) *bitmap.Bitmap {
	if c < 0 || c >= len(db.evCtryRowBM) {
		return bitmap.New()
	}
	return db.evCtryRowBM[c]
}

// QuarterRowBitmap returns the bitmap of mention rows captured in quarter
// q. Out-of-range quarters return an empty bitmap. Read-only.
func (db *DB) QuarterRowBitmap(q int) *bitmap.Bitmap {
	if q < 0 || q >= len(db.qtrRowBM) {
		return bitmap.New()
	}
	return db.qtrRowBM[q]
}

// SourceRowBitmap returns the bitmap of mention rows of source s. Read-only;
// canonical, so AppendTo bytes are deterministic.
func (db *DB) SourceRowBitmap(s int32) *bitmap.Bitmap { return db.srcRowBM[s] }

// SourceEventBitmap returns the bitmap of event rows source s mentions.
// Read-only.
func (db *DB) SourceEventBitmap(s int32) *bitmap.Bitmap { return db.srcEvBM[s] }

// SourceRepeatEventBitmap returns the bitmap of event rows source s mentions
// two or more times — the events where a source can follow itself. The
// planner's contributing-events plan for FollowReport needs them: an event
// contributes only when it holds at least two selected rows, i.e. when two
// distinct selected sources co-occur or one selected source repeats.
// Read-only.
func (db *DB) SourceRepeatEventBitmap(s int32) *bitmap.Bitmap { return db.srcRepEvBM[s] }

// ThemeBitmap returns the bitmap of GKG rows annotated with theme id t.
// Read-only.
func (g *GKGStore) ThemeBitmap(t int32) *bitmap.Bitmap { return g.themeBM[t] }

// buildThemeBitmaps derives per-theme row bitmaps from the theme postings.
func (g *GKGStore) buildThemeBitmaps() {
	nt := g.Themes.Len()
	g.themeBM = make([]*bitmap.Bitmap, nt)
	for t := 0; t < nt; t++ {
		g.themeBM[t] = bitmap.FromSorted(g.ThemeRows(int32(t)))
	}
}
