package store

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

func buildGKGDB(t *testing.T) *DB {
	t.Helper()
	b, err := NewBuilder(20150218000000, 96*10)
	if err != nil {
		t.Fatal(err)
	}
	ev := gdelt.Event{GlobalEventID: 1, Day: 20150218, SourceURL: "https://a.com/1",
		DateAdded: gdelt.IntervalStart(0)}
	b.AddEvent(&ev)
	mn := gdelt.Mention{GlobalEventID: 1, EventTime: gdelt.IntervalStart(0),
		MentionTime: gdelt.IntervalStart(0), MentionType: 1, SourceName: "a.com"}
	b.AddMention(&mn)

	recs := []gdelt.GKGRecord{
		{RecordID: "r2", Date: gdelt.IntervalStart(5), SourceName: "b.co.uk",
			Themes: []string{"KILL"}, Persons: []string{"jane doe"}, Translated: true},
		{RecordID: "r1", Date: gdelt.IntervalStart(1), SourceName: "a.com",
			Themes: []string{"TERROR", "KILL"}, Organizations: []string{"police"}, Tone: -5},
		{RecordID: "out-of-range", Date: gdelt.IntervalStart(96 * 20), SourceName: "a.com"},
	}
	for i := range recs {
		b.AddGKG(&recs[i])
	}
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGKGBuilderSortsAndIndexes(t *testing.T) {
	db := buildGKGDB(t)
	g := db.GKG
	if g == nil {
		t.Fatal("no GKG store")
	}
	// Out-of-range record dropped; remaining two sorted by interval.
	if g.Table.Len() != 2 {
		t.Fatalf("rows %d", g.Table.Len())
	}
	if g.Table.Interval[0] != 1 || g.Table.Interval[1] != 5 {
		t.Fatalf("intervals %v", g.Table.Interval)
	}
	// Row 0 is the r1 record (two themes, one org, tone -5).
	if len(g.Table.RowThemes(0)) != 2 || len(g.Table.RowOrgs(0)) != 1 || g.Table.Tone[0] != -5 {
		t.Fatalf("row 0 annotations wrong")
	}
	if g.Table.Translated[0] || !g.Table.Translated[1] {
		t.Fatal("translation flags wrong")
	}
	// Theme postings: KILL appears in both rows, TERROR in one.
	kill := g.Themes.Lookup("KILL")
	terror := g.Themes.Lookup("TERROR")
	if kill < 0 || terror < 0 {
		t.Fatal("themes not interned")
	}
	if len(g.ThemeRows(kill)) != 2 || len(g.ThemeRows(terror)) != 1 {
		t.Fatalf("postings: KILL %d TERROR %d", len(g.ThemeRows(kill)), len(g.ThemeRows(terror)))
	}
	// GKG sources share the main dictionary; b.co.uk exists only via GKG.
	if db.Sources.Lookup("b.co.uk") < 0 {
		t.Fatal("GKG-only source not interned")
	}
	// The dropped record counted as a bad row.
	if db.Report.Counts[gdelt.DefectBadRow] != 1 {
		t.Fatalf("bad rows %d", db.Report.Counts[gdelt.DefectBadRow])
	}
}

func TestGKGValidateCatchesCorruption(t *testing.T) {
	db := buildGKGDB(t)
	g := db.GKG
	if err := g.Validate(db.Sources); err != nil {
		t.Fatal(err)
	}
	saved := g.Table.ThemeIDs[0]
	g.Table.ThemeIDs[0] = 999
	if err := g.Table.Validate(db.Sources, g.Themes, g.Persons, g.Orgs); err == nil {
		t.Fatal("bad theme id not caught")
	}
	g.Table.ThemeIDs[0] = saved
	savedIv := g.Table.Interval[1]
	g.Table.Interval[1] = 0 // breaks sort order
	if err := g.Table.Validate(db.Sources, g.Themes, g.Persons, g.Orgs); err == nil {
		t.Fatal("unsorted rows not caught")
	}
	g.Table.Interval[1] = savedIv
}

func TestBuilderWithoutGKG(t *testing.T) {
	b, err := NewBuilder(20150218000000, 96)
	if err != nil {
		t.Fatal(err)
	}
	ev := gdelt.Event{GlobalEventID: 1, Day: 20150218, SourceURL: "x", DateAdded: gdelt.IntervalStart(0)}
	b.AddEvent(&ev)
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if db.GKG != nil {
		t.Fatal("GKG store without GKG records")
	}
}
