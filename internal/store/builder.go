package store

import (
	"fmt"
	"sort"

	"gdeltmine/internal/gdelt"
)

// Builder accumulates raw event and mention records and assembles the
// immutable DB. It performs the cleaning, indexing and validation work of
// the paper's preprocessing tool.
type Builder struct {
	meta Meta
	base int64 // global interval index of capture interval 0

	sources *Dictionary
	report  *gdelt.ValidationReport

	// Event staging, keyed later by GlobalEventID.
	evID    []int64
	evDay   []int32
	evCtry  []int16
	evURL   []string
	evAdded []gdelt.Timestamp

	// Mention staging.
	mnEventID  []int64
	mnSource   []int32
	mnEvIv     []int64 // event capture interval (global offset, may precede archive)
	mnIv       []int32 // mention capture interval (archive-relative)
	mnDocLen   []int32
	mnTone     []float32
	mnConf     []int8
	duplicates int64
	dangling   int64
	dropped    int64

	gkg *gkgStaging
}

// BuildStats reports what the builder ingested and discarded.
type BuildStats struct {
	// DuplicateEvents counts event rows whose GlobalEventID was already
	// seen; the first record wins.
	DuplicateEvents int64
	// DanglingMentions counts mentions referencing an unknown event
	// (typically caused by missing-archive chunks) that were dropped.
	DanglingMentions int64
	// DroppedMentions counts non-web mentions and mentions with
	// out-of-range capture times that were dropped.
	DroppedMentions int64
}

// NewBuilder returns a builder for an archive starting at start and
// covering intervals capture intervals.
func NewBuilder(start gdelt.Timestamp, intervals int32) (*Builder, error) {
	if !start.Valid() {
		return nil, fmt.Errorf("store: invalid archive start %v", start)
	}
	if intervals <= 0 {
		return nil, fmt.Errorf("store: archive needs a positive interval count")
	}
	return &Builder{
		meta:    Meta{Start: start, Intervals: intervals},
		base:    start.IntervalIndex(),
		sources: NewDictionary(),
		report:  &gdelt.ValidationReport{},
	}, nil
}

// Report exposes the validation report being assembled; callers may record
// master-list and archive-level defects into it before Finish.
func (b *Builder) Report() *gdelt.ValidationReport { return b.report }

// AddEvent stages one parsed event row.
func (b *Builder) AddEvent(ev *gdelt.Event) {
	b.evID = append(b.evID, ev.GlobalEventID)
	b.evDay = append(b.evDay, ev.Day)
	b.evCtry = append(b.evCtry, int16(gdelt.CountryIndex(ev.ActionCountry)))
	b.evURL = append(b.evURL, ev.SourceURL)
	b.evAdded = append(b.evAdded, ev.DateAdded)
}

// AddMention stages one parsed mention row. Non-web mentions and mentions
// captured outside the archive span are dropped and counted.
func (b *Builder) AddMention(mn *gdelt.Mention) {
	if mn.MentionType != gdelt.MentionTypeWeb {
		b.dropped++
		return
	}
	iv := mn.MentionTime.IntervalIndex() - b.base
	if iv < 0 || iv >= int64(b.meta.Intervals) {
		b.dropped++
		b.report.Record(gdelt.DefectBadRow,
			fmt.Sprintf("mention of event %d at %v outside archive", mn.GlobalEventID, mn.MentionTime))
		return
	}
	b.mnEventID = append(b.mnEventID, mn.GlobalEventID)
	b.mnSource = append(b.mnSource, b.sources.Intern(mn.SourceName))
	b.mnEvIv = append(b.mnEvIv, mn.EventTime.IntervalIndex()-b.base)
	b.mnIv = append(b.mnIv, int32(iv))
	b.mnDocLen = append(b.mnDocLen, mn.DocLen)
	b.mnTone = append(b.mnTone, mn.DocTone)
	b.mnConf = append(b.mnConf, mn.Confidence)
}

// Finish assembles the immutable DB: deduplicates and sorts events, drops
// dangling mentions, sorts mentions by capture interval, recounts per-event
// articles, computes delays, validates (Table II), and builds the postings
// and quarter indexes.
func (b *Builder) Finish() (*DB, BuildStats, error) {
	db := &DB{Meta: b.meta, Sources: b.sources, Report: b.report}

	// Deduplicate and sort events by id.
	order := make([]int32, len(b.evID))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, c int) bool { return b.evID[order[a]] < b.evID[order[c]] })
	rowOf := make(map[int64]int32, len(order))
	for _, o := range order {
		id := b.evID[o]
		if _, dup := rowOf[id]; dup {
			b.duplicates++
			continue
		}
		rowOf[id] = int32(db.Events.Len())
		db.Events.ID = append(db.Events.ID, id)
		db.Events.Day = append(db.Events.Day, b.evDay[o])
		db.Events.Country = append(db.Events.Country, b.evCtry[o])
		db.Events.SourceURL = append(db.Events.SourceURL, b.evURL[o])
		// Event interval provisional from DateAdded; refined from mention
		// EventTimeDate below (DateAdded is the first capture).
		iv := b.evAdded[o].IntervalIndex() - b.base
		db.Events.Interval = append(db.Events.Interval, clampInterval(iv, b.meta.Intervals))
	}
	ne := db.Events.Len()

	// Sort mention staging rows by capture interval (stable on input order).
	morder := make([]int32, len(b.mnIv))
	for i := range morder {
		morder[i] = int32(i)
	}
	sort.SliceStable(morder, func(a, c int) bool { return b.mnIv[morder[a]] < b.mnIv[morder[c]] })

	db.Events.NumArticles = make([]int32, ne)
	db.Events.FirstMention = make([]int32, ne)
	for i := range db.Events.FirstMention {
		db.Events.FirstMention[i] = -1
	}
	firstMentionTS := make([]gdelt.Timestamp, ne)

	for _, o := range morder {
		row, ok := rowOf[b.mnEventID[o]]
		if !ok {
			b.dangling++
			continue
		}
		evIv := b.mnEvIv[o]
		mnIv := b.mnIv[o]
		delay := int64(mnIv) - evIv + 1
		if delay < 0 {
			delay = 0
		}
		if delay > int64(gdelt.IntervalsPerYear+gdelt.IntervalsPerDay) {
			delay = int64(gdelt.IntervalsPerYear + gdelt.IntervalsPerDay)
		}
		db.Mentions.EventRow = append(db.Mentions.EventRow, row)
		db.Mentions.Source = append(db.Mentions.Source, b.mnSource[o])
		db.Mentions.Interval = append(db.Mentions.Interval, mnIv)
		db.Mentions.Delay = append(db.Mentions.Delay, int32(delay))
		db.Mentions.DocLen = append(db.Mentions.DocLen, b.mnDocLen[o])
		db.Mentions.Tone = append(db.Mentions.Tone, b.mnTone[o])
		db.Mentions.Confidence = append(db.Mentions.Confidence, b.mnConf[o])

		db.Events.NumArticles[row]++
		if db.Events.FirstMention[row] < 0 {
			db.Events.FirstMention[row] = mnIv
			firstMentionTS[row] = gdelt.IntervalStart(b.base + int64(mnIv))
			// Refine the event interval from the mention's EventTimeDate.
			db.Events.Interval[row] = clampInterval(evIv, b.meta.Intervals)
		}
	}

	// Per-event validation (missing URL, future event date).
	for i := 0; i < ne; i++ {
		ev := gdelt.Event{
			GlobalEventID: db.Events.ID[i],
			Day:           db.Events.Day[i],
			SourceURL:     db.Events.SourceURL[i],
		}
		gdelt.ValidateEvent(b.report, &ev, firstMentionTS[i])
		if db.Events.FirstMention[i] < 0 {
			db.Events.FirstMention[i] = db.Events.Interval[i]
		}
	}

	db.buildSourceCountries()
	db.buildPostings()
	db.buildQuarterIndex()
	db.buildTypedLUTs()
	if err := b.finishGKG(db); err != nil {
		return nil, BuildStats{}, err
	}

	stats := BuildStats{DuplicateEvents: b.duplicates, DanglingMentions: b.dangling, DroppedMentions: b.dropped}
	if err := db.Validate(); err != nil {
		return nil, stats, err
	}
	return db, stats, nil
}

func clampInterval(iv int64, n int32) int32 {
	if iv < 0 {
		return 0
	}
	if iv >= int64(n) {
		return n - 1
	}
	return int32(iv)
}

func (db *DB) buildSourceCountries() {
	db.SourceCountry = make([]int16, db.Sources.Len())
	for s, name := range db.Sources.Names() {
		db.SourceCountry[s] = int16(gdelt.CountryFromDomain(name))
	}
}

// buildPostings builds the by-source and by-event mention indexes with two
// counting sorts over the interval-sorted mention table, so every posting
// list is ascending by interval.
func (db *DB) buildPostings() {
	nm := db.Mentions.Len()
	ns := db.Sources.Len()
	ne := db.Events.Len()

	db.bySourcePtr = make([]int64, ns+1)
	for _, s := range db.Mentions.Source {
		db.bySourcePtr[s+1]++
	}
	for s := 0; s < ns; s++ {
		db.bySourcePtr[s+1] += db.bySourcePtr[s]
	}
	db.bySourceIdx = make([]int32, nm)
	cur := make([]int64, ns)
	for i := 0; i < nm; i++ {
		s := db.Mentions.Source[i]
		db.bySourceIdx[db.bySourcePtr[s]+cur[s]] = int32(i)
		cur[s]++
	}

	db.byEventPtr = make([]int64, ne+1)
	for _, e := range db.Mentions.EventRow {
		db.byEventPtr[e+1]++
	}
	for e := 0; e < ne; e++ {
		db.byEventPtr[e+1] += db.byEventPtr[e]
	}
	db.byEventIdx = make([]int32, nm)
	ecur := make([]int64, ne)
	for i := 0; i < nm; i++ {
		e := db.Mentions.EventRow[i]
		db.byEventIdx[db.byEventPtr[e]+ecur[e]] = int32(i)
		ecur[e]++
	}

	db.buildSourceBitmaps()
}

// buildTypedLUTs widens the int16 remap columns to the int32 lookup tables
// the vectorized kernels index directly (quarter of interval, country of
// source, country of event). Built once per assembly; ~4 bytes per
// interval/source/event, negligible next to the mention table.
func (db *DB) buildTypedLUTs() {
	db.quarterLUT = make([]int32, len(db.quarterOfInterval))
	for i, q := range db.quarterOfInterval {
		db.quarterLUT[i] = int32(q)
	}
	db.sourceCountryLUT = make([]int32, len(db.SourceCountry))
	for i, c := range db.SourceCountry {
		db.sourceCountryLUT[i] = int32(c)
	}
	db.eventCountryLUT = make([]int32, db.Events.Len())
	for i, c := range db.Events.Country {
		db.eventCountryLUT[i] = int32(c)
	}
}

// buildQuarterIndex maps every capture interval to its calendar quarter and
// records the first mention row of each quarter.
func (db *DB) buildQuarterIndex() {
	n := int(db.Meta.Intervals)
	db.quarterOfInterval = make([]int16, n)
	baseAbs := db.Meta.Start.Year()*4 + (db.Meta.Start.Month()-1)/3
	// Walk day by day; all 96 intervals of a day share a quarter.
	t := db.Meta.Start.Time()
	day := 0
	for iv := 0; iv < n; iv += gdelt.IntervalsPerDay {
		dt := t.AddDate(0, 0, day)
		q := dt.Year()*4 + (int(dt.Month())-1)/3 - baseAbs
		for k := iv; k < iv+gdelt.IntervalsPerDay && k < n; k++ {
			db.quarterOfInterval[k] = int16(q)
		}
		day++
	}
	db.quarters = int(db.quarterOfInterval[n-1]) + 1

	db.quarterRow = make([]int64, db.quarters+1)
	nm := db.Mentions.Len()
	for q := 1; q <= db.quarters; q++ {
		// First mention row whose quarter >= q.
		db.quarterRow[q] = int64(sort.Search(nm, func(i int) bool {
			return int(db.quarterOfInterval[db.Mentions.Interval[i]]) >= q
		}))
	}
	db.quarterRow[db.quarters] = int64(nm)

	db.buildQuarterBitmaps()
}
