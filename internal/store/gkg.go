package store

import (
	"fmt"
	"sort"

	"gdeltmine/internal/bitmap"
	"gdeltmine/internal/gdelt"
)

// GKGTable is the columnar Global Knowledge Graph table: one row per
// annotated article, sorted by capture interval. Themes, persons and
// organizations are dictionary-encoded with CSR-style per-row lists.
type GKGTable struct {
	Source     []int32 // id in the shared source dictionary
	Interval   []int32
	Tone       []float32
	Translated []bool

	ThemePtr  []int64 // len rows+1
	ThemeIDs  []int32
	PersonPtr []int64
	PersonIDs []int32
	OrgPtr    []int64
	OrgIDs    []int32
}

// Len returns the number of GKG rows.
func (t *GKGTable) Len() int { return len(t.Source) }

// RowThemes returns the theme ids of row r (aliases storage).
func (t *GKGTable) RowThemes(r int) []int32 { return t.ThemeIDs[t.ThemePtr[r]:t.ThemePtr[r+1]] }

// RowPersons returns the person ids of row r.
func (t *GKGTable) RowPersons(r int) []int32 { return t.PersonIDs[t.PersonPtr[r]:t.PersonPtr[r+1]] }

// RowOrgs returns the organization ids of row r.
func (t *GKGTable) RowOrgs(r int) []int32 { return t.OrgIDs[t.OrgPtr[r]:t.OrgPtr[r+1]] }

// Validate checks the table's internal invariants against the dictionaries.
func (t *GKGTable) Validate(sources, themes, persons, orgs *Dictionary) error {
	n := t.Len()
	if len(t.Interval) != n || len(t.Tone) != n || len(t.Translated) != n {
		return fmt.Errorf("store: gkg column lengths disagree")
	}
	if len(t.ThemePtr) != n+1 || len(t.PersonPtr) != n+1 || len(t.OrgPtr) != n+1 {
		return fmt.Errorf("store: gkg csr pointer lengths disagree")
	}
	prev := int32(-1)
	for r := 0; r < n; r++ {
		if t.Interval[r] < prev {
			return fmt.Errorf("store: gkg rows not interval-sorted at %d", r)
		}
		prev = t.Interval[r]
		if s := t.Source[r]; s < 0 || int(s) >= sources.Len() {
			return fmt.Errorf("store: gkg row %d source %d out of range", r, s)
		}
	}
	check := func(name string, ptr []int64, ids []int32, dict *Dictionary) error {
		if ptr[0] != 0 || ptr[n] != int64(len(ids)) {
			return fmt.Errorf("store: gkg %s csr does not cover ids", name)
		}
		for r := 0; r < n; r++ {
			if ptr[r+1] < ptr[r] {
				return fmt.Errorf("store: gkg %s csr not monotone at %d", name, r)
			}
		}
		for _, id := range ids {
			if id < 0 || int(id) >= dict.Len() {
				return fmt.Errorf("store: gkg %s id %d out of range", name, id)
			}
		}
		return nil
	}
	if err := check("theme", t.ThemePtr, t.ThemeIDs, themes); err != nil {
		return err
	}
	if err := check("person", t.PersonPtr, t.PersonIDs, persons); err != nil {
		return err
	}
	return check("org", t.OrgPtr, t.OrgIDs, orgs)
}

// GKGStore bundles the GKG table with its dictionaries and theme postings.
// A DB without ingested GKG data has a nil GKGStore.
type GKGStore struct {
	Table   GKGTable
	Themes  *Dictionary
	Persons *Dictionary
	Orgs    *Dictionary

	// themePost[t] lists GKG rows carrying theme t, ascending by interval.
	themePtr []int64
	themeIdx []int32

	// themeBM[t] is the roaring bitmap of rows carrying theme t, derived
	// from the postings (DESIGN.md §12).
	themeBM []*bitmap.Bitmap
}

// ThemeRows returns the GKG rows annotated with theme id t.
func (g *GKGStore) ThemeRows(t int32) []int32 {
	return g.themeIdx[g.themePtr[t]:g.themePtr[t+1]]
}

// buildThemePostings derives the theme -> rows index.
func (g *GKGStore) buildThemePostings() {
	nt := g.Themes.Len()
	g.themePtr = make([]int64, nt+1)
	for _, id := range g.Table.ThemeIDs {
		g.themePtr[id+1]++
	}
	for t := 0; t < nt; t++ {
		g.themePtr[t+1] += g.themePtr[t]
	}
	g.themeIdx = make([]int32, len(g.Table.ThemeIDs))
	cur := make([]int64, nt)
	for r := 0; r < g.Table.Len(); r++ {
		for _, id := range g.Table.RowThemes(r) {
			g.themeIdx[g.themePtr[id]+cur[id]] = int32(r)
			cur[id]++
		}
	}

	g.buildThemeBitmaps()
}

// Validate checks the store's invariants.
func (g *GKGStore) Validate(sources *Dictionary) error {
	if err := g.Table.Validate(sources, g.Themes, g.Persons, g.Orgs); err != nil {
		return err
	}
	if got := g.themePtr[g.Themes.Len()]; got != int64(len(g.Table.ThemeIDs)) {
		return fmt.Errorf("store: theme postings cover %d of %d", got, len(g.Table.ThemeIDs))
	}
	return nil
}

// AssembleGKG attaches a deserialized GKG store to a DB, rebuilding the
// postings and validating.
func AssembleGKG(db *DB, table GKGTable, themes, persons, orgs *Dictionary) error {
	g := &GKGStore{Table: table, Themes: themes, Persons: persons, Orgs: orgs}
	// Validate the table before building postings: the counting sort in
	// buildThemePostings indexes by theme id, so out-of-range ids from a
	// corrupted binary load must fail here rather than panic there.
	if err := g.Table.Validate(db.Sources, themes, persons, orgs); err != nil {
		return err
	}
	g.buildThemePostings()
	if err := g.Validate(db.Sources); err != nil {
		return err
	}
	db.GKG = g
	return nil
}

// gkgStaging is the builder-side accumulation of GKG rows.
type gkgStaging struct {
	themes  *Dictionary
	persons *Dictionary
	orgs    *Dictionary

	source     []int32
	interval   []int32
	tone       []float32
	translated []bool
	themeCnt   []int32
	themeFlat  []int32
	personCnt  []int32
	personFlat []int32
	orgCnt     []int32
	orgFlat    []int32
}

// AddGKG stages one parsed GKG record. Records captured outside the archive
// span are dropped and counted as bad rows.
func (b *Builder) AddGKG(rec *gdelt.GKGRecord) {
	iv := rec.Date.IntervalIndex() - b.base
	if iv < 0 || iv >= int64(b.meta.Intervals) {
		b.dropped++
		b.report.Record(gdelt.DefectBadRow, fmt.Sprintf("gkg record %s outside archive", rec.RecordID))
		return
	}
	if b.gkg == nil {
		b.gkg = &gkgStaging{
			themes:  NewDictionary(),
			persons: NewDictionary(),
			orgs:    NewDictionary(),
		}
	}
	g := b.gkg
	g.source = append(g.source, b.sources.Intern(rec.SourceName))
	g.interval = append(g.interval, int32(iv))
	g.tone = append(g.tone, rec.Tone)
	g.translated = append(g.translated, rec.Translated)
	g.themeCnt = append(g.themeCnt, int32(len(rec.Themes)))
	for _, th := range rec.Themes {
		g.themeFlat = append(g.themeFlat, g.themes.Intern(th))
	}
	g.personCnt = append(g.personCnt, int32(len(rec.Persons)))
	for _, p := range rec.Persons {
		g.personFlat = append(g.personFlat, g.persons.Intern(p))
	}
	g.orgCnt = append(g.orgCnt, int32(len(rec.Organizations)))
	for _, o := range rec.Organizations {
		g.orgFlat = append(g.orgFlat, g.orgs.Intern(o))
	}
}

// finishGKG sorts the staged rows by interval and assembles the GKG store.
func (b *Builder) finishGKG(db *DB) error {
	g := b.gkg
	if g == nil {
		return nil
	}
	n := len(g.source)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, c int) bool { return g.interval[order[a]] < g.interval[order[c]] })

	// Prefix offsets of the staged (unsorted) CSR lists.
	themeOff := prefix(g.themeCnt)
	personOff := prefix(g.personCnt)
	orgOff := prefix(g.orgCnt)

	var t GKGTable
	t.ThemePtr = append(t.ThemePtr, 0)
	t.PersonPtr = append(t.PersonPtr, 0)
	t.OrgPtr = append(t.OrgPtr, 0)
	for _, o := range order {
		t.Source = append(t.Source, g.source[o])
		t.Interval = append(t.Interval, g.interval[o])
		t.Tone = append(t.Tone, g.tone[o])
		t.Translated = append(t.Translated, g.translated[o])
		t.ThemeIDs = append(t.ThemeIDs, g.themeFlat[themeOff[o]:themeOff[o]+int64(g.themeCnt[o])]...)
		t.ThemePtr = append(t.ThemePtr, int64(len(t.ThemeIDs)))
		t.PersonIDs = append(t.PersonIDs, g.personFlat[personOff[o]:personOff[o]+int64(g.personCnt[o])]...)
		t.PersonPtr = append(t.PersonPtr, int64(len(t.PersonIDs)))
		t.OrgIDs = append(t.OrgIDs, g.orgFlat[orgOff[o]:orgOff[o]+int64(g.orgCnt[o])]...)
		t.OrgPtr = append(t.OrgPtr, int64(len(t.OrgIDs)))
	}
	return AssembleGKG(db, t, g.themes, g.persons, g.orgs)
}

func prefix(counts []int32) []int64 {
	out := make([]int64, len(counts))
	var acc int64
	for i, c := range counts {
		out[i] = acc
		acc += int64(c)
	}
	return out
}
