package store

import (
	"sync/atomic"

	"gdeltmine/internal/gdelt"
)

// Copy-on-write clone support for the partitioned append log
// (internal/shard.Log). Published snapshots are immutable: the append path
// clones exactly the state the tail fold will mutate and shares everything
// else. Two clone depths exist because shard.AppendTail mutates two very
// different amounts of state:
//
//   - The tail part is rewritten wholesale (tables, local dictionary,
//     every derived index) — it needs DeepClone.
//   - Non-tail parts only have the three global per-event metadata columns
//     (NumArticles, FirstMention, Interval) written in place for adopted
//     events; no derived index reads those columns, so
//     CloneWithFreshEventMeta copies just them and shares all other
//     storage with the published snapshot.

// SetVersion pins the snapshot version on a clone (AssembleDB starts every
// assembly back at 0). The append log relies on it twice: a deep-cloned
// tail must carry its original's version forward so tail-window cache keys
// stay comparable, and a seal hands the old tail's version to both the
// sealed part and the fresh tail. The carry-forward is safe for cache
// keys because data only ever changes through appends, and every append
// bumps the (cloned) tail's version — so any window whose rows changed
// gains a strictly larger version component than any key minted before.
func (db *DB) SetVersion(v uint64) { atomic.StoreUint64(&db.version, v) }

// Clone returns an independent dictionary with identical ids. The append
// path clones the shard-global dictionary before interning new chunk
// sources into it: Intern writes the map that readers of the published
// snapshot may be ranging over.
func (d *Dictionary) Clone() *Dictionary {
	c := &Dictionary{
		byName: make(map[string]int32, len(d.byName)),
		names:  append([]string(nil), d.names...),
	}
	for name, id := range d.byName {
		c.byName[name] = id
	}
	return c
}

// cloneReport deep-copies a validation report. The report has no internal
// locking — appends record new defects into it freely — so a clone that
// will be appended to must never share one with a published snapshot.
func cloneReport(r *gdelt.ValidationReport) *gdelt.ValidationReport {
	if r == nil {
		return nil
	}
	c := &gdelt.ValidationReport{Counts: r.Counts, MaxExamples: r.MaxExamples}
	for i := range r.Examples {
		c.Examples[i] = append([]string(nil), r.Examples[i]...)
	}
	return c
}

// DeepClone returns a fully independent copy of the store: fresh table
// columns, a cloned dictionary and report, and derived indexes rebuilt
// from scratch by AssembleDB. The GKG store is shared by pointer — the
// append path never extends GKG, and the cloned dictionary preserves every
// source id GKG rows reference. The snapshot version carries over.
func (db *DB) DeepClone() (*DB, error) {
	ev := EventTable{
		ID:           append([]int64(nil), db.Events.ID...),
		Day:          append([]int32(nil), db.Events.Day...),
		Interval:     append([]int32(nil), db.Events.Interval...),
		Country:      append([]int16(nil), db.Events.Country...),
		NumArticles:  append([]int32(nil), db.Events.NumArticles...),
		FirstMention: append([]int32(nil), db.Events.FirstMention...),
		SourceURL:    append([]string(nil), db.Events.SourceURL...),
	}
	mn := MentionTable{
		EventRow:   append([]int32(nil), db.Mentions.EventRow...),
		Source:     append([]int32(nil), db.Mentions.Source...),
		Interval:   append([]int32(nil), db.Mentions.Interval...),
		Delay:      append([]int32(nil), db.Mentions.Delay...),
		DocLen:     append([]int32(nil), db.Mentions.DocLen...),
		Tone:       append([]float32(nil), db.Mentions.Tone...),
		Confidence: append([]int8(nil), db.Mentions.Confidence...),
	}
	c, err := AssembleDB(db.Meta, db.Sources.Clone(), ev, mn, cloneReport(db.Report))
	if err != nil {
		return nil, err
	}
	c.GKG = db.GKG
	c.SetVersion(db.Version())
	return c, nil
}

// CloneWithFreshEventMeta returns a shallow copy of the store with fresh
// copies of only the three per-event metadata columns AppendTail
// propagates in place (Interval, NumArticles, FirstMention). Everything
// else — mention columns, dictionaries, postings, bitmaps, GKG — is shared
// with the original, which stays untouched. The version field is a plain
// word precisely so this struct copy is legal; the copy happens under the
// append log's writer lock, never concurrently with a version bump.
func (db *DB) CloneWithFreshEventMeta() *DB {
	c := new(DB)
	*c = *db
	c.Events.Interval = append([]int32(nil), db.Events.Interval...)
	c.Events.NumArticles = append([]int32(nil), db.Events.NumArticles...)
	c.Events.FirstMention = append([]int32(nil), db.Events.FirstMention...)
	return c
}
