package store

import (
	"testing"

	"gdeltmine/internal/gdelt"
)

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids %d %d", a, b)
	}
	if d.Intern("alpha") != a {
		t.Fatal("re-intern changed id")
	}
	if d.Lookup("beta") != b || d.Lookup("gamma") != -1 {
		t.Fatal("lookup wrong")
	}
	if d.Name(a) != "alpha" || d.Len() != 2 {
		t.Fatal("name/len wrong")
	}
}

func TestDictionaryNamePanics(t *testing.T) {
	d := NewDictionary()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Name(0)
}

func TestFromNames(t *testing.T) {
	d, err := FromNames([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Lookup("y") != 1 {
		t.Fatal("rebuilt lookup wrong")
	}
	if _, err := FromNames([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate names should fail")
	}
}

func TestNewBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(0, 10); err == nil {
		t.Fatal("invalid start should fail")
	}
	if _, err := NewBuilder(20150218000000, 0); err == nil {
		t.Fatal("zero intervals should fail")
	}
}

// buildTinyDB assembles a hand-crafted store with two sources, three events
// and five mentions for white-box assertions.
func buildTinyDB(t *testing.T) (*DB, BuildStats) {
	t.Helper()
	b, err := NewBuilder(20150218000000, 96*400) // 400 days
	if err != nil {
		t.Fatal(err)
	}
	mkTS := func(iv int64) gdelt.Timestamp { return gdelt.IntervalStart(iv) }

	events := []gdelt.Event{
		{GlobalEventID: 10, Day: 20150218, ActionCountry: "US", SourceURL: "https://a.com/1", DateAdded: mkTS(0)},
		{GlobalEventID: 20, Day: 20150228, ActionCountry: "UK", SourceURL: "", DateAdded: mkTS(1000)},
		{GlobalEventID: 30, Day: 20150401, ActionCountry: "", SourceURL: "https://b.co.uk/3", DateAdded: mkTS(4000)},
		{GlobalEventID: 20, Day: 20150228, ActionCountry: "UK", SourceURL: "dup", DateAdded: mkTS(1000)}, // duplicate
	}
	for i := range events {
		b.AddEvent(&events[i])
	}
	mentions := []gdelt.Mention{
		{GlobalEventID: 10, EventTime: mkTS(0), MentionTime: mkTS(0), MentionType: 1, SourceName: "a.com", DocLen: 100},
		{GlobalEventID: 10, EventTime: mkTS(0), MentionTime: mkTS(16), MentionType: 1, SourceName: "b.co.uk", DocLen: 200},
		{GlobalEventID: 20, EventTime: mkTS(1000), MentionTime: mkTS(1096), MentionType: 1, SourceName: "a.com", DocLen: 300},
		{GlobalEventID: 20, EventTime: mkTS(1000), MentionTime: mkTS(1000), MentionType: 1, SourceName: "b.co.uk", DocLen: 400},
		{GlobalEventID: 30, EventTime: mkTS(4000), MentionTime: mkTS(4001), MentionType: 1, SourceName: "a.com", DocLen: 500},
		{GlobalEventID: 99, EventTime: mkTS(0), MentionTime: mkTS(5), MentionType: 1, SourceName: "a.com"},                     // dangling
		{GlobalEventID: 10, EventTime: mkTS(0), MentionTime: mkTS(5), MentionType: 2, SourceName: "tv"},                        // non-web
		{GlobalEventID: 10, EventTime: mkTS(0), MentionTime: mkTS(96 * 500), MentionType: 1, SourceName: "x"},                  // beyond end
		{GlobalEventID: 10, EventTime: mkTS(0), MentionTime: gdelt.Timestamp(20150217000000), MentionType: 1, SourceName: "x"}, // before start
	}
	for i := range mentions {
		b.AddMention(&mentions[i])
	}
	db, stats, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return db, stats
}

func TestBuilderAssemblesTables(t *testing.T) {
	db, stats := buildTinyDB(t)
	if db.Events.Len() != 3 {
		t.Fatalf("events %d", db.Events.Len())
	}
	if db.Mentions.Len() != 5 {
		t.Fatalf("mentions %d", db.Mentions.Len())
	}
	if stats.DuplicateEvents != 1 || stats.DanglingMentions != 1 || stats.DroppedMentions != 3 {
		t.Fatalf("stats %+v", stats)
	}
	// Events sorted by id.
	if db.Events.ID[0] != 10 || db.Events.ID[1] != 20 || db.Events.ID[2] != 30 {
		t.Fatalf("event order %v", db.Events.ID)
	}
	// Duplicate kept the first record.
	if db.Events.SourceURL[1] != "" {
		t.Fatalf("duplicate resolution kept %q", db.Events.SourceURL[1])
	}
	// Article recount.
	if db.Events.NumArticles[0] != 2 || db.Events.NumArticles[1] != 2 || db.Events.NumArticles[2] != 1 {
		t.Fatalf("article counts %v", db.Events.NumArticles)
	}
	// First mentions.
	if db.Events.FirstMention[0] != 0 || db.Events.FirstMention[1] != 1000 || db.Events.FirstMention[2] != 4001 {
		t.Fatalf("first mentions %v", db.Events.FirstMention)
	}
}

func TestBuilderDelays(t *testing.T) {
	db, _ := buildTinyDB(t)
	// Mentions sorted by interval: rows are (ev10,a,0), (ev10,b,16),
	// (ev20,b,1000), (ev20,a,1096), (ev30,a,4001).
	wantDelays := []int32{1, 17, 1, 97, 2}
	for i, want := range wantDelays {
		if db.Mentions.Delay[i] != want {
			t.Fatalf("delay[%d] = %d want %d (intervals %v)", i, db.Mentions.Delay[i], want, db.Mentions.Interval)
		}
	}
}

func TestBuilderValidationReport(t *testing.T) {
	db, _ := buildTinyDB(t)
	r := db.Report
	if r.Counts[gdelt.DefectMissingSourceURL] != 1 {
		t.Fatalf("missing url count %d", r.Counts[gdelt.DefectMissingSourceURL])
	}
	// Event 30 recorded day 20150401 but first mention at interval 4001
	// (March 31) -> future-date defect.
	if r.Counts[gdelt.DefectFutureEventDate] != 1 {
		t.Fatalf("future date count %d (report: %v)", r.Counts[gdelt.DefectFutureEventDate], r.Counts)
	}
	// Out-of-range mentions were recorded as bad rows.
	if r.Counts[gdelt.DefectBadRow] != 2 {
		t.Fatalf("bad rows %d", r.Counts[gdelt.DefectBadRow])
	}
}

func TestPostings(t *testing.T) {
	db, _ := buildTinyDB(t)
	a := db.Sources.Lookup("a.com")
	bsrc := db.Sources.Lookup("b.co.uk")
	if a < 0 || bsrc < 0 {
		t.Fatal("sources not interned")
	}
	am := db.SourceMentions(a)
	if len(am) != 3 {
		t.Fatalf("a.com mentions %v", am)
	}
	// Ascending by interval.
	for i := 1; i < len(am); i++ {
		if db.Mentions.Interval[am[i]] < db.Mentions.Interval[am[i-1]] {
			t.Fatal("source postings not interval-sorted")
		}
	}
	if got := len(db.SourceMentions(bsrc)); got != 2 {
		t.Fatalf("b.co.uk mentions %d", got)
	}
	em := db.EventMentions(0)
	if len(em) != 2 {
		t.Fatalf("event 10 mentions %v", em)
	}
	if got := len(db.EventMentions(2)); got != 1 {
		t.Fatalf("event 30 mentions %d", got)
	}
}

func TestSourceCountries(t *testing.T) {
	db, _ := buildTinyDB(t)
	a := db.Sources.Lookup("a.com")
	bsrc := db.Sources.Lookup("b.co.uk")
	if got := db.SourceCountry[a]; got != int16(gdelt.CountryIndex("US")) {
		t.Fatalf("a.com country %d", got)
	}
	if got := db.SourceCountry[bsrc]; got != int16(gdelt.CountryIndex("UK")) {
		t.Fatalf("b.co.uk country %d", got)
	}
}

func TestEventRowByID(t *testing.T) {
	db, _ := buildTinyDB(t)
	if db.EventRowByID(20) != 1 {
		t.Fatal("lookup 20")
	}
	if db.EventRowByID(15) != -1 || db.EventRowByID(999) != -1 {
		t.Fatal("missing ids should return -1")
	}
}

func TestQuarterIndex(t *testing.T) {
	db, _ := buildTinyDB(t)
	// 400 days from 18 Feb 2015: 2015Q1..2016Q1 = 5 quarters.
	if db.NumQuarters() != 5 {
		t.Fatalf("quarters %d", db.NumQuarters())
	}
	if db.QuarterOfInterval(0) != 0 {
		t.Fatal("first interval quarter")
	}
	// 1 April 2015 is 42 days after start: interval 42*96.
	if got := db.QuarterOfInterval(42 * 96); got != 1 {
		t.Fatalf("april quarter %d", got)
	}
	if db.QuarterLabel(0) != "2015Q1" || db.QuarterLabel(4) != "2016Q1" {
		t.Fatalf("labels %s %s", db.QuarterLabel(0), db.QuarterLabel(4))
	}
	// Clamping.
	if db.QuarterOfInterval(-5) != 0 || db.QuarterOfInterval(1<<30) != 4 {
		t.Fatal("clamping broken")
	}
	// Quarter row ranges partition the mention table.
	var total int64
	for q := 0; q < db.NumQuarters(); q++ {
		lo, hi := db.QuarterMentionRange(q)
		if hi < lo {
			t.Fatalf("quarter %d range [%d,%d)", q, lo, hi)
		}
		for r := lo; r < hi; r++ {
			if db.QuarterOfInterval(db.Mentions.Interval[r]) != q {
				t.Fatalf("mention %d in wrong quarter bucket", r)
			}
		}
		total += hi - lo
	}
	if total != int64(db.Mentions.Len()) {
		t.Fatalf("quarter ranges cover %d of %d", total, db.Mentions.Len())
	}
}

func TestMetaEndExclusive(t *testing.T) {
	db, _ := buildTinyDB(t)
	want := gdelt.IntervalStart(int64(400 * 96))
	if got := db.Meta.EndExclusive(); got != want {
		t.Fatalf("end %v want %v", got, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db, _ := buildTinyDB(t)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	saved := db.Mentions.EventRow[0]
	db.Mentions.EventRow[0] = 99
	if err := db.Validate(); err == nil {
		t.Fatal("bad event row not caught")
	}
	db.Mentions.EventRow[0] = saved
	db.Events.ID[1] = db.Events.ID[0]
	if err := db.Validate(); err == nil {
		t.Fatal("unsorted ids not caught")
	}
}
