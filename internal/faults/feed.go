package faults

import "fmt"

// FeedFault enumerates the live-feed misbehaviors the test feed server can
// inject per 15-minute tick. They model the delivery failures of the real
// lastupdate/masterfile convention rather than of individual chunk files
// (Config covers those): the feed endpoint itself goes down, republishes a
// stale lastupdate, or publishes a tick's files late and out of order.
type FeedFault int

const (
	// FeedNone publishes the tick normally.
	FeedNone FeedFault = iota
	// FeedOutage makes the lastupdate endpoint return a server error for
	// the tick's whole lifetime at the head of the feed.
	FeedOutage
	// FeedDuplicate republishes the previous tick's lastupdate instead of
	// the new one — pollers see the same tick advertised twice and must
	// deduplicate; the new tick is only discoverable via the master list.
	FeedDuplicate
	// FeedDrop withholds the tick's files entirely until DropDelay later
	// ticks have been published, then surfaces them only in the master
	// list — a reordered drop: pollers see newer ticks first and must
	// buffer them while recovering the missing one out of order.
	FeedDrop
)

var feedFaultNames = map[FeedFault]string{
	FeedNone: "none", FeedOutage: "outage",
	FeedDuplicate: "duplicate", FeedDrop: "drop",
}

func (f FeedFault) String() string {
	if s, ok := feedFaultNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FeedFault(%d)", int(f))
}

// DropDelay is how many ticks late a FeedDrop tick's files land.
const DropDelay = 2

// FeedChaos assigns per-tick faults to a simulated live feed. Explicit
// Plan entries (keyed by tick timestamp string) win; other ticks draw from
// the probability fields via a hash of (Seed, tick), so runs are
// deterministic and order-independent, same as Config for chunk faults.
type FeedChaos struct {
	Seed          int64
	OutageProb    float64
	DuplicateProb float64
	DropProb      float64
	Plan          map[string]FeedFault
}

// FaultFor returns the fault assigned to one tick, identified by its
// timestamp string.
func (c *FeedChaos) FaultFor(tick string) FeedFault {
	if c == nil {
		return FeedNone
	}
	if f, ok := c.Plan[tick]; ok {
		return f
	}
	u := unitDraw(c.Seed, "feed", tick)
	switch {
	case u < c.OutageProb:
		return FeedOutage
	case u < c.OutageProb+c.DuplicateProb:
		return FeedDuplicate
	case u < c.OutageProb+c.DuplicateProb+c.DropProb:
		return FeedDrop
	}
	return FeedNone
}
