package faults

import (
	"context"
	"errors"
	"io/fs"
	"testing"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/ingest"
	"gdeltmine/internal/retry"
)

func memSource() (ingest.Source, map[string][]byte) {
	chunks := map[string][]byte{
		"a.export.csv":   []byte("row1\nrow2\nrow3\n"),
		"b.mentions.csv": []byte("m1\nm2\n"),
	}
	return ingest.Mem(chunks), chunks
}

func TestPlanFaults(t *testing.T) {
	src, chunks := memSource()
	in := New(src, Config{
		Plan: map[string]Fault{
			"a.export.csv":   Missing,
			"b.mentions.csv": Truncated,
		},
	})
	ctx := context.Background()
	if _, err := in.ReadChunk(ctx, "a.export.csv"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing fault: %v", err)
	}
	data, err := in.ReadChunk(ctx, "b.mentions.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(chunks["b.mentions.csv"]) || len(data) == 0 {
		t.Fatalf("truncated fault returned %d of %d bytes", len(data), len(chunks["b.mentions.csv"]))
	}
}

func TestTransientFaultHealsAfterFailCount(t *testing.T) {
	src, chunks := memSource()
	in := New(src, Config{Plan: map[string]Fault{"a.export.csv": Transient}, FailCount: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, err := in.ReadChunk(ctx, "a.export.csv")
		if err == nil || !retry.IsTransient(err) {
			t.Fatalf("attempt %d: want transient error, got %v", i+1, err)
		}
	}
	data, err := in.ReadChunk(ctx, "a.export.csv")
	if err != nil {
		t.Fatalf("third attempt should heal: %v", err)
	}
	if string(data) != string(chunks["a.export.csv"]) {
		t.Fatal("healed chunk differs from original")
	}
	if got := in.Stats()[Transient]; got != 2 {
		t.Fatalf("transient hits %d want 2", got)
	}
}

func TestDelayedFaultIsRetryableNotFound(t *testing.T) {
	src, _ := memSource()
	in := New(src, Config{Plan: map[string]Fault{"a.export.csv": Delayed}, FailCount: 1})
	ctx := context.Background()
	_, err := in.ReadChunk(ctx, "a.export.csv")
	if !retry.IsTransient(err) || !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("delayed chunk should look like a retryable not-found: %v", err)
	}
	if _, err := in.ReadChunk(ctx, "a.export.csv"); err != nil {
		t.Fatalf("delayed chunk should arrive on attempt 2: %v", err)
	}
}

func TestCorruptedFaultBreaksChecksum(t *testing.T) {
	src, chunks := memSource()
	orig := chunks["a.export.csv"]
	in := New(src, Config{Plan: map[string]Fault{"a.export.csv": Corrupted}, Seed: 7})
	data, err := in.ReadChunk(context.Background(), "a.export.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(orig) {
		t.Fatalf("corruption changed length %d vs %d", len(data), len(orig))
	}
	if gdelt.Checksum32(data) == gdelt.Checksum32(orig) {
		t.Fatal("corrupted chunk still matches original checksum")
	}
	// Deterministic: a second injector with the same seed flips the same bytes.
	src2, _ := memSource()
	in2 := New(src2, Config{Plan: map[string]Fault{"a.export.csv": Corrupted}, Seed: 7})
	data2, err := in2.ReadChunk(context.Background(), "a.export.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("corruption not deterministic across injectors")
	}
}

func TestProbabilisticAssignmentDeterministic(t *testing.T) {
	src, _ := memSource()
	cfg := Config{Seed: 99, MissingProb: 0.3, TransientProb: 0.3}
	a, b := New(src, cfg), New(src, cfg)
	paths := []string{"x1.csv", "x2.csv", "x3.csv", "x4.csv", "x5.csv", "x6.csv", "x7.csv", "x8.csv"}
	var assigned []Fault
	for _, p := range paths {
		fa, fb := a.FaultFor(p), b.FaultFor(p)
		if fa != fb {
			t.Fatalf("%s: assignment differs %v vs %v", p, fa, fb)
		}
		assigned = append(assigned, fa)
	}
	// With 60% total fault probability over 8 paths, expect at least one
	// fault and at least one healthy path for this seed.
	var faulty, healthy bool
	for _, f := range assigned {
		if f == None {
			healthy = true
		} else {
			faulty = true
		}
	}
	if !faulty || !healthy {
		t.Fatalf("degenerate assignment %v", assigned)
	}
	// A different seed reassigns.
	c := New(src, Config{Seed: 100, MissingProb: 0.3, TransientProb: 0.3})
	diff := false
	for i, p := range paths {
		if c.FaultFor(p) != assigned[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seed produced identical assignment")
	}
}

func TestPassThrough(t *testing.T) {
	src, chunks := memSource()
	in := New(src, Config{})
	data, err := in.ReadChunk(context.Background(), "a.export.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(chunks["a.export.csv"]) {
		t.Fatal("no-fault injector must pass chunks through untouched")
	}
}
