package faults

import (
	"fmt"
	"sync"
)

// FSStep is one observed step of a crash-safe persist protocol: the
// operation name (shard.OpWritePart, shard.OpSyncDir, ...) and the path it
// was about to touch.
type FSStep struct {
	Op   string
	Path string
}

// ErrInjectedCrash is the error FSPlan injects at its kill point. The
// compactor treats it like any other I/O failure; the crash harness treats
// the whole process as if it had died at that exact step.
type ErrInjectedCrash struct {
	Step int
	Op   string
	Path string
}

func (e *ErrInjectedCrash) Error() string {
	return fmt.Sprintf("faults: injected crash at step %d (%s %s)", e.Step, e.Op, e.Path)
}

// FSPlan deterministically kills a persist protocol at one chosen step.
// Its Hook method satisfies shard.StepHook: it records every step it
// observes and returns an injected error the moment the 1-based step
// counter reaches FailStep. With FailStep 0 it only records — a first
// "recording" run enumerates the protocol's steps so a harness can then
// replay the same workload once per step with FailStep = 1..N, covering
// every write/rename/fsync point without knowing the protocol's shape in
// advance.
type FSPlan struct {
	// FailStep is the 1-based step at which Hook injects a failure;
	// 0 disables injection (recording mode).
	FailStep int

	mu    sync.Mutex
	steps []FSStep
}

// Hook observes one protocol step, failing it if it is the planned kill
// point. The step is recorded either way, so Steps() after a failed run
// shows exactly how far the protocol got.
func (p *FSPlan) Hook(op, path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.steps = append(p.steps, FSStep{Op: op, Path: path})
	if p.FailStep > 0 && len(p.steps) == p.FailStep {
		return &ErrInjectedCrash{Step: p.FailStep, Op: op, Path: path}
	}
	return nil
}

// Steps returns a copy of every step observed so far, in order.
func (p *FSPlan) Steps() []FSStep {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FSStep(nil), p.steps...)
}
