package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestInjectorAssignmentDeterministicUnderConcurrency hammers FaultFor from
// many goroutines in shuffled orders and requires every draw to match a
// sequential reference pass — fault assignment must be a pure function of
// (config, path), independent of evaluation order and interleaving.
func TestInjectorAssignmentDeterministicUnderConcurrency(t *testing.T) {
	cfg := Config{
		Seed:        7,
		MissingProb: 0.15, TruncatedProb: 0.15, TransientProb: 0.15,
		CorruptedProb: 0.15, DelayedProb: 0.15,
	}
	in := New(nil, cfg)
	const n = 300
	paths := make([]string, n)
	want := make(map[string]Fault, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("chunk-%04d.csv", i)
		want[paths[i]] = in.FaultFor(paths[i])
	}

	const workers = 8
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			order := rand.New(rand.NewSource(seed)).Perm(n)
			for _, i := range order {
				if got := in.FaultFor(paths[i]); got != want[paths[i]] {
					select {
					case errs <- fmt.Sprintf("%s: %v, sequential said %v", paths[i], got, want[paths[i]]):
					default:
					}
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}

	// A fresh injector with the same config reproduces the same plan.
	again := New(nil, cfg)
	for _, p := range paths {
		if again.FaultFor(p) != want[p] {
			t.Fatalf("%s: assignment not stable across injector instances", p)
		}
	}
}

// TestReplicaPlanAssignmentDeterministic pins the replica-level plan to the
// same purity contract: same seed and probabilities, same faults, from any
// number of goroutines.
func TestReplicaPlanAssignmentDeterministic(t *testing.T) {
	plan := ReplicaPlan{Seed: 11, DeadProb: 0.25, SlowProb: 0.25, PartitionProb: 0.25}
	ids := make([]string, 64)
	want := make(map[string]ReplicaFault, len(ids))
	for i := range ids {
		ids[i] = fmt.Sprintf("replica-%02d", i)
		want[ids[i]] = plan.assigned(ids[i])
	}
	classes := map[ReplicaFault]bool{}
	for _, f := range want {
		classes[f] = true
	}
	if len(classes) < 2 {
		t.Fatalf("probabilistic plan produced a single class across %d replicas: %v", len(ids), classes)
	}

	chaos := NewReplicaChaos(plan)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			order := rand.New(rand.NewSource(seed)).Perm(len(ids))
			for _, i := range order {
				if got := chaos.FaultFor(ids[i]); got != want[ids[i]] {
					select {
					case errs <- fmt.Sprintf("%s: %v, plan says %v", ids[i], got, want[ids[i]]):
					default:
					}
					return
				}
			}
		}(int64(w + 100))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestReplicaChaosOverridesWinAndHeal checks the runtime scripting hooks:
// Set overrides the plan, Heal restores it, and explicit Plan entries beat
// the probability draw.
func TestReplicaChaosOverridesWinAndHeal(t *testing.T) {
	plan := ReplicaPlan{
		Seed: 3,
		Plan: map[string]ReplicaFault{"pinned": ReplicaSlow},
	}
	chaos := NewReplicaChaos(plan)
	if got := chaos.FaultFor("pinned"); got != ReplicaSlow {
		t.Fatalf("pinned plan entry: %v, want slow", got)
	}
	if got := chaos.FaultFor("other"); got != ReplicaHealthy {
		t.Fatalf("unplanned replica with zero probs: %v, want healthy", got)
	}
	chaos.Set("other", ReplicaDead)
	if got := chaos.FaultFor("other"); got != ReplicaDead {
		t.Fatalf("after Set: %v, want dead", got)
	}
	chaos.Heal("other")
	if got := chaos.FaultFor("other"); got != ReplicaHealthy {
		t.Fatalf("after Heal: %v, want healthy", got)
	}
	if d := NewReplicaChaos(ReplicaPlan{}).plan.SlowDelay; d != 50*time.Millisecond {
		t.Fatalf("default SlowDelay %v", d)
	}
	if want, got := "dead", ReplicaDead.String(); got != want {
		t.Fatalf("String() %q, want %q", got, want)
	}
}
